// net_server — stand-alone streaming ingest daemon.
//
// Binds the epoll front end (net::IngestServer) to a ParallelStream of
// hierarchical GraphBLAS lanes and serves the framed binary protocol:
// clients stream insert batches into lanes (TCP back-pressure when a
// lane queue fills), and query Σ Ai sums, element probes, traffic
// summaries, and incremental-analytics refreshes against governed
// snapshot epochs — the paper's "analyze while ingesting" loop, over a
// socket. Pair with the net_client example:
//
//   ./example_net_server 17871 60 &   # port, lifetime seconds
//   ./example_net_client 17871
//
// Port 0 (the default) picks an ephemeral port; the chosen one is
// printed either way as "listening on 127.0.0.1:<port>".
#include <cstdio>
#include <cstdlib>

#ifdef __linux__

#include <chrono>
#include <thread>

#include "hier/hier.hpp"
#include "net/net.hpp"

int main(int argc, char** argv) {
  net::IngestServer::Options opt;
  opt.port = argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 0;
  const int lifetime_s = argc > 2 ? std::atoi(argv[2]) : 60;

  const gbx::Index dim = gbx::Index{1} << 17;  // the paper's scale-17 default
  const std::size_t lanes = 4;
  hier::InstanceArray<double> array(lanes, dim, dim,
                                    hier::CutPolicy::geometric(4, 4096, 8));
  hier::ParallelStream<double> stream(array);
  stream.start();

  // Queries pin governed snapshots; keep laggards bounded.
  hier::GovernorConfig gcfg;
  gcfg.budget_bytes = 64u << 20;
  hier::MemoryGovernor<hier::ParallelStream<double>> governor(stream, gcfg);

  net::IngestServer server(stream, governor, opt);
  server.start();
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::printf("lanes=%zu dim=2^17 lifetime=%ds\n", lanes, lifetime_s);
  std::fflush(stdout);

  for (int s = 0; s < lifetime_s && server.running(); ++s)
    std::this_thread::sleep_for(std::chrono::seconds(1));

  server.stop();
  const auto& st = server.stats();
  std::printf("served %llu sessions, %llu insert frames, %llu entries, "
              "%llu queries (%llu back-pressure parks, %llu rejected)\n",
              static_cast<unsigned long long>(st.sessions_accepted),
              static_cast<unsigned long long>(st.insert_frames),
              static_cast<unsigned long long>(st.entries_ingested),
              static_cast<unsigned long long>(st.queries),
              static_cast<unsigned long long>(st.parks),
              static_cast<unsigned long long>(st.rejected_frames));
  auto report = stream.stop();
  std::printf("stream applied %llu batches / %llu entries\n",
              static_cast<unsigned long long>(report.batches),
              static_cast<unsigned long long>(report.entries));
  return 0;
}

#else  // !__linux__

int main() {
  std::printf("net_server: the epoll ingest server is Linux-only\n");
  return 0;
}

#endif
