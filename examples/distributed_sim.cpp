// distributed_sim — the paper's scaling experiment, end to end.
//
// Measures real multi-instance aggregate update rates on this node
// (1, 2, ..., #cores instances, one per thread, fully independent — the
// paper's process model), calibrates the SuperCloud weak-scaling model
// from those measurements, and projects the Fig. 2 curve out to the
// paper's 1,100-server / 31,000-instance configuration. Measured and
// modelled numbers are labelled separately.
#include <omp.h>

#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"

int main() {
  const int cores = omp_get_max_threads();
  std::printf("local node: %d hardware threads\n\n", cores);

  cluster::WorkloadSpec w;
  w.sets = 10;
  w.set_size = 100000;  // the paper's set size
  w.scale = 17;
  w.alpha = 1.3;
  w.seed = 20200316;

  const auto cuts = hier::CutPolicy::geometric(4, 1u << 13, 8);

  std::printf("MEASURED on this node (hierarchical GraphBLAS instances):\n");
  std::printf("instances\taggregate_updates_per_s\tper_instance\n");
  std::vector<std::size_t> counts;
  for (std::size_t p = 1; p <= static_cast<std::size_t>(cores); p *= 2)
    counts.push_back(p);
  if (counts.back() != static_cast<std::size_t>(cores))
    counts.push_back(static_cast<std::size_t>(cores));

  cluster::RunResult first{}, last{};
  for (auto p : counts) {
    auto r = cluster::run_hier_gbx(p, w, cuts);
    if (p == 1) first = r;
    last = r;
    std::printf("%zu\t%.3g\t%.3g\n", p, r.aggregate_rate,
                r.aggregate_rate / static_cast<double>(p));
  }

  auto model = cluster::calibrate(first.aggregate_rate, last.instances,
                                  last.aggregate_rate,
                                  /*instances_per_node=*/28);
  std::printf("\ncalibrated model: per-instance %.3g updates/s, intra-node "
              "efficiency %.2f, 28 instances/server\n",
              model.per_instance_rate, model.intra_node_efficiency);

  std::printf("\nMODELLED weak scaling (SuperCloud substitution, DESIGN.md "
              "section 3):\n");
  std::printf("servers\tinstances\tmodelled_updates_per_s\n");
  for (std::size_t s : {1u, 4u, 16u, 64u, 256u, 1024u, 1100u})
    std::printf("%zu\t%zu\t%.3g\n", s, model.instances(s),
                model.aggregate_rate(s));

  const double headline = model.aggregate_rate(1100);
  std::printf("\npaper headline: 7.5e+10 updates/s at 1,100 servers\n");
  std::printf("this model:     %.3g updates/s at 1,100 servers (%s)\n",
              headline,
              headline >= 1e10 ? "same order of magnitude" : "below band");
  return 0;
}
