// checkpoint_restore — operational persistence for streaming matrices.
//
// A long-running collector must survive restarts without losing its
// accumulated traffic matrix or disturbing the cascade. This example
// streams, checkpoints the full hierarchy mid-stream (levels + cuts +
// statistics), "crashes", restores, and continues — then proves the
// final state is identical to an uninterrupted run.
#include <cstdio>
#include <sstream>

#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  gen::PowerLawParams params;
  params.scale = 14;
  params.seed = 99;
  const auto cuts = hier::CutPolicy::geometric(4, 4096, 8);

  // --- reference: uninterrupted run ---------------------------------
  gen::PowerLawGenerator gen_a(params);
  hier::HierMatrix<double> reference(params.dim, params.dim, cuts);
  for (int s = 0; s < 20; ++s) reference.update(gen_a.batch<double>(20000));

  // --- interrupted run -----------------------------------------------
  gen::PowerLawGenerator gen_b(params);  // identical stream
  hier::HierMatrix<double> collector(params.dim, params.dim, cuts);
  for (int s = 0; s < 10; ++s) collector.update(gen_b.batch<double>(20000));

  std::stringstream disk;  // stands in for a checkpoint file
  hier::checkpoint(disk, collector);
  std::printf("checkpoint written: %zu bytes after %llu updates "
              "(%zu levels, L1..L%zu entries:",
              disk.str().size(),
              static_cast<unsigned long long>(collector.stats().entries_appended),
              collector.num_levels(), collector.num_levels());
  for (std::size_t i = 0; i < collector.num_levels(); ++i)
    std::printf(" %zu", collector.level_entries(i));
  std::printf(")\n");

  // simulate a crash: the collector object is discarded entirely.
  {
    auto restored = hier::restore<double>(disk);
    std::printf("restored: %llu updates on record, resuming stream...\n",
                static_cast<unsigned long long>(restored.stats().entries_appended));
    for (int s = 10; s < 20; ++s) restored.update(gen_b.batch<double>(20000));

    const bool identical = gbx::equal(restored.snapshot(), reference.snapshot());
    std::printf("final state vs uninterrupted run: %s\n",
                identical ? "IDENTICAL" : "DIVERGED");
    std::printf("entries streamed: %llu (reference %llu)\n",
                static_cast<unsigned long long>(restored.stats().entries_appended),
                static_cast<unsigned long long>(reference.stats().entries_appended));
    return identical ? 0 : 1;
  }
}
