// graph_analytics — GraphBLAS algorithms on a streamed network.
//
// Streams a Kronecker (Graph500-style) graph into a hierarchical
// hypersparse matrix, then runs the standard GraphBLAS algorithm suite
// on snapshots: connected components, PageRank, triangle counting,
// k-truss, and BFS reachability from the top hub — the kind of analysis
// the paper's group benchmarks SuiteSparse with (Davis HPEC 2018,
// GraphChallenge).
#include <cstdio>

#include "algo/algo.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  gen::KroneckerParams kp;
  kp.scale = 14;  // 16K vertices
  kp.seed = 2020;
  gen::KroneckerGenerator kg(kp);

  hier::HierMatrix<double> graph(kg.nverts(), kg.nverts(),
                                 hier::CutPolicy::geometric(4, 4096, 8));
  std::printf("streaming 8 x 50,000 Kronecker edges (scale %d)...\n", kp.scale);
  for (int s = 0; s < 8; ++s) graph.update(kg.batch<double>(50000));

  auto g = graph.snapshot();
  std::printf("graph snapshot: %zu unique edges\n\n", g.nvals());

  auto cc = algo::connected_components(g);
  std::printf("connected components: %zu components over %zu active vertices\n",
              cc.num_components, cc.labels.size());

  auto pr = algo::pagerank(g);
  std::printf("pagerank: converged in %d iterations (residual %.2e)\n",
              pr.iterations, pr.residual);
  std::printf("top-5 vertices by rank:\n");
  for (std::size_t k = 0; k < 5 && k < pr.ranks.size(); ++k)
    std::printf("  v%llu  %.6f\n",
                static_cast<unsigned long long>(pr.ranks[k].first),
                pr.ranks[k].second);

  const auto tris = algo::triangle_count(g);
  std::printf("\ntriangles: %llu\n", static_cast<unsigned long long>(tris));

  auto truss = algo::ktruss(g, 4);
  std::printf("4-truss: %zu edges survive (%d peeling iterations)\n",
              truss.edges, truss.iterations);

  if (!pr.ranks.empty()) {
    const auto hub = pr.ranks[0].first;
    auto reach = algo::bfs(g, hub);
    std::printf("\nBFS from top hub v%llu: reaches %zu vertices, "
                "max depth %u\n",
                static_cast<unsigned long long>(hub), reach.reached,
                reach.max_level);
  }

  // The stream continues after analysis — snapshots are non-destructive.
  graph.update(kg.batch<double>(1000));
  std::printf("\nstream continued after analysis: %llu total edges ingested\n",
              static_cast<unsigned long long>(graph.stats().entries_appended));
  return 0;
}
