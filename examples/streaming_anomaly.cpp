// streaming_anomaly — continuous network monitoring with windowed
// background models, analyzed WHILE the stream is ingesting.
//
// Demonstrates the paper's "analyze extremely large streaming network
// data sets" use case in its production shape: a ParallelStream worker
// ingests traffic batches continuously while a separate analyst thread
// takes epoch snapshots (hier::SnapshotEngine) — no drain, no pause —
// fits the gravity background model on each frozen image, and reports
// links that deviate from it. An exfiltration flow is planted mid-stream
// and must surface. Every analyst pass prints the snapshot's epoch: the
// exact prefix of the stream it represents.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  gen::PowerLawParams params;
  params.scale = 12;
  params.alpha = 1.3;
  params.dim = gbx::kIPv4Dim;
  params.seed = 11;
  gen::PowerLawGenerator traffic(params);

  hier::InstanceArray<double> array(
      1, gbx::kIPv4Dim, gbx::kIPv4Dim,
      hier::CutPolicy::geometric(4, 4096, 8));
  hier::ParallelStream<double> stream(array);
  hier::SnapshotEngine<hier::ParallelStream<double>> engine(stream);

  // Two quiet hosts that will start a covert heavy flow at window 5.
  const gbx::Index covert_src = 0xC0A80042;  // 192.168.0.66
  const gbx::Index covert_dst = 0x2D4F3A19;

  stream.start();

  // The analyst: periodic snapshots concurrent with live ingest.
  std::atomic<bool> feed_done{false};
  std::thread analyst([&] {
    std::printf("epoch\tlinks\tpackets\ttop_anomaly_score\tcovert_detected\n");
    while (!feed_done.load(std::memory_order_relaxed)) {
      auto snap = engine.acquire();
      auto tm = snap.to_matrix();  // frozen Σ Ai, detached from ingest
      auto summary = analytics::summarize(tm);
      auto anomalies = analytics::gravity_anomalies(tm, 3, 3.0, 100.0);

      bool covert_found = false;
      for (const auto& a : anomalies)
        covert_found |= (a.src == covert_src && a.dst == covert_dst);

      std::printf("%llu\t%llu\t%.0f\t%.1f\t%s\n",
                  static_cast<unsigned long long>(snap.epoch()),
                  static_cast<unsigned long long>(summary.links),
                  summary.packets,
                  anomalies.empty() ? 0.0 : anomalies[0].score,
                  covert_found ? "YES" : "-");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // The feed: ten windows of continuous traffic; the stream never stops
  // for the analyst.
  for (int window = 1; window <= 10; ++window) {
    stream.submit(0, traffic.batch<double>(50000));
    if (window >= 5) {
      // The covert channel: large repeated transfers between two hosts
      // with no other traffic.
      gbx::Tuples<double> covert;
      for (int k = 0; k < 200; ++k)
        covert.push_back(covert_src, covert_dst, 25.0);
      stream.submit(0, covert);
    }
  }
  stream.drain();
  feed_done.store(true);
  analyst.join();

  // Final pass on the fully drained stream (epoch == every batch).
  auto final_snap = engine.acquire();
  auto final_tm = final_snap.to_matrix();
  (void)stream.stop();
  auto final_anoms = analytics::gravity_anomalies(final_tm, 3, 3.0, 100.0);
  std::printf("\nfinal snapshot epoch %llu — top anomalies "
              "(observed / expected = score):\n",
              static_cast<unsigned long long>(final_snap.epoch()));
  for (const auto& a : final_anoms)
    std::printf("  %#llx -> %#llx : %.0f / %.2f = %.1f%s\n",
                static_cast<unsigned long long>(a.src),
                static_cast<unsigned long long>(a.dst), a.observed, a.expected,
                a.score,
                (a.src == covert_src && a.dst == covert_dst)
                    ? "   <-- planted covert channel"
                    : "");
  return 0;
}
