// streaming_anomaly — continuous network monitoring with windowed
// background models.
//
// Demonstrates the paper's "analyze extremely large streaming network
// data sets" use case: a hierarchical hypersparse matrix ingests traffic
// continuously while an analyst thread-of-control periodically snapshots
// it (snapshots are non-destructive — streaming never pauses), fits the
// gravity background model, and reports links that deviate from it. An
// exfiltration flow is planted mid-stream and must surface.
#include <cstdio>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  gen::PowerLawParams params;
  params.scale = 12;
  params.alpha = 1.3;
  params.dim = gbx::kIPv4Dim;
  params.seed = 11;
  gen::PowerLawGenerator traffic(params);

  hier::HierMatrix<double> tm(gbx::kIPv4Dim, gbx::kIPv4Dim,
                              hier::CutPolicy::geometric(4, 4096, 8));

  // Two quiet hosts that will start a covert heavy flow at window 5.
  const gbx::Index covert_src = 0xC0A80042;  // 192.168.0.66
  const gbx::Index covert_dst = 0x2D4F3A19;

  std::printf("window\tlinks\tpackets\ttop_anomaly_score\tcovert_detected\n");
  for (int window = 1; window <= 10; ++window) {
    // Continuous ingest (the stream never stops).
    tm.update(traffic.batch<double>(50000));
    if (window >= 5) {
      // The covert channel: large repeated transfers between two hosts
      // with no other traffic.
      for (int k = 0; k < 200; ++k) tm.update(covert_src, covert_dst, 25.0);
    }

    // Analyst pass: snapshot (non-destructive) + background model. The
    // support threshold (min 100 packets observed) suppresses the long
    // tail of one-packet flows.
    auto snap = tm.snapshot();
    auto summary = analytics::summarize(snap);
    auto anomalies = analytics::gravity_anomalies(snap, 3, 3.0, 100.0);

    bool covert_found = false;
    for (const auto& a : anomalies)
      covert_found |= (a.src == covert_src && a.dst == covert_dst);

    std::printf("%d\t%llu\t%.0f\t%.1f\t%s\n", window,
                static_cast<unsigned long long>(summary.links),
                summary.packets,
                anomalies.empty() ? 0.0 : anomalies[0].score,
                covert_found ? "YES" : "-");
  }

  auto final_anoms = analytics::gravity_anomalies(tm.snapshot(), 3, 3.0, 100.0);
  std::printf("\nfinal top anomalies (observed / expected = score):\n");
  for (const auto& a : final_anoms)
    std::printf("  %#llx -> %#llx : %.0f / %.2f = %.1f%s\n",
                static_cast<unsigned long long>(a.src),
                static_cast<unsigned long long>(a.dst), a.observed, a.expected,
                a.score,
                (a.src == covert_src && a.dst == covert_dst)
                    ? "   <-- planted covert channel"
                    : "");
  return 0;
}
