// streaming_anomaly — continuous network monitoring with windowed
// background models, analyzed WHILE the stream is ingesting — and
// incrementally: the analyst no longer recomputes Σ Ai and its
// statistics from scratch each pass.
//
// Demonstrates the paper's "analyze extremely large streaming network
// data sets" use case in its production shape: a ParallelStream worker
// ingests traffic batches continuously while a separate analyst thread
// drives an analytics::IncrementalEngine — each pass takes an epoch
// snapshot (no drain, no pause), diffs it against the previous one
// (hier::snapshot_diff, unchanged level blocks skipped by identity),
// and patches the materialized traffic matrix, summary statistics, and
// triangle count from the delta. The gravity background model is then
// fitted on the incrementally-maintained matrix and links that deviate
// from it are reported. An exfiltration flow is planted mid-stream and
// must surface. Every analyst pass prints the snapshot's epoch plus the
// delta's block-reuse ratio: how little of the matrix each pass had to
// touch.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  gen::PowerLawParams params;
  params.scale = 12;
  params.alpha = 1.3;
  params.dim = gbx::kIPv4Dim;
  params.seed = 11;
  gen::PowerLawGenerator traffic(params);

  hier::InstanceArray<double> array(
      1, gbx::kIPv4Dim, gbx::kIPv4Dim,
      hier::CutPolicy::geometric(4, 4096, 8));
  hier::ParallelStream<double> stream(array);

  // Incremental analytics over epoch snapshots: Σ Ai, the traffic
  // summary, and the triangle count are patched from snapshot deltas.
  // (PageRank is off — the gravity model is this example's scorer.)
  analytics::IncrementalOptions iopt;
  iopt.enable_pagerank = false;
  analytics::IncrementalEngine<hier::ParallelStream<double>> engine(stream,
                                                                    iopt);
  // Surface readers that pin old epochs for too long (memory satellite).
  engine.snapshots().set_staleness_hook(
      1u << 20, [](std::uint64_t held, std::uint64_t cur) {
        std::fprintf(stderr, "warning: analyst stale (held %llu, now %llu)\n",
                     static_cast<unsigned long long>(held),
                     static_cast<unsigned long long>(cur));
      });

  // Two quiet hosts that will start a covert heavy flow at window 5.
  const gbx::Index covert_src = 0xC0A80042;  // 192.168.0.66
  const gbx::Index covert_dst = 0x2D4F3A19;

  stream.start();

  // The analyst: periodic incremental passes concurrent with live ingest.
  std::atomic<bool> feed_done{false};
  std::thread analyst([&] {
    std::printf(
        "epoch\tlinks\tpackets\treuse%%\ttouched\ttris\ttop_score\tcovert\n");
    while (!feed_done.load(std::memory_order_relaxed)) {
      const auto& rep = engine.refresh();
      const auto& summary = engine.summary();
      auto anomalies =
          analytics::gravity_anomalies(engine.sum(), 3, 3.0, 100.0);

      bool covert_found = false;
      for (const auto& a : anomalies)
        covert_found |= (a.src == covert_src && a.dst == covert_dst);

      std::printf("%llu\t%llu\t%.0f\t%.1f\t%zu\t%llu\t%.1f\t%s\n",
                  static_cast<unsigned long long>(rep.epoch),
                  static_cast<unsigned long long>(summary.links),
                  summary.packets, 100.0 * rep.delta.reuse_ratio(),
                  rep.added + rep.changed,
                  static_cast<unsigned long long>(engine.triangles()),
                  anomalies.empty() ? 0.0 : anomalies[0].score,
                  covert_found ? "YES" : "-");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // The feed: ten windows of continuous traffic; the stream never stops
  // for the analyst.
  for (int window = 1; window <= 10; ++window) {
    stream.submit(0, traffic.batch<double>(50000));
    if (window >= 5) {
      // The covert channel: large repeated transfers between two hosts
      // with no other traffic.
      gbx::Tuples<double> covert;
      for (int k = 0; k < 200; ++k)
        covert.push_back(covert_src, covert_dst, 25.0);
      stream.submit(0, covert);
    }
  }
  stream.drain();
  feed_done.store(true);
  analyst.join();

  // Final incremental pass on the fully drained stream (epoch == every
  // batch): by now the delta is tiny, so this costs O(changed).
  const auto& final_rep = engine.refresh();
  (void)stream.stop();
  auto final_anoms = analytics::gravity_anomalies(engine.sum(), 3, 3.0, 100.0);
  std::printf("\nfinal epoch %llu (%zu full recomputes over %llu passes) — "
              "top anomalies (observed / expected = score):\n",
              static_cast<unsigned long long>(final_rep.epoch),
              static_cast<std::size_t>(engine.full_recomputes()),
              static_cast<unsigned long long>(engine.refreshes()));
  for (const auto& a : final_anoms)
    std::printf("  %#llx -> %#llx : %.0f / %.2f = %.1f%s\n",
                static_cast<unsigned long long>(a.src),
                static_cast<unsigned long long>(a.dst), a.observed, a.expected,
                a.score,
                (a.src == covert_src && a.dst == covert_dst)
                    ? "   <-- planted covert channel"
                    : "");
  return 0;
}
