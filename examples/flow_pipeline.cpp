// flow_pipeline — file-to-analytics ingestion with temporal windows.
//
// The deployment shape of the paper's system: flow records arrive as
// text (NetFlow-style), are parsed and streamed into tumbling-window
// hierarchical matrices keyed by timestamp, and each closed window is
// summarized. Demonstrates flow_reader + TumblingWindows + CIDR subnet
// views working together. The input "capture file" is synthesized
// in-memory so the example is self-contained.
#include <cstdio>
#include <sstream>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"

namespace {

/// Synthesize a capture: power-law traffic across two subnets over 60
/// seconds, 10.1.0.0/16 talking to 172.16.0.0/16 plus internet noise.
std::string synthesize_capture(std::size_t records, std::uint64_t seed) {
  gen::Xoshiro256 rng(seed);
  std::ostringstream os;
  os << "# synthetic capture, " << records << " records\n";
  for (std::size_t k = 0; k < records; ++k) {
    const std::uint64_t ts = 1583366400 + k * 60 / records;  // 60s span
    const bool internal = rng.next_double() < 0.7;
    gbx::Index src, dst;
    if (internal) {
      src = (0x0A010000u | (rng.next() & 0xff));          // 10.1.0.x
      dst = (0xAC100000u | (rng.next() & 0xff));          // 172.16.0.x
    } else {
      src = static_cast<gbx::Index>(rng.next() & 0xffffffffu);
      dst = static_cast<gbx::Index>(rng.next() & 0xffffffffu);
    }
    analytics::write_flow(os, {ts, src, dst, 1.0 + static_cast<double>(rng.next() & 7)});
  }
  return os.str();
}

}  // namespace

int main() {
  const auto capture = synthesize_capture(50000, 42);
  std::istringstream file(capture);

  // One 10-second tumbling window per epoch, 6 windows live.
  analytics::TumblingWindows<double> windows(
      6, gbx::kIPv4Dim, gbx::kIPv4Dim, hier::CutPolicy::geometric(3, 2048, 8));

  std::uint64_t window_start = 0;
  std::size_t in_window = 0;
  gbx::Tuples<double> unused;
  auto st = analytics::read_flows(file, unused, [&](const analytics::FlowRecord& r) {
    if (window_start == 0) window_start = r.timestamp;
    if (r.timestamp >= window_start + 10) {  // close the 10s window
      auto sum = analytics::summarize(windows.window(0));
      std::printf("window @%llu: %zu records, %llu links, %.0f packets\n",
                  static_cast<unsigned long long>(window_start), in_window,
                  static_cast<unsigned long long>(sum.links), sum.packets);
      windows.advance();
      window_start = r.timestamp;
      in_window = 0;
    }
    windows.update(r.src, r.dst, r.count);
    ++in_window;
  });

  std::printf("\nparsed %zu records (%zu malformed), span %llus\n", st.records,
              st.malformed,
              static_cast<unsigned long long>(st.last_timestamp -
                                              st.first_timestamp));

  // Cross-window analytics on the union of live windows.
  auto total = windows.total();
  auto sum = analytics::summarize(total);
  std::printf("live windows total: %llu links, %.0f packets\n",
              static_cast<unsigned long long>(sum.links), sum.packets);

  // Subnet view: internal 10.1/16 -> 172.16/16 traffic only.
  auto src_net = analytics::parse_cidr("10.1.0.0/16").value();
  auto dst_net = analytics::parse_cidr("172.16.0.0/16").value();
  auto internal = analytics::subnet_view(total, src_net, dst_net);
  auto isum = analytics::summarize(internal);
  std::printf("10.1.0.0/16 -> 172.16.0.0/16: %llu links, %.0f packets "
              "(%.0f%% of live traffic)\n",
              static_cast<unsigned long long>(isum.links), isum.packets,
              100.0 * isum.packets / sum.packets);
  return 0;
}
