// traffic_matrix — origin-destination network traffic analysis.
//
// The application that motivates the paper (Section I): build a traffic
// matrix database from streaming packet headers and analyze it — top
// talkers (supernodes), degree distribution, and D4M-style string-keyed
// range queries over subnets. Two representations run side by side:
// integer-keyed hierarchical GraphBLAS (fast path) and a D4M associative
// array keyed by dotted-quad strings (flexible path), as the paper's
// group uses both.
#include <cstdio>
#include <string>

#include "analytics/analytics.hpp"
#include "assoc/assoc.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

std::string dotted_quad(gbx::Index ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                static_cast<unsigned>((ip >> 24) & 0xff),
                static_cast<unsigned>((ip >> 16) & 0xff),
                static_cast<unsigned>((ip >> 8) & 0xff),
                static_cast<unsigned>(ip & 0xff));
  return buf;
}

}  // namespace

int main() {
  // Traffic source: power-law flow generator over the IPv4 space.
  gen::PowerLawParams params;
  params.scale = 14;  // 16K active hosts scattered over 2^32 addresses
  params.alpha = 1.5;
  params.dim = gbx::kIPv4Dim;
  params.seed = 7;
  gen::PowerLawGenerator flows(params);

  hier::HierMatrix<double> fast(gbx::kIPv4Dim, gbx::kIPv4Dim,
                                hier::CutPolicy::geometric(4, 4096, 8));
  assoc::AssocArray<double> flexible(gbx::kIPv4Dim);

  std::printf("ingesting 400,000 flow records...\n");
  for (int set = 0; set < 4; ++set) {
    auto batch = flows.batch<double>(100000);
    fast.update(batch);
    // The D4M path pays string conversion per record — exactly the cost
    // the paper eliminated by moving to integer-keyed GraphBLAS.
    if (set == 0) {  // keep the string path small; it is the slow lane
      for (std::size_t k = 0; k < 20000; ++k) {
        const auto& e = batch[k];
        flexible.insert(dotted_quad(e.row), dotted_quad(e.col), e.val);
      }
    }
  }

  auto tm = fast.snapshot();
  auto s = analytics::summarize(tm);
  std::printf("\ntraffic matrix: %llu links, %.0f packets, %llu sources, "
              "%llu destinations\n",
              static_cast<unsigned long long>(s.links), s.packets,
              static_cast<unsigned long long>(s.sources),
              static_cast<unsigned long long>(s.destinations));
  std::printf("heaviest link: %.0f packets; mean: %.2f\n", s.max_link,
              s.mean_link);

  std::printf("\ntop-5 traffic sources (supernodes):\n");
  for (const auto& v : analytics::top_sources(tm, 5))
    std::printf("  %-15s %.0f packets\n", dotted_quad(v.id).c_str(), v.value);

  std::printf("\ntop-5 destinations by distinct peers:\n");
  for (const auto& v : analytics::top_destinations(tm, 5, /*by_links=*/true))
    std::printf("  %-15s %.0f peers\n", dotted_quad(v.id).c_str(), v.value);

  auto hist = analytics::out_degree_histogram(tm);
  std::printf("\ndegree distribution: %zu distinct degrees, log-log slope "
              "%.2f (power-law tail)\n",
              hist.size(), analytics::power_law_slope(hist));

  // D4M flavour: subnet range query on string keys.
  flexible.materialize();
  std::printf("\nD4M associative array: %zu entries, %zu row keys\n",
              flexible.nvals(), flexible.num_row_keys());
  const auto rows = flexible.row_range("1", "2");
  std::printf("flows from sources in [\"1\", \"2\") (string key range): %zu\n",
              rows.size());
  if (!rows.empty())
    std::printf("  first: %s -> %s (%.0f packets)\n",
                std::get<0>(rows.front()).c_str(),
                std::get<1>(rows.front()).c_str(), std::get<2>(rows.front()));
  return 0;
}
