// quickstart — the smallest complete use of the library.
//
// Creates a hierarchical hypersparse matrix for an IPv4-sized traffic
// matrix (2^32 x 2^32), streams a power-law edge workload into it, and
// queries the accumulated matrix, printing cascade statistics along the
// way. Mirrors the usage recipe of the paper's Section II verbatim:
// initialize with cuts, update by adding to the lowest layer, query by
// summing all layers.
#include <cstdio>

#include "gbx/reduce.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  // 1. Initialize an N-level hierarchical hypersparse matrix with cuts ci.
  //    4 levels; level 1 folds at 8,192 entries, each level 8x bigger.
  const auto cuts = hier::CutPolicy::geometric(/*levels=*/4, /*base=*/8192,
                                               /*ratio=*/8);
  hier::HierMatrix<double> A(gbx::kIPv4Dim, gbx::kIPv4Dim, cuts);

  // 2. Stream updates. Every update is A1 += delta; folds cascade
  //    automatically when a level exceeds its cut.
  gen::PowerLawParams params;
  params.scale = 16;      // 65,536 distinct hosts
  params.alpha = 1.3;     // heavy-tailed talker distribution
  params.seed = 1;
  gen::PowerLawGenerator traffic(params);

  std::printf("streaming 10 sets of 100,000 updates...\n");
  for (int set = 0; set < 10; ++set) {
    A.update(traffic.batch<double>(100000));
  }

  // Single-element updates work too:
  A.update(/*src=*/0x0A000001, /*dst=*/0x08080808, /*packets=*/42.0);

  // 3. Query: sum all layers (non-destructive; streaming can continue).
  auto snapshot = A.snapshot();
  std::printf("accumulated traffic matrix: %zu distinct links, %.0f packets\n",
              snapshot.nvals(),
              gbx::reduce_scalar<gbx::PlusMonoid<double>>(snapshot));
  std::printf("value at (10.0.0.1 -> 8.8.8.8): %.0f\n",
              snapshot.extract_element(0x0A000001, 0x08080808).value_or(0));

  // Cascade instrumentation: where did the updates go?
  const auto& st = A.stats();
  std::printf("\nupdates streamed: %llu entries in %llu calls\n",
              static_cast<unsigned long long>(st.entries_appended),
              static_cast<unsigned long long>(st.updates));
  for (std::size_t i = 0; i + 1 < A.num_levels(); ++i)
    std::printf("level %zu: folded %llu times (%llu entries moved up)\n",
                i + 1, static_cast<unsigned long long>(st.level[i].folds),
                static_cast<unsigned long long>(st.level[i].entries_folded));
  std::printf("memory in use: %.1f MB across %zu levels\n",
              static_cast<double>(A.memory_bytes()) / 1048576.0,
              A.num_levels());
  return 0;
}
