// repl_pair — the failover smoke: a primary/replica pair across two
// REAL processes, with the primary SIGKILLed mid-stream.
//
// The parent forks FIRST (before any thread exists — forking a
// threaded process risks inheriting a locked allocator), then:
//
//   child    builds the full primary stack (InstanceArray →
//            ParallelStream → MemoryGovernor → PrimaryReplicator →
//            IngestServer), reports its ingest port over a pipe, and
//            waits to be killed;
//   parent   runs the ReplicaServer plus one repl::FailoverSender per
//            lane, SIGKILLs the child at a random point in the stream,
//            and waits for the drivers to fail over and finish against
//            the self-promoted replica.
//
// The exactness claim this smoke enforces end-to-end: every driver
// streams its FULL batch plan exactly once (acked batches are never
// lost, shipped-but-unacked batches are never double-applied), so the
// promoted replica's per-lane state must be bit-identical — Σ Ai and
// nvals — to a direct in-process apply of the same plan. Any drift,
// hang, or lost batch exits non-zero, which is what makes this a CI
// gate rather than a demo.
#include <cstdio>

#ifdef __linux__

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gbx/coo.hpp"
#include "hier/hier.hpp"
#include "net/net.hpp"
#include "repl/repl.hpp"

namespace {

constexpr std::size_t kLanes = 2;
constexpr std::size_t kBatches = 32;   // per lane
constexpr std::size_t kBatchSize = 2048;
constexpr gbx::Index kDim = 512;

hier::CutPolicy cuts() { return hier::CutPolicy::geometric(3, 2048, 8); }

std::string tmp_path(const char* stem) {
  return (std::filesystem::temp_directory_path() /
          (std::string(stem) + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

/// One lane's deterministic batch plan (value 1..8 integers: exact in
/// double, so Σ Ai comparisons are bit-identical, not approximate).
std::vector<gbx::Tuples<double>> make_plan(std::size_t lane) {
  std::mt19937_64 rng(0xC0FFEEu + lane);
  std::uniform_int_distribution<gbx::Index> coord(0, kDim - 1);
  std::uniform_int_distribution<int> val(1, 8);
  std::vector<gbx::Tuples<double>> plan(kBatches);
  for (auto& b : plan)
    for (std::size_t i = 0; i < kBatchSize; ++i)
      b.push_back(coord(rng), coord(rng), static_cast<double>(val(rng)));
  return plan;
}

bool read_u16(int fd, std::uint16_t& v) {
  return ::read(fd, &v, sizeof v) == static_cast<ssize_t>(sizeof v);
}

void write_u16(int fd, std::uint16_t v) {
  if (::write(fd, &v, sizeof v) != static_cast<ssize_t>(sizeof v)) _exit(3);
}

/// The child: run a primary until SIGKILL does its thing.
[[noreturn]] void primary_process(int port_in, int port_out,
                                  const std::string& wal) {
  std::uint16_t replica_port = 0;
  if (!read_u16(port_in, replica_port)) _exit(3);

  hier::InstanceArray<double> array(kLanes, kDim, kDim, cuts());
  hier::ParallelStream<double> stream(array);
  stream.start();
  hier::MemoryGovernor<hier::ParallelStream<double>> governor(stream);

  repl::ShipperOptions shop;
  shop.port = replica_port;
  shop.wal_path = wal;
  shop.heartbeat_ms = 10;
  repl::PrimaryReplicator replicator(stream, shop);
  replicator.start();

  net::IngestServer::Options sopt;
  sopt.replication = &replicator;
  net::IngestServer server(stream, governor, sopt);
  server.start();
  write_u16(port_out, server.port());

  for (;;) ::pause();  // the parent's SIGKILL is the only exit
}

}  // namespace

int main() {
  const std::string primary_wal = tmp_path("repl_pair_primary");
  const std::string replica_wal = tmp_path("repl_pair_replica");
  std::filesystem::remove(replica_wal);

  int to_child[2], to_parent[2];
  if (::pipe(to_child) != 0 || ::pipe(to_parent) != 0) {
    std::perror("pipe");
    return 2;
  }

  // Fork while still single-threaded; everything heavy happens after.
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 2;
  }
  if (pid == 0) {
    ::close(to_child[1]);
    ::close(to_parent[0]);
    primary_process(to_child[0], to_parent[1], primary_wal);
  }
  ::close(to_child[0]);
  ::close(to_parent[1]);

  repl::ReplicaOptions ropt;
  ropt.wal_path = replica_wal;
  ropt.lanes = kLanes;
  ropt.nrows = kDim;
  ropt.ncols = kDim;
  ropt.cuts = cuts();
  ropt.lease_ms = 250;
  repl::ReplicaServer replica(ropt);
  replica.start();
  write_u16(to_child[1], replica.port());

  std::uint16_t primary_port = 0;
  if (!read_u16(to_parent[0], primary_port)) {
    std::fprintf(stderr, "repl_pair: primary child never came up\n");
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return 2;
  }
  std::printf("primary pid %d on port %u, replica on port %u\n",
              static_cast<int>(pid), primary_port, replica.port());

  std::vector<std::vector<gbx::Tuples<double>>> plans(kLanes);
  for (std::size_t p = 0; p < kLanes; ++p) plans[p] = make_plan(p);

  // Kill the primary at a random point while the paced stream is still
  // in flight (the drivers take >= kBatches * pace to finish).
  std::mt19937_64 rng(static_cast<std::uint64_t>(::getpid()) * 2654435761u +
                      static_cast<std::uint64_t>(
                          std::chrono::steady_clock::now()
                              .time_since_epoch()
                              .count()));
  const int kill_after_ms =
      static_cast<int>(10 + rng() % 60);  // 10..69ms into the stream

  std::vector<repl::FailoverReport> reports(kLanes);
  std::vector<std::thread> drivers;
  for (std::size_t p = 0; p < kLanes; ++p) {
    drivers.emplace_back([&, p] {
      repl::FailoverOptions fopt;
      fopt.primary_port = primary_port;
      fopt.replica_port = replica.port();
      fopt.lane = p;
      fopt.recv_timeout_ms = 2000;
      fopt.flush_every = 4;
      fopt.pace_us = 2000;
      reports[p] = repl::FailoverSender(fopt).run(plans[p]);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  std::printf("primary SIGKILLed after %dms\n", kill_after_ms);
  for (auto& d : drivers) d.join();

  // Every driver finished; the promoted replica must now hold exactly
  // one application of every batch in every plan.
  replica.stop();
  bool ok = replica.promoted();
  if (!ok) std::fprintf(stderr, "repl_pair: replica never promoted\n");
  std::size_t failed_over = 0;
  for (std::size_t p = 0; p < kLanes; ++p) {
    if (reports[p].failed_over) ++failed_over;
    const auto counts = replica.lane_batches();
    if (counts[p] != kBatches) {
      std::fprintf(stderr, "repl_pair: lane %zu applied %llu/%zu batches\n",
                   p, static_cast<unsigned long long>(counts[p]), kBatches);
      ok = false;
    }
    hier::HierMatrix<double> oracle(kDim, kDim, cuts());
    for (const auto& b : plans[p]) {
      auto copy = b;
      oracle.update(copy);
    }
    const auto rsnap = replica.array().instance(p).freeze();
    const auto osnap = oracle.freeze();
    if (rsnap.reduce() != osnap.reduce() || rsnap.nvals() != osnap.nvals()) {
      std::fprintf(stderr,
                   "repl_pair: lane %zu DIVERGED (Σ %.17g vs %.17g, "
                   "nvals %llu vs %llu)\n",
                   p, rsnap.reduce(), osnap.reduce(),
                   static_cast<unsigned long long>(rsnap.nvals()),
                   static_cast<unsigned long long>(osnap.nvals()));
      ok = false;
    }
  }

  std::printf("result: %s (%zu/%zu drivers failed over; promoted Σ Ai "
              "bit-identical to the full plan on every lane)\n",
              ok ? "PASS" : "FAIL", failed_over, kLanes);
  std::filesystem::remove(primary_wal);
  std::filesystem::remove(replica_wal);
  return ok ? 0 : 1;
}

#else  // !__linux__

int main() {
  std::printf("repl_pair: the replication stack is Linux-only\n");
  return 0;
}

#endif
