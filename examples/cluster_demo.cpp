// cluster_demo — a real multi-process cluster on one machine, with an
// exactness check against the single-process oracle.
//
//   ./example_cluster_demo [workers] [--kill]
//
// Topology (all forked from a single-threaded prologue, then threaded):
//
//   N worker processes   each a 1-lane ingest stack (fork + pipe port
//                        handoff, cluster/worker_pool.hpp)
//   1 router             cluster::Router over the partition map
//   2 client threads     stream deterministic integer batches through
//                        cluster::RouterClient
//
// Default mode verifies the tentpole claim end to end: the router's
// epoch-stitched Σ Ai / nvals / element probes are compared against an
// in-process hier::ShardedHier with the SAME part count fed the SAME
// batches — values are small integers, so sums are exact and the
// comparison is ==, not a tolerance.
//
// --kill mode verifies the failure contract: SIGKILL one worker
// mid-stream and the next stitched query MUST fail loudly (kReplyError
// → gbx::Error). A silent success — a partial sum stitched from the
// survivors — is the bug, and exits nonzero.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__

#include <string>
#include <thread>
#include <vector>

#include <random>

#include "cluster/cluster.hpp"
#include "gbx/error.hpp"
#include "hier/hier.hpp"
#include "net/net.hpp"

namespace {

constexpr gbx::Index kDim = 512;
constexpr std::size_t kClients = 2;
constexpr std::size_t kBatches = 16;     // per client
constexpr std::size_t kBatchSize = 2048;

hier::CutPolicy cuts() { return hier::CutPolicy::geometric(3, 2048, 8); }

/// One client's deterministic batch plan (integer values 1..8: exact in
/// double, so Σ Ai comparisons are bit-identical, not approximate).
std::vector<gbx::Tuples<double>> make_plan(std::size_t client) {
  std::mt19937_64 rng(0xD157EDu + client);
  std::uniform_int_distribution<gbx::Index> coord(0, kDim - 1);
  std::uniform_int_distribution<int> val(1, 8);
  std::vector<gbx::Tuples<double>> plan(kBatches);
  for (auto& b : plan)
    for (std::size_t i = 0; i < kBatchSize; ++i)
      b.push_back(coord(rng), coord(rng), static_cast<double>(val(rng)));
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 2;
  bool kill_mode = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--kill") == 0)
      kill_mode = true;
    else
      workers = static_cast<std::size_t>(std::atoi(argv[a]));
  }
  if (workers == 0) workers = 2;

  // Fork every worker while still single-threaded; threads come after.
  cluster::WorkerConfig wcfg;
  wcfg.nrows = kDim;
  wcfg.ncols = kDim;
  wcfg.cuts = cuts();
  std::vector<cluster::SpawnedWorker> procs;
  for (std::size_t w = 0; w < workers; ++w)
    procs.push_back(cluster::spawn_worker_process(wcfg));

  cluster::Router::Options ropt;
  ropt.nrows = kDim;
  ropt.ncols = kDim;
  cluster::Router router(cluster::map_of(procs), ropt);
  router.start();
  std::printf("cluster: %zu worker processes (", workers);
  for (std::size_t w = 0; w < workers; ++w)
    std::printf("%spid %d:%u", w ? ", " : "", procs[w].pid, procs[w].port);
  std::printf("), router on port %u\n", router.port());

  int rc = 0;
  try {
    // Stream from concurrent clients through the router.
    std::vector<std::thread> senders;
    for (std::size_t c = 0; c < kClients; ++c) {
      senders.emplace_back([&router, c] {
        auto plan = make_plan(c);
        cluster::RouterClient cli;
        cli.connect("127.0.0.1", router.port());
        for (const auto& b : plan) cli.insert(b);
        cli.flush();
        cli.bye();
      });
    }
    for (auto& t : senders) t.join();

    if (kill_mode) {
      // The failure drill: SIGKILL worker 0, then the next stitched
      // query must error loudly. The flush barrier inside the stitch
      // touches every worker, so the death cannot go unnoticed.
      cluster::kill_worker(procs[0]);
      std::printf("killed worker 0; expecting a loud stitched-query "
                  "failure...\n");
      cluster::RouterClient cli;
      cli.connect("127.0.0.1", router.port());
      bool loud = false;
      try {
        const auto sum = cli.query_sum();
        std::printf("FAIL: stitched sum answered %.1f from a dead "
                    "cluster (silent partial sum)\n", sum.sum);
      } catch (const gbx::Error& e) {
        loud = true;
        std::printf("stitched query failed as required: %s\n", e.what());
      }
      rc = loud ? 0 : 1;
      std::printf("dead-worker drill: %s\n", loud ? "PASS" : "FAIL");
    } else {
      // Single-process oracle: same part count, same batches.
      hier::ShardedHier<double> oracle(workers, kDim, kDim, cuts());
      for (std::size_t c = 0; c < kClients; ++c)
        for (const auto& b : make_plan(c)) oracle.update(b);
      auto truth = oracle.freeze();

      cluster::RouterClient cli;
      cli.connect("127.0.0.1", router.port());

      // The stitched snapshot through the unified SnapshotSource API.
      auto snap = hier::acquire_snapshot(cli);
      const double osum = truth.reduce();
      const std::uint64_t onvals = truth.nvals();
      std::printf("stitched  sum=%.1f nvals=%llu epoch=%llu (", snap.reduce(),
                  static_cast<unsigned long long>(snap.nvals()),
                  static_cast<unsigned long long>(snap.epoch()));
      for (std::size_t w = 0; w < snap.part_epochs().size(); ++w)
        std::printf("%s%llu", w ? "+" : "",
                    static_cast<unsigned long long>(snap.part_epochs()[w]));
      std::printf(")\noracle    sum=%.1f nvals=%llu\n", osum,
                  static_cast<unsigned long long>(onvals));

      bool exact = snap.reduce() == osum && snap.nvals() == onvals &&
                   snap.part_epochs().size() == workers;

      // Element probes, routed to their owning workers.
      std::mt19937_64 rng(7);
      std::uniform_int_distribution<gbx::Index> coord(0, kDim - 1);
      std::vector<net::ElementQuery> qs(64);
      for (auto& q : qs) q = net::ElementQuery{coord(rng), coord(rng)};
      const auto rs = cli.query_elements(qs);
      for (std::size_t i = 0; i < qs.size(); ++i) {
        const auto want = truth.extract_element(qs[i].row, qs[i].col);
        const bool ok = want ? (rs[i].present == 1 && rs[i].value == *want)
                             : rs[i].present == 0;
        if (!ok) {
          std::printf("probe (%llu,%llu) diverged: got %s%.1f want %s%.1f\n",
                      static_cast<unsigned long long>(qs[i].row),
                      static_cast<unsigned long long>(qs[i].col),
                      rs[i].present ? "" : "absent ", rs[i].value,
                      want ? "" : "absent ", want ? *want : 0.0);
          exact = false;
        }
      }

      // The summary stitch (destinations via the column-set union).
      const auto summary = cli.query_summary();
      if (summary.packets != osum ||
          summary.links != onvals) {
        std::printf("summary diverged: packets=%.1f links=%llu\n",
                    summary.packets,
                    static_cast<unsigned long long>(summary.links));
        exact = false;
      }
      std::printf("summary: %llu links, %.0f packets, %llu sources, "
                  "%llu destinations\n",
                  static_cast<unsigned long long>(summary.links),
                  summary.packets,
                  static_cast<unsigned long long>(summary.sources),
                  static_cast<unsigned long long>(summary.destinations));

      cli.bye();
      std::printf("round-trip vs single-process ShardedHier(%zu): %s\n",
                  workers, exact ? "EXACT" : "DIVERGED");
      rc = exact ? 0 : 1;
    }
  } catch (const gbx::Error& e) {
    std::fprintf(stderr, "cluster_demo: %s\n", e.what());
    rc = 2;
  }

  router.stop();
  for (auto& p : procs) cluster::kill_worker(p);
  return rc;
}

#else  // !__linux__

int main() {
  std::printf("cluster_demo: the cluster router is Linux-only\n");
  return 0;
}

#endif
