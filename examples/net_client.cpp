// net_client — streaming ingest demo + end-to-end exactness check.
//
// Connects to a running net_server example, streams Kronecker edge
// batches from two concurrent connections (each pinned to its own
// server lane), flushes, and then verifies the server's Σ Ai against
// the locally-known ground truth: every streamed edge carries value
// 1.0, so the exact sum IS the number of entries sent. Exits 0 only on
// a bit-exact match — the CI smoke test runs exactly this pair.
//
//   ./example_net_client [port] [host]     (default 17871, 127.0.0.1)
#include <cstdio>
#include <cstdlib>

#ifdef __linux__

#include <string>
#include <thread>
#include <vector>

#include "gen/gen.hpp"
#include "net/net.hpp"

int main(int argc, char** argv) {
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 17871;
  const std::string host = argc > 2 ? argv[2] : "127.0.0.1";

  const std::size_t connections = 2, batches = 10, batch_size = 20000;

  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < connections; ++c) {
    senders.emplace_back([&, c] {
      gen::KroneckerParams kp;
      kp.scale = 17;
      kp.seed = 4242 + c;
      gen::KroneckerGenerator g(kp);
      net::Client cli;
      cli.connect(host, port);
      for (std::size_t b = 0; b < batches; ++b)
        cli.insert(g.batch<double>(batch_size), c);  // pin to lane c
      cli.flush();  // barrier: everything above is applied
      cli.bye();
    });
  }
  for (auto& t : senders) t.join();

  const double expected =
      static_cast<double>(connections * batches * batch_size);

  // Read through net::QueryInterface — the same surface a
  // cluster::RouterClient implements, so this block would run verbatim
  // against an N-worker router instead of one server.
  net::Client cli;
  cli.connect(host, port);
  net::QueryInterface& q = cli;
  const auto sum = q.query_sum();
  const auto summary = q.query_summary();
  const auto refresh = q.query_refresh();
  cli.bye();

  std::printf("streamed %zu connections x %zu batches x %zu entries\n",
              connections, batches, batch_size);
  std::printf("server sum=%.1f (epoch %llu, %llu distinct coords); "
              "expected %.1f\n",
              sum.sum, static_cast<unsigned long long>(sum.epoch),
              static_cast<unsigned long long>(sum.nvals), expected);
  std::printf("traffic summary: %llu links, %.0f packets, %llu sources, "
              "%llu destinations, max %.0f mean %.3f\n",
              static_cast<unsigned long long>(summary.links), summary.packets,
              static_cast<unsigned long long>(summary.sources),
              static_cast<unsigned long long>(summary.destinations),
              summary.max_link, summary.mean_link);
  std::printf("incremental refresh: epoch %llu, +%llu added, %llu changed, "
              "full_recompute=%llu, maintained sum %.1f\n",
              static_cast<unsigned long long>(refresh.epoch),
              static_cast<unsigned long long>(refresh.added),
              static_cast<unsigned long long>(refresh.changed),
              static_cast<unsigned long long>(refresh.full_recompute),
              refresh.sum);

  const bool exact = sum.sum == expected && summary.packets == expected &&
                     refresh.sum == expected;
  std::printf("round-trip: %s\n", exact ? "EXACT" : "DIVERGED");
  return exact ? 0 : 1;
}

#else  // !__linux__

int main() {
  std::printf("net_client: the ingest client is Linux-only\n");
  return 0;
}

#endif
