#!/usr/bin/env python3
"""Repo-specific invariant checks that neither the compiler nor
clang-tidy expresses directly. Run from anywhere; exits nonzero with a
file:line diagnostic per violation.

Checks:
  1. Every header under src/ starts with `#pragma once` (after the
     leading comment block) — headers must be safely multi-includable.
  2. No naked `new` outside the allowlist — ownership goes through
     containers / smart pointers (gbx/scratch.hpp owns the one audited
     arena exception).
  3. Annotated subsystems (src/hier, src/store, src/net) must not
     declare raw std::mutex / std::shared_mutex / std::condition_variable
     members or locals: they use gbx::Mutex / gbx::SharedMutex /
     gbx::CondVar from gbx/thread_annotations.hpp so the thread-safety
     analysis sees every acquisition (the wrapper header itself is the
     one allowed user of the std primitives).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Files allowed to use naked `new` (each carries its own justification
# in a comment at the use site).
NAKED_NEW_ALLOWLIST = {
    "src/gbx/scratch.hpp",
}

# Subsystems whose locking must go through gbx/thread_annotations.hpp.
ANNOTATED_SUBSYSTEMS = ("src/hier", "src/store", "src/net", "src/repl")
RAW_PRIMITIVE_ALLOWLIST = {
    "src/gbx/thread_annotations.hpp",  # the wrapper itself
}

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)
# `new` as an expression: preceded by start/space/punct, followed by a
# type. Excludes placement-new forms used by containers (none in-repo)
# and words containing "new" (renew, new_size, ...).
NAKED_NEW_RE = re.compile(r"(^|[\s(,=])new\b(?!\s*\()")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                out.append("\n")
                if mode == "line":
                    mode = None
                i += 1
                continue
            if mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            if mode == "str" and c == "\\":
                out.append("  ")
                i += 2
                continue
            if mode == "str" and c == '"':
                mode = None
                out.append(" ")
                i += 1
                continue
            if mode == "chr" and c == "\\":
                out.append("  ")
                i += 2
                continue
            if mode == "chr" and c == "'":
                mode = None
                out.append(" ")
                i += 1
                continue
            out.append(" ")
        i += 1
    return "".join(out)


def check_pragma_once(path: Path, text: str, errors: list) -> None:
    if path.suffix != ".hpp":
        return
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped != "#pragma once":
            errors.append(f"{path.relative_to(REPO)}:1: first directive must "
                          f"be '#pragma once' (found {stripped!r})")
        return
    errors.append(f"{path.relative_to(REPO)}:1: missing '#pragma once'")


def check_naked_new(path: Path, code: str, errors: list) -> None:
    rel = str(path.relative_to(REPO))
    if rel in NAKED_NEW_ALLOWLIST:
        return
    for ln, line in enumerate(code.splitlines(), 1):
        if NAKED_NEW_RE.search(line):
            errors.append(
                f"{rel}:{ln}: naked `new` — own it via a container or "
                f"smart pointer (allowlist: scripts/lint_invariants.py)")


def check_raw_primitives(path: Path, code: str, errors: list) -> None:
    rel = str(path.relative_to(REPO))
    if rel in RAW_PRIMITIVE_ALLOWLIST:
        return
    if not rel.startswith(ANNOTATED_SUBSYSTEMS):
        return
    for ln, line in enumerate(code.splitlines(), 1):
        m = RAW_PRIMITIVE_RE.search(line)
        if m:
            errors.append(
                f"{rel}:{ln}: raw std::{m.group(1)} in an annotated "
                f"subsystem — use gbx::Mutex / gbx::SharedMutex / "
                f"gbx::CondVar / gbx::Scoped*Lock "
                f"(gbx/thread_annotations.hpp)")


def main() -> int:
    errors: list = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        text = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(text)
        check_pragma_once(path, text, errors)
        check_naked_new(path, code, errors)
        check_raw_primitives(path, code, errors)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"lint_invariants: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
