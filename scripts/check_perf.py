#!/usr/bin/env python3
"""Perf-trajectory regression gate.

Compares the BENCH_*.json files produced by the current bench sweep
(scripts/run_benches.sh, or the CI smoke steps) against the committed
baselines under perf/, and fails on a significant throughput regression.

Matching: a baseline pairs with a current file by (1) identical
filename, else (2) the inner report's "bench" field (so the committed
perf/BENCH_INGEST.json matches both BENCH_ingest_smoke.json from the CI
smoke step and BENCH_bench_ingest_hotpath.json from a full sweep).

Metrics: numeric leaves of the inner report are compared by JSON path.
  * higher-is-better — keys ending in "_rate" / "rate" / "speedup" /
    "throughput": regression when current < baseline * (1 - threshold).
  * lower-is-better  — keys containing "degradation" (a fraction):
    regression when current > baseline + threshold.
Wall-clock and workload-shape fields (seconds, sizes, counts) are
deliberately ignored: workloads differ between smoke and sweep scale,
while rates are per-entry and comparable.

Exit status: 1 if any regression (or, with --require-all, any baseline
without a current measurement), 0 otherwise. Baselines are refreshed by
copying the new BENCH_*.json over perf/ in the same PR that justifies
the change — see README "CI pipeline".
"""

import argparse
import json
import os
import sys
from pathlib import Path

# "_ratio" covers same-host relative metrics (rate_ratio, reuse_ratio):
# these stay comparable across machines, whereas absolute "_rate" values
# shift with the host — keep baselines minted on the same runner class
# the gate runs on (e.g. from a nightly artifact), or widen the
# threshold via PERF_REGRESSION_THRESHOLD.
HIGHER_SUFFIXES = ("_rate", "_ratio", "speedup", "throughput")
HIGHER_EXACT = {"rate"}
LOWER_SUBSTR = ("degradation",)


def load_reports(directory: Path):
    """filename -> (file_json, inner_report_or_None)."""
    out = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: unreadable {path}: {e}", file=sys.stderr)
            continue
        report = data.get("report")
        if not isinstance(report, dict):
            report = None
        out[path.name] = (data, report)
    return out


def metric_kind(key: str):
    k = key.lower()
    if any(s in k for s in LOWER_SUBSTR):
        return "lower"
    if k in HIGHER_EXACT or any(k.endswith(s) for s in HIGHER_SUFFIXES):
        return "higher"
    return None


def walk_metrics(node, path=""):
    """Yield (json_path, kind, value) for every comparable numeric leaf."""
    if isinstance(node, dict):
        for key, val in node.items():
            sub = f"{path}.{key}" if path else key
            if isinstance(val, (dict, list)):
                yield from walk_metrics(val, sub)
            elif isinstance(val, (int, float)) and not isinstance(val, bool):
                kind = metric_kind(key)
                if kind:
                    yield sub, kind, float(val)
    elif isinstance(node, list):
        for i, val in enumerate(node):
            yield from walk_metrics(val, f"{path}[{i}]")


def pair_current(name, baseline_report, currents):
    """Find the current report for one baseline (filename, then bench id)."""
    if name in currents and currents[name][1] is not None:
        return name, currents[name][1]
    bench_id = (baseline_report or {}).get("bench")
    if bench_id is None:
        return None, None
    for cur_name, (_, cur_report) in currents.items():
        if cur_report is not None and cur_report.get("bench") == bench_id:
            return cur_name, cur_report
    return None, None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="perf", type=Path,
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--current", default="build/bench_results", type=Path,
                    help="directory with this run's BENCH_*.json files")
    ap.add_argument("--threshold", type=float,
                    default=float(os.environ.get(
                        "PERF_REGRESSION_THRESHOLD", "0.30")),
                    help="relative regression tolerance (default 0.30; env "
                         "PERF_REGRESSION_THRESHOLD)")
    ap.add_argument("--require-all", action="store_true",
                    help="fail if any baseline has no current measurement "
                         "(nightly full-sweep mode)")
    args = ap.parse_args()

    if not args.baseline.is_dir():
        print(f"error: baseline dir {args.baseline} not found", file=sys.stderr)
        return 2
    if not args.current.is_dir():
        print(f"error: current dir {args.current} not found "
              "(run the bench sweep first)", file=sys.stderr)
        return 2

    baselines = load_reports(args.baseline)
    currents = load_reports(args.current)

    regressions = []
    missing = []
    compared = 0

    for name, (_, base_report) in baselines.items():
        if base_report is None:
            print(f"-- {name}: no machine-readable report in baseline, skipped")
            continue
        cur_name, cur_report = pair_current(name, base_report, currents)
        if cur_report is None:
            missing.append(name)
            print(f"-- {name}: no current measurement"
                  f"{' (REQUIRED)' if args.require_all else ''}")
            continue
        base_metrics = dict((p, (k, v)) for p, k, v in walk_metrics(base_report))
        cur_metrics = dict((p, (k, v)) for p, k, v in walk_metrics(cur_report))
        print(f"== {name} vs {cur_name}")
        for path, (kind, base_val) in sorted(base_metrics.items()):
            if path not in cur_metrics:
                continue
            cur_val = cur_metrics[path][1]
            compared += 1
            if kind == "higher":
                bad = base_val > 0 and cur_val < base_val * (1 - args.threshold)
                delta = (cur_val / base_val - 1) * 100 if base_val else 0.0
            else:  # lower-is-better fraction
                bad = cur_val > base_val + args.threshold
                delta = (cur_val - base_val) * 100
            mark = "REGRESSION" if bad else "ok"
            print(f"   {path}: base={base_val:.6g} cur={cur_val:.6g} "
                  f"({delta:+.1f}{'%' if kind == 'higher' else 'pp'}) {mark}")
            if bad:
                regressions.append((name, path, base_val, cur_val))

    for name in currents:
        if name not in baselines and not any(
                (b[1] or {}).get("bench") == (currents[name][1] or {}).get("bench")
                for b in baselines.values()):
            print(f"-- {name}: no committed baseline — consider adding it "
                  f"under {args.baseline}/")

    print(f"\ncompared {compared} metrics across {len(baselines)} baselines "
          f"(threshold {args.threshold:.0%})")
    if regressions:
        print("\nPERF REGRESSIONS:")
        for name, path, base_val, cur_val in regressions:
            print(f"  {name} {path}: {base_val:.6g} -> {cur_val:.6g}")
        print("If intentional (algorithm change, new gate), refresh the "
              "baseline JSON under perf/ in this PR and explain why.")
        return 1
    if args.require_all and missing:
        print(f"\nMISSING MEASUREMENTS for: {', '.join(missing)}")
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
