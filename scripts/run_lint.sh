#!/usr/bin/env bash
# Diff-aware clang-tidy driver.
#
#   scripts/run_lint.sh             # lint files changed vs origin/main (or HEAD~1)
#   scripts/run_lint.sh --all       # lint every source file
#   scripts/run_lint.sh src/a.cpp   # lint specific files
#
# Needs a compile_commands.json; generates one into build-tidy/ if no
# build directory has it yet. Degrades gracefully (exit 0 with a notice)
# when clang-tidy is not installed, so pre-push hooks can call it
# unconditionally.
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "run_lint: ${TIDY} not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi

# Locate (or create) compile_commands.json.
DB_DIR=""
for d in build build-tidy build-*; do
  if [[ -f "${d}/compile_commands.json" ]]; then
    DB_DIR="${d}"
    break
  fi
done
if [[ -z "${DB_DIR}" ]]; then
  echo "run_lint: generating compile_commands.json in build-tidy/" >&2
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DHHGBX_BUILD_BENCH=OFF -DHHGBX_BUILD_EXAMPLES=OFF >/dev/null
  DB_DIR="build-tidy"
fi

# Pick the file set.
declare -a FILES=()
if [[ $# -gt 0 && "$1" == "--all" ]]; then
  while IFS= read -r f; do FILES+=("$f"); done \
    < <(git ls-files 'src/**/*.cpp' 'src/*.cpp' 'tests/*.cpp')
elif [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  BASE="$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1 2>/dev/null || echo '')"
  if [[ -n "${BASE}" ]]; then
    while IFS= read -r f; do
      [[ "$f" == *.cpp || "$f" == *.hpp ]] && FILES+=("$f")
    done < <(git diff --name-only --diff-filter=d "${BASE}" -- 'src/' 'tests/')
  fi
fi

# Headers have no compile command of their own; lint them through every
# TU that includes them (HeaderFilterRegex covers src/). Swap each .hpp
# for the TUs that pull it in.
declare -a TUS=()
for f in "${FILES[@]}"; do
  case "$f" in
    *.cpp) TUS+=("$f") ;;
    *.hpp)
      base="$(basename "$f")"
      while IFS= read -r tu; do TUS+=("$tu"); done \
        < <(grep -rl --include='*.cpp' "${base}" src/ tests/ 2>/dev/null || true)
      ;;
  esac
done

if [[ ${#TUS[@]} -eq 0 ]]; then
  echo "run_lint: nothing to lint"
  exit 0
fi

# De-dup while keeping order.
declare -a UNIQ=()
declare -A SEEN=()
for tu in "${TUS[@]}"; do
  if [[ -z "${SEEN[$tu]:-}" ]]; then
    SEEN[$tu]=1
    UNIQ+=("$tu")
  fi
done

echo "run_lint: ${#UNIQ[@]} translation unit(s) via ${DB_DIR}/compile_commands.json"
"${TIDY}" -p "${DB_DIR}" --quiet "${UNIQ[@]}"
echo "run_lint: clean"
