#!/usr/bin/env bash
# Run every built benchmark and emit one BENCH_<name>.json per bench for
# the perf trajectory. Each JSON records the exit code, wall seconds, the
# bench's own machine-readable "BENCH_JSON {...}" line when it prints
# one, and the path of the captured stdout.
#
# Gating benches in the sweep:
#   bench_parallel_stream — Fig. 2 shape (monotone aggregate rate).
#   bench_snapshot_query  — query-while-ingest insert-rate degradation
#                           (< SNAPQ_MAX_DEGRADATION with 4 readers,
#                           enforced only on hosts with enough hardware
#                           threads; see the bench for details).
#   bench_snapshot_delta  — incremental analytics on snapshot deltas:
#                           engine.refresh() must be ≥
#                           BENCH_DELTA_MIN_SPEEDUP times faster than a
#                           from-scratch pass at ≤1% churn AND match it
#                           exactly (bit-identical Σ Ai, exact triangle
#                           and summary counts, tolerance-exact warm
#                           PageRank). Exactness is enforced on every
#                           host; the bench exits non-zero on any miss.
#   bench_ingest_hotpath  — fused radix fold pipeline vs the seed
#                           pipeline on identical streams: single-lane
#                           fold throughput must be ≥
#                           BENCH_INGEST_MIN_SPEEDUP (default 1.5) and
#                           Σ Ai must be bit-identical to direct
#                           accumulation. INGEST_SETS / INGEST_SET_SIZE
#                           shrink the workload for CI.
#   bench_eviction        — memory-governed snapshot eviction: with a
#                           budget B and a reader lagging ≥8 epochs,
#                           peak identity-deduped pinned bytes must stay
#                           ≤ B + one-block-per-shard slack AND return
#                           under B after enforcement, every evicted-
#                           reader read must be bit-identical to the
#                           unevicted baseline, and governed ingest
#                           throughput must stay ≥ EVICT_MIN_RATE_RATIO
#                           (default 0.9) of the governor-off run.
#                           EVICT_SETS / EVICT_SET_SIZE shrink for CI.
#   bench_outofcore       — out-of-core tiering: a demoting HierMatrix
#                           streams >= 3x its resident budget through a
#                           file-backed BlockStore; every sweep point
#                           must be bit-identical to an in-memory twin,
#                           resident bytes must respect the budget, and
#                           the demoting ingest rate must stay ≥
#                           OUTOFCORE_MIN_RATE_RATIO (default 0.8) of
#                           the in-memory run. OOC_SETS / OOC_SET_SIZE
#                           shrink the workload for CI; OOC_DIR points
#                           the store at a specific filesystem (e.g.
#                           tmpfs).
#   bench_net_ingest      — loopback ingest through net::IngestServer,
#                           1..N concurrent clients: the server's Σ Ai
#                           must equal the streamed entry count exactly
#                           at every sweep point (the bench exits
#                           non-zero otherwise); aggregate insert_rate
#                           feeds the perf trajectory. NET_CLIENTS /
#                           NET_SETS / NET_SET_SIZE shrink for CI.
#   bench_replication     — WAL shipping to a live replica: ingest rate
#                           with the replication chain armed vs off,
#                           with Σ Ai checked exactly on BOTH ends.
#                           rate_ratio must stay ≥ REPL_MIN_RATE_RATIO
#                           (default 0.85) on hosts with ≥ 4 hardware
#                           threads; below that the chain has nothing
#                           to pipeline on and the floor falls back to
#                           REPL_MIN_RATE_RATIO_SERIAL (default 0.30,
#                           still failing stalls and ack starvation).
#                           REPL_CLIENTS / REPL_SETS / REPL_SET_SIZE
#                           shrink the workload for CI.
#   bench_cluster_ingest  — multi-process sharding: P forked worker
#                           processes behind cluster::Router, P clients
#                           streaming through it. The epoch-stitched
#                           Σ Ai must equal the streamed entry count
#                           exactly at every P (exits non-zero
#                           otherwise); scaling_ratio = rate(maxP)/
#                           rate(1) must stay ≥ CLUSTER_MIN_SCALING
#                           (default 1.0, monotone) on hosts with ≥ 2x
#                           the worker count in hardware threads, else
#                           ≥ CLUSTER_MIN_SCALING_SERIAL (default 0.25,
#                           still failing livelocks and per-worker
#                           serialization). CLUSTER_MAX_WORKERS /
#                           CLUSTER_SETS / CLUSTER_SET_SIZE shrink the
#                           workload for CI.
#
# Usage: scripts/run_benches.sh [build-dir] [output-dir]
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/bench_results}"
PER_BENCH_TIMEOUT="${BENCH_TIMEOUT:-900}"
# Degradation budget for bench_snapshot_query (ISSUE acceptance: 0.30).
export SNAPQ_MAX_DEGRADATION="${SNAPQ_MAX_DEGRADATION:-0.30}"
# Speedup floor for bench_snapshot_delta (ISSUE acceptance: 5x).
export BENCH_DELTA_MIN_SPEEDUP="${BENCH_DELTA_MIN_SPEEDUP:-5.0}"
# Speedup floor for bench_ingest_hotpath (ISSUE acceptance: 1.5x).
export BENCH_INGEST_MIN_SPEEDUP="${BENCH_INGEST_MIN_SPEEDUP:-1.5}"
# Rate floor for bench_outofcore (ISSUE acceptance: 0.8x in-memory).
export OUTOFCORE_MIN_RATE_RATIO="${OUTOFCORE_MIN_RATE_RATIO:-0.8}"
# Rate floors for bench_replication (ISSUE acceptance: 0.85x with cores
# to pipeline the shipping chain on; serial hosts measure work ratio).
export REPL_MIN_RATE_RATIO="${REPL_MIN_RATE_RATIO:-0.85}"
export REPL_MIN_RATE_RATIO_SERIAL="${REPL_MIN_RATE_RATIO_SERIAL:-0.30}"
# Scaling floors for bench_cluster_ingest (ISSUE acceptance: monotone
# aggregate rate with enough hardware threads for the whole topology).
export CLUSTER_MIN_SCALING="${CLUSTER_MIN_SCALING:-1.0}"
export CLUSTER_MIN_SCALING_SERIAL="${CLUSTER_MIN_SCALING_SERIAL:-0.25}"
# Space-separated bench names to skip (e.g. a gate already run by a
# dedicated CI step — avoids paying for the same bench twice).
BENCH_SKIP="${BENCH_SKIP:-}"

if [ ! -d "${BUILD_DIR}/bench" ]; then
  echo "error: ${BUILD_DIR}/bench not found — configure with -DHHGBX_BUILD_BENCH=ON and build first" >&2
  exit 2
fi

mkdir -p "${OUT_DIR}"
overall=0

for exe in "${BUILD_DIR}"/bench/bench_*; do
  [ -x "${exe}" ] || continue
  name="$(basename "${exe}")"
  case " ${BENCH_SKIP} " in
    *" ${name} "*) echo "== ${name} (skipped via BENCH_SKIP)"; continue ;;
  esac
  log="${OUT_DIR}/${name}.txt"
  json="${OUT_DIR}/BENCH_${name}.json"

  echo "== ${name}"
  start="$(date +%s.%N)"
  timeout "${PER_BENCH_TIMEOUT}" "${exe}" >"${log}" 2>&1
  code=$?
  end="$(date +%s.%N)"
  [ "${code}" -eq 0 ] || overall=1

  # Last self-reported BENCH_JSON line, if the bench prints one.
  inner="$(grep '^BENCH_JSON ' "${log}" | tail -1 | sed 's/^BENCH_JSON //')"
  [ -n "${inner}" ] || inner=null

  secs="$(awk -v a="${start}" -v b="${end}" 'BEGIN { printf "%.3f", b - a }')"
  cat >"${json}" <<EOF
{
  "bench": "${name}",
  "exit_code": ${code},
  "wall_seconds": ${secs},
  "stdout": "${log}",
  "report": ${inner}
}
EOF
  echo "   exit=${code} wall=${secs}s -> ${json}"
done

exit "${overall}"
