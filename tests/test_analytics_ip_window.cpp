// Tests for IP/CIDR utilities and temporal tumbling windows.
#include <gtest/gtest.h>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"

namespace {

using gbx::Index;

TEST(Ip, ParseFormatRoundTrip) {
  for (const char* s : {"0.0.0.0", "10.0.0.1", "192.168.1.255", "255.255.255.255"}) {
    auto ip = analytics::parse_ipv4(s);
    ASSERT_TRUE(ip.has_value()) << s;
    EXPECT_EQ(analytics::format_ipv4(*ip), s);
  }
  EXPECT_EQ(analytics::parse_ipv4("8.8.8.8").value(), 0x08080808u);
}

TEST(Ip, ParseRejectsMalformed) {
  for (const char* s : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1..2.3",
                        "a.b.c.d", "1.2.3.4 ", "1.2.3.-4", "0001.2.3.4"}) {
    EXPECT_FALSE(analytics::parse_ipv4(s).has_value()) << s;
  }
}

TEST(Ip, FormatRejectsOutOfRange) {
  EXPECT_THROW(analytics::format_ipv4(gbx::Index{1} << 32), gbx::InvalidValue);
}

TEST(Cidr, ParseValid) {
  auto r = analytics::parse_cidr("10.1.0.0/16");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 0x0A010000u);
  EXPECT_EQ(r->hi, 0x0A020000u);
  EXPECT_EQ(r->size(), 65536u);

  auto slash32 = analytics::parse_cidr("1.2.3.4/32");
  ASSERT_TRUE(slash32.has_value());
  EXPECT_EQ(slash32->size(), 1u);

  auto all = analytics::parse_cidr("0.0.0.0/0");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), gbx::Index{1} << 32);
}

TEST(Cidr, ParseRejects) {
  for (const char* s : {"10.1.0.0", "10.1.0.0/33", "10.1.0.0/-1", "10.1.0.1/16",
                        "10.1.0.0/1x", "nope/8"}) {
    EXPECT_FALSE(analytics::parse_cidr(s).has_value()) << s;
  }
}

TEST(Cidr, SubnetView) {
  gbx::Matrix<double> traffic(gbx::kIPv4Dim, gbx::kIPv4Dim);
  const Index inside_src = analytics::parse_ipv4("10.1.2.3").value();
  const Index inside_dst = analytics::parse_ipv4("172.16.0.5").value();
  const Index outside = analytics::parse_ipv4("8.8.8.8").value();
  traffic.set_element(inside_src, inside_dst, 100.0);
  traffic.set_element(outside, inside_dst, 1.0);
  traffic.set_element(inside_src, outside, 2.0);

  auto src = analytics::parse_cidr("10.1.0.0/16").value();
  auto dst = analytics::parse_cidr("172.16.0.0/12").value();
  auto view = analytics::subnet_view(traffic, src, dst);
  EXPECT_EQ(view.nvals(), 1u);
  // Rebased coordinates: 10.1.2.3 - 10.1.0.0 = 0x0203
  EXPECT_DOUBLE_EQ(view.extract_element(0x0203, 5).value(), 100.0);
}

TEST(Windows, UpdateGoesToCurrent) {
  analytics::TumblingWindows<double> w(3, 100, 100, hier::CutPolicy({10}));
  w.update(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(w.window(0).extract_element(1, 1).value(), 5.0);
  EXPECT_EQ(w.window(1).nvals(), 0u);
}

TEST(Windows, AdvanceRotatesAndExpires) {
  analytics::TumblingWindows<double> w(2, 100, 100, hier::CutPolicy({10}));
  w.update(1, 1, 1.0);   // epoch 0
  w.advance();
  w.update(2, 2, 2.0);   // epoch 1
  EXPECT_EQ(w.epoch(), 1u);
  // window(1) is the old epoch
  EXPECT_DOUBLE_EQ(w.window(1).extract_element(1, 1).value(), 1.0);
  w.advance();           // recycles the slot holding epoch 0
  w.update(3, 3, 3.0);
  EXPECT_EQ(w.window(0).nvals(), 1u);
  EXPECT_DOUBLE_EQ(w.window(1).extract_element(2, 2).value(), 2.0);
  // epoch-0 contents are gone from every view
  EXPECT_FALSE(w.total().extract_element(1, 1).has_value());
}

TEST(Windows, TotalIsUnionOfLiveWindows) {
  analytics::TumblingWindows<double> w(3, 100, 100, hier::CutPolicy({10}));
  w.update(1, 1, 1.0);
  w.advance();
  w.update(1, 1, 10.0);  // same coordinate in a newer window
  w.update(2, 2, 2.0);
  auto t = w.total();
  EXPECT_DOUBLE_EQ(t.extract_element(1, 1).value(), 11.0);
  EXPECT_DOUBLE_EQ(t.extract_element(2, 2).value(), 2.0);
}

TEST(Windows, OccupancyOrdering) {
  analytics::TumblingWindows<double> w(3, 1000, 1000, hier::CutPolicy({1000}));
  gbx::Tuples<double> batch;
  for (Index k = 0; k < 100; ++k) batch.push_back(k, k, 1.0);
  w.update(batch);
  auto occ = w.occupancy();
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_EQ(occ[0], 100u);
  EXPECT_EQ(occ[1], 0u);
}

TEST(Windows, Validation) {
  EXPECT_THROW(analytics::TumblingWindows<double>(0, 10, 10,
                                                  hier::CutPolicy({5})),
               gbx::InvalidValue);
  analytics::TumblingWindows<double> w(2, 10, 10, hier::CutPolicy({5}));
  EXPECT_THROW(w.window(2), gbx::IndexOutOfBounds);
}

TEST(Windows, SupernodeDriftAcrossWindows) {
  // The motivating temporal-fluctuation analysis: the dominant talker in
  // window 1 differs from window 2, visible via per-window top_sources.
  analytics::TumblingWindows<double> w(2, 1000, 1000, hier::CutPolicy({100000}));
  for (int k = 0; k < 100; ++k) w.update(7, static_cast<Index>(k), 10.0);
  w.advance();
  for (int k = 0; k < 100; ++k) w.update(42, static_cast<Index>(k), 10.0);

  auto now = analytics::top_sources(w.window(0), 1);
  auto before = analytics::top_sources(w.window(1), 1);
  ASSERT_FALSE(now.empty());
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(now[0].id, 42u);
  EXPECT_EQ(before[0].id, 7u);
}

}  // namespace
