// Tests for the workload generators: determinism, distribution shape,
// stream partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"

namespace {

TEST(Rng, SplitmixDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  const auto a = gen::splitmix64(s1);
  EXPECT_EQ(a, gen::splitmix64(s2));
  EXPECT_EQ(s1, s2);
  // consecutive outputs differ (state advanced)
  EXPECT_NE(gen::splitmix64(s1), a);
}

TEST(Rng, XoshiroDeterministicAndSpread) {
  gen::Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  // different seeds diverge
  gen::Xoshiro256 a2(7);
  bool diverged = false;
  for (int i = 0; i < 10; ++i) diverged |= (a2.next() != c.next());
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowInRange) {
  gen::Xoshiro256 r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Mix64IsInjectiveOnSample) {
  std::map<std::uint64_t, std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 100000; ++x) {
    auto y = gen::mix64(x);
    auto [it, fresh] = seen.emplace(y, x);
    ASSERT_TRUE(fresh) << "collision between " << x << " and " << it->second;
  }
}

TEST(AliasTable, MatchesWeights) {
  std::vector<double> w{1.0, 2.0, 4.0, 8.0};  // p = 1/15, 2/15, 4/15, 8/15
  gen::AliasTable t(w);
  gen::Xoshiro256 rng(11);
  std::vector<std::size_t> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[t.sample(rng)];
  for (int k = 0; k < 4; ++k) {
    const double expect = w[static_cast<std::size_t>(k)] / 15.0;
    const double got = static_cast<double>(counts[static_cast<std::size_t>(k)]) / n;
    EXPECT_NEAR(got, expect, 0.01) << "bucket " << k;
  }
}

TEST(AliasTable, Validation) {
  EXPECT_THROW(gen::AliasTable(std::vector<double>{}), gbx::InvalidValue);
  EXPECT_THROW(gen::AliasTable(std::vector<double>{0, 0}), gbx::InvalidValue);
  EXPECT_THROW(gen::AliasTable(std::vector<double>{1, -1}), gbx::InvalidValue);
  EXPECT_NO_THROW(gen::AliasTable(std::vector<double>{0, 1}));
}

TEST(PowerLaw, DeterministicPerSeed) {
  gen::PowerLawParams p;
  p.scale = 10;
  p.seed = 5;
  gen::PowerLawGenerator g1(p), g2(p);
  auto b1 = g1.batch<double>(1000);
  auto b2 = g2.batch<double>(1000);
  ASSERT_EQ(b1.size(), b2.size());
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i].row, b2[i].row);
    EXPECT_EQ(b1[i].col, b2[i].col);
  }
}

TEST(PowerLaw, CoordinatesWithinDim) {
  gen::PowerLawParams p;
  p.scale = 12;
  p.dim = 1u << 20;
  gen::PowerLawGenerator g(p);
  auto b = g.batch<double>(20000);
  for (const auto& e : b) {
    EXPECT_LT(e.row, p.dim);
    EXPECT_LT(e.col, p.dim);
  }
}

TEST(PowerLaw, DegreeDistributionHasPowerLawTail) {
  gen::PowerLawParams p;
  p.scale = 12;
  p.alpha = 1.4;
  p.scatter = false;  // keep raw ranks so the shape is directly visible
  p.dim = 1u << 12;
  gen::PowerLawGenerator g(p);

  gbx::Matrix<double> m(p.dim, p.dim);
  m.append(g.batch<double>(200000));
  m.materialize();
  auto hist = analytics::out_degree_histogram(m);
  const double slope = analytics::power_law_slope(hist);
  // Power-law degree distributions show strongly negative log-log slope.
  EXPECT_LT(slope, -0.5) << "slope " << slope << " is not heavy-tailed";
}

TEST(PowerLaw, ScatterPreservesMultiset) {
  // Scatter is a deterministic relabeling: the multiset of degree values
  // must be identical with and without it.
  gen::PowerLawParams p1, p2;
  p1.scale = p2.scale = 10;
  p1.seed = p2.seed = 9;
  p1.scatter = false;
  p1.dim = 1u << 10;
  p2.scatter = true;
  p2.dim = gbx::kIPv4Dim;
  gen::PowerLawGenerator g1(p1), g2(p2);
  auto b1 = g1.batch<double>(30000);
  auto b2 = g2.batch<double>(30000);

  std::map<gbx::Index, int> c1, c2;
  for (const auto& e : b1) ++c1[e.row];
  for (const auto& e : b2) ++c2[e.row];
  std::vector<int> v1, v2;
  for (auto& [k, c] : c1) v1.push_back(c);
  for (auto& [k, c] : c2) v2.push_back(c);
  std::sort(v1.begin(), v1.end());
  std::sort(v2.begin(), v2.end());
  // mix64 collisions into dim >> population are negligible but possible;
  // allow the tiniest slack in the comparison.
  ASSERT_NEAR(static_cast<double>(v1.size()),
              static_cast<double>(v2.size()), 2.0);
}

TEST(PowerLaw, Validation) {
  gen::PowerLawParams p;
  p.scale = 0;
  EXPECT_THROW(gen::PowerLawGenerator{p}, gbx::InvalidValue);
  p.scale = 12;
  p.dim = 100;  // smaller than 2^12 population
  EXPECT_THROW(gen::PowerLawGenerator{p}, gbx::InvalidValue);
}

TEST(Kronecker, EdgesWithinVertexSpace) {
  gen::KroneckerParams p;
  p.scale = 10;
  gen::KroneckerGenerator g(p);
  for (int i = 0; i < 10000; ++i) {
    auto [u, v] = g.edge();
    EXPECT_LT(u, g.nverts());
    EXPECT_LT(v, g.nverts());
  }
}

TEST(Kronecker, SkewTowardLowIdsWithoutScramble) {
  gen::KroneckerParams p;
  p.scale = 16;
  p.scramble = false;
  gen::KroneckerGenerator g(p);
  std::size_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    auto [u, v] = g.edge();
    if (u < g.nverts() / 2) ++low;
  }
  // With A+B = 0.76 mass in the top half of the recursion, low ids are
  // strongly favoured.
  EXPECT_GT(static_cast<double>(low) / n, 0.65);
}

TEST(Kronecker, Validation) {
  gen::KroneckerParams p;
  p.a = 0.0;
  EXPECT_THROW(gen::KroneckerGenerator{p}, gbx::InvalidValue);
  p = {};
  p.a = 0.5;
  p.b = 0.3;
  p.c = 0.3;
  EXPECT_THROW(gen::KroneckerGenerator{p}, gbx::InvalidValue);
}

TEST(Stream, PaperPlanShape) {
  auto plan = gen::StreamPlan::paper();
  EXPECT_EQ(plan.sets, 1000u);
  EXPECT_EQ(plan.set_size, 100000u);
  EXPECT_EQ(plan.total_entries(), 100000000u);
}

TEST(Stream, EmitsExactlyPlannedSets) {
  gen::PowerLawParams p;
  p.scale = 8;
  gen::PowerLawGenerator g(p);
  gen::EdgeStream<gen::PowerLawGenerator, double> stream(
      g, gen::StreamPlan::scaled(5, 100));
  std::size_t sets = 0, entries = 0;
  while (!stream.done()) {
    auto batch = stream.next();
    entries += batch.size();
    ++sets;
  }
  EXPECT_EQ(sets, 5u);
  EXPECT_EQ(entries, 500u);
  EXPECT_THROW(stream.next(), gbx::Error);
}

TEST(Stream, ReusableBuffer) {
  gen::PowerLawParams p;
  p.scale = 8;
  gen::PowerLawGenerator g(p);
  gen::EdgeStream<gen::PowerLawGenerator, double> stream(
      g, gen::StreamPlan::scaled(3, 50));
  gbx::Tuples<double> buf;
  while (!stream.done()) {
    stream.next(buf);
    EXPECT_EQ(buf.size(), 50u);
  }
}

}  // namespace
