// Tests for the epoll streaming ingest server (net/). The central
// oracle is end-to-end exactness: batches streamed through sockets by
// concurrent clients must produce a logical matrix IDENTICAL to direct
// in-process ingest of the same batches — same Σ Ai (value-1 inserts
// sum exactly in double regardless of arrival order), same nnz, same
// per-coordinate counts. On top of that: the protocol must reject
// malformed and truncated frames without crashing or misclassifying
// them, lane back-pressure must throttle only the connection feeding
// the full lane, and stop() must come back cleanly with sessions still
// in flight.
//
// The server is Linux-only (epoll); elsewhere this suite compiles to a
// single trivially-passing placeholder.
#include <gtest/gtest.h>

#ifdef __linux__

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gbx/error.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"
#include "hier/memory_governor.hpp"
#include "net/net.hpp"

// The two saturation tests assert that a fast producer OUTRUNS the
// server (lane queue fills, reply backlog hits its cap). Under TSan
// the ~10x slowdown plus OpenMP-region barriers shift those relative
// speeds unpredictably, so the race-to-saturate premise itself is
// unsound there; the paths stay exercised by the normal and ASan CI
// legs.
#if defined(__SANITIZE_THREAD__)
#define GBX_SKIP_SATURATION_TIMING() \
  GTEST_SKIP() << "saturation timing is not meaningful under TSan"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GBX_SKIP_SATURATION_TIMING() \
  GTEST_SKIP() << "saturation timing is not meaningful under TSan"
#endif
#endif
#ifndef GBX_SKIP_SATURATION_TIMING
#define GBX_SKIP_SATURATION_TIMING() \
  do {                               \
  } while (0)
#endif

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;
using hier::InstanceArray;
using hier::MemoryGovernor;
using hier::ParallelStream;
using hier::ShardedHier;

constexpr int kScale = 16;
constexpr Index kDim = Index{1} << kScale;

gen::KroneckerGenerator kron(std::uint64_t seed) {
  gen::KroneckerParams kp;
  kp.scale = kScale;
  kp.seed = seed;
  return gen::KroneckerGenerator(kp);
}

/// Server fixture: lanes + governor + server, started and torn down in
/// the right order (server first, then stream).
struct ServerHarness {
  explicit ServerHarness(std::size_t lanes,
                         hier::ParallelStream<double>::Options popt = {},
                         net::IngestServer::Options sopt = {})
      : array(lanes, kDim, kDim, CutPolicy::geometric(3, 2048, 8)),
        stream(array, popt),
        governor(stream) {
    stream.start();
    server.emplace(stream, governor, sopt);
    server->start();
  }

  ~ServerHarness() {
    if (server->running()) server->stop();
    if (stream.running()) stream.stop();
  }

  InstanceArray<double> array;
  ParallelStream<double> stream;
  MemoryGovernor<ParallelStream<double>> governor;
  std::optional<net::IngestServer> server;
};

TEST(NetServer, ConcurrentClientsMatchDirectIngestExactly) {
  const std::size_t clients = 4, batches = 12, batch_size = 4000;
  ServerHarness h(clients);

  // Pre-generate every batch so the oracle ingests the identical data.
  std::vector<std::vector<Tuples<double>>> work(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    auto g = kron(101 + c);
    for (std::size_t b = 0; b < batches; ++b)
      work[c].push_back(g.batch<double>(batch_size));
  }

  // Direct in-process oracle: same batches through a ShardedHier.
  ShardedHier<double> oracle(8, kDim, kDim, CutPolicy::geometric(3, 2048, 8));
  for (const auto& cw : work)
    for (const auto& b : cw) oracle.update(b);
  auto oracle_snap = oracle.freeze();
  const double oracle_sum = oracle_snap.reduce();
  const std::size_t oracle_nvals = oracle_snap.nvals();
  ASSERT_EQ(oracle_sum, static_cast<double>(clients * batches * batch_size));

  // N client threads stream concurrently, one lane each.
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client cl;
      cl.connect("127.0.0.1", h.server->port());
      for (const auto& b : work[c]) cl.insert(b, c);
      cl.flush();
      cl.bye();
    });
  }
  for (auto& t : threads) t.join();

  net::Client q;
  q.connect("127.0.0.1", h.server->port());

  auto sum = q.query_sum();
  EXPECT_EQ(sum.sum, oracle_sum) << "socket ingest diverged from direct";
  EXPECT_EQ(sum.nvals, oracle_nvals);
  EXPECT_GT(sum.epoch, 0u);

  // Per-coordinate probes: counts are integers, equality is exact.
  std::vector<net::ElementQuery> probes;
  for (std::size_t c = 0; c < clients; ++c)
    for (std::size_t i = 0; i < 25; ++i) {
      const auto& e = work[c][0].entries()[i * 7];
      probes.push_back({e.row, e.col});
    }
  probes.push_back({kDim - 1, kDim - 1});  // likely absent
  auto replies = q.query_elements(probes);
  ASSERT_EQ(replies.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    auto want = oracle_snap.extract_element(probes[i].row, probes[i].col);
    EXPECT_EQ(replies[i].present != 0, want.has_value()) << "probe " << i;
    if (want) {
      EXPECT_EQ(replies[i].value, *want) << "probe " << i;
    }
  }

  // Analytics RPCs over the same logical matrix: structural counts are
  // exact; packets is a sum of integer-valued doubles, also exact.
  auto summary = q.query_summary();
  EXPECT_EQ(summary.links, oracle_nvals);
  EXPECT_EQ(summary.packets, oracle_sum);
  EXPECT_GT(summary.sources, 0u);
  EXPECT_GT(summary.destinations, 0u);

  auto refresh = q.query_refresh();
  EXPECT_EQ(refresh.sum, oracle_sum);
  EXPECT_EQ(refresh.epoch, summary.epoch);
  q.bye();

  EXPECT_EQ(h.server->stats().insert_frames.load(), clients * batches);
  EXPECT_EQ(h.server->stats().entries_ingested.load(),
            clients * batches * batch_size);
  EXPECT_EQ(h.server->stats().rejected_frames.load(), 0u);
}

TEST(NetServer, MalformedFramesEarnErrorReplyAndClose) {
  ServerHarness h(1);

  {  // Garbage bytes: bad magic -> kReplyError, then EOF.
    net::Client cl;
    cl.connect("127.0.0.1", h.server->port());
    std::vector<unsigned char> junk(32, 0xAB);
    cl.send_raw(junk.data(), junk.size());
    auto rec = cl.read_reply();
    EXPECT_EQ(net::tag_type(rec.epoch), net::MsgType::kReplyError);
    EXPECT_THROW(cl.read_reply(), gbx::Error);  // server closed the session
  }

  {  // Valid framing, corrupted payload byte: checksum mismatch.
    net::Client cl;
    cl.connect("127.0.0.1", h.server->port());
    auto g = kron(5);
    auto batch = g.batch<double>(64);
    std::string frame;
    const auto& es = batch.entries();
    net::append_frame(frame, net::MsgType::kInsert, 0, es.data(),
                      es.size() * sizeof(es[0]));
    frame[40] ^= 0x1;  // flip one payload bit
    cl.send_raw(frame.data(), frame.size());
    auto rec = cl.read_reply();
    EXPECT_EQ(net::tag_type(rec.epoch), net::MsgType::kReplyError);
    std::string what(reinterpret_cast<const char*>(rec.payload.data()),
                     rec.payload.size());
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
  }

  {  // Payload that is not a whole number of entries.
    net::Client cl;
    cl.connect("127.0.0.1", h.server->port());
    std::string frame;
    const char odd[7] = {0};
    net::append_frame(frame, net::MsgType::kInsert, 0, odd, sizeof odd);
    cl.send_raw(frame.data(), frame.size());
    auto rec = cl.read_reply();
    EXPECT_EQ(net::tag_type(rec.epoch), net::MsgType::kReplyError);
  }

  const auto rejected_before =
      h.server->stats().rejected_frames.load(std::memory_order_relaxed);
  EXPECT_GE(rejected_before, 3u);

  {  // Truncated frame (torn tail): counted, dropped, no crash.
    net::Client cl;
    cl.connect("127.0.0.1", h.server->port());
    auto g = kron(6);
    auto batch = g.batch<double>(64);
    std::string frame;
    const auto& es = batch.entries();
    net::append_frame(frame, net::MsgType::kInsert, 0, es.data(),
                      es.size() * sizeof(es[0]));
    cl.send_raw(frame.data(), frame.size() / 2);
    cl.close();  // mid-frame EOF
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (h.server->stats().rejected_frames.load(std::memory_order_relaxed) <=
               rejected_before &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(h.server->stats().rejected_frames.load(std::memory_order_relaxed),
              rejected_before);
  }

  // A well-formed session on the same server still works afterwards.
  net::Client cl;
  cl.connect("127.0.0.1", h.server->port());
  auto g = kron(7);
  cl.insert(g.batch<double>(500), 0);
  cl.flush();
  EXPECT_EQ(cl.query_sum().sum, 500.0);
  cl.bye();
}

TEST(NetServer, OutOfRangeInsertCoordinateIsRejectedNotFatal) {
  ServerHarness h(1);

  {  // Well-framed kInsert whose coordinate exceeds the matrix dims:
     // must be a per-session error reply + close, never an exception
     // inside a lane worker (which would std::terminate the server).
    net::Client cl;
    cl.connect("127.0.0.1", h.server->port());
    std::vector<gbx::Entry<double>> es = {{0, 0, 1.0}, {kDim, 0, 1.0}};
    std::string frame;
    net::append_frame(frame, net::MsgType::kInsert, 0, es.data(),
                      es.size() * sizeof(es[0]));
    cl.send_raw(frame.data(), frame.size());
    auto rec = cl.read_reply();
    EXPECT_EQ(net::tag_type(rec.epoch), net::MsgType::kReplyError);
    std::string what(reinterpret_cast<const char*>(rec.payload.data()),
                     rec.payload.size());
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    EXPECT_THROW(cl.read_reply(), gbx::Error);  // server closed the session
  }
  EXPECT_GE(h.server->stats().rejected_frames.load(), 1u);

  // The server survived and the bad batch left no trace: a fresh
  // session ingests and observes exactly its own entries.
  net::Client cl;
  cl.connect("127.0.0.1", h.server->port());
  auto g = kron(8);
  cl.insert(g.batch<double>(300), 0);
  cl.flush();
  EXPECT_EQ(cl.query_sum().sum, 300.0);
  cl.bye();
}

TEST(NetServer, PipelinedFlushesEachGetTheirOwnAck) {
  ServerHarness h(1);
  net::Client cl;
  cl.connect("127.0.0.1", h.server->port());
  auto g = kron(9);
  cl.insert(g.batch<double>(2000), 0);

  // Two kFlush frames back-to-back before reading any reply: the
  // barrier clears once but BOTH must be acknowledged (a client
  // blocking one recv per flush would otherwise hang forever).
  std::string frames;
  net::append_frame(frames, net::MsgType::kFlush);
  net::append_frame(frames, net::MsgType::kFlush);
  cl.send_raw(frames.data(), frames.size());
  for (int i = 0; i < 2; ++i) {
    auto rec = cl.read_reply();
    EXPECT_EQ(net::tag_type(rec.epoch), net::MsgType::kReplyOk) << "ack " << i;
    EXPECT_EQ(net::tag_arg(rec.epoch),
              static_cast<std::uint64_t>(net::MsgType::kFlush))
        << "ack " << i;
  }

  EXPECT_EQ(cl.query_sum().sum, 2000.0);
  cl.bye();
}

TEST(NetServer, ReplyBacklogIsBoundedAndEveryPipelinedQueryAnswered) {
  GBX_SKIP_SATURATION_TIMING();
  net::IngestServer::Options sopt;
  sopt.max_outbound_bytes = 64u << 10;  // small cap: throttle engages
  ServerHarness h(1, {}, sopt);

  net::Client cl;
  cl.connect("127.0.0.1", h.server->port());
  cl.insert(kron(10).batch<double>(1000), 0);
  cl.flush();

  // Pipeline element queries with fat replies while nobody reads: the
  // server must stop reading the connection once its reply backlog
  // passes the cap (bounded memory) yet eventually answer every query
  // once the client drains. Send from a second thread — the sender may
  // block in send() exactly because the server stopped reading.
  // ~33 MB of replies: far beyond what loopback socket buffers can
  // absorb (~4 MB sndbuf + ~128 KB unread rcvbuf), so send() must hit
  // EAGAIN and the backlog must cross the 64 KB cap.
  const std::size_t kQueries = 2048, kProbes = 1024;
  std::vector<net::ElementQuery> probes(kProbes);  // all {0,0}: cheap
  std::string frame;
  net::append_frame(frame, net::MsgType::kQueryElements, 0, probes.data(),
                    probes.size() * sizeof(net::ElementQuery));
  std::thread sender([&] {
    for (std::size_t i = 0; i < kQueries; ++i)
      cl.send_raw(frame.data(), frame.size());
  });

  // Let the backlog build before draining a single reply.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<net::ElementReply> want(kProbes);
  for (std::size_t i = 0; i < kQueries; ++i) {
    auto rec = cl.read_reply();
    ASSERT_EQ(net::tag_type(rec.epoch), net::MsgType::kReplyOk) << i;
    ASSERT_TRUE(net::payload_as(rec.payload, want)) << i;
    ASSERT_EQ(want.size(), kProbes) << i;
  }
  sender.join();

  EXPECT_GT(h.server->stats().out_throttles.load(), 0u)
      << "reply backlog never hit the cap: throttle path unexercised "
         "(kernel buffers absorbed everything; raise kQueries)";
  EXPECT_EQ(h.server->stats().queries.load(), kQueries);
  cl.bye();
}

TEST(NetServer, BackPressureThrottlesOnlyTheSaturatedLane) {
  GBX_SKIP_SATURATION_TIMING();
  hier::ParallelStream<double>::Options popt;
  popt.queue_capacity = 1;  // park at the first busy overlap
  ServerHarness h(2, popt);

  const std::size_t big_batches = 6, big_size = 1u << 20;
  const std::size_t small_batches = 20, small_size = 1000;

  // Pre-generate the big batches: sends must arrive back-to-back,
  // faster than the lane worker applies, or the queue never fills
  // (generation inline would pace the client to the worker's rate).
  std::vector<Tuples<double>> big;
  {
    auto g = kron(21);
    for (std::size_t b = 0; b < big_batches; ++b)
      big.push_back(g.batch<double>(big_size));
  }

  std::atomic<bool> a_done{false};
  std::thread slow([&] {
    net::Client cl;
    cl.connect("127.0.0.1", h.server->port());
    for (const auto& b : big) cl.insert(b, 0);  // lane 0: huge batches
    cl.flush();
    a_done.store(true);
    cl.bye();
  });

  // Wait until lane 0 actually parked (back-pressure engaged).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (h.server->stats().parks.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (h.server->stats().parks.load(std::memory_order_relaxed) == 0) {
    slow.join();  // let the stream finish before tearing the harness down
    FAIL() << "lane 0 never saturated; back-pressure path unexercised";
  }

  // With lane 0 saturated and its connection unread, a second client on
  // lane 1 must stream, flush, and query unimpeded.
  net::Client fast;
  fast.connect("127.0.0.1", h.server->port());
  auto g = kron(22);
  for (std::size_t b = 0; b < small_batches; ++b)
    fast.insert(g.batch<double>(small_size), 1);
  fast.flush();
  EXPECT_FALSE(a_done.load())
      << "slow client finished before fast client's flush: isolation "
         "unobservable (machine too fast for this batch sizing)";
  auto sum = fast.query_sum();
  EXPECT_GE(sum.sum, static_cast<double>(small_batches * small_size));
  fast.bye();

  slow.join();

  // Everything parked was eventually applied exactly once.
  net::Client q;
  q.connect("127.0.0.1", h.server->port());
  q.flush();
  EXPECT_EQ(q.query_sum().sum, static_cast<double>(big_batches * big_size +
                                                   small_batches * small_size));
  q.bye();
}

TEST(NetServer, StopWithInFlightSessionsComesBackClean) {
  auto h = std::make_unique<ServerHarness>(2);

  // Clients stream until the server goes away; the contract is that
  // they see a send/recv failure (gbx::Error), never a hang.
  std::atomic<bool> go{true};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client cl;
        cl.connect("127.0.0.1", h->server->port());
        auto g = kron(31 + c);
        while (go.load(std::memory_order_relaxed))
          cl.insert(g.batch<double>(2000), c % 2);
      } catch (const gbx::Error&) {
        // expected once the server stops
      }
    });
  }

  // Let the sessions get properly in flight, then pull the plug.
  const auto t0 = std::chrono::steady_clock::now();
  while (h->server->stats().insert_frames.load(std::memory_order_relaxed) <
             10 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  h->server->stop();
  go.store(false);
  for (auto& t : threads) t.join();

  // Every accepted batch is applied exactly once: after draining the
  // lanes, the engine total equals the server's accepted-entry count.
  const auto accepted =
      h->server->stats().entries_ingested.load(std::memory_order_relaxed);
  h->stream.drain();
  auto snap = h->stream.snapshot();
  EXPECT_EQ(snap.reduce(), static_cast<double>(accepted));
  h.reset();  // harness teardown after an explicit stop must be a no-op
}

}  // namespace

#else  // !__linux__

TEST(NetServer, SkippedOnNonLinux) { SUCCEED(); }

#endif
