// Tests for the graph algorithm layer (BFS, PageRank, triangles,
// components, k-truss) over hypersparse matrices.
#include <gtest/gtest.h>

#include <random>

#include "algo/algo.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

/// Path graph 0 -> 1 -> 2 -> ... -> n-1 embedded at a large offset to
/// exercise hypersparse coordinates.
Matrix<double> path_graph(Index n, Index offset = 0) {
  Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  for (Index k = 0; k + 1 < n; ++k)
    m.set_element(offset + k, offset + k + 1, 1.0);
  m.materialize();
  return m;
}

TEST(Bfs, PathGraphLevels) {
  const Index off = 1000000;
  auto g = path_graph(5, off);
  auto r = algo::bfs(g, off);
  EXPECT_EQ(r.reached, 5u);
  EXPECT_EQ(r.max_level, 4u);
  for (const auto& [v, lvl] : r.levels) EXPECT_EQ(v - off, lvl);
}

TEST(Bfs, DisconnectedUnreached) {
  Matrix<double> g(100, 100);
  g.set_element(0, 1, 1.0);
  g.set_element(1, 2, 1.0);
  g.set_element(50, 51, 1.0);  // separate island
  auto r = algo::bfs(g, 0);
  EXPECT_EQ(r.reached, 3u);  // 0, 1, 2
}

TEST(Bfs, IsolatedSource) {
  Matrix<double> g(100, 100);
  g.set_element(5, 6, 1.0);
  auto r = algo::bfs(g, 50);  // no out-edges at 50
  EXPECT_EQ(r.reached, 1u);
  EXPECT_EQ(r.max_level, 0u);
}

TEST(Bfs, CycleTerminates) {
  Matrix<double> g(10, 10);
  g.set_element(0, 1, 1.0);
  g.set_element(1, 2, 1.0);
  g.set_element(2, 0, 1.0);
  auto r = algo::bfs(g, 0);
  EXPECT_EQ(r.reached, 3u);
  EXPECT_EQ(r.max_level, 2u);
}

TEST(Bfs, Validation) {
  Matrix<double> rect(4, 5);
  EXPECT_THROW(algo::bfs(rect, 0), gbx::DimensionMismatch);
  Matrix<double> sq(4, 4);
  EXPECT_THROW(algo::bfs(sq, 4), gbx::IndexOutOfBounds);
}

TEST(PageRank, UniformCycle) {
  // A directed cycle: perfectly uniform ranks.
  const Index n = 8;
  Matrix<double> g(100, 100);
  for (Index k = 0; k < n; ++k) g.set_element(k, (k + 1) % n, 1.0);
  auto r = algo::pagerank(g);
  ASSERT_EQ(r.ranks.size(), n);
  for (const auto& [v, rank] : r.ranks) EXPECT_NEAR(rank, 1.0 / n, 1e-6);
  EXPECT_LT(r.residual, 1e-7);
}

TEST(PageRank, HubGetsHighestRank) {
  // Star pointing into vertex 0: it must rank first.
  Matrix<double> g(1000, 1000);
  for (Index k = 1; k <= 20; ++k) {
    g.set_element(k, 0, 1.0);
    g.set_element(0, k, 1.0);  // back edges so nothing dangles awkwardly
  }
  auto r = algo::pagerank(g);
  ASSERT_FALSE(r.ranks.empty());
  EXPECT_EQ(r.ranks[0].first, 0u);
  EXPECT_GT(r.ranks[0].second, r.ranks[1].second * 2);
}

TEST(PageRank, RanksSumToOne) {
  gen::KroneckerParams kp;
  kp.scale = 8;
  kp.seed = 5;
  gen::KroneckerGenerator kg(kp);
  Matrix<double> g(kg.nverts(), kg.nverts());
  g.append(kg.batch<double>(2000));
  g.materialize();
  auto r = algo::pagerank(g);
  double total = 0;
  for (const auto& [v, rank] : r.ranks) total += rank;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRank, EmptyGraph) {
  Matrix<double> g(10, 10);
  auto r = algo::pagerank(g);
  EXPECT_TRUE(r.ranks.empty());
}

TEST(PageRank, Validation) {
  Matrix<double> g(4, 4);
  algo::PageRankOptions opt;
  opt.damping = 1.5;
  EXPECT_THROW(algo::pagerank(g, opt), gbx::InvalidValue);
}

TEST(Triangles, SingleTriangle) {
  Matrix<double> g(100, 100);
  g.set_element(1, 2, 1.0);
  g.set_element(2, 3, 1.0);
  g.set_element(3, 1, 1.0);  // directed cycle = one undirected triangle
  EXPECT_EQ(algo::triangle_count(g), 1u);
}

TEST(Triangles, CompleteGraphK5) {
  // K5 has C(5,3) = 10 triangles.
  Matrix<double> g(10, 10);
  for (Index i = 0; i < 5; ++i)
    for (Index j = 0; j < 5; ++j)
      if (i != j) g.set_element(i, j, 1.0);
  EXPECT_EQ(algo::triangle_count(g), 10u);
}

TEST(Triangles, TriangleFreeBipartite) {
  Matrix<double> g(20, 20);
  for (Index i = 0; i < 5; ++i)
    for (Index j = 5; j < 10; ++j) g.set_element(i, j, 1.0);
  EXPECT_EQ(algo::triangle_count(g), 0u);
}

TEST(Triangles, SelfLoopsIgnored) {
  Matrix<double> g(10, 10);
  g.set_element(1, 1, 1.0);
  g.set_element(1, 2, 1.0);
  g.set_element(2, 1, 1.0);
  EXPECT_EQ(algo::triangle_count(g), 0u);
}

TEST(Triangles, VsBruteForceRandom) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<Index> coord(0, 29);
  Matrix<double> g(30, 30);
  bool adj[30][30] = {};
  for (int e = 0; e < 120; ++e) {
    Index i = coord(rng), j = coord(rng);
    if (i == j) continue;
    g.set_element(i, j, 1.0);
    adj[i][j] = adj[j][i] = true;
  }
  std::uint64_t brute = 0;
  for (int a = 0; a < 30; ++a)
    for (int b = a + 1; b < 30; ++b)
      for (int c = b + 1; c < 30; ++c)
        if (adj[a][b] && adj[b][c] && adj[a][c]) ++brute;
  EXPECT_EQ(algo::triangle_count(g), brute);
}

TEST(Components, TwoIslands) {
  Matrix<double> g(gbx::kIPv4Dim, gbx::kIPv4Dim);
  g.set_element(10, 11, 1.0);
  g.set_element(11, 12, 1.0);
  g.set_element(1000000, 1000001, 1.0);
  auto r = algo::connected_components(g);
  EXPECT_EQ(r.num_components, 2u);
  // Labels are the minimum vertex id of each component.
  for (const auto& [v, label] : r.labels) {
    if (v <= 12) EXPECT_EQ(label, 10u);
    else EXPECT_EQ(label, 1000000u);
  }
}

TEST(Components, DirectionIgnored) {
  Matrix<double> g(100, 100);
  g.set_element(5, 3, 1.0);  // edge direction must not matter (weak CC)
  g.set_element(3, 1, 1.0);
  auto r = algo::connected_components(g);
  EXPECT_EQ(r.num_components, 1u);
  for (const auto& [v, label] : r.labels) EXPECT_EQ(label, 1u);
}

TEST(Components, EmptyGraph) {
  Matrix<double> g(10, 10);
  auto r = algo::connected_components(g);
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_TRUE(r.labels.empty());
}

TEST(KTruss, TriangleIs3Truss) {
  Matrix<double> g(10, 10);
  g.set_element(1, 2, 1.0);
  g.set_element(2, 3, 1.0);
  g.set_element(3, 1, 1.0);
  auto r = algo::ktruss(g, 3);
  EXPECT_EQ(r.edges, 3u);
}

TEST(KTruss, PendantEdgesPruned) {
  Matrix<double> g(10, 10);
  // triangle 1-2-3 plus a dangling edge 3-4
  g.set_element(1, 2, 1.0);
  g.set_element(2, 3, 1.0);
  g.set_element(3, 1, 1.0);
  g.set_element(3, 4, 1.0);
  auto r = algo::ktruss(g, 3);
  EXPECT_EQ(r.edges, 3u);  // dangling edge gone
  EXPECT_FALSE(r.subgraph.extract_element(3, 4).has_value());
}

TEST(KTruss, K4Survives4Truss) {
  Matrix<double> g(10, 10);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 4; ++j)
      if (i != j) g.set_element(i, j, 1.0);
  // every edge of K4 is in 2 triangles -> survives k=4 (needs k-2=2)
  auto r4 = algo::ktruss(g, 4);
  EXPECT_EQ(r4.edges, 6u);
  // but not k=5 (needs 3 triangles per edge)
  auto r5 = algo::ktruss(g, 5);
  EXPECT_EQ(r5.edges, 0u);
}

TEST(KTruss, Validation) {
  Matrix<double> g(4, 4);
  EXPECT_THROW(algo::ktruss(g, 2), gbx::InvalidValue);
}

TEST(AlgoOnStream, HierSnapshotIsAnalyzable) {
  // The paper's end state: run graph algorithms on a live hierarchical
  // traffic matrix snapshot.
  gen::KroneckerParams kp;
  kp.scale = 10;
  kp.seed = 3;
  gen::KroneckerGenerator kg(kp);
  hier::HierMatrix<double> h(kg.nverts(), kg.nverts(),
                             hier::CutPolicy::geometric(3, 512, 8));
  for (int s = 0; s < 5; ++s) h.update(kg.batch<double>(2000));
  auto snap = h.snapshot();

  auto cc = algo::connected_components(snap);
  EXPECT_GT(cc.num_components, 0u);
  auto tri = algo::triangle_count(snap);
  (void)tri;  // value depends on seed; just must not throw
  auto pr = algo::pagerank(snap);
  EXPECT_FALSE(pr.ranks.empty());
}

}  // namespace
