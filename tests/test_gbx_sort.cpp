// Tests for the parallel sample sort and duplicate folding.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "gbx/monoid.hpp"
#include "gbx/sort.hpp"

namespace {

using gbx::Entry;
using gbx::Index;

std::vector<Entry<double>> random_entries(std::size_t n, Index max_coord,
                                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> coord(0, max_coord);
  std::uniform_real_distribution<double> val(-10, 10);
  std::vector<Entry<double>> v(n);
  for (auto& e : v) e = {coord(rng), coord(rng), val(rng)};
  return v;
}

bool is_sorted_by_key(const std::vector<Entry<double>>& v) {
  return std::is_sorted(v.begin(), v.end(), gbx::entry_less<double>);
}

TEST(Sort, Empty) {
  std::vector<Entry<double>> v;
  gbx::sort_entries(v);
  EXPECT_TRUE(v.empty());
}

TEST(Sort, Single) {
  std::vector<Entry<double>> v{{5, 7, 1.0}};
  gbx::sort_entries(v);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].row, 5u);
}

TEST(Sort, SmallSerialPath) {
  auto v = random_entries(1000, 100, 1);
  auto ref = v;
  gbx::sort_entries(v);
  std::sort(ref.begin(), ref.end(), gbx::entry_less<double>);
  ASSERT_TRUE(is_sorted_by_key(v));
  // Same multiset of keys and same total value mass.
  double sv = 0, sr = 0;
  for (auto& e : v) sv += e.val;
  for (auto& e : ref) sr += e.val;
  EXPECT_DOUBLE_EQ(sv, sr);
}

TEST(Sort, LargeParallelPath) {
  auto v = random_entries(1u << 18, 1u << 20, 2);
  const std::size_t n = v.size();
  gbx::sort_entries(v);
  EXPECT_EQ(v.size(), n);
  EXPECT_TRUE(is_sorted_by_key(v));
}

TEST(Sort, ParallelPathSkewedRows) {
  // Heavy skew: 90% of entries in one row exercises bucket imbalance.
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Index> coord(0, 1u << 20);
  std::vector<Entry<double>> v(1u << 17);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Index r = (i % 10 == 0) ? coord(rng) : Index{42};
    v[i] = {r, coord(rng), 1.0};
  }
  gbx::sort_entries(v);
  EXPECT_TRUE(is_sorted_by_key(v));
}

TEST(Sort, HugeCoordinates) {
  // Coordinates near 2^64 must sort correctly (IPv6 space).
  std::vector<Entry<double>> v{
      {gbx::kIndexMax - 1, 0, 1.0},
      {0, gbx::kIndexMax - 1, 2.0},
      {gbx::kIndexMax - 2, gbx::kIndexMax - 2, 3.0},
  };
  gbx::sort_entries(v);
  EXPECT_TRUE(is_sorted_by_key(v));
  EXPECT_EQ(v[0].row, 0u);
}

TEST(Dedup, FoldsDuplicatesWithPlus) {
  std::vector<Entry<double>> v{
      {1, 1, 1.0}, {1, 1, 2.0}, {1, 2, 5.0}, {2, 1, 3.0}, {2, 1, 4.0}};
  gbx::dedup_sorted_entries<gbx::PlusMonoid<double>>(v);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0].val, 3.0);
  EXPECT_DOUBLE_EQ(v[1].val, 5.0);
  EXPECT_DOUBLE_EQ(v[2].val, 7.0);
}

TEST(Dedup, FoldsWithMax) {
  std::vector<Entry<double>> v{{1, 1, 1.0}, {1, 1, 9.0}, {1, 1, 4.0}};
  gbx::dedup_sorted_entries<gbx::MaxMonoid<double>>(v);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0].val, 9.0);
}

TEST(Dedup, EmptyAndSingleton) {
  std::vector<Entry<double>> v;
  EXPECT_EQ(gbx::dedup_sorted_entries<gbx::PlusMonoid<double>>(v), 0u);
  v = {{3, 4, 1.5}};
  EXPECT_EQ(gbx::dedup_sorted_entries<gbx::PlusMonoid<double>>(v), 1u);
  EXPECT_DOUBLE_EQ(v[0].val, 1.5);
}

// Property: sort+dedup(parallel or serial) == std::map reference.
class SortDedupProperty : public ::testing::TestWithParam<
                              std::tuple<std::size_t, Index, std::uint64_t>> {};

TEST_P(SortDedupProperty, MatchesMapModel) {
  const auto [n, max_coord, seed] = GetParam();
  auto v = random_entries(n, max_coord, seed);

  std::map<std::pair<Index, Index>, double> model;
  for (const auto& e : v) model[{e.row, e.col}] += e.val;

  gbx::sort_entries(v);
  gbx::dedup_sorted_entries_parallel<gbx::PlusMonoid<double>>(v);

  ASSERT_EQ(v.size(), model.size());
  std::size_t k = 0;
  for (const auto& [key, val] : model) {
    EXPECT_EQ(v[k].row, key.first);
    EXPECT_EQ(v[k].col, key.second);
    EXPECT_NEAR(v[k].val, val, 1e-9);
    ++k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortDedupProperty,
    ::testing::Values(
        std::make_tuple(std::size_t{100}, Index{8}, std::uint64_t{1}),
        std::make_tuple(std::size_t{5000}, Index{50}, std::uint64_t{2}),
        std::make_tuple(std::size_t{5000}, Index{1} << 30, std::uint64_t{3}),
        std::make_tuple(std::size_t{1} << 16, Index{200}, std::uint64_t{4}),
        std::make_tuple(std::size_t{1} << 17, Index{1} << 16, std::uint64_t{5}),
        std::make_tuple(std::size_t{1} << 17, Index{15}, std::uint64_t{6})));

}  // namespace
