// Tests for the online cut auto-tuner and prefix (subnet) aggregation.
#include <gtest/gtest.h>

#include <map>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;

TEST(AutoTune, PreservesValueAcrossRetunes) {
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.seed = 7;
  gen::PowerLawGenerator g(pp);

  hier::AutoTuneOptions opt;
  opt.probe_batches = 2;
  hier::AutoTuner<double> tuner(pp.dim, pp.dim, 1u << 10, opt);
  gbx::Matrix<double> direct(pp.dim, pp.dim);

  for (int b = 0; b < 30; ++b) {
    auto batch = g.batch<double>(3000);
    tuner.update(batch);
    direct.append(batch);
  }
  direct.materialize();
  // The linearity invariant must survive any number of schedule changes.
  EXPECT_TRUE(gbx::equal(tuner.snapshot(), direct));
}

TEST(AutoTune, ActuallyMovesTheCut) {
  gen::PowerLawParams pp;
  pp.scale = 14;
  pp.seed = 9;
  gen::PowerLawGenerator g(pp);
  hier::AutoTuneOptions opt;
  opt.probe_batches = 2;
  hier::AutoTuner<double> tuner(pp.dim, pp.dim, opt.min_c1, opt);
  for (int b = 0; b < 40; ++b) tuner.update(g.batch<double>(5000));
  // Starting at the minimum cut with 5K-entry batches, the climber must
  // have moved at least once (every batch overflows c1 = 256 instantly).
  // Note: under noisy timings the walk may end back at the start, so we
  // assert movement via the retune counter, not the final position.
  EXPECT_GT(tuner.retunes(), 0u);
  EXPECT_GT(tuner.last_rate(), 0.0);
}

TEST(AutoTune, RespectsBounds) {
  hier::AutoTuneOptions opt;
  opt.min_c1 = 1u << 10;
  opt.max_c1 = 1u << 12;
  opt.probe_batches = 1;
  hier::AutoTuner<double> tuner(1u << 20, 1u << 20, 1u << 11, opt);
  gen::PowerLawParams pp;
  pp.scale = 10;
  pp.dim = 1u << 20;
  gen::PowerLawGenerator g(pp);
  for (int b = 0; b < 50; ++b) {
    tuner.update(g.batch<double>(500));
    EXPECT_GE(tuner.c1(), opt.min_c1);
    EXPECT_LE(tuner.c1(), opt.max_c1);
  }
}

TEST(Prefix, AggregatesKnownSubnets) {
  gbx::Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  const Index a1 = analytics::parse_ipv4("10.1.0.5").value();
  const Index a2 = analytics::parse_ipv4("10.1.200.9").value();  // same /16
  const Index b = analytics::parse_ipv4("192.168.0.1").value();
  m.set_element(a1, b, 3.0);
  m.set_element(a2, b, 4.0);
  m.set_element(b, a1, 1.0);

  auto agg = analytics::aggregate_prefixes(m, 16);
  EXPECT_EQ(agg.nrows(), Index{1} << 16);
  // 10.1/16 -> 192.168/16 combined: 7 packets
  const Index p10_1 = a1 >> 16;
  const Index p192_168 = b >> 16;
  EXPECT_DOUBLE_EQ(agg.extract_element(p10_1, p192_168).value(), 7.0);
  EXPECT_DOUBLE_EQ(agg.extract_element(p192_168, p10_1).value(), 1.0);
  EXPECT_EQ(agg.nvals(), 2u);
}

TEST(Prefix, MassConserved) {
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.seed = 3;
  gen::PowerLawGenerator g(pp);
  gbx::Matrix<double> m(pp.dim, pp.dim);
  m.append(g.batch<double>(30000));
  m.materialize();
  const double total = gbx::reduce_scalar<gbx::PlusMonoid<double>>(m);
  for (int p : {8, 16, 24}) {
    auto agg = analytics::aggregate_prefixes(m, p);
    EXPECT_NEAR(gbx::reduce_scalar<gbx::PlusMonoid<double>>(agg), total,
                1e-6 * total)
        << "/" << p;
    EXPECT_LE(agg.nvals(), m.nvals());
    EXPECT_TRUE(agg.validate());
  }
}

TEST(Prefix, CoarserMeansFewerLinks) {
  gen::PowerLawParams pp;
  pp.scale = 13;
  pp.seed = 11;
  gen::PowerLawGenerator g(pp);
  gbx::Matrix<double> m(pp.dim, pp.dim);
  m.append(g.batch<double>(50000));
  m.materialize();
  auto a24 = analytics::aggregate_prefixes(m, 24);
  auto a16 = analytics::aggregate_prefixes(m, 16);
  auto a8 = analytics::aggregate_prefixes(m, 8);
  EXPECT_GE(a24.nvals(), a16.nvals());
  EXPECT_GE(a16.nvals(), a8.nvals());
}

TEST(Prefix, Validation) {
  gbx::Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  EXPECT_THROW(analytics::aggregate_prefixes(m, 0), gbx::InvalidValue);
  EXPECT_THROW(analytics::aggregate_prefixes(m, 33), gbx::InvalidValue);
  gbx::Matrix<double> big(gbx::kIPv6Dim, gbx::kIPv6Dim);
  EXPECT_THROW(analytics::aggregate_prefixes(big, 16), gbx::InvalidValue);
}

TEST(Prefix, TopSubnetFlows) {
  gbx::Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  const Index s = analytics::parse_ipv4("10.0.0.1").value();
  const Index d = analytics::parse_ipv4("20.0.0.1").value();
  for (int k = 0; k < 10; ++k)
    m.set_element(s + static_cast<Index>(k), d, 100.0);
  m.set_element(analytics::parse_ipv4("30.0.0.1").value(),
                analytics::parse_ipv4("40.0.0.1").value(), 5.0);
  auto top = analytics::top_subnet_flows(m, 8, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(std::get<0>(top[0]), 10u);  // 10.x -> 20.x dominates
  EXPECT_EQ(std::get<1>(top[0]), 20u);
  EXPECT_DOUBLE_EQ(std::get<2>(top[0]), 1000.0);
}

}  // namespace
