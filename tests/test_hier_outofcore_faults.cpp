// Fault injection for the out-of-core tier (ISSUE 7 satellite): a
// failpoint backend wrapped around the real ones injects torn writes,
// short reads, I/O errors (ENOSPC), and at-rest corruption at
// configurable operation counts. The invariant under test, everywhere:
// a failure leaves every query either bit-exact or failing loudly with
// a gbx::Error — never silently wrong, never crashing.
//
// Same discipline as test_failure_injection.cpp: sweeps are
// parameterized over injection points so the failure lands in different
// phases (first segment, mid-run, directory already partially filled).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "gbx/gbx.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"
#include "store/failpoint_backend.hpp"

namespace {

using gbx::Index;
using hier::CutPolicy;
using hier::DemotionConfig;
using hier::HierMatrix;

// The fault injector is the shared store::FailpointBackend (this suite
// is where it was born, PR 7 — now generalized over gbx::failpoints()
// so the same registry drives net/repl fault matrices). The legacy
// arming API (fail_write_at & co., absolute 1-based op counts, fire
// once) is unchanged.
using store::FailpointBackend;

struct Rig {
  store::BlockStore* store = nullptr;
  FailpointBackend* fp = nullptr;
  store::MemBackend* mem = nullptr;
  std::unique_ptr<store::BlockStore> owned;
};

// A store whose every byte passes through the failpoints, with the
// MemBackend reachable for at-rest corruption. Cache disabled so reads
// always hit the (faulty) backend.
Rig make_rig() {
  auto mem = std::make_unique<store::MemBackend>();
  Rig rig;
  rig.mem = mem.get();
  auto fp = std::make_unique<FailpointBackend>(std::move(mem));
  rig.fp = fp.get();
  store::BlockStoreConfig cfg;
  cfg.cache_budget_bytes = 0;
  rig.owned = std::make_unique<store::BlockStore>(std::move(fp), cfg);
  rig.store = rig.owned.get();
  return rig;
}

DemotionConfig tiny_segments() {
  DemotionConfig cfg;
  cfg.segment_bytes = 1024;  // several blocks per demotion
  cfg.max_runs = 4;
  return cfg;
}

// Build a matrix with enough demoted state that probes traverse
// multiple runs and segments.
void stream_and_demote(HierMatrix<std::int64_t>& h,
                       proptest::DenseRef<std::int64_t>& ref, int demotions) {
  std::mt19937_64 rng(4242);
  for (int s = 0; s < demotions; ++s) {
    auto b = proptest::random_batch<std::int64_t>(rng, 2048, 600);
    h.update(b);
    ref.apply(b);
    h.flush();
    ASSERT_TRUE(h.demote_now());
  }
}

// Every oracle coordinate reads either the exact value or throws a
// diagnosable gbx::Error — the "bit-exact or loud" meta-assertion.
void expect_exact_or_loud(const HierMatrix<std::int64_t>& h,
                          const proptest::DenseRef<std::int64_t>& ref,
                          std::size_t* loud = nullptr) {
  auto snap = h.freeze();
  std::size_t threw = 0;
  for (const auto& [k, v] : ref.cells()) {
    try {
      auto got = snap.extract_element(k.first, k.second);
      ASSERT_TRUE(got.has_value())
          << "silently LOST entry (" << k.first << ", " << k.second << ")";
      ASSERT_EQ(*got, v) << "silently WRONG value at (" << k.first << ", "
                         << k.second << ")";
    } catch (const gbx::Error&) {
      ++threw;  // loud failure: acceptable under injected faults
    }
  }
  if (loud != nullptr) *loud = threw;
}

// ---------------------------------------------------------------------------
// Write-side faults: a demote that dies mid-run must roll back whole —
// image unchanged, resident level intact, partial blocks erased.
// ---------------------------------------------------------------------------

class EnospcSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnospcSweep, FailedDemoteRollsBackWhole) {
  Rig rig = make_rig();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  h.enable_demotion(rig.store, tiny_segments());
  proptest::DenseRef<std::int64_t> ref;
  stream_and_demote(h, ref, 2);  // some pre-existing demoted state

  // More data, then a demotion that dies at the Nth block write.
  std::mt19937_64 rng(7);
  auto b = proptest::random_batch<std::int64_t>(rng, 2048, 900);
  h.update(b);
  ref.apply(b);
  h.flush();

  const auto runs_before = h.tier().num_runs();
  const auto blocks_before = rig.store->blocks();
  const auto entries_before = h.level(h.num_levels() - 1).nvals_bound();
  ASSERT_GT(entries_before, 0u);

  rig.fp->fail_write_at(rig.fp->writes() + GetParam());
  EXPECT_THROW(h.demote_now(), gbx::Error);

  // Rolled back whole: nothing published, nothing leaked, level intact.
  EXPECT_EQ(h.tier().num_runs(), runs_before);
  EXPECT_EQ(rig.store->blocks(), blocks_before);
  EXPECT_EQ(h.level(h.num_levels() - 1).nvals_bound(), entries_before);
  std::size_t loud = 0;
  expect_exact_or_loud(h, ref, &loud);
  EXPECT_EQ(loud, 0u) << "a write-side fault must not poison reads";

  // The failure is transient (space freed): the retry succeeds and the
  // matrix is whole.
  ASSERT_TRUE(h.demote_now());
  ASSERT_TRUE(ref.matches(h.freeze()));
}

INSTANTIATE_TEST_SUITE_P(InjectionPoints, EnospcSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---------------------------------------------------------------------------
// Read-side faults: damage planted under a successful demote must turn
// every affected read into a loud error, and only the affected ones.
// ---------------------------------------------------------------------------

class TornWriteSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TornWriteSweep, TornBlockReadsLoudNeverWrong) {
  Rig rig = make_rig();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  h.enable_demotion(rig.store, tiny_segments());
  proptest::DenseRef<std::int64_t> ref;
  stream_and_demote(h, ref, 1);

  std::mt19937_64 rng(8);
  auto b = proptest::random_batch<std::int64_t>(rng, 2048, 900);
  h.update(b);
  ref.apply(b);
  h.flush();

  rig.fp->torn_write_at(rig.fp->writes() + GetParam());
  ASSERT_TRUE(h.demote_now());  // the tear is silent — demote "succeeds"

  std::size_t loud = 0;
  expect_exact_or_loud(h, ref, &loud);
  EXPECT_GT(loud, 0u) << "the torn block was never read";
  EXPECT_GT(rig.store->stats().checksum_failures, 0u);

  // Materializing reads decode every block: loud, not wrong.
  EXPECT_THROW(h.freeze().to_matrix(), gbx::Error);
  EXPECT_THROW((void)h.nvals(), gbx::Error);
}

INSTANTIATE_TEST_SUITE_P(InjectionPoints, TornWriteSweep,
                         ::testing::Values(1u, 2u, 4u));

TEST(ReadFaults, InjectedReadErrorPropagates) {
  Rig rig = make_rig();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  h.enable_demotion(rig.store, tiny_segments());
  proptest::DenseRef<std::int64_t> ref;
  stream_and_demote(h, ref, 1);

  rig.fp->fail_read_at(rig.fp->reads() + 1);
  EXPECT_THROW(h.freeze().to_matrix(), gbx::Error);
  // Transient: the next read succeeds, bit-exactly.
  ASSERT_TRUE(ref.matches(h.freeze()));
}

TEST(ReadFaults, ShortReadCaughtByChecksum) {
  Rig rig = make_rig();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  h.enable_demotion(rig.store, tiny_segments());
  proptest::DenseRef<std::int64_t> ref;
  stream_and_demote(h, ref, 1);

  rig.fp->short_read_at(rig.fp->reads() + 1);
  EXPECT_THROW(h.freeze().to_matrix(), gbx::Error);
  EXPECT_GT(rig.store->stats().checksum_failures, 0u);
  ASSERT_TRUE(ref.matches(h.freeze()));
}

TEST(ReadFaults, AtRestCorruptionCaughtByChecksum) {
  Rig rig = make_rig();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  h.enable_demotion(rig.store, tiny_segments());
  proptest::DenseRef<std::int64_t> ref;
  stream_and_demote(h, ref, 2);

  // Flip one byte of one stored block, bypassing every API.
  auto ids = rig.fp->inner().entries();
  ASSERT_FALSE(ids.empty());
  std::string* payload = rig.mem->payload(ids[ids.size() / 2].first);
  ASSERT_NE(payload, nullptr);
  (*payload)[payload->size() / 3] ^= 0x5a;

  std::size_t loud = 0;
  expect_exact_or_loud(h, ref, &loud);
  EXPECT_GT(loud, 0u) << "the corrupted block was never read";
  EXPECT_GT(rig.store->stats().checksum_failures, 0u);
  EXPECT_THROW(h.freeze().to_matrix(), gbx::Error);
}

// A fault during compaction's rewrite leaves the old (good) image
// published: reads keep working bit-exactly.
TEST(CompactionFaults, FailedCompactionKeepsOldImage) {
  Rig rig = make_rig();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  DemotionConfig cfg = tiny_segments();
  cfg.max_runs = 100;  // no auto-compaction; we trigger it by hand
  h.enable_demotion(rig.store, cfg);
  proptest::DenseRef<std::int64_t> ref;
  stream_and_demote(h, ref, 3);
  const auto runs_before = h.tier().num_runs();
  ASSERT_GT(runs_before, 1u);

  // Compaction reads every run (fine), then writes the merged run: die
  // on its first write.
  rig.fp->fail_write_at(rig.fp->writes() + 1);
  auto& tier = const_cast<hier::DemotedTier<std::int64_t>&>(h.tier());
  EXPECT_THROW(tier.compact(), gbx::Error);
  EXPECT_EQ(h.tier().num_runs(), runs_before);
  ASSERT_TRUE(ref.matches(h.freeze()));

  // And with the fault cleared, compaction completes.
  tier.compact();
  EXPECT_EQ(h.tier().num_runs(), 1u);
  ASSERT_TRUE(ref.matches(h.freeze()));
}

// ---------------------------------------------------------------------------
// FileBackend durability: torn tails truncate away on reopen; mid-file
// corruption truncates from the damage point; surviving blocks stay
// readable, lost ones fail loudly.
// ---------------------------------------------------------------------------

struct TempFile {
  std::string path;
  // pid-unique: the seed reruns of this suite may run concurrently.
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + std::to_string(::getpid()) + "_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(FileBackendFaults, TornTailTruncatedOnReopen) {
  TempFile tf("hhgbx_faults_torn.bin");
  std::string p1(500, 'a'), p2(600, 'b'), p3(700, 'c');
  {
    store::FileBackend fb(tf.path);
    fb.write(1, p1.data(), p1.size());
    fb.write(2, p2.data(), p2.size());
    fb.write(3, p3.data(), p3.size());
  }
  // Crash mid-append of block 3: chop into its frame.
  const auto full = std::filesystem::file_size(tf.path);
  std::filesystem::resize_file(tf.path, full - 300);

  store::FileBackend fb(tf.path);
  std::string out;
  EXPECT_TRUE(fb.read(1, out));
  EXPECT_EQ(out, p1);
  EXPECT_TRUE(fb.read(2, out));
  EXPECT_EQ(out, p2);
  EXPECT_FALSE(fb.read(3, out));  // reverted to "unknown", not wrong bytes
  EXPECT_EQ(fb.entries().size(), 2u);
  // The torn bytes are physically gone: appends go to the good end.
  EXPECT_EQ(std::filesystem::file_size(tf.path), fb.file_bytes());
}

TEST(FileBackendFaults, MidFileCorruptionTruncatesFromDamage) {
  TempFile tf("hhgbx_faults_corrupt.bin");
  std::string p1(500, 'a'), p2(600, 'b'), p3(700, 'c');
  std::uint64_t frame1_end = 0;
  {
    store::FileBackend fb(tf.path);
    fb.write(1, p1.data(), p1.size());
    frame1_end = fb.file_bytes();
    fb.write(2, p2.data(), p2.size());
    fb.write(3, p3.data(), p3.size());
  }
  // Flip a byte inside block 2's payload.
  {
    std::fstream f(tf.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(frame1_end + 3 * 8 + 100));
    char c = 'X';
    f.write(&c, 1);
  }
  store::FileBackend fb(tf.path);
  std::string out;
  EXPECT_TRUE(fb.read(1, out));  // before the damage: intact
  EXPECT_EQ(out, p1);
  EXPECT_FALSE(fb.read(2, out));  // damage point: truncated away
  EXPECT_FALSE(fb.read(3, out));  // after the damage: unrecoverable, loud
  EXPECT_EQ(std::filesystem::file_size(tf.path), frame1_end);
}

TEST(FileBackendFaults, StoreOverReopenedFileFailsLoudOnLostBlocks) {
  TempFile tf("hhgbx_faults_store.bin");
  store::BlockId id1 = 0, id3 = 0;
  std::uint64_t keep_bytes = 0;
  {
    auto st = store::make_file_block_store(tf.path);
    const std::string p1(500, 'a'), p2(600, 'b'), p3(700, 'c');
    id1 = st->allocate();
    st->put(id1, p1);
    const auto id2 = st->allocate();
    st->put(id2, p2);
    keep_bytes = static_cast<store::FileBackend&>(st->backend()).file_bytes();
    id3 = st->allocate();
    st->put(id3, p3);
  }
  std::filesystem::resize_file(tf.path, keep_bytes + 10);  // tear block 3

  store::BlockStoreConfig cfg;
  cfg.cache_budget_bytes = 0;
  auto st = store::make_file_block_store(tf.path, cfg);
  EXPECT_EQ(*st->get(id1), std::string(500, 'a'));
  EXPECT_FALSE(st->contains(id3));
  EXPECT_THROW(st->get(id3), gbx::Error);  // unknown id: loud
  // The torn block's id was never durable, so the reopened store may
  // recycle it — but never an id of a surviving block.
  const auto fresh = st->allocate();
  EXPECT_GE(fresh, id3);
  st->put(fresh, "replacement");
  EXPECT_EQ(*st->get(fresh), "replacement");
  EXPECT_EQ(*st->get(id1), std::string(500, 'a'));
}

}  // namespace
