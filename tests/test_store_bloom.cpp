// Tests for Bloom filters and their integration into the LSM store.
#include <gtest/gtest.h>

#include <random>

#include "store/store.hpp"

namespace {

using store::BloomFilter;
using store::Key;

TEST(Bloom, NoFalseNegatives) {
  BloomFilter f(1000, 0.01);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<gbx::Index> coord(0, 1u << 30);
  std::vector<Key> keys;
  for (int k = 0; k < 1000; ++k) {
    Key key{coord(rng), coord(rng)};
    f.add(key);
    keys.push_back(key);
  }
  for (const auto& k : keys) EXPECT_TRUE(f.may_contain(k));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  const double target = 0.01;
  BloomFilter f(10000, target);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<gbx::Index> coord(0, 1u << 29);
  for (int k = 0; k < 10000; ++k) f.add({coord(rng), coord(rng)});

  // Probe keys from a disjoint coordinate region.
  int fp = 0;
  const int probes = 20000;
  std::uniform_int_distribution<gbx::Index> other(1u << 30, 1u << 31);
  for (int k = 0; k < probes; ++k)
    if (f.may_contain({other(rng), other(rng)})) ++fp;
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, target * 4) << "fp rate " << rate;
}

TEST(Bloom, EmptyFilterRejectsEverything) {
  BloomFilter f(100);
  EXPECT_FALSE(f.may_contain({1, 2}));
  EXPECT_FALSE(f.may_contain({0, 0}));
  EXPECT_EQ(f.keys_added(), 0u);
}

TEST(Bloom, SizingMonotoneInFpRate) {
  BloomFilter strict(1000, 0.001);
  BloomFilter loose(1000, 0.1);
  EXPECT_GT(strict.bits(), loose.bits());
  EXPECT_GE(strict.hash_count(), loose.hash_count());
}

TEST(Bloom, Validation) {
  EXPECT_THROW(BloomFilter(0), gbx::InvalidValue);
  EXPECT_THROW(BloomFilter(10, 0.0), gbx::InvalidValue);
  EXPECT_THROW(BloomFilter(10, 1.0), gbx::InvalidValue);
}

TEST(LsmBloom, SkipsRunsOnMisses) {
  store::LsmOptions opt;
  opt.memtable_limit = 64;
  opt.enable_bloom = true;
  store::LsmStore s(opt);
  // Build several runs with keys in a narrow region.
  for (gbx::Index k = 0; k < 1000; ++k) s.insert({k, k}, 1.0);
  ASSERT_GT(s.num_runs(), 1u);

  // Point lookups far outside the key region: Bloom filters should skip
  // essentially every run probe.
  for (gbx::Index k = 0; k < 500; ++k)
    EXPECT_FALSE(s.get({k + (gbx::Index{1} << 40), 7}).has_value());
  EXPECT_GT(s.stats().bloom_skips, 100u);
}

TEST(LsmBloom, DisabledMeansNoSkips) {
  store::LsmOptions opt;
  opt.memtable_limit = 64;
  opt.enable_bloom = false;
  store::LsmStore s(opt);
  for (gbx::Index k = 0; k < 1000; ++k) s.insert({k, k}, 1.0);
  for (gbx::Index k = 0; k < 100; ++k)
    (void)s.get({k + (gbx::Index{1} << 40), 7});
  EXPECT_EQ(s.stats().bloom_skips, 0u);
}

TEST(LsmBloom, LookupsStillCorrectWithBloom) {
  store::LsmOptions opt;
  opt.memtable_limit = 32;
  store::LsmStore s(opt);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<gbx::Index> coord(0, 200);
  std::map<std::pair<gbx::Index, gbx::Index>, double> model;
  for (int k = 0; k < 2000; ++k) {
    Key key{coord(rng), coord(rng)};
    s.insert(key, 1.0);
    model[{key.row, key.col}] += 1.0;
  }
  for (const auto& [k, v] : model)
    EXPECT_DOUBLE_EQ(s.get({k.first, k.second}).value(), v);
}

// The out-of-core tier directory keys its row filter as Key{row, 0}
// regardless of which run holds the row. The convention must never
// produce a false negative for any added row.
TEST(Bloom, RowKeyConventionNoFalseNegatives) {
  store::BloomFilter f(4096, 0.01);
  std::mt19937_64 rng(17);
  std::vector<gbx::Index> rows;
  for (int k = 0; k < 4000; ++k) {
    rows.push_back(static_cast<gbx::Index>(rng() % (1ull << 40)));
    f.add(store::Key{rows.back(), 0});
  }
  for (const auto r : rows)
    ASSERT_TRUE(f.may_contain(store::Key{r, 0})) << "row " << r;
}

// Saturation (10x the sizing capacity) erodes the false-positive rate,
// never the no-false-negative guarantee — the property the tier's
// rebuild-at-2x policy protects, checked well past that threshold.
TEST(Bloom, SaturationNeverFalseNegative) {
  const std::size_t capacity = 512;
  store::BloomFilter f(capacity, 0.01);
  for (gbx::Index k = 0; k < 10 * capacity; ++k) f.add(store::Key{k, 0});
  for (gbx::Index k = 0; k < 10 * capacity; ++k)
    ASSERT_TRUE(f.may_contain(store::Key{k, 0})) << k;
}

}  // namespace
