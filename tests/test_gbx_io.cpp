// Tests for diagnostics and MatrixMarket round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

TEST(Io, DescribeContainsBasics) {
  Matrix<double> m(10, 20);
  m.set_element(1, 2, 3.0);
  const auto d = gbx::describe(m);
  EXPECT_NE(d.find("10x20"), std::string::npos);
  EXPECT_NE(d.find("fp64"), std::string::npos);
  EXPECT_NE(d.find("pending=1"), std::string::npos);
}

TEST(Io, PrintTruncates) {
  Matrix<double> m(100, 100);
  for (Index i = 0; i < 50; ++i) m.set_element(i, i, 1.0);
  std::ostringstream os;
  gbx::print(os, m, 5);
  EXPECT_NE(os.str().find("..."), std::string::npos);
}

TEST(Io, MatrixMarketRoundTrip) {
  Matrix<double> m(7, 9);
  m.set_element(0, 0, 1.5);
  m.set_element(3, 8, -2.25);
  m.set_element(6, 2, 100.0);
  std::stringstream ss;
  gbx::write_matrix_market(ss, m);
  auto m2 = gbx::read_matrix_market<double>(ss);
  EXPECT_EQ(m2.nrows(), 7u);
  EXPECT_EQ(m2.ncols(), 9u);
  EXPECT_TRUE(gbx::equal(m, m2));
}

TEST(Io, MatrixMarketHeaderAndComments) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "% a comment line\n"
     << "3 3 2\n"
     << "1 1 5\n"
     << "3 2 7\n";
  auto m = gbx::read_matrix_market<double>(ss);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_DOUBLE_EQ(m.extract_element(0, 0).value(), 5.0);
  EXPECT_DOUBLE_EQ(m.extract_element(2, 1).value(), 7.0);
}

TEST(Io, MatrixMarketTruncatedThrows) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "3 3 2\n"
     << "1 1 5\n";
  EXPECT_THROW(gbx::read_matrix_market<double>(ss), gbx::Error);
}

TEST(Io, MatrixMarketZeroBasedRejected) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "3 3 1\n"
     << "0 1 5\n";
  EXPECT_THROW(gbx::read_matrix_market<double>(ss), gbx::InvalidValue);
}

TEST(Io, MatrixMarketEmptyStreamThrows) {
  std::stringstream ss;
  EXPECT_THROW(gbx::read_matrix_market<double>(ss), gbx::Error);
}

}  // namespace
