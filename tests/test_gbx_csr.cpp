// Tests for the CSR format and format guidance (the hypersparse-vs-
// sparse representation argument of the paper, made executable).
#include <gtest/gtest.h>

#include <random>

#include "gbx/gbx.hpp"

namespace {

using gbx::Csr;
using gbx::Dcsr;
using gbx::Entry;
using gbx::Index;

TEST(Csr, BuildAndLookup) {
  std::vector<Entry<double>> e{{0, 1, 1.0}, {0, 3, 2.0}, {2, 0, 3.0}};
  auto c = Csr<double>::from_sorted_unique(4, 4, e);
  EXPECT_TRUE(c.validate());
  EXPECT_EQ(c.nnz(), 3u);
  EXPECT_DOUBLE_EQ(c.get(0, 3).value(), 2.0);
  EXPECT_DOUBLE_EQ(c.get(2, 0).value(), 3.0);
  EXPECT_FALSE(c.get(1, 1).has_value());
  EXPECT_EQ(c.row_cols(0).size(), 2u);
  EXPECT_EQ(c.row_cols(1).size(), 0u);  // empty row addressable in O(1)
}

TEST(Csr, RefusesHypersparseDimensions) {
  // The whole point: CSR cannot represent an IPv4-dim matrix.
  EXPECT_THROW(Csr<double>(gbx::kIPv4Dim, gbx::kIPv4Dim), gbx::InvalidValue);
  EXPECT_NO_THROW(Csr<double>(Csr<double>::kMaxCsrRows, 10));
}

TEST(Csr, EmptyMatrixPaysPointerArray) {
  // An empty 2^20-row CSR still burns ~8 MB on pointers; an empty DCSR
  // burns nothing. This is Fig. 1's memory-pressure argument in code.
  Csr<double> c(1u << 20, 1u << 20);
  Dcsr<double> d;
  EXPECT_GT(c.memory_bytes(), (1u << 20) * sizeof(gbx::Offset));
  EXPECT_LT(d.memory_bytes(), 1024u);
}

TEST(Csr, DcsrRoundTrip) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Index> coord(0, (1u << 16) - 1);
  gbx::Tuples<double> t;
  for (int k = 0; k < 20000; ++k)
    t.push_back(coord(rng), coord(rng), static_cast<double>(k % 13));
  t.sort_dedup<gbx::PlusMonoid<double>>();
  auto d = Dcsr<double>::from_sorted_unique(t.entries());

  auto c = Csr<double>::from_dcsr(1u << 16, 1u << 16, d);
  EXPECT_TRUE(c.validate());
  EXPECT_EQ(c.nnz(), d.nnz());
  auto d2 = c.to_dcsr();
  EXPECT_TRUE(d == d2);
}

TEST(Csr, ForEachOrdered) {
  std::vector<Entry<int>> e{{1, 5, 10}, {1, 7, 20}, {3, 2, 30}};
  auto c = Csr<int>::from_sorted_unique(8, 8, e);
  std::vector<Entry<int>> seen;
  c.for_each([&](Index i, Index j, int v) { seen.push_back({i, j, v}); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end(), gbx::entry_less<int>));
}

TEST(Csr, OutOfBoundsEntryRejected) {
  std::vector<Entry<double>> e{{5, 0, 1.0}};
  EXPECT_THROW(Csr<double>::from_sorted_unique(4, 4, e),
               gbx::IndexOutOfBounds);
}

TEST(FormatAdvice, Crossover) {
  using gbx::Format;
  // IPv4-dim: always hypersparse, regardless of nnz.
  EXPECT_EQ(gbx::format_advice(gbx::kIPv4Dim, 1u << 30), Format::kDcsr);
  // Small dims, dense-ish: CSR.
  EXPECT_EQ(gbx::format_advice(1u << 16, 1u << 16), Format::kCsr);
  // Small dims, nearly empty: hypersparse still wins.
  EXPECT_EQ(gbx::format_advice(1u << 20, 100), Format::kDcsr);
}

}  // namespace
