// Tests for mxm / mxv / vxm over semirings, against dense reference
// multiplication on small matrices and structural identities on large.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::SparseVector;

Matrix<double> random_matrix(Index rows, Index cols, std::size_t n,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> ri(0, rows - 1), ci(0, cols - 1);
  std::uniform_real_distribution<double> val(1, 5);
  Matrix<double> m(rows, cols);
  for (std::size_t k = 0; k < n; ++k)
    m.set_element(ri(rng), ci(rng), val(rng));
  m.materialize();
  return m;
}

std::vector<std::vector<double>> to_dense(const Matrix<double>& m) {
  std::vector<std::vector<double>> d(m.nrows(),
                                     std::vector<double>(m.ncols(), 0.0));
  m.for_each([&](Index i, Index j, double v) {
    d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
  });
  return d;
}

TEST(Mxm, TinyKnownProduct) {
  // [1 2; 0 3] * [4 0; 5 6] = [14 12; 15 18]
  Matrix<double> a(2, 2), b(2, 2);
  a.set_element(0, 0, 1);
  a.set_element(0, 1, 2);
  a.set_element(1, 1, 3);
  b.set_element(0, 0, 4);
  b.set_element(1, 0, 5);
  b.set_element(1, 1, 6);
  auto c = gbx::mxm<gbx::PlusTimes<double>>(a, b);
  EXPECT_DOUBLE_EQ(c.extract_element(0, 0).value(), 14);
  EXPECT_DOUBLE_EQ(c.extract_element(0, 1).value(), 12);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 0).value(), 15);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 18);
}

TEST(Mxm, DimMismatchThrows) {
  Matrix<double> a(2, 3), b(4, 2);
  EXPECT_THROW((gbx::mxm<gbx::PlusTimes<double>>(a, b)),
               gbx::DimensionMismatch);
}

TEST(Mxm, EmptyProduct) {
  Matrix<double> a(5, 5), b(5, 5);
  a.set_element(0, 1, 1.0);
  auto c = gbx::mxm<gbx::PlusTimes<double>>(a, b);
  EXPECT_EQ(c.nvals(), 0u);
}

TEST(Mxm, IdentityMatrix) {
  auto a = random_matrix(32, 32, 100, 7);
  Matrix<double> eye(32, 32);
  for (Index i = 0; i < 32; ++i) eye.set_element(i, i, 1.0);
  eye.materialize();
  auto c = gbx::mxm<gbx::PlusTimes<double>>(a, eye);
  EXPECT_TRUE(gbx::equal(c, a));
  auto c2 = gbx::mxm<gbx::PlusTimes<double>>(eye, a);
  EXPECT_TRUE(gbx::equal(c2, a));
}

TEST(Mxm, HypersparseCoordinates) {
  // Product correctness with coordinates scattered over 2^41.
  const Index big = Index{1} << 41;
  Matrix<double> a(big, big), b(big, big);
  a.set_element(1234567890123ULL, 42, 2.0);
  b.set_element(42, 9876543210ULL, 3.0);
  auto c = gbx::mxm<gbx::PlusTimes<double>>(a, b);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(c.extract_element(1234567890123ULL, 9876543210ULL).value(),
                   6.0);
}

TEST(Mxm, MinPlusShortestHop) {
  // Tropical semiring: path lengths through one intermediate hop.
  constexpr double kInf = std::numeric_limits<double>::max();
  Matrix<double> g(3, 3);
  g.set_element(0, 1, 5.0);
  g.set_element(1, 2, 7.0);
  g.set_element(0, 2, 20.0);
  auto two_hop = gbx::mxm<gbx::MinPlus<double>>(g, g);
  // 0 -> 1 -> 2 costs 12 < direct 20, but mxm alone gives the 2-hop matrix.
  EXPECT_DOUBLE_EQ(two_hop.extract_element(0, 2).value(), 12.0);
  (void)kInf;
}

class MxmVsDense
    : public ::testing::TestWithParam<std::tuple<Index, std::size_t, std::uint64_t>> {};

TEST_P(MxmVsDense, MatchesDenseReference) {
  const auto [dim, n, seed] = GetParam();
  auto a = random_matrix(dim, dim, n, seed);
  auto b = random_matrix(dim, dim, n, seed + 1);
  auto c = gbx::mxm<gbx::PlusTimes<double>>(a, b);

  auto da = to_dense(a), db = to_dense(b);
  std::vector<std::vector<double>> ref(dim, std::vector<double>(dim, 0.0));
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t k = 0; k < dim; ++k)
      if (da[i][k] != 0)
        for (std::size_t j = 0; j < dim; ++j)
          ref[i][j] += da[i][k] * db[k][j];

  auto dc = to_dense(c);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j)
      EXPECT_NEAR(dc[i][j], ref[i][j], 1e-9) << "at (" << i << "," << j << ")";
  EXPECT_TRUE(c.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MxmVsDense,
    ::testing::Values(std::make_tuple(Index{4}, std::size_t{6}, std::uint64_t{1}),
                      std::make_tuple(Index{16}, std::size_t{40}, std::uint64_t{2}),
                      std::make_tuple(Index{48}, std::size_t{300}, std::uint64_t{3}),
                      std::make_tuple(Index{64}, std::size_t{2000}, std::uint64_t{4})));

TEST(Mxv, KnownProduct) {
  Matrix<double> a(3, 3);
  a.set_element(0, 0, 1);
  a.set_element(0, 2, 2);
  a.set_element(2, 1, 3);
  SparseVector<double> x(3);
  std::vector<Index> xi{0, 2};
  std::vector<double> xv{10, 20};
  x.build(xi, xv);
  auto y = gbx::mxv<gbx::PlusTimes<double>>(a, x);
  // y0 = 1*10 + 2*20 = 50; y2 = 3*x1 = absent (x1 empty)
  EXPECT_EQ(y.nvals(), 1u);
  EXPECT_DOUBLE_EQ(y.get(0).value(), 50.0);
  EXPECT_FALSE(y.get(2).has_value());
}

TEST(Mxv, DimMismatchThrows) {
  Matrix<double> a(3, 3);
  SparseVector<double> x(4);
  EXPECT_THROW((gbx::mxv<gbx::PlusTimes<double>>(a, x)),
               gbx::DimensionMismatch);
}

TEST(Vxm, KnownProduct) {
  Matrix<double> a(3, 3);
  a.set_element(0, 1, 2);
  a.set_element(2, 1, 4);
  a.set_element(2, 2, 5);
  SparseVector<double> x(3);
  std::vector<Index> xi{0, 2};
  std::vector<double> xv{10, 100};
  x.build(xi, xv);
  auto y = gbx::vxm<gbx::PlusTimes<double>>(x, a);
  // y1 = x0*2 + x2*4 = 20 + 400 = 420; y2 = x2*5 = 500
  EXPECT_EQ(y.nvals(), 2u);
  EXPECT_DOUBLE_EQ(y.get(1).value(), 420.0);
  EXPECT_DOUBLE_EQ(y.get(2).value(), 500.0);
}

TEST(VxmVsMxvTranspose, Agree) {
  auto a = random_matrix(40, 40, 300, 17);
  SparseVector<double> x(40);
  std::vector<Index> xi;
  std::vector<double> xv;
  for (Index i = 0; i < 40; i += 3) {
    xi.push_back(i);
    xv.push_back(static_cast<double>(i) + 1);
  }
  x.build(xi, xv);
  auto y1 = gbx::vxm<gbx::PlusTimes<double>>(x, a);
  auto at = gbx::transpose(a);
  auto y2 = gbx::mxv<gbx::PlusTimes<double>>(at, x);
  ASSERT_EQ(y1.nvals(), y2.nvals());
  y1.for_each([&](Index i, double v) { EXPECT_NEAR(y2.get(i).value(), v, 1e-9); });
}

TEST(Vector, BuildDedupAndReduce) {
  SparseVector<double> v(100);
  std::vector<Index> idx{5, 5, 1, 99};
  std::vector<double> val{1.0, 2.0, 3.0, 4.0};
  v.build(idx, val);
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_DOUBLE_EQ(v.get(5).value(), 3.0);
  EXPECT_DOUBLE_EQ(v.reduce<gbx::PlusMonoid<double>>(), 10.0);
  EXPECT_DOUBLE_EQ(v.reduce<gbx::MaxMonoid<double>>(), 4.0);
}

TEST(Vector, BoundsChecks) {
  SparseVector<double> v(10);
  std::vector<Index> idx{10};
  std::vector<double> val{1.0};
  EXPECT_THROW(v.build(idx, val), gbx::IndexOutOfBounds);
  EXPECT_THROW(v.get(10), gbx::IndexOutOfBounds);
  EXPECT_THROW(SparseVector<double>(0), gbx::InvalidValue);
}

}  // namespace
