// Tests for D4M associative arrays: string pool, assoc array algebra,
// hierarchical D4M.
#include <gtest/gtest.h>

#include <random>

#include "assoc/assoc.hpp"

namespace {

using assoc::AssocArray;
using assoc::HierAssoc;
using assoc::StringPool;

TEST(StringPool, InternIsIdempotent) {
  StringPool p;
  const auto a = p.intern("10.0.0.1");
  const auto b = p.intern("10.0.0.2");
  EXPECT_NE(a, b);
  EXPECT_EQ(p.intern("10.0.0.1"), a);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.key(a), "10.0.0.1");
}

TEST(StringPool, FindDoesNotInsert) {
  StringPool p;
  EXPECT_EQ(p.find("nope"), gbx::kIndexMax);
  EXPECT_EQ(p.size(), 0u);
  EXPECT_FALSE(p.contains("nope"));
}

TEST(StringPool, StableUnderGrowth) {
  // string_view keys must stay valid across many inserts (deque storage).
  StringPool p;
  std::vector<gbx::Index> ids;
  for (int i = 0; i < 10000; ++i) ids.push_back(p.intern("key" + std::to_string(i)));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(p.find("key" + std::to_string(i)), ids[static_cast<std::size_t>(i)]);
  }
}

TEST(StringPool, SortedIdsAndRange) {
  StringPool p;
  p.intern("banana");
  p.intern("apple");
  p.intern("cherry");
  const auto& s = p.sorted_ids();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(p.key(s[0]), "apple");
  EXPECT_EQ(p.key(s[2]), "cherry");

  auto r = p.range("apple", "banana");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(p.key(r[0]), "apple");
  EXPECT_EQ(p.key(r[1]), "banana");

  // Range rebuilds correctly after more inserts.
  p.intern("apricot");
  auto r2 = p.range("ap", "az");
  ASSERT_EQ(r2.size(), 2u);
  EXPECT_EQ(p.key(r2[0]), "apple");
  EXPECT_EQ(p.key(r2[1]), "apricot");
}

TEST(AssocArray, InsertAccumulates) {
  AssocArray<double> a;
  a.insert("1.2.3.4", "5.6.7.8", 1.0);
  a.insert("1.2.3.4", "5.6.7.8", 2.0);
  a.insert("1.2.3.4", "9.9.9.9", 5.0);
  EXPECT_DOUBLE_EQ(a.get("1.2.3.4", "5.6.7.8"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("1.2.3.4", "9.9.9.9"), 5.0);
  EXPECT_DOUBLE_EQ(a.get("1.2.3.4", "absent"), 0.0);  // sparse zero
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.num_row_keys(), 1u);
  EXPECT_EQ(a.num_col_keys(), 2u);
}

TEST(AssocArray, ForEachSeesKeys) {
  AssocArray<double> a;
  a.insert("src1", "dst1", 1.0);
  a.insert("src2", "dst2", 2.0);
  a.materialize();
  int n = 0;
  double total = 0;
  a.for_each([&](const std::string& r, const std::string& c, double v) {
    EXPECT_TRUE(r == "src1" || r == "src2");
    EXPECT_TRUE(c == "dst1" || c == "dst2");
    total += v;
    ++n;
  });
  EXPECT_EQ(n, 2);
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(AssocArray, RowRangeQuery) {
  AssocArray<double> a;
  a.insert("10.0.0.1", "x", 1.0);
  a.insert("10.0.0.2", "y", 2.0);
  a.insert("10.0.1.1", "z", 3.0);
  a.materialize();
  auto rows = a.row_range("10.0.0.", "10.0.0.~");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::get<0>(rows[0]), "10.0.0.1");
  EXPECT_EQ(std::get<1>(rows[1]), "y");
}

TEST(AssocArray, PlusAssignAlignsDictionaries) {
  AssocArray<double> a, b;
  a.insert("r1", "c1", 1.0);
  a.insert("r2", "c2", 2.0);
  // b interns keys in a DIFFERENT order: ids differ, keys must align.
  b.insert("r2", "c2", 10.0);
  b.insert("r3", "c3", 30.0);
  a.plus_assign(b);
  EXPECT_DOUBLE_EQ(a.get("r1", "c1"), 1.0);
  EXPECT_DOUBLE_EQ(a.get("r2", "c2"), 12.0);
  EXPECT_DOUBLE_EQ(a.get("r3", "c3"), 30.0);
  EXPECT_EQ(a.nvals(), 3u);
}

TEST(AssocArray, RowSums) {
  AssocArray<double> a;
  a.insert("r1", "c1", 1.0);
  a.insert("r1", "c2", 2.0);
  a.insert("r2", "c1", 10.0);
  auto sums = a.row_sums();
  ASSERT_EQ(sums.size(), 2u);
  double r1 = 0, r2 = 0;
  for (const auto& [k, v] : sums) (k == "r1" ? r1 : r2) = v;
  EXPECT_DOUBLE_EQ(r1, 3.0);
  EXPECT_DOUBLE_EQ(r2, 10.0);
}

TEST(HierAssoc, MatchesFlatAssocArray) {
  // The hierarchical D4M must agree with the flat associative array on
  // any stream — same linearity property as HierMatrix.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> ip(0, 40);

  HierAssoc<double> h(1u << 20, hier::CutPolicy::geometric(3, 16, 8));
  AssocArray<double> flat(1u << 20);
  for (int k = 0; k < 2000; ++k) {
    const std::string r = "10.0.0." + std::to_string(ip(rng));
    const std::string c = "10.0.1." + std::to_string(ip(rng));
    h.insert(r, c, 1.0);
    flat.insert(r, c, 1.0);
  }
  for (int i = 0; i <= 40; ++i)
    for (int j = 0; j <= 40; ++j) {
      const std::string r = "10.0.0." + std::to_string(i);
      const std::string c = "10.0.1." + std::to_string(j);
      EXPECT_DOUBLE_EQ(h.get(r, c), flat.get(r, c));
    }
  EXPECT_GT(h.stats().level[0].folds, 0u);
}

TEST(HierAssoc, BatchInsert) {
  HierAssoc<double> h(1u << 16, hier::CutPolicy({100}));
  std::vector<std::string> rows{"a", "b", "a"};
  std::vector<std::string> cols{"x", "y", "x"};
  std::vector<double> vals{1.0, 2.0, 3.0};
  h.insert_batch(rows, cols, vals);
  EXPECT_DOUBLE_EQ(h.get("a", "x"), 4.0);
  EXPECT_DOUBLE_EQ(h.get("b", "y"), 2.0);
  std::vector<double> bad{1.0};
  EXPECT_THROW(h.insert_batch(rows, cols, bad), gbx::DimensionMismatch);
}

}  // namespace
