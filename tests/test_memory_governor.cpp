// Coverage for the memory-governed snapshot eviction subsystem
// (hier/memory_governor.hpp):
//
//   * Compaction primitives: HierSnapshot::compacted() preserves every
//     read path bit-for-bit, owns its block (no surviving alias pins),
//     and carries epoch/cuts/stats along; SnapshotSet::compacted()
//     collapses overlapping-part sets into one exact Σ image.
//   * Governor policy: a lagging reader's pinned bytes are released
//     under a budget (materialize-and-release), reads through the
//     governed handle stay bit-identical before/after eviction, and
//     block use counts actually drop (the memory really frees).
//   * Property (stress label, 3-seed rerun): random update/acquire/
//     evict/spill interleavings re-queried against the dense-replay
//     oracle across the four fold monoids.
//   * Spill: cold snapshots serialize through the RecordLog container
//     and rehydrate transiently with exact results.
//   * ShardedHier per-shard budgets: parts compacted individually,
//     watermarks preserved, reads exact.
//   * analytics::IncrementalEngine over a governed source: eviction of
//     the cached previous snapshot falls back to a counted full
//     recompute; a generous budget keeps the incremental path intact.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "algo/algo.hpp"
#include "analytics/analytics.hpp"
#include "analytics/incremental.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;
using hier::GovernorConfig;
using hier::HierMatrix;
using hier::MemoryGovernor;
using hier::ShardedHier;
using proptest::DenseRef;

constexpr std::uint64_t kSeedCompact = 0x60C0001;
constexpr std::uint64_t kSeedEvict = 0x60C0002;
constexpr std::uint64_t kSeedOracle = 0x60C0003;
constexpr std::uint64_t kSeedSpill = 0x60C0004;
constexpr std::uint64_t kSeedSharded = 0x60C0005;
constexpr std::uint64_t kSeedIncr = 0x60C0006;
constexpr std::uint64_t kSeedWriteSide = 0x60C0007;

/// Entry-for-entry bitwise comparison of two materialized images.
template <class T, class M>
::testing::AssertionResult same_matrix(const gbx::Matrix<T, M>& a,
                                       const gbx::Matrix<T, M>& b) {
  if (!gbx::equal(a, b))
    return ::testing::AssertionFailure() << "materialized images differ";
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Compaction preserves every read path and really owns its block.
// ---------------------------------------------------------------------------
TEST(MemoryGovernor, CompactedSnapshotPreservesReadsAndMetadata) {
  HHGBX_PROP_SEED(seed, kSeedCompact);
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 12;
  HierMatrix<double> h(dim, dim, CutPolicy({32, 512, 8192}));
  DenseRef<double> ref;
  for (int k = 0; k < 25; ++k) {
    auto b = proptest::random_batch<double>(rng, dim, 200);
    h.update(b);
    ref.apply(b);
  }

  auto snap = h.freeze();
  auto compact = snap.compacted();

  EXPECT_EQ(compact.num_levels(), 1u);
  EXPECT_EQ(compact.epoch(), snap.epoch());
  EXPECT_EQ(compact.cuts(), snap.cuts());
  EXPECT_EQ(compact.stats().updates, snap.stats().updates);
  EXPECT_EQ(compact.nvals(), snap.nvals());
  EXPECT_TRUE(same_matrix(compact.to_matrix(), snap.to_matrix()));
  EXPECT_TRUE(ref.matches(compact));

  // The compact block is privately owned: the only reference is the
  // compacted snapshot's own level view.
  EXPECT_EQ(compact.level(0).block_use_count(), 1);
}

TEST(MemoryGovernor, CompactedSingleLevelDeepCopiesTheAliasedBlock) {
  const Index dim = 64;
  // Level-0 cut never trips, so only level 0 is ever non-empty and
  // to_matrix() takes its aliasing fast path.
  HierMatrix<double> h(dim, dim, CutPolicy({1u << 20}));
  h.update(1, 2, 3.0);
  h.update(4, 5, 6.0);
  auto snap = h.freeze();
  ASSERT_GT(snap.level(0).nvals(), 0u);
  auto compact = snap.compacted();
  // to_matrix() aliases a single non-empty level; compacted() must not.
  EXPECT_NE(compact.level(0).shared_storage().get(),
            snap.level(0).shared_storage().get());
  EXPECT_TRUE(same_matrix(compact.to_matrix(), snap.to_matrix()));
}

// Whole-set collapse folds the exact part-major Σ once — bit-identical
// even with overlapping parts and adversarial float cancellation, where
// per-part pre-folding would re-associate the chain.
TEST(MemoryGovernor, SetCollapseIsBitExactForOverlappingParts) {
  const Index dim = 4;
  gbx::Matrix<double> a(dim, dim), b(dim, dim), c(dim, dim);
  a.set_element(0, 0, 1e16);
  b.set_element(0, 0, 1.0);
  c.set_element(0, 0, -1e16);
  std::vector<gbx::MatrixView<double>> lv0{a.view(), b.view()};
  std::vector<gbx::MatrixView<double>> lv1{c.view()};
  hier::HierSnapshot<double> p0(dim, dim, std::move(lv0), {}, {}, 1);
  hier::HierSnapshot<double> p1(dim, dim, std::move(lv1), {}, {}, 1);
  hier::SnapshotSet<double> set({p0, p1}, {{1, 2}, {1, 1}}, 2);

  auto collapsed = set.compacted();
  ASSERT_EQ(collapsed.size(), set.size());
  EXPECT_EQ(collapsed.epoch(), set.epoch());
  EXPECT_EQ(collapsed.watermark(0).entries, set.watermark(0).entries);
  // ((1e16 ⊕ 1) ⊕ -1e16): the left-fold both read paths define.
  ASSERT_TRUE(set.extract_element(0, 0).has_value());
  EXPECT_EQ(*collapsed.extract_element(0, 0), *set.extract_element(0, 0));
  EXPECT_TRUE(same_matrix(collapsed.to_matrix(), set.to_matrix()));
}

// ---------------------------------------------------------------------------
// Budget enforcement: materialize-and-release of a lagging reader.
// ---------------------------------------------------------------------------
TEST(MemoryGovernor, BudgetEvictsLaggingReaderExactly) {
  HHGBX_PROP_SEED(seed, kSeedEvict);
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 13;
  HierMatrix<double> h(dim, dim, CutPolicy({64, 1024, 16384}));

  GovernorConfig cfg;
  cfg.budget_bytes = 0;  // any pinned byte is over budget
  cfg.min_evict_lag = 1;
  MemoryGovernor<HierMatrix<double>> gov(h, cfg);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> evictions;
  gov.set_eviction_hook([&](std::uint64_t evicted, std::uint64_t current,
                            std::uint64_t pinned_before) {
    evictions.emplace_back(evicted, current);
    EXPECT_GT(pinned_before, 0u);
    // Hooks fire outside the registry lock: re-entering the governor
    // from a hook must not deadlock (regression guard).
    EXPECT_GE(gov.memory().snapshots, 1u);
  });
  std::vector<std::uint64_t> stale_epochs;
  gov.set_staleness_hook(
      0, [&](std::uint64_t held, std::uint64_t) { stale_epochs.push_back(held); });

  MemoryGovernor<HierMatrix<double>>::handle_type held;
  gbx::Matrix<double> ref(1, 1);
  hier::HierSnapshot<double> old_image;
  for (int k = 0; k < 30; ++k) {
    auto b = proptest::random_batch<double>(rng, dim, 300);
    h.update(b);
    if (k == 6) {
      held = gov.acquire();
      ref = held.pin().to_matrix();  // the unevicted baseline
      old_image = held.pin();        // keeps the original blocks alive
    } else {
      gov.acquire();  // fresh handle, dropped immediately
    }
  }

  ASSERT_TRUE(held.valid());
  EXPECT_TRUE(held.evicted());
  EXPECT_FALSE(evictions.empty());
  EXPECT_EQ(evictions.front().first, held.epoch());
  EXPECT_FALSE(stale_epochs.empty());

  // Pinned class back to zero: the only outstanding snapshot is compact.
  const auto mem = gov.memory();
  EXPECT_EQ(mem.pinned_bytes, 0u);
  EXPECT_GT(mem.private_bytes, 0u);
  EXPECT_EQ(mem.evicted_snapshots, 1u);
  const auto st = gov.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_GT(st.bytes_released, 0u);
  EXPECT_GT(st.peak_pinned_bytes, 0u);

  // Reads through the evicted handle are bit-identical to the baseline.
  EXPECT_TRUE(same_matrix(held.to_matrix(), ref));
  EXPECT_EQ(held.nvals(), ref.nvals());
  ref.for_each([&](Index i, Index j, double v) {
    auto got = held.extract_element(i, j);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  });

  // The superseded blocks really free: our pinned copy is now the sole
  // owner of the old level-0 block (slot dropped it, writer folded past).
  EXPECT_EQ(old_image.level(0).block_use_count(), 1);
}

// ---------------------------------------------------------------------------
// Write-side enforcement: the budget holds DURING ingest, not only at the
// next acquire. Control phase shows the failure mode being regressed
// against — with acquire-time-only enforcement and no reader activity,
// every shard's fold leaves the held snapshot's generation pinned (one
// block per shard); with enforce_on_write the per-shard notification
// evicts after the FIRST shard folds, so peak pinned never exceeds the
// budget plus what one shard sub-update can supersede — bounded by that
// shard's frozen part, i.e. "one block total, not one per shard".
// ---------------------------------------------------------------------------
TEST(MemoryGovernor, WriteSideEnforcementBoundsPinnedToOneGeneration) {
  HHGBX_PROP_SEED(seed, kSeedWriteSide);
  const Index dim = 1u << 13;
  const std::size_t kShards = 4;
  const int kWarmup = 8;
  const int kStream = 48;
  const std::size_t kBatch = 600;

  // Both phases ingest the identical batch sequence.
  auto make_batches = [&] {
    std::mt19937_64 rng(seed);
    std::vector<Tuples<double>> bs;
    for (int k = 0; k < kWarmup + kStream; ++k)
      bs.push_back(proptest::random_batch<double>(rng, dim, kBatch));
    return bs;
  };
  const auto batches = make_batches();

  // --- Control: acquire-time-only governor, no reader activity during
  // the stream. Nothing ever tells the governor that writers folded, so
  // the held snapshot drifts to one superseded generation PER SHARD.
  std::uint64_t control_pinned = 0;
  std::uint64_t control_max_part = 0;
  {
    ShardedHier<double> sh(kShards, dim, dim, CutPolicy({256, 4096}));
    GovernorConfig cfg;
    cfg.budget_bytes = 0;
    cfg.min_evict_lag = 1;
    MemoryGovernor<ShardedHier<double>> gov(sh, cfg);

    for (int k = 0; k < kWarmup; ++k) sh.update(batches[k]);
    auto held = gov.acquire();
    {
      auto image = held.pin();
      for (std::size_t p = 0; p < image.size(); ++p)
        control_max_part = std::max<std::uint64_t>(
            control_max_part, image.part(p).memory_bytes());
    }
    for (int k = kWarmup; k < kWarmup + kStream; ++k) sh.update(batches[k]);

    const auto mem = gov.memory();
    control_pinned = mem.pinned_bytes;
    EXPECT_FALSE(held.evicted());  // nobody enforced while writers ran
  }
  ASSERT_GT(control_max_part, 0u);
  // Pinned drift spans several shards' generations: strictly more than
  // the largest single frozen part could account for.
  EXPECT_GT(control_pinned, control_max_part);

  // --- Enforced: same stream, enforce_on_write. A concurrent reader
  // thread keeps probing the held handle and the accounting while the
  // writer ingests (reads race eviction; both must stay exact).
  ShardedHier<double> sh(kShards, dim, dim, CutPolicy({256, 4096}));
  GovernorConfig cfg;
  cfg.budget_bytes = 0;  // any pinned byte is over budget
  cfg.min_evict_lag = 1;
  cfg.enforce_on_write = true;
  MemoryGovernor<ShardedHier<double>> gov(sh, cfg);

  for (int k = 0; k < kWarmup; ++k) sh.update(batches[k]);
  auto held = gov.acquire();
  const auto ref = held.pin().to_matrix();
  std::uint64_t max_part = 0;
  {
    auto image = held.pin();
    for (std::size_t p = 0; p < image.size(); ++p)
      max_part =
          std::max<std::uint64_t>(max_part, image.part(p).memory_bytes());
  }

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)gov.memory();
      auto got = held.extract_element(0, 0);
      auto want = ref.extract_element(0, 0);
      if (got.has_value() != want.has_value() ||
          (got.has_value() && *got != *want))
        ADD_FAILURE() << "handle read diverged mid-ingest";
      std::this_thread::yield();
    }
  });
  for (int k = kWarmup; k < kWarmup + kStream; ++k) sh.update(batches[k]);
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // The write observer fired per shard sub-update and evicted the held
  // snapshot as soon as the first fold superseded any of its blocks.
  const auto st = gov.stats();
  EXPECT_TRUE(held.evicted());
  EXPECT_GE(st.evictions, 1u);
  EXPECT_GE(st.enforcements, static_cast<std::uint64_t>(kStream));
  EXPECT_GT(st.peak_pinned_bytes, 0u);
  // The bound under test: budget + one shard's generation. Between two
  // write notifications exactly one shard sub-update ran, so only that
  // shard's slice of the held image can have become pinned before the
  // eviction — never one block per shard (the control's drift).
  EXPECT_LE(st.peak_pinned_bytes, cfg.budget_bytes + max_part);
  EXPECT_LT(st.peak_pinned_bytes, control_pinned);
  EXPECT_EQ(gov.memory().pinned_bytes, 0u);

  // Reads through the evicted handle stay bit-identical to the image
  // frozen at acquire time.
  EXPECT_TRUE(same_matrix(held.to_matrix(), ref));
  EXPECT_EQ(held.nvals(), ref.nvals());
  std::mt19937_64 probe_rng(seed ^ 0x9E3779B97F4A7C15ull);
  for (int q = 0; q < 64; ++q) {
    const Index i = static_cast<Index>(probe_rng() % dim);
    const Index j = static_cast<Index>(probe_rng() % dim);
    auto got = held.extract_element(i, j);
    auto want = ref.extract_element(i, j);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got) {
      EXPECT_EQ(*got, *want);
    }
  }
}

// ---------------------------------------------------------------------------
// Property: evict → re-query equals the dense-replay oracle (4 monoids).
// ---------------------------------------------------------------------------
template <class T, class M>
void run_evict_requery_oracle(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 11;
  HierMatrix<T, M> h(dim, dim, CutPolicy({32, 512, 4096}));

  GovernorConfig cfg;
  cfg.budget_bytes = 0;
  cfg.min_evict_lag = 1;
  cfg.spill_lag = 10;  // the coldest held snapshots leave block form too
  MemoryGovernor<HierMatrix<T, M>> gov(h, cfg);

  DenseRef<T, M> ref;
  std::vector<
      std::pair<typename MemoryGovernor<HierMatrix<T, M>>::handle_type,
                DenseRef<T, M>>>
      held;
  for (int step = 0; step < 40; ++step) {
    auto b = proptest::random_batch<T>(rng, dim, 120);
    h.update(b);
    ref.apply(b);
    if (step % 5 == 2) held.emplace_back(gov.acquire(), ref);
  }
  gov.enforce();

  const auto st = gov.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_GE(st.spills, 1u);

  for (std::size_t k = 0; k < held.size(); ++k) {
    SCOPED_TRACE(::testing::Message()
                 << "held snapshot " << k << ", epoch " << held[k].first.epoch()
                 << (held[k].first.spilled()
                         ? " (spilled)"
                         : held[k].first.evicted() ? " (evicted)" : " (live)"));
    EXPECT_TRUE(held[k].second.matches(held[k].first.to_matrix()));
    EXPECT_EQ(held[k].first.nvals(), held[k].second.nvals());
  }
}

TEST(MemoryGovernorProperty, EvictRequeryOracle_PlusDouble) {
  HHGBX_PROP_SEED(seed, kSeedOracle);
  run_evict_requery_oracle<double, gbx::PlusMonoid<double>>(seed);
}
TEST(MemoryGovernorProperty, EvictRequeryOracle_PlusInt64) {
  HHGBX_PROP_SEED(seed, kSeedOracle ^ 0x11);
  run_evict_requery_oracle<std::int64_t, gbx::PlusMonoid<std::int64_t>>(seed);
}
TEST(MemoryGovernorProperty, EvictRequeryOracle_MinInt64) {
  HHGBX_PROP_SEED(seed, kSeedOracle ^ 0x22);
  run_evict_requery_oracle<std::int64_t, gbx::MinMonoid<std::int64_t>>(seed);
}
TEST(MemoryGovernorProperty, EvictRequeryOracle_MaxInt64) {
  HHGBX_PROP_SEED(seed, kSeedOracle ^ 0x33);
  run_evict_requery_oracle<std::int64_t, gbx::MaxMonoid<std::int64_t>>(seed);
}

// ---------------------------------------------------------------------------
// Spill: cold snapshots serialize out of block form and rehydrate
// transiently with exact results.
// ---------------------------------------------------------------------------
TEST(MemoryGovernor, SpillAndRehydrateExactly) {
  HHGBX_PROP_SEED(seed, kSeedSpill);
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 12;
  HierMatrix<double> h(dim, dim, CutPolicy({64, 1024}));

  GovernorConfig cfg;
  cfg.budget_bytes = 0;
  cfg.min_evict_lag = 1;
  cfg.spill_lag = 4;
  MemoryGovernor<HierMatrix<double>> gov(h, cfg);

  MemoryGovernor<HierMatrix<double>>::handle_type held;
  gbx::Matrix<double> ref(1, 1);
  for (int k = 0; k < 12; ++k) {
    auto b = proptest::random_batch<double>(rng, dim, 200);
    h.update(b);
    if (k == 2) {
      held = gov.acquire();
      ref = held.pin().to_matrix();
    } else {
      gov.acquire();
    }
  }

  EXPECT_TRUE(held.spilled());
  const auto mem = gov.memory();
  EXPECT_GT(mem.spilled_bytes, 0u);
  EXPECT_EQ(mem.spilled_snapshots, 1u);
  EXPECT_EQ(held.memory_bytes(), mem.spilled_bytes);

  // Rehydrated reads: exact, counted, and transient (still spilled).
  EXPECT_TRUE(same_matrix(held.to_matrix(), ref));
  EXPECT_EQ(held.nvals(), ref.nvals());
  EXPECT_TRUE(held.spilled());
  EXPECT_GE(gov.stats().rehydrations, 2u);
  EXPECT_GE(gov.stats().spills, 1u);

  // A pinned copy of a spilled image keeps every metadata field.
  auto img = held.pin();
  EXPECT_EQ(img.epoch(), held.epoch());
  EXPECT_EQ(img.stats().updates, held.epoch());
}

// ---------------------------------------------------------------------------
// ShardedHier: per-shard budgets compact parts individually, watermarks
// and reads preserved exactly.
// ---------------------------------------------------------------------------
TEST(MemoryGovernor, ShardedPerShardBudgetsEvictPartsExactly) {
  HHGBX_PROP_SEED(seed, kSeedSharded);
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 13;
  ShardedHier<double> sh(4, dim, dim, CutPolicy({32, 512}));

  GovernorConfig cfg;
  cfg.part_budget_bytes = 1;  // any pinned shard byte is over budget
  cfg.min_evict_lag = 1;
  MemoryGovernor<ShardedHier<double>> gov(sh, cfg);

  MemoryGovernor<ShardedHier<double>>::handle_type held;
  gbx::Matrix<double> ref(1, 1);
  std::vector<hier::SnapshotWatermark> marks;
  for (int k = 0; k < 25; ++k) {
    auto b = proptest::random_batch<double>(rng, dim, 250);
    sh.update(b);
    if (k == 5) {
      held = gov.acquire();
      auto img = held.pin();
      ref = img.to_matrix();
      for (std::size_t p = 0; p < img.size(); ++p)
        marks.push_back(img.watermark(p));
    } else {
      gov.acquire();
    }
  }

  EXPECT_TRUE(held.evicted());
  const auto st = gov.stats();
  EXPECT_GE(st.part_evictions, 1u);

  auto img = held.pin();
  ASSERT_EQ(img.size(), 4u);
  for (std::size_t p = 0; p < img.size(); ++p) {
    EXPECT_EQ(img.watermark(p).batches, marks[p].batches);
    EXPECT_EQ(img.watermark(p).entries, marks[p].entries);
  }
  EXPECT_TRUE(same_matrix(held.to_matrix(), ref));
  EXPECT_EQ(gov.memory().pinned_bytes, 0u);
}

// ---------------------------------------------------------------------------
// IncrementalEngine over a governed source.
// ---------------------------------------------------------------------------
TEST(MemoryGovernor, IncrementalEngineSurvivesEvictionOfItsPrevSnapshot) {
  HHGBX_PROP_SEED(seed, kSeedIncr);
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 10;
  HierMatrix<double> h(dim, dim, CutPolicy({64, 1024}));

  GovernorConfig cfg;
  cfg.budget_bytes = 0;  // evict the engine's cached prev every round
  cfg.min_evict_lag = 1;
  MemoryGovernor<HierMatrix<double>> gov(h, cfg);
  analytics::IncrementalEngine<MemoryGovernor<HierMatrix<double>>> eng(gov);

  bool saw_eviction_fallback = false;
  for (int round = 0; round < 6; ++round) {
    for (int b = 0; b < 3; ++b) h.update(proptest::random_batch<double>(rng, dim, 150));
    const auto& rep = eng.refresh();
    if (rep.prev_unavailable) {
      saw_eviction_fallback = true;
      EXPECT_TRUE(rep.full_recompute);
    }
    // Every pass — incremental or fallback — matches the from-scratch
    // truth at the same epoch exactly.
    auto truth = h.freeze().to_matrix();
    EXPECT_TRUE(same_matrix(eng.sum(), truth));
    EXPECT_EQ(eng.triangles(), algo::triangle_count(truth));
    auto full = analytics::summarize(truth);
    EXPECT_EQ(eng.summary().links, full.links);
    EXPECT_EQ(eng.summary().sources, full.sources);
    EXPECT_EQ(eng.summary().destinations, full.destinations);
    EXPECT_DOUBLE_EQ(eng.summary().max_link, full.max_link);
  }
  EXPECT_TRUE(saw_eviction_fallback);
  EXPECT_GE(eng.full_recomputes(), 2u);
}

TEST(MemoryGovernor, IncrementalEngineStaysIncrementalUnderGenerousBudget) {
  HHGBX_PROP_SEED(seed, kSeedIncr ^ 0x77);
  std::mt19937_64 rng(seed);
  const Index dim = 1u << 10;
  HierMatrix<double> h(dim, dim, CutPolicy({64, 1024}));

  MemoryGovernor<HierMatrix<double>> gov(h);  // default: unlimited budget
  analytics::IncrementalEngine<MemoryGovernor<HierMatrix<double>>> eng(gov);

  for (int round = 0; round < 5; ++round) {
    for (int b = 0; b < 2; ++b) h.update(proptest::random_batch<double>(rng, dim, 100));
    const auto& rep = eng.refresh();
    EXPECT_FALSE(rep.prev_unavailable);
    if (round > 0) {
      EXPECT_FALSE(rep.full_recompute);
      EXPECT_GT(rep.added + rep.changed, 0u);
    }
    auto truth = h.freeze().to_matrix();
    EXPECT_TRUE(same_matrix(eng.sum(), truth));
  }
  EXPECT_EQ(eng.full_recomputes(), 1u);  // only the first pass
  EXPECT_EQ(gov.stats().evictions, 0u);
}

}  // namespace
