// Tests for concentration measures (entropy, Gini) and window deltas.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

TEST(Entropy, SingleTalkerIsZero) {
  Matrix<double> m(100, 100);
  m.set_element(5, 1, 10.0);
  m.set_element(5, 2, 30.0);
  EXPECT_DOUBLE_EQ(analytics::source_entropy(m), 0.0);
}

TEST(Entropy, EvenTrafficIsLogN) {
  Matrix<double> m(100, 100);
  for (Index i = 0; i < 16; ++i) m.set_element(i, 50, 7.0);
  EXPECT_NEAR(analytics::source_entropy(m), 4.0, 1e-9);  // log2(16)
}

TEST(Entropy, EmptyIsZero) {
  Matrix<double> m(10, 10);
  EXPECT_DOUBLE_EQ(analytics::source_entropy(m), 0.0);
}

TEST(Gini, EvenIsZeroSkewedIsHigh) {
  Matrix<double> even(100, 100);
  for (Index i = 0; i < 10; ++i) even.set_element(i, 0, 5.0);
  EXPECT_NEAR(analytics::source_gini(even), 0.0, 1e-9);

  Matrix<double> skew(100, 100);
  skew.set_element(0, 0, 1.0);
  for (Index i = 1; i < 10; ++i) skew.set_element(i, 0, 0.0001);
  EXPECT_GT(analytics::source_gini(skew), 0.8);

  Matrix<double> single(100, 100);
  single.set_element(3, 3, 9.0);
  EXPECT_DOUBLE_EQ(analytics::source_gini(single), 0.0);  // n < 2 convention
}

TEST(Gini, PowerLawMoreConcentratedThanUniform) {
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.dim = 1u << 12;
  pp.scatter = false;
  pp.alpha = 1.5;
  gen::PowerLawGenerator pg(pp);
  Matrix<double> power(pp.dim, pp.dim);
  power.append(pg.batch<double>(50000));
  power.materialize();

  gen::UniformParams up;
  up.dim = 1u << 12;
  gen::UniformGenerator ug(up);
  Matrix<double> uniform(up.dim, up.dim);
  uniform.append(ug.batch<double>(50000));
  uniform.materialize();

  EXPECT_GT(analytics::source_gini(power), analytics::source_gini(uniform) + 0.2);
}

TEST(WindowDelta, CountsChanges) {
  Matrix<double> before(100, 100), now(100, 100);
  before.set_element(1, 1, 10.0);  // persists, changes volume
  before.set_element(2, 2, 5.0);   // vanishes
  now.set_element(1, 1, 13.0);
  now.set_element(3, 3, 7.0);      // new

  auto d = analytics::window_delta(before, now);
  EXPECT_EQ(d.new_links, 1u);
  EXPECT_EQ(d.gone_links, 1u);
  EXPECT_EQ(d.common_links, 1u);
  EXPECT_DOUBLE_EQ(d.volume_change, 3.0);
}

TEST(WindowDelta, IdenticalWindows) {
  Matrix<double> a(10, 10);
  a.set_element(1, 1, 2.0);
  auto d = analytics::window_delta(a, a);
  EXPECT_EQ(d.new_links, 0u);
  EXPECT_EQ(d.gone_links, 0u);
  EXPECT_EQ(d.common_links, 1u);
  EXPECT_DOUBLE_EQ(d.volume_change, 0.0);
}

TEST(WindowDelta, DimMismatch) {
  Matrix<double> a(10, 10), b(10, 11);
  EXPECT_THROW(analytics::window_delta(a, b), gbx::DimensionMismatch);
}

TEST(WindowDelta, OnTumblingWindows) {
  analytics::TumblingWindows<double> w(2, 1000, 1000, hier::CutPolicy({1000}));
  for (Index k = 0; k < 50; ++k) w.update(k, k, 1.0);
  w.advance();
  for (Index k = 25; k < 75; ++k) w.update(k, k, 1.0);
  auto d = analytics::window_delta(w.window(1), w.window(0));
  EXPECT_EQ(d.new_links, 25u);
  EXPECT_EQ(d.gone_links, 25u);
  EXPECT_EQ(d.common_links, 25u);
}

}  // namespace
