// Tests for the N-primary cluster router (cluster/router.hpp). The
// central oracle is the tentpole claim itself: batches streamed by
// concurrent clients through the router into N worker servers must
// produce epoch-stitched reads IDENTICAL to a single-process
// hier::ShardedHier with the same part count fed the same batches —
// same Σ Ai (bit-identical for a deterministic single client, exactly
// equal for concurrent integer-valued clients), same nvals, same
// per-coordinate element probes, same stitched traffic summary. On top
// of that: placement must agree with ShardedHier::shard_of coordinate-
// for-coordinate, stitched snapshots must never observe a torn client
// batch, a dead worker must surface as a loud kReplyError (never a
// silent partial sum), and a stale placement hint must be redirected.
//
// Workers here are in-process LocalWorkers (real sockets, same code
// path as forked processes — examples/cluster_demo.cpp covers the
// fork topology; this suite keeps everything where TSan can see it).
#include <gtest/gtest.h>

#ifdef __linux__

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "gbx/error.hpp"
#include "hier/hier.hpp"
#include "net/net.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;

constexpr Index kDim = 512;

CutPolicy cuts() { return CutPolicy::geometric(2, 1024, 6); }

/// Router + N in-process workers, started and torn down in order.
struct ClusterHarness {
  explicit ClusterHarness(std::size_t workers)
      : pool(workers, config()), router(pool.map(), router_options()) {
    router.start();
  }

  ~ClusterHarness() { router.stop(); }

  static cluster::WorkerConfig config() {
    cluster::WorkerConfig c;
    c.nrows = kDim;
    c.ncols = kDim;
    c.cuts = cuts();
    return c;
  }

  static cluster::Router::Options router_options() {
    cluster::Router::Options o;
    o.nrows = kDim;
    o.ncols = kDim;
    o.worker_recv_timeout_ms = 5000;
    return o;
  }

  cluster::RouterClient client() {
    cluster::RouterClient cli;
    cli.connect("127.0.0.1", router.port());
    return cli;
  }

  cluster::LocalWorkerPool pool;
  cluster::Router router;
};

std::vector<Tuples<double>> integer_batches(std::uint64_t seed,
                                            std::size_t batches,
                                            std::size_t batch_size) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> coord(0, kDim - 1);
  std::uniform_int_distribution<int> val(1, 9);
  std::vector<Tuples<double>> plan(batches);
  for (auto& b : plan)
    for (std::size_t i = 0; i < batch_size; ++i)
      b.push_back(coord(rng), coord(rng), static_cast<double>(val(rng)));
  return plan;
}

// --- placement: the cluster map IS the in-process shard map.

TEST(ClusterRouter, PartitionAgreesWithShardedHierPlacement) {
  const std::uint64_t kPinned = 0x9a17ed5eed5ULL;
  const std::uint64_t seed = proptest::seed_or_env(kPinned);
  std::cout << proptest::seed_banner(seed, kPinned) << "\n";
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> row(0, Index{1} << 48);

  for (std::size_t parts : {1u, 2u, 3u, 4u, 7u, 16u}) {
    std::vector<cluster::WorkerEndpoint> eps(parts);
    cluster::PartitionMap map(eps);
    hier::ShardedHier<double> sharded(parts, kDim, kDim, cuts());
    for (int i = 0; i < 2000; ++i) {
      const Index r = row(rng);
      EXPECT_EQ(map.part_of(r), hier::row_partition(r, parts));
    }
    // And against actual shard placement: a single-row batch must land
    // in the shard the map names (observed via per-part nvals).
    const Index r = row(rng) % kDim;
    sharded.update(r, 0, 1.0);
    auto snap = sharded.freeze();
    for (std::size_t p = 0; p < parts; ++p)
      EXPECT_EQ(snap.part(p).nvals(), p == map.part_of(r) ? 1u : 0u);
  }
}

// --- the tentpole: stitched reads == single-process oracle.

TEST(ClusterRouter, ConcurrentClientsMatchShardedOracleExactly) {
  const std::size_t workers = 3, clients = 4, batches = 8, batch_size = 1500;
  ClusterHarness h(workers);

  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < clients; ++c) {
    senders.emplace_back([&h, c] {
      auto plan = integer_batches(0xBEEF + c, 8, 1500);
      auto cli = h.client();
      for (const auto& b : plan) cli.insert(b);
      cli.flush();
      cli.bye();
    });
  }
  for (auto& t : senders) t.join();

  // The oracle sees the same batches; integer values make Σ exact
  // under any interleaving (the repo's standing convention).
  hier::ShardedHier<double> oracle(workers, kDim, kDim, cuts());
  for (std::size_t c = 0; c < clients; ++c)
    for (const auto& b : integer_batches(0xBEEF + c, batches, batch_size))
      oracle.update(b);
  auto truth = oracle.freeze();

  auto cli = h.client();
  net::ReplyProvenance prov;
  const auto sum = cli.query_sum(&prov);
  EXPECT_EQ(sum.sum, truth.reduce());
  EXPECT_EQ(sum.nvals, truth.nvals());
  ASSERT_EQ(prov.part_epochs.size(), workers);
  EXPECT_EQ(prov.map_version, 1u);

  // Element probes route to single owners and fold identically.
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<Index> coord(0, kDim - 1);
  std::vector<net::ElementQuery> qs(128);
  for (auto& q : qs) q = net::ElementQuery{coord(rng), coord(rng)};
  const auto rs = cli.query_elements(qs);
  ASSERT_EQ(rs.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want = truth.extract_element(qs[i].row, qs[i].col);
    EXPECT_EQ(rs[i].present != 0, want.has_value());
    if (want) {
      EXPECT_EQ(rs[i].value, *want);
    }
  }

  // The stitched summary: additive fields, max over workers, and the
  // destination count from the column-set union.
  const auto summary = cli.query_summary();
  EXPECT_EQ(summary.packets, truth.reduce());
  EXPECT_EQ(summary.links, truth.nvals());
  auto m = truth.to_matrix();
  EXPECT_EQ(summary.destinations,
            gbx::reduce_cols<gbx::PlusMonoid<double>>(m.view()).nvals());
  double max_link = 0;
  m.for_each([&](Index, Index, double v) {
    if (v > max_link) max_link = v;
  });
  EXPECT_EQ(summary.max_link, max_link);
  cli.bye();
}

TEST(ClusterRouter, SingleClientStitchIsBitIdenticalOnArbitraryDoubles) {
  // One client, sequential batches: the router's forwarding order is
  // fully deterministic, so even non-associative double values must
  // fold BIT-identically to the oracle — the strongest form of the
  // stitched-read claim.
  const std::uint64_t kPinned = 0x0DDC0FFEEULL;
  const std::uint64_t seed = proptest::seed_or_env(kPinned);
  std::cout << proptest::seed_banner(seed, kPinned) << "\n";

  const std::size_t workers = 4, batches = 10, batch_size = 2000;
  ClusterHarness h(workers);

  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> coord(0, kDim - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<Tuples<double>> plan(batches);
  for (auto& b : plan)
    for (std::size_t i = 0; i < batch_size; ++i)
      b.push_back(coord(rng), coord(rng), val(rng));

  auto cli = h.client();
  for (const auto& b : plan) cli.insert(b);
  cli.flush();

  hier::ShardedHier<double> oracle(workers, kDim, kDim, cuts());
  for (const auto& b : plan) oracle.update(b);
  auto truth = oracle.freeze();

  const auto snap = cli.freeze();  // = hier::acquire_snapshot(cli)
  EXPECT_EQ(snap.reduce(), truth.reduce());  // bitwise: == on doubles
  EXPECT_EQ(snap.nvals(), truth.nvals());

  std::vector<net::ElementQuery> qs(256);
  for (auto& q : qs) q = net::ElementQuery{coord(rng), coord(rng)};
  const auto rs = cli.query_elements(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want = truth.extract_element(qs[i].row, qs[i].col);
    EXPECT_EQ(rs[i].present != 0, want.has_value());
    if (want) {
      EXPECT_EQ(rs[i].value, *want);  // bit-identical fold
    }
  }
  cli.bye();
}

// --- stitched snapshots under fire: whole batches, monotone epochs.

TEST(ClusterRouter, StitchNeverObservesATornClientBatch) {
  // Every batch sums to exactly kBatchSum, so ANY stitched Σ must be a
  // multiple of it — a half-forwarded batch would break divisibility.
  // Queries hammer the router concurrently with the writers.
  const std::size_t workers = 2, writers = 3, batches = 30;
  const std::size_t batch_size = 400;
  ClusterHarness h(workers);

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < writers; ++c) {
    threads.emplace_back([&h, c] {
      std::mt19937_64 rng(77 + c);
      std::uniform_int_distribution<Index> coord(0, kDim - 1);
      auto cli = h.client();
      for (std::size_t b = 0; b < 30; ++b) {
        Tuples<double> batch;
        for (std::size_t i = 0; i < 400; ++i)
          batch.push_back(coord(rng), coord(rng), 1.0);
        cli.insert(batch);
      }
      cli.flush();
      cli.bye();
    });
  }

  std::uint64_t last_epoch = 0;
  auto reader = h.client();
  for (int i = 0; i < 25; ++i) {
    const auto snap = reader.freeze();
    // Value-1 entries: the sum is an integer count of entries, and
    // whole-batch atomicity makes it a multiple of the batch size.
    EXPECT_EQ(static_cast<std::uint64_t>(snap.reduce()) % batch_size, 0u)
        << "stitched sum " << snap.reduce() << " is not a whole number of "
        << "batches - a torn batch leaked into the cut";
    EXPECT_GE(snap.epoch(), last_epoch) << "stitched epochs went backwards";
    last_epoch = snap.epoch();
  }
  reader.bye();
  for (auto& t : threads) t.join();

  const auto final_snap = h.client().freeze();
  EXPECT_EQ(final_snap.reduce(),
            static_cast<double>(writers * batches * batch_size));
}

// --- failure semantics: loud, never silently partial.

TEST(ClusterRouter, DeadWorkerFailsStitchedQueriesLoudly) {
  const std::size_t workers = 3;
  ClusterHarness h(workers);

  auto cli = h.client();
  auto plan = integer_batches(0xDEAD, 4, 1000);
  for (const auto& b : plan) cli.insert(b);
  cli.flush();
  const double before = cli.query_sum().sum;
  EXPECT_GT(before, 0.0);

  // Kill one worker server out from under the router (in-process stand-
  // in for SIGKILL: sockets close, the router's next RPC sees EOF).
  h.pool.worker(1).server().stop();

  // Every stitched query must now fail loudly — a silent partial sum
  // from the two survivors is exactly the bug this pins.
  auto probe = h.client();
  EXPECT_THROW(probe.query_sum(), gbx::Error);

  // And the failure is sticky: the worker is marked dead, so later
  // queries on fresh sessions fail too (no flapping half-answers).
  auto probe2 = h.client();
  EXPECT_THROW(probe2.query_summary(), gbx::Error);
  EXPECT_THROW(h.client().query_refresh(), gbx::Error);
}

TEST(ClusterRouter, StaleHintIsRedirectedLoudly) {
  const std::size_t workers = 3;
  ClusterHarness h(workers);

  auto cli = h.client();
  const auto& map = cli.map();  // kQueryMap round trip
  EXPECT_EQ(map.parts, workers);
  EXPECT_EQ(map.version, 1u);
  EXPECT_EQ(map.nrows, kDim);

  // A correct explicit hint is accepted (flush proves it applied).
  const Index row = 123;
  const std::uint64_t owner = cli.worker_of(row);
  Tuples<double> good;
  good.push_back(row, 7, 2.0);
  cli.insert(good, owner);
  cli.flush();
  EXPECT_EQ(cli.query_sum().sum, 2.0);

  // A WRONG hint — what a client with a stale map would assert — must
  // bounce with a diagnostic naming the redirect protocol, and must
  // not be silently rerouted (the batch is NOT applied).
  auto stale = h.client();
  Tuples<double> bad;
  bad.push_back(row, 8, 5.0);
  stale.insert(bad, (owner + 1) % workers);
  const auto reply = stale.read_reply();
  EXPECT_EQ(net::tag_type(reply.epoch), net::MsgType::kReplyError);
  const std::string what(reinterpret_cast<const char*>(reply.payload.data()),
                         reply.payload.size());
  EXPECT_NE(what.find("stale partition map"), std::string::npos) << what;
  EXPECT_EQ(cli.query_sum().sum, 2.0);  // the bad batch never landed
  cli.bye();
}

TEST(ClusterRouter, OutOfRangeInsertIsRejectedAtTheRouter) {
  ClusterHarness h(2);
  auto cli = h.client();
  Tuples<double> bad;
  bad.push_back(kDim + 5, 0, 1.0);  // beyond the cluster's nrows
  cli.insert(bad);
  const auto reply = cli.read_reply();
  EXPECT_EQ(net::tag_type(reply.epoch), net::MsgType::kReplyError);
  // The bad coordinate never reached a worker: the cluster stays empty.
  EXPECT_EQ(h.client().query_sum().sum, 0.0);
}

}  // namespace

#else  // !__linux__

TEST(ClusterRouter, LinuxOnly) {
  GTEST_SKIP() << "the cluster router is Linux-only";
}

#endif
