// Tests for the second-wave generators: uniform control workload and
// temporal burst model.
#include <gtest/gtest.h>

#include <map>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"

namespace {

using gbx::Index;

TEST(Uniform, CoordinatesInRangeAndSpread) {
  gen::UniformParams p;
  p.dim = 1u << 20;
  p.seed = 3;
  gen::UniformGenerator g(p);
  auto b = g.batch<double>(50000);
  std::map<Index, int> rows;
  for (const auto& e : b) {
    EXPECT_LT(e.row, p.dim);
    EXPECT_LT(e.col, p.dim);
    ++rows[e.row];
  }
  // With 50K draws over 1M rows, collisions exist but no row dominates.
  int maxc = 0;
  for (const auto& [r, c] : rows) maxc = std::max(maxc, c);
  EXPECT_LT(maxc, 10);
}

TEST(Uniform, DeterministicPerSeed) {
  gen::UniformParams p;
  p.seed = 11;
  gen::UniformGenerator a(p), b(p);
  auto ba = a.batch<double>(100);
  auto bb = b.batch<double>(100);
  for (std::size_t k = 0; k < 100; ++k) {
    EXPECT_EQ(ba[k].row, bb[k].row);
    EXPECT_EQ(ba[k].col, bb[k].col);
  }
}

TEST(Uniform, MuchLowerDuplicationThanPowerLaw) {
  gen::UniformParams up;
  up.dim = 1u << 16;
  gen::UniformGenerator ug(up);
  gen::PowerLawParams pp;
  pp.scale = 16;
  pp.dim = 1u << 16;
  pp.alpha = 1.5;
  pp.scatter = false;
  gen::PowerLawGenerator pg(pp);

  auto ub = ug.batch<double>(100000);
  auto pb = pg.batch<double>(100000);
  ub.sort_dedup<gbx::PlusMonoid<double>>();
  pb.sort_dedup<gbx::PlusMonoid<double>>();
  // Uniform has near-zero duplication; the power-law collapses heavily.
  EXPECT_GT(ub.size(), pb.size());
}

TEST(Burst, QuietOutsideWindow) {
  gen::PowerLawParams bg;
  bg.scale = 10;
  bg.dim = 1u << 16;
  bg.seed = 9;
  const Index src = 60000, dst = 60001;
  gen::BurstGenerator g(bg, {{3, 5, src, dst, 0, 0.5}});

  for (int b = 0; b < 8; ++b) {
    auto batch = g.batch<double>(2000);
    std::size_t hits = 0;
    for (const auto& e : batch)
      if (e.row == src && e.col == dst) ++hits;
    if (b >= 3 && b < 5) {
      EXPECT_GE(hits, 900u) << "batch " << b;  // ~50% quota
    } else {
      EXPECT_LT(hits, 5u) << "batch " << b;  // background only
    }
  }
}

TEST(Burst, SpreadFansOut) {
  gen::PowerLawParams bg;
  bg.scale = 10;
  bg.dim = 1u << 16;
  const Index src = 50000, dst0 = 50010;
  gen::BurstGenerator g(bg, {{0, 1, src, dst0, 9, 0.5}});
  auto batch = g.batch<double>(4000);
  std::map<Index, int> targets;
  for (const auto& e : batch)
    if (e.row == src) ++targets[e.col];
  // scan-like fan-out: several distinct targets within [dst0, dst0+9]
  EXPECT_GE(targets.size(), 5u);
  for (const auto& [t, c] : targets) {
    EXPECT_GE(t, dst0);
    EXPECT_LE(t, dst0 + 9);
  }
}

TEST(Burst, Validation) {
  gen::PowerLawParams bg;
  bg.scale = 10;
  bg.dim = 1u << 16;
  EXPECT_THROW(gen::BurstGenerator(bg, {{5, 5, 0, 0, 0, 0.5}}),
               gbx::InvalidValue);
  EXPECT_THROW(gen::BurstGenerator(bg, {{0, 1, 0, 0, 0, 0.0}}),
               gbx::InvalidValue);
  EXPECT_THROW(gen::BurstGenerator(bg, {{0, 1, 1u << 16, 0, 0, 0.5}}),
               gbx::IndexOutOfBounds);
}

TEST(Burst, DetectableByGravityModel) {
  // End-to-end: a planted burst between quiet hosts must surface as the
  // top gravity anomaly of the accumulated window.
  gen::PowerLawParams bg;
  bg.scale = 12;
  bg.dim = gbx::kIPv4Dim;
  bg.seed = 21;
  const Index src = 0xC0A80101, dst = 0x08080404;
  gen::BurstGenerator g(bg, {{2, 6, src, dst, 0, 0.1}});

  hier::HierMatrix<double> h(bg.dim, bg.dim, hier::CutPolicy::geometric(3, 1024, 8));
  for (int b = 0; b < 6; ++b) h.update(g.batch<double>(5000));
  auto anomalies = analytics::gravity_anomalies(h.snapshot(), 3, 2.0, 50.0);
  ASSERT_FALSE(anomalies.empty());
  EXPECT_EQ(anomalies[0].src, src);
  EXPECT_EQ(anomalies[0].dst, dst);
}

}  // namespace
