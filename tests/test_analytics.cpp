// Tests for traffic-matrix analytics: summaries, supernodes, degree
// histograms, gravity background model.
#include <gtest/gtest.h>

#include "analytics/analytics.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

Matrix<double> traffic_fixture() {
  // Two heavy talkers (rows 1, 2), one quiet host (row 7).
  Matrix<double> m(100, 100);
  m.set_element(1, 10, 50);
  m.set_element(1, 11, 30);
  m.set_element(1, 12, 20);
  m.set_element(2, 10, 40);
  m.set_element(2, 13, 10);
  m.set_element(7, 14, 1);
  m.materialize();
  return m;
}

TEST(Summary, CountsAndAggregates) {
  auto m = traffic_fixture();
  auto s = analytics::summarize(m);
  EXPECT_EQ(s.links, 6u);
  EXPECT_DOUBLE_EQ(s.packets, 151.0);
  EXPECT_EQ(s.sources, 3u);
  EXPECT_EQ(s.destinations, 5u);
  EXPECT_DOUBLE_EQ(s.max_link, 50.0);
  EXPECT_NEAR(s.mean_link, 151.0 / 6.0, 1e-12);
}

TEST(Summary, Empty) {
  Matrix<double> m(10, 10);
  auto s = analytics::summarize(m);
  EXPECT_EQ(s.links, 0u);
  EXPECT_DOUBLE_EQ(s.packets, 0.0);
  EXPECT_DOUBLE_EQ(s.max_link, 0.0);
}

TEST(Supernodes, TopSourcesByVolume) {
  auto m = traffic_fixture();
  auto top = analytics::top_sources(m, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_DOUBLE_EQ(top[0].value, 100.0);
  EXPECT_EQ(top[1].id, 2u);
  EXPECT_DOUBLE_EQ(top[1].value, 50.0);
}

TEST(Supernodes, TopSourcesByLinks) {
  auto m = traffic_fixture();
  auto top = analytics::top_sources(m, 1, /*by_links=*/true);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_DOUBLE_EQ(top[0].value, 3.0);
}

TEST(Supernodes, TopDestinations) {
  auto m = traffic_fixture();
  auto top = analytics::top_destinations(m, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 10u);
  EXPECT_DOUBLE_EQ(top[0].value, 90.0);
}

TEST(Supernodes, KLargerThanPopulation) {
  auto m = traffic_fixture();
  auto top = analytics::top_sources(m, 50);
  EXPECT_EQ(top.size(), 3u);
}

TEST(DegreeHistogram, CountsDegrees) {
  auto m = traffic_fixture();
  auto h = analytics::out_degree_histogram(m);
  // degrees: row1 -> 3, row2 -> 2, row7 -> 1
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(h[1], (std::pair<std::uint64_t, std::uint64_t>{2, 1}));
  EXPECT_EQ(h[2], (std::pair<std::uint64_t, std::uint64_t>{3, 1}));
}

TEST(PowerLawSlope, FlatAndFalling) {
  // Perfect power law count = degree^-2 -> slope -2.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hist;
  for (std::uint64_t d = 1; d <= 64; d *= 2)
    hist.emplace_back(d, std::max<std::uint64_t>(1, 4096 / (d * d)));
  const double slope = analytics::power_law_slope(hist);
  EXPECT_NEAR(slope, -2.0, 0.2);
  EXPECT_DOUBLE_EQ(analytics::power_law_slope({}), 0.0);
  EXPECT_DOUBLE_EQ(analytics::power_law_slope({{1, 5}}), 0.0);
}

TEST(Gravity, UniformMatrixHasNoAnomalies) {
  // Rank-1 traffic (outer product) matches the gravity model exactly:
  // every score is 1, nothing passes min_score = 1.5.
  Matrix<double> m(8, 8);
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 4; ++j)
      m.set_element(i, j, static_cast<double>((i + 1) * (j + 1)));
  m.materialize();
  auto a = analytics::gravity_anomalies(m, 10, 1.5);
  EXPECT_TRUE(a.empty());
}

TEST(Gravity, PlantedAnomalySurfaces) {
  // Uniform background chatter among hosts 0..15, plus one hot link
  // between two otherwise-quiet hosts (the exfiltration pattern): its
  // marginals are small, so the gravity expectation is tiny and the
  // score large.
  Matrix<double> m(32, 32);
  for (Index i = 0; i < 16; ++i)
    for (Index j = 0; j < 16; ++j) m.set_element(i, j, 1.0);
  m.set_element(20, 21, 50.0);
  m.materialize();
  auto a = analytics::gravity_anomalies(m, 5, 2.0);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a[0].src, 20u);
  EXPECT_EQ(a[0].dst, 21u);
  EXPECT_GT(a[0].score, 5.0);
}

TEST(Gravity, EmptyMatrix) {
  Matrix<double> m(4, 4);
  EXPECT_TRUE(analytics::gravity_anomalies(m, 3).empty());
  auto r = analytics::gravity_residual(m);
  EXPECT_EQ(r.nvals(), 0u);
}

TEST(Gravity, ResidualSumsNearZero) {
  auto m = traffic_fixture();
  auto r = analytics::gravity_residual(m);
  EXPECT_EQ(r.nvals(), m.nvals());
  // Residual total is zero when marginals cover all mass... only for the
  // stored pattern of a full outer product; here just check finite and
  // smaller mass than the original.
  const double obs = gbx::reduce_scalar<gbx::PlusMonoid<double>>(m);
  const double res = std::abs(gbx::reduce_scalar<gbx::PlusMonoid<double>>(r));
  EXPECT_LT(res, obs);
}

TEST(Integration, AnalyticsOnHierSnapshot) {
  // The paper's streaming-analytics loop: update, snapshot, analyze.
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.seed = 21;
  gen::PowerLawGenerator g(pp);
  hier::HierMatrix<double> h(pp.dim, pp.dim,
                             hier::CutPolicy::geometric(3, 1024, 16));
  for (int s = 0; s < 10; ++s) {
    h.update(g.batch<double>(3000));
    auto snap = h.snapshot();
    auto sum = analytics::summarize(snap);
    EXPECT_EQ(sum.links, snap.nvals());
    auto top = analytics::top_sources(snap, 5);
    EXPECT_LE(top.size(), 5u);
    if (!top.empty()) {
      EXPECT_GE(top[0].value, top.back().value);
    }
  }
}

}  // namespace
