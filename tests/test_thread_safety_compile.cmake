# Negative-compile driver for the thread-safety annotations: compile one
# tests/compile_fail/ source with Clang's analysis promoted to errors and
# assert the expected outcome.
#
#   cmake -DCLANGXX=<clang++> -DSRC=<file> -DINCLUDE_DIR=<repo>/src
#         -DEXPECT=PASS|FAIL -P test_thread_safety_compile.cmake
#
# EXPECT=FAIL sources each seed one lock-discipline bug (guarded member
# without the lock, REQUIRES contract break, double acquire, shared-hold
# write); the test passes only when the compiler REJECTS the file. The
# EXPECT=PASS control proves the toolchain accepts correct code, so the
# FAIL results are meaningful.
foreach(var CLANGXX SRC INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "test_thread_safety_compile.cmake: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${CLANGXX} -std=c++20 -fsyntax-only
          -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety -Werror=thread-safety-beta
          -I${INCLUDE_DIR} ${SRC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "seeded thread-safety violation was NOT rejected: ${SRC}\n"
      "The analysis would let this race/deadlock ship.")
  endif()
  string(FIND "${err}" "thread-safety" has_ts)
  if(has_ts EQUAL -1)
    message(FATAL_ERROR
      "${SRC} failed to compile, but not from a thread-safety "
      "diagnostic — the violation test is broken:\n${err}")
  endif()
elseif(EXPECT STREQUAL "PASS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "positive control rejected — the suite cannot distinguish real "
      "violations: ${SRC}\n${err}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be PASS or FAIL (got '${EXPECT}')")
endif()
