// tests/prop_util.hpp — property-based differential-testing utilities.
//
// Conventions shared by the randomized suites:
//
//   * Seeds are PINNED in the test source (named constants), so every
//     run is reproducible by default. The HHGBX_SEED environment
//     variable mixes an extra value into every pinned seed, which is
//     how CTest re-runs each property suite under several named seeds
//     (see tests/CMakeLists.txt) without touching the sources.
//   * Every randomized test announces its effective seed through
//     HHGBX_PROP_SEED, so a failure report always contains the exact
//     seed to replay (copy it into HHGBX_SEED, or temporarily pin it).
//   * DenseRef is the differential oracle: a coordinate map replaying
//     the same operation stream through plain monoid folds. Snapshots
//     are checked ENTRY-FOR-ENTRY against the reference replay of the
//     operation prefix they claim to represent.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <sstream>
#include <utility>

#include "gbx/gbx.hpp"
#include "hier/hier.hpp"

namespace proptest {

/// splitmix64 finalizer — decorrelates pinned seed and env perturbation.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Effective seed: the pinned value, perturbed by HHGBX_SEED when set.
/// HHGBX_SEED=0 (or unset) keeps the pinned seed unchanged, so the
/// default CTest run is bit-identical to a plain ./test_foo run.
inline std::uint64_t seed_or_env(std::uint64_t pinned) {
  const char* env = std::getenv("HHGBX_SEED");
  if (env == nullptr || *env == '\0') return pinned;
  const std::uint64_t perturb = std::strtoull(env, nullptr, 10);
  if (perturb == 0) return pinned;
  return mix(pinned ^ mix(perturb));
}

/// One-line replay instructions attached to every failure.
inline std::string seed_banner(std::uint64_t effective, std::uint64_t pinned) {
  std::ostringstream os;
  os << "property seed = " << effective << " (pinned " << pinned
     << ", HHGBX_SEED="
     << (std::getenv("HHGBX_SEED") ? std::getenv("HHGBX_SEED") : "<unset>")
     << "; replay by exporting the same HHGBX_SEED)";
  return os.str();
}

/// Declare the test's rng seed and make failures print it.
#define HHGBX_PROP_SEED(var, pinned)                        \
  const std::uint64_t var = ::proptest::seed_or_env(pinned); \
  SCOPED_TRACE(::proptest::seed_banner(var, (pinned)))

/// Dense differential oracle: coordinate -> monoid-folded value. This is
/// the "direct accumulation" side of the paper's central equivalence,
/// replayed with no hierarchy, no folds, no sharing.
template <class T, class M = gbx::PlusMonoid<T>>
class DenseRef {
 public:
  using key_type = std::pair<gbx::Index, gbx::Index>;

  void apply(gbx::Index i, gbx::Index j, T v) {
    auto [it, fresh] = cells_.try_emplace({i, j}, v);
    if (!fresh) it->second = M::apply(it->second, v);
  }

  void apply(const gbx::Tuples<T>& batch) {
    for (const auto& e : batch) apply(e.row, e.col, e.val);
  }

  std::size_t nvals() const { return cells_.size(); }

  /// Monoid fold of every stored value (the Σ Ai scalar).
  T reduce() const {
    T acc = M::identity();
    for (const auto& [k, v] : cells_) acc = M::apply(acc, v);
    return acc;
  }

  const std::map<key_type, T>& cells() const { return cells_; }

  /// Entry-for-entry comparison against a materialized matrix.
  ::testing::AssertionResult matches(const gbx::Matrix<T, M>& m) const {
    if (m.nvals() != cells_.size())
      return ::testing::AssertionFailure()
             << "nvals mismatch: matrix " << m.nvals() << " vs reference "
             << cells_.size();
    for (const auto& [k, v] : cells_) {
      auto got = m.extract_element(k.first, k.second);
      if (!got)
        return ::testing::AssertionFailure()
               << "missing entry (" << k.first << ", " << k.second << ")";
      if (*got != v)
        return ::testing::AssertionFailure()
               << "value mismatch at (" << k.first << ", " << k.second
               << "): matrix " << *got << " vs reference " << v;
    }
    return ::testing::AssertionSuccess();
  }

  /// Entry-for-entry comparison against a frozen snapshot: every entry is
  /// read through the snapshot's cross-level lookup AND the materialized
  /// Σ Ai, so the two snapshot read paths are differentially checked too.
  ::testing::AssertionResult matches(
      const hier::HierSnapshot<T, M>& snap) const {
    for (const auto& [k, v] : cells_) {
      auto got = snap.extract_element(k.first, k.second);
      if (!got)
        return ::testing::AssertionFailure()
               << "snapshot missing entry (" << k.first << ", " << k.second
               << ")";
      if (*got != v)
        return ::testing::AssertionFailure()
               << "snapshot value mismatch at (" << k.first << ", "
               << k.second << "): snapshot " << *got << " vs reference " << v;
    }
    return matches(snap.to_matrix());
  }

 private:
  std::map<key_type, T> cells_;
};

/// Uniform random batch over a small coordinate square, values in
/// [-5, 5] — small enough that min/max/plus folds stay exactly
/// representable in every tested value type.
template <class T>
gbx::Tuples<T> random_batch(std::mt19937_64& rng, gbx::Index dim,
                            std::size_t n) {
  std::uniform_int_distribution<gbx::Index> coord(0, dim - 1);
  std::uniform_int_distribution<int> val(-5, 5);
  gbx::Tuples<T> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k)
    out.push_back(coord(rng), coord(rng), static_cast<T>(val(rng)));
  return out;
}

}  // namespace proptest
