// Stress tests: sustained streams, deep cascades, and multi-instance
// runs at sizes well beyond the unit tests — invariants must hold at
// scale, not just on toys. Kept to a few seconds total.
//
// Seeds are pinned (reproducible by default) and perturbed by the
// HHGBX_SEED environment variable, under which CTest re-runs this whole
// suite several times; failures always print the effective seed. Every
// assertion below is seed-robust: it checks structural invariants and
// exact algebraic equivalences, not sample-specific values.
#include <gtest/gtest.h>

#include <omp.h>

#include "analytics/analytics.hpp"
#include "cluster/cluster.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

TEST(Stress, MillionEntryStreamEquivalence) {
  HHGBX_PROP_SEED(seed, 42);
  // 1M entries through a deep hierarchy vs direct accumulation.
  gen::PowerLawParams pp;
  pp.scale = 18;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);

  hier::HierMatrix<double> h(pp.dim, pp.dim,
                             hier::CutPolicy::geometric(5, 4096, 8));
  gbx::Matrix<double> direct(pp.dim, pp.dim);
  for (int s = 0; s < 10; ++s) {
    auto b = g.batch<double>(100000);
    h.update(b);
    direct.append(b);
  }
  direct.materialize();
  auto snap = h.snapshot();
  ASSERT_TRUE(gbx::equal(snap, direct));
  ASSERT_TRUE(snap.validate());
  // Cascade really happened at this scale: every 100K-entry set blows
  // through c1 = 4096 (one fold per set), and level 2 folded repeatedly.
  EXPECT_EQ(h.stats().level[0].folds, 10u);
  EXPECT_GE(h.stats().level[1].folds, 4u);
}

TEST(Stress, TinyCutsMaximalFoldChurn) {
  // Pathologically small cuts force a fold on nearly every update; the
  // value must still be exact and memory must not blow up.
  HHGBX_PROP_SEED(seed, 3);
  hier::HierMatrix<double> h(gbx::kIPv4Dim, gbx::kIPv4Dim,
                             hier::CutPolicy({1, 2, 4, 8, 16}));
  gen::PowerLawParams pp;
  pp.scale = 10;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);
  gbx::Matrix<double> direct(pp.dim, pp.dim);
  for (int k = 0; k < 300; ++k) {
    auto b = g.batch<double>(10);
    h.update(b);
    direct.append(b);
  }
  direct.materialize();
  EXPECT_TRUE(gbx::equal(h.snapshot(), direct));
  EXPECT_GT(h.stats().level[0].folds, 200u);
}

TEST(Stress, ManyInstancesSaturated) {
  // One instance per hardware thread, real parallel ingest; totals and
  // values verified per instance.
  HHGBX_PROP_SEED(seed, 77);
  const auto threads = static_cast<std::size_t>(omp_get_max_threads());
  cluster::WorkloadSpec w;
  w.sets = 2;
  w.set_size = 20000;
  w.scale = 14;
  w.seed = seed;
  auto r = cluster::run_hier_gbx(threads, w,
                                 hier::CutPolicy::geometric(4, 2048, 8));
  EXPECT_EQ(r.instances, threads);
  EXPECT_EQ(r.entries, threads * w.entries_per_instance());
  EXPECT_GT(r.aggregate_rate, 0.0);
  EXPECT_GT(r.wall_rate, 0.0);
}

TEST(Stress, LongWindowRotation) {
  // Hundreds of window rotations: ring indexing and recycling stay sound.
  HHGBX_PROP_SEED(seed, 9);
  analytics::TumblingWindows<double> w(5, 1u << 20, 1u << 20,
                                       hier::CutPolicy({256}));
  gen::PowerLawParams pp;
  pp.scale = 10;
  pp.dim = 1u << 20;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);
  for (int epoch = 0; epoch < 200; ++epoch) {
    w.update(g.batch<double>(200));
    if (epoch % 2 == 1) w.advance();
  }
  EXPECT_EQ(w.epoch(), 100u);
  auto occ = w.occupancy();
  EXPECT_EQ(occ.size(), 5u);
  // Only live windows contribute; the union is queryable and valid.
  EXPECT_TRUE(w.total().validate());
}

TEST(Stress, SnapshotUnderContinuousQueries) {
  // Query every batch — the worst-case analysis cadence. Rate will be
  // query-bound but values must track exactly.
  HHGBX_PROP_SEED(seed, 5);
  gen::PowerLawParams pp;
  pp.scale = 14;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);
  hier::HierMatrix<double> h(pp.dim, pp.dim,
                             hier::CutPolicy::geometric(4, 8192, 8));
  gbx::Matrix<double> direct(pp.dim, pp.dim);
  double last_total = 0;
  for (int s = 0; s < 30; ++s) {
    auto b = g.batch<double>(10000);
    h.update(b);
    direct.append(b);
    const double t =
        gbx::reduce_scalar<gbx::PlusMonoid<double>>(h.snapshot());
    EXPECT_GE(t, last_total);
    last_total = t;
  }
  direct.materialize();
  EXPECT_DOUBLE_EQ(last_total,
                   gbx::reduce_scalar<gbx::PlusMonoid<double>>(direct));
}

}  // namespace
