// Tests for the LSM (Accumulo-model) store: combiner semantics, flush/
// compaction machinery, sorted iteration under arbitrary interleavings.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "store/store.hpp"

namespace {

using store::Key;
using store::LsmOptions;
using store::LsmStore;

TEST(Lsm, InsertAndGet) {
  LsmStore s;
  s.insert({1, 2}, 3.0);
  EXPECT_DOUBLE_EQ(s.get({1, 2}).value(), 3.0);
  EXPECT_FALSE(s.get({2, 1}).has_value());
}

TEST(Lsm, SummingCombiner) {
  LsmStore s;
  s.insert({1, 2}, 3.0);
  s.insert({1, 2}, 4.0);
  EXPECT_DOUBLE_EQ(s.get({1, 2}).value(), 7.0);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Lsm, CombinesAcrossMemtableAndRuns) {
  LsmOptions opt;
  opt.memtable_limit = 4;
  LsmStore s(opt);
  s.insert({1, 1}, 1.0);
  s.flush();  // {1,1} now in a run
  s.insert({1, 1}, 2.0);  // and again in the memtable
  EXPECT_DOUBLE_EQ(s.get({1, 1}).value(), 3.0);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Lsm, AutoFlushAtLimit) {
  LsmOptions opt;
  opt.memtable_limit = 8;
  LsmStore s(opt);
  for (gbx::Index k = 0; k < 20; ++k) s.insert({k, k}, 1.0);
  EXPECT_GE(s.stats().flushes, 2u);
  EXPECT_LT(s.memtable_entries(), 8u);
  EXPECT_EQ(s.size(), 20u);
}

TEST(Lsm, CompactionBoundsRunCount) {
  LsmOptions opt;
  opt.memtable_limit = 4;
  opt.compaction_fanin = 3;
  LsmStore s(opt);
  for (gbx::Index k = 0; k < 200; ++k) s.insert({k, 0}, 1.0);
  EXPECT_LE(s.num_runs(), opt.compaction_fanin + 1);
  EXPECT_GT(s.stats().compactions, 0u);
  EXPECT_EQ(s.size(), 200u);
}

TEST(Lsm, MajorCompactToSingleRun) {
  LsmOptions opt;
  opt.memtable_limit = 4;
  LsmStore s(opt);
  for (gbx::Index k = 0; k < 50; ++k) s.insert({k % 10, k / 10}, 1.0);
  s.major_compact();
  EXPECT_EQ(s.num_runs(), 1u);
  EXPECT_EQ(s.memtable_entries(), 0u);
  EXPECT_EQ(s.size(), 50u);
}

TEST(Lsm, ScanIsSortedAndComplete) {
  LsmOptions opt;
  opt.memtable_limit = 16;
  LsmStore s(opt);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<gbx::Index> coord(0, 99);
  std::map<std::pair<gbx::Index, gbx::Index>, double> model;
  for (int k = 0; k < 3000; ++k) {
    const Key key{coord(rng), coord(rng)};
    s.insert(key, 1.0);
    model[{key.row, key.col}] += 1.0;
  }
  std::vector<Key> seen;
  double total = 0;
  s.scan([&](Key k, double v) {
    seen.push_back(k);
    total += v;
    EXPECT_DOUBLE_EQ(model.at({k.row, k.col}), v);
  });
  EXPECT_EQ(seen.size(), model.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_DOUBLE_EQ(total, 3000.0);
}

TEST(Lsm, WalRecordsEveryInsert) {
  LsmStore s;
  for (int k = 0; k < 10; ++k) s.insert({1, 1}, 1.0);
  EXPECT_EQ(s.stats().inserts, 10u);
  EXPECT_GT(s.wal_bytes(), 10u * (sizeof(Key) + sizeof(double)));
}

TEST(Lsm, WalDisabled) {
  LsmOptions opt;
  opt.enable_wal = false;
  LsmStore s(opt);
  s.insert({1, 1}, 1.0);
  EXPECT_EQ(s.wal_bytes(), 0u);
}

// Fuzz: interleavings of insert/flush/compact match a map model.
class LsmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LsmFuzz, MatchesMapModel) {
  LsmOptions opt;
  opt.memtable_limit = 32;
  opt.compaction_fanin = 4;
  LsmStore s(opt);
  std::map<std::pair<gbx::Index, gbx::Index>, double> model;
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<gbx::Index> coord(0, 63);
  std::uniform_int_distribution<int> act(0, 19);
  for (int step = 0; step < 5000; ++step) {
    const int a = act(rng);
    if (a < 18) {
      const Key k{coord(rng), coord(rng)};
      const double v = static_cast<double>(a + 1);
      s.insert(k, v);
      model[{k.row, k.col}] += v;
    } else if (a == 18) {
      s.flush();
    } else {
      s.major_compact();
    }
  }
  EXPECT_EQ(s.size(), model.size());
  for (const auto& [k, v] : model)
    EXPECT_NEAR(s.get({k.first, k.second}).value(), v, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmFuzz, ::testing::Values(1u, 2u, 3u));

// Zero values must survive every layer transition — a 0.0 in the
// memtable, flushed to a run, merged by compaction, is still a present
// entry, never dropped as "empty".
TEST(Lsm, ZeroValuesSurviveFlushAndCompaction) {
  LsmOptions opt;
  opt.memtable_limit = 4;
  LsmStore s(opt);
  s.insert({1, 1}, 0.0);
  s.flush();
  ASSERT_TRUE(s.get({1, 1}).has_value());
  EXPECT_DOUBLE_EQ(s.get({1, 1}).value(), 0.0);
  s.insert({1, 1}, 2.0);   // combines with the flushed zero
  s.insert({2, 2}, -2.0);
  s.insert({2, 2}, 2.0);   // sums to zero across two memtable inserts
  s.flush();
  s.major_compact();
  EXPECT_DOUBLE_EQ(s.get({1, 1}).value(), 2.0);
  ASSERT_TRUE(s.get({2, 2}).has_value());
  EXPECT_DOUBLE_EQ(s.get({2, 2}).value(), 0.0);
  EXPECT_EQ(s.size(), 2u);
}

// The exact memtable-limit boundary: N distinct keys sit resident; the
// insert crossing the limit triggers the flush.
TEST(Lsm, ExactMemtableLimitBoundary) {
  LsmOptions opt;
  opt.memtable_limit = 8;
  LsmStore s(opt);
  for (gbx::Index k = 0; k < 7; ++k) s.insert({k, 0}, 1.0);
  EXPECT_EQ(s.num_runs(), 0u);
  EXPECT_EQ(s.memtable_entries(), 7u);
  s.insert({7, 0}, 1.0);  // at the limit
  const auto runs_at_limit = s.num_runs();
  s.insert({8, 0}, 1.0);
  EXPECT_GE(s.num_runs(), 1u);  // the boundary crossing flushed
  EXPECT_LE(runs_at_limit, 1u);
  // A duplicate key does not grow the memtable past the limit either.
  for (int i = 0; i < 100; ++i) s.insert({8, 0}, 1.0);
  EXPECT_LE(s.memtable_entries(), 8u);
  for (gbx::Index k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(s.get({k, 0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.get({8, 0}).value(), 101.0);
}

// Reopen-after-crash analogue for the WAL-less configuration the tier
// directory uses: merged_view() is the full durable image; a store
// rebuilt from it answers identically (the recovery path of anything
// persisting LSM contents wholesale).
TEST(Lsm, RebuildFromMergedViewMatches) {
  LsmOptions opt;
  opt.memtable_limit = 16;
  opt.enable_wal = false;
  LsmStore s(opt);
  std::mt19937_64 rng(29);
  std::uniform_int_distribution<gbx::Index> coord(0, 127);
  for (int k = 0; k < 3000; ++k)
    s.insert({coord(rng), coord(rng)}, static_cast<double>(k % 7));

  LsmStore rebuilt(opt);
  for (const auto& [key, val] : s.merged_view()) rebuilt.insert(key, val);

  EXPECT_EQ(rebuilt.size(), s.size());
  s.scan([&](const Key& k, store::Value v) {
    auto got = rebuilt.get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(*got, v);
  });
}

}  // namespace
