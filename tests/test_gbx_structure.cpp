// Tests for structural ops (concat/split/resize/diag/dup), vector
// element-wise kernels, and index-unary apply.
#include <gtest/gtest.h>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::SparseVector;

Matrix<double> filled(Index rows, Index cols, double base) {
  Matrix<double> m(rows, cols);
  for (Index i = 0; i < rows; ++i)
    for (Index j = 0; j < cols; ++j)
      m.set_element(i, j, base + static_cast<double>(i * cols + j));
  m.materialize();
  return m;
}

TEST(Concat, TwoByTwoGrid) {
  auto a = filled(2, 2, 0);    // top-left
  auto b = filled(2, 3, 100);  // top-right
  auto c = filled(1, 2, 200);  // bottom-left
  auto d = filled(1, 3, 300);  // bottom-right
  auto m = gbx::concat<double, gbx::PlusMonoid<double>>({&a, &b, &c, &d}, 2, 2);
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.ncols(), 5u);
  EXPECT_EQ(m.nvals(), 4u + 6u + 2u + 3u);
  EXPECT_DOUBLE_EQ(m.extract_element(0, 0).value(), 0.0);       // a(0,0)
  EXPECT_DOUBLE_EQ(m.extract_element(0, 2).value(), 100.0);     // b(0,0)
  EXPECT_DOUBLE_EQ(m.extract_element(2, 0).value(), 200.0);     // c(0,0)
  EXPECT_DOUBLE_EQ(m.extract_element(2, 4).value(), 302.0);     // d(0,2)
}

TEST(Concat, ShapeValidation) {
  auto a = filled(2, 2, 0);
  auto b = filled(3, 2, 0);  // wrong height for same grid row
  EXPECT_THROW((gbx::concat<double, gbx::PlusMonoid<double>>({&a, &b}, 1, 2)),
               gbx::DimensionMismatch);
  EXPECT_THROW((gbx::concat<double, gbx::PlusMonoid<double>>({&a}, 1, 2)),
               gbx::InvalidValue);
}

TEST(Concat, HVConvenience) {
  auto a = filled(2, 2, 0);
  auto b = filled(2, 2, 10);
  auto h = gbx::hconcat(a, b);
  EXPECT_EQ(h.nrows(), 2u);
  EXPECT_EQ(h.ncols(), 4u);
  auto v = gbx::vconcat(a, b);
  EXPECT_EQ(v.nrows(), 4u);
  EXPECT_EQ(v.ncols(), 2u);
  EXPECT_DOUBLE_EQ(v.extract_element(2, 0).value(), 10.0);
}

TEST(Split, RoundTripWithConcat) {
  auto m = filled(5, 6, 0);
  auto tiles = gbx::split(m, {2, 3}, {4, 2});
  ASSERT_EQ(tiles.size(), 4u);
  EXPECT_EQ(tiles[0].nrows(), 2u);
  EXPECT_EQ(tiles[0].ncols(), 4u);
  EXPECT_EQ(tiles[3].nrows(), 3u);
  EXPECT_EQ(tiles[3].ncols(), 2u);
  auto back = gbx::concat<double, gbx::PlusMonoid<double>>(
      {&tiles[0], &tiles[1], &tiles[2], &tiles[3]}, 2, 2);
  EXPECT_TRUE(gbx::equal(back, m));
}

TEST(Split, SizeValidation) {
  auto m = filled(4, 4, 0);
  EXPECT_THROW(gbx::split(m, {2, 3}, {4}), gbx::DimensionMismatch);
  EXPECT_THROW(gbx::split(m, {4, 0}, {4}), gbx::InvalidValue);
}

TEST(Resize, GrowKeepsAll) {
  auto m = filled(3, 3, 0);
  auto big = gbx::resize(m, 1000, 1000);
  EXPECT_EQ(big.nvals(), 9u);
  EXPECT_EQ(big.nrows(), 1000u);
  EXPECT_DOUBLE_EQ(big.extract_element(2, 2).value(), 8.0);
}

TEST(Resize, ShrinkDropsOutside) {
  auto m = filled(4, 4, 0);
  auto small = gbx::resize(m, 2, 3);
  EXPECT_EQ(small.nvals(), 6u);
  EXPECT_TRUE(small.extract_element(1, 2).has_value());   // inside
  EXPECT_THROW(small.extract_element(2, 0), gbx::IndexOutOfBounds);
  EXPECT_EQ(small.nrows(), 2u);
}

TEST(MatrixDiag, MainAndOffset) {
  SparseVector<double> v(4);
  std::vector<Index> idx{0, 2};
  std::vector<double> val{5.0, 7.0};
  v.build(idx, val);

  auto d0 = gbx::matrix_diag(v);
  EXPECT_EQ(d0.nrows(), 4u);
  EXPECT_DOUBLE_EQ(d0.extract_element(0, 0).value(), 5.0);
  EXPECT_DOUBLE_EQ(d0.extract_element(2, 2).value(), 7.0);

  auto dp = gbx::matrix_diag(v, 1);  // superdiagonal
  EXPECT_EQ(dp.nrows(), 5u);
  EXPECT_DOUBLE_EQ(dp.extract_element(0, 1).value(), 5.0);
  EXPECT_DOUBLE_EQ(dp.extract_element(2, 3).value(), 7.0);

  auto dm = gbx::matrix_diag(v, -2);  // subdiagonal
  EXPECT_EQ(dm.nrows(), 6u);
  EXPECT_DOUBLE_EQ(dm.extract_element(2, 0).value(), 5.0);
}

TEST(Dup, IndependentCopy) {
  auto m = filled(3, 3, 0);
  auto c = gbx::dup(m);
  EXPECT_TRUE(gbx::equal(c, m));
}

TEST(VectorOps, EwiseAddUnion) {
  SparseVector<double> u(10), v(10);
  std::vector<Index> ui{1, 3};
  std::vector<double> uv{1.0, 3.0};
  u.build(ui, uv);
  std::vector<Index> vi{3, 5};
  std::vector<double> vv{30.0, 50.0};
  v.build(vi, vv);
  auto w = gbx::ewise_add<gbx::Plus<double>>(u, v);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_DOUBLE_EQ(w.get(1).value(), 1.0);
  EXPECT_DOUBLE_EQ(w.get(3).value(), 33.0);
  EXPECT_DOUBLE_EQ(w.get(5).value(), 50.0);
}

TEST(VectorOps, EwiseMultIntersection) {
  SparseVector<double> u(10), v(10);
  std::vector<Index> ui{1, 3};
  std::vector<double> uv{2.0, 3.0};
  u.build(ui, uv);
  std::vector<Index> vi{3, 5};
  std::vector<double> vv{10.0, 50.0};
  v.build(vi, vv);
  auto w = gbx::ewise_mult<gbx::Times<double>>(u, v);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(w.get(3).value(), 30.0);
}

TEST(VectorOps, DimMismatch) {
  SparseVector<double> u(10), v(11);
  EXPECT_THROW((gbx::ewise_add<gbx::Plus<double>>(u, v)),
               gbx::DimensionMismatch);
  EXPECT_THROW((gbx::dot<gbx::PlusTimes<double>>(u, v)),
               gbx::DimensionMismatch);
}

TEST(VectorOps, ApplyAndSelect) {
  SparseVector<double> u(10);
  std::vector<Index> ui{1, 3, 5};
  std::vector<double> uv{-2.0, 3.0, -5.0};
  u.build(ui, uv);
  auto a = gbx::apply<gbx::Abs<double>>(u);
  EXPECT_DOUBLE_EQ(a.get(1).value(), 2.0);
  EXPECT_DOUBLE_EQ(a.get(5).value(), 5.0);
  auto s = gbx::select(u, [](Index, double x) { return x > 0; });
  EXPECT_EQ(s.nvals(), 1u);
  EXPECT_DOUBLE_EQ(s.get(3).value(), 3.0);
}

TEST(VectorOps, DotProduct) {
  SparseVector<double> u(10), v(10);
  std::vector<Index> ui{1, 3, 7};
  std::vector<double> uv{1.0, 2.0, 3.0};
  u.build(ui, uv);
  std::vector<Index> vi{3, 7, 9};
  std::vector<double> vv{10.0, 10.0, 99.0};
  v.build(vi, vv);
  EXPECT_DOUBLE_EQ((gbx::dot<gbx::PlusTimes<double>>(u, v)), 50.0);
  // min-plus dot: min(2+10, 3+10) = 12
  EXPECT_DOUBLE_EQ((gbx::dot<gbx::MinPlus<double>>(u, v)), 12.0);
}

TEST(IndexApply, RowColDiag) {
  Matrix<double> m(100, 100);
  m.set_element(3, 7, 99.0);
  m.set_element(10, 2, 99.0);
  auto r = gbx::rowindex(m);
  EXPECT_DOUBLE_EQ(r.extract_element(3, 7).value(), 3.0);
  EXPECT_DOUBLE_EQ(r.extract_element(10, 2).value(), 10.0);
  auto c = gbx::colindex(m);
  EXPECT_DOUBLE_EQ(c.extract_element(3, 7).value(), 7.0);
  auto d = gbx::diagindex(m);
  EXPECT_DOUBLE_EQ(d.extract_element(3, 7).value(), 4.0);
  EXPECT_DOUBLE_EQ(d.extract_element(10, 2).value(), -8.0);
}

TEST(IndexApply, CustomTransform) {
  Matrix<double> m(10, 10);
  m.set_element(2, 3, 5.0);
  auto t = gbx::apply_index(
      m, [](Index i, Index j, double v) { return v * static_cast<double>(i + j); });
  EXPECT_DOUBLE_EQ(t.extract_element(2, 3).value(), 25.0);
  EXPECT_EQ(t.nvals(), m.nvals());
}

}  // namespace
