// Out-of-core tiering property tests (ISSUE 7): demoting the cold
// bottom level into a store::BlockStore must be invisible to every
// query path. The differential oracle is the same DenseRef replay the
// other property suites use, plus a never-demoting twin matrix fed the
// identical operation stream — randomized interleavings of update /
// flush / collapse / demote / enforce_residency / freeze must leave
// snapshot, extract_element, reduce, and to_matrix agreeing with both.
//
// Bit-exactness discipline: randomized values are small integers (exact
// in every tested type), so fold regrouping at demote boundaries cannot
// round — twin equality is exact. A separate test feeds arbitrary
// doubles and checks the SELF-consistency contract instead: all read
// paths of the demoted matrix agree bit-for-bit with each other.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "gbx/gbx.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::Tuples;
using hier::CutPolicy;
using hier::DemotionConfig;
using hier::HierMatrix;
using hier::ShardedHier;

// Visit every stored entry of a materialized matrix as f(i, j, v).
template <class T, class M, class F>
void for_each_entry(const Matrix<T, M>& m, F&& f) {
  const auto& s = m.storage();
  for (std::size_t r = 0; r < s.rows().size(); ++r)
    for (auto p = s.ptr()[r]; p < s.ptr()[r + 1]; ++p)
      f(s.rows()[r], s.cols()[p], s.vals()[p]);
}

// Small segments + few runs so modest streams exercise segmentation,
// run accumulation, AND compaction.
DemotionConfig small_segments(DemotionConfig::Directory dir) {
  DemotionConfig cfg;
  cfg.segment_bytes = 2048;
  cfg.max_runs = 3;
  cfg.directory = dir;
  return cfg;
}

TEST(OutOfCore, DemoteMovesBottomLevelIntoStore) {
  auto store = store::make_mem_block_store();
  HierMatrix<std::int64_t> h(1u << 16, 1u << 16, CutPolicy({32, 256}));
  h.enable_demotion(store.get(), small_segments(DemotionConfig::Directory::kBtree));

  proptest::DenseRef<std::int64_t> ref;
  std::mt19937_64 rng(7);
  for (int s = 0; s < 6; ++s) {
    auto b = proptest::random_batch<std::int64_t>(rng, 4096, 800);
    h.update(b);
    ref.apply(b);
  }
  h.flush();  // everything now lives in the bottom level
  const std::size_t resident_before = h.memory_bytes();

  ASSERT_TRUE(h.demote_now());
  EXPECT_TRUE(h.has_demoted());
  EXPECT_GT(h.store_bytes(), 0u);
  EXPECT_GT(store->blocks(), 0u);
  EXPECT_LT(h.memory_bytes(), resident_before);
  EXPECT_EQ(h.level(h.num_levels() - 1).nvals_bound(), 0u);

  // Every read path still sees the full value.
  EXPECT_TRUE(ref.matches(h.freeze()));
  EXPECT_EQ(h.nvals(), ref.nvals());
  for (const auto& [k, v] : ref.cells())
    EXPECT_EQ(h.extract_element(k.first, k.second).value(), v);
}

TEST(OutOfCore, EmptyBottomDemotesToNothing) {
  auto store = store::make_mem_block_store();
  HierMatrix<double> h(100, 100, CutPolicy({8}));
  h.enable_demotion(store.get());
  EXPECT_FALSE(h.demote_now());  // nothing to move
  EXPECT_FALSE(h.has_demoted());
  h.update(1, 2, 3.0);  // still in the hot level
  h.flush();
  EXPECT_TRUE(h.demote_now());
  EXPECT_FALSE(h.demote_now());  // bottom emptied by the first demote
  EXPECT_DOUBLE_EQ(h.extract_element(1, 2).value(), 3.0);
}

// ---------------------------------------------------------------------------
// Randomized interleaving property, parameterized over fold monoid and
// directory kind. A never-demoting twin receives the identical stream;
// values are small integers so the fold is bit-associative and twin
// equality is exact.
// ---------------------------------------------------------------------------

template <class M>
void interleaving_property(std::uint64_t pinned,
                           DemotionConfig::Directory dir) {
  HHGBX_PROP_SEED(seed, pinned);
  using T = typename M::value_type;
  const Index dim = 1024;
  std::mt19937_64 rng(seed);

  auto store = store::make_mem_block_store();
  HierMatrix<T, M> h(dim, dim, CutPolicy({24, 192}));
  h.enable_demotion(store.get(), small_segments(dir));
  HierMatrix<T, M> twin(dim, dim, CutPolicy({24, 192}));
  proptest::DenseRef<T, M> ref;

  std::uniform_int_distribution<int> op(0, 99);
  std::uniform_int_distribution<std::size_t> nbatch(1, 400);
  for (int step = 0; step < 250; ++step) {
    const int o = op(rng);
    if (o < 60) {
      auto b = proptest::random_batch<T>(rng, dim, nbatch(rng));
      h.update(b);
      twin.update(b);
      ref.apply(b);
    } else if (o < 70) {
      ASSERT_TRUE(h.demotion_enabled());
      h.demote_now();
    } else if (o < 78) {
      // Byte budgets below the current footprint force flush+demote.
      h.enforce_residency(h.memory_bytes() / 2);
    } else if (o < 84) {
      h.flush();
      twin.flush();
    } else if (o < 88) {
      (void)h.collapse();
      (void)twin.collapse();
    } else {
      // Interleaved queries must not perturb anything.
      auto snap = h.freeze();
      const Index i = static_cast<Index>(rng() % dim);
      const Index j = static_cast<Index>(rng() % dim);
      auto got = snap.extract_element(i, j);
      auto it = ref.cells().find({i, j});
      if (it == ref.cells().end()) {
        EXPECT_FALSE(got.has_value()) << "(" << i << "," << j << ")";
      } else {
        ASSERT_TRUE(got.has_value()) << "(" << i << "," << j << ")";
        EXPECT_EQ(*got, it->second) << "(" << i << "," << j << ")";
      }
    }
  }

  ASSERT_TRUE(ref.matches(h.freeze()));
  EXPECT_EQ(h.nvals(), ref.nvals());
  EXPECT_TRUE(gbx::equal(h.snapshot(), twin.snapshot()))
      << "demotion changed the accumulated value";
}

TEST(OutOfCoreInterleaving, PlusInt64Btree) {
  interleaving_property<gbx::PlusMonoid<std::int64_t>>(
      101, DemotionConfig::Directory::kBtree);
}
TEST(OutOfCoreInterleaving, PlusInt64Lsm) {
  interleaving_property<gbx::PlusMonoid<std::int64_t>>(
      102, DemotionConfig::Directory::kLsm);
}
TEST(OutOfCoreInterleaving, MinInt64Btree) {
  interleaving_property<gbx::MinMonoid<std::int64_t>>(
      103, DemotionConfig::Directory::kBtree);
}
TEST(OutOfCoreInterleaving, MaxInt64Lsm) {
  interleaving_property<gbx::MaxMonoid<std::int64_t>>(
      104, DemotionConfig::Directory::kLsm);
}
TEST(OutOfCoreInterleaving, PlusDoubleBtree) {
  // Small-integer-valued doubles: exactly representable, so plus stays
  // bit-associative and the twin comparison is still exact.
  interleaving_property<gbx::PlusMonoid<double>>(
      105, DemotionConfig::Directory::kBtree);
}

// ---------------------------------------------------------------------------
// Self-consistency with arbitrary float values: whatever demotion did
// to the fold grouping, every read path of THIS matrix must agree with
// every other bit-for-bit (the unconditional half of the contract).
// ---------------------------------------------------------------------------

TEST(OutOfCore, ReadPathsAgreeBitExactlyOnArbitraryDoubles) {
  HHGBX_PROP_SEED(seed, 77);
  const Index dim = 512;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::uniform_int_distribution<Index> coord(0, dim - 1);

  auto store = store::make_mem_block_store();
  HierMatrix<double> h(dim, dim, CutPolicy({16, 128}));
  auto cfg = small_segments(DemotionConfig::Directory::kBtree);
  cfg.max_runs = 100;  // keep the runs un-merged: distinct fold chains
  h.enable_demotion(store.get(), cfg);
  for (int s = 0; s < 12; ++s) {
    Tuples<double> b;
    for (int k = 0; k < 600; ++k) b.push_back(coord(rng), coord(rng), val(rng));
    h.update(b);
    if (s % 3 == 2) h.demote_now();  // several runs, un-merged chains
  }
  ASSERT_TRUE(h.has_demoted());
  ASSERT_GT(h.tier().num_runs(), 1u);

  auto snap = h.freeze();
  auto m = snap.to_matrix();
  EXPECT_EQ(snap.nvals(), m.nvals());
  std::size_t checked = 0;
  for_each_entry(m, [&](Index i, Index j, double v) {
    const auto a = snap.extract_element(i, j);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, v) << "extract vs to_matrix differ at (" << i << "," << j
                     << ")";
    const auto b = h.extract_element(i, j);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, v);
    ++checked;
  });
  EXPECT_EQ(checked, m.nvals());
  // reduce() folds per-block partial sums (documented partial-value
  // caveat) — numerically equivalent, not bit-identical, for floats.
  EXPECT_NEAR(snap.reduce(),
              gbx::reduce_scalar<gbx::PlusMonoid<double>>(m.view()), 1e-9);
}

// ---------------------------------------------------------------------------
// Compaction: run-count bound, value preservation, and RAII block GC —
// a live snapshot pins the pre-compaction image; blocks are reclaimed
// only when it dies.
// ---------------------------------------------------------------------------

TEST(OutOfCore, CompactionBoundsRunsAndReclaimsBlocksAfterReaders) {
  auto store = store::make_mem_block_store();
  HierMatrix<std::int64_t> h(2048, 2048, CutPolicy({16}));
  auto cfg = small_segments(DemotionConfig::Directory::kBtree);
  h.enable_demotion(store.get(), cfg);

  proptest::DenseRef<std::int64_t> ref;
  std::mt19937_64 rng(13);

  // Pin a snapshot mid-stream, then keep demoting past max_runs so a
  // compaction happens underneath it.
  hier::HierSnapshot<std::int64_t> pinned;
  proptest::DenseRef<std::int64_t> pinned_ref;
  for (int s = 0; s < 10; ++s) {
    auto b = proptest::random_batch<std::int64_t>(rng, 2048, 500);
    h.update(b);
    ref.apply(b);
    h.flush();
    ASSERT_TRUE(h.demote_now());
    if (s == 4) {
      pinned = h.freeze();
      pinned_ref = ref;
    }
  }
  EXPECT_LE(h.tier().num_runs(), cfg.max_runs);
  EXPECT_GE(h.tier().stats().compactions, 1u);
  EXPECT_EQ(h.tier().stats().demotions, 10u);

  // The pinned reader still sees its epoch exactly, through blocks that
  // compaction superseded.
  ASSERT_TRUE(pinned_ref.matches(pinned));
  const std::size_t blocks_while_pinned = store->blocks();

  // Dropping the last reference to the old image erases its blocks.
  pinned = hier::HierSnapshot<std::int64_t>();
  EXPECT_LT(store->blocks(), blocks_while_pinned);
  ASSERT_TRUE(ref.matches(h.freeze()));
}

TEST(OutOfCore, CollapsePromotesTierBackAndReleasesStore) {
  auto store = store::make_mem_block_store();
  HierMatrix<std::int64_t> h(1024, 1024, CutPolicy({16, 64}));
  h.enable_demotion(store.get(),
                    small_segments(DemotionConfig::Directory::kLsm));
  proptest::DenseRef<std::int64_t> ref;
  std::mt19937_64 rng(21);
  for (int s = 0; s < 6; ++s) {
    auto b = proptest::random_batch<std::int64_t>(rng, 1024, 700);
    h.update(b);
    ref.apply(b);
    if (s % 2 == 1) h.demote_now();
  }
  ASSERT_TRUE(h.has_demoted());

  const auto& collapsed = h.collapse();
  EXPECT_FALSE(h.has_demoted());
  EXPECT_EQ(store->blocks(), 0u);  // no snapshots outstanding: all GC'd
  EXPECT_EQ(h.store_bytes(), 0u);
  ASSERT_TRUE(ref.matches(collapsed));
  ASSERT_TRUE(ref.matches(h.freeze()));
}

// ---------------------------------------------------------------------------
// MemoryGovernor live budget: streaming ingest with enforce_on_write
// keeps resident bytes near the budget by demoting, and the stream's
// value survives untouched.
// ---------------------------------------------------------------------------

TEST(OutOfCore, GovernorLiveBudgetDemotesDuringIngest) {
  HHGBX_PROP_SEED(seed, 301);
  const Index dim = 1u << 16;
  std::mt19937_64 rng(seed);

  auto store = store::make_mem_block_store();
  HierMatrix<std::int64_t> h(dim, dim, CutPolicy({256, 2048}));
  h.enable_demotion(store.get(),
                    small_segments(DemotionConfig::Directory::kBtree));

  // First pass (no governor) to learn the stream's natural footprint.
  proptest::DenseRef<std::int64_t> ref;
  std::vector<Tuples<std::int64_t>> batches;
  for (int s = 0; s < 30; ++s) {
    batches.push_back(proptest::random_batch<std::int64_t>(rng, 8192, 1500));
    ref.apply(batches.back());
  }

  hier::GovernorConfig cfg;
  cfg.live_budget_bytes = 256u << 10;
  cfg.enforce_on_write = true;
  hier::MemoryGovernor<HierMatrix<std::int64_t>> gov(h, cfg);

  for (const auto& b : batches) h.update(b);

  const auto st = gov.stats();
  EXPECT_GT(st.demotions, 0u);
  EXPECT_GT(h.store_bytes(), 0u);
  // The budget holds at batch granularity: after the last enforcement
  // either the resident side fits, or everything compressible has been
  // demoted and only warm-capacity buffers remain (enforce_residency's
  // floor — capacity is retained so the hot levels stay fast).
  gov.enforce();
  EXPECT_TRUE(h.memory_bytes() <=
                  static_cast<std::size_t>(cfg.live_budget_bytes) ||
              h.level(h.num_levels() - 1).empty())
      << "resident " << h.memory_bytes() << " over budget with a non-empty "
      << "bottom level still resident";
  ASSERT_TRUE(ref.matches(h.freeze()));
}

TEST(OutOfCore, ShardedHierDemotionMatchesSingleMatrix) {
  HHGBX_PROP_SEED(seed, 302);
  const Index dim = 1u << 16;
  std::mt19937_64 rng(seed);

  auto store = store::make_mem_block_store();
  ShardedHier<std::int64_t> sharded(8, dim, dim, CutPolicy({64, 512}));
  sharded.enable_demotion(store.get(),
                          small_segments(DemotionConfig::Directory::kBtree));
  HierMatrix<std::int64_t> single(dim, dim, CutPolicy({64, 512}));

  for (int s = 0; s < 20; ++s) {
    auto b = proptest::random_batch<std::int64_t>(rng, 8192, 1200);
    sharded.update(b);
    single.update(b);
    if (s % 4 == 3) sharded.enforce_residency(sharded.memory_bytes() / 2);
  }
  EXPECT_TRUE(sharded.has_demoted());
  EXPECT_GT(sharded.store_bytes(), 0u);
  EXPECT_TRUE(gbx::equal(sharded.snapshot(), single.snapshot()));

  // SnapshotSet point reads continue one flat fold chain across parts
  // and the demoted runs inside each part.
  auto set = sharded.freeze();
  auto m = single.snapshot();
  std::size_t n = 0;
  for_each_entry(m, [&](Index i, Index j, std::int64_t v) {
    if (++n > 2000) return;  // sample; full equality checked above
    EXPECT_EQ(set.extract_element(i, j).value(), v);
  });
}

// ---------------------------------------------------------------------------
// FileBackend end-to-end: the tier over a real file, with a cache small
// enough that reads actually hit the disk path, plus vacuum reclaim.
// ---------------------------------------------------------------------------

TEST(OutOfCore, FileBackedTierSurvivesCacheChurnAndVacuum) {
  // pid-unique: the 3-seed reruns of this suite may run concurrently.
  const std::string path = testing::TempDir() + "hhgbx_outofcore_blocks_" +
                           std::to_string(::getpid()) + ".bin";
  std::remove(path.c_str());
  {
    store::BlockStoreConfig scfg;
    scfg.cache_budget_bytes = 4096;  // force backend reads
    auto store = store::make_file_block_store(path, scfg);

    HierMatrix<std::int64_t> h(4096, 4096, CutPolicy({32}));
    auto cfg = small_segments(DemotionConfig::Directory::kBtree);
    h.enable_demotion(store.get(), cfg);
    proptest::DenseRef<std::int64_t> ref;
    std::mt19937_64 rng(31);
    for (int s = 0; s < 8; ++s) {
      auto b = proptest::random_batch<std::int64_t>(rng, 4096, 900);
      h.update(b);
      ref.apply(b);
      h.flush();
      ASSERT_TRUE(h.demote_now());
    }
    ASSERT_TRUE(ref.matches(h.freeze()));
    const auto st = store->stats();
    EXPECT_GT(st.cache_misses, 0u) << "cache too big to exercise the file";

    // Compactions superseded blocks; vacuum rewrites only live frames.
    auto& fb = static_cast<store::FileBackend&>(store->backend());
    const auto before = fb.file_bytes();
    fb.vacuum();
    EXPECT_LT(fb.file_bytes(), before);
    ASSERT_TRUE(ref.matches(h.freeze()));  // reads fine after the rewrite
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoints of a demoted matrix are self-contained: restore() needs
// no block store and reproduces the full logical value.
// ---------------------------------------------------------------------------

TEST(OutOfCore, CheckpointOfDemotedMatrixIsSelfContained) {
  auto store = store::make_mem_block_store();
  HierMatrix<std::int64_t> h(1u << 14, 1u << 14, CutPolicy({32, 256}));
  h.enable_demotion(store.get(),
                    small_segments(DemotionConfig::Directory::kBtree));
  proptest::DenseRef<std::int64_t> ref;
  std::mt19937_64 rng(41);
  for (int s = 0; s < 8; ++s) {
    auto b = proptest::random_batch<std::int64_t>(rng, 4096, 800);
    h.update(b);
    ref.apply(b);
    if (s % 2 == 1) h.enforce_residency(0);
  }
  ASSERT_TRUE(h.has_demoted());

  // Through the HierMatrix overload...
  std::stringstream ss;
  hier::checkpoint(ss, h);
  auto restored = hier::restore<std::int64_t>(ss);
  EXPECT_FALSE(restored.demotion_enabled());
  EXPECT_TRUE(gbx::equal(restored.snapshot(), h.snapshot()));
  ASSERT_TRUE(ref.matches(restored.freeze()));
  EXPECT_EQ(restored.epoch(), h.epoch());

  // ...and through the snapshot overload (reader-thread checkpoints).
  std::stringstream ss2;
  hier::checkpoint(ss2, h.freeze());
  auto restored2 = hier::restore<std::int64_t>(ss2);
  EXPECT_TRUE(gbx::equal(restored2.snapshot(), h.snapshot()));

  // The restored matrix keeps streaming like any other.
  auto b = proptest::random_batch<std::int64_t>(rng, 4096, 500);
  restored.update(b);
  h.update(b);
  EXPECT_TRUE(gbx::equal(restored.snapshot(), h.snapshot()));
}

// Bloom guard: point probes for rows that never demoted skip the
// directory entirely (the negative fast path actually fires).
TEST(OutOfCore, BloomGuardSkipsAbsentRows) {
  auto store = store::make_mem_block_store();
  HierMatrix<std::int64_t> h(1u << 20, 1u << 20, CutPolicy({16}));
  h.enable_demotion(store.get(),
                    small_segments(DemotionConfig::Directory::kBtree));
  // Demoted rows all live in [0, 64).
  for (Index i = 0; i < 64; ++i) h.update(i, i, 1);
  h.flush();
  ASSERT_TRUE(h.demote_now());

  auto snap = h.freeze();
  for (Index i = 0; i < 4096; ++i)
    (void)snap.extract_element((1u << 19) + i, 0);  // far from demoted rows
  const auto& dir = h.tier().directory();
  EXPECT_GT(dir.probes(), 4000u);
  // ~1% false positives configured; 4096 probes should overwhelmingly
  // short-circuit. Loose bound: at least half.
  EXPECT_GT(dir.bloom_negatives(), dir.probes() / 2);
}

}  // namespace
