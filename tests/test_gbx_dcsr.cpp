// Tests for DCSR hypersparse storage and the Tuples buffer.
#include <gtest/gtest.h>

#include <random>

#include "gbx/coo.hpp"
#include "gbx/dcsr.hpp"
#include "gbx/monoid.hpp"

namespace {

using gbx::Dcsr;
using gbx::Entry;
using gbx::Index;
using gbx::Tuples;

TEST(Dcsr, EmptyInvariants) {
  Dcsr<double> d;
  EXPECT_EQ(d.nnz(), 0u);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.nrows_nonempty(), 0u);
  EXPECT_TRUE(d.validate());
  EXPECT_FALSE(d.get(0, 0).has_value());
}

TEST(Dcsr, FromSortedUnique) {
  std::vector<Entry<double>> e{
      {2, 1, 1.0}, {2, 5, 2.0}, {7, 0, 3.0}, {100, 100, 4.0}};
  auto d = Dcsr<double>::from_sorted_unique(e);
  EXPECT_EQ(d.nnz(), 4u);
  EXPECT_EQ(d.nrows_nonempty(), 3u);
  EXPECT_TRUE(d.validate());
  EXPECT_DOUBLE_EQ(d.get(2, 5).value(), 2.0);
  EXPECT_DOUBLE_EQ(d.get(100, 100).value(), 4.0);
  EXPECT_FALSE(d.get(2, 2).has_value());
  EXPECT_FALSE(d.get(3, 1).has_value());
}

TEST(Dcsr, HypersparseMemoryIndependentOfDimension) {
  // 3 entries scattered across the 2^64 space: memory must be tiny.
  std::vector<Entry<double>> e{
      {0, 0, 1.0}, {gbx::kIndexMax / 2, 7, 2.0}, {gbx::kIndexMax - 1, 1, 3.0}};
  auto d = Dcsr<double>::from_sorted_unique(e);
  EXPECT_TRUE(d.validate());
  EXPECT_LT(d.memory_bytes(), 4096u);
  EXPECT_DOUBLE_EQ(d.get(gbx::kIndexMax / 2, 7).value(), 2.0);
}

TEST(Dcsr, ExtractRoundTrip) {
  std::vector<Entry<double>> e{{1, 2, 1.5}, {1, 9, 2.5}, {4, 0, 3.5}};
  auto d = Dcsr<double>::from_sorted_unique(e);
  Tuples<double> out;
  d.extract(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].row, 1u);
  EXPECT_EQ(out[0].col, 2u);
  EXPECT_DOUBLE_EQ(out[2].val, 3.5);
}

TEST(Dcsr, ForEachVisitsInOrder) {
  std::vector<Entry<int>> e{{1, 2, 10}, {1, 9, 20}, {4, 0, 30}};
  auto d = Dcsr<int>::from_sorted_unique(e);
  std::vector<Entry<int>> seen;
  d.for_each([&](Index i, Index j, int v) { seen.push_back({i, j, v}); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end(), gbx::entry_less<int>));
}

TEST(Dcsr, ClearAndReset) {
  std::vector<Entry<double>> e{{1, 1, 1.0}};
  auto d = Dcsr<double>::from_sorted_unique(e);
  d.clear();
  EXPECT_EQ(d.nnz(), 0u);
  EXPECT_TRUE(d.validate());
  d = Dcsr<double>::from_sorted_unique(e);
  d.reset();
  EXPECT_EQ(d.nnz(), 0u);
  EXPECT_TRUE(d.validate());
  EXPECT_LT(d.memory_bytes(), 64u);
}

TEST(Tuples, AppendAndSize) {
  Tuples<double> t;
  EXPECT_TRUE(t.empty());
  t.push_back(1, 2, 3.0);
  t.push_back(1, 2, 4.0);
  EXPECT_EQ(t.size(), 2u);  // duplicates counted before fold
  std::vector<Index> r{5, 6}, c{7, 8};
  std::vector<double> v{1.0, 2.0};
  t.append(r, c, v);
  EXPECT_EQ(t.size(), 4u);
}

TEST(Tuples, AppendLengthMismatchThrows) {
  Tuples<double> t;
  std::vector<Index> r{1, 2}, c{3};
  std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(t.append(r, c, v), gbx::DimensionMismatch);
}

TEST(Tuples, SortDedup) {
  Tuples<double> t;
  t.push_back(2, 2, 1.0);
  t.push_back(1, 1, 1.0);
  t.push_back(2, 2, 2.0);
  t.sort_dedup<gbx::PlusMonoid<double>>();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].row, 1u);
  EXPECT_DOUBLE_EQ(t[1].val, 3.0);
}

TEST(Tuples, ResetReleasesMemory) {
  Tuples<double> t;
  for (int i = 0; i < 10000; ++i) t.push_back(i, i, 1.0);
  EXPECT_GT(t.memory_bytes(), 100000u);
  t.reset();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.memory_bytes(), 0u);
}

// Parameterized: random build round-trips through extract for several
// sizes and coordinate spaces.
class DcsrRoundTrip
    : public ::testing::TestWithParam<std::pair<std::size_t, Index>> {};

TEST_P(DcsrRoundTrip, BuildExtractBuild) {
  const auto [n, dim] = GetParam();
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<Index> coord(0, dim - 1);
  Tuples<double> t;
  for (std::size_t k = 0; k < n; ++k)
    t.push_back(coord(rng), coord(rng), 1.0);
  t.sort_dedup<gbx::PlusMonoid<double>>();
  auto d = Dcsr<double>::from_sorted_unique(t.entries());
  EXPECT_TRUE(d.validate());
  EXPECT_EQ(d.nnz(), t.size());

  Tuples<double> out;
  d.extract(out);
  auto d2 = Dcsr<double>::from_sorted_unique(out.entries());
  EXPECT_TRUE(d == d2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DcsrRoundTrip,
    ::testing::Values(std::make_pair(std::size_t{1}, Index{4}),
                      std::make_pair(std::size_t{100}, Index{10}),
                      std::make_pair(std::size_t{1000}, Index{1} << 16),
                      std::make_pair(std::size_t{20000}, Index{1} << 30),
                      std::make_pair(std::size_t{20000}, Index{64})));

}  // namespace
