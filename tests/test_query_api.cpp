// Tests for the unified query/snapshot API surface (PR 10's redesign
// satellites): net::QueryInterface as the one query contract, the
// revision-2 provenance trailer (negotiated per query, old wire shape
// untouched), the hier::SnapshotSource concept + acquire_snapshot
// customization point, and the kQueryColumns/kQueryMap RPCs the
// router's stitches are built on.
//
// The protocol/provenance/concept halves are portable; the live-server
// RPC tests ride the Linux-only epoll stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gbx/coo.hpp"
#include "hier/hier.hpp"
#include "net/protocol.hpp"
#include "net/query.hpp"

#ifdef __linux__
#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include "net/net.hpp"
#endif

namespace {

using gbx::Index;
using gbx::Tuples;

// --- QueryInterface: one polymorphic query contract.

/// Canned implementation: pins what the interface requires (and that
/// the nullptr-forwarding conveniences reach the virtual overloads).
class FakeQueries : public net::QueryInterface {
 public:
  using net::QueryInterface::query_sum;
  using net::QueryInterface::query_elements;
  using net::QueryInterface::query_summary;

  net::SumReply query_sum(net::ReplyProvenance* prov) override {
    ++sum_calls;
    if (prov != nullptr) prov->revision = net::kProtocolRevision;
    net::SumReply r;
    r.sum = 42.0;
    r.nvals = 7;
    r.epoch = 3;
    return r;
  }

  std::vector<net::ElementReply> query_elements(
      const std::vector<net::ElementQuery>& qs,
      net::ReplyProvenance* prov) override {
    (void)prov;
    return std::vector<net::ElementReply>(qs.size());
  }

  net::SummaryReply query_summary(net::ReplyProvenance*) override {
    return net::SummaryReply{};
  }

  net::RefreshReply query_refresh() override { return net::RefreshReply{}; }

  int sum_calls = 0;
};

TEST(QueryInterface, ConveniencesForwardThroughTheVirtuals) {
  FakeQueries fake;
  net::QueryInterface& q = fake;  // callers hold the interface

  EXPECT_EQ(q.query_sum().sum, 42.0);        // nullptr-provenance path
  net::ReplyProvenance prov;
  EXPECT_EQ(q.query_sum(&prov).nvals, 7u);   // provenance path
  EXPECT_EQ(prov.revision, net::kProtocolRevision);
  EXPECT_EQ(fake.sum_calls, 2);

  const std::vector<net::ElementQuery> qs(3);
  EXPECT_EQ(q.query_elements(qs).size(), 3u);
  q.query_summary();
  q.query_refresh();
}

// --- Revision-2 provenance trailer: encode/decode and compatibility.

TEST(Provenance, TrailerRoundTripsAndShrinksPayload) {
  net::SumReply body;
  body.sum = 8.5;
  body.epoch = 11;
  body.nvals = 4;
  std::string payload(reinterpret_cast<const char*>(&body), sizeof body);
  const std::vector<std::uint64_t> epochs{3, 0, 8};
  net::append_provenance(payload, epochs, 11, /*map_version=*/5);

  std::vector<std::byte> bytes(payload.size());
  std::memcpy(bytes.data(), payload.data(), payload.size());

  net::ReplyProvenance prov;
  ASSERT_TRUE(net::split_provenance(bytes, prov));
  EXPECT_EQ(prov.revision, net::kProtocolRevision);
  EXPECT_EQ(prov.map_version, 5u);
  EXPECT_EQ(prov.snapshot_epoch, 11u);
  EXPECT_EQ(prov.part_epochs, epochs);

  // The split must leave EXACTLY the revision-1 body: the strict
  // exact-size payload_as decode is the compatibility contract.
  net::SumReply decoded;
  ASSERT_TRUE(net::payload_as(bytes, decoded));
  EXPECT_EQ(decoded.sum, 8.5);
  EXPECT_EQ(decoded.nvals, 4u);
}

TEST(Provenance, TrailerWorksOnArrayBodies) {
  // The tail sits at a fixed offset from the END, so array replies
  // (element batches, column sets) carry it just as well as PODs.
  std::vector<net::ElementReply> rs(5);
  for (std::size_t i = 0; i < rs.size(); ++i) rs[i].value = double(i);
  std::string payload(reinterpret_cast<const char*>(rs.data()),
                      rs.size() * sizeof(net::ElementReply));
  net::append_provenance(payload, {2, 2}, 4, 1);

  std::vector<std::byte> bytes(payload.size());
  std::memcpy(bytes.data(), payload.data(), payload.size());
  net::ReplyProvenance prov;
  ASSERT_TRUE(net::split_provenance(bytes, prov));
  EXPECT_EQ(prov.part_epochs.size(), 2u);

  std::vector<net::ElementReply> decoded;
  ASSERT_TRUE(net::payload_as(bytes, decoded));
  ASSERT_EQ(decoded.size(), 5u);
  EXPECT_EQ(decoded[3].value, 3.0);
}

TEST(Provenance, MalformedTrailersAreRejected) {
  net::ReplyProvenance prov;
  // Too short for even the tail.
  std::vector<std::byte> tiny(4);
  EXPECT_FALSE(net::split_provenance(tiny, prov));

  // A parts count the byte length cannot hold.
  std::string payload;
  net::append_provenance(payload, {1, 2, 3}, 6, 1);
  std::vector<std::byte> bytes(payload.size());
  std::memcpy(bytes.data(), payload.data(), payload.size());
  // Truncate one epoch's worth: tail still parses, sizes no longer fit.
  std::vector<std::byte> torn(bytes.begin() + 8, bytes.end());
  EXPECT_FALSE(net::split_provenance(torn, prov));
}

TEST(Provenance, RevisionOneRepliesStayByteIdentical) {
  // A reply built WITHOUT the kWantProvenance negotiation is exactly
  // the old wire shape: the plain POD, nothing appended.
  net::SumReply body;
  body.sum = 1.0;
  std::string frame;
  net::append_frame(frame, net::MsgType::kReplyOk,
                    static_cast<std::uint64_t>(net::MsgType::kQuerySum),
                    &body, sizeof body);
  std::string frame_again;
  net::append_frame(frame_again, net::MsgType::kReplyOk,
                    static_cast<std::uint64_t>(net::MsgType::kQuerySum),
                    &body, sizeof body);
  EXPECT_EQ(frame, frame_again);
  // The flag bit is outside the lane mask's low 40 bits used by lanes
  // in practice, and a flagged arg differs from the unflagged one.
  EXPECT_NE(static_cast<std::uint64_t>(net::MsgType::kQuerySum) |
                net::kWantProvenance,
            static_cast<std::uint64_t>(net::MsgType::kQuerySum));
}

// --- SnapshotSource: one freeze contract for every engine.

TEST(SnapshotSource, InProcessEnginesSatisfyTheConcept) {
  static_assert(hier::is_snapshot_source_v<hier::HierMatrix<double>>);
  static_assert(hier::is_snapshot_source_v<hier::ShardedHier<double>>);
  static_assert(hier::is_snapshot_source_v<hier::ParallelStream<double>>);
  static_assert(hier::is_snapshot_source_v<
                hier::MemoryGovernor<hier::ParallelStream<double>>>);
  static_assert(!hier::is_snapshot_source_v<int>);
  static_assert(!hier::is_snapshot_source_v<std::vector<double>>);
  SUCCEED();
}

TEST(SnapshotSource, AcquireSnapshotIsFreeze) {
  hier::ShardedHier<double> sharded(3, 64, 64,
                                    hier::CutPolicy::geometric(2, 256, 4));
  Tuples<double> batch;
  for (Index i = 0; i < 50; ++i) batch.push_back(i % 64, (i * 7) % 64, 1.0);
  sharded.update(batch);

  auto via_cp = hier::acquire_snapshot(sharded);
  auto via_member = sharded.freeze();
  EXPECT_EQ(via_cp.reduce(), via_member.reduce());
  EXPECT_EQ(via_cp.nvals(), via_member.nvals());
  EXPECT_EQ(via_cp.epoch(), via_member.epoch());
}

}  // namespace

#ifdef __linux__

namespace {

using hier::CutPolicy;

/// Minimal live-server fixture (2 lanes, small dim).
struct Harness {
  static constexpr Index kDim = 256;
  Harness()
      : array(2, kDim, kDim, CutPolicy::geometric(2, 512, 4)),
        stream(array),
        governor(stream) {
    stream.start();
    server.emplace(stream, governor);
    server->start();
  }
  ~Harness() {
    if (server->running()) server->stop();
    if (stream.running()) stream.stop();
  }
  hier::InstanceArray<double> array;
  hier::ParallelStream<double> stream;
  hier::MemoryGovernor<hier::ParallelStream<double>> governor;
  std::optional<net::IngestServer> server;
};

TEST(QueryApiLive, ColumnsReplyIsTheSortedDistinctColumnSet) {
  Harness h;
  net::Client cli;
  cli.connect("127.0.0.1", h.server->port());

  Tuples<double> batch;
  std::set<std::uint64_t> want;
  for (Index i = 0; i < 300; ++i) {
    const Index col = (i * 13) % 97;
    batch.push_back(i % Harness::kDim, col, 2.0);
    want.insert(col);
  }
  cli.insert(batch);
  cli.flush();

  const auto cols = cli.query_columns();
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
  EXPECT_EQ(std::vector<std::uint64_t>(want.begin(), want.end()), cols);
  cli.bye();
}

TEST(QueryApiLive, ProvenanceNegotiationPerQuery) {
  Harness h;
  net::Client cli;
  cli.connect("127.0.0.1", h.server->port());
  Tuples<double> batch;
  for (Index i = 0; i < 100; ++i) batch.push_back(i % 64, i % 64, 1.0);
  cli.insert(batch);
  cli.flush();

  // Old-style call: no provenance, revision-1 decode path.
  const auto plain = cli.query_sum();
  EXPECT_EQ(plain.sum, 100.0);

  // Same session, flagged call: trailer arrives and splits cleanly.
  net::ReplyProvenance prov;
  const auto flagged = cli.query_sum(&prov);
  EXPECT_EQ(flagged.sum, plain.sum);
  EXPECT_EQ(prov.revision, net::kProtocolRevision);
  EXPECT_EQ(prov.part_epochs.size(), 2u);  // one epoch per lane
  std::uint64_t total = 0;
  for (auto e : prov.part_epochs) total += e;
  EXPECT_EQ(total, prov.snapshot_epoch);

  // Element queries carry the trailer on an ARRAY body.
  net::ReplyProvenance eprov;
  const std::vector<net::ElementQuery> qs{{0, 0}, {63, 63}};
  const auto rs = cli.query_elements(qs, &eprov);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(eprov.part_epochs.size(), 2u);

  // And an EMPTY probe batch still pins an epoch — the router's
  // unprobed-worker primitive.
  net::ReplyProvenance pin;
  EXPECT_TRUE(cli.query_elements({}, &pin).empty());
  EXPECT_EQ(pin.snapshot_epoch, prov.snapshot_epoch);
  cli.bye();
}

TEST(QueryApiLive, MapReplyDescribesAStandaloneServer) {
  Harness h;
  net::Client cli;
  cli.connect("127.0.0.1", h.server->port());
  const auto map = cli.query_map();
  EXPECT_EQ(map.version, 0u);  // standalone: placement never changes
  EXPECT_EQ(map.parts, 2u);
  EXPECT_EQ(map.nrows, Harness::kDim);
  EXPECT_EQ(map.ncols, Harness::kDim);
  cli.bye();
}

}  // namespace

#endif  // __linux__
