// Typed tests: the core Matrix/HierMatrix contract across value types.
// GraphBLAS is polymorphic over its value domain; these sweeps pin the
// same behaviour for float, double, and the integer widths the traffic
// pipeline uses for packet/byte counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>

#include "gbx/gbx.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;

template <class T>
class TypedMatrix : public ::testing::Test {};

using ValueTypes = ::testing::Types<double, float, std::int64_t,
                                    std::uint64_t, std::int32_t, std::uint32_t>;
TYPED_TEST_SUITE(TypedMatrix, ValueTypes);

TYPED_TEST(TypedMatrix, AccumulateAndQuery) {
  using T = TypeParam;
  gbx::Matrix<T> m(1u << 20, 1u << 20);
  m.set_element(7, 9, T{3});
  m.set_element(7, 9, T{4});
  m.set_element(100000, 2, T{1});
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_EQ(m.extract_element(7, 9).value(), T{7});
  EXPECT_EQ(m.extract_element(100000, 2).value(), T{1});
}

TYPED_TEST(TypedMatrix, EwiseAddAgainstModel) {
  using T = TypeParam;
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Index> coord(0, 63);
  std::uniform_int_distribution<int> val(1, 9);

  gbx::Matrix<T> a(64, 64), b(64, 64);
  std::map<std::pair<Index, Index>, T> model;
  for (int k = 0; k < 400; ++k) {
    const Index i = coord(rng), j = coord(rng);
    const T v = static_cast<T>(val(rng));
    if (k % 2) {
      a.set_element(i, j, v);
    } else {
      b.set_element(i, j, v);
    }
    model[{i, j}] = static_cast<T>(model[{i, j}] + v);
  }
  auto c = gbx::ewise_add<gbx::Plus<T>>(a, b);
  ASSERT_EQ(c.nvals(), model.size());
  for (const auto& [k, v] : model)
    EXPECT_EQ(c.extract_element(k.first, k.second).value(), v);
}

TYPED_TEST(TypedMatrix, HierEquivalence) {
  using T = TypeParam;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<Index> coord(0, 255);
  std::uniform_int_distribution<int> val(1, 5);

  hier::HierMatrix<T> h(1u << 16, 1u << 16, hier::CutPolicy({50, 500}));
  gbx::Matrix<T> direct(1u << 16, 1u << 16);
  for (int k = 0; k < 3000; ++k) {
    const Index i = coord(rng), j = coord(rng);
    const T v = static_cast<T>(val(rng));
    h.update(i, j, v);
    direct.set_element(i, j, v);
  }
  EXPECT_TRUE(gbx::equal(h.snapshot(), direct));
}

TYPED_TEST(TypedMatrix, ReduceAndTranspose) {
  using T = TypeParam;
  gbx::Matrix<T> m(1000, 1000);
  m.set_element(1, 2, T{10});
  m.set_element(1, 3, T{20});
  m.set_element(500, 2, T{5});
  EXPECT_EQ((gbx::reduce_scalar<gbx::PlusMonoid<T>>(m)), T{35});
  auto t = gbx::transpose(m);
  EXPECT_EQ(t.extract_element(2, 500).value(), T{5});
  EXPECT_EQ((gbx::reduce_scalar<gbx::PlusMonoid<T>>(t)), T{35});
}

TYPED_TEST(TypedMatrix, SerializeRoundTrip) {
  using T = TypeParam;
  gbx::Matrix<T> m(1u << 24, 1u << 24);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<Index> coord(0, (1u << 24) - 1);
  for (int k = 0; k < 300; ++k)
    m.set_element(coord(rng), coord(rng), static_cast<T>(k % 50 + 1));
  std::stringstream ss;
  gbx::serialize(ss, m);
  auto m2 = gbx::deserialize<T>(ss);
  EXPECT_TRUE(gbx::equal(m, m2));
}

TYPED_TEST(TypedMatrix, MxmSmall) {
  using T = TypeParam;
  gbx::Matrix<T> a(3, 3), b(3, 3);
  a.set_element(0, 1, T{2});
  b.set_element(1, 2, T{3});
  auto c = gbx::mxm<gbx::PlusTimes<T>>(a, b);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.extract_element(0, 2).value(), T{6});
}

}  // namespace
