// Tests for eWiseAdd / eWiseMult merges and structural masks.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

Matrix<double> random_matrix(Index dim, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> coord(0, dim - 1);
  std::uniform_real_distribution<double> val(1, 9);
  Matrix<double> m(dim, dim);
  for (std::size_t k = 0; k < n; ++k)
    m.set_element(coord(rng), coord(rng), val(rng));
  m.materialize();
  return m;
}

std::map<std::pair<Index, Index>, double> to_map(const Matrix<double>& m) {
  std::map<std::pair<Index, Index>, double> out;
  m.for_each([&](Index i, Index j, double v) { out[{i, j}] = v; });
  return out;
}

TEST(EwiseAdd, DisjointUnion) {
  Matrix<double> a(10, 10), b(10, 10);
  a.set_element(1, 1, 1.0);
  b.set_element(2, 2, 2.0);
  auto c = gbx::ewise_add<gbx::Plus<double>>(a, b);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(c.extract_element(2, 2).value(), 2.0);
}

TEST(EwiseAdd, OverlapCombines) {
  Matrix<double> a(10, 10), b(10, 10);
  a.set_element(1, 1, 1.0);
  a.set_element(1, 2, 5.0);
  b.set_element(1, 1, 10.0);
  auto c = gbx::ewise_add<gbx::Plus<double>>(a, b);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 11.0);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 2).value(), 5.0);
}

TEST(EwiseAdd, EmptyOperands) {
  Matrix<double> a(10, 10), b(10, 10);
  b.set_element(3, 3, 3.0);
  auto c1 = gbx::ewise_add<gbx::Plus<double>>(a, b);
  EXPECT_TRUE(gbx::equal(c1, b));
  auto c2 = gbx::ewise_add<gbx::Plus<double>>(b, a);
  EXPECT_TRUE(gbx::equal(c2, b));
  auto c3 = gbx::ewise_add<gbx::Plus<double>>(a, a);
  EXPECT_EQ(c3.nvals(), 0u);
}

TEST(EwiseAdd, DimMismatchThrows) {
  Matrix<double> a(10, 10), b(11, 10);
  EXPECT_THROW(gbx::ewise_add<gbx::Plus<double>>(a, b),
               gbx::DimensionMismatch);
}

TEST(EwiseAdd, MinOpSelectsSmaller) {
  Matrix<double> a(4, 4), b(4, 4);
  a.set_element(0, 0, 5.0);
  b.set_element(0, 0, 3.0);
  auto c = gbx::ewise_add<gbx::Min<double>>(a, b);
  EXPECT_DOUBLE_EQ(c.extract_element(0, 0).value(), 3.0);
}

TEST(EwiseMult, IntersectionOnly) {
  Matrix<double> a(10, 10), b(10, 10);
  a.set_element(1, 1, 2.0);
  a.set_element(1, 2, 3.0);
  b.set_element(1, 1, 4.0);
  b.set_element(2, 2, 5.0);
  auto c = gbx::ewise_mult<gbx::Times<double>>(a, b);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 8.0);
}

TEST(EwiseMult, EmptyIntersection) {
  Matrix<double> a(10, 10), b(10, 10);
  a.set_element(1, 1, 2.0);
  b.set_element(2, 2, 4.0);
  auto c = gbx::ewise_mult<gbx::Times<double>>(a, b);
  EXPECT_EQ(c.nvals(), 0u);
  EXPECT_TRUE(c.validate());
}

TEST(Mask, KeepAndDrop) {
  Matrix<double> a(10, 10);
  a.set_element(1, 1, 1.0);
  a.set_element(2, 2, 2.0);
  a.set_element(3, 3, 3.0);
  Matrix<double> m(10, 10);
  m.set_element(1, 1, 1.0);
  m.set_element(3, 3, 0.0);  // structural: value irrelevant

  auto kept = gbx::mask_keep(a, m);
  EXPECT_EQ(kept.nvals(), 2u);
  EXPECT_TRUE(kept.extract_element(1, 1).has_value());
  EXPECT_TRUE(kept.extract_element(3, 3).has_value());

  auto dropped = gbx::mask_drop(a, m);
  EXPECT_EQ(dropped.nvals(), 1u);
  EXPECT_TRUE(dropped.extract_element(2, 2).has_value());
}

TEST(Mask, DimMismatchThrows) {
  Matrix<double> a(10, 10), m(9, 10);
  EXPECT_THROW(gbx::mask_keep(a, m), gbx::DimensionMismatch);
}

// Properties of the union/intersection merges against map models, over a
// sweep of densities and dimension scales (including the parallel paths).
class EwiseProperty
    : public ::testing::TestWithParam<std::tuple<Index, std::size_t, std::uint64_t>> {};

TEST_P(EwiseProperty, AddMatchesModel) {
  const auto [dim, n, seed] = GetParam();
  auto a = random_matrix(dim, n, seed);
  auto b = random_matrix(dim, n, seed + 1000);
  auto c = gbx::ewise_add<gbx::Plus<double>>(a, b);

  auto ma = to_map(a), mb = to_map(b);
  for (const auto& [k, v] : mb) ma[k] += v;
  auto mc = to_map(c);
  ASSERT_EQ(mc.size(), ma.size());
  for (const auto& [k, v] : ma) EXPECT_NEAR(mc.at(k), v, 1e-9);
  EXPECT_TRUE(c.validate());
}

TEST_P(EwiseProperty, AddCommutes) {
  const auto [dim, n, seed] = GetParam();
  auto a = random_matrix(dim, n, seed);
  auto b = random_matrix(dim, n, seed + 2000);
  auto ab = gbx::ewise_add<gbx::Plus<double>>(a, b);
  auto ba = gbx::ewise_add<gbx::Plus<double>>(b, a);
  EXPECT_TRUE(gbx::equal(ab, ba));
}

TEST_P(EwiseProperty, AddAssociates) {
  const auto [dim, n, seed] = GetParam();
  auto a = random_matrix(dim, n, seed);
  auto b = random_matrix(dim, n, seed + 3000);
  auto c = random_matrix(dim, n, seed + 4000);
  auto left = gbx::ewise_add<gbx::Plus<double>>(
      gbx::ewise_add<gbx::Plus<double>>(a, b), c);
  auto right = gbx::ewise_add<gbx::Plus<double>>(
      a, gbx::ewise_add<gbx::Plus<double>>(b, c));
  // float addition is not exactly associative; compare with tolerance.
  auto ml = to_map(left), mr = to_map(right);
  ASSERT_EQ(ml.size(), mr.size());
  for (const auto& [k, v] : ml) EXPECT_NEAR(mr.at(k), v, 1e-9);
}

TEST_P(EwiseProperty, MultMatchesModel) {
  const auto [dim, n, seed] = GetParam();
  auto a = random_matrix(dim, n, seed);
  auto b = random_matrix(dim, n, seed + 5000);
  auto c = gbx::ewise_mult<gbx::Times<double>>(a, b);

  auto ma = to_map(a), mb = to_map(b), mc = to_map(c);
  std::size_t expect = 0;
  for (const auto& [k, v] : ma) {
    auto it = mb.find(k);
    if (it == mb.end()) continue;
    ++expect;
    EXPECT_NEAR(mc.at(k), v * it->second, 1e-9);
  }
  EXPECT_EQ(mc.size(), expect);
  EXPECT_TRUE(c.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EwiseProperty,
    ::testing::Values(
        std::make_tuple(Index{8}, std::size_t{30}, std::uint64_t{1}),
        std::make_tuple(Index{64}, std::size_t{500}, std::uint64_t{2}),
        std::make_tuple(Index{1} << 20, std::size_t{2000}, std::uint64_t{3}),
        std::make_tuple(Index{1} << 30, std::size_t{20000}, std::uint64_t{4}),
        std::make_tuple(Index{32}, std::size_t{2000}, std::uint64_t{5})));

}  // namespace
