// Tests for the Matrix façade: pending tuples, materialization, build,
// bounds checking, plus_assign.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "gbx/matrix.hpp"
#include "gbx/matrix_ops.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::Tuples;

TEST(Matrix, ConstructionAndDims) {
  Matrix<double> a(10, 20);
  EXPECT_EQ(a.nrows(), 10u);
  EXPECT_EQ(a.ncols(), 20u);
  EXPECT_EQ(a.nvals(), 0u);
  EXPECT_TRUE(a.empty());
  Matrix<double> sq(7);
  EXPECT_EQ(sq.nrows(), 7u);
  EXPECT_EQ(sq.ncols(), 7u);
}

TEST(Matrix, ZeroDimensionThrows) {
  EXPECT_THROW(Matrix<double>(0, 5), gbx::InvalidValue);
  EXPECT_THROW(Matrix<double>(5, 0), gbx::InvalidValue);
}

TEST(Matrix, IPv6ScaleDimensions) {
  Matrix<double> a(gbx::kIPv6Dim, gbx::kIPv6Dim);
  a.set_element(gbx::kIPv6Dim - 1, 0, 1.0);
  a.set_element(0, gbx::kIPv6Dim - 1, 2.0);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_LT(a.memory_bytes(), 4096u);
}

TEST(Matrix, SetElementAccumulates) {
  Matrix<double> a(100, 100);
  a.set_element(3, 4, 1.5);
  a.set_element(3, 4, 2.5);
  EXPECT_DOUBLE_EQ(a.extract_element(3, 4).value(), 4.0);
  EXPECT_FALSE(a.extract_element(4, 3).has_value());
}

TEST(Matrix, MaxMonoidPolicy) {
  Matrix<double, gbx::MaxMonoid<double>> a(10, 10);
  a.set_element(1, 1, 3.0);
  a.set_element(1, 1, 7.0);
  a.set_element(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(a.extract_element(1, 1).value(), 7.0);
}

TEST(Matrix, PendingSemantics) {
  Matrix<double> a(100, 100);
  a.set_element(1, 1, 1.0);
  a.set_element(1, 1, 1.0);
  EXPECT_EQ(a.pending_count(), 2u);      // two buffered updates
  EXPECT_EQ(a.nvals_bound(), 2u);        // bound counts duplicates
  EXPECT_EQ(a.nvals(), 1u);              // exact count folds them
  EXPECT_EQ(a.pending_count(), 0u);      // fold consumed the buffer
  EXPECT_EQ(a.nvals_bound(), 1u);
}

TEST(Matrix, OutOfBoundsThrows) {
  Matrix<double> a(10, 10);
  EXPECT_THROW(a.set_element(10, 0, 1.0), gbx::IndexOutOfBounds);
  EXPECT_THROW(a.set_element(0, 10, 1.0), gbx::IndexOutOfBounds);
  EXPECT_THROW(a.extract_element(10, 0), gbx::IndexOutOfBounds);
  Tuples<double> t;
  t.push_back(0, 99, 1.0);
  EXPECT_THROW(a.append(t), gbx::IndexOutOfBounds);
}

TEST(Matrix, BuildRequiresEmpty) {
  Matrix<double> a(10, 10);
  std::vector<Index> r{1}, c{2};
  std::vector<double> v{3.0};
  a.build(r, c, v);
  EXPECT_DOUBLE_EQ(a.extract_element(1, 2).value(), 3.0);
  EXPECT_THROW(a.build(r, c, v), gbx::Error);
}

TEST(Matrix, BuildCombinesDuplicates) {
  Matrix<double> a(10, 10);
  std::vector<Index> r{1, 1, 1}, c{2, 2, 3};
  std::vector<double> v{1.0, 2.0, 5.0};
  a.build(r, c, v);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_DOUBLE_EQ(a.extract_element(1, 2).value(), 3.0);
}

TEST(Matrix, ClearAndReset) {
  Matrix<double> a(10, 10);
  a.set_element(1, 1, 1.0);
  a.materialize();
  a.set_element(2, 2, 2.0);
  a.clear();
  EXPECT_TRUE(a.empty());
  a.set_element(3, 3, 3.0);
  a.reset();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.nvals(), 0u);
}

TEST(Matrix, PlusAssign) {
  Matrix<double> a(10, 10), b(10, 10);
  a.set_element(1, 1, 1.0);
  a.set_element(2, 2, 2.0);
  b.set_element(2, 2, 10.0);
  b.set_element(3, 3, 30.0);
  a.plus_assign(b);
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_DOUBLE_EQ(a.extract_element(1, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(a.extract_element(2, 2).value(), 12.0);
  EXPECT_DOUBLE_EQ(a.extract_element(3, 3).value(), 30.0);
  // b unchanged
  EXPECT_EQ(b.nvals(), 2u);
}

TEST(Matrix, PlusAssignDimMismatchThrows) {
  Matrix<double> a(10, 10), b(10, 11);
  EXPECT_THROW(a.plus_assign(b), gbx::DimensionMismatch);
}

TEST(Matrix, PlusAssignIntoEmpty) {
  Matrix<double> a(10, 10), b(10, 10);
  b.set_element(5, 5, 5.0);
  a.plus_assign(b);
  EXPECT_DOUBLE_EQ(a.extract_element(5, 5).value(), 5.0);
}

TEST(Matrix, OperatorPlus) {
  Matrix<double> a(4, 4), b(4, 4);
  a.set_element(0, 0, 1.0);
  b.set_element(0, 0, 2.0);
  b.set_element(1, 1, 3.0);
  auto c = a + b;
  EXPECT_DOUBLE_EQ(c.extract_element(0, 0).value(), 3.0);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 3.0);
}

TEST(Matrix, EqualIgnoresPendingState) {
  Matrix<double> a(5, 5), b(5, 5);
  a.set_element(1, 1, 2.0);
  b.set_element(1, 1, 1.0);
  b.set_element(1, 1, 1.0);
  b.materialize();
  EXPECT_TRUE(gbx::equal(a, b));  // same value, different histories
}

TEST(Matrix, ExtractTuplesSortedDeduped) {
  Matrix<double> a(100, 100);
  a.set_element(9, 9, 1.0);
  a.set_element(1, 1, 1.0);
  a.set_element(9, 9, 1.0);
  auto t = a.extract_tuples();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].row, 1u);
  EXPECT_DOUBLE_EQ(t[1].val, 2.0);
}

// Property: arbitrary interleavings of set_element / append / materialize
// match a std::map accumulator model.
class MatrixFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixFuzz, MatchesMapModel) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<Index> coord(0, 63);
  std::uniform_int_distribution<int> act(0, 9);
  std::uniform_real_distribution<double> val(-4, 4);

  Matrix<double> a(64, 64);
  std::map<std::pair<Index, Index>, double> model;

  for (int step = 0; step < 3000; ++step) {
    const int what = act(rng);
    if (what < 7) {
      const Index i = coord(rng), j = coord(rng);
      const double v = val(rng);
      a.set_element(i, j, v);
      model[{i, j}] += v;
    } else if (what < 9) {
      Tuples<double> t;
      for (int k = 0; k < 5; ++k) {
        const Index i = coord(rng), j = coord(rng);
        const double v = val(rng);
        t.push_back(i, j, v);
        model[{i, j}] += v;
      }
      a.append(t);
    } else {
      a.materialize();
    }
  }

  ASSERT_EQ(a.nvals(), model.size());
  for (const auto& [key, v] : model) {
    auto got = a.extract_element(key.first, key.second);
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(*got, v, 1e-9);
  }
  EXPECT_TRUE(a.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
