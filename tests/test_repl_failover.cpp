// Replication failover torture (the PR 9 tentpole gate): a primary
// IngestServer with WAL shipping enabled is killed at a random point
// under concurrent client load; the replica self-promotes; the clients
// fail over and finish their planned streams. End state, per lane:
// the promoted replica's matrix must be BIT-IDENTICAL to an oracle
// that applied the client's batch list directly in order — acked work
// is never lost, shipped-but-unacked work is never double-applied.
//
// Why bit-exactness is attainable with doubles: each lane has exactly
// one writer, so the replica's per-lane apply order (shipped prefix in
// sequence order + the client's post-failover resend from the
// replica's applied count) is precisely the client's send order — the
// same floating-point fold the oracle performs.
//
// Modes (same invariant, different failure geometry):
//   * kill mid-stream            — the base case
//   * kill mid-ack               — "repl.replica.ack" kDelay failpoint
//     keeps acks slow, so the kill lands with a wide shipped-unacked gap
//   * kill mid-promotion         — short lease, kill early: clients
//     race the promotion itself
//   * partition (primary alive)  — "repl.shipper.heartbeat" kStall
//     silences the shipper long enough for the lease to lapse; the
//     replica promotes and FENCES the live primary's shipper
//
// Runs under the 3-seed property matrix (HHGBX_SEED) and the TSan/ASan
// concurrency legs.
#include <gtest/gtest.h>

#ifdef __linux__

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "gbx/error.hpp"
#include "gbx/failpoint.hpp"
#include "hier/hier.hpp"
#include "hier/memory_governor.hpp"
#include "net/net.hpp"
#include "prop_util.hpp"
#include "repl/repl.hpp"

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;
using hier::InstanceArray;
using hier::MemoryGovernor;
using hier::ParallelStream;

constexpr Index kDim = 512;
constexpr std::size_t kLanes = 4;
constexpr std::size_t kBatches = 48;     // per client
constexpr std::size_t kBatchSize = 64;   // entries per batch
constexpr std::uint64_t kPinnedSeed = 0x9E11'AB4F'22C7'D031ull;

CutPolicy cuts() { return CutPolicy::geometric(3, 2048, 8); }

std::string tmp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

/// Pre-generate each lane-owner's batch list (random coordinates,
/// random small-integer values — exact in double under any fold).
std::vector<std::vector<Tuples<double>>> make_work(std::mt19937_64& rng) {
  std::uniform_int_distribution<Index> coord(0, kDim - 1);
  std::uniform_int_distribution<int> val(1, 8);
  std::vector<std::vector<Tuples<double>>> work(kLanes);
  for (std::size_t c = 0; c < kLanes; ++c)
    for (std::size_t b = 0; b < kBatches; ++b) {
      Tuples<double> t;
      for (std::size_t i = 0; i < kBatchSize; ++i)
        t.push_back(coord(rng), coord(rng), static_cast<double>(val(rng)));
      work[c].push_back(std::move(t));
    }
  return work;
}

/// The primary rig: lanes + governor + replicator + server.
struct PrimaryRig {
  PrimaryRig(std::uint16_t replica_port, const std::string& wal)
      : array(kLanes, kDim, kDim, cuts()), stream(array), governor(stream) {
    stream.start();
    repl::ShipperOptions ropt;
    ropt.port = replica_port;
    ropt.wal_path = wal;
    ropt.heartbeat_ms = 10;
    replicator.emplace(stream, ropt);
    replicator->start();
    net::IngestServer::Options sopt;
    sopt.replication = &*replicator;
    server.emplace(stream, governor, sopt);
    server->start();
  }

  ~PrimaryRig() { kill_now(); }

  /// The crash: server torn down abruptly, shipper abandoned mid-frame.
  void kill_now() {
    if (server && server->running()) server->stop();
    if (replicator) replicator->kill();
    if (stream.running()) stream.stop();
  }

  InstanceArray<double> array;
  ParallelStream<double> stream;
  MemoryGovernor<ParallelStream<double>> governor;
  std::optional<repl::PrimaryReplicator> replicator;
  std::optional<net::IngestServer> server;
};

struct TortureResult {
  std::vector<repl::FailoverReport> reports;
  std::size_t failed_over = 0;
};

/// Run one full torture round: stream under load, kill (or partition)
/// at `kill_after_ms`, let clients finish against whoever survives,
/// then verify the replica bit-exactly against per-lane oracles.
/// Void-returning (with an out-param) so ASSERT_* can fail fast.
void torture_round(std::mt19937_64& rng, int kill_after_ms, bool partition,
                   const std::string& tag, TortureResult& result) {
  gbx::failpoints().clear();
  const std::string primary_wal = tmp_path("repl_primary_wal_" + tag);
  const std::string replica_wal = tmp_path("repl_replica_wal_" + tag);
  std::filesystem::remove(primary_wal);
  std::filesystem::remove(replica_wal);

  const auto work = make_work(rng);

  repl::ReplicaOptions ropt;
  ropt.wal_path = replica_wal;
  ropt.lanes = kLanes;
  ropt.nrows = kDim;
  ropt.ncols = kDim;
  ropt.cuts = cuts();
  ropt.lease_ms = 250;
  repl::ReplicaServer replica(ropt);
  replica.start();

  auto rig = std::make_unique<PrimaryRig>(replica.port(), primary_wal);

  if (partition) {
    // Stall heartbeats well past the lease: the replica promotes while
    // the primary is still alive, then fences it.
    gbx::FailpointSpec spec;
    spec.action = gbx::FailAction::kStall;
    spec.delay_ms = ropt.lease_ms * 3;
    spec.at_op = 1;
    spec.max_fires = 1;
    gbx::failpoints().arm("repl.shipper.heartbeat", spec);
  }

  result.reports.resize(kLanes);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kLanes; ++c) {
    clients.emplace_back([&, c] {
      repl::FailoverOptions fopt;
      fopt.primary_port = rig->server->port();
      fopt.replica_port = replica.port();
      fopt.lane = c;
      fopt.recv_timeout_ms = 4000;
      fopt.flush_every = 6;
      fopt.pace_us = 2500;
      repl::FailoverSender sender(fopt);
      result.reports[c] = sender.run(work[c]);
    });
  }

  if (!partition) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
    rig->kill_now();
  }
  for (auto& t : clients) t.join();
  if (partition) {
    // The promotion must have FENCED the still-alive primary: its
    // shipper reconnects after the stall, gets its hello rejected, and
    // permanently retires.
    for (int a = 0; a < 400 && !rig->replicator->fenced(); ++a)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(rig->replicator->fenced())
        << "live primary was never fenced after the replica promoted";
    rig->kill_now();
  }
  rig.reset();
  replica.stop();
  gbx::failpoints().clear();

  // --- verification: replica lane p == oracle of client p's batches.
  auto& arr = replica.array();
  const auto counts = replica.lane_batches();
  for (std::size_t p = 0; p < kLanes; ++p) {
    ASSERT_EQ(counts[p], kBatches)
        << "lane " << p << ": replica applied " << counts[p] << " of "
        << kBatches << " batches (lost or doubled)";
    hier::HierMatrix<double> oracle(kDim, kDim, cuts());
    for (const auto& b : work[p]) oracle.update(b);
    auto osnap = oracle.freeze();
    auto rsnap = arr.instance(p).freeze();
    ASSERT_EQ(rsnap.reduce(), osnap.reduce()) << "lane " << p << " sum";
    ASSERT_EQ(rsnap.nvals(), osnap.nvals()) << "lane " << p << " nvals";
    // Probe a sample of exact coordinates.
    std::uniform_int_distribution<std::size_t> pick(0, work[p].size() - 1);
    for (int probe = 0; probe < 64; ++probe) {
      const auto& batch = work[p][pick(rng)];
      const auto& e = batch.entries()[probe % batch.size()];
      auto ov = osnap.extract_element(e.row, e.col);
      auto rv = rsnap.extract_element(e.row, e.col);
      ASSERT_TRUE(ov.has_value() && rv.has_value());
      ASSERT_EQ(*rv, *ov) << "lane " << p << " (" << e.row << "," << e.col
                          << ")";
    }
  }
  for (const auto& r : result.reports) {
    if (r.failed_over) {
      ++result.failed_over;
      EXPECT_GE(r.resumed_from, r.watermark_at_failover)
          << "acked batches lost across failover";
    }
  }

  std::filesystem::remove(primary_wal);
  std::filesystem::remove(replica_wal);
}

class ReplFailover : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = proptest::seed_or_env(kPinnedSeed);
    std::cout << proptest::seed_banner(seed_, kPinnedSeed) << "\n";
    rng_.seed(seed_);
  }
  void TearDown() override { gbx::failpoints().clear(); }
  std::uint64_t seed_ = 0;
  std::mt19937_64 rng_;
};

TEST_F(ReplFailover, KillMidStream) {
  std::uniform_int_distribution<int> when(10, 100);
  TortureResult r;
  torture_round(rng_, when(rng_), /*partition=*/false, "midstream", r);
  EXPECT_GE(r.failed_over, 1u) << "kill landed after all clients finished — "
                                  "shrink kill_after_ms";
}

TEST_F(ReplFailover, KillMidAckWithDelayedAcks) {
  gbx::FailpointSpec spec;
  spec.action = gbx::FailAction::kDelay;
  spec.probability = 0.25;
  spec.seed = rng_();
  spec.delay_ms = 3;
  spec.max_fires = 100000;
  gbx::failpoints().arm("repl.replica.ack", spec);
  std::uniform_int_distribution<int> when(20, 100);
  TortureResult r;
  torture_round(rng_, when(rng_), /*partition=*/false, "midack", r);
  EXPECT_GE(r.failed_over, 1u);
}

TEST_F(ReplFailover, KillMidPromotion) {
  // Kill very early: promotion and the first failover dials overlap.
  std::uniform_int_distribution<int> when(1, 25);
  TortureResult r;
  torture_round(rng_, when(rng_), /*partition=*/false, "midpromo", r);
  // exactness assertions inside torture_round are the gate
}

TEST_F(ReplFailover, PartitionFencesLivePrimary) {
  TortureResult r;
  torture_round(rng_, 0, /*partition=*/true, "partition", r);
  EXPECT_GE(r.failed_over, 1u)
      << "partition never forced a failover — stall window too short?";
}

// Cold-restart of the replica: its own WAL replays to the exact state.
TEST_F(ReplFailover, ReplicaColdRestartReplaysItsWal) {
  const std::string wal = tmp_path("repl_cold_wal");
  std::filesystem::remove(wal);
  const auto work = make_work(rng_);

  repl::ReplicaOptions ropt;
  ropt.wal_path = wal;
  ropt.lanes = kLanes;
  ropt.nrows = kDim;
  ropt.ncols = kDim;
  ropt.cuts = cuts();
  ropt.auto_promote = false;

  double sum_before = 0;
  {
    repl::ReplicaServer replica(ropt);
    replica.start();
    net::Client::Options copt;
    copt.recv_timeout_ms = 5000;
    net::Client cli(copt);
    cli.connect("127.0.0.1", replica.port());
    repl::ShipHello hello;
    hello.lanes = kLanes;
    hello.nrows = kDim;
    hello.ncols = kDim;
    std::string frame;
    net::append_frame(frame, net::MsgType::kShipHello, 0, &hello,
                      sizeof hello);
    cli.send_raw(frame.data(), frame.size());
    auto hr = cli.read_reply();
    ASSERT_EQ(net::tag_type(hr.epoch), net::MsgType::kReplyOk);
    std::uint64_t seq = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      const std::string payload =
          repl::encode_batch_payload(b % kLanes, work[0][b]);
      std::string f;
      net::append_frame(f, net::MsgType::kShipBatch, ++seq, payload.data(),
                        payload.size());
      cli.send_raw(f.data(), f.size());
      auto ack = cli.read_reply();
      ASSERT_EQ(net::tag_type(ack.epoch), net::MsgType::kShipAck);
    }
    replica.stop();
    double s = 0;
    for (std::size_t p = 0; p < kLanes; ++p)
      s += replica.array().instance(p).freeze().reduce();
    sum_before = s;
  }

  // Restart over the same WAL: identical state, sequence continues.
  repl::ReplicaServer reborn(ropt);
  ASSERT_EQ(reborn.applied_seq(), 8u);
  reborn.start();
  reborn.stop();
  double s = 0;
  for (std::size_t p = 0; p < kLanes; ++p)
    s += reborn.array().instance(p).freeze().reduce();
  EXPECT_EQ(s, sum_before);
  std::filesystem::remove(wal);
}

}  // namespace

#else
TEST(ReplFailover, LinuxOnly) { GTEST_SKIP() << "epoll server is Linux-only"; }
#endif  // __linux__
