// Tests for the scaling harness and SuperCloud extrapolation model.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace {

using cluster::SuperCloudModel;
using cluster::WorkloadSpec;

WorkloadSpec tiny_workload() {
  WorkloadSpec w;
  w.sets = 4;
  w.set_size = 5000;
  w.scale = 12;
  w.seed = 1;
  return w;
}

TEST(Harness, SingleInstanceRunsAndCounts) {
  auto w = tiny_workload();
  auto r = cluster::run_hier_gbx(1, w, hier::CutPolicy::geometric(3, 4096, 16));
  EXPECT_EQ(r.instances, 1u);
  EXPECT_EQ(r.entries, w.entries_per_instance());
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.aggregate_rate, 0.0);
  EXPECT_GT(r.busy_seconds_mean, 0.0);
}

TEST(Harness, MultiInstanceAggregatesEntries) {
  auto w = tiny_workload();
  auto r = cluster::run_hier_gbx(4, w, hier::CutPolicy::geometric(3, 4096, 16));
  EXPECT_EQ(r.instances, 4u);
  EXPECT_EQ(r.entries, 4u * w.entries_per_instance());
  EXPECT_GT(r.aggregate_rate, 0.0);
}

TEST(Harness, DirectBaselineRuns) {
  auto w = tiny_workload();
  auto r = cluster::run_direct_gbx(2, w);
  EXPECT_EQ(r.entries, 2u * w.entries_per_instance());
  EXPECT_GT(r.aggregate_rate, 0.0);
}

TEST(Harness, InstancesAreIndependent) {
  // Aggregate of 2 instances should be roughly 2x one instance's rate
  // (cores are plentiful here); at minimum it must exceed 1x.
  auto w = tiny_workload();
  auto cuts = hier::CutPolicy::geometric(3, 4096, 16);
  auto r1 = cluster::run_hier_gbx(1, w, cuts);
  auto r2 = cluster::run_hier_gbx(2, w, cuts);
  EXPECT_GT(r2.aggregate_rate, r1.aggregate_rate * 0.8);
}

TEST(Model, AggregateRateLinearInServers) {
  SuperCloudModel m;
  m.per_instance_rate = 1.0e6;
  m.instances_per_node = 28;
  m.intra_node_efficiency = 0.9;
  const double r1 = m.aggregate_rate(1);
  const double r10 = m.aggregate_rate(10);
  EXPECT_DOUBLE_EQ(r10, 10.0 * r1);
  EXPECT_DOUBLE_EQ(r1, 28.0 * 1.0e6 * 0.9);
}

TEST(Model, PaperConfigurationReaches75G) {
  // With the paper's instance count and its >1M/s per-instance rate
  // (75e9 / 31000 ≈ 2.4e6), the model reproduces the headline number.
  SuperCloudModel m;
  m.per_instance_rate = SuperCloudModel::kPaperRate / SuperCloudModel::kPaperInstances;
  m.instances_per_node = SuperCloudModel::kPaperInstances / SuperCloudModel::kPaperServers;
  // 31000/1100 truncates to 28; allow the truncation in the check.
  const double modeled = m.aggregate_rate(SuperCloudModel::kPaperServers);
  EXPECT_NEAR(modeled, SuperCloudModel::kPaperRate, 0.05 * SuperCloudModel::kPaperRate);
}

TEST(Model, CalibrationFromMeasurements) {
  auto m = cluster::calibrate(/*rate_1=*/2.0e6, /*p=*/8, /*rate_p=*/12.8e6, 28);
  EXPECT_DOUBLE_EQ(m.per_instance_rate, 2.0e6);
  EXPECT_DOUBLE_EQ(m.intra_node_efficiency, 0.8);
  EXPECT_DOUBLE_EQ(m.aggregate_rate(1), 28 * 2.0e6 * 0.8);
}

TEST(Model, Validation) {
  SuperCloudModel m;
  EXPECT_THROW(m.aggregate_rate(0), gbx::InvalidValue);
  m.per_instance_rate = -1;
  EXPECT_THROW(m.aggregate_rate(1), gbx::InvalidValue);
  EXPECT_THROW(cluster::calibrate(0, 1, 1), gbx::InvalidValue);
}

TEST(Workload, EntriesPerInstance) {
  WorkloadSpec w;
  w.sets = 7;
  w.set_size = 11;
  EXPECT_EQ(w.entries_per_instance(), 77u);
}

}  // namespace
