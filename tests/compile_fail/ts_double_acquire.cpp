// Violation: acquiring the same mutex twice in one scope (self-deadlock
// for a non-recursive mutex). MUST fail to compile under
// -Werror=thread-safety.
#include <cstdint>

#include "gbx/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add() {
    gbx::ScopedLock lk1(mu_);
    gbx::ScopedLock lk2(mu_);  // deadlock: mu_ already held
    ++value_;
  }

 private:
  gbx::Mutex mu_;
  std::uint64_t value_ GBX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add();
  return 0;
}
