// Violation: calling a GBX_REQUIRES(mu_) helper without holding mu_.
// MUST fail to compile under -Werror=thread-safety.
#include <cstdint>

#include "gbx/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add() {
    bump_locked();  // contract break: caller does not hold mu_
  }

 private:
  void bump_locked() GBX_REQUIRES(mu_) { ++value_; }

  gbx::Mutex mu_;
  std::uint64_t value_ GBX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add();
  return 0;
}
