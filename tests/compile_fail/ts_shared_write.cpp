// Violation: writing a guarded member while holding only the SHARED
// side of its gbx::SharedMutex (readers may run concurrently). MUST
// fail to compile under -Werror=thread-safety.
#include <cstdint>

#include "gbx/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add() {
    gbx::ScopedReadLock lk(mu_);  // shared hold only
    ++value_;                     // write needs the exclusive side
  }

 private:
  mutable gbx::SharedMutex mu_;
  std::uint64_t value_ GBX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add();
  return 0;
}
