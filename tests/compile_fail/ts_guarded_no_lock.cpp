// Violation: touching a GBX_GUARDED_BY member without holding its
// mutex. MUST fail to compile under -Werror=thread-safety.
#include <cstdint>

#include "gbx/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add(std::uint64_t d) {
    value_ += d;  // racy: mu_ not held
  }

 private:
  gbx::Mutex mu_;
  std::uint64_t value_ GBX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return 0;
}
