// Positive control for the thread-safety negative-compile suite: a
// correctly locked class that MUST compile cleanly under
// -Werror=thread-safety. If this file fails, the violation tests prove
// nothing (the toolchain is rejecting everything).
#include <cstdint>

#include "gbx/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add(std::uint64_t d) {
    gbx::ScopedLock lk(mu_);
    value_ += d;
    bump_locked();
  }

  std::uint64_t get() const {
    gbx::ScopedLock lk(mu_);
    return value_;
  }

  std::uint64_t reads() const {
    gbx::ScopedReadLock lk(smu_);
    return reads_;
  }

  void note_read() {
    gbx::ScopedWriteLock lk(smu_);
    ++reads_;
  }

 private:
  void bump_locked() GBX_REQUIRES(mu_) { ++bumps_; }

  mutable gbx::Mutex mu_;
  std::uint64_t value_ GBX_GUARDED_BY(mu_) = 0;
  std::uint64_t bumps_ GBX_GUARDED_BY(mu_) = 0;
  mutable gbx::SharedMutex smu_;
  std::uint64_t reads_ GBX_GUARDED_BY(smu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  c.note_read();
  return static_cast<int>(c.get() + c.reads()) == 2 ? 0 : 1;
}
