// Tests for hier::ParallelStream, the parallel multi-instance
// streaming-insert engine. The central invariant is the same as for a
// single HierMatrix — cascade equals direct accumulation — extended to
// concurrent batched inserts: every instance's snapshot must equal the
// direct sum of exactly the batches routed to it, no matter how the lane
// queues and worker threads interleave. A single-lane engine must also be
// bit-for-bit deterministic, including cascade statistics, because one
// lane applies batches in submission order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gbx/matrix_ops.hpp"
#include "gen/kronecker.hpp"
#include "gen/power_law.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::Tuples;
using hier::CutPolicy;
using hier::InstanceArray;
using hier::ParallelStream;

constexpr Index kDim = Index{1} << 17;

gen::KroneckerGenerator kron(std::uint64_t seed, int scale = 17) {
  gen::KroneckerParams kp;
  kp.scale = scale;
  kp.seed = seed;
  return gen::KroneckerGenerator(kp);
}

double total_sum(const Matrix<double>& m) {
  double s = 0;
  for (const auto& e : m.extract_tuples()) s += e.val;
  return s;
}

TEST(ParallelStream, ExplicitLaneRoutingMatchesDirectAccumulation) {
  const std::size_t instances = 4, batches = 24, batch_size = 5000;
  const auto cuts = CutPolicy::geometric(3, 512, 8);

  InstanceArray<double> array(instances, kDim, kDim, cuts);
  std::vector<Matrix<double>> direct;
  for (std::size_t p = 0; p < instances; ++p) direct.emplace_back(kDim, kDim);

  ParallelStream<double> engine(array);
  engine.start();
  auto g = kron(7);
  for (std::size_t s = 0; s < batches; ++s) {
    const std::size_t lane = s % instances;
    auto batch = g.batch<double>(batch_size);
    direct[lane].append(batch);
    engine.submit(lane, std::move(batch));
  }
  auto report = engine.stop();

  EXPECT_EQ(report.instances, instances);
  EXPECT_EQ(report.batches, batches);
  EXPECT_EQ(report.entries, batches * batch_size);
  for (std::size_t p = 0; p < instances; ++p) {
    direct[p].materialize();
    auto snap = array.instance(p).snapshot();
    EXPECT_TRUE(gbx::equal(snap, direct[p]))
        << "instance " << p << " diverged from direct accumulation";
    EXPECT_TRUE(snap.validate());
  }
}

TEST(ParallelStream, RoundRobinConservesEveryEntry) {
  const std::size_t instances = 3, batches = 30, batch_size = 4000;
  const auto cuts = CutPolicy::geometric(4, 256, 4);

  InstanceArray<double> array(instances, kDim, kDim, cuts);
  Matrix<double> all(kDim, kDim);

  ParallelStream<double> engine(array);
  engine.start();
  auto g = kron(11);
  for (std::size_t s = 0; s < batches; ++s) {
    auto batch = g.batch<double>(batch_size);
    all.append(batch);
    engine.submit(std::move(batch));
  }
  engine.drain();  // all queues applied before we look
  auto report = engine.stop();
  all.materialize();

  // The union of instance snapshots is the direct accumulation of the
  // whole stream (instances partition the batches).
  Matrix<double> merged(kDim, kDim);
  for (std::size_t p = 0; p < instances; ++p)
    merged.plus_assign(array.instance(p).snapshot());
  EXPECT_TRUE(gbx::equal(merged, all));
  EXPECT_EQ(report.entries, batches * batch_size);
  EXPECT_EQ(array.total_entries_appended(), batches * batch_size);
}

TEST(ParallelStream, SingleLaneIsDeterministic) {
  const std::size_t batches = 16, batch_size = 3000;
  const auto cuts = CutPolicy::geometric(3, 1024, 8);

  // Reference: plain serial HierMatrix fed the same batches in order.
  hier::HierMatrix<double> serial(kDim, kDim, cuts);
  {
    auto g = kron(23);
    for (std::size_t s = 0; s < batches; ++s) serial.update(g.batch<double>(batch_size));
  }

  InstanceArray<double> array(1, kDim, kDim, cuts);
  ParallelStream<double> engine(array);
  engine.start();
  auto g = kron(23);
  for (std::size_t s = 0; s < batches; ++s)
    engine.submit(0, g.batch<double>(batch_size));
  auto report = engine.stop();

  auto& streamed = array.instance(0);
  EXPECT_TRUE(gbx::equal(streamed.snapshot(), serial.snapshot()));
  // One lane applies batches in submission order, so the cascade takes
  // the exact same fold decisions: statistics must match, not just sums.
  ASSERT_EQ(streamed.stats().level.size(), serial.stats().level.size());
  for (std::size_t i = 0; i < serial.stats().level.size(); ++i) {
    EXPECT_EQ(streamed.stats().level[i].folds, serial.stats().level[i].folds);
    EXPECT_EQ(streamed.stats().level[i].entries_folded,
              serial.stats().level[i].entries_folded);
  }
  EXPECT_EQ(streamed.stats().entries_appended, serial.stats().entries_appended);
  EXPECT_EQ(report.batches, batches);
}

TEST(ParallelStream, PumpMatchesDirectAccumulationPerInstance) {
  const std::size_t instances = 3, sets = 10, set_size = 2000;
  const auto cuts = CutPolicy::geometric(4, 512, 8);

  InstanceArray<double> array(instances, kDim, kDim, cuts);
  auto report = hier::pump<double>(array, sets, set_size, [](std::size_t p) {
    return kron(100 + p);
  });

  EXPECT_EQ(report.instances, instances);
  EXPECT_EQ(report.entries, instances * sets * set_size);
  for (std::size_t p = 0; p < instances; ++p) {
    // Replay instance p's private stream directly.
    Matrix<double> direct(kDim, kDim);
    auto g = kron(100 + p);
    for (std::size_t s = 0; s < sets; ++s) direct.append(g.batch<double>(set_size));
    direct.materialize();
    EXPECT_TRUE(gbx::equal(array.instance(p).snapshot(), direct));
  }
  EXPECT_GT(report.aggregate_rate, 0.0);
}

TEST(ParallelStream, RestartAndValueConservation) {
  const auto cuts = CutPolicy::geometric(3, 128, 4);
  InstanceArray<double> array(2, kDim, kDim, cuts);
  ParallelStream<double> engine(array);

  double expected = 0;
  for (int round = 0; round < 2; ++round) {
    engine.start();
    auto g = kron(31 + round);
    for (std::size_t s = 0; s < 6; ++s) {
      auto batch = g.batch<double>(1000);
      for (const auto& e : batch) expected += e.val;
      engine.submit(std::move(batch));
    }
    auto report = engine.stop();
    EXPECT_EQ(report.batches, 6u);
    EXPECT_FALSE(engine.running());
  }

  double got = 0;
  for (std::size_t p = 0; p < array.size(); ++p)
    got += total_sum(array.instance(p).snapshot());
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ParallelStream, StopRacingBlockedSubmitLosesNoEntries) {
  // A producer thread hammers one lane while the controller stops the
  // engine. A submit caught mid-wait by stop() must throw rather than
  // enqueue a batch no worker will apply; everything submitted before
  // that must land in the matrix. (Regression test for a drop window
  // between worker exit and a blocked producer waking.)
  const std::size_t batch_size = 2000;
  InstanceArray<double> array(1, kDim, kDim, CutPolicy::geometric(3, 256, 4));
  typename ParallelStream<double>::Options opt;
  opt.queue_capacity = 1;  // maximize time spent blocked in submit()
  ParallelStream<double> engine(array, opt);
  engine.start();

  std::atomic<std::uint64_t> submitted{0};
  std::thread producer([&] {
    auto g = kron(97);
    try {
      for (int s = 0; s < 200; ++s) {
        engine.submit(0, g.batch<double>(batch_size));
        ++submitted;
      }
    } catch (const gbx::Error&) {
      // expected when stop() wins the race
    }
  });
  while (submitted < 5) std::this_thread::yield();
  auto report = engine.stop();
  producer.join();

  EXPECT_EQ(report.entries, submitted * batch_size);
  EXPECT_EQ(array.total_entries_appended(), submitted * batch_size);
}

TEST(ParallelStream, MisuseThrows) {
  InstanceArray<double> array(2, kDim, kDim, CutPolicy::geometric(2, 64, 2));
  ParallelStream<double> engine(array);
  EXPECT_THROW(engine.submit(0, Tuples<double>{}), gbx::Error);
  EXPECT_THROW(engine.drain(), gbx::Error);
  engine.start();
  EXPECT_THROW(engine.start(), gbx::Error);
  EXPECT_THROW(engine.submit(5, Tuples<double>{}), gbx::Error);
  engine.stop();
}

// try_submit must never block and must leave a refused batch untouched:
// kStopped before start and after stop, kLaneFull while the lane queue
// is at capacity, kAccepted otherwise — with every accepted batch
// applied exactly once.
TEST(ParallelStream, TrySubmitRefusalLeavesBatchUntouched) {
  InstanceArray<double> array(1, kDim, kDim, CutPolicy::geometric(3, 512, 8));
  ParallelStream<double>::Options opt;
  opt.queue_capacity = 1;
  ParallelStream<double> engine(array, opt);

  auto g = kron(41);
  auto batch = g.batch<double>(1000);
  const auto copy = batch.entries();

  // Not started: defined refusal, not a throw, not a hang.
  EXPECT_EQ(engine.try_submit(0, batch), hier::SubmitResult::kStopped);
  EXPECT_EQ(batch.entries(), copy) << "refused batch was modified";

  engine.start();
  // A huge batch keeps the worker busy applying while we fill the
  // 1-deep queue behind it; the next try_submit must bounce.
  engine.submit(0, g.batch<double>(1u << 21));
  std::size_t accepted = 1;
  hier::SubmitResult r;
  std::size_t filled = 0;
  do {
    auto b = g.batch<double>(1000);
    r = engine.try_submit(0, b);
    if (r == hier::SubmitResult::kAccepted)
      ++accepted;
    else
      EXPECT_EQ(b.size(), 1000u) << "kLaneFull consumed the batch";
    ++filled;
  } while (r == hier::SubmitResult::kAccepted && filled < 1000);
  EXPECT_EQ(r, hier::SubmitResult::kLaneFull)
      << "queue never filled; worker outran a 2M-entry apply";

  // The refused batch submits fine once space opens (blocking submit).
  EXPECT_EQ(engine.try_submit(0, batch), hier::SubmitResult::kLaneFull);
  engine.submit(0, std::move(batch));
  ++accepted;
  auto report = engine.stop();
  EXPECT_EQ(report.entries, (accepted - 1) * 1000 + (1u << 21));

  EXPECT_EQ(engine.try_submit(0, batch), hier::SubmitResult::kStopped);
}

// Producers racing stop() get a defined kStopped instead of blocking on
// a queue no worker will drain; every batch accepted before the close
// is applied exactly once.
TEST(ParallelStream, TrySubmitVersusStopRace) {
  for (int round = 0; round < 8; ++round) {
    InstanceArray<double> array(2, kDim, kDim,
                                CutPolicy::geometric(3, 512, 8));
    ParallelStream<double> engine(array);
    engine.start();

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<bool> saw_stopped{false};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        auto g = kron(900 + static_cast<std::uint64_t>(round) * 10 + p);
        for (int i = 0; i < 100000; ++i) {
          auto b = g.batch<double>(8);
          switch (engine.try_submit(p, b)) {
            case hier::SubmitResult::kAccepted:
              accepted.fetch_add(1, std::memory_order_relaxed);
              break;
            case hier::SubmitResult::kLaneFull:
              std::this_thread::yield();
              break;
            case hier::SubmitResult::kStopped:
              saw_stopped.store(true, std::memory_order_relaxed);
              return;
          }
        }
      });
    }
    while (accepted.load(std::memory_order_relaxed) < 50) std::this_thread::yield();
    auto report = engine.stop();
    for (auto& t : producers) t.join();

    EXPECT_TRUE(saw_stopped.load()) << "producers outran stop() entirely";
    EXPECT_EQ(report.entries, accepted.load() * 8)
        << "accepted batches and applied entries diverged (round " << round
        << ")";
    EXPECT_EQ(array.total_entries_appended(), accepted.load() * 8);
  }
}

}  // namespace
