// Tests for hier::ParallelStream, the parallel multi-instance
// streaming-insert engine. The central invariant is the same as for a
// single HierMatrix — cascade equals direct accumulation — extended to
// concurrent batched inserts: every instance's snapshot must equal the
// direct sum of exactly the batches routed to it, no matter how the lane
// queues and worker threads interleave. A single-lane engine must also be
// bit-for-bit deterministic, including cascade statistics, because one
// lane applies batches in submission order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gbx/matrix_ops.hpp"
#include "gen/kronecker.hpp"
#include "gen/power_law.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::Tuples;
using hier::CutPolicy;
using hier::InstanceArray;
using hier::ParallelStream;

constexpr Index kDim = Index{1} << 17;

gen::KroneckerGenerator kron(std::uint64_t seed, int scale = 17) {
  gen::KroneckerParams kp;
  kp.scale = scale;
  kp.seed = seed;
  return gen::KroneckerGenerator(kp);
}

double total_sum(const Matrix<double>& m) {
  double s = 0;
  for (const auto& e : m.extract_tuples()) s += e.val;
  return s;
}

TEST(ParallelStream, ExplicitLaneRoutingMatchesDirectAccumulation) {
  const std::size_t instances = 4, batches = 24, batch_size = 5000;
  const auto cuts = CutPolicy::geometric(3, 512, 8);

  InstanceArray<double> array(instances, kDim, kDim, cuts);
  std::vector<Matrix<double>> direct;
  for (std::size_t p = 0; p < instances; ++p) direct.emplace_back(kDim, kDim);

  ParallelStream<double> engine(array);
  engine.start();
  auto g = kron(7);
  for (std::size_t s = 0; s < batches; ++s) {
    const std::size_t lane = s % instances;
    auto batch = g.batch<double>(batch_size);
    direct[lane].append(batch);
    engine.submit(lane, std::move(batch));
  }
  auto report = engine.stop();

  EXPECT_EQ(report.instances, instances);
  EXPECT_EQ(report.batches, batches);
  EXPECT_EQ(report.entries, batches * batch_size);
  for (std::size_t p = 0; p < instances; ++p) {
    direct[p].materialize();
    auto snap = array.instance(p).snapshot();
    EXPECT_TRUE(gbx::equal(snap, direct[p]))
        << "instance " << p << " diverged from direct accumulation";
    EXPECT_TRUE(snap.validate());
  }
}

TEST(ParallelStream, RoundRobinConservesEveryEntry) {
  const std::size_t instances = 3, batches = 30, batch_size = 4000;
  const auto cuts = CutPolicy::geometric(4, 256, 4);

  InstanceArray<double> array(instances, kDim, kDim, cuts);
  Matrix<double> all(kDim, kDim);

  ParallelStream<double> engine(array);
  engine.start();
  auto g = kron(11);
  for (std::size_t s = 0; s < batches; ++s) {
    auto batch = g.batch<double>(batch_size);
    all.append(batch);
    engine.submit(std::move(batch));
  }
  engine.drain();  // all queues applied before we look
  auto report = engine.stop();
  all.materialize();

  // The union of instance snapshots is the direct accumulation of the
  // whole stream (instances partition the batches).
  Matrix<double> merged(kDim, kDim);
  for (std::size_t p = 0; p < instances; ++p)
    merged.plus_assign(array.instance(p).snapshot());
  EXPECT_TRUE(gbx::equal(merged, all));
  EXPECT_EQ(report.entries, batches * batch_size);
  EXPECT_EQ(array.total_entries_appended(), batches * batch_size);
}

TEST(ParallelStream, SingleLaneIsDeterministic) {
  const std::size_t batches = 16, batch_size = 3000;
  const auto cuts = CutPolicy::geometric(3, 1024, 8);

  // Reference: plain serial HierMatrix fed the same batches in order.
  hier::HierMatrix<double> serial(kDim, kDim, cuts);
  {
    auto g = kron(23);
    for (std::size_t s = 0; s < batches; ++s) serial.update(g.batch<double>(batch_size));
  }

  InstanceArray<double> array(1, kDim, kDim, cuts);
  ParallelStream<double> engine(array);
  engine.start();
  auto g = kron(23);
  for (std::size_t s = 0; s < batches; ++s)
    engine.submit(0, g.batch<double>(batch_size));
  auto report = engine.stop();

  auto& streamed = array.instance(0);
  EXPECT_TRUE(gbx::equal(streamed.snapshot(), serial.snapshot()));
  // One lane applies batches in submission order, so the cascade takes
  // the exact same fold decisions: statistics must match, not just sums.
  ASSERT_EQ(streamed.stats().level.size(), serial.stats().level.size());
  for (std::size_t i = 0; i < serial.stats().level.size(); ++i) {
    EXPECT_EQ(streamed.stats().level[i].folds, serial.stats().level[i].folds);
    EXPECT_EQ(streamed.stats().level[i].entries_folded,
              serial.stats().level[i].entries_folded);
  }
  EXPECT_EQ(streamed.stats().entries_appended, serial.stats().entries_appended);
  EXPECT_EQ(report.batches, batches);
}

TEST(ParallelStream, PumpMatchesDirectAccumulationPerInstance) {
  const std::size_t instances = 3, sets = 10, set_size = 2000;
  const auto cuts = CutPolicy::geometric(4, 512, 8);

  InstanceArray<double> array(instances, kDim, kDim, cuts);
  auto report = hier::pump<double>(array, sets, set_size, [](std::size_t p) {
    return kron(100 + p);
  });

  EXPECT_EQ(report.instances, instances);
  EXPECT_EQ(report.entries, instances * sets * set_size);
  for (std::size_t p = 0; p < instances; ++p) {
    // Replay instance p's private stream directly.
    Matrix<double> direct(kDim, kDim);
    auto g = kron(100 + p);
    for (std::size_t s = 0; s < sets; ++s) direct.append(g.batch<double>(set_size));
    direct.materialize();
    EXPECT_TRUE(gbx::equal(array.instance(p).snapshot(), direct));
  }
  EXPECT_GT(report.aggregate_rate, 0.0);
}

TEST(ParallelStream, RestartAndValueConservation) {
  const auto cuts = CutPolicy::geometric(3, 128, 4);
  InstanceArray<double> array(2, kDim, kDim, cuts);
  ParallelStream<double> engine(array);

  double expected = 0;
  for (int round = 0; round < 2; ++round) {
    engine.start();
    auto g = kron(31 + round);
    for (std::size_t s = 0; s < 6; ++s) {
      auto batch = g.batch<double>(1000);
      for (const auto& e : batch) expected += e.val;
      engine.submit(std::move(batch));
    }
    auto report = engine.stop();
    EXPECT_EQ(report.batches, 6u);
    EXPECT_FALSE(engine.running());
  }

  double got = 0;
  for (std::size_t p = 0; p < array.size(); ++p)
    got += total_sum(array.instance(p).snapshot());
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ParallelStream, StopRacingBlockedSubmitLosesNoEntries) {
  // A producer thread hammers one lane while the controller stops the
  // engine. A submit caught mid-wait by stop() must throw rather than
  // enqueue a batch no worker will apply; everything submitted before
  // that must land in the matrix. (Regression test for a drop window
  // between worker exit and a blocked producer waking.)
  const std::size_t batch_size = 2000;
  InstanceArray<double> array(1, kDim, kDim, CutPolicy::geometric(3, 256, 4));
  typename ParallelStream<double>::Options opt;
  opt.queue_capacity = 1;  // maximize time spent blocked in submit()
  ParallelStream<double> engine(array, opt);
  engine.start();

  std::atomic<std::uint64_t> submitted{0};
  std::thread producer([&] {
    auto g = kron(97);
    try {
      for (int s = 0; s < 200; ++s) {
        engine.submit(0, g.batch<double>(batch_size));
        ++submitted;
      }
    } catch (const gbx::Error&) {
      // expected when stop() wins the race
    }
  });
  while (submitted < 5) std::this_thread::yield();
  auto report = engine.stop();
  producer.join();

  EXPECT_EQ(report.entries, submitted * batch_size);
  EXPECT_EQ(array.total_entries_appended(), submitted * batch_size);
}

TEST(ParallelStream, MisuseThrows) {
  InstanceArray<double> array(2, kDim, kDim, CutPolicy::geometric(2, 64, 2));
  ParallelStream<double> engine(array);
  EXPECT_THROW(engine.submit(0, Tuples<double>{}), gbx::Error);
  EXPECT_THROW(engine.drain(), gbx::Error);
  engine.start();
  EXPECT_THROW(engine.start(), gbx::Error);
  EXPECT_THROW(engine.submit(5, Tuples<double>{}), gbx::Error);
  engine.stop();
}

}  // namespace
