// Differential and allocation tests for the fused ingest hot path:
// radix sort vs comparison oracles, fused fold vs the legacy pipeline vs
// dense replay, parallel-dedup chunk boundaries, and the zero-allocation
// steady-state guarantee of the scratch arenas.
//
// This translation unit replaces the global operator new/delete with
// counting wrappers (malloc-backed, so sanitizer interception still
// works underneath): the "allocation-counting test hook" the scratch
// arenas are verified against. Counting is off except inside the
// measured windows.
#include <gtest/gtest.h>
#include <omp.h>

// The counting operator new below is malloc-backed (so sanitizer malloc
// interception keeps working underneath); GCC flags every matching
// delete-calls-free site, which is exactly the design here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <vector>

#include "gbx/gbx.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

// ---------------------------------------------------------------------
// Allocation-counting hook (global; counting gated by g_count_allocs).
// ---------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

void* operator new(std::size_t sz) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using gbx::Entry;
using gbx::Index;

/// Restore the fold pipeline choice on scope exit.
struct PipelineGuard {
  gbx::FoldPipeline saved = gbx::fold_pipeline();
  PipelineGuard() = default;
  explicit PipelineGuard(gbx::FoldPipeline p) { gbx::set_fold_pipeline(p); }
  ~PipelineGuard() { gbx::set_fold_pipeline(saved); }
};

/// Restore the OpenMP thread count on scope exit.
struct ThreadsGuard {
  int saved = omp_get_max_threads();
  explicit ThreadsGuard(int n) { omp_set_num_threads(n); }
  ~ThreadsGuard() { omp_set_num_threads(saved); }
};

// -------------------- entry generators (the adversarial shapes) -------

std::vector<Entry<double>> gen_random(std::mt19937_64& rng, std::size_t n,
                                      Index max_coord) {
  std::uniform_int_distribution<Index> coord(0, max_coord);
  std::uniform_int_distribution<int> val(-5, 5);
  std::vector<Entry<double>> v(n);
  for (auto& e : v) e = {coord(rng), coord(rng), static_cast<double>(val(rng))};
  return v;
}

std::vector<Entry<double>> gen_skewed(std::mt19937_64& rng, std::size_t n) {
  // 90% of entries in one row: heavy power-law style bucket imbalance.
  std::uniform_int_distribution<Index> coord(0, Index{1} << 20);
  std::vector<Entry<double>> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Index r = (i % 10 == 0) ? coord(rng) : Index{42};
    v[i] = {r, coord(rng), 1.0};
  }
  return v;
}

std::vector<Entry<double>> gen_all_duplicate(std::size_t n) {
  return std::vector<Entry<double>>(n, Entry<double>{7, 9, 1.0});
}

std::vector<Entry<double>> gen_presorted(std::mt19937_64& rng, std::size_t n) {
  auto v = gen_random(rng, n, Index{1} << 24);
  std::sort(v.begin(), v.end(), gbx::entry_less<double>);
  return v;
}

std::vector<Entry<double>> gen_reversed(std::mt19937_64& rng, std::size_t n) {
  auto v = gen_presorted(rng, n);
  std::reverse(v.begin(), v.end());
  return v;
}

std::vector<Entry<double>> gen_near_index_max(std::mt19937_64& rng,
                                              std::size_t n) {
  // Rows AND cols near 2^64: combined significant bits exceed 64, so the
  // packed-key radix path must fall back to the comparison engine.
  std::uniform_int_distribution<Index> coord(gbx::kIndexMax - 4096,
                                             gbx::kIndexMax - 1);
  std::vector<Entry<double>> v(n);
  for (auto& e : v) e = {coord(rng), coord(rng), 1.0};
  return v;
}

std::vector<Entry<double>> gen_zero_rows_full_cols(std::mt19937_64& rng,
                                                   std::size_t n) {
  // Every row 0, columns spanning all 64 bits: col_bits == 64 must not
  // pack (shift-by-64 guard) — comparison fallback territory.
  std::uniform_int_distribution<Index> coord(gbx::kIndexMax / 2,
                                             gbx::kIndexMax - 1);
  std::vector<Entry<double>> v(n);
  for (auto& e : v) e = {0, coord(rng), 1.0};
  return v;
}

std::vector<Entry<double>> gen_packed_64_exact(std::mt19937_64& rng,
                                               std::size_t n) {
  // 32 + 32 significant bits: packs at exactly the 64-bit boundary.
  std::uniform_int_distribution<Index> coord((Index{1} << 31),
                                             (Index{1} << 32) - 1);
  std::vector<Entry<double>> v(n);
  for (auto& e : v) e = {coord(rng), coord(rng), 1.0};
  return v;
}

/// Full-order comparator: (row, col, value) — makes sorted sequences
/// comparable across engines that order equal keys differently.
bool entry_full_less(const Entry<double>& a, const Entry<double>& b) {
  if (a.row != b.row) return a.row < b.row;
  if (a.col != b.col) return a.col < b.col;
  return a.val < b.val;
}

void check_sort_matches_oracle(std::vector<Entry<double>> v) {
  auto oracle = v;
  gbx::sort_entries(v);
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end(), gbx::entry_less<double>));
  // Same multiset of (row, col, value) triples.
  auto canon = v;
  std::sort(canon.begin(), canon.end(), entry_full_less);
  std::sort(oracle.begin(), oracle.end(), entry_full_less);
  ASSERT_EQ(canon.size(), oracle.size());
  EXPECT_TRUE(canon == oracle);
}

TEST(RadixSort, MatchesOracleAllShapesSerial) {
  HHGBX_PROP_SEED(seed, 0x16e57011ull);
  std::mt19937_64 rng(seed);
  const std::size_t n = 6000;  // above the radix cutoff, below parallel
  check_sort_matches_oracle(gen_random(rng, n, Index{1} << 17));
  check_sort_matches_oracle(gen_random(rng, n, 30));  // dup-heavy
  check_sort_matches_oracle(gen_skewed(rng, n));
  check_sort_matches_oracle(gen_all_duplicate(n));
  check_sort_matches_oracle(gen_presorted(rng, n));
  check_sort_matches_oracle(gen_reversed(rng, n));
  check_sort_matches_oracle(gen_near_index_max(rng, n));
  check_sort_matches_oracle(gen_zero_rows_full_cols(rng, n));
  check_sort_matches_oracle(gen_packed_64_exact(rng, n));
}

TEST(RadixSort, MatchesOracleAllShapesParallel) {
  HHGBX_PROP_SEED(seed, 20260729ull);
  ThreadsGuard threads(4);
  std::mt19937_64 rng(seed);
  const std::size_t n = (std::size_t{1} << 16) + 123;  // parallel passes
  check_sort_matches_oracle(gen_random(rng, n, Index{1} << 20));
  check_sort_matches_oracle(gen_skewed(rng, n));
  check_sort_matches_oracle(gen_all_duplicate(n));
  check_sort_matches_oracle(gen_presorted(rng, n));
  check_sort_matches_oracle(gen_reversed(rng, n));
  check_sort_matches_oracle(gen_packed_64_exact(rng, n));
}

// -------------------- parallel dedup chunk boundaries -----------------

void check_dedup_matches_map(std::vector<Entry<double>> v) {
  std::map<std::pair<Index, Index>, double> model;
  for (const auto& e : v) model[{e.row, e.col}] += e.val;
  std::sort(v.begin(), v.end(), gbx::entry_less<double>);
  const std::size_t m =
      gbx::dedup_sorted_entries_parallel<gbx::PlusMonoid<double>>(v);
  ASSERT_EQ(m, model.size());
  ASSERT_EQ(v.size(), model.size());
  std::size_t k = 0;
  for (const auto& [key, val] : model) {
    EXPECT_EQ(v[k].row, key.first);
    EXPECT_EQ(v[k].col, key.second);
    EXPECT_NEAR(v[k].val, val, 1e-9);
    ++k;
  }
}

TEST(DedupParallel, LongRunsAcrossChunkBoundaries) {
  ThreadsGuard threads(4);
  const std::size_t n = (std::size_t{1} << 15) + 7;  // >= parallel cutoff
  // 5 distinct keys, each repeated ~n/5 times: every chunk boundary
  // lands deep inside an equal-key run, and the compaction must shift
  // the few survivors across near-empty chunks.
  std::vector<Entry<double>> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back({i % 5, 1, 1.0});
  check_dedup_matches_map(std::move(v));
}

TEST(DedupParallel, SingleRunSwallowsEveryBoundary) {
  ThreadsGuard threads(4);
  const std::size_t n = (std::size_t{1} << 15) + 31;
  check_dedup_matches_map(gen_all_duplicate(n));
}

TEST(DedupParallel, RunsAlignedAtChunkEdges) {
  ThreadsGuard threads(4);
  const std::size_t n = std::size_t{1} << 15;
  // Run length exactly n/4 == the chunk size at 4 threads: boundaries
  // land exactly at run starts, the degenerate alignment case.
  std::vector<Entry<double>> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back({i / (n / 4), 2, 0.5});
  check_dedup_matches_map(std::move(v));
}

TEST(DedupParallel, MixedRunsRandom) {
  HHGBX_PROP_SEED(seed, 771020ull);
  ThreadsGuard threads(4);
  std::mt19937_64 rng(seed);
  check_dedup_matches_map(gen_random(rng, (std::size_t{1} << 15) + 11, 40));
}

// -------------------- fused fold vs legacy vs dense replay ------------

template <class T, class M>
void run_fold_differential(std::uint64_t seed, Index dim,
                           std::size_t batches, std::size_t batch_size) {
  const auto cuts = hier::CutPolicy::geometric(4, 512, 8);
  hier::HierMatrix<T, M> fused(dim, dim, cuts);
  hier::HierMatrix<T, M> legacy(dim, dim, cuts);
  proptest::DenseRef<T, M> ref;
  std::mt19937_64 rng(seed);
  PipelineGuard restore;
  for (std::size_t b = 0; b < batches; ++b) {
    auto batch = proptest::random_batch<T>(rng, dim, batch_size);
    gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);
    fused.update(batch);
    gbx::set_fold_pipeline(gbx::FoldPipeline::kLegacy);
    legacy.update(batch);
    ref.apply(batch);
  }
  gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);
  ASSERT_TRUE(ref.matches(fused.freeze()));
  auto fused_sum = fused.snapshot();
  gbx::set_fold_pipeline(gbx::FoldPipeline::kLegacy);
  auto legacy_sum = legacy.snapshot();
  gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);
  EXPECT_TRUE(gbx::equal(fused_sum, legacy_sum));
  ASSERT_TRUE(ref.matches(legacy_sum));
}

TEST(FusedFold, MatchesLegacyAndDenseRefPlusDouble) {
  HHGBX_PROP_SEED(seed, 41001ull);
  run_fold_differential<double, gbx::PlusMonoid<double>>(seed, 96, 24, 700);
}

TEST(FusedFold, MatchesLegacyAndDenseRefPlusInt64) {
  HHGBX_PROP_SEED(seed, 41002ull);
  run_fold_differential<std::int64_t, gbx::PlusMonoid<std::int64_t>>(seed, 64,
                                                                     24, 700);
}

TEST(FusedFold, MatchesLegacyAndDenseRefMinInt64) {
  HHGBX_PROP_SEED(seed, 41003ull);
  run_fold_differential<std::int64_t, gbx::MinMonoid<std::int64_t>>(seed, 80,
                                                                    20, 600);
}

TEST(FusedFold, MatchesLegacyAndDenseRefMaxInt64) {
  HHGBX_PROP_SEED(seed, 41004ull);
  run_fold_differential<std::int64_t, gbx::MaxMonoid<std::int64_t>>(seed, 80,
                                                                    20, 600);
}

TEST(FusedFold, AdversarialBatchShapes) {
  HHGBX_PROP_SEED(seed, 41005ull);
  std::mt19937_64 rng(seed);
  const Index dim = gbx::kIPv6Dim;
  const auto cuts = hier::CutPolicy::geometric(3, 1024, 8);
  hier::HierMatrix<double> fused(dim, dim, cuts);
  hier::HierMatrix<double> legacy(dim, dim, cuts);
  proptest::DenseRef<double> ref;
  PipelineGuard restore;

  std::vector<std::vector<Entry<double>>> batches;
  batches.push_back(gen_all_duplicate(3000));
  batches.push_back(gen_presorted(rng, 3000));
  batches.push_back(gen_reversed(rng, 3000));
  batches.push_back(gen_near_index_max(rng, 3000));  // unpackable fallback
  batches.push_back(gen_skewed(rng, 3000));
  batches.push_back(gen_random(rng, 3000, 50));  // dup-heavy
  for (const auto& b : batches) {
    gbx::Tuples<double> t;
    for (const auto& e : b) t.push_back(e.row, e.col, e.val);
    gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);
    fused.update(t);
    gbx::set_fold_pipeline(gbx::FoldPipeline::kLegacy);
    legacy.update(t);
    ref.apply(t);
  }
  gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);
  ASSERT_TRUE(ref.matches(fused.freeze()));
  EXPECT_TRUE(gbx::equal(fused.snapshot(), legacy.snapshot()));
}

// -------------------- freeze-backed queries ---------------------------

TEST(HierQueries, NvalsMatchesDenseReplayWithoutMaterializing) {
  HHGBX_PROP_SEED(seed, 52001ull);
  std::mt19937_64 rng(seed);
  hier::HierMatrix<double> m(256, 256, hier::CutPolicy::geometric(4, 256, 4));
  proptest::DenseRef<double> ref;
  for (int b = 0; b < 30; ++b) {
    auto batch = proptest::random_batch<double>(rng, 256, 400);
    m.update(batch);
    ref.apply(batch);
    ASSERT_EQ(m.nvals(), ref.nvals()) << "batch " << b;
  }
  ASSERT_TRUE(ref.matches(m.snapshot()));
}

TEST(HierQueries, SnapshotAliasesSingleNonEmptyLevel) {
  hier::HierMatrix<double> m(1000, 1000,
                             hier::CutPolicy::geometric(3, 64, 8));
  gbx::Tuples<double> t;
  for (Index i = 0; i < 500; ++i) t.push_back(i, i, 1.0);
  m.update(t);
  m.flush();  // everything lands in the top level
  const auto& top = m.level(m.num_levels() - 1);
  auto snap = m.snapshot();
  // Non-destructive query of a single-block hierarchy must alias, not
  // copy: the satellite fix routes snapshot() through freeze() views.
  EXPECT_EQ(snap.storage_handle().get(), top.storage_handle().get());
  EXPECT_EQ(snap.nvals(), 500u);
}

TEST(HierQueries, SnapshotNvalsCountsCrossLevelDuplicatesOnce) {
  hier::HierMatrix<double> m(64, 64, hier::CutPolicy::geometric(3, 16, 4));
  // Same coordinate folded into different levels at different times.
  for (int rep = 0; rep < 8; ++rep) {
    gbx::Tuples<double> t;
    for (Index i = 0; i < 20; ++i) t.push_back(i % 8, i % 8, 1.0);
    m.update(t);
  }
  std::size_t distinct = m.nvals();
  EXPECT_EQ(distinct, 8u);
  EXPECT_EQ(m.snapshot().nvals(), 8u);
}

// -------------------- copy-on-fold safety of the spare block ----------

TEST(SpareBlock, PublishedViewsSurviveLaterFolds) {
  gbx::Matrix<double> m(100, 100);
  m.set_element(1, 1, 1.0);
  m.set_element(2, 2, 2.0);
  auto v1 = m.view();  // pins the current block
  m.set_element(1, 1, 10.0);
  m.materialize();  // shared block: fold must copy, not swap in place
  EXPECT_DOUBLE_EQ(v1.get(1, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(m.extract_element(1, 1).value(), 11.0);
  {
    auto v2 = m.view();
    (void)v2;
  }  // dropped: matrix is sole owner again
  m.set_element(3, 3, 3.0);
  m.materialize();  // sole owner: in-place spare swap path
  EXPECT_DOUBLE_EQ(m.extract_element(3, 3).value(), 3.0);
  EXPECT_DOUBLE_EQ(v1.get(1, 1).value(), 1.0);
  EXPECT_FALSE(v1.get(3, 3).has_value());
}

// -------------------- zero-allocation steady state --------------------

TEST(ZeroAlloc, SteadyStateCascadeFoldsDoNotTouchTheHeap) {
#if defined(__SANITIZE_THREAD__) || GBX_HAS_FEATURE_TSAN
  // Under TSan, Matrix::sole_owner() is pinned false (TSan cannot model
  // the COW acquire-fence pairing), so every fold copies by design.
  GTEST_SKIP() << "in-place block reuse disabled under TSan";
#endif
  // Serial engine for a deterministic allocation profile (the parallel
  // paths are allocation-free too once warm, but libgomp's internal
  // bookkeeping is outside our control).
  ThreadsGuard threads(1);
  PipelineGuard pipeline(gbx::FoldPipeline::kFused);

  const Index dim = 256;  // 65536 coordinates: the blocks saturate
  hier::HierMatrix<double> m(dim, dim,
                             hier::CutPolicy::geometric(4, 1024, 8));
  std::mt19937_64 rng(99);
  // Pre-generate a fixed set of batches (generation allocates; the
  // measured window must see only append + cascade folds).
  std::vector<gbx::Tuples<double>> batches;
  for (int b = 0; b < 20; ++b)
    batches.push_back(proptest::random_batch<double>(rng, dim, 2048));

  // Warm up: saturate the coordinate space and plateau every capacity
  // (pending buffers, radix scratch, spare blocks, merge scratch).
  for (int warm = 0; warm < 60; ++warm)
    m.update(batches[static_cast<std::size_t>(warm) % batches.size()]);

  const auto grow_before = gbx::ScratchPool::local().grow_count();
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (const auto& b : batches) m.update(b);
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state cascade folds allocated";
  EXPECT_EQ(gbx::ScratchPool::local().grow_count(), grow_before)
      << "scratch arenas grew after warmup";
  // The folds above really did run (sanity that the window was hot).
  EXPECT_GT(m.stats().level[0].folds, 60u);
}

}  // namespace
