// Tests for the B+tree (OLTP-model) store: tree invariants under random
// and adversarial insert orders, accumulate semantics, linked-leaf scans.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "store/store.hpp"

namespace {

using store::BTreeStore;
using store::Key;

TEST(BTree, InsertAndGet) {
  BTreeStore t;
  t.insert({1, 2}, 3.0);
  EXPECT_DOUBLE_EQ(t.get({1, 2}).value(), 3.0);
  EXPECT_FALSE(t.get({2, 1}).has_value());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(BTree, AccumulatesDuplicates) {
  BTreeStore t;
  t.insert({5, 5}, 1.0);
  t.insert({5, 5}, 2.5);
  EXPECT_DOUBLE_EQ(t.get({5, 5}).value(), 3.5);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, SequentialInsertSplitsLeaves) {
  BTreeStore t;
  const std::size_t n = BTreeStore::kFanout * 10;
  for (gbx::Index k = 0; k < n; ++k) t.insert({k, 0}, 1.0);
  EXPECT_EQ(t.size(), n);
  EXPECT_GT(t.stats().leaf_splits, 5u);
  EXPECT_TRUE(t.validate());
  for (gbx::Index k = 0; k < n; ++k)
    ASSERT_TRUE(t.get({k, 0}).has_value()) << k;
}

TEST(BTree, ReverseInsert) {
  BTreeStore t;
  const std::size_t n = BTreeStore::kFanout * 6;
  for (std::size_t k = n; k-- > 0;) t.insert({k, k}, 1.0);
  EXPECT_EQ(t.size(), n);
  EXPECT_TRUE(t.validate());
}

TEST(BTree, GrowsMultipleLevels) {
  BTreeStore t;
  const std::size_t n = BTreeStore::kFanout * BTreeStore::kFanout * 2;
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<gbx::Index> coord(0, 1u << 30);
  for (std::size_t k = 0; k < n; ++k) t.insert({coord(rng), coord(rng)}, 1.0);
  EXPECT_GE(t.stats().height, 3u);
  EXPECT_GT(t.stats().inner_splits, 0u);
  EXPECT_TRUE(t.validate());
}

TEST(BTree, ScanIsSortedComplete) {
  BTreeStore t;
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<gbx::Index> coord(0, 500);
  std::map<std::pair<gbx::Index, gbx::Index>, double> model;
  for (int k = 0; k < 4000; ++k) {
    const Key key{coord(rng), coord(rng)};
    t.insert(key, 2.0);
    model[{key.row, key.col}] += 2.0;
  }
  std::vector<Key> seen;
  t.scan([&](Key k, double v) {
    seen.push_back(k);
    EXPECT_DOUBLE_EQ(model.at({k.row, k.col}), v);
  });
  EXPECT_EQ(seen.size(), model.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BTree, WalTracksInserts) {
  BTreeStore t(true);
  for (int k = 0; k < 100; ++k) t.insert({static_cast<gbx::Index>(k), 0}, 1.0);
  EXPECT_EQ(t.stats().inserts, 100u);
  EXPECT_GT(t.wal_bytes(), 100u * sizeof(Key));
  BTreeStore t2(false);
  t2.insert({1, 1}, 1.0);
  EXPECT_EQ(t2.wal_bytes(), 0u);
}

TEST(BTree, MoveSemantics) {
  BTreeStore t;
  t.insert({1, 1}, 1.0);
  BTreeStore u(std::move(t));
  EXPECT_DOUBLE_EQ(u.get({1, 1}).value(), 1.0);
  BTreeStore w;
  w = std::move(u);
  EXPECT_DOUBLE_EQ(w.get({1, 1}).value(), 1.0);
  EXPECT_TRUE(w.validate());
}

TEST(BTree, HugeKeys) {
  BTreeStore t;
  t.insert({gbx::kIndexMax - 1, gbx::kIndexMax - 1}, 1.0);
  t.insert({0, 0}, 2.0);
  t.insert({gbx::kIndexMax - 1, 0}, 3.0);
  EXPECT_DOUBLE_EQ(t.get({gbx::kIndexMax - 1, gbx::kIndexMax - 1}).value(), 1.0);
  EXPECT_TRUE(t.validate());
}

class BTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeFuzz, MatchesMapModel) {
  BTreeStore t;
  std::map<std::pair<gbx::Index, gbx::Index>, double> model;
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<gbx::Index> coord(0, 2000);
  for (int k = 0; k < 20000; ++k) {
    const Key key{coord(rng), coord(rng)};
    const double v = static_cast<double>(k % 7 + 1);
    t.insert(key, v);
    model[{key.row, key.col}] += v;
  }
  ASSERT_EQ(t.size(), model.size());
  ASSERT_TRUE(t.validate());
  for (const auto& [k, v] : model)
    EXPECT_NEAR(t.get({k.first, k.second}).value(), v, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz, ::testing::Values(1u, 2u, 3u, 4u));

// Zero is a value, not absence: the accumulate semantics must keep a
// key inserted with 0.0 distinguishable from a key never inserted (the
// out-of-core tier stores block id 0... never, but monoid identities do
// land in stores).
TEST(BTree, ZeroValuesAreStoredNotAbsent) {
  BTreeStore t;
  t.insert({7, 7}, 0.0);
  ASSERT_TRUE(t.get({7, 7}).has_value());
  EXPECT_DOUBLE_EQ(t.get({7, 7}).value(), 0.0);
  EXPECT_EQ(t.size(), 1u);
  t.insert({7, 7}, 0.0);
  EXPECT_DOUBLE_EQ(t.get({7, 7}).value(), 0.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.get({7, 8}).has_value());
}

// The out-of-core tier directory stores Key{row, run} -> block id as a
// double. Ordinals must round-trip exactly up to the 2^53 contiguous-
// integer limit the tier checks against.
TEST(BTree, DirectoryShapedKeysRoundTripLargeOrdinals) {
  BTreeStore t;
  const std::uint64_t kMax = (1ull << 53) - 1;
  const std::uint64_t ids[] = {1, 255, 1ull << 20, 1ull << 40, kMax};
  gbx::Index row = 0;
  for (const auto id : ids)
    t.insert({row++, 3}, static_cast<store::Value>(id));
  row = 0;
  for (const auto id : ids) {
    const auto v = t.get({row++, 3});
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(static_cast<std::uint64_t>(*v), id);
  }
  // One row in several runs: distinct keys, adjacent in scan order.
  t.insert({100, 1}, 10.0);
  t.insert({100, 9}, 90.0);
  t.insert({100, 4}, 40.0);
  std::vector<std::uint64_t> runs;
  t.scan([&](const Key& k, store::Value) {
    if (k.row == 100) runs.push_back(k.col);
  });
  EXPECT_EQ(runs, (std::vector<std::uint64_t>{1, 4, 9}));
}

// Exactly-at-fanout boundaries: the first split, and a payload sized to
// land a leaf exactly full.
TEST(BTree, FanoutBoundaryPayloads) {
  for (const std::size_t n :
       {BTreeStore::kFanout - 1, BTreeStore::kFanout, BTreeStore::kFanout + 1,
        2 * BTreeStore::kFanout}) {
    BTreeStore t;
    for (gbx::Index k = 0; k < n; ++k) t.insert({k, k}, static_cast<double>(k));
    EXPECT_EQ(t.size(), n);
    EXPECT_TRUE(t.validate()) << "n=" << n;
    for (gbx::Index k = 0; k < n; ++k)
      ASSERT_DOUBLE_EQ(t.get({k, k}).value(), static_cast<double>(k));
    // The split fires on the insert that finds its leaf full — i.e. at
    // n == kFanout, not past it.
    EXPECT_EQ(t.stats().leaf_splits > 0, n >= BTreeStore::kFanout)
        << "n=" << n;
  }
}

TEST(PublishedRates, LogLogInterpolation) {
  // Rates must interpolate monotonically on the published spans.
  for (const auto& s : store::kPublishedSeries) {
    const double r1 = store::published_rate_at(s, s.span[0].servers);
    const double r2 = store::published_rate_at(s, s.span[1].servers);
    EXPECT_NEAR(r1, s.span[0].updates_per_second, 1e-6 * r1) << s.name;
    EXPECT_NEAR(r2, s.span[1].updates_per_second, 1e-6 * r2) << s.name;
    const double mid = store::published_rate_at(
        s, 0.5 * (s.span[0].servers + s.span[1].servers));
    EXPECT_GT(mid, r1);
    EXPECT_LT(mid, r2);
  }
}

}  // namespace
