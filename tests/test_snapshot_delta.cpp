// Snapshot-delta subsystem coverage (ISSUE 3 tentpole):
//
//   * gbx::delta kernel basics and the identical-pointer fast path.
//   * Property: randomized snapshot pairs diffed against a dense-replay
//     oracle (prop_util.hpp) — the delta's added/changed/removed streams
//     must equal the coordinate-wise difference of the two reference
//     maps, and patching the old Σ Ai with the delta must reproduce the
//     new Σ Ai bit-for-bit. Runs under 3 seeds via HHGBX_SEED (see
//     tests/CMakeLists.txt).
//   * Incremental-vs-full equivalence: IncrementalEngine's Σ Ai /
//     summarize / triangles / PageRank against from-scratch recomputes,
//     in both exact (bit-identical) and warm-start (tolerance) modes.
//   * SnapshotSet diffs over ShardedHier parts.
//   * Pinned-memory accounting: identity-deduped snapshot bytes and the
//     pinned-vs-live split against a live matrix, plus the staleness
//     warning hook.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "algo/algo.hpp"
#include "analytics/analytics.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;
using hier::HierMatrix;
using proptest::DenseRef;

constexpr std::uint64_t kSeedOracle = 0xDE17A001;
constexpr std::uint64_t kSeedIncr = 0xDE17A002;
constexpr std::uint64_t kSeedSharded = 0xDE17A003;

using Key = std::pair<Index, Index>;

/// Patch `base` (the old Σ Ai) with a delta's new values: right-biased
/// union merge, exactly what IncrementalEngine does internally.
template <class T, class M>
gbx::Matrix<T, M> apply_patch(const gbx::Matrix<T, M>& base,
                              const hier::SnapshotDelta<T>& d) {
  Tuples<T> patch;
  patch.append(d.added);
  for (const auto& c : d.changed) patch.push_back(c.row, c.col, c.new_val);
  if (patch.empty()) return base;
  patch.template sort_dedup<M>();
  auto block = gbx::Dcsr<T>::from_sorted_unique(patch.entries());
  return gbx::Matrix<T, M>::adopt(
      base.nrows(), base.ncols(),
      gbx::ewise_add<gbx::Second<T>>(base.storage(), block));
}

/// Compare a delta against the coordinate-wise difference of two dense
/// reference maps (the oracle's definition of "what changed").
template <class T>
void expect_delta_matches_oracle(const std::map<Key, T>& ma,
                                 const std::map<Key, T>& mb,
                                 const hier::SnapshotDelta<T>& d) {
  std::map<Key, T> want_added;
  std::map<Key, std::pair<T, T>> want_changed;
  std::size_t want_removed = 0;
  for (const auto& [k, vb] : mb) {
    auto it = ma.find(k);
    if (it == ma.end()) want_added.emplace(k, vb);
    else if (!(it->second == vb)) want_changed.emplace(k, std::make_pair(it->second, vb));
  }
  for (const auto& [k, va] : ma) {
    (void)va;
    if (mb.find(k) == mb.end()) ++want_removed;
  }

  EXPECT_EQ(d.removed.size(), want_removed);
  ASSERT_EQ(d.added.size(), want_added.size());
  for (const auto& e : d.added) {
    auto it = want_added.find({e.row, e.col});
    ASSERT_NE(it, want_added.end())
        << "unexpected added entry (" << e.row << ", " << e.col << ")";
    EXPECT_EQ(e.val, it->second);
  }
  ASSERT_EQ(d.changed.size(), want_changed.size());
  for (const auto& c : d.changed) {
    auto it = want_changed.find({c.row, c.col});
    ASSERT_NE(it, want_changed.end())
        << "unexpected changed entry (" << c.row << ", " << c.col << ")";
    EXPECT_EQ(c.old_val, it->second.first);
    EXPECT_EQ(c.new_val, it->second.second);
  }
}

// ---------------------------------------------------------------------------
// gbx::delta kernel
// ---------------------------------------------------------------------------

TEST(Delta, KernelExtractsAddedRemovedChanged) {
  gbx::Matrix<int> a(16, 16), b(16, 16);
  a.set_element(1, 1, 10);
  a.set_element(1, 3, 11);
  a.set_element(4, 2, 12);
  b.set_element(1, 1, 10);   // unchanged
  b.set_element(1, 3, 99);   // changed
  b.set_element(7, 7, 13);   // added (new row)
  b.set_element(1, 5, 14);   // added (existing row)
  // (4, 2) removed (row vanishes entirely)

  auto d = gbx::delta(a.view(), b.view());
  ASSERT_EQ(d.added.size(), 2u);
  ASSERT_EQ(d.removed.size(), 1u);
  ASSERT_EQ(d.changed.size(), 1u);
  EXPECT_EQ(d.removed[0].row, 4u);
  EXPECT_EQ(d.removed[0].col, 2u);
  EXPECT_EQ(d.changed[0].old_val, 11);
  EXPECT_EQ(d.changed[0].new_val, 99);
  EXPECT_EQ(d.entries_scanned, a.nvals() + b.nvals());
}

TEST(Delta, IdenticalBlockFastPathSkipsEverything) {
  gbx::Matrix<double> m(64, 64);
  for (int k = 0; k < 20; ++k) m.set_element(k, 2 * k % 64, 1.0 + k);
  auto v1 = m.view();
  auto v2 = m.view();  // same block, refcount bumped
  EXPECT_TRUE(gbx::same_block(v1, v2));
  auto d = gbx::delta(v1, v2);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.entries_scanned, 0u) << "fast path must not scan entries";
}

TEST(Delta, SnapshotDiffReusesUnchangedLevels) {
  HierMatrix<double> h(1 << 10, 1 << 10, CutPolicy::geometric(4, 64, 4));
  std::mt19937_64 rng(7);
  for (int k = 0; k < 40; ++k) h.update(proptest::random_batch<double>(rng, 256, 50));
  auto a = h.freeze();

  // No updates: every level block is pointer-identical.
  auto b = h.freeze();
  auto d0 = hier::snapshot_diff(a, b);
  EXPECT_TRUE(d0.empty());
  EXPECT_EQ(d0.stats.levels_total, h.num_levels());
  EXPECT_EQ(d0.stats.levels_reused, h.num_levels());
  EXPECT_EQ(d0.stats.entries_scanned, 0u);
  EXPECT_DOUBLE_EQ(d0.stats.reuse_ratio(), 1.0);

  // A sub-cut update touches only level 0: deeper levels still reused.
  h.update(3, 5, 1.0);
  auto c = h.freeze();
  auto d1 = hier::snapshot_diff(a, c);
  EXPECT_GE(d1.stats.levels_reused, h.num_levels() - 1);
  EXPECT_EQ(d1.added.size() + d1.changed.size(), 1u);
  EXPECT_TRUE(d1.removed.empty());
}

// ---------------------------------------------------------------------------
// Property: randomized snapshot pairs vs dense-replay oracle
// ---------------------------------------------------------------------------

template <class T, class M>
void run_delta_oracle_property(std::uint64_t seed, std::size_t steps,
                               std::size_t max_batch) {
  std::mt19937_64 rng(seed);
  const Index dim = 512;
  std::uniform_int_distribution<int> levels(2, 5);
  std::uniform_int_distribution<int> base(8, 200);
  HierMatrix<T, M> h(dim, dim, CutPolicy::geometric(
                                   static_cast<std::size_t>(levels(rng)),
                                   static_cast<std::size_t>(base(rng)), 4));
  DenseRef<T, M> ref;

  std::vector<hier::HierSnapshot<T, M>> snaps;
  std::vector<std::map<Key, T>> maps;
  std::uniform_int_distribution<std::size_t> bsize(1, max_batch);
  std::uniform_int_distribution<int> action(0, 9);
  for (std::size_t s = 0; s < steps; ++s) {
    auto batch = proptest::random_batch<T>(rng, 200, bsize(rng));
    h.update(batch);
    ref.apply(batch);
    const int a = action(rng);
    if (a == 0) h.flush();  // exercise deep-level block replacement
    if (a <= 3 || s + 1 == steps) {
      snaps.push_back(h.freeze());
      maps.push_back(ref.cells());
    }
  }
  ASSERT_GE(snaps.size(), 2u);

  auto check_pair = [&](std::size_t i, std::size_t j) {
    auto d = hier::snapshot_diff(snaps[i], snaps[j]);
    expect_delta_matches_oracle(maps[i], maps[j], d);
    EXPECT_TRUE(d.removed.empty())
        << "epoch-ordered pairs from one source never remove entries";
    EXPECT_EQ(d.epoch_from, snaps[i].epoch());
    EXPECT_EQ(d.epoch_to, snaps[j].epoch());
    // Bit-exact patch property: old Σ Ai + delta == new Σ Ai.
    auto patched = apply_patch(snaps[i].to_matrix(), d);
    EXPECT_TRUE(gbx::equal(patched, snaps[j].to_matrix()));
  };

  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) check_pair(i, i + 1);
  check_pair(0, snaps.size() - 1);          // long-range pair
  std::uniform_int_distribution<std::size_t> pick(0, snaps.size() - 1);
  for (int k = 0; k < 4; ++k) {             // random ordered pair
    auto i = pick(rng), j = pick(rng);
    if (i > j) std::swap(i, j);
    check_pair(i, j);
  }
}

TEST(DeltaProperties, OracleDiffPlusDouble) {
  HHGBX_PROP_SEED(seed, kSeedOracle);
  run_delta_oracle_property<double, gbx::PlusMonoid<double>>(seed, 60, 300);
}

TEST(DeltaProperties, OracleDiffPlusInt64) {
  HHGBX_PROP_SEED(seed, kSeedOracle ^ 0x11);
  run_delta_oracle_property<std::int64_t, gbx::PlusMonoid<std::int64_t>>(
      seed, 50, 250);
}

TEST(DeltaProperties, OracleDiffMinInt64) {
  HHGBX_PROP_SEED(seed, kSeedOracle ^ 0x22);
  run_delta_oracle_property<std::int64_t, gbx::MinMonoid<std::int64_t>>(
      seed, 50, 250);
}

TEST(DeltaProperties, OracleDiffMaxInt64) {
  HHGBX_PROP_SEED(seed, kSeedOracle ^ 0x33);
  run_delta_oracle_property<std::int64_t, gbx::MaxMonoid<std::int64_t>>(
      seed, 50, 250);
}

// ---------------------------------------------------------------------------
// Incremental-vs-full equivalence (Σ Ai / summarize / PageRank / triangles)
// ---------------------------------------------------------------------------

void run_incremental_equivalence(std::uint64_t seed, bool warm_start) {
  std::mt19937_64 rng(seed);
  const Index dim = 1 << 12;
  HierMatrix<double> h(dim, dim, CutPolicy::geometric(4, 512, 8));

  analytics::IncrementalOptions opt;
  opt.pagerank.tol = 1e-12;
  opt.pagerank.max_iters = 300;
  opt.pagerank_warm_start = warm_start;
  analytics::IncrementalEngine<HierMatrix<double>> eng(h, opt);

  // Warmup bulk, then small churn windows refreshed incrementally.
  for (int k = 0; k < 40; ++k) h.update(proptest::random_batch<double>(rng, 300, 400));
  eng.refresh();
  EXPECT_TRUE(eng.last_report().full_recompute);

  for (int window = 0; window < 6; ++window) {
    h.update(proptest::random_batch<double>(rng, 300, 25));
    const auto& rep = eng.refresh();
    EXPECT_FALSE(rep.full_recompute) << "window " << window;

    // Full recompute from the same snapshot the engine analyzed.
    auto full = eng.snapshot().to_matrix();
    EXPECT_TRUE(gbx::equal(eng.sum(), full)) << "Σ Ai must be bit-identical";
    EXPECT_EQ(eng.triangles(), algo::triangle_count(full));

    auto fs = analytics::summarize(full);
    EXPECT_EQ(eng.summary().links, fs.links);
    EXPECT_EQ(eng.summary().sources, fs.sources);
    EXPECT_EQ(eng.summary().destinations, fs.destinations);
    EXPECT_EQ(eng.summary().max_link, fs.max_link);
    EXPECT_NEAR(eng.summary().packets, fs.packets,
                1e-9 * (1.0 + std::abs(fs.packets)));

    auto pr_opt = opt.pagerank;
    pr_opt.warm_start = nullptr;
    auto full_pr = algo::pagerank(full, pr_opt);
    ASSERT_EQ(eng.pagerank().ranks.size(), full_pr.ranks.size());
    if (warm_start) {
      // Warm-started iteration converges to the same fixed point within
      // the tolerance, not bit-identically.
      std::map<Index, double> got;
      for (const auto& [v, r] : eng.pagerank().ranks) got[v] = r;
      for (const auto& [v, r] : full_pr.ranks) {
        ASSERT_TRUE(got.count(v));
        EXPECT_NEAR(got[v], r, 1e-8);
      }
    } else {
      // Exact mode: cold rerun on a bit-identical matrix — the whole
      // result (ordering included) must match bit-for-bit.
      for (std::size_t k = 0; k < full_pr.ranks.size(); ++k) {
        EXPECT_EQ(eng.pagerank().ranks[k].first, full_pr.ranks[k].first);
        EXPECT_EQ(eng.pagerank().ranks[k].second, full_pr.ranks[k].second);
      }
    }
  }
  EXPECT_EQ(eng.full_recomputes(), 1u);
  EXPECT_EQ(eng.refreshes(), 7u);
}

TEST(IncrementalAnalytics, MatchesFullRecomputeExactMode) {
  HHGBX_PROP_SEED(seed, kSeedIncr);
  run_incremental_equivalence(seed, /*warm_start=*/false);
}

TEST(IncrementalAnalytics, MatchesFullRecomputeWarmStart) {
  HHGBX_PROP_SEED(seed, kSeedIncr ^ 0x44);
  run_incremental_equivalence(seed, /*warm_start=*/true);
}

TEST(IncrementalAnalytics, ReverseEdgesAndSelfLoopsStillUpdatePageRank) {
  // PageRank's pattern is the DIRECTED stored structure with self-loops;
  // the triangle adjacency is undirected without them. A delta that adds
  // only a reverse direction or a self-loop creates no new undirected
  // edge but must still rerun PageRank (regression: the update was once
  // gated on the triangle counter).
  HierMatrix<double> h(64, 64, CutPolicy::geometric(2, 32, 4));
  analytics::IncrementalOptions opt;
  opt.pagerank_warm_start = false;  // bit-identical mode
  opt.pagerank.tol = 1e-12;
  analytics::IncrementalEngine<HierMatrix<double>> eng(h, opt);

  h.update(1, 2, 1.0);
  h.update(2, 3, 1.0);
  h.update(3, 1, 1.0);
  eng.refresh();

  auto check_exact = [&] {
    auto full = eng.snapshot().to_matrix();
    auto pr_opt = opt.pagerank;
    auto full_pr = algo::pagerank(full, pr_opt);
    ASSERT_EQ(eng.pagerank().ranks.size(), full_pr.ranks.size());
    for (std::size_t k = 0; k < full_pr.ranks.size(); ++k) {
      EXPECT_EQ(eng.pagerank().ranks[k].first, full_pr.ranks[k].first);
      EXPECT_EQ(eng.pagerank().ranks[k].second, full_pr.ranks[k].second);
    }
    EXPECT_EQ(eng.triangles(), algo::triangle_count(full));
  };

  h.update(2, 1, 1.0);  // reverse of an existing edge: no new undirected edge
  auto rep = eng.refresh();
  EXPECT_EQ(rep.new_edges, 0u);
  check_exact();

  h.update(3, 3, 1.0);  // self-loop: invisible to triangles, not to pagerank
  rep = eng.refresh();
  EXPECT_EQ(rep.new_edges, 0u);
  check_exact();
}

TEST(IncrementalAnalytics, IdleRefreshReusesEverything) {
  HierMatrix<double> h(1 << 10, 1 << 10, CutPolicy::geometric(3, 128, 8));
  std::mt19937_64 rng(11);
  for (int k = 0; k < 20; ++k) h.update(proptest::random_batch<double>(rng, 200, 100));
  analytics::IncrementalEngine<HierMatrix<double>> eng(h);
  eng.refresh();
  const auto before = eng.pagerank().ranks;
  const auto& rep = eng.refresh();  // no updates in between
  EXPECT_FALSE(rep.full_recompute);
  EXPECT_EQ(rep.added + rep.changed, 0u);
  EXPECT_EQ(rep.delta.levels_reused, rep.delta.levels_total);
  EXPECT_EQ(rep.pagerank_iterations, 0) << "unchanged pattern reuses ranks";
  ASSERT_EQ(eng.pagerank().ranks.size(), before.size());
  for (std::size_t k = 0; k < before.size(); ++k)
    EXPECT_EQ(eng.pagerank().ranks[k].second, before[k].second);
}

// ---------------------------------------------------------------------------
// SnapshotSet diffs (ShardedHier parts) + incremental engine over shards
// ---------------------------------------------------------------------------

TEST(DeltaProperties, ShardedSetDiffPatchesExactly) {
  HHGBX_PROP_SEED(seed, kSeedSharded);
  std::mt19937_64 rng(seed);
  hier::ShardedHier<double> sh(4, 1 << 10, 1 << 10,
                               CutPolicy::geometric(3, 128, 8));
  std::vector<hier::ShardedSnapshot<double>> snaps;
  for (int k = 0; k < 30; ++k) {
    sh.update(proptest::random_batch<double>(rng, 300, 120));
    if (k % 6 == 0 || k == 29) snaps.push_back(sh.freeze());
  }
  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) {
    auto d = hier::snapshot_diff(snaps[i], snaps[i + 1]);
    EXPECT_TRUE(d.removed.empty());
    auto patched = apply_patch(snaps[i].to_matrix(), d);
    EXPECT_TRUE(gbx::equal(patched, snaps[i + 1].to_matrix()));
  }
  // Quiescent back-to-back freezes reuse every shard's blocks.
  auto a = sh.freeze();
  auto b = sh.freeze();
  auto d = hier::snapshot_diff(a, b);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.stats.levels_reused, d.stats.levels_total);
}

TEST(IncrementalAnalytics, WorksOverShardedSource) {
  std::mt19937_64 rng(23);
  hier::ShardedHier<double> sh(3, 1 << 10, 1 << 10,
                               CutPolicy::geometric(3, 128, 8));
  analytics::IncrementalOptions opt;
  opt.pagerank_warm_start = false;  // assert the bit-identical mode
  opt.pagerank.tol = 1e-12;
  analytics::IncrementalEngine<hier::ShardedHier<double>> eng(sh, opt);
  for (int k = 0; k < 15; ++k) sh.update(proptest::random_batch<double>(rng, 200, 150));
  eng.refresh();
  for (int w = 0; w < 3; ++w) {
    sh.update(proptest::random_batch<double>(rng, 200, 20));
    eng.refresh();
    auto full = eng.snapshot().to_matrix();
    EXPECT_TRUE(gbx::equal(eng.sum(), full));
    EXPECT_EQ(eng.triangles(), algo::triangle_count(full));
  }
  EXPECT_EQ(eng.full_recomputes(), 1u);
}

// ---------------------------------------------------------------------------
// Pinned-memory accounting + staleness hook (ISSUE 3 satellite)
// ---------------------------------------------------------------------------

TEST(SnapshotMemory, DedupesAliasedBlocks) {
  gbx::Matrix<double> m(64, 64);
  for (int k = 0; k < 32; ++k) m.set_element(k, k, 1.0);
  auto v = m.view();
  // Two levels aliasing one block must count it once.
  hier::HierSnapshot<double> snap(64, 64, {v, v}, {8, 16}, hier::HierStats{},
                                  1);
  EXPECT_EQ(snap.memory_bytes(), v.memory_bytes());
  EXPECT_GT(snap.memory_bytes(), 0u);
}

TEST(SnapshotMemory, PinnedVsLiveTracksFolds) {
  HierMatrix<double> h(1 << 10, 1 << 10, CutPolicy::geometric(3, 64, 4));
  std::mt19937_64 rng(31);
  for (int k = 0; k < 30; ++k) h.update(proptest::random_batch<double>(rng, 200, 80));
  auto snap = h.freeze();
  EXPECT_EQ(snap.stats().memory_bytes, snap.memory_bytes())
      << "freeze records its deduped footprint in HierStats";

  // Immediately after freeze every snapshot block is the live block.
  auto m0 = hier::snapshot_memory(snap, h);
  EXPECT_EQ(m0.total_bytes, snap.memory_bytes());
  EXPECT_EQ(m0.pinned_bytes, 0u);
  EXPECT_EQ(m0.live_bytes, m0.total_bytes);

  // Stream enough churn that folds replace the frozen blocks: the
  // snapshot now pins bytes the live matrix has moved past.
  for (int k = 0; k < 60; ++k) h.update(proptest::random_batch<double>(rng, 200, 80));
  h.flush();
  auto m1 = hier::snapshot_memory(snap, h);
  EXPECT_EQ(m1.total_bytes, m0.total_bytes) << "snapshot is immutable";
  EXPECT_EQ(m1.live_bytes + m1.pinned_bytes, m1.total_bytes);
  EXPECT_GT(m1.pinned_bytes, 0u) << "folded-past blocks are reader-pinned";
}

TEST(SnapshotMemory, ShardedAccountingCoversAllParts) {
  hier::ShardedHier<double> sh(4, 1 << 10, 1 << 10,
                               CutPolicy::geometric(3, 64, 4));
  std::mt19937_64 rng(37);
  for (int k = 0; k < 20; ++k) sh.update(proptest::random_batch<double>(rng, 300, 100));
  auto snap = sh.freeze();
  auto m0 = sh.snapshot_memory(snap);
  EXPECT_EQ(m0.total_bytes, snap.memory_bytes());
  EXPECT_EQ(m0.pinned_bytes, 0u);
  for (int k = 0; k < 60; ++k) sh.update(proptest::random_batch<double>(rng, 300, 100));
  auto m1 = sh.snapshot_memory(snap);
  EXPECT_EQ(m1.live_bytes + m1.pinned_bytes, m1.total_bytes);
  EXPECT_GT(m1.pinned_bytes, 0u);
}

TEST(SnapshotMemory, StalenessHookFiresForLaggingReaders) {
  HierMatrix<double> h(256, 256, CutPolicy::geometric(2, 32, 4));
  hier::SnapshotEngine<HierMatrix<double>> eng(h);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> warnings;
  eng.set_staleness_hook(3, [&](std::uint64_t held, std::uint64_t cur) {
    warnings.emplace_back(held, cur);
  });

  h.update(1, 1, 1.0);
  auto held = eng.acquire();
  EXPECT_FALSE(eng.check_staleness(held)) << "fresh snapshot is not stale";

  for (int k = 0; k < 10; ++k) h.update(k % 9, k % 7, 1.0);
  (void)eng.acquire();
  EXPECT_TRUE(eng.check_staleness(held));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].first, held.epoch());
  EXPECT_EQ(warnings[0].second, eng.last_epoch());

  // The incremental engine self-reports the snapshot it carries.
  analytics::IncrementalEngine<HierMatrix<double>> inc(h);
  std::size_t inc_warnings = 0;
  inc.snapshots().set_staleness_hook(
      0, [&](std::uint64_t, std::uint64_t) { ++inc_warnings; });
  inc.refresh();
  h.update(2, 3, 1.0);
  inc.refresh();
  EXPECT_EQ(inc_warnings, 1u);
}

}  // namespace
