// Failure-injection tests: corrupted serialization payloads, hostile
// MatrixMarket input, and resource-exhaustion guards. A storage layer
// must fail with a diagnosable exception, never crash or silently
// deliver wrong data.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "gbx/gbx.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

std::string serialized_fixture() {
  Matrix<double> m(1u << 20, 1u << 20);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Index> coord(0, (1u << 20) - 1);
  for (int k = 0; k < 500; ++k)
    m.set_element(coord(rng), coord(rng), static_cast<double>(k));
  std::ostringstream os;
  gbx::serialize(os, m);
  return os.str();
}

// Parameterized over corruption position (as a fraction of the payload):
// a single flipped byte anywhere must either round-trip to an equal
// matrix (benign value-bit flip in a double) or throw — never crash,
// never return a structurally invalid matrix.
class CorruptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionSweep, FlippedByteNeverCrashes) {
  const std::string good = serialized_fixture();
  std::string bad = good;
  const auto pos = static_cast<std::size_t>(GetParam() *
                                            static_cast<double>(bad.size() - 1));
  bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);

  std::istringstream is(bad);
  try {
    auto m = gbx::deserialize<double>(is);
    // If it parsed, the structure must still be valid (value corruption
    // in the vals array is undetectable by design; structure is not).
    EXPECT_TRUE(m.validate());
  } catch (const gbx::Error&) {
    // rejected with a diagnosable error: acceptable
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, CorruptionSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.12, 0.25, 0.5,
                                           0.75, 0.9, 0.99));

TEST(Truncation, EveryPrefixRejectedOrValid) {
  const std::string good = serialized_fixture();
  for (double frac : {0.0, 0.1, 0.3, 0.6, 0.9, 0.999}) {
    const auto n = static_cast<std::size_t>(frac * static_cast<double>(good.size()));
    std::istringstream is(good.substr(0, n));
    EXPECT_THROW(gbx::deserialize<double>(is), gbx::Error) << "prefix " << n;
  }
}

TEST(HostileMatrixMarket, LiesAboutCounts) {
  // Header claims more entries than the body provides.
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "10 10 1000000\n"
     << "1 1 1.0\n";
  EXPECT_THROW(gbx::read_matrix_market<double>(ss), gbx::Error);
}

TEST(HostileMatrixMarket, CoordinatesBeyondHeaderDims) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "4 4 1\n"
     << "9 9 1.0\n";
  EXPECT_THROW(gbx::read_matrix_market<double>(ss), gbx::Error);
}

TEST(CheckpointCorruption, LevelCountMismatchRejected) {
  hier::HierMatrix<double> h(100, 100, hier::CutPolicy({10, 100}));
  h.update(1, 1, 1.0);
  std::stringstream ss;
  hier::checkpoint(ss, h);
  std::string payload = ss.str();
  // Flip a byte in the cuts region (just after the two dim fields).
  payload[8 + 8 + 8 + 2] ^= 0x01;
  std::istringstream is(payload);
  try {
    auto restored = hier::restore<double>(is);
    EXPECT_TRUE(restored.snapshot().validate());
  } catch (const gbx::Error&) {
  }
}

TEST(Guards, CutOverflowRejected) {
  EXPECT_THROW(hier::CutPolicy::geometric(40, 1u << 30, 1u << 20),
               gbx::InvalidValue);
}

TEST(Guards, EmptyBatchesAreFine) {
  hier::HierMatrix<double> h(100, 100, hier::CutPolicy({10}));
  gbx::Tuples<double> empty;
  h.update(empty);  // must be a harmless no-entry update
  EXPECT_EQ(h.snapshot().nvals(), 0u);
  EXPECT_EQ(h.stats().updates, 1u);
}

TEST(Guards, DuplicateOnlyBatches) {
  // A batch of 10K copies of one coordinate must collapse to one entry
  // and never overflow any level.
  hier::HierMatrix<double> h(100, 100, hier::CutPolicy({64, 512}));
  gbx::Tuples<double> dup;
  for (int k = 0; k < 10000; ++k) dup.push_back(7, 7, 1.0);
  h.update(dup);
  auto snap = h.snapshot();
  EXPECT_EQ(snap.nvals(), 1u);
  EXPECT_DOUBLE_EQ(snap.extract_element(7, 7).value(), 10000.0);
}

}  // namespace
