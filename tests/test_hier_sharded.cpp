// Tests for ShardedHier: correctness vs single hierarchy, and true
// multi-threaded ingest into one logical matrix.
#include <gtest/gtest.h>

#include <omp.h>

#include <random>

#include "gbx/gbx.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using hier::CutPolicy;
using hier::ShardedHier;

TEST(Sharded, MatchesSingleHierarchy) {
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.seed = 5;
  gen::PowerLawGenerator g(pp);

  ShardedHier<double> sharded(8, pp.dim, pp.dim, CutPolicy::geometric(3, 256, 8));
  hier::HierMatrix<double> single(pp.dim, pp.dim, CutPolicy::geometric(3, 256, 8));

  for (int s = 0; s < 10; ++s) {
    auto batch = g.batch<double>(2000);
    sharded.update(batch);
    single.update(batch);
  }
  EXPECT_TRUE(gbx::equal(sharded.snapshot(), single.snapshot()));
  EXPECT_EQ(sharded.entries_appended(), single.stats().entries_appended);
}

TEST(Sharded, SingleShardDegenerate) {
  ShardedHier<double> one(1, 100, 100, CutPolicy({10}));
  one.update(3, 4, 1.5);
  one.update(3, 4, 2.5);
  EXPECT_DOUBLE_EQ(one.snapshot().extract_element(3, 4).value(), 4.0);
  EXPECT_THROW(ShardedHier<double>(0, 100, 100, CutPolicy({10})),
               gbx::InvalidValue);
}

TEST(Sharded, ConcurrentWritersProduceExactTotal) {
  // T threads hammer the same logical matrix concurrently; the final
  // value must equal the serial accumulation of all updates (monoid
  // commutativity makes interleaving unobservable).
  const int threads = std::min(8, omp_get_max_threads());
  const int per_thread = 20000;
  ShardedHier<double> m(16, 1u << 20, 1u << 20,
                        CutPolicy::geometric(3, 512, 8));

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel num_threads(threads)
  {
    gbx::OmpRegionGuard tsan_region;
    const int tid = omp_get_thread_num();
    std::mt19937_64 rng(static_cast<std::uint64_t>(tid) + 1);
    std::uniform_int_distribution<Index> coord(0, 1023);
    for (int k = 0; k < per_thread; ++k)
      m.update(coord(rng), coord(rng), 1.0);
  }

  EXPECT_EQ(m.entries_appended(),
            static_cast<std::uint64_t>(threads) * per_thread);
  // Total packet mass is exactly #updates (each carries weight 1).
  auto snap = m.snapshot();
  const double total = gbx::reduce_scalar<gbx::PlusMonoid<double>>(snap);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(threads) * per_thread);
}

TEST(Sharded, ConcurrentBatchesMatchSerialReplay) {
  const int threads = 4;
  const int batches = 10;
  ShardedHier<double> concurrent(8, 1u << 16, 1u << 16, CutPolicy({200, 2000}));
  hier::HierMatrix<double> serial(1u << 16, 1u << 16, CutPolicy({200, 2000}));

  // Pre-generate all batches so both sides see identical data.
  std::vector<gbx::Tuples<double>> all;
  for (int t = 0; t < threads; ++t) {
    gen::PowerLawParams pp;
    pp.scale = 10;
    pp.dim = 1u << 16;
    pp.seed = 100 + static_cast<std::uint64_t>(t);
    gen::PowerLawGenerator g(pp);
    for (int b = 0; b < batches; ++b) all.push_back(g.batch<double>(1000));
  }

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel num_threads(threads)
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (std::size_t k = 0; k < all.size(); ++k) concurrent.update(all[k]);
  }
  for (const auto& b : all) serial.update(b);

  EXPECT_TRUE(gbx::equal(concurrent.snapshot(), serial.snapshot()));
}

TEST(Sharded, BoundsChecked) {
  ShardedHier<double> m(4, 10, 10, CutPolicy({5}));
  EXPECT_THROW(m.update(10, 0, 1.0), gbx::IndexOutOfBounds);
}

}  // namespace
