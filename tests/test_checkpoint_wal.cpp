// End-to-end checkpoint + write-ahead-log recovery drill, the gap called
// out in ISSUE 1: hier::checkpoint round-trip through the store::wal
// write path. The scenario is a streaming ingest node that logs every
// entry to its WAL, checkpoints mid-stream to real storage (a file on
// disk), crashes, restores from the checkpoint, and replays the
// post-checkpoint suffix of the log. The restored matrix must be
// indistinguishable from the uninterrupted one: identical Σ Ai, identical
// per-level structure, identical cascade statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gbx/matrix_ops.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"
#include "store/wal.hpp"

namespace {

using gbx::Matrix;
using gbx::Tuples;
using hier::CutPolicy;
using hier::HierMatrix;

constexpr gbx::Index kDim = gbx::Index{1} << 17;

Tuples<double> make_batch(gen::KroneckerGenerator& g, std::size_t n,
                          store::WriteAheadLog& wal) {
  auto batch = g.batch<double>(n);
  // Real ingest logs before it applies; per-entry, like the database
  // baselines in cluster/scaling_harness.hpp.
  for (const auto& e : batch) wal.append({e.row, e.col}, e.val);
  return batch;
}

TEST(CheckpointWal, SaveRestoreIdenticalSum) {
  const auto cuts = CutPolicy::geometric(4, 512, 8);
  const std::size_t batches = 12, batch_size = 4000;

  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = 42;
  gen::KroneckerGenerator g(kp);
  store::WriteAheadLog wal;

  HierMatrix<double> h(kDim, kDim, cuts);
  for (std::size_t s = 0; s < batches; ++s) h.update(make_batch(g, batch_size, wal));
  EXPECT_EQ(wal.records(), batches * batch_size);
  EXPECT_EQ(wal.bytes_logged(),
            wal.records() * (sizeof(std::uint64_t) + sizeof(store::Key) +
                             sizeof(store::Value)));

  std::stringstream ss;
  hier::checkpoint(ss, h);
  auto restored = hier::restore<double>(ss);

  // Σ Ai identical — and not just the sum: every level matches, so the
  // restart is invisible to the cascade.
  EXPECT_TRUE(gbx::equal(restored.snapshot(), h.snapshot()));
  ASSERT_EQ(restored.num_levels(), h.num_levels());
  for (std::size_t i = 0; i < h.num_levels(); ++i)
    EXPECT_EQ(restored.level(i).nvals_bound(), h.level(i).nvals_bound());
  EXPECT_EQ(restored.stats().entries_appended, h.stats().entries_appended);
  EXPECT_EQ(restored.cut_policy().cuts(), h.cut_policy().cuts());
}

TEST(CheckpointWal, CrashRecoveryThroughDiskAndLogReplay) {
  const auto cuts = CutPolicy::geometric(3, 1024, 16);
  const std::size_t pre = 8, post = 7, batch_size = 5000;
  const std::string path = testing::TempDir() + "hhgbx_ckpt_wal.bin";

  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = 77;

  // The WAL suffix written after the checkpoint. The in-memory WAL model
  // does not read back, so the "log" we replay is the batches themselves,
  // retained exactly as a replayer would see them.
  std::vector<Tuples<double>> suffix;

  store::WriteAheadLog wal;
  HierMatrix<double> live(kDim, kDim, cuts);
  {
    gen::KroneckerGenerator g(kp);
    for (std::size_t s = 0; s < pre; ++s) live.update(make_batch(g, batch_size, wal));

    const std::uint64_t ckpt_lsn = wal.records();
    std::ofstream os(path, std::ios::binary);
    hier::checkpoint(os, live);
    os.close();
    ASSERT_TRUE(os.good());
    EXPECT_EQ(ckpt_lsn, pre * batch_size);

    for (std::size_t s = 0; s < post; ++s) {
      auto b = make_batch(g, batch_size, wal);
      suffix.push_back(b);
      live.update(b);
    }
    EXPECT_EQ(wal.records() - ckpt_lsn, post * batch_size);
  }

  // --- crash: all in-memory state gone; recover from disk + log suffix ---
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  auto recovered = hier::restore<double>(is);
  for (const auto& b : suffix) recovered.update(b);

  EXPECT_TRUE(gbx::equal(recovered.snapshot(), live.snapshot()));
  EXPECT_EQ(recovered.stats().entries_appended, live.stats().entries_appended);
  ASSERT_EQ(recovered.stats().level.size(), live.stats().level.size());
  for (std::size_t i = 0; i < live.stats().level.size(); ++i)
    EXPECT_EQ(recovered.stats().level[i].folds, live.stats().level[i].folds);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// hier::recover(): automatic checkpoint-epoch cut (ISSUE 3 satellite).
// The caller no longer tracks the checkpoint LSN by hand — recover()
// reads epoch E from the checkpoint and replays exactly the WAL records
// above it, rejecting torn, overlapping, and gapped suffixes.
// ---------------------------------------------------------------------------

TEST(CheckpointWal, RecoverCutsWalAtCheckpointEpochAutomatically) {
  const auto cuts = CutPolicy::geometric(3, 1024, 16);
  const std::size_t pre = 8, post = 7, batch_size = 5000;

  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = 99;
  gen::KroneckerGenerator g(kp);

  std::stringstream wal_ss, ckpt_ss;
  hier::BatchWal<double> wal(wal_ss);
  HierMatrix<double> live(kDim, kDim, cuts);

  for (std::size_t s = 0; s < pre; ++s)
    wal.log_and_update(live, g.batch<double>(batch_size));
  hier::checkpoint(ckpt_ss, live);
  for (std::size_t s = 0; s < post; ++s)
    wal.log_and_update(live, g.batch<double>(batch_size));
  EXPECT_EQ(wal.records(), pre + post);

  // --- crash: recover from the checkpoint + the FULL log. recover()
  // itself finds the cut (epoch E = pre) and skips the prefix.
  hier::RecoveryReport rep;
  auto recovered = hier::recover<double>(ckpt_ss, wal_ss, &rep);
  EXPECT_EQ(rep.checkpoint_epoch, pre);
  EXPECT_EQ(rep.skipped_records, pre);
  EXPECT_EQ(rep.replayed_records, post);
  EXPECT_EQ(rep.replayed_entries, post * batch_size);

  EXPECT_TRUE(gbx::equal(recovered.snapshot(), live.snapshot()));
  EXPECT_EQ(recovered.epoch(), live.epoch());
  EXPECT_EQ(recovered.stats().entries_appended, live.stats().entries_appended);
  ASSERT_EQ(recovered.stats().level.size(), live.stats().level.size());
  for (std::size_t i = 0; i < live.stats().level.size(); ++i)
    EXPECT_EQ(recovered.stats().level[i].folds, live.stats().level[i].folds);
}

TEST(CheckpointWal, RecoverRejectsTornSuffix) {
  std::stringstream wal_ss, ckpt_ss;
  hier::BatchWal<double> wal(wal_ss);
  HierMatrix<double> live(kDim, kDim, CutPolicy::geometric(2, 64, 2));

  gbx::Tuples<double> b;
  for (int k = 0; k < 50; ++k) b.push_back(k, k + 1, 1.0);
  wal.log_and_update(live, b);
  hier::checkpoint(ckpt_ss, live);
  wal.log_and_update(live, b);

  // A crash mid-append: drop the tail of the last record.
  std::string torn = wal_ss.str();
  torn.resize(torn.size() - 9);
  std::istringstream torn_ss(torn);
  EXPECT_THROW(hier::recover<double>(ckpt_ss, torn_ss), gbx::Error);
}

TEST(CheckpointWal, RecoverRejectsOverlappingSuffix) {
  std::stringstream wal_ss, ckpt_ss;
  hier::BatchWal<double> wal(wal_ss);
  HierMatrix<double> live(kDim, kDim, CutPolicy::geometric(2, 64, 2));
  hier::checkpoint(ckpt_ss, live);  // E = 0

  gbx::Tuples<double> b;
  b.push_back(1, 2, 3.0);
  wal.log(1, b);
  wal.log(2, b);
  wal.log(2, b);  // duplicate epoch: two writers on one log
  EXPECT_THROW(hier::recover<double>(ckpt_ss, wal_ss), gbx::Error);
}

TEST(CheckpointWal, RecoverRejectsGappedSuffix) {
  gbx::Tuples<double> b;
  b.push_back(1, 2, 3.0);

  // Gap at the cut: checkpoint says E=0 but the log starts at epoch 2.
  {
    std::stringstream wal_ss, ckpt_ss;
    hier::BatchWal<double> wal(wal_ss);
    HierMatrix<double> live(kDim, kDim, CutPolicy::geometric(2, 64, 2));
    hier::checkpoint(ckpt_ss, live);
    wal.log(2, b);
    EXPECT_THROW(hier::recover<double>(ckpt_ss, wal_ss), gbx::Error);
  }
  // Gap inside the suffix: epochs 1, 3.
  {
    std::stringstream wal_ss, ckpt_ss;
    hier::BatchWal<double> wal(wal_ss);
    HierMatrix<double> live(kDim, kDim, CutPolicy::geometric(2, 64, 2));
    hier::checkpoint(ckpt_ss, live);
    wal.log(1, b);
    wal.log(3, b);
    EXPECT_THROW(hier::recover<double>(ckpt_ss, wal_ss), gbx::Error);
  }
}

TEST(CheckpointWal, RecoverRejectsCorruptPayload) {
  std::stringstream wal_ss, ckpt_ss;
  hier::BatchWal<double> wal(wal_ss);
  HierMatrix<double> live(kDim, kDim, CutPolicy::geometric(2, 64, 2));
  hier::checkpoint(ckpt_ss, live);
  gbx::Tuples<double> b;
  for (int k = 0; k < 8; ++k) b.push_back(k, k, 1.0);
  wal.log(1, b);

  // Flip one payload byte: the record checksum must catch it.
  std::string blob = wal_ss.str();
  blob[3 * sizeof(std::uint64_t) + 5] ^= 0x5a;
  std::istringstream bad(blob);
  EXPECT_THROW(hier::recover<double>(ckpt_ss, bad), gbx::Error);
}

TEST(CheckpointWal, RestoreRejectsCorruptMagic) {
  std::stringstream ss;
  HierMatrix<double> h(kDim, kDim, CutPolicy::geometric(2, 64, 2));
  h.update(1, 2, 3.0);
  hier::checkpoint(ss, h);
  std::string blob = ss.str();
  blob[0] ^= 0x5a;  // corrupt the magic
  std::istringstream bad(blob);
  EXPECT_THROW(hier::restore<double>(bad), gbx::Error);
}

// ---------------------------------------------------------------------------
// Out-of-core tier vs crash recovery (ISSUE 7 satellite). Demotion moves
// the cold bottom level's bytes into a block store, but durability still
// belongs to checkpoint + WAL: hier::recover() never consults the store,
// so a crash at ANY point of a demotion — mid-run with blocks half
// written, or after the store write with the resident level already
// released — recovers to the bit-identical Σ Ai from the log alone.
// ---------------------------------------------------------------------------

// Backend that dies at the Nth write (the crash point lands inside a
// demotion's block loop).
class DyingBackend final : public store::BlockBackend {
 public:
  explicit DyingBackend(std::uint64_t fail_at) : fail_at_(fail_at) {}
  void write(store::BlockId id, const void* data, std::size_t size) override {
    GBX_CHECK(++writes_ != fail_at_, "injected crash mid-demotion");
    inner_.write(id, data, size);
  }
  bool read(store::BlockId id, std::string& out) override {
    return inner_.read(id, out);
  }
  void erase(store::BlockId id) override { inner_.erase(id); }
  std::vector<std::pair<store::BlockId, std::uint64_t>> entries()
      const override {
    return inner_.entries();
  }

 private:
  store::MemBackend inner_;
  std::uint64_t writes_ = 0, fail_at_;
};

TEST(CheckpointWal, RecoverAfterCrashMidDemotionIsBitIdentical) {
  const auto cuts = CutPolicy::geometric(3, 256, 8);
  const std::size_t pre = 5, post = 4, batch_size = 3000;

  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = 123;
  gen::KroneckerGenerator g(kp);

  std::stringstream wal_ss, ckpt_ss;
  hier::BatchWal<double> wal(wal_ss);

  // Huge segments: one block per demotion. The second block write dies,
  // so the first demotion succeeds and the final one crashes mid-run.
  store::BlockStore bstore(std::make_unique<DyingBackend>(2));
  HierMatrix<double> live(kDim, kDim, cuts);
  hier::DemotionConfig dcfg;
  dcfg.segment_bytes = 64u << 20;
  live.enable_demotion(&bstore, dcfg);
  HierMatrix<double> twin(kDim, kDim, cuts);  // never demotes, no WAL

  for (std::size_t s = 0; s < pre; ++s) {
    auto b = g.batch<double>(batch_size);
    wal.log_and_update(live, b);
    twin.update(b);
  }
  live.flush();
  twin.flush();
  ASSERT_TRUE(live.demote_now());  // succeeds (few blocks yet)
  hier::checkpoint(ckpt_ss, live);  // checkpoint WHILE demoted

  for (std::size_t s = 0; s < post; ++s) {
    auto b = g.batch<double>(batch_size);
    wal.log_and_update(live, b);
    twin.update(b);
  }
  live.flush();
  EXPECT_THROW(live.demote_now(), gbx::Error);  // crash mid-demotion

  // --- process dies here; recover from checkpoint + full WAL only ---
  hier::RecoveryReport rep;
  auto recovered = hier::recover<double>(ckpt_ss, wal_ss, &rep);
  EXPECT_EQ(rep.checkpoint_epoch, pre);
  EXPECT_EQ(rep.replayed_records, post);
  EXPECT_TRUE(gbx::equal(recovered.snapshot(), twin.snapshot()))
      << "recovery diverged from the never-demoted twin";
  EXPECT_EQ(recovered.epoch(), twin.epoch());
}

TEST(CheckpointWal, RecoverAfterCrashBetweenDemoteAndNextBatch) {
  // The converse ordering: the demotion COMPLETED (store written,
  // resident level released) and the process dies before anything else
  // lands. The store's contents are irrelevant to recovery.
  const auto cuts = CutPolicy::geometric(3, 256, 8);
  const std::size_t pre = 6, batch_size = 3000;

  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = 321;
  gen::KroneckerGenerator g(kp);

  std::stringstream wal_ss, ckpt_ss;
  hier::BatchWal<double> wal(wal_ss);
  auto bstore = store::make_mem_block_store();
  HierMatrix<double> live(kDim, kDim, cuts);
  live.enable_demotion(bstore.get());
  HierMatrix<double> twin(kDim, kDim, cuts);

  for (std::size_t s = 0; s < pre; ++s) {
    auto b = g.batch<double>(batch_size);
    wal.log_and_update(live, b);
    twin.update(b);
    if (s == 2) hier::checkpoint(ckpt_ss, live);
  }
  live.flush();
  ASSERT_TRUE(live.demote_now());
  ASSERT_TRUE(live.has_demoted());  // resident bottom gone, bytes in store

  // --- crash; the block store evaporates with the process ---
  auto recovered = hier::recover<double>(ckpt_ss, wal_ss);
  EXPECT_TRUE(gbx::equal(recovered.snapshot(), twin.snapshot()));
  EXPECT_TRUE(gbx::equal(recovered.snapshot(), live.snapshot()))
      << "demotion must not change the logical value the WAL reproduces";
}

// --- RecordFrameDecoder: the incremental frame decoder under the
// reader (and the network server's session codec). The contract under
// test: arbitrarily short reads are never misclassified as corruption
// — kNeedMore until the frame completes, byte-identical results to a
// whole-buffer decode, and corruption still detected at the earliest
// byte that can prove it.

std::string three_records() {
  std::ostringstream os;
  store::RecordLogWriter w(os);
  const std::string p1 = "alpha", p2 = "", p3(300, 'z');
  w.append(1, p1.data(), p1.size());
  w.append(2, p2.data(), p2.size());
  w.append(3, p3.data(), p3.size());
  return os.str();
}

TEST(RecordFrameDecoder, OneByteAtATimeMatchesWholeBufferDecode) {
  const std::string blob = three_records();
  store::RecordFrameDecoder dec;
  std::vector<store::LogRecord> got;
  store::LogRecord rec;
  for (char c : blob) {
    dec.feed(&c, 1);  // worst-case short read: a nonblocking socket
    for (;;) {
      const auto st = dec.next(rec);
      ASSERT_NE(st, store::RecordFrameDecoder::Status::kCorrupt)
          << dec.error();
      if (st != store::RecordFrameDecoder::Status::kFrame) break;
      got.push_back(rec);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(dec.buffered(), 0u);  // clean end: no torn tail
  EXPECT_EQ(dec.frames_decoded(), 3u);
  EXPECT_EQ(got[0].epoch, 1u);
  EXPECT_EQ(got[0].payload.size(), 5u);
  EXPECT_EQ(got[1].epoch, 2u);
  EXPECT_TRUE(got[1].payload.empty());
  EXPECT_EQ(got[2].epoch, 3u);
  EXPECT_EQ(got[2].payload.size(), 300u);
}

TEST(RecordFrameDecoder, PartialFrameIsNeedMoreNotCorrupt) {
  const std::string blob = three_records();
  // Every possible truncation point inside the final frame: the decoder
  // must report kNeedMore with bytes buffered — the torn-tail verdict
  // belongs to the caller, who alone knows the input ended. The final
  // record is 4 u64 framing words + its 300-byte payload.
  const std::size_t last_start = blob.size() - (4 * sizeof(std::uint64_t) + 300);
  for (std::size_t cut = last_start; cut < blob.size(); ++cut) {
    store::RecordFrameDecoder dec;
    dec.feed(blob.data(), cut);
    store::LogRecord rec;
    std::size_t frames = 0;
    for (;;) {
      const auto st = dec.next(rec);
      ASSERT_NE(st, store::RecordFrameDecoder::Status::kCorrupt)
          << "cut at " << cut << ": " << dec.error();
      if (st != store::RecordFrameDecoder::Status::kFrame) break;
      ++frames;
    }
    EXPECT_EQ(frames, 2u) << "cut at " << cut;
    EXPECT_EQ(dec.buffered() > 0, cut > last_start) << "cut at " << cut;
  }
}

TEST(RecordFrameDecoder, BadMagicIsCorruptAtEightBytes) {
  store::RecordFrameDecoder dec;
  const char junk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  dec.feed(junk, 4);
  store::LogRecord rec;
  EXPECT_EQ(dec.next(rec), store::RecordFrameDecoder::Status::kNeedMore);
  dec.feed(junk + 4, 4);  // eight garbage bytes: provably not a frame
  EXPECT_EQ(dec.next(rec), store::RecordFrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(dec.corrupt());
  EXPECT_NE(dec.error().find("magic"), std::string::npos);
  // Poisoned: more bytes never un-corrupt it.
  dec.feed(junk, 8);
  EXPECT_EQ(dec.next(rec), store::RecordFrameDecoder::Status::kCorrupt);
}

TEST(RecordFrameDecoder, ChecksumMismatchIsCorrupt) {
  std::string blob = three_records();
  blob[3 * sizeof(std::uint64_t) + 2] ^= 0x40;  // first record's payload
  store::RecordFrameDecoder dec;
  dec.feed(blob.data(), blob.size());
  store::LogRecord rec;
  EXPECT_EQ(dec.next(rec), store::RecordFrameDecoder::Status::kCorrupt);
  EXPECT_NE(dec.error().find("checksum"), std::string::npos);
}

TEST(RecordFrameDecoder, PayloadCapRejectsAbsurdSizes) {
  std::ostringstream os;
  store::RecordLogWriter w(os);
  const std::string big(4096, 'x');
  w.append(7, big.data(), big.size());
  const std::string blob = os.str();

  store::RecordFrameDecoder capped(1024);
  capped.feed(blob.data(), blob.size());
  store::LogRecord rec;
  EXPECT_EQ(capped.next(rec), store::RecordFrameDecoder::Status::kCorrupt);
  EXPECT_NE(capped.error().find("exceeds"), std::string::npos);

  store::RecordFrameDecoder roomy(4096);
  roomy.feed(blob.data(), blob.size());
  EXPECT_EQ(roomy.next(rec), store::RecordFrameDecoder::Status::kFrame);
  EXPECT_EQ(rec.payload.size(), 4096u);
}

TEST(RecordFrameDecoder, ReaderStillClassifiesTornVersusCorrupt) {
  // The stream reader built on the decoder must preserve its historical
  // verdicts: clean logs replay, torn tails and corruption throw with
  // the same messages recover() relies on.
  const std::string blob = three_records();
  {
    std::istringstream is(blob);
    store::RecordLogReader r(is);
    std::size_t n = 0;
    while (r.next()) ++n;
    EXPECT_EQ(n, 3u);
  }
  {
    std::istringstream is(blob.substr(0, blob.size() - 3));
    store::RecordLogReader r(is);
    EXPECT_NO_THROW(r.next());
    EXPECT_NO_THROW(r.next());
    EXPECT_THROW(r.next(), gbx::Error);  // torn tail
  }
}

}  // namespace
