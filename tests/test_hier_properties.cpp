// Property tests for the central claim of the paper's Section II: the
// hierarchical cascade is *exactly* equivalent to direct accumulation,
// for any stream, any cut schedule, and any number of levels, because
// GraphBLAS addition is a commutative monoid ("the strong mathematical
// properties of the GraphBLAS allow a hierarchical implementation ...
// via simple addition").
//
// Seeds are pinned (reproducible by default) and perturbed by the
// HHGBX_SEED environment variable, under which CTest re-runs this whole
// suite several times; failures always print the effective seed.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "gen/gen.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::Tuples;
using hier::CutPolicy;
using hier::HierMatrix;

struct Config {
  std::size_t levels;
  std::size_t base;
  std::size_t ratio;
  std::size_t batches;
  std::size_t batch_size;
  int scale;
  std::uint64_t seed;
};

class HierEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(HierEquivalence, SnapshotEqualsDirectAccumulation) {
  const Config c = GetParam();
  HHGBX_PROP_SEED(seed, c.seed);
  gen::PowerLawParams pp;
  pp.scale = c.scale;
  pp.dim = gbx::kIPv4Dim;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);

  HierMatrix<double> h(pp.dim, pp.dim,
                       CutPolicy::geometric(c.levels, c.base, c.ratio));
  Matrix<double> direct(pp.dim, pp.dim);

  for (std::size_t s = 0; s < c.batches; ++s) {
    auto batch = g.batch<double>(c.batch_size);
    h.update(batch);
    direct.append(batch);
  }
  direct.materialize();

  auto snap = h.snapshot();
  EXPECT_TRUE(gbx::equal(snap, direct))
      << "hierarchical sum diverged from direct accumulation";
  EXPECT_TRUE(snap.validate());
}

TEST_P(HierEquivalence, CollapseEqualsSnapshot) {
  const Config c = GetParam();
  HHGBX_PROP_SEED(seed, c.seed + 77);
  gen::PowerLawParams pp;
  pp.scale = c.scale;
  pp.dim = gbx::kIPv4Dim;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);

  HierMatrix<double> h(pp.dim, pp.dim,
                       CutPolicy::geometric(c.levels, c.base, c.ratio));
  for (std::size_t s = 0; s < c.batches; ++s)
    h.update(g.batch<double>(c.batch_size));

  auto snap = h.snapshot();
  const auto& collapsed = h.collapse();
  EXPECT_TRUE(gbx::equal(snap, collapsed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierEquivalence,
    ::testing::Values(
        // levels base ratio batches batch_size scale seed
        Config{2, 64, 4, 10, 500, 10, 1},       // minimal hierarchy
        Config{3, 128, 8, 20, 1000, 12, 2},     // typical
        Config{4, 256, 8, 20, 2000, 14, 3},     // deep
        Config{5, 32, 2, 30, 300, 10, 4},       // slow growth, many folds
        Config{6, 16, 2, 40, 100, 8, 5},        // tiny cuts, dup-heavy
        Config{3, 100000, 10, 10, 1000, 12, 6}, // cuts never hit (no folds)
        Config{4, 64, 16, 25, 1500, 16, 7}));   // wide fanout

// Cross-monoid property: the equivalence holds for any commutative
// monoid, not just plus.
template <class M>
void check_monoid_equivalence(std::uint64_t pinned) {
  HHGBX_PROP_SEED(seed, pinned);
  using T = typename M::value_type;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> coord(0, 255);
  std::uniform_int_distribution<int> val(-5, 5);

  HierMatrix<T, M> h(256, 256, CutPolicy({7, 31}));
  std::map<std::pair<Index, Index>, T> model;
  for (int k = 0; k < 5000; ++k) {
    const Index i = coord(rng), j = coord(rng);
    const T v = static_cast<T>(val(rng));
    h.update(i, j, v);
    auto [it, fresh] = model.try_emplace({i, j}, v);
    if (!fresh) it->second = M::apply(it->second, v);
  }
  auto snap = h.snapshot();
  ASSERT_EQ(snap.nvals(), model.size());
  for (const auto& [k, v] : model)
    EXPECT_EQ(snap.extract_element(k.first, k.second).value(), v);
}

TEST(HierMonoids, PlusInt64) {
  check_monoid_equivalence<gbx::PlusMonoid<std::int64_t>>(11);
}
TEST(HierMonoids, MinInt64) {
  check_monoid_equivalence<gbx::MinMonoid<std::int64_t>>(12);
}
TEST(HierMonoids, MaxInt64) {
  check_monoid_equivalence<gbx::MaxMonoid<std::int64_t>>(13);
}
TEST(HierMonoids, LorInt) {
  check_monoid_equivalence<gbx::LorMonoid<int>>(14);
}

// Interleaving property: queries interleaved with updates never perturb
// the final value (snapshot is pure).
TEST(HierInterleaving, QueriesDoNotPerturb) {
  HHGBX_PROP_SEED(seed, 99);
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);

  HierMatrix<double> h1(pp.dim, pp.dim, CutPolicy::geometric(4, 128, 8));
  HierMatrix<double> h2(pp.dim, pp.dim, CutPolicy::geometric(4, 128, 8));
  gen::PowerLawParams pp2 = pp;
  gen::PowerLawGenerator g2(pp2);

  for (int s = 0; s < 15; ++s) {
    auto b1 = g.batch<double>(700);
    auto b2 = g2.batch<double>(700);
    h1.update(b1);
    h2.update(b2);
    if (s % 3 == 0) (void)h2.snapshot();  // extra queries on h2 only
    if (s % 5 == 0) h2.flush();           // and forced flushes
  }
  EXPECT_TRUE(gbx::equal(h1.snapshot(), h2.snapshot()));
}

// Fold-order property: explicit vs geometric cut schedules with the same
// stream agree (fold timing must be unobservable in the result).
TEST(HierFoldOrder, DifferentCutsSameResult) {
  HHGBX_PROP_SEED(seed, 123);
  gen::PowerLawParams pp;
  pp.scale = 13;
  pp.seed = seed;

  std::vector<CutPolicy> policies{
      CutPolicy({10}),
      CutPolicy({100, 10000}),
      CutPolicy::geometric(5, 50, 4),
      CutPolicy({1, 2, 3, 4, 5}),  // pathological: cascade nearly every update
  };

  std::vector<Matrix<double>> results;
  for (const auto& pol : policies) {
    gen::PowerLawGenerator g(pp);  // identical stream each time
    HierMatrix<double> h(pp.dim, pp.dim, pol);
    for (int s = 0; s < 8; ++s) h.update(g.batch<double>(400));
    results.push_back(h.snapshot());
  }
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_TRUE(gbx::equal(results[0], results[i]))
        << "cut policy " << i << " changed the accumulated value";
}

// Memory property: with geometric cuts, lower levels stay bounded while
// the stream grows — the "fast memory stays small" guarantee of Fig. 1.
TEST(HierMemory, LowLevelsBounded) {
  HHGBX_PROP_SEED(seed, 5);
  gen::PowerLawParams pp;
  pp.scale = 16;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);
  const std::size_t c1 = 1000, ratio = 10;
  HierMatrix<double> h(pp.dim, pp.dim, CutPolicy::geometric(4, c1, ratio));
  for (int s = 0; s < 50; ++s) {
    h.update(g.batch<double>(2000));
    // After each batched update+cascade, level 0 holds at most c1 worth
    // of entries plus the batch that just landed (cascade triggers only
    // when the bound exceeds the cut).
    EXPECT_LE(h.level_entries(0), c1 + 2000);
    EXPECT_LE(h.level_entries(1), c1 * ratio + c1 + 2000);
  }
  EXPECT_GT(h.stats().level[0].folds, 5u);
}

}  // namespace
