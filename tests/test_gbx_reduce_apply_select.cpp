// Tests for reductions, apply, select and transpose.
#include <gtest/gtest.h>

#include <random>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

Matrix<double> fixture() {
  //     0    1    2
  // 0 [ 1         2 ]
  // 5 [      3      ]
  // 9 [ 4    5    6 ]   (rows 0,5,9 of a 10x3 matrix)
  Matrix<double> m(10, 3);
  m.set_element(0, 0, 1);
  m.set_element(0, 2, 2);
  m.set_element(5, 1, 3);
  m.set_element(9, 0, 4);
  m.set_element(9, 1, 5);
  m.set_element(9, 2, 6);
  m.materialize();
  return m;
}

TEST(Reduce, ScalarPlus) {
  auto m = fixture();
  EXPECT_DOUBLE_EQ((gbx::reduce_scalar<gbx::PlusMonoid<double>>(m)), 21.0);
}

TEST(Reduce, ScalarMinMax) {
  auto m = fixture();
  EXPECT_DOUBLE_EQ((gbx::reduce_scalar<gbx::MinMonoid<double>>(m)), 1.0);
  EXPECT_DOUBLE_EQ((gbx::reduce_scalar<gbx::MaxMonoid<double>>(m)), 6.0);
}

TEST(Reduce, ScalarEmptyIsIdentity) {
  Matrix<double> m(4, 4);
  EXPECT_DOUBLE_EQ((gbx::reduce_scalar<gbx::PlusMonoid<double>>(m)), 0.0);
}

TEST(Reduce, Rows) {
  auto m = fixture();
  auto r = gbx::reduce_rows<gbx::PlusMonoid<double>>(m);
  EXPECT_EQ(r.nvals(), 3u);  // hypersparse: only non-empty rows
  EXPECT_DOUBLE_EQ(r.get(0).value(), 3.0);
  EXPECT_DOUBLE_EQ(r.get(5).value(), 3.0);
  EXPECT_DOUBLE_EQ(r.get(9).value(), 15.0);
  EXPECT_FALSE(r.get(1).has_value());
}

TEST(Reduce, Cols) {
  auto m = fixture();
  auto c = gbx::reduce_cols<gbx::PlusMonoid<double>>(m);
  EXPECT_EQ(c.nvals(), 3u);
  EXPECT_DOUBLE_EQ(c.get(0).value(), 5.0);
  EXPECT_DOUBLE_EQ(c.get(1).value(), 8.0);
  EXPECT_DOUBLE_EQ(c.get(2).value(), 8.0);
}

TEST(Reduce, RowColConsistentWithScalar) {
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<Index> coord(0, (Index{1} << 24) - 1);
  Matrix<double> m(Index{1} << 24, Index{1} << 24);
  for (int k = 0; k < 5000; ++k)
    m.set_element(coord(rng), coord(rng), 1.0);
  m.materialize();
  const double total = gbx::reduce_scalar<gbx::PlusMonoid<double>>(m);
  auto r = gbx::reduce_rows<gbx::PlusMonoid<double>>(m);
  auto c = gbx::reduce_cols<gbx::PlusMonoid<double>>(m);
  EXPECT_NEAR(r.reduce<gbx::PlusMonoid<double>>(), total, 1e-6);
  EXPECT_NEAR(c.reduce<gbx::PlusMonoid<double>>(), total, 1e-6);
}

TEST(Apply, OnePatternizes) {
  auto m = fixture();
  auto p = gbx::apply<gbx::One<double>>(m);
  EXPECT_EQ(p.nvals(), m.nvals());
  p.for_each([](Index, Index, double v) { EXPECT_DOUBLE_EQ(v, 1.0); });
}

TEST(Apply, AInvNegates) {
  auto m = fixture();
  auto n = gbx::apply<gbx::AInv<double>>(m);
  EXPECT_DOUBLE_EQ(n.extract_element(9, 2).value(), -6.0);
}

TEST(Apply, BindScales) {
  auto m = fixture();
  gbx::Bind2nd<gbx::Times<double>> scale{10.0};
  auto s = gbx::apply_fn(m, scale);
  EXPECT_DOUBLE_EQ(s.extract_element(0, 2).value(), 20.0);
  EXPECT_DOUBLE_EQ(s.extract_element(9, 0).value(), 40.0);
}

TEST(Select, TrilTriuPartition) {
  Matrix<double> m(5, 5);
  for (Index i = 0; i < 5; ++i)
    for (Index j = 0; j < 5; ++j) m.set_element(i, j, 1.0);
  m.materialize();
  auto lo = gbx::tril(m, -1);  // strictly below
  auto di = gbx::diag(m);
  auto hi = gbx::triu(m, 1);  // strictly above
  EXPECT_EQ(lo.nvals() + di.nvals() + hi.nvals(), 25u);
  EXPECT_EQ(di.nvals(), 5u);
  EXPECT_EQ(lo.nvals(), 10u);
  EXPECT_EQ(hi.nvals(), 10u);
}

TEST(Select, OffdiagRemovesSelfLoops) {
  Matrix<double> m(4, 4);
  m.set_element(1, 1, 1.0);
  m.set_element(1, 2, 1.0);
  auto o = gbx::offdiag(m);
  EXPECT_EQ(o.nvals(), 1u);
  EXPECT_FALSE(o.extract_element(1, 1).has_value());
}

TEST(Select, PruneZerosAndThreshold) {
  Matrix<double> m(4, 4);
  m.set_element(0, 0, 0.0);
  m.set_element(0, 1, 2.0);
  m.set_element(0, 2, 5.0);
  EXPECT_EQ(m.nvals(), 3u);  // explicit zero is an entry
  auto p = gbx::prune_zeros(m);
  EXPECT_EQ(p.nvals(), 2u);
  auto g = gbx::select_gt(m, 2.0);
  EXPECT_EQ(g.nvals(), 1u);
  EXPECT_TRUE(g.extract_element(0, 2).has_value());
}

TEST(Select, HugeIndexTriangles) {
  // tril/triu comparisons must not wrap at 2^63.
  Matrix<double> m(gbx::kIPv6Dim, gbx::kIPv6Dim);
  const Index big = Index{1} << 63;
  m.set_element(big, big - 1, 1.0);  // below diagonal
  m.set_element(big, big + 1, 1.0);  // above diagonal
  EXPECT_EQ(gbx::tril(m).nvals(), 1u);
  EXPECT_EQ(gbx::triu(m).nvals(), 1u);
}

TEST(Transpose, InvolutionAndShape) {
  auto m = fixture();
  auto t = gbx::transpose(m);
  EXPECT_EQ(t.nrows(), 3u);
  EXPECT_EQ(t.ncols(), 10u);
  EXPECT_DOUBLE_EQ(t.extract_element(2, 9).value(), 6.0);
  auto tt = gbx::transpose(t);
  EXPECT_TRUE(gbx::equal(tt, m));
}

TEST(Transpose, RandomLarge) {
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<Index> coord(0, (Index{1} << 28) - 1);
  Matrix<double> m(Index{1} << 28, Index{1} << 28);
  for (int k = 0; k < 40000; ++k)
    m.set_element(coord(rng), coord(rng), static_cast<double>(k % 17));
  m.materialize();
  auto t = gbx::transpose(m);
  EXPECT_EQ(t.nvals(), m.nvals());
  EXPECT_TRUE(gbx::equal(gbx::transpose(t), m));
}

}  // namespace
