// Concurrency coverage for the snapshot engine:
//
//   * Linearizability: a snapshot taken while ParallelStream workers are
//     actively inserting equals, per lane, the monoid-sum of EXACTLY the
//     first `watermark.batches` batches submitted to that lane — checked
//     entry-for-entry against dense reference prefix replays, and as the
//     acceptance-criterion Σ Ai scalar.
//   * Checkpoint-from-live-snapshot: a checkpoint written from a frozen
//     image while ingest continues restores to exactly that image.
//   * Readers racing pump(): a TSan-clean stress of concurrent
//     snapshot/reduce/summarize against live workers.
//   * ShardedHier: concurrent writers + freezes observe only whole
//     batches, and per-writer prefixes (batch atomicity + order).
//
// All sizes are kept small: these tests run under TSan in CI (label
// `concurrency`), where every operation costs ~10x.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "analytics/analytics.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;
using hier::HierMatrix;
using hier::InstanceArray;
using hier::ParallelStream;
using proptest::DenseRef;

constexpr std::uint64_t kSeedLinear = 0xC0C0001;
constexpr std::uint64_t kSeedPump = 0xC0C0002;
constexpr std::uint64_t kSeedCkpt = 0xC0C0003;
constexpr std::uint64_t kSeedSharded = 0xC0C0004;

/// Generator adapter replaying a pre-scripted batch sequence through the
/// member pump() interface (ignores the requested size; batch k of the
/// script IS set k of the run).
struct ScriptGen {
  const std::vector<Tuples<double>>* seq;
  std::size_t next = 0;
  void batch(std::size_t, Tuples<double>& out) { out.append((*seq)[next++]); }
};

/// Deterministic per-lane batch sequences plus, for every lane, the
/// dense reference replay after each prefix length (prefix_ref[p][k] =
/// replay of the first k batches of lane p).
struct LaneScript {
  std::vector<std::vector<Tuples<double>>> batches;       // [lane][batch]
  std::vector<std::vector<DenseRef<double>>> prefix_ref;  // [lane][0..n]
  std::vector<std::vector<double>> prefix_sum;            // Σ values per prefix

  LaneScript(std::uint64_t seed, std::size_t lanes, std::size_t per_lane,
             std::size_t batch_len, Index dim) {
    std::mt19937_64 rng(seed);
    batches.resize(lanes);
    prefix_ref.resize(lanes);
    prefix_sum.resize(lanes);
    for (std::size_t p = 0; p < lanes; ++p) {
      DenseRef<double> ref;
      prefix_ref[p].push_back(ref);  // empty prefix
      prefix_sum[p].push_back(0.0);
      for (std::size_t k = 0; k < per_lane; ++k) {
        auto b = proptest::random_batch<double>(rng, dim, batch_len);
        ref.apply(b);
        batches[p].push_back(std::move(b));
        prefix_ref[p].push_back(ref);
        prefix_sum[p].push_back(ref.reduce());
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Snapshot-under-ingest linearizability (explicit submit).
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, SnapshotUnderIngestIsPrefixExact) {
  HHGBX_PROP_SEED(seed, kSeedLinear);
  const std::size_t lanes = 3, per_lane = 40, batch_len = 200;
  const Index dim = 1u << 16;
  LaneScript script(seed, lanes, per_lane, batch_len, dim);

  InstanceArray<double> array(lanes, dim, dim, CutPolicy({64, 1024}));
  ParallelStream<double> engine(array);
  engine.start();

  // One producer per lane feeding its scripted sequence in order.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < lanes; ++p) {
    producers.emplace_back([&, p] {
      for (const auto& b : script.batches[p]) engine.submit(p, b);
    });
  }

  // Reader: snapshots while the producers are mid-flight.
  std::vector<hier::StreamSnapshot<double>> snaps;
  for (int s = 0; s < 10; ++s) snaps.push_back(engine.snapshot());

  for (auto& t : producers) t.join();
  engine.drain();
  snaps.push_back(engine.snapshot());  // final: must contain everything
  auto report = engine.stop();
  ASSERT_EQ(report.entries, lanes * per_lane * batch_len);

  bool saw_partial = false;
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const auto& snap = snaps[s];
    SCOPED_TRACE(::testing::Message() << "snapshot " << s << ", epoch "
                                      << snap.epoch());
    ASSERT_EQ(snap.size(), lanes);
    double expected_total = 0;
    for (std::size_t p = 0; p < lanes; ++p) {
      const auto k = snap.watermark(p).batches;
      ASSERT_LE(k, per_lane) << "watermark beyond submitted prefix";
      if (k < per_lane) saw_partial = true;
      EXPECT_EQ(snap.watermark(p).entries, k * batch_len);
      // Entry-for-entry: lane image == dense replay of its exact prefix.
      EXPECT_TRUE(script.prefix_ref[p][k].matches(snap.part(p)));
      expected_total += script.prefix_sum[p][k];
    }
    // The acceptance criterion: Σ Ai of the snapshot equals the dense
    // reference sum of the per-lane submitted-batch prefixes.
    EXPECT_DOUBLE_EQ(snap.reduce(), expected_total);
    EXPECT_DOUBLE_EQ(
        gbx::reduce_scalar<gbx::PlusMonoid<double>>(snap.to_matrix()),
        expected_total);
  }
  // The last snapshot (after drain) contains every batch.
  const auto& final_snap = snaps.back();
  for (std::size_t p = 0; p < lanes; ++p)
    EXPECT_EQ(final_snap.watermark(p).batches, per_lane);
  // On any machine slow enough to matter, at least one mid-flight
  // snapshot catches a true partial prefix; do not assert it on fast
  // machines, but record it for the curious.
  if (!saw_partial)
    GTEST_LOG_(INFO) << "all snapshots saw completed lanes (fast machine)";
}

// ---------------------------------------------------------------------------
// Snapshot while pump() is actively inserting (the acceptance wording).
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, SnapshotDuringPumpIsPrefixExact) {
  HHGBX_PROP_SEED(seed, kSeedPump);
  const std::size_t lanes = 2, sets = 30, set_size = 400;
  const Index dim = 1u << 16;
  // The pump generators are deterministic in (seed, lane), so the same
  // script can be replayed afterwards to build the reference prefixes.
  LaneScript script(seed, lanes, sets, set_size, dim);

  InstanceArray<double> array(lanes, dim, dim, CutPolicy({128, 2048}));
  ParallelStream<double> engine(array);

  std::vector<hier::StreamSnapshot<double>> snaps;
  std::thread reader([&] {
    for (int s = 0; s < 8; ++s) snaps.push_back(engine.snapshot());
  });

  auto report = engine.pump(sets, set_size, [&](std::size_t p) {
    return ScriptGen{&script.batches[p]};
  });
  reader.join();
  ASSERT_EQ(report.entries, lanes * sets * set_size);

  for (std::size_t s = 0; s < snaps.size(); ++s) {
    const auto& snap = snaps[s];
    SCOPED_TRACE(::testing::Message() << "snapshot " << s);
    double expected_total = 0;
    for (std::size_t p = 0; p < snap.size(); ++p) {
      const auto k = snap.watermark(p).batches;
      ASSERT_LE(k, sets);
      EXPECT_TRUE(script.prefix_ref[p][k].matches(snap.part(p)));
      expected_total += script.prefix_sum[p][k];
    }
    EXPECT_DOUBLE_EQ(snap.reduce(), expected_total);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint taken from a live snapshot restores identically.
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, CheckpointFromLiveSnapshotRestoresIdentically) {
  HHGBX_PROP_SEED(seed, kSeedCkpt);
  const std::size_t per_lane = 50, batch_len = 300;
  const Index dim = 1u << 16;
  LaneScript script(seed, 1, per_lane, batch_len, dim);

  InstanceArray<double> array(1, dim, dim, CutPolicy::geometric(3, 64, 8));
  ParallelStream<double> engine(array);
  engine.start();
  std::thread producer([&] {
    for (const auto& b : script.batches[0]) engine.submit(0, b);
  });

  // Freeze mid-ingest, checkpoint the frozen image on this (reader)
  // thread while the worker keeps inserting behind it.
  auto snap = engine.snapshot();
  std::ostringstream os;
  hier::checkpoint(os, snap.part(0));

  producer.join();
  engine.drain();
  (void)engine.stop();

  std::istringstream is(os.str());
  auto restored = hier::restore<double>(is);
  const auto k = snap.watermark(0).batches;
  // The restored matrix IS the frozen prefix: entry-for-entry against
  // the reference replay, and equal to the snapshot's own materialization.
  EXPECT_TRUE(script.prefix_ref[0][k].matches(restored.snapshot()));
  EXPECT_TRUE(gbx::equal(restored.snapshot(), snap.part(0).to_matrix()));
  // Cascade state survives too: resumed streaming behaves identically.
  EXPECT_EQ(restored.stats().updates, snap.part(0).stats().updates);
}

// ---------------------------------------------------------------------------
// Readers racing pump(): the TSan stress. No values checked beyond
// internal consistency — the point is that TSan sees no race between
// worker folds and reader traversals of frozen views.
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, ReadersRacingPumpTsanStress) {
  HHGBX_PROP_SEED(seed, kSeedPump);
  const std::size_t lanes = 2, sets = 25, set_size = 300;
  const Index dim = 1u << 14;
  LaneScript script(proptest::mix(seed), lanes, sets, set_size, dim);

  InstanceArray<double> array(lanes, dim, dim, CutPolicy({32, 512}));
  ParallelStream<double> engine(array);
  hier::SnapshotEngine<ParallelStream<double>> reader_engine(engine);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> reads{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = reader_engine.acquire();
        // Epochs never go backwards for a single reader.
        EXPECT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        // Exercise every read path against the frozen views.
        (void)snap.reduce();
        for (std::size_t p = 0; p < snap.size(); ++p)
          for (std::size_t l = 0; l < snap.part(p).num_levels(); ++l)
            (void)analytics::summarize(snap.part(p).level(l));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto report = engine.pump(sets, set_size, [&](std::size_t p) {
    return ScriptGen{&script.batches[p]};
  });
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(report.entries, lanes * sets * set_size);
  EXPECT_GT(reads.load(), 0u);
  // Post-run: a quiescent snapshot equals the full dense replay.
  auto final_snap = engine.snapshot();
  for (std::size_t p = 0; p < lanes; ++p)
    EXPECT_TRUE(script.prefix_ref[p][sets].matches(final_snap.part(p)));
}

// ---------------------------------------------------------------------------
// ShardedHier: concurrent writers, freeze sees only whole batches and a
// per-writer prefix. Batch k of writer w holds kRowsPerBatch entries in
// column (w * kMaxBatches + k), rows spread across shards — so a frozen
// image reveals exactly which batches it contains: each (w, k) column
// must hold all of its rows or none (atomicity), and for fixed w the
// set of present k must be a prefix (order).
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, ShardedFreezeSeesWholeBatchPrefixes) {
  HHGBX_PROP_SEED(seed, kSeedSharded);
  constexpr std::size_t kWriters = 3, kMaxBatches = 60, kRowsPerBatch = 24;
  const Index dim = 1u << 16;
  hier::ShardedHier<double> sharded(4, dim, dim, CutPolicy({16, 128}));

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::mt19937_64 rng(proptest::mix(seed + w));
      for (std::size_t k = 0; k < kMaxBatches; ++k) {
        Tuples<double> batch;
        const Index col = static_cast<Index>(w * kMaxBatches + k);
        for (std::size_t r = 0; r < kRowsPerBatch; ++r)
          batch.push_back(static_cast<Index>(rng() % dim), col, 1.0);
        sharded.update(batch);
      }
    });
  }

  std::vector<hier::ShardedSnapshot<double>> snaps;
  for (int s = 0; s < 12; ++s) snaps.push_back(sharded.freeze());
  for (auto& t : writers) t.join();
  snaps.push_back(sharded.freeze());

  for (std::size_t s = 0; s < snaps.size(); ++s) {
    SCOPED_TRACE(::testing::Message() << "freeze " << s << ", epoch "
                                      << snaps[s].epoch());
    auto m = snaps[s].to_matrix();
    auto per_col = gbx::reduce_cols<gbx::PlusMonoid<double>>(m);
    std::uint64_t whole_batches = 0;
    for (std::size_t w = 0; w < kWriters; ++w) {
      bool ended = false;  // once a batch is absent, all later ones must be
      for (std::size_t k = 0; k < kMaxBatches; ++k) {
        const Index col = static_cast<Index>(w * kMaxBatches + k);
        const double count = per_col.get(col).value_or(0.0);
        if (count == static_cast<double>(kRowsPerBatch)) {
          EXPECT_FALSE(ended) << "writer " << w << " batch " << k
                              << " present after a gap (not a prefix)";
          ++whole_batches;
        } else {
          EXPECT_DOUBLE_EQ(count, 0.0)
              << "writer " << w << " batch " << k << " torn: " << count
              << " of " << kRowsPerBatch << " rows";
          ended = true;
        }
      }
    }
    // Epoch == number of whole batches the image contains.
    EXPECT_EQ(snaps[s].epoch(), whole_batches);
  }
  // Final freeze holds everything.
  EXPECT_EQ(snaps.back().epoch(), kWriters * kMaxBatches);
}

// ---------------------------------------------------------------------------
// Snapshot deltas under live ingest: pairs of snapshots taken while
// pump() runs are diffed on the reader thread. Epoch-ordered pairs from
// one source must never report removals, and patching the older image
// with the delta must reproduce the newer one bit-for-bit — the
// incremental-analytics invariant, verified mid-stream.
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, DiffDuringPumpPatchesExactly) {
  HHGBX_PROP_SEED(seed, kSeedPump ^ 0xD1FF);
  const std::size_t lanes = 2, sets = 30, set_size = 300;
  const Index dim = 1u << 14;
  LaneScript script(proptest::mix(seed ^ 1), lanes, sets, set_size, dim);

  InstanceArray<double> array(lanes, dim, dim, CutPolicy({64, 1024}));
  ParallelStream<double> engine(array);

  std::thread analyst([&] {
    auto prev = engine.snapshot();
    for (int s = 0; s < 6; ++s) {
      auto cur = engine.snapshot();
      EXPECT_GE(cur.epoch(), prev.epoch());
      auto d = hier::snapshot_diff(prev, cur);
      EXPECT_TRUE(d.removed.empty())
          << "streaming source lost entries between epochs " << d.epoch_from
          << " and " << d.epoch_to;
      EXPECT_LE(d.stats.levels_reused, d.stats.levels_total);
      // Patch the old Σ Ai with the delta's new values (right-biased
      // union merge): must equal the new Σ Ai exactly.
      gbx::Tuples<double> patch;
      patch.append(d.added);
      for (const auto& c : d.changed) patch.push_back(c.row, c.col, c.new_val);
      auto patched = prev.to_matrix();
      if (!patch.empty()) {
        patch.sort_dedup<gbx::PlusMonoid<double>>();
        patched = gbx::Matrix<double>::adopt(
            patched.nrows(), patched.ncols(),
            gbx::ewise_add<gbx::Second<double>>(
                patched.storage(),
                gbx::Dcsr<double>::from_sorted_unique(patch.entries())));
      }
      EXPECT_TRUE(gbx::equal(patched, cur.to_matrix()));
      prev = std::move(cur);
    }
  });

  auto report = engine.pump(sets, set_size, [&](std::size_t p) {
    return ScriptGen{&script.batches[p]};
  });
  analyst.join();
  ASSERT_EQ(report.entries, lanes * sets * set_size);

  // Post-run sanity: final quiescent image equals the dense replay.
  auto final_snap = engine.snapshot();
  for (std::size_t p = 0; p < lanes; ++p)
    EXPECT_TRUE(script.prefix_ref[p][sets].matches(final_snap.part(p)));
}

// ---------------------------------------------------------------------------
// Memory-governed readers evicted mid-query under a live pump(). Each
// reader materializes an unevicted baseline the moment it acquires a
// handle, keeps re-querying that handle while a zero-budget governor
// compacts/evicts it from other threads, and checks every re-query
// bit-identical to the baseline. TSan coverage of the slot handshake:
// reader pins race governor evictions race further acquires, all while
// the lanes keep folding.
// ---------------------------------------------------------------------------
TEST(SnapshotConcurrency, EvictionDuringPumpKeepsReadsExact) {
  HHGBX_PROP_SEED(seed, kSeedPump ^ 0xE71C);
  const std::size_t lanes = 2, sets = 25, set_size = 300;
  const Index dim = 1u << 14;
  LaneScript script(proptest::mix(seed ^ 3), lanes, sets, set_size, dim);

  InstanceArray<double> array(lanes, dim, dim, CutPolicy({64, 1024}));
  ParallelStream<double> engine(array);
  hier::GovernorConfig cfg;
  cfg.budget_bytes = 0;  // evict every lagging image as soon as possible
  cfg.min_evict_lag = 1;
  cfg.spill_lag = 3;     // and push the coldest ones out of block form
  hier::MemoryGovernor<ParallelStream<double>> gov(engine, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> exact_requeries{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      using Handle =
          hier::MemoryGovernor<ParallelStream<double>>::handle_type;
      Handle held;
      gbx::Matrix<double> ref(1, 1);
      while (!stop.load(std::memory_order_relaxed)) {
        if (!held.valid()) {
          held = gov.acquire();
          ref = held.pin().to_matrix();  // unevicted baseline of the image
          continue;
        }
        // Re-query the (possibly just evicted/spilled) handle: every
        // read path must still produce the frozen image bit-for-bit.
        EXPECT_TRUE(gbx::equal(held.to_matrix(), ref));
        EXPECT_EQ(held.epoch(), held.pin().epoch());
        exact_requeries.fetch_add(1, std::memory_order_relaxed);
        // Rotate so later epochs get held (and evicted) too.
        held = gov.acquire();
        ref = held.pin().to_matrix();
      }
    });
  }

  auto report = engine.pump(sets, set_size, [&](std::size_t p) {
    return ScriptGen{&script.batches[p]};
  });
  stop.store(true);
  for (auto& t : readers) t.join();
  ASSERT_EQ(report.entries, lanes * sets * set_size);
  EXPECT_GT(exact_requeries.load(), 0u);

  // Post-run: quiescent truth still matches the dense replay, and a
  // final governed read of a fresh handle matches it too.
  auto final_handle = gov.acquire();
  auto final_image = final_handle.pin();
  for (std::size_t p = 0; p < lanes; ++p)
    EXPECT_TRUE(script.prefix_ref[p][sets].matches(final_image.part(p)));
}

}  // namespace
