// Unit tests for HierMatrix: cascade mechanics, cut policies, stats,
// queries. (Property sweeps live in test_hier_properties.cpp.)
#include <gtest/gtest.h>

#include <random>

#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Tuples;
using hier::CutPolicy;
using hier::HierMatrix;

TEST(CutPolicy, ExplicitValidation) {
  EXPECT_NO_THROW(CutPolicy({10, 100, 1000}));
  EXPECT_THROW(CutPolicy({}), gbx::InvalidValue);
  EXPECT_THROW(CutPolicy({0, 10}), gbx::InvalidValue);
  EXPECT_THROW(CutPolicy({10, 10}), gbx::InvalidValue);       // not increasing
  EXPECT_THROW(CutPolicy({100, 10}), gbx::InvalidValue);
}

TEST(CutPolicy, Geometric) {
  auto p = CutPolicy::geometric(4, 100, 10);
  EXPECT_EQ(p.levels(), 4u);
  EXPECT_EQ(p.cut(0), 100u);
  EXPECT_EQ(p.cut(1), 1000u);
  EXPECT_EQ(p.cut(2), 10000u);
  EXPECT_THROW(p.cut(3), gbx::IndexOutOfBounds);  // top level unbounded
  EXPECT_THROW(CutPolicy::geometric(1, 100, 10), gbx::InvalidValue);
  EXPECT_THROW(CutPolicy::geometric(3, 100, 1), gbx::InvalidValue);
}

TEST(HierMatrix, SingleUpdateLandsInLevel0) {
  HierMatrix<double> h(100, 100, CutPolicy({10, 100}));
  h.update(3, 4, 1.0);
  EXPECT_EQ(h.level_entries(0), 1u);
  EXPECT_EQ(h.level_entries(1), 0u);
  EXPECT_EQ(h.level_entries(2), 0u);
  EXPECT_EQ(h.stats().updates, 1u);
}

TEST(HierMatrix, CascadeTriggersOnCut) {
  HierMatrix<double> h(1000, 1000, CutPolicy({5, 100}));
  // 6 distinct entries exceed c1 = 5 -> level 0 folds into level 1.
  for (Index k = 0; k < 6; ++k) h.update(k, k, 1.0);
  EXPECT_EQ(h.level_entries(0), 0u);
  EXPECT_EQ(h.level_entries(1), 6u);
  EXPECT_EQ(h.stats().level[0].folds, 1u);
  EXPECT_EQ(h.stats().level[0].entries_folded, 6u);
}

TEST(HierMatrix, CascadePropagatesMultipleLevels) {
  HierMatrix<double> h(100000, 100000, CutPolicy({4, 8}));
  // Stream distinct entries; level1 must eventually overflow into level2.
  for (Index k = 0; k < 100; ++k) h.update(k, k + 1, 1.0);
  EXPECT_GT(h.stats().level[0].folds, 0u);
  EXPECT_GT(h.stats().level[1].folds, 0u);
  EXPECT_LE(h.level_entries(0), 4u + 1u);
  // Everything still sums correctly.
  auto snap = h.snapshot();
  EXPECT_EQ(snap.nvals(), 100u);
}

TEST(HierMatrix, SnapshotIsNonDestructive) {
  HierMatrix<double> h(100, 100, CutPolicy({3}));
  for (Index k = 0; k < 10; ++k) h.update(k % 4, k % 3, 1.0);
  const auto before0 = h.level_entries(0);
  const auto before1 = h.level_entries(1);
  auto snap = h.snapshot();
  EXPECT_EQ(h.level_entries(0), before0);
  EXPECT_EQ(h.level_entries(1), before1);
  // Streaming continues fine after a query.
  h.update(50, 50, 1.0);
  EXPECT_DOUBLE_EQ(h.snapshot().extract_element(50, 50).value(), 1.0);
}

TEST(HierMatrix, CollapseFoldsEverythingToTop) {
  HierMatrix<double> h(100, 100, CutPolicy({3, 10}));
  for (Index k = 0; k < 20; ++k) h.update(k, k, 2.0);
  const auto& top = h.collapse();
  EXPECT_EQ(top.nvals(), 20u);
  EXPECT_EQ(h.level_entries(0), 0u);
  EXPECT_EQ(h.level_entries(1), 0u);
  EXPECT_DOUBLE_EQ(top.extract_element(7, 7).value(), 2.0);
}

TEST(HierMatrix, FlushPreservesValueAndEmptiesLowLevels) {
  HierMatrix<double> h(100, 100, CutPolicy({3, 10}));
  for (Index k = 0; k < 7; ++k) h.update(k, 0, 1.0);
  auto before = h.snapshot();
  h.flush();
  EXPECT_EQ(h.level_entries(0), 0u);
  EXPECT_EQ(h.level_entries(1), 0u);
  EXPECT_TRUE(gbx::equal(h.snapshot(), before));
}

TEST(HierMatrix, DuplicateCoordinatesCombine) {
  HierMatrix<double> h(10, 10, CutPolicy({2}));
  // Same coordinate repeatedly: folds must plus-combine across levels.
  for (int k = 0; k < 9; ++k) h.update(1, 1, 1.0);
  auto snap = h.snapshot();
  EXPECT_EQ(snap.nvals(), 1u);
  EXPECT_DOUBLE_EQ(snap.extract_element(1, 1).value(), 9.0);
}

TEST(HierMatrix, BatchUpdate) {
  HierMatrix<double> h(1000, 1000, CutPolicy({100, 1000}));
  Tuples<double> batch;
  for (Index k = 0; k < 250; ++k) batch.push_back(k, k, 1.0);
  h.update(batch);
  EXPECT_EQ(h.stats().updates, 1u);
  EXPECT_EQ(h.stats().entries_appended, 250u);
  EXPECT_EQ(h.snapshot().nvals(), 250u);
}

TEST(HierMatrix, SpanUpdate) {
  HierMatrix<double> h(100, 100, CutPolicy({10}));
  std::vector<Index> r{1, 2}, c{3, 4};
  std::vector<double> v{1.0, 2.0};
  h.update(r, c, v);
  EXPECT_DOUBLE_EQ(h.snapshot().extract_element(2, 4).value(), 2.0);
}

TEST(HierMatrix, MaxMonoidHierarchy) {
  hier::HierMatrix<double, gbx::MaxMonoid<double>> h(
      100, 100, CutPolicy({2, 8}));
  h.update(1, 1, 3.0);
  h.update(1, 1, 9.0);
  h.update(1, 1, 4.0);  // forces a fold along the way
  h.update(2, 2, 1.0);
  auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.extract_element(1, 1).value(), 9.0);
}

TEST(HierMatrix, StatsTrackHighWaterMarks) {
  HierMatrix<double> h(1000, 1000, CutPolicy({5}));
  Tuples<double> big;
  for (Index k = 0; k < 50; ++k) big.push_back(k, k, 1.0);
  h.update(big);  // one huge batch blows straight through c1
  EXPECT_GE(h.stats().level[0].max_entries, 50u);
  EXPECT_EQ(h.stats().level[0].folds, 1u);
}

TEST(HierMatrix, FoldRatioDropsWithDepth) {
  HierMatrix<double> h(gbx::kIPv4Dim, gbx::kIPv4Dim,
                       CutPolicy::geometric(4, 256, 8));
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Index> coord(0, gbx::kIPv4Dim - 1);
  for (int k = 0; k < 20000; ++k) h.update(coord(rng), coord(rng), 1.0);
  // Every level deeper sees no more folded entries than the one above:
  const auto& st = h.stats();
  EXPECT_GT(st.level[0].entries_folded, 0u);
  EXPECT_GE(st.level[0].folds, st.level[1].folds);
  EXPECT_GE(st.level[1].folds, st.level[2].folds);
  // fold_ratio is the slow-memory pressure measure of Fig. 1.
  EXPECT_GT(st.fold_ratio(0), 0.0);
  EXPECT_GE(st.fold_ratio(1), st.fold_ratio(2));
}

TEST(HierMatrix, UpdateBoundsChecked) {
  HierMatrix<double> h(10, 10, CutPolicy({5}));
  EXPECT_THROW(h.update(10, 0, 1.0), gbx::IndexOutOfBounds);
}

TEST(InstanceArray, IndependentInstances) {
  hier::InstanceArray<double> arr(4, 100, 100, CutPolicy({10}));
  std::vector<Tuples<double>> batches(4);
  for (std::size_t p = 0; p < 4; ++p)
    for (Index k = 0; k < 5; ++k)
      batches[p].push_back(k, static_cast<Index>(p), 1.0);
  arr.update_parallel(batches);
  EXPECT_EQ(arr.total_entries_appended(), 20u);
  for (std::size_t p = 0; p < 4; ++p) {
    auto snap = arr.instance(p).snapshot();
    EXPECT_EQ(snap.nvals(), 5u);
    EXPECT_TRUE(snap.extract_element(0, p).has_value());
  }
}

TEST(InstanceArray, BatchCountMismatchThrows) {
  hier::InstanceArray<double> arr(2, 10, 10, CutPolicy({5}));
  std::vector<Tuples<double>> batches(3);
  EXPECT_THROW(arr.update_parallel(batches), gbx::DimensionMismatch);
}

}  // namespace
