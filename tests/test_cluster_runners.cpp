// Tests for the baseline scaling-harness runners (LSM, B+tree, D4M) and
// thread-setting hygiene of run_instances.
#include <gtest/gtest.h>

#include <omp.h>

#include "cluster/cluster.hpp"

namespace {

cluster::WorkloadSpec tiny() {
  cluster::WorkloadSpec w;
  w.sets = 2;
  w.set_size = 2000;
  w.scale = 10;
  w.seed = 3;
  return w;
}

TEST(Runners, LsmRunsAndCounts) {
  auto r = cluster::run_lsm(2, tiny());
  EXPECT_EQ(r.instances, 2u);
  EXPECT_EQ(r.entries, 2u * tiny().entries_per_instance());
  EXPECT_GT(r.aggregate_rate, 0.0);
}

TEST(Runners, BtreeRunsAndCounts) {
  auto r = cluster::run_btree(3, tiny());
  EXPECT_EQ(r.instances, 3u);
  EXPECT_GT(r.aggregate_rate, 0.0);
  EXPECT_GT(r.busy_seconds_mean, 0.0);
}

TEST(Runners, HierAssocRunsAndCounts) {
  auto r = cluster::run_hier_assoc(2, tiny(),
                                   hier::CutPolicy::geometric(3, 512, 8));
  EXPECT_EQ(r.instances, 2u);
  EXPECT_GT(r.aggregate_rate, 0.0);
}

TEST(Runners, AmbientThreadCountRestored) {
  // run_instances pins workers to one thread internally; the caller's
  // OpenMP configuration must be intact afterwards.
  const int before = omp_get_max_threads();
  (void)cluster::run_hier_gbx(2, tiny(), hier::CutPolicy({1000}));
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(Runners, RelativeOrderingHolds) {
  // Even at toy sizes the hierarchical GraphBLAS path should not lose to
  // the per-row B+tree path (the central Fig. 2 ordering).
  cluster::WorkloadSpec w;
  w.sets = 4;
  w.set_size = 50000;
  w.scale = 14;
  w.seed = 9;
  auto hier_r = cluster::run_hier_gbx(1, w, hier::CutPolicy::geometric(4, 8192, 8));
  auto btree_r = cluster::run_btree(1, w);
  EXPECT_GT(hier_r.aggregate_rate, btree_r.aggregate_rate * 0.9);
}

}  // namespace
