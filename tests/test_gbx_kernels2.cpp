// Tests for the second wave of gbx kernels: masked mxm, eWiseUnion,
// outer products, row/col extraction, element removal, iterators.
#include <gtest/gtest.h>

#include <random>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;
using gbx::SparseVector;

Matrix<double> random_matrix(Index dim, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Index> coord(0, dim - 1);
  std::uniform_real_distribution<double> val(1, 5);
  Matrix<double> m(dim, dim);
  for (std::size_t k = 0; k < n; ++k)
    m.set_element(coord(rng), coord(rng), val(rng));
  m.materialize();
  return m;
}

TEST(MxmMasked, MatchesUnmaskedOnMaskPattern) {
  auto a = random_matrix(40, 300, 1);
  auto b = random_matrix(40, 300, 2);
  auto mask = random_matrix(40, 200, 3);

  auto full = gbx::mxm<gbx::PlusTimes<double>>(a, b);
  auto masked = gbx::mxm_masked<gbx::PlusTimes<double>>(mask, a, b);

  // Every masked output coordinate must be in the mask AND match full.
  masked.for_each([&](Index i, Index j, double v) {
    EXPECT_TRUE(mask.extract_element(i, j).has_value());
    EXPECT_NEAR(full.extract_element(i, j).value(), v, 1e-9);
  });
  // Every full-product entry on the mask pattern must appear in masked.
  full.for_each([&](Index i, Index j, double v) {
    if (mask.extract_element(i, j).has_value()) {
      auto got = masked.extract_element(i, j);
      ASSERT_TRUE(got.has_value());
      EXPECT_NEAR(*got, v, 1e-9);
    }
  });
}

TEST(MxmMasked, EmptyMask) {
  auto a = random_matrix(10, 40, 4);
  auto b = random_matrix(10, 40, 5);
  Matrix<double> mask(10, 10);
  auto c = gbx::mxm_masked<gbx::PlusTimes<double>>(mask, a, b);
  EXPECT_EQ(c.nvals(), 0u);
}

TEST(MxmMasked, DimValidation) {
  Matrix<double> a(4, 5), b(5, 6), badmask(4, 5);
  EXPECT_THROW((gbx::mxm_masked<gbx::PlusTimes<double>>(badmask, a, b)),
               gbx::DimensionMismatch);
  Matrix<double> b2(4, 6);
  Matrix<double> mask(4, 6);
  EXPECT_THROW((gbx::mxm_masked<gbx::PlusTimes<double>>(mask, a, b2)),
               gbx::DimensionMismatch);
}

TEST(EwiseUnion, MinusWithDefaults) {
  Matrix<double> a(10, 10), b(10, 10);
  a.set_element(1, 1, 5.0);   // only in A: 5 - beta(0) = 5
  b.set_element(2, 2, 3.0);   // only in B: alpha(0) - 3 = -3
  a.set_element(3, 3, 10.0);  // both: 10 - 4 = 6
  b.set_element(3, 3, 4.0);
  auto c = gbx::subtract(a, b);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 5.0);
  EXPECT_DOUBLE_EQ(c.extract_element(2, 2).value(), -3.0);
  EXPECT_DOUBLE_EQ(c.extract_element(3, 3).value(), 6.0);
}

TEST(EwiseUnion, CustomDefaults) {
  Matrix<double> a(4, 4), b(4, 4);
  a.set_element(0, 0, 10.0);
  b.set_element(1, 1, 20.0);
  // op = div, alpha = 100 (missing A), beta = 2 (missing B)
  auto c = gbx::ewise_union<gbx::Div<double>>(a, 100.0, b, 2.0);
  EXPECT_DOUBLE_EQ(c.extract_element(0, 0).value(), 5.0);   // 10 / 2
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 5.0);   // 100 / 20
}

TEST(EwiseUnion, DiffersFromEwiseAddForMinus) {
  // eWiseAdd(minus) passes B through at B-only coordinates (wrong sign);
  // eWiseUnion fixes that. This pins the semantic difference.
  Matrix<double> a(4, 4), b(4, 4);
  b.set_element(0, 0, 7.0);
  auto add = gbx::ewise_add<gbx::Minus<double>>(a, b);
  auto uni = gbx::subtract(a, b);
  EXPECT_DOUBLE_EQ(add.extract_element(0, 0).value(), 7.0);   // pass-through
  EXPECT_DOUBLE_EQ(uni.extract_element(0, 0).value(), -7.0);  // 0 - 7
}

TEST(Outer, RankOneProduct) {
  SparseVector<double> u(1000), v(1000);
  std::vector<Index> ui{2, 500};
  std::vector<double> uv{3.0, 5.0};
  u.build(ui, uv);
  std::vector<Index> vi{7, 999};
  std::vector<double> vv{10.0, 100.0};
  v.build(vi, vv);
  auto m = gbx::outer<gbx::Times<double>>(u, v);
  EXPECT_EQ(m.nvals(), 4u);
  EXPECT_DOUBLE_EQ(m.extract_element(2, 7).value(), 30.0);
  EXPECT_DOUBLE_EQ(m.extract_element(500, 999).value(), 500.0);
  EXPECT_TRUE(m.validate());
}

TEST(Outer, GravityIdentity) {
  // gravity model expectation == outer(rowsums, colsums) / total.
  auto a = random_matrix(30, 200, 9);
  auto r = gbx::reduce_rows<gbx::PlusMonoid<double>>(a);
  auto c = gbx::reduce_cols<gbx::PlusMonoid<double>>(a);
  auto g = gbx::outer<gbx::Times<double>>(r, c);
  const double total = gbx::reduce_scalar<gbx::PlusMonoid<double>>(a);
  // Sum over the full outer product = total * total.
  EXPECT_NEAR(gbx::reduce_scalar<gbx::PlusMonoid<double>>(g), total * total,
              1e-6 * total * total);
}

TEST(ExtractRowCol, KnownValues) {
  Matrix<double> m(100, 100);
  m.set_element(5, 1, 10.0);
  m.set_element(5, 7, 20.0);
  m.set_element(9, 7, 30.0);
  auto row5 = gbx::extract_row(m, 5);
  EXPECT_EQ(row5.nvals(), 2u);
  EXPECT_DOUBLE_EQ(row5.get(1).value(), 10.0);
  EXPECT_DOUBLE_EQ(row5.get(7).value(), 20.0);
  auto row0 = gbx::extract_row(m, 0);
  EXPECT_EQ(row0.nvals(), 0u);
  auto col7 = gbx::extract_col(m, 7);
  EXPECT_EQ(col7.nvals(), 2u);
  EXPECT_DOUBLE_EQ(col7.get(9).value(), 30.0);
  EXPECT_THROW(gbx::extract_row(m, 100), gbx::IndexOutOfBounds);
  EXPECT_THROW(gbx::extract_col(m, 100), gbx::IndexOutOfBounds);
}

TEST(RemoveElement, RemovesAndNoops) {
  Matrix<double> m(10, 10);
  m.set_element(1, 1, 1.0);
  m.set_element(2, 2, 2.0);
  gbx::remove_element(m, 1, 1);
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_FALSE(m.extract_element(1, 1).has_value());
  gbx::remove_element(m, 5, 5);  // absent: no-op
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_THROW(gbx::remove_element(m, 10, 0), gbx::IndexOutOfBounds);
}

TEST(Iterator, WalksInOrder) {
  Matrix<double> m(100, 100);
  m.set_element(3, 4, 1.0);
  m.set_element(3, 9, 2.0);
  m.set_element(50, 0, 3.0);
  gbx::MatrixIterator<double> it(m);
  ASSERT_FALSE(it.done());
  EXPECT_EQ(it.row(), 3u);
  EXPECT_EQ(it.col(), 4u);
  ASSERT_TRUE(it.next());
  EXPECT_EQ(it.col(), 9u);
  ASSERT_TRUE(it.next());
  EXPECT_EQ(it.row(), 50u);
  EXPECT_DOUBLE_EQ(it.value(), 3.0);
  EXPECT_FALSE(it.next());
  EXPECT_TRUE(it.done());
}

TEST(Iterator, SeekAndRewind) {
  Matrix<double> m(1000, 1000);
  for (Index k = 0; k < 100; k += 10) m.set_element(k, k, static_cast<double>(k));
  gbx::MatrixIterator<double> it(m);
  ASSERT_TRUE(it.seek_row(35));
  EXPECT_EQ(it.row(), 40u);
  ASSERT_TRUE(it.seek_row(90));
  EXPECT_EQ(it.row(), 90u);
  EXPECT_FALSE(it.seek_row(91));
  it.rewind();
  EXPECT_EQ(it.row(), 0u);
}

TEST(Iterator, EmptyMatrix) {
  Matrix<double> m(10, 10);
  gbx::MatrixIterator<double> it(m);
  EXPECT_TRUE(it.done());
  EXPECT_FALSE(it.next());
}

TEST(Iterator, MatchesForEach) {
  auto m = random_matrix(64, 500, 21);
  std::vector<std::tuple<Index, Index, double>> a, b;
  m.for_each([&](Index i, Index j, double v) { a.emplace_back(i, j, v); });
  gbx::MatrixIterator<double> it(m);
  if (!it.done()) {
    do {
      b.emplace_back(it.row(), it.col(), it.value());
    } while (it.next());
  }
  EXPECT_EQ(a, b);
}

}  // namespace
