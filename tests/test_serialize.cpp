// Tests for binary serialization of matrices and hierarchical
// checkpoint/restore.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "gbx/gbx.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

TEST(Serialize, EmptyMatrixRoundTrip) {
  Matrix<double> m(123, 456);
  std::stringstream ss;
  gbx::serialize(ss, m);
  auto m2 = gbx::deserialize<double>(ss);
  EXPECT_EQ(m2.nrows(), 123u);
  EXPECT_EQ(m2.ncols(), 456u);
  EXPECT_EQ(m2.nvals(), 0u);
}

TEST(Serialize, RoundTripPreservesEverything) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Index> coord(0, gbx::kIPv4Dim - 1);
  Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  for (int k = 0; k < 10000; ++k)
    m.set_element(coord(rng), coord(rng), static_cast<double>(k) * 0.25);

  std::stringstream ss;
  gbx::serialize(ss, m);  // folds pending as a side effect
  auto m2 = gbx::deserialize<double>(ss);
  EXPECT_TRUE(gbx::equal(m, m2));
  EXPECT_TRUE(m2.validate());
}

TEST(Serialize, PendingFoldedBeforeWrite) {
  Matrix<double> m(10, 10);
  m.set_element(1, 1, 1.0);
  m.set_element(1, 1, 2.0);  // unfolded duplicate
  std::stringstream ss;
  gbx::serialize(ss, m);
  auto m2 = gbx::deserialize<double>(ss);
  EXPECT_EQ(m2.nvals(), 1u);
  EXPECT_DOUBLE_EQ(m2.extract_element(1, 1).value(), 3.0);
}

TEST(Serialize, IntegerTypes) {
  Matrix<std::int64_t> m(100, 100);
  m.set_element(5, 5, -42);
  std::stringstream ss;
  gbx::serialize(ss, m);
  auto m2 = gbx::deserialize<std::int64_t>(ss);
  EXPECT_EQ(m2.extract_element(5, 5).value(), -42);
}

TEST(Serialize, TypeMismatchRejected) {
  Matrix<double> m(10, 10);
  m.set_element(1, 1, 1.0);
  std::stringstream ss;
  gbx::serialize(ss, m);
  EXPECT_THROW(gbx::deserialize<std::int64_t>(ss), gbx::Error);
}

TEST(Serialize, GarbageRejected) {
  std::stringstream ss;
  ss << "this is not a matrix";
  EXPECT_THROW(gbx::deserialize<double>(ss), gbx::Error);
}

TEST(Serialize, TruncationRejected) {
  Matrix<double> m(100, 100);
  for (Index k = 0; k < 50; ++k) m.set_element(k, k, 1.0);
  std::stringstream ss;
  gbx::serialize(ss, m);
  const auto full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(gbx::deserialize<double>(cut), gbx::Error);
}

TEST(Checkpoint, RoundTripPreservesLevelsAndStats) {
  gen::PowerLawParams pp;
  pp.scale = 12;
  pp.seed = 17;
  gen::PowerLawGenerator g(pp);
  hier::HierMatrix<double> h(pp.dim, pp.dim,
                             hier::CutPolicy::geometric(4, 1024, 8));
  for (int s = 0; s < 12; ++s) h.update(g.batch<double>(3000));

  std::stringstream ss;
  hier::checkpoint(ss, h);
  auto h2 = hier::restore<double>(ss);

  EXPECT_EQ(h2.num_levels(), h.num_levels());
  EXPECT_EQ(h2.cut_policy().cuts(), h.cut_policy().cuts());
  for (std::size_t i = 0; i < h.num_levels(); ++i)
    EXPECT_EQ(h2.level_entries(i), h.level_entries(i));
  EXPECT_TRUE(gbx::equal(h2.snapshot(), h.snapshot()));
  EXPECT_EQ(h2.stats().entries_appended, h.stats().entries_appended);
  EXPECT_EQ(h2.stats().level[0].folds, h.stats().level[0].folds);
}

TEST(Checkpoint, StreamingResumesSeamlessly) {
  // Stream A: 20 sets straight through. Stream B: 10 sets, checkpoint,
  // restore, 10 more sets. Final states must be identical.
  gen::PowerLawParams pp;
  pp.scale = 11;
  pp.seed = 23;

  gen::PowerLawGenerator ga(pp);
  hier::HierMatrix<double> a(pp.dim, pp.dim, hier::CutPolicy({500, 5000}));
  for (int s = 0; s < 20; ++s) a.update(ga.batch<double>(1000));

  gen::PowerLawGenerator gb(pp);
  hier::HierMatrix<double> b(pp.dim, pp.dim, hier::CutPolicy({500, 5000}));
  for (int s = 0; s < 10; ++s) b.update(gb.batch<double>(1000));
  std::stringstream ss;
  hier::checkpoint(ss, b);
  auto b2 = hier::restore<double>(ss);
  for (int s = 0; s < 10; ++s) b2.update(gb.batch<double>(1000));

  EXPECT_TRUE(gbx::equal(a.snapshot(), b2.snapshot()));
  EXPECT_EQ(a.stats().entries_appended, b2.stats().entries_appended);
}

TEST(Checkpoint, GarbageRejected) {
  std::stringstream ss;
  ss << "not a checkpoint at all, sorry";
  EXPECT_THROW(hier::restore<double>(ss), gbx::Error);
}

}  // namespace
