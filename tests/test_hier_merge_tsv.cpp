// Tests for hierarchy merging / tree reduction and D4M TSV interchange.
#include <gtest/gtest.h>

#include <sstream>

#include "assoc/assoc.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;
using hier::CutPolicy;
using hier::HierMatrix;

HierMatrix<double> streamed(std::uint64_t seed, int sets) {
  gen::PowerLawParams pp;
  pp.scale = 11;
  pp.seed = seed;
  gen::PowerLawGenerator g(pp);
  HierMatrix<double> h(pp.dim, pp.dim, CutPolicy::geometric(3, 512, 4));
  for (int s = 0; s < sets; ++s) h.update(g.batch<double>(1500));
  return h;
}

TEST(Merge, EqualsSnapshotSum) {
  auto a = streamed(1, 8);
  auto b = streamed(2, 8);
  auto expect = a.snapshot();
  expect.plus_assign(b.snapshot());

  hier::merge_into(a, std::move(b));
  EXPECT_TRUE(gbx::equal(a.snapshot(), expect));
  EXPECT_EQ(b.snapshot().nvals(), 0u);  // source consumed
}

TEST(Merge, CutInvariantsRestored) {
  auto a = streamed(3, 12);
  auto b = streamed(4, 12);
  hier::merge_into(a, std::move(b));
  // All bounded levels obey their cuts after the recascade.
  for (std::size_t i = 0; i + 1 < a.num_levels(); ++i)
    EXPECT_LE(a.level_entries(i), a.cut_policy().cut(i))
        << "level " << i << " over its cut after merge";
}

TEST(Merge, DimAndLevelValidation) {
  HierMatrix<double> a(100, 100, CutPolicy({10}));
  HierMatrix<double> wrong_dim(100, 101, CutPolicy({10}));
  EXPECT_THROW(hier::merge_into(a, std::move(wrong_dim)),
               gbx::DimensionMismatch);
  HierMatrix<double> wrong_levels(100, 100, CutPolicy({10, 100}));
  EXPECT_THROW(hier::merge_into(a, std::move(wrong_levels)),
               gbx::DimensionMismatch);
}

TEST(Merge, TreeReduceManyInstances) {
  // The distributed allreduce shape: 7 instances (non-power-of-two on
  // purpose) reduce into one; result equals the serial sum.
  std::vector<HierMatrix<double>> instances;
  gbx::Matrix<double> expect(1u << 24, 1u << 24);
  for (std::uint64_t p = 0; p < 7; ++p) {
    gen::PowerLawParams pp;
    pp.scale = 10;
    pp.dim = 1u << 24;
    pp.seed = 100 + p;
    gen::PowerLawGenerator g(pp);
    HierMatrix<double> h(pp.dim, pp.dim, CutPolicy::geometric(3, 256, 4));
    for (int s = 0; s < 4; ++s) {
      auto b = g.batch<double>(800);
      h.update(b);
      expect.append(b);
    }
    instances.push_back(std::move(h));
  }
  expect.materialize();

  hier::tree_reduce(instances);
  EXPECT_TRUE(gbx::equal(instances[0].snapshot(), expect));
  for (std::size_t p = 1; p < instances.size(); ++p)
    EXPECT_EQ(instances[p].snapshot().nvals(), 0u);
}

TEST(Tsv, RoundTrip) {
  assoc::AssocArray<double> a;
  a.insert("10.0.0.1", "8.8.8.8", 42.0);
  a.insert("10.0.0.2", "1.1.1.1", 7.5);
  a.insert("10.0.0.1", "8.8.8.8", 1.0);  // accumulates to 43
  a.materialize();

  std::stringstream ss;
  assoc::write_tsv(ss, a);
  assoc::AssocArray<double> b;
  auto st = assoc::read_tsv(ss, b);
  EXPECT_EQ(st.triples, 2u);
  EXPECT_EQ(st.malformed, 0u);
  EXPECT_TRUE(assoc::equal(a, b));
}

TEST(Tsv, MalformedLinesCountedAndSkipped) {
  std::stringstream ss;
  ss << "# header comment\n"
     << "r1\tc1\t5\n"
     << "no tabs here\n"
     << "r2\tc2\tnot_a_number\n"
     << "r3\tc3\t4\textra\n"
     << "\tc4\t1\n"
     << "r5\tc5\t9\n";
  assoc::AssocArray<double> a;
  auto st = assoc::read_tsv(ss, a);
  EXPECT_EQ(st.triples, 2u);
  EXPECT_EQ(st.malformed, 4u);
  EXPECT_DOUBLE_EQ(a.get("r1", "c1"), 5.0);
  EXPECT_DOUBLE_EQ(a.get("r5", "c5"), 9.0);
}

TEST(Tsv, AccumulatesDuplicateTriples) {
  std::stringstream ss;
  ss << "r\tc\t1\nr\tc\t2\nr\tc\t3\n";
  assoc::AssocArray<double> a;
  assoc::read_tsv(ss, a);
  EXPECT_DOUBLE_EQ(a.get("r", "c"), 6.0);
  EXPECT_EQ(a.nvals(), 1u);
}

}  // namespace
