// Randomized corruption properties of store::RecordFrameDecoder — the
// codec under every WAL, every wire message, and (this PR) every
// shipped replication frame. The meta-property, everywhere:
//
//   A corrupted byte stream NEVER yields a phantom frame. Every frame
//   the decoder emits is bit-identical to a frame the writer produced;
//   everything else classifies as kNeedMore (plausibly-incomplete) or
//   kCorrupt (provably damaged), and a poisoned decoder stays poisoned.
//
// Sweeps: truncation at EVERY byte offset, single-byte flips at every
// offset (including the header — the frame checksum covers
// epoch|size|payload exactly so header damage is detected, not
// reinterpreted), random multi-byte splices, and random chunk
// re-feeding. Then the same corruptions are replayed against a live
// repl::ReplicaServer over a socket: a corrupt shipped stream must be
// rejected loudly with the replica's applied watermark unchanged.
#include <gtest/gtest.h>

#ifdef __linux__
#include <unistd.h>
#endif

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "gbx/gbx.hpp"
#include "prop_util.hpp"
#include "repl/repl.hpp"
#include "store/wal.hpp"

namespace {

struct Frame {
  std::uint64_t epoch;
  std::string payload;
};

// A valid multi-frame stream plus its frame list (the oracle).
std::string build_stream(std::mt19937_64& rng, std::vector<Frame>& frames,
                         std::size_t count) {
  std::ostringstream os;
  store::RecordLogWriter w(os);
  frames.clear();
  std::uniform_int_distribution<std::size_t> len(0, 96);
  std::uniform_int_distribution<int> byte(0, 255);
  for (std::size_t i = 0; i < count; ++i) {
    Frame f;
    f.epoch = i + 1;
    f.payload.resize(len(rng));
    for (auto& c : f.payload) c = static_cast<char>(byte(rng));
    w.append(f.epoch, f.payload.data(), f.payload.size());
    frames.push_back(std::move(f));
  }
  return os.str();
}

struct DecodeResult {
  std::vector<Frame> frames;
  bool corrupt = false;
  std::string error;
  std::size_t buffered_tail = 0;
};

// Feed `bytes` in randomized chunk sizes and collect every verdict.
DecodeResult decode_all(const std::string& bytes, std::mt19937_64& rng,
                        bool random_chunks = true) {
  DecodeResult r;
  store::RecordFrameDecoder dec(1u << 20);
  std::size_t off = 0;
  std::uniform_int_distribution<std::size_t> chunk(1, 73);
  for (;;) {
    store::LogRecord rec;
    const auto st = dec.next(rec);
    if (st == store::RecordFrameDecoder::Status::kFrame) {
      Frame f;
      f.epoch = rec.epoch;
      f.payload.assign(reinterpret_cast<const char*>(rec.payload.data()),
                       rec.payload.size());
      r.frames.push_back(std::move(f));
      continue;
    }
    if (st == store::RecordFrameDecoder::Status::kCorrupt) {
      r.corrupt = true;
      r.error = dec.error();
      return r;
    }
    if (off >= bytes.size()) break;  // kNeedMore and nothing left
    const std::size_t n =
        std::min(random_chunks ? chunk(rng) : bytes.size(), bytes.size() - off);
    dec.feed(bytes.data() + off, n);
    off += n;
  }
  r.buffered_tail = dec.buffered();
  return r;
}

// The decoded prefix must be bit-identical to the oracle prefix —
// no phantom, no mutation, no reorder.
void expect_exact_prefix(const DecodeResult& got,
                         const std::vector<Frame>& oracle) {
  ASSERT_LE(got.frames.size(), oracle.size())
      << "decoder emitted MORE frames than were written (phantom frame)";
  for (std::size_t i = 0; i < got.frames.size(); ++i) {
    ASSERT_EQ(got.frames[i].epoch, oracle[i].epoch) << "frame " << i;
    ASSERT_EQ(got.frames[i].payload, oracle[i].payload)
        << "frame " << i << " payload mutated";
  }
}

constexpr std::uint64_t kPinnedSeed = 0xF0A2'11D7'0B5E'31C9ull;

class RecordFrameFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = proptest::seed_or_env(kPinnedSeed);
    std::cout << proptest::seed_banner(seed_, kPinnedSeed) << "\n";
    rng_.seed(seed_);
  }
  std::uint64_t seed_ = 0;
  std::mt19937_64 rng_;
};

// --- truncation at every offset: exact frame prefix + kNeedMore ------------

TEST_F(RecordFrameFuzz, TruncationAtEveryOffsetIsNeverCorrupt) {
  std::vector<Frame> oracle;
  const std::string bytes = build_stream(rng_, oracle, 8);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto got = decode_all(bytes.substr(0, cut), rng_);
    ASSERT_FALSE(got.corrupt)
        << "clean truncation at " << cut << " misclassified as corrupt: "
        << got.error;
    expect_exact_prefix(got, oracle);
    // Whole frames before the cut all decode; the partial tail buffers.
    std::size_t whole = 0, acc = 0;
    for (const auto& f : oracle) {
      const std::size_t sz = 8 + 8 + 8 + f.payload.size() + 8;
      if (acc + sz <= cut) {
        ++whole;
        acc += sz;
      } else {
        break;
      }
    }
    ASSERT_EQ(got.frames.size(), whole) << "cut at " << cut;
  }
}

// --- single-byte flips at every offset -------------------------------------

TEST_F(RecordFrameFuzz, ByteFlipAtEveryOffsetNeverYieldsPhantomFrames) {
  std::vector<Frame> oracle;
  const std::string bytes = build_stream(rng_, oracle, 6);
  std::uniform_int_distribution<int> bit(0, 7);
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ (1u << bit(rng_)));
    auto got = decode_all(mutated, rng_);
    // Every decoded frame must be an exact original: the flip either
    // surfaced as kCorrupt, or hides in a frame not yet completed
    // (kNeedMore tail) — but can never mutate an emitted frame, since
    // the checksum covers epoch|size|payload.
    expect_exact_prefix(got, oracle);
    if (!got.corrupt) {
      // A flip that did not trip kCorrupt must have shortened the
      // decodable prefix (size-field damage turning the rest into one
      // giant pending frame, say) — it must NOT decode everything.
      ASSERT_LT(got.frames.size(), oracle.size())
          << "flip at offset " << at << " was silently swallowed";
    }
  }
}

// --- random splices ---------------------------------------------------------

TEST_F(RecordFrameFuzz, RandomSplicesNeverYieldPhantomFrames) {
  std::vector<Frame> oracle;
  const std::string bytes = build_stream(rng_, oracle, 8);
  std::uniform_int_distribution<std::size_t> pos(0, bytes.size() - 1);
  std::uniform_int_distribution<std::size_t> len(1, 64);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = bytes;
    const std::size_t at = pos(rng_);
    // Splice: overwrite, delete, or insert a random run.
    switch (round % 3) {
      case 0:
        for (std::size_t i = at; i < std::min(bytes.size(), at + len(rng_));
             ++i)
          mutated[i] = static_cast<char>(byte(rng_));
        break;
      case 1:
        mutated.erase(at, len(rng_));
        break;
      case 2: {
        std::string run(len(rng_), '\0');
        for (auto& c : run) c = static_cast<char>(byte(rng_));
        mutated.insert(at, run);
        break;
      }
    }
    auto got = decode_all(mutated, rng_);
    // Frames decoded before the splice point must be exact originals.
    std::size_t safe = 0, acc = 0;
    for (const auto& f : oracle) {
      const std::size_t sz = 8 + 8 + 8 + f.payload.size() + 8;
      if (acc + sz <= at) {
        ++safe;
        acc += sz;
      } else {
        break;
      }
    }
    ASSERT_GE(got.frames.size(), std::min(safe, got.frames.size()));
    for (std::size_t i = 0; i < std::min(safe, got.frames.size()); ++i) {
      ASSERT_EQ(got.frames[i].epoch, oracle[i].epoch);
      ASSERT_EQ(got.frames[i].payload, oracle[i].payload);
    }
    // And whatever else came out is an exact original too (a splice
    // can legitimately re-synchronize on a later whole frame only if
    // the bytes are identical — which expect_exact would catch).
    for (const auto& f : got.frames) {
      bool matches_an_original = false;
      for (const auto& o : oracle)
        if (f.epoch == o.epoch && f.payload == o.payload) {
          matches_an_original = true;
          break;
        }
      ASSERT_TRUE(matches_an_original)
          << "splice round " << round << " produced a phantom frame";
    }
  }
}

// --- poisoned decoder stays poisoned ---------------------------------------

TEST_F(RecordFrameFuzz, CorruptVerdictIsSticky) {
  std::vector<Frame> oracle;
  const std::string bytes = build_stream(rng_, oracle, 3);
  std::string mutated = bytes;
  mutated[9] = static_cast<char>(mutated[9] ^ 0x40);  // epoch field damage
  store::RecordFrameDecoder dec(1u << 20);
  dec.feed(mutated.data(), mutated.size());
  store::LogRecord rec;
  while (dec.next(rec) == store::RecordFrameDecoder::Status::kFrame) {
  }
  ASSERT_TRUE(dec.corrupt());
  // Feeding pristine bytes cannot un-poison it.
  dec.feed(bytes.data(), bytes.size());
  ASSERT_EQ(dec.next(rec), store::RecordFrameDecoder::Status::kCorrupt);
}

// --- the same corruption, shipped over a socket ----------------------------
//
// A replica receiving a corrupted kShipBatch stream must reject loudly
// (error reply, connection closed) and keep its applied watermark —
// never a partial or phantom apply.

#ifdef __linux__

TEST_F(RecordFrameFuzz, ReplicaRejectsCorruptedShipStreamLoudly) {
  const std::string wal =
      (std::filesystem::temp_directory_path() /
       ("fuzz_replica_wal_" + std::to_string(::getpid()) + ".bin"))
          .string();
  std::filesystem::remove(wal);

  repl::ReplicaOptions ropt;
  ropt.wal_path = wal;
  ropt.lanes = 2;
  ropt.nrows = 64;
  ropt.ncols = 64;
  ropt.cuts = hier::CutPolicy::geometric(3, 2048, 8);
  ropt.auto_promote = false;
  repl::ReplicaServer replica(ropt);
  replica.start();

  // Handshake + two valid batches.
  net::Client::Options copt;
  copt.recv_timeout_ms = 5000;
  net::Client cli(copt);
  cli.connect("127.0.0.1", replica.port());
  repl::ShipHello hello;
  hello.lanes = 2;
  hello.nrows = 64;
  hello.ncols = 64;
  std::string frame;
  net::append_frame(frame, net::MsgType::kShipHello, 0, &hello, sizeof hello);
  cli.send_raw(frame.data(), frame.size());
  auto hr = cli.read_reply();
  ASSERT_EQ(net::tag_type(hr.epoch), net::MsgType::kReplyOk);

  auto ship = [&](std::uint64_t seq) {
    gbx::Tuples<double> b;
    b.push_back(static_cast<gbx::Index>(seq % 64),
                static_cast<gbx::Index>((seq * 7) % 64), 1.0);
    const std::string payload = repl::encode_batch_payload(seq % 2, b);
    std::string f;
    net::append_frame(f, net::MsgType::kShipBatch, seq, payload.data(),
                      payload.size());
    return f;
  };
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    const std::string f = ship(seq);
    cli.send_raw(f.data(), f.size());
    auto ack = cli.read_reply();
    ASSERT_EQ(net::tag_type(ack.epoch), net::MsgType::kShipAck);
    ASSERT_EQ(net::tag_arg(ack.epoch), seq);
  }

  // Now a corrupted batch frame: flip one random byte per round.
  std::string f3 = ship(3);
  std::uniform_int_distribution<std::size_t> pos(8, f3.size() - 1);
  std::string mutated = f3;
  const std::size_t at = pos(rng_);
  mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
  cli.send_raw(mutated.data(), mutated.size());
  // Loud rejection: an error reply (then EOF) or a straight close.
  try {
    auto rep = cli.read_reply();
    EXPECT_EQ(net::tag_type(rep.epoch), net::MsgType::kReplyError)
        << "corrupt ship frame must never be acked";
  } catch (const gbx::Error&) {
    // Connection closed on us: equally loud.
  }

  replica.stop();
  EXPECT_EQ(replica.applied_seq(), 2u)
      << "corrupt frame must not advance the applied watermark";
  std::filesystem::remove(wal);
}

#endif  // __linux__

}  // namespace
