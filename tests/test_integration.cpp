// Cross-module integration tests: the full pipelines the examples and
// benches rely on, with end-to-end value checks.
#include <gtest/gtest.h>

#include <map>

#include "analytics/analytics.hpp"
#include "assoc/assoc.hpp"
#include "cluster/cluster.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"
#include "store/store.hpp"

namespace {

using gbx::Index;

// All four ingestion systems (hier GraphBLAS, direct GraphBLAS, LSM,
// B+tree) fed the same stream must agree on the final traffic matrix.
TEST(CrossSystem, AllStoresAgreeOnFinalState) {
  gen::PowerLawParams pp;
  pp.scale = 10;
  pp.dim = 1u << 20;
  pp.seed = 42;
  gen::PowerLawGenerator g(pp);
  auto batch = g.batch<double>(30000);

  hier::HierMatrix<double> h(pp.dim, pp.dim, hier::CutPolicy::geometric(3, 512, 8));
  gbx::Matrix<double> direct(pp.dim, pp.dim);
  store::LsmStore lsm;
  store::BTreeStore btree;

  for (const auto& e : batch) {
    h.update(e.row, e.col, e.val);
    lsm.insert({e.row, e.col}, e.val);
    btree.insert({e.row, e.col}, e.val);
  }
  direct.append(batch);
  direct.materialize();

  auto snap = h.snapshot();
  ASSERT_TRUE(gbx::equal(snap, direct));
  ASSERT_EQ(lsm.size(), snap.nvals());
  ASSERT_EQ(btree.size(), snap.nvals());

  snap.for_each([&](Index i, Index j, double v) {
    EXPECT_NEAR(lsm.get({i, j}).value(), v, 1e-9);
    EXPECT_NEAR(btree.get({i, j}).value(), v, 1e-9);
  });
}

// The hierarchical D4M path agrees with hierarchical GraphBLAS modulo the
// string dictionary.
TEST(CrossSystem, HierAssocMatchesHierMatrix) {
  gen::PowerLawParams pp;
  pp.scale = 8;
  pp.dim = 1u << 16;
  pp.seed = 7;
  gen::PowerLawGenerator g(pp);
  auto batch = g.batch<double>(5000);

  hier::HierMatrix<double> h(pp.dim, pp.dim, hier::CutPolicy({100, 1000}));
  assoc::HierAssoc<double> ha(pp.dim, hier::CutPolicy({100, 1000}));

  for (const auto& e : batch) {
    h.update(e.row, e.col, e.val);
    ha.insert(std::to_string(e.row), std::to_string(e.col), e.val);
  }
  auto snap = h.snapshot();
  EXPECT_EQ(ha.hierarchy().snapshot().nvals(), snap.nvals());
  snap.for_each([&](Index i, Index j, double v) {
    EXPECT_NEAR(ha.get(std::to_string(i), std::to_string(j)), v, 1e-9);
  });
}

// Multi-instance scaling harness: every instance independently equals a
// direct single-threaded replay of its seed.
TEST(CrossSystem, HarnessInstancesMatchReplays) {
  cluster::WorkloadSpec w;
  w.sets = 3;
  w.set_size = 2000;
  w.scale = 10;
  w.seed = 500;

  const std::size_t P = 3;
  std::vector<gbx::Matrix<double>> replays;
  for (std::size_t p = 0; p < P; ++p) {
    gen::PowerLawParams pp;
    pp.scale = w.scale;
    pp.alpha = w.alpha;
    pp.dim = w.dim;
    pp.seed = w.seed + p;
    gen::PowerLawGenerator g(pp);
    gbx::Matrix<double> m(w.dim, w.dim);
    for (std::size_t s = 0; s < w.sets; ++s) m.append(g.batch<double>(w.set_size));
    m.materialize();
    replays.push_back(std::move(m));
  }

  // Re-run through the harness machinery (run_instances drives the same
  // generator seeds) and hold instances for comparison.
  hier::InstanceArray<double> arr(P, w.dim, w.dim,
                                  hier::CutPolicy::geometric(3, 1024, 8));
  for (std::size_t s = 0; s < w.sets; ++s) {
    std::vector<gbx::Tuples<double>> batches(P);
    for (std::size_t p = 0; p < P; ++p) {
      gen::PowerLawParams pp;
      pp.scale = w.scale;
      pp.dim = w.dim;
      pp.seed = w.seed + p;
      gen::PowerLawGenerator g(pp);
      // advance to set s by regenerating prior sets (determinism check)
      for (std::size_t skip = 0; skip < s; ++skip) (void)g.batch<double>(w.set_size);
      batches[p] = g.batch<double>(w.set_size);
    }
    arr.update_parallel(batches);
  }
  for (std::size_t p = 0; p < P; ++p)
    EXPECT_TRUE(gbx::equal(arr.instance(p).snapshot(), replays[p]));
}

// Streaming + windowed analytics: totals accumulate monotonically and the
// final summary equals the one-shot summary.
TEST(Pipeline, WindowedAnalyticsConsistent) {
  gen::PowerLawParams pp;
  pp.scale = 11;
  pp.seed = 77;
  gen::PowerLawGenerator g(pp);
  hier::HierMatrix<double> h(pp.dim, pp.dim,
                             hier::CutPolicy::geometric(4, 2048, 8));
  gbx::Matrix<double> all(pp.dim, pp.dim);

  double prev_packets = 0;
  for (int s = 0; s < 8; ++s) {
    auto batch = g.batch<double>(4000);
    h.update(batch);
    all.append(batch);
    auto sum = analytics::summarize(h.snapshot());
    EXPECT_GE(sum.packets, prev_packets);
    prev_packets = sum.packets;
  }
  all.materialize();
  auto direct_sum = analytics::summarize(all);
  EXPECT_DOUBLE_EQ(direct_sum.packets, prev_packets);
  EXPECT_EQ(direct_sum.links, h.snapshot().nvals());
}

// LSM and associative arrays compose: Accumulo-D4M style (string keys
// over an LSM store) agrees with the assoc array on content.
TEST(Pipeline, AccumuloD4mComposition) {
  gen::PowerLawParams pp;
  pp.scale = 8;
  pp.dim = 1u << 16;
  pp.seed = 3;
  gen::PowerLawGenerator g(pp);
  auto batch = g.batch<double>(3000);

  assoc::AssocArray<double> a(pp.dim);
  store::LsmStore lsm;
  for (const auto& e : batch) {
    a.insert(std::to_string(e.row), std::to_string(e.col), e.val);
    lsm.insert({e.row, e.col}, e.val);
  }
  a.materialize();
  EXPECT_EQ(a.nvals(), lsm.size());
  std::size_t checked = 0;
  lsm.scan([&](store::Key k, double v) {
    EXPECT_NEAR(a.get(std::to_string(k.row), std::to_string(k.col)), v, 1e-9);
    ++checked;
  });
  EXPECT_EQ(checked, lsm.size());
}

}  // namespace
