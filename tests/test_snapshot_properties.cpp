// Property-based differential tests for the snapshot engine: randomized
// interleavings of update / flush / collapse / freeze across monoids and
// cut policies, with every frozen snapshot checked entry-for-entry
// against a dense reference replay of the exact operation prefix it
// claims to represent — including AFTER the source matrix has moved on
// (immutability is the property that makes query-while-ingest sound).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analytics/analytics.hpp"
#include "hier/hier.hpp"
#include "prop_util.hpp"

namespace {

using gbx::Index;
using hier::CutPolicy;
using hier::HierMatrix;
using hier::HierSnapshot;
using proptest::DenseRef;

// Pinned base seeds (perturbed by HHGBX_SEED, see prop_util.hpp).
constexpr std::uint64_t kSeedInterleave = 0xA11CE001;
constexpr std::uint64_t kSeedMonoid = 0xA11CE002;
constexpr std::uint64_t kSeedEngine = 0xA11CE003;
constexpr std::uint64_t kSeedSharded = 0xA11CE004;

std::vector<CutPolicy> cut_policies() {
  return {
      CutPolicy({1, 2, 4}),                  // pathological: fold on ~every op
      CutPolicy({7, 31}),                    // small primes, frequent folds
      CutPolicy::geometric(4, 64, 8),        // typical
      CutPolicy({1000000}),                  // cuts never hit (no folds)
  };
}

/// One randomized episode: a stream of random single/batched updates
/// with flushes and destructive collapses mixed in; freezes taken at
/// random points, each paired with a copy of the reference at that
/// prefix. All snapshots are verified at the END of the episode, after
/// the matrix has kept mutating — so a snapshot that is disturbed by
/// later folds fails loudly.
template <class M>
void random_interleaving_episode(std::uint64_t seed, const CutPolicy& cuts,
                                 int ops) {
  using T = typename M::value_type;
  constexpr Index dim = 128;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> op_pick(0, 99);

  HierMatrix<T, M> h(dim, dim, cuts);
  DenseRef<T, M> ref;
  std::vector<HierSnapshot<T, M>> snaps;
  std::vector<DenseRef<T, M>> prefixes;
  std::vector<std::uint64_t> epochs;

  for (int k = 0; k < ops; ++k) {
    const int op = op_pick(rng);
    if (op < 55) {  // single-entry update
      auto b = proptest::random_batch<T>(rng, dim, 1);
      h.update(b[0].row, b[0].col, b[0].val);
      ref.apply(b[0].row, b[0].col, b[0].val);
    } else if (op < 80) {  // batched update
      std::uniform_int_distribution<std::size_t> len(1, 64);
      auto b = proptest::random_batch<T>(rng, dim, len(rng));
      h.update(b);
      ref.apply(b);
    } else if (op < 88) {  // force the full cascade
      h.flush();
    } else if (op < 92) {  // destructive (but value-preserving) fold-to-top
      (void)h.collapse();
    } else {  // freeze: record the snapshot and the prefix it represents
      snaps.push_back(h.freeze());
      prefixes.push_back(ref);
      epochs.push_back(h.epoch());
    }
  }
  snaps.push_back(h.freeze());
  prefixes.push_back(ref);
  epochs.push_back(h.epoch());

  for (std::size_t s = 0; s < snaps.size(); ++s) {
    SCOPED_TRACE(::testing::Message() << "snapshot " << s << " of "
                                      << snaps.size() << ", epoch "
                                      << snaps[s].epoch());
    EXPECT_EQ(snaps[s].epoch(), epochs[s]);
    EXPECT_TRUE(prefixes[s].matches(snaps[s]));
    // The no-materialization scalar reduce agrees with the dense replay.
    EXPECT_EQ(snaps[s].reduce(), prefixes[s].reduce());
    for (std::size_t l = 0; l < snaps[s].num_levels(); ++l)
      EXPECT_TRUE(snaps[s].level(l).validate());
  }
}

TEST(SnapshotProperties, RandomInterleavingsPlusDouble) {
  HHGBX_PROP_SEED(seed, kSeedInterleave);
  int which = 0;
  for (const auto& cuts : cut_policies()) {
    SCOPED_TRACE(::testing::Message() << "cut policy #" << which++);
    random_interleaving_episode<gbx::PlusMonoid<double>>(
        proptest::mix(seed + static_cast<std::uint64_t>(which)), cuts, 400);
  }
}

TEST(SnapshotProperties, RandomInterleavingsPlusInt64) {
  HHGBX_PROP_SEED(seed, kSeedMonoid);
  for (const auto& cuts : cut_policies())
    random_interleaving_episode<gbx::PlusMonoid<std::int64_t>>(
        proptest::mix(seed ^ 0x1), cuts, 300);
}

TEST(SnapshotProperties, RandomInterleavingsMinInt64) {
  HHGBX_PROP_SEED(seed, kSeedMonoid);
  for (const auto& cuts : cut_policies())
    random_interleaving_episode<gbx::MinMonoid<std::int64_t>>(
        proptest::mix(seed ^ 0x2), cuts, 300);
}

TEST(SnapshotProperties, RandomInterleavingsMaxInt64) {
  HHGBX_PROP_SEED(seed, kSeedMonoid);
  for (const auto& cuts : cut_policies())
    random_interleaving_episode<gbx::MaxMonoid<std::int64_t>>(
        proptest::mix(seed ^ 0x3), cuts, 300);
}

// freeze() and the legacy materializing snapshot() must agree at every
// point of a random stream (they are two readings of the same value).
TEST(SnapshotProperties, FreezeMatchesLegacySnapshot) {
  HHGBX_PROP_SEED(seed, kSeedInterleave);
  std::mt19937_64 rng(seed);
  HierMatrix<double> h(256, 256, CutPolicy({5, 50}));
  for (int k = 0; k < 40; ++k) {
    h.update(proptest::random_batch<double>(rng, 256, 32));
    auto frozen = h.freeze().to_matrix();
    auto legacy = h.snapshot();
    EXPECT_TRUE(gbx::equal(frozen, legacy)) << "diverged at step " << k;
  }
}

// A snapshot pinned before heavy churn (updates, flushes, collapse) must
// be bit-stable: the COW discipline forbids any disturbance.
TEST(SnapshotProperties, SnapshotImmutableUnderLaterChurn) {
  HHGBX_PROP_SEED(seed, kSeedInterleave);
  std::mt19937_64 rng(proptest::mix(seed));
  HierMatrix<double> h(128, 128, CutPolicy({3, 9, 27}));
  DenseRef<double> ref;
  for (int k = 0; k < 100; ++k) {
    auto b = proptest::random_batch<double>(rng, 128, 16);
    h.update(b);
    ref.apply(b);
  }
  auto snap = h.freeze();
  const DenseRef<double> pinned = ref;

  for (int k = 0; k < 100; ++k) h.update(proptest::random_batch<double>(rng, 128, 64));
  h.flush();
  (void)h.collapse();
  h.update(proptest::random_batch<double>(rng, 128, 64));

  EXPECT_TRUE(pinned.matches(snap));
  EXPECT_EQ(snap.reduce(), pinned.reduce());
}

// Checkpointing a snapshot and checkpointing the (quiesced) matrix at
// the same epoch produce byte-identical files, and restore() accepts
// the snapshot-sourced container.
TEST(SnapshotProperties, SnapshotCheckpointMatchesMatrixCheckpoint) {
  HHGBX_PROP_SEED(seed, kSeedEngine);
  std::mt19937_64 rng(seed);
  HierMatrix<double> h(512, 512, CutPolicy::geometric(3, 32, 8));
  for (int k = 0; k < 50; ++k) h.update(proptest::random_batch<double>(rng, 512, 40));

  auto snap = h.freeze();
  std::ostringstream from_snap, from_matrix;
  hier::checkpoint(from_snap, snap);
  hier::checkpoint(from_matrix, h);
  EXPECT_EQ(from_snap.str(), from_matrix.str());

  std::istringstream is(from_snap.str());
  auto restored = hier::restore<double>(is);
  EXPECT_TRUE(gbx::equal(restored.snapshot(), snap.to_matrix()));
}

// SnapshotEngine facade: epochs recorded across successive acquires are
// exactly the matrix's update counter at each freeze.
TEST(SnapshotProperties, EngineTracksEpochs) {
  HHGBX_PROP_SEED(seed, kSeedEngine);
  std::mt19937_64 rng(proptest::mix(seed));
  HierMatrix<double> h(64, 64, CutPolicy({4}));
  hier::SnapshotEngine<HierMatrix<double>> engine(h);

  std::uint64_t expected_updates = 0;
  for (int k = 0; k < 25; ++k) {
    const int n = 1 + static_cast<int>(rng() % 5);
    for (int u = 0; u < n; ++u) h.update(proptest::random_batch<double>(rng, 64, 8));
    expected_updates += static_cast<std::uint64_t>(n);
    auto snap = engine.acquire();
    EXPECT_EQ(snap.epoch(), expected_updates);
    EXPECT_EQ(engine.last_epoch(), expected_updates);
  }
  EXPECT_EQ(engine.snapshots_taken(), 25u);
}

// Single-threaded ShardedHier freeze: with no concurrency, every freeze
// must contain exactly the submitted batches (the prefix is "all of
// them") and the stitched epoch equals the batch count.
TEST(SnapshotProperties, ShardedFreezeIsExactWhenQuiesced) {
  HHGBX_PROP_SEED(seed, kSeedSharded);
  std::mt19937_64 rng(seed);
  hier::ShardedHier<double> sharded(4, 1u << 20, 1u << 20, CutPolicy({16, 256}));
  DenseRef<double> ref;
  for (int k = 0; k < 30; ++k) {
    auto b = proptest::random_batch<double>(rng, 1u << 20, 25);
    sharded.update(b);
    ref.apply(b);
    auto snap = sharded.freeze();
    EXPECT_EQ(snap.epoch(), static_cast<std::uint64_t>(k + 1));
    EXPECT_TRUE(ref.matches(snap.to_matrix()));
    EXPECT_EQ(snap.reduce(), ref.reduce());
  }
}

// View-accepting kernels agree with their Matrix counterparts on the
// frozen levels (the "analytics accept views" contract).
TEST(SnapshotProperties, ViewKernelsMatchMatrixKernels) {
  HHGBX_PROP_SEED(seed, kSeedEngine);
  std::mt19937_64 rng(seed ^ 0xBEEF);
  HierMatrix<double> h(512, 512, CutPolicy({8, 64}));
  for (int k = 0; k < 40; ++k) h.update(proptest::random_batch<double>(rng, 512, 30));

  auto snap = h.freeze();
  auto materialized = snap.to_matrix();
  // Whole-snapshot reduce vs materialized reduce.
  EXPECT_DOUBLE_EQ(snap.reduce(),
                   gbx::reduce_scalar<gbx::PlusMonoid<double>>(materialized));
  // Per-level view kernels vs a per-level materialized copy.
  for (std::size_t l = 0; l < snap.num_levels(); ++l) {
    const auto& v = snap.level(l);
    gbx::Matrix<double> copy(v.nrows(), v.ncols());
    copy.plus_assign(v);
    EXPECT_DOUBLE_EQ(gbx::reduce_scalar<gbx::PlusMonoid<double>>(v),
                     gbx::reduce_scalar<gbx::PlusMonoid<double>>(copy));
    EXPECT_EQ(gbx::reduce_rows<gbx::PlusMonoid<double>>(v).nvals(),
              gbx::reduce_rows<gbx::PlusMonoid<double>>(copy).nvals());
    EXPECT_EQ(gbx::reduce_cols<gbx::PlusMonoid<double>>(v).nvals(),
              gbx::reduce_cols<gbx::PlusMonoid<double>>(copy).nvals());
    auto vs = analytics::summarize(v);
    auto ms = analytics::summarize(copy);
    EXPECT_EQ(vs.links, ms.links);
    EXPECT_DOUBLE_EQ(vs.packets, ms.packets);
    EXPECT_EQ(vs.sources, ms.sources);
    EXPECT_EQ(vs.destinations, ms.destinations);
  }
}

}  // namespace
