// Tests for submatrix extraction, assignment, and Kronecker products.
#include <gtest/gtest.h>

#include "gbx/gbx.hpp"

namespace {

using gbx::Index;
using gbx::Matrix;

Matrix<double> grid(Index n) {
  Matrix<double> m(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      m.set_element(i, j, static_cast<double>(i * n + j + 1));
  m.materialize();
  return m;
}

TEST(Extract, ListRemapsToPositions) {
  auto m = grid(6);
  std::vector<Index> I{1, 4};
  std::vector<Index> J{0, 3, 5};
  auto s = gbx::extract(m, I, J);
  EXPECT_EQ(s.nrows(), 2u);
  EXPECT_EQ(s.ncols(), 3u);
  EXPECT_EQ(s.nvals(), 6u);
  // s(0, 1) = m(1, 3) = 1*6+3+1 = 10
  EXPECT_DOUBLE_EQ(s.extract_element(0, 1).value(), 10.0);
  // s(1, 2) = m(4, 5) = 4*6+5+1 = 30
  EXPECT_DOUBLE_EQ(s.extract_element(1, 2).value(), 30.0);
}

TEST(Extract, MissingRowsGiveEmptyResultRows) {
  Matrix<double> m(10, 10);
  m.set_element(2, 2, 1.0);
  std::vector<Index> I{1, 2};
  std::vector<Index> J{2, 3};
  auto s = gbx::extract(m, I, J);
  EXPECT_EQ(s.nvals(), 1u);
  EXPECT_DOUBLE_EQ(s.extract_element(1, 0).value(), 1.0);
}

TEST(Extract, ValidationErrors) {
  auto m = grid(4);
  std::vector<Index> unsorted{2, 1};
  std::vector<Index> ok{0, 1};
  std::vector<Index> dup{1, 1};
  std::vector<Index> oob{3, 7};
  std::vector<Index> empty;
  EXPECT_THROW(gbx::extract(m, unsorted, ok), gbx::Error);
  EXPECT_THROW(gbx::extract(m, dup, ok), gbx::Error);
  EXPECT_THROW(gbx::extract(m, oob, ok), gbx::IndexOutOfBounds);
  EXPECT_THROW(gbx::extract(m, empty, ok), gbx::InvalidValue);
}

TEST(ExtractRange, ShiftsToOrigin) {
  auto m = grid(8);
  auto s = gbx::extract_range(m, 2, 5, 3, 7);
  EXPECT_EQ(s.nrows(), 3u);
  EXPECT_EQ(s.ncols(), 4u);
  EXPECT_EQ(s.nvals(), 12u);
  // s(0, 0) = m(2, 3) = 2*8+3+1 = 20
  EXPECT_DOUBLE_EQ(s.extract_element(0, 0).value(), 20.0);
}

TEST(ExtractRange, HypersparseWindow) {
  Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  m.set_element(1000000, 2000000, 7.0);
  m.set_element(1000001, 2000001, 8.0);
  m.set_element(5000000, 2000000, 9.0);
  auto s = gbx::extract_range(m, 1000000, 1000002, 2000000, 2000002);
  EXPECT_EQ(s.nvals(), 2u);
  EXPECT_DOUBLE_EQ(s.extract_element(0, 0).value(), 7.0);
  EXPECT_DOUBLE_EQ(s.extract_element(1, 1).value(), 8.0);
}

TEST(ExtractRange, Errors) {
  auto m = grid(4);
  EXPECT_THROW(gbx::extract_range(m, 2, 2, 0, 1), gbx::InvalidValue);
  EXPECT_THROW(gbx::extract_range(m, 0, 5, 0, 1), gbx::IndexOutOfBounds);
}

TEST(Assign, ReplacesRegion) {
  auto m = grid(4);  // fully dense 4x4
  Matrix<double> sub(2, 2);
  sub.set_element(0, 0, 100.0);
  // (1,3)x(0,2) region: entries not covered by sub are deleted.
  std::vector<Index> I{1, 3};
  std::vector<Index> J{0, 2};
  gbx::assign(m, I, J, sub);
  EXPECT_DOUBLE_EQ(m.extract_element(1, 0).value(), 100.0);
  EXPECT_FALSE(m.extract_element(1, 2).has_value());
  EXPECT_FALSE(m.extract_element(3, 0).has_value());
  EXPECT_FALSE(m.extract_element(3, 2).has_value());
  // outside the region untouched
  EXPECT_DOUBLE_EQ(m.extract_element(0, 0).value(), 1.0);
  EXPECT_DOUBLE_EQ(m.extract_element(1, 1).value(), 6.0);
  EXPECT_EQ(m.nvals(), 16u - 4u + 1u);
}

TEST(Assign, DimMismatchThrows) {
  auto m = grid(4);
  Matrix<double> sub(2, 3);
  std::vector<Index> I{1, 3};
  std::vector<Index> J{0, 2};
  EXPECT_THROW(gbx::assign(m, I, J, sub), gbx::DimensionMismatch);
}

TEST(Assign, ExtractRoundTrip) {
  auto m = grid(6);
  std::vector<Index> I{0, 2, 4};
  std::vector<Index> J{1, 3};
  auto s = gbx::extract(m, I, J);
  auto m2 = m;
  gbx::assign(m2, I, J, s);  // assigning the extraction back is a no-op
  EXPECT_TRUE(gbx::equal(m, m2));
}

TEST(Kron, TinyKnown) {
  // kron([1 2], [3; 4]) = [[3, 6], [4, 8]] placed block-wise.
  Matrix<double> a(1, 2), b(2, 1);
  a.set_element(0, 0, 1);
  a.set_element(0, 1, 2);
  b.set_element(0, 0, 3);
  b.set_element(1, 0, 4);
  auto c = gbx::kron<gbx::Times<double>>(a, b);
  EXPECT_EQ(c.nrows(), 2u);
  EXPECT_EQ(c.ncols(), 2u);
  EXPECT_DOUBLE_EQ(c.extract_element(0, 0).value(), 3.0);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 0).value(), 4.0);
  EXPECT_DOUBLE_EQ(c.extract_element(0, 1).value(), 6.0);
  EXPECT_DOUBLE_EQ(c.extract_element(1, 1).value(), 8.0);
}

TEST(Kron, NnzMultiplies) {
  auto a = grid(3);
  auto b = grid(4);
  auto c = gbx::kron<gbx::Times<double>>(a, b);
  EXPECT_EQ(c.nvals(), a.nvals() * b.nvals());
  EXPECT_EQ(c.nrows(), 12u);
  EXPECT_TRUE(c.validate());
}

TEST(Kron, SelfPowerBuildsKroneckerGraph) {
  // The Graph500 construction: kron of a small seed with itself grows a
  // power-law-ish graph; nnz is seed_nnz^k.
  Matrix<double> seed(2, 2);
  seed.set_element(0, 0, 1);
  seed.set_element(0, 1, 1);
  seed.set_element(1, 0, 1);
  auto g2 = gbx::kron<gbx::Times<double>>(seed, seed);
  auto g3 = gbx::kron<gbx::Times<double>>(g2, seed);
  EXPECT_EQ(g2.nvals(), 9u);
  EXPECT_EQ(g3.nvals(), 27u);
  EXPECT_EQ(g3.nrows(), 8u);
}

TEST(Kron, OverflowGuard) {
  Matrix<double> a(gbx::kIPv6Dim, 2), b(gbx::kIPv6Dim, 2);
  EXPECT_THROW((gbx::kron<gbx::Times<double>>(a, b)), gbx::InvalidValue);
}

}  // namespace
