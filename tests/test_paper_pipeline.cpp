// Capstone integration test: the paper's experiment, end to end, at
// reduced scale. Section III's shape — a power-law graph divided into
// sets, streamed simultaneously by many instances, network statistics
// computed on the streams, results combined — plus the operational steps
// a deployment adds (checkpoint mid-stream, restore, merge).
#include <gtest/gtest.h>

#include <sstream>

#include "analytics/analytics.hpp"
#include "cluster/cluster.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

using gbx::Index;

TEST(PaperPipeline, EndToEnd) {
  // The paper: 1,000 sets of 100,000 entries per graph, one graph per
  // process. Scaled: 4 instances x 25 sets x 4,000 entries, same shape.
  constexpr std::size_t kInstances = 4;
  constexpr std::size_t kSets = 25;
  constexpr std::size_t kSetSize = 4000;

  gen::PowerLawParams base;
  base.scale = 12;
  base.alpha = 1.3;
  base.dim = gbx::kIPv4Dim;

  const auto cuts = hier::CutPolicy::geometric(4, 2048, 8);

  // --- stream per instance, with mid-stream analytics ----------------
  std::vector<hier::HierMatrix<double>> instances;
  gbx::Matrix<double> reference(base.dim, base.dim);
  for (std::size_t p = 0; p < kInstances; ++p) {
    gen::PowerLawParams pp = base;
    pp.seed = 1000 + p;
    gen::PowerLawGenerator g(pp);
    hier::HierMatrix<double> h(base.dim, base.dim, cuts);
    double last_packets = 0;
    for (std::size_t s = 0; s < kSets; ++s) {
      auto batch = g.batch<double>(kSetSize);
      h.update(batch);
      reference.append(batch);
      if (s % 8 == 4) {
        // "each process would also compute various network statistics
        // on each of the streams as they are updated"
        auto sum = analytics::summarize(h.snapshot());
        EXPECT_GT(sum.packets, last_packets);
        last_packets = sum.packets;
        EXPECT_GT(analytics::source_entropy(h.snapshot()), 0.0);
      }
    }
    // cascade really engaged
    EXPECT_GT(h.stats().level[0].folds, 0u);
    instances.push_back(std::move(h));
  }
  reference.materialize();

  // --- checkpoint/restore one instance mid-life ----------------------
  std::stringstream disk;
  hier::checkpoint(disk, instances[2]);
  instances[2] = hier::restore<double>(disk);

  // --- combine all instances (distributed reduce) --------------------
  hier::tree_reduce(instances);
  const auto combined = instances[0].snapshot();
  ASSERT_TRUE(gbx::equal(combined, reference))
      << "combined instance matrices diverged from the global reference";

  // --- analyze the global traffic matrix -----------------------------
  auto sum = analytics::summarize(combined);
  EXPECT_EQ(sum.links, combined.nvals());
  EXPECT_DOUBLE_EQ(sum.packets,
                   static_cast<double>(kInstances * kSets * kSetSize));

  auto top = analytics::top_sources(combined, 10);
  ASSERT_FALSE(top.empty());
  EXPECT_GE(top.front().value, top.back().value);

  auto hist = analytics::out_degree_histogram(combined);
  EXPECT_LT(analytics::power_law_slope(hist), 0.0);  // heavy tail survives

  auto agg = analytics::aggregate_prefixes(combined, 8);
  EXPECT_NEAR(gbx::reduce_scalar<gbx::PlusMonoid<double>>(agg), sum.packets,
              1e-6 * sum.packets);
}

}  // namespace
