// Unit tests for the gbx algebra layer: operators, monoids, semirings.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

#include "gbx/monoid.hpp"
#include "gbx/ops.hpp"
#include "gbx/semiring.hpp"

namespace {

TEST(Ops, ArithmeticBinary) {
  EXPECT_EQ(gbx::Plus<int>::apply(2, 3), 5);
  EXPECT_EQ(gbx::Minus<int>::apply(2, 3), -1);
  EXPECT_EQ(gbx::Times<int>::apply(2, 3), 6);
  EXPECT_EQ(gbx::Div<int>::apply(7, 2), 3);
  EXPECT_DOUBLE_EQ(gbx::Div<double>::apply(7, 2), 3.5);
  EXPECT_EQ(gbx::Min<int>::apply(2, 3), 2);
  EXPECT_EQ(gbx::Max<int>::apply(2, 3), 3);
}

TEST(Ops, SelectionBinary) {
  EXPECT_EQ(gbx::First<int>::apply(2, 3), 2);
  EXPECT_EQ(gbx::Second<int>::apply(2, 3), 3);
  EXPECT_EQ(gbx::Any<int>::apply(7, 9), 7);
}

TEST(Ops, LogicalBinary) {
  EXPECT_EQ(gbx::LogicalOr<int>::apply(0, 0), 0);
  EXPECT_EQ(gbx::LogicalOr<int>::apply(0, 5), 1);
  EXPECT_EQ(gbx::LogicalAnd<int>::apply(3, 5), 1);
  EXPECT_EQ(gbx::LogicalAnd<int>::apply(3, 0), 0);
  EXPECT_EQ(gbx::LogicalXor<int>::apply(3, 5), 0);
  EXPECT_EQ(gbx::LogicalXor<int>::apply(3, 0), 1);
}

TEST(Ops, Comparisons) {
  EXPECT_EQ(gbx::Eq<int>::apply(2, 2), 1);
  EXPECT_EQ(gbx::Ne<int>::apply(2, 2), 0);
  EXPECT_EQ(gbx::Lt<int>::apply(1, 2), 1);
  EXPECT_EQ(gbx::Gt<int>::apply(1, 2), 0);
}

TEST(Ops, Unary) {
  EXPECT_EQ(gbx::IdentityOp<int>::apply(42), 42);
  EXPECT_EQ(gbx::AInv<int>::apply(42), -42);
  EXPECT_DOUBLE_EQ(gbx::MInv<double>::apply(4.0), 0.25);
  EXPECT_EQ(gbx::Abs<int>::apply(-42), 42);
  EXPECT_EQ(gbx::Abs<std::uint32_t>::apply(42u), 42u);
  EXPECT_EQ(gbx::LogicalNot<int>::apply(0), 1);
  EXPECT_EQ(gbx::LogicalNot<int>::apply(3), 0);
  EXPECT_EQ(gbx::One<int>::apply(99), 1);
}

TEST(Ops, Binders) {
  gbx::Bind2nd<gbx::Plus<int>> add5{5};
  EXPECT_EQ(add5.apply(2), 7);
  gbx::Bind1st<gbx::Minus<int>> tenMinus{10};
  EXPECT_EQ(tenMinus.apply(3), 7);
}

TEST(Monoids, Identities) {
  EXPECT_EQ(gbx::PlusMonoid<int>::identity(), 0);
  EXPECT_EQ(gbx::TimesMonoid<int>::identity(), 1);
  EXPECT_EQ(gbx::MinMonoid<int>::identity(), std::numeric_limits<int>::max());
  EXPECT_EQ(gbx::MaxMonoid<int>::identity(), std::numeric_limits<int>::lowest());
  EXPECT_EQ(gbx::MinMonoid<double>::identity(), std::numeric_limits<double>::max());
  EXPECT_EQ(gbx::LorMonoid<int>::identity(), 0);
  EXPECT_EQ(gbx::LandMonoid<int>::identity(), 1);
  EXPECT_EQ(gbx::LxorMonoid<int>::identity(), 0);
}

// `boolean_domain`: logical monoids are monoids over {0, 1} (values are
// normalized to 0/1 by the op), so their laws are checked on that domain.
template <class M>
void check_monoid_laws(bool boolean_domain = false) {
  using T = typename M::value_type;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> d(boolean_domain ? 0 : -50,
                                                boolean_domain ? 1 : 50);
  for (int trial = 0; trial < 200; ++trial) {
    const T a = static_cast<T>(d(rng));
    const T b = static_cast<T>(d(rng));
    const T c = static_cast<T>(d(rng));
    // identity
    EXPECT_EQ(M::apply(a, M::identity()), a);
    EXPECT_EQ(M::apply(M::identity(), a), a);
    // commutativity
    EXPECT_EQ(M::apply(a, b), M::apply(b, a));
    // associativity
    EXPECT_EQ(M::apply(M::apply(a, b), c), M::apply(a, M::apply(b, c)));
  }
}

TEST(Monoids, LawsPlusInt64) { check_monoid_laws<gbx::PlusMonoid<std::int64_t>>(); }
TEST(Monoids, LawsMinInt64) { check_monoid_laws<gbx::MinMonoid<std::int64_t>>(); }
TEST(Monoids, LawsMaxInt64) { check_monoid_laws<gbx::MaxMonoid<std::int64_t>>(); }
TEST(Monoids, LawsLorInt) { check_monoid_laws<gbx::LorMonoid<int>>(true); }
TEST(Monoids, LawsLandInt) { check_monoid_laws<gbx::LandMonoid<int>>(true); }
TEST(Monoids, LawsLxorInt) { check_monoid_laws<gbx::LxorMonoid<int>>(true); }

template <class S>
void check_semiring_laws(bool boolean_domain = false) {
  using T = typename S::value_type;
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> d(boolean_domain ? 0 : -20,
                                                boolean_domain ? 1 : 20);
  for (int trial = 0; trial < 200; ++trial) {
    const T a = static_cast<T>(d(rng));
    const T b = static_cast<T>(d(rng));
    const T c = static_cast<T>(d(rng));
    // additive identity is multiplicative annihilator-ish checks are not
    // universal (min-plus!), but distributivity must hold:
    EXPECT_EQ(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
    EXPECT_EQ(S::mul(S::add(a, b), c), S::add(S::mul(a, c), S::mul(b, c)));
    // additive identity
    EXPECT_EQ(S::add(a, S::zero()), a);
  }
}

TEST(Semirings, DistributivityPlusTimes) {
  check_semiring_laws<gbx::PlusTimes<std::int64_t>>();
}
TEST(Semirings, DistributivityMinPlus) {
  check_semiring_laws<gbx::MinPlus<std::int64_t>>();
}
TEST(Semirings, DistributivityMaxPlus) {
  check_semiring_laws<gbx::MaxPlus<std::int64_t>>();
}
TEST(Semirings, DistributivityLorLand) {
  check_semiring_laws<gbx::LorLand<int>>(true);
}

TEST(Semirings, MinPlusBehaves) {
  using S = gbx::MinPlus<std::int64_t>;
  EXPECT_EQ(S::add(3, 5), 3);
  EXPECT_EQ(S::mul(3, 5), 8);
  EXPECT_EQ(S::zero(), std::numeric_limits<std::int64_t>::max());
}

TEST(TypeNames, Names) {
  EXPECT_STREQ(gbx::type_name<double>(), "fp64");
  EXPECT_STREQ(gbx::type_name<float>(), "fp32");
  EXPECT_STREQ(gbx::type_name<std::int32_t>(), "int32");
  EXPECT_STREQ(gbx::type_name<std::uint64_t>(), "uint64");
  EXPECT_STREQ(gbx::type_name<bool>(), "bool");
}

}  // namespace
