// Tests for D4M associative array algebra (assoc_ops.hpp) and the flow
// record reader.
#include <gtest/gtest.h>

#include <sstream>

#include "analytics/flow_reader.hpp"
#include "assoc/assoc.hpp"

namespace {

using assoc::AssocArray;

AssocArray<double> make_a() {
  AssocArray<double> a;
  a.insert("r1", "c1", 1.0);
  a.insert("r1", "c2", 2.0);
  a.insert("r2", "c1", 3.0);
  a.materialize();
  return a;
}

AssocArray<double> make_b() {
  AssocArray<double> b;
  b.insert("r2", "c1", 10.0);
  b.insert("r3", "c3", 30.0);
  b.materialize();
  return b;
}

TEST(AssocOps, AddUnionsDictionaries) {
  auto c = assoc::add(make_a(), make_b());
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_DOUBLE_EQ(c.get("r1", "c1"), 1.0);
  EXPECT_DOUBLE_EQ(c.get("r2", "c1"), 13.0);
  EXPECT_DOUBLE_EQ(c.get("r3", "c3"), 30.0);
}

TEST(AssocOps, AddCommutes) {
  auto ab = assoc::add(make_a(), make_b());
  auto ba = assoc::add(make_b(), make_a());
  EXPECT_TRUE(assoc::equal(ab, ba));
}

TEST(AssocOps, EwiseMultIntersects) {
  auto c = assoc::ewise_mult(make_a(), make_b());
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(c.get("r2", "c1"), 30.0);
}

TEST(AssocOps, TransposeSwapsAxes) {
  auto t = assoc::transpose(make_a());
  EXPECT_DOUBLE_EQ(t.get("c1", "r1"), 1.0);
  EXPECT_DOUBLE_EQ(t.get("c2", "r1"), 2.0);
  EXPECT_DOUBLE_EQ(t.get("c1", "r2"), 3.0);
  EXPECT_EQ(t.nvals(), 3u);
  // double transpose is identity
  EXPECT_TRUE(assoc::equal(assoc::transpose(t), make_a()));
}

TEST(AssocOps, Subsref) {
  auto s = assoc::subsref(make_a(), {"r1", "r9"}, {"c1", "c2"});
  EXPECT_EQ(s.nvals(), 2u);
  EXPECT_DOUBLE_EQ(s.get("r1", "c1"), 1.0);
  EXPECT_DOUBLE_EQ(s.get("r1", "c2"), 2.0);
  EXPECT_DOUBLE_EQ(s.get("r2", "c1"), 0.0);
}

TEST(AssocOps, ColSumsAndTopRows) {
  auto a = make_a();
  auto cs = assoc::col_sums(a);
  ASSERT_EQ(cs.size(), 2u);
  double c1 = 0, c2 = 0;
  for (const auto& [k, v] : cs) (k == "c1" ? c1 : c2) = v;
  EXPECT_DOUBLE_EQ(c1, 4.0);
  EXPECT_DOUBLE_EQ(c2, 2.0);

  auto top = assoc::top_rows(a, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, "r1");
  EXPECT_DOUBLE_EQ(top[0].second, 3.0);
}

TEST(AssocOps, EqualDetectsDifferences) {
  auto a = make_a();
  auto b = make_a();
  EXPECT_TRUE(assoc::equal(a, b));
  b.insert("r1", "c1", 0.5);
  b.materialize();
  EXPECT_FALSE(assoc::equal(a, b));
}

TEST(FlowReader, ParsesGoodRecords) {
  std::stringstream ss;
  ss << "# traffic capture\n"
     << "1583366400 10.1.2.3 8.8.8.8 42\n"
     << "\n"
     << "1583366401 10.1.2.4 8.8.4.4 1.5\n";
  gbx::Tuples<double> batch;
  auto st = analytics::read_flows(ss, batch);
  EXPECT_EQ(st.records, 2u);
  EXPECT_EQ(st.malformed, 0u);
  EXPECT_EQ(st.first_timestamp, 1583366400u);
  EXPECT_EQ(st.last_timestamp, 1583366401u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].row, analytics::parse_ipv4("10.1.2.3").value());
  EXPECT_DOUBLE_EQ(batch[0].val, 42.0);
}

TEST(FlowReader, SkipsMalformedLines) {
  std::stringstream ss;
  ss << "1 10.0.0.1 10.0.0.2 5\n"
     << "garbage line\n"
     << "2 300.0.0.1 10.0.0.2 5\n"      // bad IP
     << "3 10.0.0.1 10.0.0.2 -5\n"      // negative count
     << "4 10.0.0.1 10.0.0.2 5 extra\n" // trailing field
     << "5 10.0.0.1 10.0.0.2 7\n";
  gbx::Tuples<double> batch;
  auto st = analytics::read_flows(ss, batch);
  EXPECT_EQ(st.records, 2u);
  EXPECT_EQ(st.malformed, 4u);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(FlowReader, RoundTripWithWriter) {
  analytics::FlowRecord r{1000, analytics::parse_ipv4("1.2.3.4").value(),
                          analytics::parse_ipv4("5.6.7.8").value(), 9.5};
  std::stringstream ss;
  analytics::write_flow(ss, r);
  analytics::FlowRecord r2;
  std::string line;
  std::getline(ss, line);
  ASSERT_TRUE(analytics::parse_flow_line(line, r2));
  EXPECT_EQ(r2.timestamp, r.timestamp);
  EXPECT_EQ(r2.src, r.src);
  EXPECT_EQ(r2.dst, r.dst);
  EXPECT_DOUBLE_EQ(r2.count, r.count);
}

TEST(FlowReader, StreamingCallbackSeesTimestamps) {
  std::stringstream ss;
  for (int t = 0; t < 10; ++t)
    ss << (1000 + t) << " 10.0.0.1 10.0.0.2 1\n";
  gbx::Tuples<double> batch;
  std::vector<std::uint64_t> stamps;
  analytics::read_flows(ss, batch, [&](const analytics::FlowRecord& r) {
    stamps.push_back(r.timestamp);
  });
  ASSERT_EQ(stamps.size(), 10u);
  EXPECT_TRUE(std::is_sorted(stamps.begin(), stamps.end()));
}

}  // namespace
