// cluster/worker_pool.hpp — worker processes for the N-primary router
// (Linux only).
//
// A cluster "worker" is nothing new: it is the PR-6 ingest stack —
// InstanceArray → ParallelStream → MemoryGovernor → IngestServer —
// configured with exactly ONE lane. One lane per worker is the
// bit-identity contract: the router forwards worker w precisely the
// sub-batches ShardedHier(N) would hand shard w, in order, so worker
// w's single HierMatrix replays the identical fold history as that
// shard and every stitched read matches the single-process oracle
// bitwise.
//
// Two packagings of the same stack:
//
//   * LocalWorker — in-process bundle (tests run router + N workers +
//     clients in one process, where failpoints and TSan reach them);
//
//   * spawn_worker_process — fork a real worker process with the pipe
//     port-handoff idiom of examples/repl_pair.cpp (demo and bench run
//     true multi-process clusters). Fork happens in the caller's
//     single-threaded prologue — fork+threads don't mix, so spawn ALL
//     workers before starting any router or client thread.
#pragma once

#ifdef __linux__

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "gbx/error.hpp"
#include "hier/cut_policy.hpp"
#include "hier/instance_array.hpp"
#include "hier/memory_governor.hpp"
#include "hier/parallel_stream.hpp"
#include "cluster/partition_map.hpp"
#include "net/server.hpp"

namespace cluster {

/// Shape of one worker's matrix + server knobs (every worker in a
/// cluster gets the same config; placement does the sharding).
struct WorkerConfig {
  gbx::Index nrows = 0;
  gbx::Index ncols = 0;
  hier::CutPolicy cuts = hier::CutPolicy::geometric(3, 2048, 8);
  net::IngestServer::Options server = net::IngestServer::Options();
};

/// One in-process worker: the single-lane ingest stack, started on
/// construction, torn down in the right order (server, then stream).
class LocalWorker {
 public:
  explicit LocalWorker(const WorkerConfig& cfg)
      : array_(1, cfg.nrows, cfg.ncols, cfg.cuts),
        stream_(array_),
        governor_(stream_) {
    stream_.start();
    net::IngestServer::Options sopt = cfg.server;
    sopt.port = 0;  // always ephemeral; the map records the real port
    server_ = std::make_unique<net::IngestServer>(stream_, governor_, sopt);
    server_->start();
  }

  ~LocalWorker() {
    if (server_ && server_->running()) server_->stop();
    if (stream_.running()) stream_.stop();
  }

  LocalWorker(const LocalWorker&) = delete;
  LocalWorker& operator=(const LocalWorker&) = delete;

  std::uint16_t port() const { return server_->port(); }
  WorkerEndpoint endpoint() const { return WorkerEndpoint{"127.0.0.1", port()}; }
  net::IngestServer& server() { return *server_; }
  hier::MemoryGovernor<hier::ParallelStream<double>>& governor() {
    return governor_;
  }

 private:
  hier::InstanceArray<double> array_;
  hier::ParallelStream<double> stream_;
  hier::MemoryGovernor<hier::ParallelStream<double>> governor_;
  std::unique_ptr<net::IngestServer> server_;
};

/// Spin up N in-process workers and the map over them.
class LocalWorkerPool {
 public:
  LocalWorkerPool(std::size_t n, const WorkerConfig& cfg) {
    GBX_CHECK_VALUE(n > 0, "worker pool needs >= 1 worker");
    for (std::size_t w = 0; w < n; ++w)
      workers_.push_back(std::make_unique<LocalWorker>(cfg));
  }

  std::size_t size() const { return workers_.size(); }
  LocalWorker& worker(std::size_t w) { return *workers_[w]; }

  PartitionMap map(std::uint64_t version = 1) const {
    std::vector<WorkerEndpoint> eps;
    for (const auto& w : workers_) eps.push_back(w->endpoint());
    return PartitionMap(std::move(eps), version);
  }

 private:
  std::vector<std::unique_ptr<LocalWorker>> workers_;
};

/// A forked worker process (demo/bench): pid + the port it reported.
struct SpawnedWorker {
  pid_t pid = -1;
  std::uint16_t port = 0;
  WorkerEndpoint endpoint() const { return WorkerEndpoint{"127.0.0.1", port}; }
};

/// Fork one worker process. MUST be called while the parent is still
/// single-threaded (before any router/client starts). The child builds
/// a LocalWorker, reports its port through a pipe, and pauses until the
/// parent kills it — examples/repl_pair.cpp's handoff idiom.
inline SpawnedWorker spawn_worker_process(const WorkerConfig& cfg) {
  int pipefd[2];
  GBX_CHECK(::pipe(pipefd) == 0, "spawn_worker_process: pipe() failed");
  const pid_t pid = ::fork();
  GBX_CHECK(pid >= 0, "spawn_worker_process: fork() failed");
  if (pid == 0) {
    ::close(pipefd[0]);
    {
      LocalWorker worker(cfg);
      const std::uint16_t port = worker.port();
      if (::write(pipefd[1], &port, sizeof port) !=
          static_cast<ssize_t>(sizeof port))
        ::_exit(3);
      ::close(pipefd[1]);
      for (;;) ::pause();  // the parent's SIGKILL is the only exit
    }
  }
  ::close(pipefd[1]);
  SpawnedWorker w;
  w.pid = pid;
  const bool got = ::read(pipefd[0], &w.port, sizeof w.port) ==
                   static_cast<ssize_t>(sizeof w.port);
  ::close(pipefd[0]);
  if (!got) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    GBX_CHECK(false, "spawn_worker_process: worker never reported a port");
  }
  return w;
}

/// SIGKILL a spawned worker and reap it (idempotent on pid < 0).
inline void kill_worker(SpawnedWorker& w) {
  if (w.pid < 0) return;
  ::kill(w.pid, SIGKILL);
  ::waitpid(w.pid, nullptr, 0);
  w.pid = -1;
}

inline PartitionMap map_of(const std::vector<SpawnedWorker>& workers,
                           std::uint64_t version = 1) {
  std::vector<WorkerEndpoint> eps;
  for (const auto& w : workers) eps.push_back(w.endpoint());
  return PartitionMap(std::move(eps), version);
}

}  // namespace cluster

#endif  // __linux__
