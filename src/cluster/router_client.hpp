// cluster/router_client.hpp — client-side view of a routed cluster
// (Linux only).
//
// A RouterClient IS a net::Client — the router speaks the exact wire
// protocol of a single IngestServer, so every net::Client verb works
// unchanged and RouterClient only adds the cluster-aware surface:
//
//   * the partition map (kQueryMap), cached so callers can pre-place
//     batches with explicit worker hints and recover from the stale-map
//     redirect by calling refresh_map();
//
//   * freeze() → ClusterSnapshot: one stitched read (kQuerySum with the
//     revision-2 provenance trailer) packaged as a snapshot image with
//     the epoch()/reduce()/nvals() reads of hier's snapshot types. That
//     makes a remote cluster a hier::SnapshotSource like any in-process
//     engine: `hier::acquire_snapshot(router_client)` compiles and means
//     "take an epoch-stitched distributed snapshot".
//
// Inherits QueryInterface through net::Client, so code written against
// net::QueryInterface runs against a single server or a whole cluster
// without caring which.
#pragma once

#ifdef __linux__

#include <cstdint>
#include <utility>
#include <vector>

#include "gbx/error.hpp"
#include "hier/partition.hpp"
#include "hier/snapshot_source.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"

namespace cluster {

/// The stitched-snapshot image: scalar reads at one consistent cut
/// across every worker, plus the per-worker epoch vector that names the
/// cut. Satisfies the image half of the hier::SnapshotSource contract.
class ClusterSnapshot {
 public:
  ClusterSnapshot() = default;
  ClusterSnapshot(net::SumReply sum, net::ReplyProvenance prov)
      : sum_(sum), prov_(std::move(prov)) {}

  /// Stitched epoch: Σ of per-worker snapshot epochs — the same rule
  /// SnapshotSet::epoch() applies to in-process parts.
  std::uint64_t epoch() const { return prov_.snapshot_epoch; }
  /// Σ Ai folded part-major across workers (bit-identical to a
  /// single-process ShardedHier fed the same batches).
  double reduce() const { return sum_.sum; }
  /// Distinct coordinates across workers (rows are disjoint, so the
  /// per-worker counts add exactly).
  std::uint64_t nvals() const { return sum_.nvals; }

  /// Per-worker epochs at the cut, part-major (index = worker index).
  const std::vector<std::uint64_t>& part_epochs() const {
    return prov_.part_epochs;
  }
  std::uint32_t map_version() const { return prov_.map_version; }
  std::uint32_t revision() const { return prov_.revision; }

 private:
  net::SumReply sum_;
  net::ReplyProvenance prov_;
};

class RouterClient : public net::Client {
 public:
  RouterClient() = default;
  explicit RouterClient(net::Client::Options opt) : net::Client(opt) {}

  /// Fetch (and cache) the router's partition map. Call again after a
  /// stale-map redirect to pick up a membership change.
  const net::MapReply& refresh_map() {
    map_ = query_map();
    have_map_ = true;
    return map_;
  }

  const net::MapReply& map() {
    if (!have_map_) refresh_map();
    return map_;
  }

  /// Owning worker of `row` under the cached map — usable as an explicit
  /// kInsert placement hint (the router rejects it loudly if the map has
  /// since changed).
  std::uint64_t worker_of(std::uint64_t row) {
    const auto& m = map();
    GBX_CHECK(m.parts > 0, "router reported an empty partition map");
    return hier::row_partition(row, static_cast<std::size_t>(m.parts));
  }

  /// Take an epoch-stitched distributed snapshot. The router drives the
  /// flush barrier across every worker under its exclusive slot, so the
  /// image is a consistent whole-batch cut of the entire cluster.
  ClusterSnapshot freeze() {
    net::ReplyProvenance prov;
    net::SumReply sum = query_sum(&prov);
    return ClusterSnapshot(sum, std::move(prov));
  }

 private:
  net::MapReply map_{};
  bool have_map_ = false;
};

/// ADL customization of hier::acquire_snapshot for RouterClient —
/// redundant with the member-freeze() default on purpose: it pins the
/// customization-point mechanics (call sites that do the two-step
/// `using hier::acquire_snapshot; acquire_snapshot(src)` find this
/// overload) and is where a future remote source without a freeze()
/// member would hook in.
inline ClusterSnapshot acquire_snapshot(RouterClient& rc) {
  return rc.freeze();
}

static_assert(hier::is_snapshot_source_v<RouterClient>,
              "RouterClient must satisfy the SnapshotSource contract");

}  // namespace cluster

#endif  // __linux__
