// cluster/scaling_model.hpp — MIT SuperCloud weak-scaling extrapolation.
//
// SUBSTITUTION (documented in DESIGN.md §3): we do not have 1,100 servers.
// The paper's scaling experiment is embarrassingly parallel — instances
// never communicate — so aggregate rate is
//
//   rate(S) = S * instances_per_node * per_instance_rate
//                 * intra_node_efficiency * inter_node_efficiency
//
// We *measure* per_instance_rate and intra_node_efficiency on the local
// node (scaling_harness.hpp) and expose inter_node_efficiency as an
// explicit model parameter (default 1.0: no shared medium in the paper's
// run — each node streams its own data). Benches print measured points
// and modelled points separately so nothing is passed off as measured.
#pragma once

#include <cstddef>

#include "gbx/error.hpp"

namespace cluster {

struct SuperCloudModel {
  /// Measured single-instance streaming rate (updates/s).
  double per_instance_rate = 1.0e6;
  /// Measured: rate_P / (P * rate_1) when P instances share one node.
  double intra_node_efficiency = 1.0;
  /// The paper runs 31,000 instances on 1,100 nodes ≈ 28 per node.
  std::size_t instances_per_node = 28;
  /// Cross-node degradation; 1.0 = perfectly independent (paper's setup).
  double inter_node_efficiency = 1.0;

  /// Modelled aggregate update rate on `servers` nodes.
  double aggregate_rate(std::size_t servers) const {
    GBX_CHECK_VALUE(servers > 0, "server count must be positive");
    GBX_CHECK_VALUE(per_instance_rate > 0 && intra_node_efficiency > 0 &&
                        inter_node_efficiency > 0,
                    "model parameters must be positive");
    return static_cast<double>(servers) *
           static_cast<double>(instances_per_node) * per_instance_rate *
           intra_node_efficiency * inter_node_efficiency;
  }

  /// Total instances at a given server count.
  std::size_t instances(std::size_t servers) const {
    return servers * instances_per_node;
  }

  /// The paper's headline configuration: 1,100 servers, 31,000 instances.
  static constexpr std::size_t kPaperServers = 1100;
  static constexpr std::size_t kPaperInstances = 31000;
  static constexpr double kPaperRate = 75e9;
};

/// Calibrate a model from two measured runs: single instance and
/// node-saturating (P instances).
inline SuperCloudModel calibrate(double rate_1, std::size_t p, double rate_p,
                                 std::size_t instances_per_node = 28) {
  GBX_CHECK_VALUE(rate_1 > 0 && rate_p > 0 && p > 0, "rates must be positive");
  SuperCloudModel m;
  m.per_instance_rate = rate_1;
  m.intra_node_efficiency = rate_p / (static_cast<double>(p) * rate_1);
  m.instances_per_node = instances_per_node;
  return m;
}

}  // namespace cluster
