// cluster/workload.hpp — workload specification for scaling runs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gbx/types.hpp"

namespace cluster {

/// Everything a scaling run needs to reproduce the paper's Section III
/// experiment shape: per-instance power-law streams of `sets` batches of
/// `set_size` entries into a dim x dim hypersparse matrix.
struct WorkloadSpec {
  std::size_t sets = 16;           ///< batches per instance
  std::size_t set_size = 100000;   ///< entries per batch (paper: 100,000)
  int scale = 17;                  ///< 2^scale vertex population
  double alpha = 1.3;              ///< power-law exponent
  gbx::Index dim = gbx::kIPv4Dim;  ///< matrix dimension (IPv4 default)
  std::uint64_t seed = 20200316;   ///< base seed; instance p uses seed+p

  std::size_t entries_per_instance() const { return sets * set_size; }
};

}  // namespace cluster
