// cluster/partition_map.hpp — membership + placement for the router.
//
// A PartitionMap is the router's view of the cluster: an ordered list
// of worker endpoints (part index = list position = the part-major
// order every stitched read folds in) and a version number that bumps
// whenever membership changes. Placement is hier::row_partition — the
// SAME function ShardedHier uses for its in-process shards — so a row
// lands on worker w exactly when a single-process ShardedHier with the
// same part count would put it in shard w. That agreement is the
// bit-identity contract of the stitched snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/types.hpp"
#include "hier/partition.hpp"

namespace cluster {

/// One worker process's ingest endpoint.
struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class PartitionMap {
 public:
  PartitionMap() = default;
  PartitionMap(std::vector<WorkerEndpoint> workers, std::uint64_t version = 1)
      : workers_(std::move(workers)), version_(version) {
    GBX_CHECK_VALUE(!workers_.empty(), "partition map needs >= 1 worker");
  }

  std::size_t parts() const { return workers_.size(); }
  std::uint64_t version() const { return version_; }
  const WorkerEndpoint& worker(std::size_t p) const { return workers_[p]; }

  /// Owning part of `row` — identical to ShardedHier::shard_of for the
  /// same part count (pinned by a randomized equivalence test).
  std::size_t part_of(gbx::Index row) const {
    return hier::row_partition(row, workers_.size());
  }

 private:
  std::vector<WorkerEndpoint> workers_;
  std::uint64_t version_ = 0;
};

}  // namespace cluster
