// cluster/scaling_harness.hpp — measured multi-instance scaling runs.
//
// The paper's experiment: P independent processes, each streaming
// power-law edge sets into its own hierarchical hypersparse matrix;
// the reported metric is the sum of per-process update rates. This
// harness reproduces that shape with one OpenMP thread per instance on
// the local node (instances share nothing, exactly like the paper's
// processes), and measures per-instance busy time around update calls
// only — generation happens between timed windows, playing the role of
// the paper's per-stream "network statistics" work.
#pragma once

#include <omp.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "assoc/assoc.hpp"
#include "cluster/workload.hpp"
#include "gbx/tsan_omp.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"
#include "store/store.hpp"

namespace cluster {

struct RunResult {
  std::size_t instances = 0;
  std::uint64_t entries = 0;      ///< total entries streamed
  double wall_seconds = 0;        ///< whole-phase wall clock
  double busy_seconds_mean = 0;   ///< mean per-instance update time
  double aggregate_rate = 0;      ///< Σ per-instance (entries_i / busy_i)
  double wall_rate = 0;           ///< entries / wall (incl. generation)
};

/// Generic multi-instance runner. `make(p)` builds instance p's state;
/// `update(state, batch)` applies one batch. One OpenMP thread drives one
/// instance (the paper's process model).
template <class State>
RunResult run_instances(
    std::size_t instances, const WorkloadSpec& w,
    const std::function<State(std::size_t)>& make,
    const std::function<void(State&, const gbx::Tuples<double>&)>& update) {
  RunResult r;
  r.instances = instances;
  r.entries = static_cast<std::uint64_t>(instances) * w.entries_per_instance();

  std::vector<double> busy(instances, 0.0);
  // The per-instance omp_set_num_threads(1) below also sticks to the
  // primary thread once the region ends; remember the ambient setting.
  const int ambient_threads = omp_get_max_threads();
  const double t0 = omp_get_wtime();

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel num_threads(static_cast<int>(instances))
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (std::size_t p = 0; p < instances; ++p) {
      // Each instance is strictly single-threaded, like one of the paper's
      // processes: gbx kernels called from here must not spawn nested
      // teams (they would for P=1, where the enclosing one-thread region
      // counts as inactive), or per-instance rates would not be comparable
      // across instance counts.
      omp_set_num_threads(1);
      gen::PowerLawParams pp;
      pp.scale = w.scale;
      pp.alpha = w.alpha;
      pp.dim = w.dim;
      pp.seed = w.seed + p;
      gen::PowerLawGenerator g(pp);
      State state = make(p);
      gbx::Tuples<double> batch;
      for (std::size_t s = 0; s < w.sets; ++s) {
        batch.clear();
        g.batch(w.set_size, batch);          // untimed: workload generation
        const double b0 = omp_get_wtime();
        update(state, batch);                // timed: the streaming insert
        busy[p] += omp_get_wtime() - b0;
      }
    }
  }

  r.wall_seconds = omp_get_wtime() - t0;
  omp_set_num_threads(ambient_threads);
  double agg = 0, bsum = 0;
  for (std::size_t p = 0; p < instances; ++p) {
    agg += static_cast<double>(w.entries_per_instance()) / busy[p];
    bsum += busy[p];
  }
  r.aggregate_rate = agg;
  r.busy_seconds_mean = bsum / static_cast<double>(instances);
  r.wall_rate = static_cast<double>(r.entries) / r.wall_seconds;
  return r;
}

/// Hierarchical GraphBLAS instances (the paper's system).
inline RunResult run_hier_gbx(std::size_t instances, const WorkloadSpec& w,
                              const hier::CutPolicy& cuts) {
  using State = hier::HierMatrix<double>;
  return run_instances<State>(
      instances, w,
      [&](std::size_t) { return State(w.dim, w.dim, cuts); },
      [](State& h, const gbx::Tuples<double>& b) { h.update(b); });
}

/// Non-hierarchical GraphBLAS baseline: every set is folded straight into
/// one hypersparse matrix (what the paper's cascade avoids).
inline RunResult run_direct_gbx(std::size_t instances, const WorkloadSpec& w) {
  using State = gbx::Matrix<double>;
  return run_instances<State>(
      instances, w,
      [&](std::size_t) { return State(w.dim, w.dim); },
      [](State& m, const gbx::Tuples<double>& b) {
        m.append(b);
        m.materialize();
      });
}

/// Hierarchical D4M baseline: the same cascade behind string dictionaries
/// (the "Hierarchical D4M" curve of Fig. 2). Key strings are materialized
/// inside the timed window — paying them is the point of the baseline.
inline RunResult run_hier_assoc(std::size_t instances, const WorkloadSpec& w,
                                const hier::CutPolicy& cuts) {
  using State = assoc::HierAssoc<double>;
  return run_instances<State>(
      instances, w,
      [&](std::size_t) { return State(w.dim, cuts); },
      [](State& a, const gbx::Tuples<double>& b) {
        for (const auto& e : b)
          a.insert(std::to_string(e.row), std::to_string(e.col), e.val);
      });
}

/// Accumulo-model baseline: per-entry inserts into the LSM tablet store.
inline RunResult run_lsm(std::size_t instances, const WorkloadSpec& w,
                         store::LsmOptions opt = {}) {
  using State = store::LsmStore;
  return run_instances<State>(
      instances, w,
      [&](std::size_t) { return State(opt); },
      [](State& s, const gbx::Tuples<double>& b) {
        for (const auto& e : b) s.insert({e.row, e.col}, e.val);
      });
}

/// OLTP-model baseline: per-row B+tree index maintenance plus WAL.
inline RunResult run_btree(std::size_t instances, const WorkloadSpec& w) {
  using State = store::BTreeStore;
  return run_instances<State>(
      instances, w,
      [&](std::size_t) { return State(); },
      [](State& t, const gbx::Tuples<double>& b) {
        for (const auto& e : b) t.insert({e.row, e.col}, e.val);
      });
}

}  // namespace cluster
