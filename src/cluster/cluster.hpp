// cluster/cluster.hpp — umbrella header for the scaling substrate.
#pragma once

#include "cluster/scaling_harness.hpp"
#include "cluster/scaling_model.hpp"
#include "cluster/workload.hpp"
