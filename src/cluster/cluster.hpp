// cluster/cluster.hpp — umbrella header for the scaling substrate and
// the multi-process sharding layer.
//
// partition_map.hpp is portable; the router, its client, and the worker
// pool ride on the Linux-only net stack (each is #ifdef __linux__
// internally, mirroring net/net.hpp).
#pragma once

#include "cluster/partition_map.hpp"
#include "cluster/scaling_harness.hpp"
#include "cluster/scaling_model.hpp"
#include "cluster/workload.hpp"

#ifdef __linux__
#include "cluster/router.hpp"
#include "cluster/router_client.hpp"
#include "cluster/worker_pool.hpp"
#endif
