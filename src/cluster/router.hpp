// cluster/router.hpp — N-primary router: one process front end over N
// worker IngestServer processes (Linux only).
//
// The router speaks the net/protocol.hpp frame protocol on BOTH sides:
// clients connect to it exactly as they would to a single IngestServer,
// and it holds one upstream net::Client connection per worker process.
// Inserts are fanned out by the shared row-hash partition
// (hier/partition.hpp — the same function ShardedHier uses), so a
// multi-process cluster places every coordinate on the worker that a
// single-process ShardedHier with the same part count would place it
// in. Workers are therefore row-DISJOINT, which is what makes stitched
// reads exact: an element probe has exactly one owner, nvals adds, and
// Σ Ai folds part-major in the canonical order.
//
// Concurrency design — deliberately a distributed ShardedHier, not a
// second epoll engine. A router fronts few, long-lived connections
// (its fan-IN is the worker pool's job), so it runs one blocking
// thread per client session and reuses the proven freeze/writer-slot
// structure verbatim:
//
//   * An insert session splits its batch by part and forwards every
//     non-empty sub-batch while holding a SHARED slot on `snap_mu_` —
//     the whole-batch atomicity rule of ShardedHier::update, across
//     processes. Per-worker order is serialized by that worker's
//     connection mutex; sub-batches of one client batch can interleave
//     with another client's across workers, exactly the nondeterminism
//     ShardedHier writers already have.
//
//   * Every query is an epoch-stitched distributed snapshot: take the
//     EXCLUSIVE slot (writer backoff via freeze_pending_, as in
//     ShardedHier::freeze), drive a flush barrier through every worker
//     (PR-2's whole-batch freeze generalized: "admitted" == "applied"
//     on every worker, and no client batch is half-forwarded), collect
//     one revision-2 provenance epoch per worker, answer from that cut,
//     release. The per-worker epoch vector travels back to the client
//     as the reply's provenance trailer, so a stitched answer is
//     auditable.
//
//   * Partial failure is LOUD. Any worker I/O error (EPIPE after a
//     SIGKILL, recv timeout on a hang, EOF on a crash) marks that
//     worker dead; the triggering request gets kReplyError, every
//     later stitched query gets kReplyError, and inserts routed to the
//     dead worker close their session with kReplyError. The router
//     never answers from a subset of workers — no silent partial sums.
//
//   * Placement hints double as the redirect primitive: a client that
//     pins an explicit worker index on kInsert asserts its map; if the
//     current map disagrees (membership changed), the router replies
//     kReplyError naming the current version and the client re-fetches
//     kQueryMap. kAnyLane routes by hash and never redirects.
#pragma once

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/thread_annotations.hpp"
#include "cluster/partition_map.hpp"
#include "net/client.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace cluster {

/// Monotone router counters (relaxed atomics; readable from any thread).
struct RouterStats {
  std::atomic<std::uint64_t> sessions_accepted{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> batches_routed{0};     ///< client batches split
  std::atomic<std::uint64_t> subbatches_forwarded{0};
  std::atomic<std::uint64_t> entries_routed{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> stitched_freezes{0};
  std::atomic<std::uint64_t> worker_failures{0};
  std::atomic<std::uint64_t> rejected_frames{0};
  std::atomic<std::uint64_t> redirects{0};  ///< stale-map placement hints
};

class Router {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    int backlog = 64;
    std::uint64_t max_frame_bytes = 64u << 20;
    /// Matrix dimensions (insert validation happens HERE: a bad
    /// coordinate must never reach a worker, where the resulting
    /// kReplyError would poison the router's shared connection).
    gbx::Index nrows = 0;
    gbx::Index ncols = 0;
    /// Worker-side failure detection: a worker that stays silent this
    /// long mid-RPC is declared dead (→ loud errors, never a hang).
    int worker_recv_timeout_ms = 10000;
    /// Workers may still be binding when the router dials them.
    int worker_connect_attempts = 50;
    int worker_connect_backoff_ms = 20;
  };

  // No `opt = {}` default argument: GCC parses default arguments before
  // nested-class member initializers (same workaround as IngestServer).
  explicit Router(PartitionMap map) : Router(std::move(map), Options()) {}
  Router(PartitionMap map, Options opt) : map_(std::move(map)), opt_(opt) {
    GBX_CHECK_VALUE(opt_.nrows > 0 && opt_.ncols > 0,
                    "router needs matrix dimensions for insert validation");
  }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  ~Router() {
    if (running_) stop();
  }

  /// Dial every worker, bind, listen, spawn the accept thread.
  void start() {
    GBX_CHECK(!running_, "Router already started");
    workers_.clear();
    for (std::size_t w = 0; w < map_.parts(); ++w) {
      auto wk = std::make_unique<Worker>();
      net::Client::Options copt;
      copt.recv_timeout_ms = opt_.worker_recv_timeout_ms;
      copt.connect_attempts = opt_.worker_connect_attempts;
      copt.connect_backoff_ms = opt_.worker_connect_backoff_ms;
      {
        gbx::ScopedLock lk(wk->mu);
        wk->cli = net::Client(copt);
        wk->cli.connect(map_.worker(w).host, map_.worker(w).port);
      }
      workers_.push_back(std::move(wk));
    }

    listen_ = net::Fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    GBX_CHECK(listen_.valid(), "router socket() failed");
    const int one = 1;
    ::setsockopt(listen_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    GBX_CHECK(::bind(listen_.get(), reinterpret_cast<::sockaddr*>(&addr),
                     sizeof addr) == 0,
              "router bind() failed");
    GBX_CHECK(::listen(listen_.get(), opt_.backlog) == 0,
              "router listen() failed");
    ::socklen_t len = sizeof addr;
    GBX_CHECK(::getsockname(listen_.get(),
                            reinterpret_cast<::sockaddr*>(&addr), &len) == 0,
              "router getsockname() failed");
    port_ = ntohs(addr.sin_port);

    stop_.store(false, std::memory_order_relaxed);
    running_ = true;
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  /// Unblock and join every thread, close every socket. In-flight
  /// client sessions see EOF; worker connections get an orderly bye.
  void stop() {
    GBX_CHECK(running_, "Router not started");
    stop_.store(true, std::memory_order_relaxed);
    ::shutdown(listen_.get(), SHUT_RDWR);  // accept() returns
    accept_thread_.join();
    {
      gbx::ScopedLock lk(sessions_mu_);
      for (auto& s : sessions_)
        ::shutdown(s->fd.get(), SHUT_RDWR);  // blocking recv returns
    }
    for (;;) {
      std::unique_ptr<RouterSession> victim;
      {
        gbx::ScopedLock lk(sessions_mu_);
        if (sessions_.empty()) break;
        victim = std::move(sessions_.back());
        sessions_.pop_back();
      }
      if (victim->th.joinable()) victim->th.join();
    }
    for (auto& wk : workers_) {
      gbx::ScopedLock lk(wk->mu);
      if (!wk->dead && wk->cli.connected()) {
        try {
          wk->cli.bye();
        } catch (const gbx::Error&) {
          // Teardown is best-effort; a worker that died first is fine.
        }
      }
      wk->cli.close();
    }
    listen_.reset();
    running_ = false;
  }

  std::uint16_t port() const { return port_; }
  bool running() const { return running_; }
  const RouterStats& stats() const { return stats_; }
  const PartitionMap& map() const { return map_; }

 private:
  struct Worker {
    gbx::Mutex mu;
    net::Client cli GBX_GUARDED_BY(mu);
    bool dead GBX_GUARDED_BY(mu) = false;
  };

  struct RouterSession {
    explicit RouterSession(net::Fd f, std::uint64_t cap, std::size_t nworkers)
        : fd(std::move(f)), dec(cap), used_workers(nworkers, false) {}
    net::Fd fd;
    store::RecordFrameDecoder dec;
    std::vector<bool> used_workers;  ///< workers this session ever fed
    std::thread th;
    std::atomic<bool> done{false};
  };

  // --- accept / session lifecycle.

  void accept_loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      net::Fd c(::accept4(listen_.get(), nullptr, nullptr, SOCK_CLOEXEC));
      if (!c.valid()) {
        if (stop_.load(std::memory_order_relaxed)) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listen socket gone
      }
      const int one = 1;
      ::setsockopt(c.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto s = std::make_unique<RouterSession>(std::move(c),
                                               opt_.max_frame_bytes,
                                               workers_.size());
      RouterSession* raw = s.get();
      stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
      {
        gbx::ScopedLock lk(sessions_mu_);
        sessions_.push_back(std::move(s));
        sessions_.back()->th = std::thread([this, raw] {
          session_loop(*raw);
          raw->done.store(true, std::memory_order_release);
        });
      }
      reap_finished();
    }
  }

  /// Join and drop sessions whose threads have finished (bounds the
  /// session list on long-lived routers; stop() drains the rest).
  void reap_finished() {
    std::vector<std::unique_ptr<RouterSession>> finished;
    {
      gbx::ScopedLock lk(sessions_mu_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& s : finished) {
      if (s->th.joinable()) s->th.join();
      stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void session_loop(RouterSession& s) {
    char buf[1u << 16];
    store::LogRecord rec;
    bool open = true;
    while (open && !stop_.load(std::memory_order_relaxed)) {
      const auto n = ::recv(s.fd.get(), buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) {
        // EOF; a partial frame here is the torn-tail case: count, drop.
        if (s.dec.buffered() > 0 && !s.dec.corrupt())
          stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      s.dec.feed(buf, static_cast<std::size_t>(n));
      for (open = true; open;) {
        switch (s.dec.next(rec)) {
          case store::RecordFrameDecoder::Status::kNeedMore:
            goto drained;
          case store::RecordFrameDecoder::Status::kCorrupt:
            stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
            reply_error(s, net::MsgType::kInsert, s.dec.error());
            open = false;
            break;
          case store::RecordFrameDecoder::Status::kFrame:
            open = handle_frame(s, rec);
            break;
        }
      }
    drained:;
    }
  }

  // --- frame dispatch (session threads).

  /// Returns false when the session must close.
  bool handle_frame(RouterSession& s, store::LogRecord& rec) {
    const net::MsgType type = net::tag_type(rec.epoch);
    const std::uint64_t arg = net::tag_arg(rec.epoch);
    const bool want_prov = type != net::MsgType::kInsert &&
                           (arg & net::kWantProvenance) != 0;
    try {
      switch (type) {
        case net::MsgType::kInsert:
          return handle_insert(s, arg, rec);
        case net::MsgType::kFlush:
          handle_client_flush(s);
          return true;
        case net::MsgType::kQuerySum:
          handle_query_sum(s, want_prov);
          return true;
        case net::MsgType::kQueryElements:
          return handle_query_elements(s, want_prov, rec);
        case net::MsgType::kQuerySummary:
          handle_query_summary(s, want_prov);
          return true;
        case net::MsgType::kQueryRefresh:
          handle_query_refresh(s, want_prov);
          return true;
        case net::MsgType::kQueryColumns:
          handle_query_columns(s, want_prov);
          return true;
        case net::MsgType::kQueryMap: {
          net::MapReply r;
          r.version = map_.version();
          r.parts = map_.parts();
          r.nrows = opt_.nrows;
          r.ncols = opt_.ncols;
          reply_ok(s, type, 0, &r, sizeof r);
          return true;
        }
        case net::MsgType::kBye:
          reply_ok(s, type, 0, "", 0);
          return false;
        default:
          stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
          reply_error(s, type, "unknown message type");
          return false;
      }
    } catch (const gbx::Error& e) {
      // A worker failed (or timed out) mid-request: the LOUD path. The
      // requester gets the diagnostic; the session closes so no later
      // one-way insert can be silently half-routed.
      reply_error(s, type, e.what());
      return false;
    }
  }

  bool handle_insert(RouterSession& s, std::uint64_t arg,
                     store::LogRecord& rec) {
    std::vector<gbx::Entry<double>> entries;
    if (!net::payload_as(rec.payload, entries)) {
      stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
      reply_error(s, net::MsgType::kInsert,
                  "insert payload is not a whole number of entries");
      return false;
    }
    for (const auto& e : entries) {
      if (e.row >= opt_.nrows || e.col >= opt_.ncols) {
        stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        reply_error(s, net::MsgType::kInsert,
                    "insert coordinate out of range: (" +
                        std::to_string(e.row) + ", " + std::to_string(e.col) +
                        ") vs " + std::to_string(opt_.nrows) + " x " +
                        std::to_string(opt_.ncols));
        return false;
      }
    }
    // An explicit placement hint is the client asserting its partition
    // map: every row must land on that worker under the CURRENT map,
    // otherwise the map changed under the client — redirect.
    if (arg != net::kAnyLane) {
      bool stale = arg >= map_.parts();
      for (const auto& e : entries)
        if (stale || map_.part_of(e.row) != arg) {
          stale = true;
          break;
        }
      if (stale) {
        stats_.redirects.fetch_add(1, std::memory_order_relaxed);
        reply_error(s, net::MsgType::kInsert,
                    "stale partition map: placement hint " +
                        std::to_string(arg) + " does not own this batch "
                        "(current map version " +
                        std::to_string(map_.version()) +
                        "); re-fetch kQueryMap and reconnect");
        return false;
      }
    }

    // Split part-major — the same per-entry walk as ShardedHier::update,
    // preserving within-batch order inside every sub-batch.
    std::vector<gbx::Tuples<double>> parts(workers_.size());
    for (const auto& e : entries)
      parts[map_.part_of(e.row)].push_back(e.row, e.col, e.val);

    // Whole-batch atomicity across processes: hold a shared slot for
    // the full fan-out so no stitched freeze can observe half a batch.
    gbx::ScopedReadLock batch_guard(writer_slot());
    for (std::size_t w = 0; w < parts.size(); ++w) {
      if (parts[w].empty()) continue;
      worker_insert(w, parts[w]);  // throws on a dead worker → loud close
      s.used_workers[w] = true;
      stats_.subbatches_forwarded.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.batches_routed.fetch_add(1, std::memory_order_relaxed);
    stats_.entries_routed.fetch_add(entries.size(),
                                    std::memory_order_relaxed);
    return true;
  }

  void handle_client_flush(RouterSession& s) {
    // Barrier over every worker this session ever fed: each worker's
    // own flush barrier covers the router's upstream session, which
    // includes everything forwarded on behalf of this client.
    for (std::size_t w = 0; w < s.used_workers.size(); ++w)
      if (s.used_workers[w]) worker_flush(w);
    reply_ok(s, net::MsgType::kFlush, 0, "", 0);
  }

  void handle_query_sum(RouterSession& s, bool want_prov) {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    net::SumReply r;
    std::vector<std::uint64_t> epochs(workers_.size(), 0);
    with_stitch([&] {
      // Part-major fold in map order — the canonical SnapshotSet order,
      // so the stitched Σ is bit-identical to ShardedHier's reduce().
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        net::ReplyProvenance wp;
        net::SumReply wr = worker_call(
            w, [&wp](net::Client& c) { return c.query_sum(&wp); });
        r.sum += wr.sum;
        r.nvals += wr.nvals;  // row-disjoint workers: distinct counts add
        epochs[w] = wp.snapshot_epoch;
        r.epoch += wp.snapshot_epoch;  // Σ of part epochs, SnapshotSet's rule
      }
    });
    reply_stitched(s, net::MsgType::kQuerySum, want_prov, &r, sizeof r,
                   epochs, r.epoch);
  }

  bool handle_query_elements(RouterSession& s, bool want_prov,
                             store::LogRecord& rec) {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    std::vector<net::ElementQuery> qs;
    if (!net::payload_as(rec.payload, qs)) {
      stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
      reply_error(s, net::MsgType::kQueryElements,
                  "element query payload is not a whole number of "
                  "{row, col} probes");
      return false;
    }
    for (const auto& q : qs) {
      if (q.row >= opt_.nrows || q.col >= opt_.ncols) {
        stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        reply_error(s, net::MsgType::kQueryElements,
                    "element probe out of range");
        return false;
      }
    }
    // Route each probe to its single owner (row-disjoint placement),
    // keeping reply order = probe order.
    std::vector<std::vector<net::ElementQuery>> per(workers_.size());
    std::vector<std::vector<std::size_t>> origin(workers_.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const std::size_t w = map_.part_of(qs[i].row);
      per[w].push_back(qs[i]);
      origin[w].push_back(i);
    }
    std::vector<net::ElementReply> rs(qs.size());
    std::vector<std::uint64_t> epochs(workers_.size(), 0);
    std::uint64_t cut_epoch = 0;
    with_stitch([&] {
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        net::ReplyProvenance wp;
        // Unprobed workers still contribute their epoch to the stitched
        // cut via an empty probe batch (a pin, no reads).
        auto wr = worker_call(w, [&](net::Client& c) {
          return c.query_elements(per[w], &wp);
        });
        for (std::size_t k = 0; k < wr.size(); ++k) rs[origin[w][k]] = wr[k];
        epochs[w] = wp.snapshot_epoch;
        cut_epoch += wp.snapshot_epoch;
      }
    });
    reply_stitched(s, net::MsgType::kQueryElements, want_prov, rs.data(),
                   rs.size() * sizeof(net::ElementReply), epochs, cut_epoch);
    return true;
  }

  void handle_query_summary(RouterSession& s, bool want_prov) {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    net::SummaryReply r;
    std::vector<std::uint64_t> epochs(workers_.size(), 0);
    std::set<std::uint64_t> destinations;  // columns are NOT disjoint
    with_stitch([&] {
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        net::ReplyProvenance wp;
        net::SummaryReply wr = worker_call(
            w, [&wp](net::Client& c) { return c.query_summary(&wp); });
        // Row-disjoint stitches: links (distinct coords), sources
        // (distinct rows) and packets add; max_link is a per-coordinate
        // value, so max over workers is the global max.
        r.links += wr.links;
        r.packets += wr.packets;
        r.sources += wr.sources;
        if (wr.max_link > r.max_link) r.max_link = wr.max_link;
        // Destinations (distinct columns) need the actual sets.
        const auto cols = worker_call(
            w, [](net::Client& c) { return c.query_columns(); });
        destinations.insert(cols.begin(), cols.end());
        epochs[w] = wp.snapshot_epoch;
        r.epoch += wp.snapshot_epoch;
      }
    });
    r.destinations = destinations.size();
    // Same formula as analytics::summarize — identical operands give an
    // identical quotient.
    if (r.links > 0) r.mean_link = r.packets / static_cast<double>(r.links);
    reply_stitched(s, net::MsgType::kQuerySummary, want_prov, &r, sizeof r,
                   epochs, r.epoch);
  }

  void handle_query_refresh(RouterSession& s, bool want_prov) {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    net::RefreshReply r;
    std::vector<std::uint64_t> epochs(workers_.size(), 0);
    with_stitch([&] {
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        net::RefreshReply wr = worker_call(
            w, [](net::Client& c) { return c.query_refresh(); });
        r.epoch += wr.epoch;
        r.full_recompute |= wr.full_recompute;
        r.added += wr.added;
        r.changed += wr.changed;
        // Caveat, documented in the README: per-worker triangle counts
        // only stitch when triangles are disabled (the worker default,
        // where every count is 0) — a triangle can span workers, so a
        // nonzero sum would undercount and we refuse to fake it.
        r.triangles += wr.triangles;
        r.sum += wr.sum;
        epochs[w] = wr.epoch;
      }
    });
    reply_stitched(s, net::MsgType::kQueryRefresh, want_prov, &r, sizeof r,
                   epochs, r.epoch);
  }

  void handle_query_columns(RouterSession& s, bool want_prov) {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    std::set<std::uint64_t> cols;
    std::vector<std::uint64_t> epochs(workers_.size(), 0);
    std::uint64_t cut_epoch = 0;
    with_stitch([&] {
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        net::ReplyProvenance wp;
        const auto wc = worker_call(
            w, [&wp](net::Client& c) { return c.query_columns(&wp); });
        cols.insert(wc.begin(), wc.end());
        epochs[w] = wp.snapshot_epoch;
        cut_epoch += wp.snapshot_epoch;
      }
    });
    std::vector<std::uint64_t> sorted(cols.begin(), cols.end());
    reply_stitched(s, net::MsgType::kQueryColumns, want_prov, sorted.data(),
                   sorted.size() * sizeof(std::uint64_t), epochs, cut_epoch);
  }

  // --- the stitched freeze.

  /// Run `f` inside a stitched cut: exclusive slot on `snap_mu_` (so no
  /// insert fan-out is in flight — whole-batch atomicity across
  /// processes) plus a flush barrier through every worker ("admitted"
  /// becomes "applied" everywhere before any epoch is read). A dead
  /// worker throws during the barrier — the whole query fails loudly
  /// instead of stitching a subset.
  template <class F>
  void with_stitch(F&& f) {
    stats_.stitched_freezes.fetch_add(1, std::memory_order_relaxed);
    freeze_pending_.fetch_add(1, std::memory_order_relaxed);
    gbx::ScopedWriteLock cut(snap_mu_);
    freeze_pending_.fetch_sub(1, std::memory_order_relaxed);
    for (std::size_t w = 0; w < workers_.size(); ++w) worker_flush(w);
    f();
  }

  /// Writers pass through here before taking their shared slot — the
  /// ShardedHier starvation-avoidance pattern, verbatim.
  gbx::SharedMutex& writer_slot() GBX_RETURN_CAPABILITY(snap_mu_) {
    while (freeze_pending_.load(std::memory_order_relaxed) > 0)
      std::this_thread::yield();
    return snap_mu_;
  }

  // --- worker I/O (each call-response pair under that worker's mutex).

  template <class F>
  auto worker_call(std::size_t w, F&& f) -> decltype(f(
      std::declval<net::Client&>())) {
    Worker& wk = *workers_[w];
    gbx::ScopedLock lk(wk.mu);
    GBX_CHECK(!wk.dead, "worker " + std::to_string(w) + " (" +
                            map_.worker(w).host + ":" +
                            std::to_string(map_.worker(w).port) +
                            ") is dead; stitched reads are unavailable");
    try {
      return f(wk.cli);
    } catch (const gbx::Error&) {
      wk.dead = true;
      wk.cli.close();
      stats_.worker_failures.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }

  void worker_insert(std::size_t w, const gbx::Tuples<double>& sub) {
    // Lane 0 on every worker: a cluster worker scales by process count,
    // and one lane per worker is what keeps its part bit-identical to
    // the corresponding ShardedHier shard (sub-batches apply in
    // forwarding order to one HierMatrix).
    worker_call(w, [&sub](net::Client& c) {
      c.insert(sub, 0);
      return 0;
    });
  }

  void worker_flush(std::size_t w) {
    worker_call(w, [](net::Client& c) {
      c.flush();
      return 0;
    });
  }

  // --- client-side replies (blocking send on the session socket).

  void reply_ok(RouterSession& s, net::MsgType request, std::uint64_t flag,
                const void* payload, std::size_t size) {
    std::string frame;
    net::append_frame(frame, net::MsgType::kReplyOk,
                      static_cast<std::uint64_t>(request) | flag, payload,
                      size);
    send_all(s, frame);
  }

  void reply_stitched(RouterSession& s, net::MsgType request, bool want_prov,
                      const void* payload, std::size_t size,
                      const std::vector<std::uint64_t>& epochs,
                      std::uint64_t cut_epoch) {
    if (!want_prov) {
      reply_ok(s, request, 0, payload, size);
      return;
    }
    std::string body(size > 0 ? static_cast<const char*>(payload) : "", size);
    net::append_provenance(body, epochs, cut_epoch,
                           static_cast<std::uint32_t>(map_.version()));
    reply_ok(s, request, net::kWantProvenance, body.data(), body.size());
  }

  void reply_error(RouterSession& s, net::MsgType request,
                   const std::string& what) {
    std::string frame;
    net::append_frame(frame, net::MsgType::kReplyError,
                      static_cast<std::uint64_t>(request), what.data(),
                      what.size());
    send_all(s, frame);
  }

  void send_all(RouterSession& s, const std::string& bytes) {
    const char* p = bytes.data();
    std::size_t n = bytes.size();
    while (n > 0) {
      const auto w = ::send(s.fd.get(), p, n, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return;  // client gone; session loop exits on recv
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  }

  PartitionMap map_;
  Options opt_;
  RouterStats stats_;

  std::vector<std::unique_ptr<Worker>> workers_;

  // Writers (insert fan-out) shared, stitched queries exclusive: the
  // ShardedHier freeze discipline, spanning processes.
  gbx::SharedMutex snap_mu_;
  std::atomic<std::uint32_t> freeze_pending_{0};

  gbx::Mutex sessions_mu_;
  std::vector<std::unique_ptr<RouterSession>> sessions_
      GBX_GUARDED_BY(sessions_mu_);

  net::Fd listen_;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::uint16_t port_ = 0;
};

}  // namespace cluster

#endif  // __linux__
