// analytics/background.hpp — background traffic model & anomaly scoring.
//
// The classic gravity (rank-1) background model for traffic matrices
// (Zhang et al., ToN 2005, the paper's ref [5]): expected traffic on link
// (i, j) is out_i * in_j / total. Links whose observed volume exceeds the
// expectation by a large factor are anomalies — the "inferring unobserved
// /unexpected traffic" use case the paper motivates.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "gbx/gbx.hpp"

namespace analytics {

struct Anomaly {
  gbx::Index src;
  gbx::Index dst;
  double observed;
  double expected;
  double score;  ///< observed / expected
};

/// Rank-1 gravity model scores for every stored link, descending by
/// score; links with expected == 0 cannot occur (marginals cover every
/// stored entry). Returns at most `k` anomalies with score >= min_score
/// and observed volume >= min_observed — the support threshold keeps
/// one-packet flows between otherwise-quiet hosts (expected ~ 1/total,
/// score ~ total) from drowning out real heavy hitters.
template <class T, class M>
std::vector<Anomaly> gravity_anomalies(const gbx::Matrix<T, M>& A,
                                       std::size_t k, double min_score = 2.0,
                                       double min_observed = 0.0) {
  const double total =
      static_cast<double>(gbx::reduce_scalar<gbx::PlusMonoid<T>>(A));
  if (total <= 0) return {};

  auto out = gbx::reduce_rows<gbx::PlusMonoid<T>>(A);
  auto in = gbx::reduce_cols<gbx::PlusMonoid<T>>(A);

  // Dense-free marginal lookup: both reductions are sorted sparse vectors.
  auto lookup = [](const gbx::SparseVector<T>& v, gbx::Index i) -> double {
    auto x = v.get(i);
    return x ? static_cast<double>(*x) : 0.0;
  };

  std::vector<Anomaly> all;
  A.for_each([&](gbx::Index i, gbx::Index j, T obs) {
    if (static_cast<double>(obs) < min_observed) return;
    const double e = lookup(out, i) * lookup(in, j) / total;
    if (e <= 0) return;
    const double score = static_cast<double>(obs) / e;
    if (score >= min_score)
      all.push_back({i, j, static_cast<double>(obs), e, score});
  });
  std::sort(all.begin(), all.end(),
            [](const Anomaly& a, const Anomaly& b) { return a.score > b.score; });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Residual matrix R = A - gravity(A), for downstream spectral analysis.
/// Only stored links get residuals (hypersparse discipline).
template <class T, class M>
gbx::Matrix<double> gravity_residual(const gbx::Matrix<T, M>& A) {
  const double total =
      static_cast<double>(gbx::reduce_scalar<gbx::PlusMonoid<T>>(A));
  gbx::Matrix<double> R(A.nrows(), A.ncols());
  if (total <= 0) return R;
  auto out = gbx::reduce_rows<gbx::PlusMonoid<T>>(A);
  auto in = gbx::reduce_cols<gbx::PlusMonoid<T>>(A);
  gbx::Tuples<double> resid;
  A.for_each([&](gbx::Index i, gbx::Index j, T obs) {
    const double e = static_cast<double>(*out.get(i)) *
                     static_cast<double>(*in.get(j)) / total;
    resid.push_back(i, j, static_cast<double>(obs) - e);
  });
  R.append(resid);
  R.materialize();
  return R;
}

}  // namespace analytics
