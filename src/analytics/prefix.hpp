// analytics/prefix.hpp — prefix (subnet) aggregation of traffic matrices.
//
// Network operators read traffic at subnet granularity: aggregating the
// host-level matrix A to /p prefixes contracts both axes by
// i -> i >> (32 - p). Algebraically this is P^T A P for the prefix
// indicator matrix P; implemented directly as a coordinate remap + monoid
// fold (one sort-dedup pass) since P is a function.
#pragma once

#include "gbx/matrix.hpp"
#include "gbx/sort.hpp"

namespace analytics {

/// Aggregate an IPv4 host matrix to /prefix_bits subnets. Row/col ids of
/// the result are the prefix values (e.g. /16 -> 65536-wide id space).
template <class T, class M>
gbx::Matrix<T, M> aggregate_prefixes(const gbx::Matrix<T, M>& A,
                                     int prefix_bits) {
  GBX_CHECK_VALUE(prefix_bits >= 1 && prefix_bits <= 32,
                  "prefix bits must be in [1, 32]");
  GBX_CHECK_VALUE(A.nrows() <= gbx::kIPv4Dim && A.ncols() <= gbx::kIPv4Dim,
                  "prefix aggregation expects an IPv4-sized matrix");
  const int shift = 32 - prefix_bits;
  const gbx::Index dim = gbx::Index{1} << prefix_bits;

  std::vector<gbx::Entry<T>> ent;
  ent.reserve(A.nvals());
  A.for_each([&](gbx::Index i, gbx::Index j, T v) {
    ent.push_back({i >> shift, j >> shift, v});
  });
  gbx::sort_entries(ent);
  gbx::dedup_sorted_entries_parallel<typename gbx::Matrix<T, M>::add_monoid>(ent);
  return gbx::Matrix<T, M>::adopt(dim, dim,
                                  gbx::Dcsr<T>::from_sorted_unique(ent));
}

/// Heaviest inter-subnet flows after aggregation: (src_prefix,
/// dst_prefix, volume) triples, descending by volume, at most k.
template <class T, class M>
std::vector<std::tuple<gbx::Index, gbx::Index, double>> top_subnet_flows(
    const gbx::Matrix<T, M>& A, int prefix_bits, std::size_t k) {
  auto agg = aggregate_prefixes(A, prefix_bits);
  std::vector<std::tuple<gbx::Index, gbx::Index, double>> all;
  all.reserve(agg.nvals());
  agg.for_each([&](gbx::Index i, gbx::Index j, T v) {
    all.emplace_back(i, j, static_cast<double>(v));
  });
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return std::get<2>(a) > std::get<2>(b);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace analytics
