// analytics/analytics.hpp — umbrella header for traffic analytics.
#pragma once

#include "analytics/background.hpp"
#include "analytics/concentration.hpp"
#include "analytics/flow_reader.hpp"
#include "analytics/incremental.hpp"
#include "analytics/ip.hpp"
#include "analytics/prefix.hpp"
#include "analytics/traffic.hpp"
#include "analytics/window.hpp"
