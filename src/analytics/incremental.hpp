// analytics/incremental.hpp — delta-driven incremental analytics engine.
//
// The paper's analysis step materializes A = Σ Ai on every query; the
// snapshot engine (PR 2) made that safe under live ingest, but every
// pass still recomputed from scratch. Streaming network-analytics
// pipelines (e.g. the enterprise IP-similarity system of Soliman et al.,
// arXiv:2010.04777) re-run their graph metrics on every window — the
// pattern where delta-driven recompute turns O(nnz) per pass into
// O(changed).
//
// IncrementalEngine layers on hier::SnapshotEngine: it keeps the
// previous snapshot plus derived state (materialized Σ Ai, traffic/
// degree summary, triangle adjacency, PageRank), and on refresh() diffs
// the new snapshot against the previous one (hier::snapshot_diff, block
// identity reuse) and patches the derived state from the delta instead
// of recomputing it.
//
// Exactness contract per quantity (asserted by tests/bench):
//   * Σ Ai          — bit-identical to snapshot.to_matrix(): the delta
//                     carries the new snapshot's own left-fold values,
//                     and the patch is a right-biased union merge.
//   * triangles     — exactly equal to algo::triangle_count(Σ Ai): new
//                     undirected edges close |N(u) ∩ N(v)| triangles at
//                     insertion time, each triangle counted once by its
//                     last-inserted edge.
//   * links/sources/destinations/max_link — exactly equal to
//                     analytics::summarize(Σ Ai) (integer/max updates).
//   * packets/mean  — floating accumulation in delta order; equal to a
//                     full summarize up to roundoff (not bit-identical).
//   * PageRank      — two modes. Warm start (default): previous ranks
//                     seed the iteration with delta-seeded residual
//                     early-exit; agrees with a cold full recompute to
//                     within the convergence tolerance. Exact mode
//                     (pagerank_warm_start = false): a cold run on the
//                     incrementally-maintained Σ Ai — bit-identical to
//                     the full recompute because the inputs are.
//
// Any refresh whose delta reports removals (out-of-order snapshots,
// source restarted) falls back to a full recompute and says so in the
// report — incrementality is an optimization, never a correctness bet.
//
// Memory-governed sources (hier::MemoryGovernor): the engine layers on
// them unchanged — snapshot_type becomes the governed handle. When the
// governor has evicted the engine's cached previous snapshot between
// refreshes (its levels compacted or spilled, so no block-identity diff
// exists any more), try_snapshot_diff reports the image unavailable and
// the refresh falls back to the same counted full recompute, with
// report.prev_unavailable set. Delta semantics are unchanged either
// way; results stay exactly as specified above.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algo/pagerank.hpp"
#include "algo/triangle_count.hpp"
#include "analytics/traffic.hpp"
#include "gbx/gbx.hpp"
#include "hier/delta.hpp"
#include "hier/snapshot.hpp"

namespace analytics {

struct IncrementalOptions {
  algo::PageRankOptions pagerank;
  /// Warm-start PageRank from the previous converged ranks (fast,
  /// tolerance-exact). false = cold rerun on the maintained Σ Ai
  /// (bit-identical to a full recompute, costs full iterations).
  bool pagerank_warm_start = true;
  bool enable_pagerank = true;
  bool enable_triangles = true;
};

/// What one refresh() did.
struct IncrementalReport {
  std::uint64_t epoch = 0;          ///< epoch of the snapshot analyzed
  bool full_recompute = false;      ///< first pass, removal, or eviction
                                    ///< fallback
  bool prev_unavailable = false;    ///< previous snapshot was evicted or
                                    ///< spilled by a memory governor
  std::size_t added = 0;            ///< new coordinates in Σ Ai
  std::size_t changed = 0;          ///< coordinates whose value changed
  std::size_t new_edges = 0;        ///< new undirected graph edges
  int pagerank_iterations = 0;      ///< 0 when reused/skipped
  hier::DeltaStats delta;           ///< block-reuse accounting
};

template <class Source>
class IncrementalEngine {
 public:
  using snapshot_type =
      std::decay_t<decltype(std::declval<Source&>().freeze())>;
  using value_type = typename snapshot_type::value_type;
  using matrix_type = typename snapshot_type::matrix_type;
  using T = value_type;

  explicit IncrementalEngine(Source& source, IncrementalOptions opt = {})
      : snapper_(source), opt_(std::move(opt)) {}

  /// The underlying snapshot engine (epoch counters, staleness hook).
  hier::SnapshotEngine<Source>& snapshots() { return snapper_; }

  /// Acquire a fresh snapshot and bring every derived quantity up to
  /// date — incrementally when the delta allows it. Returns the report
  /// for this pass. Single-analyst discipline: one thread calls
  /// refresh(); the results are plain members readable between calls.
  const IncrementalReport& refresh() {
    auto snap = snapper_.acquire();
    report_ = IncrementalReport{};
    report_.epoch = snap.epoch();
    ++refreshes_;

    if (!has_state_) {
      full_recompute(snap);
    } else {
      // The reader held prev_ since the last pass — warn if it pinned
      // blocks for too many epochs (hook set via snapshots()).
      snapper_.check_staleness(prev_.epoch());
      // Unqualified: ADL resolves the governed-handle overload (which
      // reports nullopt once eviction took the diffable structure away)
      // as well as the plain-snapshot wrapper in hier/delta.hpp.
      auto delta = try_snapshot_diff(prev_, snap);
      if (!delta) {
        // A memory governor evicted/spilled the cached image: recompute.
        report_.prev_unavailable = true;
        full_recompute(snap);
      } else if (!delta->removed.empty()) {
        // Not an epoch-ordered pair from this source: start over.
        report_.delta = delta->stats;
        full_recompute(snap);
      } else {
        report_.delta = delta->stats;
        apply_delta(*delta);
      }
    }
    prev_ = std::move(snap);
    return report_;
  }

  /// Materialized Σ Ai of the last refreshed snapshot (bit-identical to
  /// snapshot().to_matrix()).
  const matrix_type& sum() const { return sum_; }
  const snapshot_type& snapshot() const { return prev_; }
  const TrafficSummary& summary() const { return summary_; }
  const algo::PageRankResult& pagerank() const { return pagerank_; }
  std::uint64_t triangles() const { return triangles_; }
  const IncrementalReport& last_report() const { return report_; }
  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t full_recomputes() const { return full_recomputes_; }

 private:
  using Index = gbx::Index;

  void full_recompute(const snapshot_type& snap) {
    ++full_recomputes_;
    report_.full_recompute = true;
    sum_ = snap.to_matrix();
    summary_ = summarize(sum_);
    row_links_.clear();
    col_links_.clear();
    sum_.for_each([&](Index i, Index j, T) {
      ++row_links_[i];
      ++col_links_[j];
    });
    if (opt_.enable_triangles) {
      GBX_CHECK_DIM(sum_.nrows() == sum_.ncols(),
                    "incremental triangles require a square matrix");
      rebuild_adjacency();
      triangles_ = algo::triangle_count(sum_);
    }
    if (opt_.enable_pagerank) {
      GBX_CHECK_DIM(sum_.nrows() == sum_.ncols(),
                    "incremental pagerank requires a square matrix");
      auto opt = opt_.pagerank;
      opt.warm_start = nullptr;  // full recompute = cold, reproducible
      pagerank_ = algo::pagerank(sum_, opt);
      report_.pagerank_iterations = pagerank_.iterations;
    }
    has_state_ = true;
  }

  void apply_delta(const hier::SnapshotDelta<T>& delta) {
    report_.added = delta.added.size();
    report_.changed = delta.changed.size();

    // --- Σ Ai: right-biased union patch. The delta values are the new
    // snapshot's own cross-level fold, so the patched matrix equals the
    // full to_matrix() bit-for-bit.
    if (!delta.empty()) {
      gbx::Tuples<T> patch;
      patch.reserve(delta.added.size() + delta.changed.size());
      patch.append(delta.added);
      for (const auto& c : delta.changed) patch.push_back(c.row, c.col, c.new_val);
      patch.template sort_dedup<typename matrix_type::add_monoid>();
      auto patch_block =
          gbx::Dcsr<T>::from_sorted_unique(patch.entries());
      sum_ = matrix_type::adopt(
          sum_.nrows(), sum_.ncols(),
          gbx::ewise_add<gbx::Second<T>>(sum_.storage(), patch_block));
    }

    // --- degree / traffic summary.
    bool max_rescan = false;
    // With no prior links there is no prior maximum to extend (added
    // values may all be negative).
    double max_candidate = summary_.links > 0
                               ? summary_.max_link
                               : std::numeric_limits<double>::lowest();
    for (const auto& e : delta.added) {
      if (++row_links_[e.row] == 1) ++summary_.sources;
      if (++col_links_[e.col] == 1) ++summary_.destinations;
      summary_.packets += static_cast<double>(e.val);
      max_candidate = std::max(max_candidate, static_cast<double>(e.val));
    }
    summary_.links += delta.added.size();
    for (const auto& c : delta.changed) {
      summary_.packets += static_cast<double>(c.new_val) -
                          static_cast<double>(c.old_val);
      const double nv = static_cast<double>(c.new_val);
      max_candidate = std::max(max_candidate, nv);
      // The previous maximum may have decreased: only then is a rescan
      // needed to find the new (exact) maximum.
      if (nv < static_cast<double>(c.old_val) &&
          static_cast<double>(c.old_val) >= summary_.max_link)
        max_rescan = true;
    }
    if (summary_.links > 0) {
      summary_.max_link =
          max_rescan ? static_cast<double>(
                           gbx::reduce_scalar<gbx::MaxMonoid<T>>(sum_))
                     : max_candidate;
      summary_.mean_link =
          summary_.packets / static_cast<double>(summary_.links);
    }

    // --- triangles: close new undirected edges against the current
    // adjacency; each new triangle is counted exactly once, at the
    // insertion of its last edge. Value-only changes never touch the
    // pattern, so `changed` is skipped entirely.
    if (opt_.enable_triangles) {
      for (const auto& e : delta.added) {
        if (e.row == e.col) continue;
        if (has_edge(e.row, e.col)) continue;  // reverse direction known
        triangles_ += common_neighbors(e.row, e.col);
        add_edge(e.row, e.col);
        ++report_.new_edges;
      }
    }

    // --- PageRank: the transition structure depends only on the edge
    // pattern, so value-only deltas reuse the previous ranks outright.
    // Structural deltas warm-start from them (or rerun cold in exact
    // mode). NOTE: pagerank's pattern is the DIRECTED stored structure,
    // self-loops included — every added coordinate changes it, even the
    // reverse directions and self-loops the undirected triangle
    // adjacency deliberately ignores.
    if (opt_.enable_pagerank) {
      const bool pattern_changed = !delta.added.empty();
      if (pattern_changed) {
        auto opt = opt_.pagerank;
        if (opt_.pagerank_warm_start) {
          // Delta-seeded residual: a perturbation confined to the new
          // edges' endpoints moves at most ~d/(1-d) of their rank mass;
          // below tolerance the previous ranks are already converged.
          if (seeded_residual(delta) < opt.tol) {
            report_.pagerank_iterations = 0;
            return;
          }
          opt.warm_start = &pagerank_.ranks;
        } else {
          opt.warm_start = nullptr;
        }
        pagerank_ = algo::pagerank(sum_, opt);
        report_.pagerank_iterations = pagerank_.iterations;
      }
    }
  }

  /// Upper-bound seed for the post-delta PageRank residual: rank mass
  /// sitting at the endpoints of new edges, amplified by the damping
  /// geometric series. Crude but sound as an early-exit guard — with
  /// any real churn it exceeds tol and the iteration runs.
  double seeded_residual(const hier::SnapshotDelta<T>& delta) const {
    std::unordered_map<Index, double> rank_of;
    rank_of.reserve(pagerank_.ranks.size());
    for (const auto& [v, r] : pagerank_.ranks) rank_of.emplace(v, r);
    const double floor_rank =
        pagerank_.ranks.empty()
            ? 1.0
            : 1.0 / static_cast<double>(pagerank_.ranks.size());
    double mass = 0;
    for (const auto& e : delta.added) {
      auto it = rank_of.find(e.row);
      mass += it != rank_of.end() ? it->second : floor_rank;
      it = rank_of.find(e.col);
      mass += it != rank_of.end() ? it->second : floor_rank;
    }
    const double d = opt_.pagerank.damping;
    return 2.0 * mass * d / (1.0 - d);
  }

  // --- symmetrized adjacency (pattern of Σ Ai, self-loops dropped),
  // sorted neighbor lists for O(min-degree · log) edge closure counts.
  void rebuild_adjacency() {
    adj_.clear();
    sum_.for_each([&](Index i, Index j, T) {
      if (i == j) return;
      if (!has_edge(i, j)) add_edge(i, j);
    });
  }

  bool has_edge(Index u, Index v) const {
    auto it = adj_.find(u);
    if (it == adj_.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), v);
  }

  void add_edge(Index u, Index v) {
    insert_sorted(adj_[u], v);
    insert_sorted(adj_[v], u);
  }

  static void insert_sorted(std::vector<Index>& list, Index v) {
    list.insert(std::lower_bound(list.begin(), list.end(), v), v);
  }

  std::uint64_t common_neighbors(Index u, Index v) const {
    auto iu = adj_.find(u);
    auto iv = adj_.find(v);
    if (iu == adj_.end() || iv == adj_.end()) return 0;
    const auto* small = &iu->second;
    const auto* big = &iv->second;
    if (small->size() > big->size()) std::swap(small, big);
    std::uint64_t n = 0;
    for (Index w : *small)
      if (std::binary_search(big->begin(), big->end(), w)) ++n;
    return n;
  }

  hier::SnapshotEngine<Source> snapper_;
  IncrementalOptions opt_;
  bool has_state_ = false;
  snapshot_type prev_;
  matrix_type sum_{1, 1};
  TrafficSummary summary_;
  algo::PageRankResult pagerank_;
  std::uint64_t triangles_ = 0;
  std::unordered_map<Index, std::uint64_t> row_links_, col_links_;
  std::unordered_map<Index, std::vector<Index>> adj_;
  IncrementalReport report_;
  std::uint64_t refreshes_ = 0;
  std::uint64_t full_recomputes_ = 0;
};

}  // namespace analytics
