// analytics/ip.hpp — IP address and CIDR utilities for traffic matrices.
//
// Traffic matrices index rows/columns by IP address: IPv4 occupies the
// 2^32 space, IPv6 the 2^64 space (the paper uses the upper 64 bits of
// the address, which is what a 2^64-dim hypersparse matrix can index).
// These helpers convert between text and matrix coordinates and turn
// CIDR prefixes into index ranges for extract_range-based subnet views.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "gbx/extract.hpp"
#include "gbx/matrix.hpp"

namespace analytics {

/// Parse dotted-quad IPv4 into a matrix index. Rejects malformed text,
/// out-of-range octets, and trailing garbage.
inline std::optional<gbx::Index> parse_ipv4(std::string_view s) {
  std::uint32_t ip = 0;
  int octet = 0, digits = 0;
  std::uint32_t cur = 0;
  for (std::size_t k = 0; k <= s.size(); ++k) {
    if (k == s.size() || s[k] == '.') {
      if (digits == 0 || cur > 255) return std::nullopt;
      ip = (ip << 8) | cur;
      ++octet;
      cur = 0;
      digits = 0;
      if (k == s.size()) break;
      if (octet > 3) return std::nullopt;
    } else if (s[k] >= '0' && s[k] <= '9') {
      if (digits == 3) return std::nullopt;
      cur = cur * 10 + static_cast<std::uint32_t>(s[k] - '0');
      ++digits;
    } else {
      return std::nullopt;
    }
  }
  if (octet != 4) return std::nullopt;
  return gbx::Index{ip};
}

/// Format a matrix index (must be < 2^32) as dotted-quad.
inline std::string format_ipv4(gbx::Index ip) {
  GBX_CHECK_VALUE(ip <= 0xffffffffull, "format_ipv4: index exceeds 2^32");
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                static_cast<unsigned>((ip >> 24) & 0xff),
                static_cast<unsigned>((ip >> 16) & 0xff),
                static_cast<unsigned>((ip >> 8) & 0xff),
                static_cast<unsigned>(ip & 0xff));
  return buf;
}

/// Half-open matrix index range [lo, hi) covered by an IPv4 CIDR block.
struct IpRange {
  gbx::Index lo = 0;
  gbx::Index hi = 0;  // exclusive
  gbx::Index size() const { return hi - lo; }
};

/// Parse "a.b.c.d/n" into its index range. The host part of the address
/// must be zero (canonical CIDR), e.g. "10.1.0.0/16".
inline std::optional<IpRange> parse_cidr(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = parse_ipv4(s.substr(0, slash));
  if (!base) return std::nullopt;
  int prefix = 0;
  const auto ps = s.substr(slash + 1);
  if (ps.empty() || ps.size() > 2) return std::nullopt;
  for (char c : ps) {
    if (c < '0' || c > '9') return std::nullopt;
    prefix = prefix * 10 + (c - '0');
  }
  if (prefix < 0 || prefix > 32) return std::nullopt;
  const gbx::Index span = prefix == 0 ? (gbx::Index{1} << 32)
                                      : (gbx::Index{1} << (32 - prefix));
  if (*base % span != 0) return std::nullopt;  // host bits set
  return IpRange{*base, *base + span};
}

/// Subnet-to-subnet traffic view: T(src in A, dst in B), coordinates
/// rebased to the subnet origins. Runs entirely on the hypersparse
/// structure (no dense scan of the address space).
template <class T, class M>
gbx::Matrix<T, M> subnet_view(const gbx::Matrix<T, M>& traffic,
                              const IpRange& src, const IpRange& dst) {
  return gbx::extract_range(traffic, src.lo, src.hi, dst.lo, dst.hi);
}

}  // namespace analytics
