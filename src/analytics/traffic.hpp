// analytics/traffic.hpp — traffic-matrix network statistics.
//
// The paper's motivating application (Section I): origin-destination
// traffic matrices enable "observation of temporal fluctuations of
// network supernodes, computing background models, and inferring the
// presence of unobserved traffic". These are the statistics "each
// process would also compute ... on each of the streams as they are
// updated". Everything here consumes a materialized gbx matrix — in a
// streaming pipeline, a HierMatrix snapshot().
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gbx/gbx.hpp"

namespace analytics {

/// Scalar summary of a traffic matrix A(src, dst) = #packets.
struct TrafficSummary {
  std::uint64_t links = 0;        ///< nnz: distinct (src, dst) pairs
  double packets = 0;             ///< total traffic (sum of values)
  std::uint64_t sources = 0;      ///< distinct senders (non-empty rows)
  std::uint64_t destinations = 0; ///< distinct receivers
  double max_link = 0;            ///< heaviest single link
  double mean_link = 0;           ///< packets / links
};

/// Summary of an immutable snapshot view: touches only the frozen block,
/// so it is safe while the owning matrix keeps streaming.
template <class T>
TrafficSummary summarize(const gbx::MatrixView<T>& A) {
  TrafficSummary s;
  s.links = A.nvals();
  s.packets = static_cast<double>(gbx::reduce_scalar<gbx::PlusMonoid<T>>(A));
  s.sources = A.storage().nrows_nonempty();
  s.destinations = gbx::reduce_cols<gbx::PlusMonoid<T>>(A).nvals();
  if (s.links > 0) {
    s.max_link = static_cast<double>(gbx::reduce_scalar<gbx::MaxMonoid<T>>(A));
    s.mean_link = s.packets / static_cast<double>(s.links);
  }
  return s;
}

template <class T, class M>
TrafficSummary summarize(const gbx::Matrix<T, M>& A) {
  return summarize(A.view());  // folds pending, then reads the view
}

/// One vertex with an associated magnitude (degree, traffic volume, ...).
struct RankedVertex {
  gbx::Index id;
  double value;
};

/// Top-k rows by out-traffic (the paper's "supernodes"). `by_links` ranks
/// by distinct peers (out-degree) instead of packet volume.
template <class T, class M>
std::vector<RankedVertex> top_sources(const gbx::Matrix<T, M>& A, std::size_t k,
                                      bool by_links = false) {
  gbx::SparseVector<T> v =
      by_links ? gbx::reduce_rows<gbx::PlusMonoid<T>>(gbx::apply<gbx::One<T>>(A))
               : gbx::reduce_rows<gbx::PlusMonoid<T>>(A);
  std::vector<RankedVertex> all;
  all.reserve(v.nvals());
  v.for_each([&](gbx::Index i, T x) {
    all.push_back({i, static_cast<double>(x)});
  });
  const std::size_t kk = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(kk),
                    all.end(), [](const RankedVertex& a, const RankedVertex& b) {
                      return a.value > b.value;
                    });
  all.resize(kk);
  return all;
}

/// Top-k columns by in-traffic.
template <class T, class M>
std::vector<RankedVertex> top_destinations(const gbx::Matrix<T, M>& A,
                                           std::size_t k,
                                           bool by_links = false) {
  gbx::SparseVector<T> v =
      by_links ? gbx::reduce_cols<gbx::PlusMonoid<T>>(gbx::apply<gbx::One<T>>(A))
               : gbx::reduce_cols<gbx::PlusMonoid<T>>(A);
  std::vector<RankedVertex> all;
  all.reserve(v.nvals());
  v.for_each([&](gbx::Index j, T x) {
    all.push_back({j, static_cast<double>(x)});
  });
  const std::size_t kk = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(kk),
                    all.end(), [](const RankedVertex& a, const RankedVertex& b) {
                      return a.value > b.value;
                    });
  all.resize(kk);
  return all;
}

/// Degree distribution: histogram[d] = #vertices with out-degree d,
/// returned as (degree, count) pairs sorted by degree.
template <class T, class M>
std::vector<std::pair<std::uint64_t, std::uint64_t>> out_degree_histogram(
    const gbx::Matrix<T, M>& A) {
  auto deg = gbx::reduce_rows<gbx::PlusMonoid<T>>(gbx::apply<gbx::One<T>>(A));
  std::vector<std::uint64_t> degrees;
  degrees.reserve(deg.nvals());
  deg.for_each([&](gbx::Index, T d) {
    degrees.push_back(static_cast<std::uint64_t>(d));
  });
  std::sort(degrees.begin(), degrees.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hist;
  for (std::uint64_t d : degrees) {
    if (!hist.empty() && hist.back().first == d) ++hist.back().second;
    else hist.emplace_back(d, 1);
  }
  return hist;
}

/// Least-squares slope of log(count) vs log(degree): a power-law degree
/// distribution shows a clearly negative slope (≈ -alpha). Used both by
/// analytics consumers and by tests validating the generators.
inline double power_law_slope(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& hist) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& [d, c] : hist) {
    if (d == 0 || c == 0) continue;
    const double x = std::log(static_cast<double>(d));
    const double y = std::log(static_cast<double>(c));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double nn = static_cast<double>(n);
  const double denom = nn * sxx - sx * sx;
  return denom == 0 ? 0.0 : (nn * sxy - sx * sy) / denom;
}

}  // namespace analytics
