// analytics/flow_reader.hpp — text flow-record ingestion.
//
// A minimal NetFlow-like record format for feeding traffic matrices from
// files or pipes, one record per line:
//
//   <timestamp> <src-ip> <dst-ip> <count>
//   1583366400 10.1.2.3 8.8.8.8 42
//
// Lines starting with '#' and blank lines are skipped. Malformed lines
// are counted, reported, and skipped — a stream ingester must not die on
// one bad record.
#pragma once

#include <cstdint>
#include <istream>
#include <sstream>
#include <string>

#include "analytics/ip.hpp"
#include "gbx/coo.hpp"

namespace analytics {

struct FlowRecord {
  std::uint64_t timestamp = 0;
  gbx::Index src = 0;
  gbx::Index dst = 0;
  double count = 0;
};

struct FlowReadStats {
  std::size_t records = 0;
  std::size_t malformed = 0;
  std::uint64_t first_timestamp = 0;
  std::uint64_t last_timestamp = 0;
};

/// Parse one record line. Returns false (and leaves `out` untouched) on
/// malformed input.
inline bool parse_flow_line(const std::string& line, FlowRecord& out) {
  std::istringstream is(line);
  std::uint64_t ts;
  std::string src, dst;
  double count;
  if (!(is >> ts >> src >> dst >> count)) return false;
  std::string trailing;
  if (is >> trailing) return false;  // extra fields
  const auto s = parse_ipv4(src);
  const auto d = parse_ipv4(dst);
  if (!s || !d || count < 0) return false;
  out = {ts, *s, *d, count};
  return true;
}

/// Read all records from a stream into a tuple batch (src, dst, count),
/// invoking `on_record` (if provided) per parsed record for streaming
/// consumers (e.g. windowing by timestamp).
template <class F>
FlowReadStats read_flows(std::istream& is, gbx::Tuples<double>& out,
                         F&& on_record) {
  FlowReadStats st;
  std::string line;
  FlowRecord rec;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!parse_flow_line(line, rec)) {
      ++st.malformed;
      continue;
    }
    if (st.records == 0) st.first_timestamp = rec.timestamp;
    st.last_timestamp = rec.timestamp;
    ++st.records;
    out.push_back(rec.src, rec.dst, rec.count);
    on_record(rec);
  }
  return st;
}

inline FlowReadStats read_flows(std::istream& is, gbx::Tuples<double>& out) {
  return read_flows(is, out, [](const FlowRecord&) {});
}

/// Write records in the same format (round-trip support for fixtures).
inline void write_flow(std::ostream& os, const FlowRecord& r) {
  os << r.timestamp << ' ' << format_ipv4(r.src) << ' ' << format_ipv4(r.dst)
     << ' ' << r.count << '\n';
}

}  // namespace analytics
