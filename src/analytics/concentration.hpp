// analytics/concentration.hpp — traffic concentration measures.
//
// Scalar shape statistics for traffic matrices: Shannon entropy of the
// traffic distribution over sources, the Gini coefficient of volume
// concentration, and window-over-window change detection — the
// "temporal fluctuations of network supernodes" measurements the paper
// motivates.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "gbx/gbx.hpp"

namespace analytics {

/// Shannon entropy (bits) of traffic volume across non-empty rows.
/// 0 for a single talker; log2(#sources) for perfectly even traffic.
template <class T, class M>
double source_entropy(const gbx::Matrix<T, M>& A) {
  auto sums = gbx::reduce_rows<gbx::PlusMonoid<T>>(A);
  double total = 0;
  sums.for_each([&](gbx::Index, T v) { total += static_cast<double>(v); });
  if (total <= 0) return 0.0;
  double h = 0;
  sums.for_each([&](gbx::Index, T v) {
    const double p = static_cast<double>(v) / total;
    if (p > 0) h -= p * std::log2(p);
  });
  return h;
}

/// Gini coefficient of per-source traffic volume: 0 = perfectly even,
/// -> 1 = one source carries everything. Computed over non-empty rows.
template <class T, class M>
double source_gini(const gbx::Matrix<T, M>& A) {
  auto sums = gbx::reduce_rows<gbx::PlusMonoid<T>>(A);
  std::vector<double> v;
  v.reserve(sums.nvals());
  sums.for_each([&](gbx::Index, T x) { v.push_back(static_cast<double>(x)); });
  if (v.size() < 2) return 0.0;
  std::sort(v.begin(), v.end());
  double cum = 0, weighted = 0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    cum += v[k];
    weighted += static_cast<double>(k + 1) * v[k];
  }
  if (cum <= 0) return 0.0;
  const double n = static_cast<double>(v.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

/// Link-level change between two windows: new links, vanished links, and
/// the L1 volume change on persisting links. Built on eWiseUnion
/// subtraction, so both directions of change are visible.
struct WindowDelta {
  std::size_t new_links = 0;
  std::size_t gone_links = 0;
  std::size_t common_links = 0;
  double volume_change = 0;  ///< Σ |now - before| over common links
};

template <class T, class M>
WindowDelta window_delta(const gbx::Matrix<T, M>& before,
                         const gbx::Matrix<T, M>& now) {
  GBX_CHECK_DIM(before.nrows() == now.nrows() && before.ncols() == now.ncols(),
                "window_delta dimension mismatch");
  WindowDelta d;
  const auto& sb = before.storage();
  now.for_each([&](gbx::Index i, gbx::Index j, T v) {
    auto old = sb.get(i, j);
    if (!old) {
      ++d.new_links;
    } else {
      ++d.common_links;
      d.volume_change += std::abs(static_cast<double>(v) - static_cast<double>(*old));
    }
  });
  d.gone_links = before.nvals() - d.common_links;
  return d;
}

}  // namespace analytics
