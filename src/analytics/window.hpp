// analytics/window.hpp — temporal windowing over hierarchical matrices.
//
// "Enabling the observation of temporal fluctuations of network
// supernodes" (paper Section I) needs traffic matrices per time window.
// TumblingWindows keeps a ring of W hierarchical hypersparse matrices;
// advancing the window resets the oldest slot. Queries can view a single
// window or the union of all live windows — each query is just GraphBLAS
// addition, the same trick as the hierarchy itself.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/hier.hpp"

namespace analytics {

template <class T = double>
class TumblingWindows {
 public:
  TumblingWindows(std::size_t windows, gbx::Index nrows, gbx::Index ncols,
                  const hier::CutPolicy& cuts)
      : nrows_(nrows), ncols_(ncols) {
    GBX_CHECK_VALUE(windows > 0, "need at least one window");
    ring_.reserve(windows);
    for (std::size_t w = 0; w < windows; ++w) ring_.emplace_back(nrows, ncols, cuts);
  }

  std::size_t num_windows() const { return ring_.size(); }
  /// Index of the window currently receiving updates.
  std::size_t current() const { return cur_; }
  /// Monotone count of advance() calls (the logical epoch).
  std::uint64_t epoch() const { return epoch_; }

  /// Stream updates into the current window.
  void update(gbx::Index i, gbx::Index j, T v) { ring_[cur_].update(i, j, v); }
  void update(const gbx::Tuples<T>& batch) { ring_[cur_].update(batch); }

  /// Close the current window and start the next, recycling the oldest
  /// slot (its contents are dropped — tumbling, not sliding, semantics).
  void advance() {
    cur_ = (cur_ + 1) % ring_.size();
    ring_[cur_] = hier::HierMatrix<T>(nrows_, ncols_, ring_[cur_].cut_policy());
    ++epoch_;
  }

  /// Snapshot of one window, counted from the current one backwards:
  /// ago = 0 is the live window, 1 the previous, etc.
  gbx::Matrix<T> window(std::size_t ago = 0) const {
    GBX_CHECK_INDEX(ago < ring_.size(), "window offset exceeds ring size");
    const std::size_t w = (cur_ + ring_.size() - ago) % ring_.size();
    return ring_[w].snapshot();
  }

  /// Union of all live windows (the "recent traffic" matrix).
  gbx::Matrix<T> total() const {
    gbx::Matrix<T> acc(nrows_, ncols_);
    for (const auto& h : ring_) acc.plus_assign(h.snapshot());
    return acc;
  }

  /// Per-window nnz (live occupancy), current window first.
  std::vector<std::size_t> occupancy() const {
    std::vector<std::size_t> out(ring_.size());
    for (std::size_t a = 0; a < ring_.size(); ++a)
      out[a] = ring_[(cur_ + ring_.size() - a) % ring_.size()].total_entries_bound();
    return out;
  }

  std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (const auto& h : ring_) n += h.memory_bytes();
    return n;
  }

 private:
  gbx::Index nrows_;
  gbx::Index ncols_;
  std::vector<hier::HierMatrix<T>> ring_;
  std::size_t cur_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace analytics
