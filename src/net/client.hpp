// net/client.hpp — blocking client for the ingest server (Linux only).
//
// The deliberately boring half of the protocol: a connected TCP socket,
// frames built by net/protocol.hpp, replies decoded by the same
// store::RecordFrameDecoder the server uses. Inserts are one-way
// streaming (back-pressure arrives as a blocking send() once the server
// parks the session's lane); flush() and the queries are call-and-
// response. One thread per Client — it is a connection handle, not a
// pool.
#pragma once

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/failpoint.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/query.hpp"

namespace net {

class Client : public QueryInterface {
 public:
  struct Options {
    /// Reply-read timeout, milliseconds; a blocked recv past this
    /// throws a clean gbx::Error instead of hanging on a dead or
    /// partitioned server — the failover-detection primitive. Negative
    /// means block forever (the historical behaviour).
    int recv_timeout_ms = -1;
    /// connect() attempts before giving up (reconnect-with-retry).
    int connect_attempts = 1;
    /// Backoff before the second attempt, milliseconds; doubled per
    /// retry up to connect_max_backoff_ms.
    int connect_backoff_ms = 20;
    int connect_max_backoff_ms = 500;
  };

  // No `opt = {}` default argument: GCC parses default arguments before
  // nested-class member initializers (same workaround as IngestServer).
  Client() = default;
  explicit Client(Options opt) : opt_(opt) {}

  /// Connect to a server (dotted-quad host, e.g. "127.0.0.1"), retrying
  /// with exponential backoff per Options::connect_attempts — so a
  /// failover client can dial a replica that is still promoting.
  void connect(const std::string& host, std::uint16_t port) {
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    GBX_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "client: bad host address");
    int backoff = opt_.connect_backoff_ms;
    const int attempts = opt_.connect_attempts > 0 ? opt_.connect_attempts : 1;
    for (int a = 0; a < attempts; ++a) {
      if (a > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, opt_.connect_max_backoff_ms);
      }
      fd_ = Fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
      GBX_CHECK(fd_.valid(), "client socket() failed");
      if (::connect(fd_.get(), reinterpret_cast<::sockaddr*>(&addr),
                    sizeof addr) == 0) {
        const int one = 1;
        ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        dec_ = store::RecordFrameDecoder(kDecoderCap);  // fresh session
        return;
      }
      fd_.reset();
    }
    GBX_CHECK(false, "client connect() failed after " +
                         std::to_string(attempts) + " attempt(s)");
  }

  bool connected() const { return fd_.valid(); }

  /// Stream one insert batch (no ack; see flush()). `lane` pins the
  /// batch to a server lane; kAnyLane uses the session's home lane.
  void insert(const gbx::Tuples<double>& batch,
              std::uint64_t lane = kAnyLane) {
    std::string frame;
    const auto& es = batch.entries();
    append_frame(frame, MsgType::kInsert, lane, es.data(),
                 es.size() * sizeof(es[0]));
    send_all(frame.data(), frame.size());
  }

  /// Barrier: returns once the server has APPLIED every batch this
  /// session submitted (not merely received it).
  void flush() {
    std::string frame;
    append_frame(frame, MsgType::kFlush);
    send_all(frame.data(), frame.size());
    expect_ok(MsgType::kFlush);
  }

  // The QueryInterface surface. Passing a non-null ReplyProvenance
  // requests the revision-2 provenance trailer (kWantProvenance arg
  // bit); nullptr keeps the revision-1 wire shape byte-for-byte.
  using QueryInterface::query_sum;
  using QueryInterface::query_elements;
  using QueryInterface::query_summary;

  SumReply query_sum(ReplyProvenance* prov) override {
    std::string frame;
    append_frame(frame, MsgType::kQuerySum, prov ? kWantProvenance : 0);
    send_all(frame.data(), frame.size());
    auto rec = expect_ok(MsgType::kQuerySum, prov);
    SumReply r;
    GBX_CHECK(payload_as(rec.payload, r), "client: malformed sum reply");
    return r;
  }

  std::vector<ElementReply> query_elements(const std::vector<ElementQuery>& qs,
                                           ReplyProvenance* prov) override {
    std::string frame;
    append_frame(frame, MsgType::kQueryElements, prov ? kWantProvenance : 0,
                 qs.data(), qs.size() * sizeof(ElementQuery));
    send_all(frame.data(), frame.size());
    auto rec = expect_ok(MsgType::kQueryElements, prov);
    std::vector<ElementReply> rs;
    GBX_CHECK(payload_as(rec.payload, rs),
              "client: malformed element reply");
    GBX_CHECK(rs.size() == qs.size(), "client: element reply count mismatch");
    return rs;
  }

  SummaryReply query_summary(ReplyProvenance* prov) override {
    std::string frame;
    append_frame(frame, MsgType::kQuerySummary, prov ? kWantProvenance : 0);
    send_all(frame.data(), frame.size());
    auto rec = expect_ok(MsgType::kQuerySummary, prov);
    SummaryReply r;
    GBX_CHECK(payload_as(rec.payload, r), "client: malformed summary reply");
    return r;
  }

  RefreshReply query_refresh() override {
    std::string frame;
    append_frame(frame, MsgType::kQueryRefresh);
    send_all(frame.data(), frame.size());
    auto rec = expect_ok(MsgType::kQueryRefresh);
    RefreshReply r;
    GBX_CHECK(payload_as(rec.payload, r), "client: malformed refresh reply");
    return r;
  }

  /// Sorted distinct column ids of Σ Ai (the destination set; the
  /// router's summary stitch unions these across workers).
  std::vector<std::uint64_t> query_columns(ReplyProvenance* prov = nullptr) {
    std::string frame;
    append_frame(frame, MsgType::kQueryColumns, prov ? kWantProvenance : 0);
    send_all(frame.data(), frame.size());
    auto rec = expect_ok(MsgType::kQueryColumns, prov);
    std::vector<std::uint64_t> cols;
    GBX_CHECK(payload_as(rec.payload, cols),
              "client: malformed columns reply");
    return cols;
  }

  /// Partition-map metadata (version 0 from a standalone server).
  MapReply query_map() {
    std::string frame;
    append_frame(frame, MsgType::kQueryMap);
    send_all(frame.data(), frame.size());
    auto rec = expect_ok(MsgType::kQueryMap);
    MapReply r;
    GBX_CHECK(payload_as(rec.payload, r), "client: malformed map reply");
    return r;
  }

  /// Orderly goodbye: the server acks and closes its side.
  void bye() {
    std::string frame;
    append_frame(frame, MsgType::kBye);
    send_all(frame.data(), frame.size());
    expect_ok(MsgType::kBye);
    close();
  }

  void close() { fd_.reset(); }

  /// Raw byte escape hatch (tests: malformed/truncated frames).
  void send_raw(const void* data, std::size_t n) { send_all(data, n); }

  /// Next reply frame, whatever it is (tests: observing kReplyError).
  store::LogRecord read_reply() { return next_frame(); }

 private:
  static constexpr std::size_t kDecoderCap = 64u << 20;

  void send_all(const void* data, std::size_t n) {
    GBX_CHECK(fd_.valid(), "client not connected");
    const char* p = static_cast<const char*>(data);
    if (gbx::failpoints().armed()) {
      if (auto fp = gbx::failpoints().hit("net.client.send")) {
        if (fp->action == gbx::FailAction::kPartial) {
          // Transmit a prefix, then fail as if the peer reset us — the
          // server sees a torn frame, the caller sees a send error.
          std::size_t part = static_cast<std::size_t>(
              static_cast<double>(n) * fp->fraction);
          send_bytes(p, part);
          fd_.reset();
          GBX_CHECK(false, "client: connection lost during send (failpoint)");
        }
        if (fp->action == gbx::FailAction::kError) {
          fd_.reset();
          GBX_CHECK(false, "client: connection lost during send (failpoint)");
        }
        if (fp->action == gbx::FailAction::kDelay ||
            fp->action == gbx::FailAction::kStall)
          std::this_thread::sleep_for(std::chrono::milliseconds(fp->delay_ms));
      }
    }
    send_bytes(p, n);
  }

  void send_bytes(const char* p, std::size_t n) {
    while (n > 0) {
      const auto w = ::send(fd_.get(), p, n, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      GBX_CHECK(w > 0, "client: connection lost during send");
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  }

  store::LogRecord next_frame() {
    store::LogRecord rec;
    for (;;) {
      switch (dec_.next(rec)) {
        case store::RecordFrameDecoder::Status::kFrame:
          return rec;
        case store::RecordFrameDecoder::Status::kCorrupt:
          GBX_CHECK(false, "client: " + dec_.error());
          break;
        case store::RecordFrameDecoder::Status::kNeedMore:
          break;
      }
      if (gbx::failpoints().armed()) {
        if (auto fp = gbx::failpoints().hit("net.client.recv")) {
          if (fp->action == gbx::FailAction::kError) {
            fd_.reset();
            GBX_CHECK(false, "client: connection closed by server (failpoint)");
          }
          if (fp->action == gbx::FailAction::kDelay ||
              fp->action == gbx::FailAction::kStall)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fp->delay_ms));
        }
      }
      if (opt_.recv_timeout_ms >= 0) {
        ::pollfd pfd{fd_.get(), POLLIN, 0};
        int r;
        do {
          r = ::poll(&pfd, 1, opt_.recv_timeout_ms);
        } while (r < 0 && errno == EINTR);
        GBX_CHECK(r >= 0, "client: poll() failed");
        GBX_CHECK(r > 0, "client: recv timed out after " +
                             std::to_string(opt_.recv_timeout_ms) + " ms");
      }
      char buf[1u << 16];
      const auto n = ::recv(fd_.get(), buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      GBX_CHECK(n > 0, "client: connection closed by server");
      dec_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// Read one reply; kReplyOk echoing `request` returns the record,
  /// kReplyError throws with the server's diagnostic. When `prov` is
  /// non-null the request asked for provenance; the echoed arg carries
  /// kWantProvenance back and the trailer is split off the payload.
  store::LogRecord expect_ok(MsgType request, ReplyProvenance* prov = nullptr) {
    auto rec = next_frame();
    const MsgType type = tag_type(rec.epoch);
    if (type == MsgType::kReplyError) {
      std::string what(reinterpret_cast<const char*>(rec.payload.data()),
                       rec.payload.size());
      GBX_CHECK(false, "server error: " + what);
    }
    const std::uint64_t want = static_cast<std::uint64_t>(request) |
                               (prov != nullptr ? kWantProvenance : 0);
    GBX_CHECK(type == MsgType::kReplyOk && tag_arg(rec.epoch) == want,
              "client: out-of-order reply");
    if (prov != nullptr)
      GBX_CHECK(split_provenance(rec.payload, *prov),
                "client: malformed provenance trailer");
    return rec;
  }

  Options opt_{};
  Fd fd_;
  store::RecordFrameDecoder dec_{kDecoderCap};
};

}  // namespace net

#endif  // __linux__
