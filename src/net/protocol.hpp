// net/protocol.hpp — framed binary wire protocol of the ingest server.
//
// Every message, in both directions, is one store::RecordLog record:
//
//   [magic u64 "HHWAL001"][tag u64][size u64][payload bytes][fnv1a-64]
//
// reusing the WAL's frame layout verbatim — same magic, same checksum,
// same torn/corrupt classification — so the server's session codec IS
// store::RecordFrameDecoder, and a capture of an ingest session replays
// through the same machinery as a crash log. The record's epoch field
// becomes the message `tag`: the high 16 bits carry the message type,
// the low 48 bits a type-specific argument (the insert lane hint, or
// the echoed request type in replies).
//
// Payloads are host-endian PODs (the repo's serialization convention:
// gbx/serialize, store::BatchWal both ship raw structs). Inserts carry
// a raw gbx::Entry<double> array — exactly the batch representation
// ParallelStream lanes apply, so the server deserializes by memcpy.
//
// Protocol flow (client view):
//   * kInsert frames stream one-way; no per-batch ack. Back-pressure is
//     TCP's: a server whose target lane is full simply stops reading.
//   * kFlush is the barrier: the server replies kReplyOk only once every
//     lane this session ever touched has applied everything it queued.
//   * Query frames get exactly one reply frame each (kReplyOk with the
//     request type echoed in the arg bits, payload the reply struct
//     below; or kReplyError with a diagnostic string payload).
//   * kBye asks for an orderly close; the server replies and closes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "gbx/sort.hpp"
#include "store/wal.hpp"

namespace net {

/// Message type, high 16 bits of the frame tag.
enum class MsgType : std::uint16_t {
  kInsert = 1,        ///< payload: gbx::Entry<double>[]; arg: lane hint
  kFlush = 2,         ///< barrier over the session's used lanes
  kQuerySum = 3,      ///< reply payload: SumReply
  kQueryElements = 4, ///< payload: ElementQuery[]; reply: ElementReply[]
  kQuerySummary = 5,  ///< reply payload: SummaryReply
  kQueryRefresh = 6,  ///< reply payload: RefreshReply
  kBye = 7,           ///< orderly close
  kQueryLaneEpochs = 8,  ///< reply payload: u64[lanes] applied batch counts
  kQueryColumns = 9,  ///< reply payload: u64[] sorted distinct columns of Σ Ai
  kQueryMap = 10,     ///< reply payload: MapReply (partition-map metadata)
  kReplyOk = 32,      ///< arg echoes the request MsgType
  kReplyError = 33,   ///< payload: UTF-8 diagnostic; arg echoes request
  // --- replication (src/repl/): primary→replica WAL shipping. Same
  // frame layout, distinct type numbers; payload PODs live in
  // repl/protocol.hpp so the core protocol stays dependency-free.
  kShipHello = 16,  ///< payload: ShipHello; reply payload: ShipHelloReply
  kShipBatch = 17,  ///< arg: WAL seq (48-bit); payload: lane u64 + entries
  kShipAck = 18,    ///< arg: cumulative durably-applied seq (replica→primary)
  kHeartbeat = 19,  ///< primary lease refresh, one-way
};

/// Lane-hint sentinel: let the server pick (the session's home lane).
inline constexpr std::uint64_t kAnyLane = (std::uint64_t{1} << 48) - 1;

// --- protocol revision 2: versioned reply provenance.
//
// Revision 1 replies carried one `epoch`. Revision 2 lets a client ask
// (by setting kWantProvenance in the query's 48-bit arg) for a
// provenance TRAILER after the reply payload: the per-part epoch vector
// behind the answer — per-lane epochs from a single IngestServer,
// per-WORKER epochs from a stitched cluster::Router reply — plus the
// partition-map version, so a stitched answer is auditable down to the
// exact cut it was computed at. Compatibility is negotiated per query:
// a revision-1 client never sets the flag, the server never attaches
// the trailer, and the reply bytes are exactly the revision-1 shape —
// old clients keep decoding against new servers, and new clients
// against old servers simply get kReplyError-free plain replies (they
// only set the flag when they can parse the result).
inline constexpr std::uint32_t kProtocolRevision = 2;

/// Query-arg flag bit: "attach a provenance trailer to the reply". The
/// reply's arg echoes the flag so the client knows the trailer is
/// there. Bit 40 keeps the low 40 arg bits free (lane hints use the
/// full 48-bit space only via the kAnyLane sentinel, which has this bit
/// set too — inserts carry data, not provenance, so no ambiguity).
inline constexpr std::uint64_t kWantProvenance = std::uint64_t{1} << 40;

/// Fixed-size tail of a provenance trailer. The wire layout of a
/// provenance-carrying reply payload is
///
///   [reply POD(s)] [u64 part_epochs[parts]] [ProvenanceTail]
///
/// — tail LAST so a decoder can find it at a fixed offset from the end
/// whatever the body length (element replies are arrays).
struct ProvenanceTail {
  std::uint64_t snapshot_epoch = 0;  ///< source-wide epoch of the image
  std::uint32_t revision = kProtocolRevision;
  std::uint32_t parts = 0;        ///< length of the epoch vector
  std::uint32_t map_version = 0;  ///< partition-map version (0 = unmapped)
  std::uint32_t reserved = 0;
};

/// Decoded provenance trailer (host form).
struct ReplyProvenance {
  std::uint32_t revision = 0;
  std::uint32_t map_version = 0;
  std::uint64_t snapshot_epoch = 0;
  std::vector<std::uint64_t> part_epochs;
};

inline constexpr std::uint64_t make_tag(MsgType t, std::uint64_t arg48) {
  return (static_cast<std::uint64_t>(t) << 48) | (arg48 & kAnyLane);
}
inline constexpr MsgType tag_type(std::uint64_t tag) {
  return static_cast<MsgType>(tag >> 48);
}
inline constexpr std::uint64_t tag_arg(std::uint64_t tag) {
  return tag & kAnyLane;
}

// --- reply / query PODs (host-endian, trivially copyable).

/// Σ Ai scalar reduce at one snapshot epoch.
struct SumReply {
  double sum = 0;
  std::uint64_t epoch = 0;   ///< snapshot epoch the sum was taken at
  std::uint64_t nvals = 0;   ///< distinct coordinates in Σ Ai
};

/// One element probe of the logical matrix Σ Ai.
struct ElementQuery {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
};

struct ElementReply {
  std::uint64_t present = 0;  ///< 0 = implicit zero (absent coordinate)
  double value = 0;
};

/// analytics::TrafficSummary plus the epoch it describes.
struct SummaryReply {
  std::uint64_t epoch = 0;
  std::uint64_t links = 0;
  double packets = 0;
  std::uint64_t sources = 0;
  std::uint64_t destinations = 0;
  double max_link = 0;
  double mean_link = 0;
};

/// kQueryMap reply: partition-map metadata. A plain IngestServer
/// reports version 0 (standalone — placement never changes) with
/// parts = its lane count; a cluster::Router reports its map version
/// and worker count. A client holding a stale map (its pinned
/// placement hint no longer matches) gets kReplyError from the router
/// and re-fetches this before reconnecting — the redirect primitive.
struct MapReply {
  std::uint64_t version = 0;
  std::uint64_t parts = 0;
  std::uint64_t nrows = 0;
  std::uint64_t ncols = 0;
};

/// analytics::IncrementalEngine::refresh() outcome.
struct RefreshReply {
  std::uint64_t epoch = 0;
  std::uint64_t full_recompute = 0;
  std::uint64_t added = 0;
  std::uint64_t changed = 0;
  std::uint64_t triangles = 0;
  double sum = 0;  ///< reduce over the maintained Σ Ai
};

/// Append one wire frame to `out` (the socket send buffer). Same bytes
/// as store::RecordLogWriter::append would produce for (tag, payload).
inline void append_frame(std::string& out, MsgType type, std::uint64_t arg48,
                         const void* payload, std::size_t size) {
  // An empty POD array legitimately arrives as (nullptr, 0) — e.g.
  // vector::data() of an empty reply set. Substitute a non-null
  // sentinel so neither fnv1a nor string::append ever sees a null
  // pointer (formally UB even for zero lengths).
  const char* body =
      size > 0 ? static_cast<const char*>(payload) : "";
  const std::uint64_t tag = make_tag(type, arg48);
  const std::uint64_t size64 = size;
  const std::uint64_t sum = store::detail::frame_sum(tag, size64, body);
  const auto put = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  put(&store::detail::kRecordMagic, sizeof(std::uint64_t));
  put(&tag, sizeof tag);
  put(&size64, sizeof size64);
  if (size > 0) put(body, size);
  put(&sum, sizeof sum);
}

inline void append_frame(std::string& out, MsgType type,
                         std::uint64_t arg48 = 0) {
  append_frame(out, type, arg48, "", 0);
}

/// Reinterpret a decoded payload as a POD array; false when the byte
/// count is not a whole number of elements (a malformed frame).
template <class Pod>
bool payload_as(const std::vector<std::byte>& payload, std::vector<Pod>& out) {
  static_assert(std::is_trivially_copyable_v<Pod>);
  if (payload.size() % sizeof(Pod) != 0) return false;
  out.resize(payload.size() / sizeof(Pod));
  std::memcpy(out.data(), payload.data(), payload.size());
  return true;
}

template <class Pod>
bool payload_as(const std::vector<std::byte>& payload, Pod& out) {
  static_assert(std::is_trivially_copyable_v<Pod>);
  if (payload.size() != sizeof(Pod)) return false;
  std::memcpy(&out, payload.data(), sizeof(Pod));
  return true;
}

/// Append a provenance trailer (epoch vector + tail) to reply payload
/// bytes under construction. The caller has already appended the reply
/// POD body to `payload`.
inline void append_provenance(std::string& payload,
                              const std::vector<std::uint64_t>& part_epochs,
                              std::uint64_t snapshot_epoch,
                              std::uint32_t map_version) {
  if (!part_epochs.empty())
    payload.append(reinterpret_cast<const char*>(part_epochs.data()),
                   part_epochs.size() * sizeof(std::uint64_t));
  ProvenanceTail tail;
  tail.snapshot_epoch = snapshot_epoch;
  tail.parts = static_cast<std::uint32_t>(part_epochs.size());
  tail.map_version = map_version;
  payload.append(reinterpret_cast<const char*>(&tail), sizeof tail);
}

/// Split a provenance trailer off a reply payload: fills `prov` and
/// shrinks `payload` back to the reply body. Only call when the reply
/// arg carried kWantProvenance. Returns false on a malformed trailer
/// (truncated, or an epoch vector that cannot fit) — the caller treats
/// that like any other malformed reply.
inline bool split_provenance(std::vector<std::byte>& payload,
                             ReplyProvenance& prov) {
  if (payload.size() < sizeof(ProvenanceTail)) return false;
  ProvenanceTail tail;
  std::memcpy(&tail, payload.data() + payload.size() - sizeof tail,
              sizeof tail);
  const std::size_t epochs_bytes =
      static_cast<std::size_t>(tail.parts) * sizeof(std::uint64_t);
  if (payload.size() < sizeof tail + epochs_bytes) return false;
  prov.revision = tail.revision;
  prov.map_version = tail.map_version;
  prov.snapshot_epoch = tail.snapshot_epoch;
  prov.part_epochs.resize(tail.parts);
  if (tail.parts > 0)
    std::memcpy(prov.part_epochs.data(),
                payload.data() + payload.size() - sizeof tail - epochs_bytes,
                epochs_bytes);
  payload.resize(payload.size() - sizeof tail - epochs_bytes);
  return true;
}

}  // namespace net
