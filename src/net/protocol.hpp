// net/protocol.hpp — framed binary wire protocol of the ingest server.
//
// Every message, in both directions, is one store::RecordLog record:
//
//   [magic u64 "HHWAL001"][tag u64][size u64][payload bytes][fnv1a-64]
//
// reusing the WAL's frame layout verbatim — same magic, same checksum,
// same torn/corrupt classification — so the server's session codec IS
// store::RecordFrameDecoder, and a capture of an ingest session replays
// through the same machinery as a crash log. The record's epoch field
// becomes the message `tag`: the high 16 bits carry the message type,
// the low 48 bits a type-specific argument (the insert lane hint, or
// the echoed request type in replies).
//
// Payloads are host-endian PODs (the repo's serialization convention:
// gbx/serialize, store::BatchWal both ship raw structs). Inserts carry
// a raw gbx::Entry<double> array — exactly the batch representation
// ParallelStream lanes apply, so the server deserializes by memcpy.
//
// Protocol flow (client view):
//   * kInsert frames stream one-way; no per-batch ack. Back-pressure is
//     TCP's: a server whose target lane is full simply stops reading.
//   * kFlush is the barrier: the server replies kReplyOk only once every
//     lane this session ever touched has applied everything it queued.
//   * Query frames get exactly one reply frame each (kReplyOk with the
//     request type echoed in the arg bits, payload the reply struct
//     below; or kReplyError with a diagnostic string payload).
//   * kBye asks for an orderly close; the server replies and closes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "gbx/sort.hpp"
#include "store/wal.hpp"

namespace net {

/// Message type, high 16 bits of the frame tag.
enum class MsgType : std::uint16_t {
  kInsert = 1,        ///< payload: gbx::Entry<double>[]; arg: lane hint
  kFlush = 2,         ///< barrier over the session's used lanes
  kQuerySum = 3,      ///< reply payload: SumReply
  kQueryElements = 4, ///< payload: ElementQuery[]; reply: ElementReply[]
  kQuerySummary = 5,  ///< reply payload: SummaryReply
  kQueryRefresh = 6,  ///< reply payload: RefreshReply
  kBye = 7,           ///< orderly close
  kQueryLaneEpochs = 8,  ///< reply payload: u64[lanes] applied batch counts
  kReplyOk = 32,      ///< arg echoes the request MsgType
  kReplyError = 33,   ///< payload: UTF-8 diagnostic; arg echoes request
  // --- replication (src/repl/): primary→replica WAL shipping. Same
  // frame layout, distinct type numbers; payload PODs live in
  // repl/protocol.hpp so the core protocol stays dependency-free.
  kShipHello = 16,  ///< payload: ShipHello; reply payload: ShipHelloReply
  kShipBatch = 17,  ///< arg: WAL seq (48-bit); payload: lane u64 + entries
  kShipAck = 18,    ///< arg: cumulative durably-applied seq (replica→primary)
  kHeartbeat = 19,  ///< primary lease refresh, one-way
};

/// Lane-hint sentinel: let the server pick (the session's home lane).
inline constexpr std::uint64_t kAnyLane = (std::uint64_t{1} << 48) - 1;

inline constexpr std::uint64_t make_tag(MsgType t, std::uint64_t arg48) {
  return (static_cast<std::uint64_t>(t) << 48) | (arg48 & kAnyLane);
}
inline constexpr MsgType tag_type(std::uint64_t tag) {
  return static_cast<MsgType>(tag >> 48);
}
inline constexpr std::uint64_t tag_arg(std::uint64_t tag) {
  return tag & kAnyLane;
}

// --- reply / query PODs (host-endian, trivially copyable).

/// Σ Ai scalar reduce at one snapshot epoch.
struct SumReply {
  double sum = 0;
  std::uint64_t epoch = 0;   ///< snapshot epoch the sum was taken at
  std::uint64_t nvals = 0;   ///< distinct coordinates in Σ Ai
};

/// One element probe of the logical matrix Σ Ai.
struct ElementQuery {
  std::uint64_t row = 0;
  std::uint64_t col = 0;
};

struct ElementReply {
  std::uint64_t present = 0;  ///< 0 = implicit zero (absent coordinate)
  double value = 0;
};

/// analytics::TrafficSummary plus the epoch it describes.
struct SummaryReply {
  std::uint64_t epoch = 0;
  std::uint64_t links = 0;
  double packets = 0;
  std::uint64_t sources = 0;
  std::uint64_t destinations = 0;
  double max_link = 0;
  double mean_link = 0;
};

/// analytics::IncrementalEngine::refresh() outcome.
struct RefreshReply {
  std::uint64_t epoch = 0;
  std::uint64_t full_recompute = 0;
  std::uint64_t added = 0;
  std::uint64_t changed = 0;
  std::uint64_t triangles = 0;
  double sum = 0;  ///< reduce over the maintained Σ Ai
};

/// Append one wire frame to `out` (the socket send buffer). Same bytes
/// as store::RecordLogWriter::append would produce for (tag, payload).
inline void append_frame(std::string& out, MsgType type, std::uint64_t arg48,
                         const void* payload, std::size_t size) {
  // An empty POD array legitimately arrives as (nullptr, 0) — e.g.
  // vector::data() of an empty reply set. Substitute a non-null
  // sentinel so neither fnv1a nor string::append ever sees a null
  // pointer (formally UB even for zero lengths).
  const char* body =
      size > 0 ? static_cast<const char*>(payload) : "";
  const std::uint64_t tag = make_tag(type, arg48);
  const std::uint64_t size64 = size;
  const std::uint64_t sum = store::detail::frame_sum(tag, size64, body);
  const auto put = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  put(&store::detail::kRecordMagic, sizeof(std::uint64_t));
  put(&tag, sizeof tag);
  put(&size64, sizeof size64);
  if (size > 0) put(body, size);
  put(&sum, sizeof sum);
}

inline void append_frame(std::string& out, MsgType type,
                         std::uint64_t arg48 = 0) {
  append_frame(out, type, arg48, "", 0);
}

/// Reinterpret a decoded payload as a POD array; false when the byte
/// count is not a whole number of elements (a malformed frame).
template <class Pod>
bool payload_as(const std::vector<std::byte>& payload, std::vector<Pod>& out) {
  static_assert(std::is_trivially_copyable_v<Pod>);
  if (payload.size() % sizeof(Pod) != 0) return false;
  out.resize(payload.size() / sizeof(Pod));
  std::memcpy(out.data(), payload.data(), payload.size());
  return true;
}

template <class Pod>
bool payload_as(const std::vector<std::byte>& payload, Pod& out) {
  static_assert(std::is_trivially_copyable_v<Pod>);
  if (payload.size() != sizeof(Pod)) return false;
  std::memcpy(&out, payload.data(), sizeof(Pod));
  return true;
}

}  // namespace net
