// net/net.hpp — umbrella header for the streaming ingest server stack.
//
// net/protocol.hpp is portable (frame layout + PODs, built on the WAL
// frame machinery); the epoll server, event loop, and client are Linux-
// only and compile away elsewhere (each is #ifdef __linux__ internally).
#pragma once

#include "net/protocol.hpp"
#include "net/query.hpp"

#ifdef __linux__
#include "net/client.hpp"
#include "net/event_loop.hpp"
#include "net/server.hpp"
#endif
