// net/query.hpp — the transport-agnostic query surface.
//
// `net::Client` (one TCP connection to one IngestServer) and
// `cluster::RouterClient` (one connection to a router stitching N
// worker processes) answer the same four questions; examples, benches,
// and tests that only ask questions take a `QueryInterface&` and stop
// caring which deployment is behind it.
//
// Every query has two spellings: the plain revision-1 form, and an
// overload taking a `ReplyProvenance*` out-parameter that requests the
// revision-2 provenance trailer (per-part epoch vector + map version —
// see net/protocol.hpp). Passing nullptr is exactly the plain form, so
// implementations only override the pointer-taking virtuals.
#pragma once

#include <vector>

#include "net/protocol.hpp"

namespace net {

class QueryInterface {
 public:
  virtual ~QueryInterface() = default;

  /// Σ Ai scalar reduce + nvals at one consistent snapshot.
  virtual SumReply query_sum(ReplyProvenance* prov) = 0;

  /// Batched element probes of the logical Σ Ai; one reply per probe,
  /// in probe order.
  virtual std::vector<ElementReply> query_elements(
      const std::vector<ElementQuery>& qs, ReplyProvenance* prov) = 0;

  /// analytics::TrafficSummary of Σ Ai.
  virtual SummaryReply query_summary(ReplyProvenance* prov) = 0;

  /// Incremental-analytics refresh outcome.
  virtual RefreshReply query_refresh() = 0;

  // Plain revision-1 conveniences (implementations inherit these; add a
  // `using QueryInterface::query_sum;` etc. next to each override so
  // they are not name-hidden).
  SumReply query_sum() { return query_sum(nullptr); }
  std::vector<ElementReply> query_elements(
      const std::vector<ElementQuery>& qs) {
    return query_elements(qs, nullptr);
  }
  SummaryReply query_summary() { return query_summary(nullptr); }
};

}  // namespace net
