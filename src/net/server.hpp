// net/server.hpp — epoll streaming ingest/query server (Linux only).
//
// Puts the streaming engine behind a socket: clients stream kInsert
// frames (net/protocol.hpp) into hier::ParallelStream lanes and issue
// query RPCs answered from hier::MemoryGovernor snapshot epochs —
// ingest never pauses for analysis, the paper's operating point.
//
// Architecture — one event-loop thread, nonblocking everything:
//
//   * Accepted connections become Sessions. Each session owns a
//     store::RecordFrameDecoder (the WAL frame machinery is the wire
//     codec), an outbound byte buffer, and a home lane assigned
//     round-robin at accept; kInsert frames may override the lane per
//     batch (the low 48 tag bits).
//
//   * Back-pressure maps lane queues onto socket reads. Inserts go
//     through ParallelStream::try_submit — never the blocking submit().
//     When a session's target lane is full, the batch is PARKED, the
//     session's EPOLLIN interest is dropped, and the event loop simply
//     stops reading that connection: the kernel socket buffer fills,
//     TCP flow control pushes back to that client's send(), and every
//     other session keeps streaming. The park is retried each loop
//     pass; on success the decoder backlog resumes and EPOLLIN returns.
//
//   * Back-pressure also covers the reply direction: a session whose
//     outbound buffer exceeds max_outbound_bytes (a client pipelining
//     queries without reading replies) likewise loses EPOLLIN until the
//     backlog drains below half the cap — the server's memory stays
//     bounded per session in both directions.
//
//   * kFlush is the session barrier: acknowledged only when the session
//     has nothing parked and every lane it ever touched is idle
//     (lane_idle — queue empty, no batch mid-application), so a client
//     that flushes then queries observes its own writes. Pipelined
//     flushes are counted, and each one is acknowledged individually
//     when the barrier clears.
//
//   * Queries never block writers. kQuerySum / kQueryElements acquire a
//     governed snapshot (freeze waits at most one in-flight batch per
//     lane; workers keep folding throughout) and read through the
//     handle's pin — correct even if the governor evicts the epoch
//     mid-read. kQuerySummary / kQueryRefresh run the incremental
//     analytics engine (single-analyst discipline holds: only the event
//     loop calls refresh()).
//
//   * Malformed bytes (bad magic, checksum mismatch, oversized or
//     non-integral payloads, insert coordinates outside the matrix
//     dimensions) earn one kReplyError frame with a diagnostic, then an
//     orderly close — never an exception into the engine. A torn frame
//     at peer EOF is counted and dropped — exactly the WAL torn-tail
//     rule.
//
// stop() wakes the loop via eventfd, joins the thread, and closes all
// sockets; in-flight sessions see EOF. The stream/governor are the
// caller's — the server never starts or stops them.
#pragma once

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analytics/incremental.hpp"
#include "gbx/coo.hpp"
#include "gbx/reduce.hpp"
#include "gbx/thread_annotations.hpp"
#include "gbx/error.hpp"
#include "hier/memory_governor.hpp"
#include "hier/parallel_stream.hpp"
#include "hier/snapshot_source.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace net {

/// Monotone server counters (relaxed atomics; readable from any thread).
struct ServerStats {
  std::atomic<std::uint64_t> sessions_accepted{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> insert_frames{0};
  std::atomic<std::uint64_t> entries_ingested{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> parks{0};           ///< lane-full back-pressure events
  std::atomic<std::uint64_t> out_throttles{0};   ///< reply-backlog back-pressure events
  std::atomic<std::uint64_t> rejected_frames{0}; ///< corrupt/malformed/torn
};

/// Observer of every insert batch the server accepts, in acceptance
/// order — the primary half of WAL shipping (repl::PrimaryReplicator
/// implements it; the interface lives here so net never depends on
/// repl). Both methods run on the event-loop thread:
///   * on_batch() fires immediately after a lane accepts the batch, in
///     the single loop thread's total order — the sink's log order IS
///     the per-lane apply order, which is what makes a replica's replay
///     bit-exact.
///   * all_durable() gates the flush barrier: kFlush is only acked once
///     every batch the sink has seen is durably replicated, so an acked
///     batch can never be lost by a primary crash (acked ⊆ replicated).
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;
  virtual void on_batch(std::size_t lane, gbx::Tuples<double> batch) = 0;
  virtual bool all_durable() = 0;
};

class IngestServer {
 public:
  using Stream = hier::ParallelStream<double>;
  using Governor = hier::MemoryGovernor<Stream>;
  using Analytics = analytics::IncrementalEngine<Governor>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    int backlog = 64;
    /// Decoder cap: larger insert/query frames are rejected as corrupt.
    std::uint64_t max_frame_bytes = 64u << 20;
    /// Reply-backlog cap: once a session's unsent outbound bytes exceed
    /// this, the server stops reading that connection until the backlog
    /// drains below half the cap (see out_throttles). Bounds the memory
    /// a client can pin by pipelining queries without reading replies.
    std::size_t max_outbound_bytes = 4u << 20;
    /// Analytics knobs for the refresh/summary RPCs. Triangle counting
    /// and PageRank are opt-in: they are superlinear in the snapshot
    /// and would stall the event loop on big graphs.
    analytics::IncrementalOptions analytics = default_analytics();
    /// Optional replication sink (primary-side WAL shipping). When set,
    /// every accepted insert batch is handed to the sink in acceptance
    /// order and flush acks additionally wait for all_durable(). Must
    /// outlive the server.
    ReplicationSink* replication = nullptr;

    static analytics::IncrementalOptions default_analytics() {
      analytics::IncrementalOptions a;
      a.enable_pagerank = false;
      a.enable_triangles = false;
      return a;
    }
  };

  // No `opt = {}` default argument: GCC parses default arguments before
  // the nested class's member initializers, rejecting the braced init.
  IngestServer(Stream& stream, Governor& governor)
      : IngestServer(stream, governor, Options()) {}

  IngestServer(Stream& stream, Governor& governor, Options opt)
      : stream_(&stream),
        governor_(&governor),
        opt_(opt),
        analytics_(governor, opt.analytics),
        nrows_(stream.nrows()),
        ncols_(stream.ncols()) {}

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  ~IngestServer() {
    if (running_) stop();
  }

  /// Bind, listen, and spawn the event-loop thread. The stream must
  /// already be start()ed (inserts would otherwise bounce as kStopped).
  void start() {
    GBX_CHECK(!running_, "IngestServer already started");
    listen_ = Fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0));
    GBX_CHECK(listen_.valid(), "socket() failed");
    const int one = 1;
    ::setsockopt(listen_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    GBX_CHECK(::bind(listen_.get(), reinterpret_cast<::sockaddr*>(&addr),
                     sizeof addr) == 0,
              "bind() failed");
    GBX_CHECK(::listen(listen_.get(), opt_.backlog) == 0, "listen() failed");
    ::socklen_t len = sizeof addr;
    GBX_CHECK(::getsockname(listen_.get(),
                            reinterpret_cast<::sockaddr*>(&addr), &len) == 0,
              "getsockname() failed");
    port_ = ntohs(addr.sin_port);

    loop_ = std::make_unique<EventLoop>();
    wake_ = std::make_unique<WakeFd>();
    loop_->add(listen_.get(), EPOLLIN);
    loop_->add(wake_->get(), EPOLLIN);
    stop_.store(false, std::memory_order_relaxed);
    running_ = true;
    thread_ = std::thread([this] { run(); });
  }

  /// Wake the loop, join it, close every socket. In-flight sessions
  /// (parked batches, pending flushes) are dropped with an EOF — the
  /// clean-shutdown contract is "no hang, no crash, no partial frame
  /// applied", not "drain the world".
  void stop() {
    GBX_CHECK(running_, "IngestServer not started");
    stop_.store(true, std::memory_order_relaxed);
    wake_->wake();
    thread_.join();
    {
      // The loop thread is gone; join() hands its role to this thread
      // for the teardown.
      gbx::ScopedThreadRole role(loop_role_);
      sessions_.clear();
    }
    loop_.reset();
    wake_.reset();
    listen_.reset();
    running_ = false;
  }

  /// Bound port (valid after start()).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_; }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Session {
    explicit Session(Fd f, std::uint64_t cap, std::size_t home)
        : fd(std::move(f)), dec(cap), home_lane(home) {}

    Fd fd;
    store::RecordFrameDecoder dec;
    std::size_t home_lane;
    std::string out;            ///< outbound bytes
    std::size_t out_off = 0;    ///< sent prefix of `out`
    bool want_write = false;    ///< EPOLLOUT currently armed
    bool reading = true;        ///< EPOLLIN currently armed
    bool parked = false;        ///< insert waiting for lane space
    bool out_throttled = false; ///< reply backlog over cap; reads paused
    std::size_t parked_lane = 0;
    gbx::Tuples<double> parked_batch;
    std::vector<bool> used_lanes;  ///< lanes this session ever fed
    std::uint64_t pending_flushes = 0;  ///< kFlush frames awaiting their ack
    bool closing = false;       ///< destroy once out drains & flush done
    bool dead = false;          ///< destroy now (I/O error / EOF final)

    std::size_t out_pending() const { return out.size() - out_off; }
  };

  void run() {
    // The event-loop thread's entry point claims the role; every
    // loop-only method below REQUIRES it, so calling one from another
    // thread is a compile error under the thread-safety analysis.
    gbx::ScopedThreadRole role(loop_role_);
    while (!stop_.load(std::memory_order_relaxed)) {
      // Parked batches and pending flushes have no wake event of their
      // own (lanes drain on worker threads); poll them briskly.
      const bool busy = have_parked_ || have_flush_;
      for (const auto& ev : loop_->wait(busy ? 1 : 50)) {
        if (stop_.load(std::memory_order_relaxed)) break;
        if (ev.data.fd == wake_->get()) {
          wake_->clear();
        } else if (ev.data.fd == listen_.get()) {
          accept_all();
        } else {
          auto it = sessions_.find(ev.data.fd);
          if (it == sessions_.end()) continue;
          Session& s = *it->second;
          if (ev.events & EPOLLOUT) flush_out(s);
          if (ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP))
            if (!s.dead) read_session(s);
        }
      }
      progress_pass();
    }
  }

  void accept_all() GBX_REQUIRES(loop_role_) {
    for (;;) {
      Fd c(::accept4(listen_.get(), nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC));
      if (!c.valid()) return;  // EAGAIN or transient error: next wave
      const int one = 1;
      ::setsockopt(c.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const int fd = c.get();
      auto s = std::make_unique<Session>(
          std::move(c), opt_.max_frame_bytes,
          next_lane_++ % stream_->instances());
      s->used_lanes.assign(stream_->instances(), false);
      loop_->add(fd, EPOLLIN | EPOLLRDHUP);
      sessions_.emplace(fd, std::move(s));
      stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Pull bytes until EAGAIN / EOF / park / corruption, decoding as we
  /// go. Level-triggered epoll re-fires for anything left unread.
  void read_session(Session& s) GBX_REQUIRES(loop_role_) {
    char buf[1u << 16];
    while (s.reading && !s.closing && !s.dead) {
      const auto n = ::recv(s.fd.get(), buf, sizeof buf, 0);
      if (n > 0) {
        s.dec.feed(buf, static_cast<std::size_t>(n));
        if (!process_frames(s)) break;  // parked or closing
        continue;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        s.dead = true;
        break;
      }
      // EOF. A partial frame at EOF is the torn-tail case: count it,
      // drop it. Pending work (parked batch, flush barrier, queued
      // replies) still completes before the session is destroyed.
      if (s.dec.buffered() > 0 && !s.dec.corrupt())
        stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
      s.reading = false;
      s.closing = true;
      break;
    }
    update_interest(s);
  }

  /// Decode and dispatch every complete frame buffered on the session.
  /// Returns false when processing must pause (lane full -> parked, or
  /// the session started closing).
  bool process_frames(Session& s) GBX_REQUIRES(loop_role_) {
    store::LogRecord rec;
    for (;;) {
      switch (s.dec.next(rec)) {
        case store::RecordFrameDecoder::Status::kNeedMore:
          return true;
        case store::RecordFrameDecoder::Status::kCorrupt:
          stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
          reply_error(s, MsgType::kInsert, s.dec.error());
          s.reading = false;
          s.closing = true;
          return false;
        case store::RecordFrameDecoder::Status::kFrame:
          if (!handle_frame(s, rec)) return false;
          // Reply backlog over cap: stop decoding (and reading) until
          // the client drains it — progress_pass resumes the backlog.
          if (s.out_throttled) return false;
          break;
      }
    }
  }

  /// Dispatch one frame. Returns false to pause processing (parked /
  /// closing); the decoder keeps any backlog for later.
  bool handle_frame(Session& s, store::LogRecord& rec)
      GBX_REQUIRES(loop_role_) {
    const MsgType type = tag_type(rec.epoch);
    const std::uint64_t arg = tag_arg(rec.epoch);
    switch (type) {
      case MsgType::kInsert:
        return handle_insert(s, arg, rec);
      case MsgType::kFlush:
        // A counter, not a flag: pipelined flushes each get their own
        // ack (a client blocking per-flush would otherwise hang).
        ++s.pending_flushes;
        have_flush_ = true;
        check_flush(s);
        return !s.closing;
      case MsgType::kQuerySum: {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        // The unified snapshot-acquisition entry point (the governed
        // handle is "just another source" — hier/snapshot_source.hpp).
        auto handle = hier::acquire_snapshot(*governor_);
        auto img = handle.pin();
        SumReply r;
        r.sum = img.reduce();
        r.epoch = handle.epoch();
        r.nvals = img.nvals();
        if (arg & kWantProvenance)
          reply_ok_prov(s, type, &r, sizeof r, part_epochs(img),
                        handle.epoch());
        else
          reply_ok(s, type, &r, sizeof r);
        return !s.closing;
      }
      case MsgType::kQueryElements: {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        std::vector<ElementQuery> qs;
        if (!payload_as(rec.payload, qs)) {
          stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
          reply_error(s, type, "element query payload is not a whole number "
                               "of {row, col} probes");
          s.reading = false;
          s.closing = true;
          return false;
        }
        auto handle = hier::acquire_snapshot(*governor_);
        auto img = handle.pin();  // one pin, batched probes
        std::vector<ElementReply> rs(qs.size());
        for (std::size_t i = 0; i < qs.size(); ++i) {
          if (auto v = img.extract_element(qs[i].row, qs[i].col)) {
            rs[i].present = 1;
            rs[i].value = *v;
          }
        }
        if (arg & kWantProvenance)
          reply_ok_prov(s, type, rs.data(), rs.size() * sizeof(ElementReply),
                        part_epochs(img), handle.epoch());
        else
          reply_ok(s, type, rs.data(), rs.size() * sizeof(ElementReply));
        return !s.closing;
      }
      case MsgType::kQueryColumns: {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        // Sorted distinct columns of Σ Ai: the destination set. Heavy
        // (materializes the snapshot) — exists so a router can stitch
        // exact destination counts across row-disjoint workers.
        auto handle = hier::acquire_snapshot(*governor_);
        auto img = handle.pin();
        const auto m = img.to_matrix();
        const auto colv = gbx::reduce_cols<gbx::PlusMonoid<double>>(m.view());
        const auto idx = colv.indices();
        static_assert(sizeof(gbx::Index) == sizeof(std::uint64_t));
        if (arg & kWantProvenance)
          reply_ok_prov(s, type, idx.data(),
                        idx.size() * sizeof(std::uint64_t), part_epochs(img),
                        handle.epoch());
        else
          reply_ok(s, type, idx.data(), idx.size() * sizeof(std::uint64_t));
        return !s.closing;
      }
      case MsgType::kQueryMap: {
        // Standalone server: version 0 (placement never changes),
        // parts = lane count.
        MapReply r;
        r.version = 0;
        r.parts = stream_->instances();
        r.nrows = nrows_;
        r.ncols = ncols_;
        reply_ok(s, type, &r, sizeof r);
        return !s.closing;
      }
      case MsgType::kQuerySummary: {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        analytics_.refresh();
        const auto& sum = analytics_.summary();
        SummaryReply r;
        r.epoch = analytics_.last_report().epoch;
        r.links = sum.links;
        r.packets = sum.packets;
        r.sources = sum.sources;
        r.destinations = sum.destinations;
        r.max_link = sum.max_link;
        r.mean_link = sum.mean_link;
        if (arg & kWantProvenance)
          // The analytics engine answers from its own maintained image;
          // no per-part vector to report, just the epoch it describes.
          reply_ok_prov(s, type, &r, sizeof r, {}, r.epoch);
        else
          reply_ok(s, type, &r, sizeof r);
        return !s.closing;
      }
      case MsgType::kQueryRefresh: {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        const auto& rep = analytics_.refresh();
        RefreshReply r;
        r.epoch = rep.epoch;
        r.full_recompute = rep.full_recompute ? 1 : 0;
        r.added = rep.added;
        r.changed = rep.changed;
        r.triangles = analytics_.triangles();
        r.sum = gbx::reduce_scalar<gbx::PlusMonoid<double>>(analytics_.sum());
        if (arg & kWantProvenance)
          reply_ok_prov(s, type, &r, sizeof r, {}, r.epoch);
        else
          reply_ok(s, type, &r, sizeof r);
        return !s.closing;
      }
      case MsgType::kBye:
        reply_ok(s, type, "", 0);
        s.reading = false;
        s.closing = true;
        return false;
      default:
        stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        reply_error(s, type, "unknown message type");
        s.reading = false;
        s.closing = true;
        return false;
    }
  }

  bool handle_insert(Session& s, std::uint64_t arg, store::LogRecord& rec)
      GBX_REQUIRES(loop_role_) {
    std::size_t lane = s.home_lane;
    if (arg != kAnyLane) {
      if (arg >= stream_->instances()) {
        stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        reply_error(s, MsgType::kInsert, "insert lane out of range");
        s.reading = false;
        s.closing = true;
        return false;
      }
      lane = static_cast<std::size_t>(arg);
    }
    std::vector<gbx::Entry<double>> entries;
    if (!payload_as(rec.payload, entries)) {
      stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
      reply_error(s, MsgType::kInsert,
                  "insert payload is not a whole number of entries");
      s.reading = false;
      s.closing = true;
      return false;
    }
    // Validate coordinates BEFORE the batch reaches a lane: a bad
    // coordinate must be a rejected frame on this session, never an
    // exception inside a lane worker thread.
    for (const auto& e : entries) {
      if (e.row >= nrows_ || e.col >= ncols_) {
        stats_.rejected_frames.fetch_add(1, std::memory_order_relaxed);
        reply_error(s, MsgType::kInsert,
                    "insert coordinate out of range: (" +
                        std::to_string(e.row) + ", " + std::to_string(e.col) +
                        ") vs " + std::to_string(nrows_) + " x " +
                        std::to_string(ncols_));
        s.reading = false;
        s.closing = true;
        return false;
      }
    }
    gbx::Tuples<double> batch;
    batch.entries() = std::move(entries);
    return submit_or_park(s, lane, batch);
  }

  /// try_submit with park-on-full: the back-pressure pivot.
  bool submit_or_park(Session& s, std::size_t lane,
                      gbx::Tuples<double>& batch) GBX_REQUIRES(loop_role_) {
    const std::size_t n = batch.size();
    // try_submit consumes the batch on acceptance, but the replication
    // sink must only see batches that were actually accepted (a parked
    // batch dropped by a dying session must never reach the replica) —
    // so copy first, hand over after. The copy is only paid when
    // replication is on; the no-replication path is untouched.
    gbx::Tuples<double> shipped;
    if (opt_.replication != nullptr) shipped = batch;
    switch (stream_->try_submit(lane, batch)) {
      case hier::SubmitResult::kAccepted:
        if (opt_.replication != nullptr)
          opt_.replication->on_batch(lane, std::move(shipped));
        s.used_lanes[lane] = true;
        stats_.insert_frames.fetch_add(1, std::memory_order_relaxed);
        stats_.entries_ingested.fetch_add(n, std::memory_order_relaxed);
        return true;
      case hier::SubmitResult::kLaneFull:
        s.parked = true;
        s.parked_lane = lane;
        s.parked_batch = std::move(batch);
        s.reading = false;  // stop reading THIS connection only
        have_parked_ = true;
        stats_.parks.fetch_add(1, std::memory_order_relaxed);
        return false;
      case hier::SubmitResult::kStopped:
        reply_error(s, MsgType::kInsert, "ingest engine is stopped");
        s.reading = false;
        s.closing = true;
        return false;
    }
    return false;  // unreachable
  }

  /// Per-pass housekeeping: retry parks, settle flush barriers, reap
  /// finished sessions.
  void progress_pass() GBX_REQUIRES(loop_role_) {
    have_parked_ = false;
    have_flush_ = false;
    std::vector<int> reap;
    for (auto& [fd, sp] : sessions_) {
      Session& s = *sp;
      if (s.parked && !s.dead) {
        const std::size_t n = s.parked_batch.size();
        gbx::Tuples<double> shipped;  // see submit_or_park
        if (opt_.replication != nullptr) shipped = s.parked_batch;
        switch (stream_->try_submit(s.parked_lane, s.parked_batch)) {
          case hier::SubmitResult::kAccepted:
            if (opt_.replication != nullptr)
              opt_.replication->on_batch(s.parked_lane, std::move(shipped));
            s.used_lanes[s.parked_lane] = true;
            stats_.insert_frames.fetch_add(1, std::memory_order_relaxed);
            stats_.entries_ingested.fetch_add(n, std::memory_order_relaxed);
            s.parked_batch.clear();
            s.parked = false;
            s.reading = !s.closing && !s.out_throttled;
            // Drain the decoder backlog accumulated before the park; a
            // second park here just re-enters the same state.
            if (process_frames(s) && s.reading) read_session(s);
            update_interest(s);
            break;
          case hier::SubmitResult::kLaneFull:
            break;  // stay parked, retry next pass
          case hier::SubmitResult::kStopped:
            s.parked = false;
            s.closing = true;
            break;
        }
      }
      // Reply-backlog throttle release: EPOLLOUT drains `out` on its
      // own wake-ups; once below half the cap, resume reading and work
      // through any frames decoded before the pause.
      if (s.out_throttled && !s.dead &&
          s.out_pending() <= opt_.max_outbound_bytes / 2) {
        s.out_throttled = false;
        if (!s.parked) {
          s.reading = !s.closing;
          if (process_frames(s) && s.reading) read_session(s);
        }
        update_interest(s);
      }
      if (s.pending_flushes > 0 && !s.dead) check_flush(s);
      have_parked_ |= s.parked;
      have_flush_ |= s.pending_flushes > 0;
      if (s.dead ||
          (s.closing && !s.parked && s.pending_flushes == 0 &&
           s.out_off >= s.out.size()))
        reap.push_back(fd);
    }
    for (int fd : reap) destroy(fd);
  }

  /// Flush barrier: everything this session submitted has been applied.
  /// Every flush received before the barrier cleared gets its own ack.
  void check_flush(Session& s) GBX_REQUIRES(loop_role_) {
    if (s.parked) return;
    for (std::size_t p = 0; p < s.used_lanes.size(); ++p)
      if (s.used_lanes[p] && !stream_->lane_idle(p)) return;
    // Replication barrier (conservative, global): a flush ack promises
    // the batches survive a primary crash, so it must also wait for the
    // replica's cumulative durable ack to catch up with everything
    // shipped. The loop polls at 1ms while flushes are pending.
    if (opt_.replication != nullptr && s.pending_flushes > 0 &&
        !opt_.replication->all_durable())
      return;
    while (s.pending_flushes > 0) {
      --s.pending_flushes;
      reply_ok(s, MsgType::kFlush, "", 0);
    }
  }

  void reply_ok(Session& s, MsgType request, const void* payload,
                std::size_t size) GBX_REQUIRES(loop_role_) {
    append_frame(s.out, MsgType::kReplyOk,
                 static_cast<std::uint64_t>(request), payload, size);
    flush_out(s);
    throttle_if_backlogged(s);
  }

  /// Revision-2 reply: body + provenance trailer, with kWantProvenance
  /// echoed in the arg so the client knows to split the trailer.
  void reply_ok_prov(Session& s, MsgType request, const void* payload,
                     std::size_t size,
                     const std::vector<std::uint64_t>& epochs,
                     std::uint64_t snapshot_epoch) GBX_REQUIRES(loop_role_) {
    std::string body(size > 0 ? static_cast<const char*>(payload) : "", size);
    append_provenance(body, epochs, snapshot_epoch, /*map_version=*/0);
    append_frame(s.out, MsgType::kReplyOk,
                 static_cast<std::uint64_t>(request) | kWantProvenance,
                 body.data(), body.size());
    flush_out(s);
    throttle_if_backlogged(s);
  }

  /// Per-lane epoch vector of a pinned stream snapshot (provenance).
  template <class Img>
  static std::vector<std::uint64_t> part_epochs(const Img& img) {
    std::vector<std::uint64_t> es(img.size());
    for (std::size_t p = 0; p < es.size(); ++p) es[p] = img.part(p).epoch();
    return es;
  }

  void reply_error(Session& s, MsgType request, const std::string& what)
      GBX_REQUIRES(loop_role_) {
    append_frame(s.out, MsgType::kReplyError,
                 static_cast<std::uint64_t>(request), what.data(),
                 what.size());
    flush_out(s);
    throttle_if_backlogged(s);
  }

  /// Write-side back-pressure: a client that pipelines requests without
  /// reading replies stops being read once its unsent backlog passes the
  /// cap, so `out` can never grow without bound. progress_pass resumes
  /// the session when the backlog halves.
  void throttle_if_backlogged(Session& s) GBX_REQUIRES(loop_role_) {
    if (s.dead || s.out_throttled ||
        s.out_pending() <= opt_.max_outbound_bytes)
      return;
    s.out_throttled = true;
    s.reading = false;
    stats_.out_throttles.fetch_add(1, std::memory_order_relaxed);
    update_interest(s);
  }

  /// Opportunistic nonblocking send; arms EPOLLOUT only on partials.
  void flush_out(Session& s) GBX_REQUIRES(loop_role_) {
    while (s.out_off < s.out.size()) {
      const auto n = ::send(s.fd.get(), s.out.data() + s.out_off,
                            s.out.size() - s.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        s.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      s.dead = true;  // peer reset mid-reply
      return;
    }
    if (s.out_off >= s.out.size()) {
      s.out.clear();
      s.out_off = 0;
    }
    update_interest(s);
  }

  void update_interest(Session& s) GBX_REQUIRES(loop_role_) {
    if (s.dead) return;
    const bool want_write = s.out_off < s.out.size();
    std::uint32_t ev = EPOLLRDHUP;
    if (s.reading && !s.closing) ev |= EPOLLIN;
    if (want_write) ev |= EPOLLOUT;
    loop_->mod(s.fd.get(), ev);
    s.want_write = want_write;
  }

  void destroy(int fd) GBX_REQUIRES(loop_role_) {
    auto it = sessions_.find(fd);
    if (it == sessions_.end()) return;
    loop_->del(fd);
    sessions_.erase(it);
    stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }

  Stream* stream_;
  Governor* governor_;
  Options opt_;
  /// Single-thread discipline of the event loop, checked at compile
  /// time: run() claims the role, loop-only methods REQUIRE it, and the
  /// members below marked GBX_GUARDED_BY(loop_role_) are loop-thread
  /// state (stop() re-claims the role after join() for the teardown).
  gbx::ThreadRole loop_role_;
  Analytics analytics_ GBX_GUARDED_BY(loop_role_);
  gbx::Index nrows_;  ///< matrix dims, cached for insert validation
  gbx::Index ncols_;
  ServerStats stats_;

  Fd listen_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<WakeFd> wake_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::uint16_t port_ = 0;
  std::size_t next_lane_ GBX_GUARDED_BY(loop_role_) = 0;  ///< round-robin
  bool have_parked_ GBX_GUARDED_BY(loop_role_) = false;  ///< poll-timeout
  bool have_flush_ GBX_GUARDED_BY(loop_role_) = false;   ///< hints
  std::unordered_map<int, std::unique_ptr<Session>> sessions_
      GBX_GUARDED_BY(loop_role_);
};

}  // namespace net

#endif  // __linux__
