// net/event_loop.hpp — minimal epoll + eventfd wrappers (Linux only).
//
// Thin RAII shims over the three kernel objects the ingest server
// needs: an epoll instance, an eventfd wake channel (so stop() can
// interrupt a blocked epoll_wait from another thread), and owned file
// descriptors. No callback registry, no timer wheel — the server's
// event loop is a plain readable function, and these classes only keep
// the fd bookkeeping honest.
#pragma once

#ifdef __linux__

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <utility>
#include <vector>

#include "gbx/error.hpp"

namespace net {

/// Owned file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// epoll instance keyed by raw fd (the server maps fd -> session).
class EventLoop {
 public:
  EventLoop() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {
    GBX_CHECK(ep_.valid(), "epoll_create1 failed");
  }

  void add(int fd, std::uint32_t events) { ctl(EPOLL_CTL_ADD, fd, events); }
  void mod(int fd, std::uint32_t events) { ctl(EPOLL_CTL_MOD, fd, events); }
  void del(int fd) {
    ::epoll_event ev{};
    ::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, &ev);  // best-effort
  }

  /// Wait up to `timeout_ms` (-1 = forever); returns the ready events.
  /// EINTR is retried as a zero-event wake, never surfaced.
  const std::vector<::epoll_event>& wait(int timeout_ms) {
    events_.resize(64);
    const int n =
        ::epoll_wait(ep_.get(), events_.data(),
                     static_cast<int>(events_.size()), timeout_ms);
    events_.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
    GBX_CHECK(n >= 0 || errno == EINTR, "epoll_wait failed");
    return events_;
  }

 private:
  void ctl(int op, int fd, std::uint32_t events) {
    ::epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    GBX_CHECK(::epoll_ctl(ep_.get(), op, fd, &ev) == 0, "epoll_ctl failed");
  }

  Fd ep_;
  std::vector<::epoll_event> events_;
};

/// Cross-thread wake channel: write() from any thread makes the fd
/// readable, unblocking an epoll_wait that watches it.
class WakeFd {
 public:
  WakeFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
    GBX_CHECK(fd_.valid(), "eventfd failed");
  }

  int get() const { return fd_.get(); }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] auto n = ::write(fd_.get(), &one, sizeof one);
  }

  /// Drain pending wakes so the fd stops polling readable.
  void clear() {
    std::uint64_t n = 0;
    [[maybe_unused]] auto r = ::read(fd_.get(), &n, sizeof n);
  }

 private:
  Fd fd_;
};

}  // namespace net

#endif  // __linux__
