// repl/wal_shipper.hpp — the primary half of WAL shipping.
//
// PrimaryReplicator implements net::ReplicationSink: the ingest
// server's event loop hands it every ACCEPTED insert batch in
// acceptance order, and it (a) appends the batch to a replication WAL
// on disk (record epoch = sequence number 1, 2, 3, ...; payload =
// repl::encode_batch_payload) and (b) lets a background shipper thread
// tail that WAL and stream the records to a repl::ReplicaServer.
//
// Durability contract (what all_durable() means): a batch is durable
// once the replica's cumulative kShipAck covers its sequence number —
// the replica has persisted AND applied it. The ingest server holds
// flush acks until all_durable(), so a client that got its flush ack
// can lose the primary wholesale and find every acked batch on the
// promoted replica: acked ⊆ replicated, never lost. The converse
// (replicated but never acked) is legal and harmless — failover
// clients resume from the replica's applied watermark, so nothing is
// double-applied either.
//
// The shipper thread is crash-shaped on purpose: kill() abandons the
// socket mid-frame without draining anything — the torture suite uses
// it to die at arbitrary points — while stop() is the orderly exit.
// Reconnection re-handshakes (kShipHello), learns the replica's
// next-expected sequence, and re-tails the WAL from there; a fenced
// hello (the replica promoted meanwhile) permanently retires the
// shipper, because a promoted replica must never accept frames from a
// deposed primary.
//
// Threading: on_batch()/all_durable() run on the ingest event-loop
// thread, and on_batch() only seq-stamps the batch and enqueues it —
// encoding, the WAL append, and the flush all happen on a dedicated
// logger thread so replication never serializes the accept path (the
// queue is bounded; a full queue blocks on_batch, which is the
// back-pressure). ship() runs on the shipper thread and tails the WAL
// file, so it only ever sees flushed frames; logged_/acked_ carry the
// watermark arithmetic (logged_ counts ENQUEUED batches — a flush ack
// still waits for the replica's ack to cover them, so the durability
// contract is unchanged). A torn tail the tailer catches mid-append
// reads as "caught up"; retry next poll. stop() drains the queue;
// kill() abandons it (crash-shaped: unlogged batches were never acked,
// so losing them is legal).
#pragma once

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/failpoint.hpp"
#include "gbx/thread_annotations.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "repl/protocol.hpp"
#include "store/wal.hpp"

namespace repl {

struct ShipperOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Replication WAL path (created/truncated by the replicator).
  std::string wal_path;
  /// Max unacked frames in flight before the shipper waits for acks.
  std::uint64_t window = 64;
  int heartbeat_ms = 20;
  int reconnect_backoff_ms = 10;
  int max_backoff_ms = 500;
  std::uint64_t max_frame_bytes = 64u << 20;
  std::uint64_t generation = 1;
  /// Max batches queued for the logger thread before on_batch blocks
  /// the accept path (the replication back-pressure bound).
  std::size_t log_queue_capacity = 256;
};

class PrimaryReplicator final : public net::ReplicationSink {
 public:
  PrimaryReplicator(const net::IngestServer::Stream& stream,
                    ShipperOptions opt)
      : opt_(std::move(opt)),
        lanes_(stream.instances()),
        nrows_(stream.nrows()),
        ncols_(stream.ncols()),
        wal_out_(opt_.wal_path,
                 std::ios::binary | std::ios::out | std::ios::trunc),
        writer_(wal_out_) {
    GBX_CHECK(wal_out_.good(),
              "replicator: cannot open replication WAL " + opt_.wal_path);
  }

  ~PrimaryReplicator() override {
    if (running_) stop();
  }

  void start() {
    GBX_CHECK(!running_, "replicator already started");
    stop_.store(false, std::memory_order_relaxed);
    abandon_.store(false, std::memory_order_relaxed);
    running_ = true;
    logger_ = std::thread([this] { log_loop(); });
    thread_ = std::thread([this] { ship(); });
  }

  /// Orderly exit: drain the logger queue to the WAL, close the socket
  /// politely, and join. Already-shipped unacked frames are re-sent on
  /// the next incarnation's handshake — resume is idempotent by
  /// sequence.
  void stop() {
    GBX_CHECK(running_, "replicator not started");
    stop_.store(true, std::memory_order_relaxed);
    wake_logger();
    poke_socket();
    logger_.join();
    thread_.join();
    running_ = false;
  }

  /// Crash: abandon the socket mid-whatever AND the logger queue
  /// mid-drain. The replica learns of the death from silence (lease
  /// lapse), exactly as from SIGKILL; queued-but-unlogged batches were
  /// never acked, so dropping them is the legal crash shape.
  void kill() {
    if (!running_) return;
    abandon_.store(true, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_relaxed);
    wake_logger();
    poke_socket();
    logger_.join();
    thread_.join();
    running_ = false;
  }

  // --- net::ReplicationSink (ingest event-loop thread) ---------------------
  /// Seq-stamp and enqueue; the logger thread does the expensive part
  /// (encode + WAL append + flush) off the accept path. Blocks only
  /// when the queue is full — that stall IS the replication
  /// back-pressure reaching the ingest front end.
  void on_batch(std::size_t lane, gbx::Tuples<double> batch) override {
    gbx::ScopedLock lk(log_mu_);
    const std::uint64_t seq = logged_.load(std::memory_order_relaxed) + 1;
    GBX_CHECK(seq < (std::uint64_t{1} << 48),
              "replicator: sequence space exhausted");
    while (log_q_.size() >= opt_.log_queue_capacity && !stopping())
      log_space_.wait(log_mu_);
    if (stopping()) return;  // dying: the batch was never acked — droppable
    log_q_.push_back(Pending{seq, lane, std::move(batch)});
    logged_.store(seq, std::memory_order_release);
    log_cv_.notify_one();
  }

  bool all_durable() override {
    return acked_.load(std::memory_order_acquire) >=
           logged_.load(std::memory_order_acquire);
  }

  // --- watermarks ----------------------------------------------------------
  std::uint64_t logged() const {
    return logged_.load(std::memory_order_acquire);
  }
  std::uint64_t acked() const { return acked_.load(std::memory_order_acquire); }
  /// True once a hello was rejected: the replica promoted and this
  /// primary is deposed. The shipper thread has retired.
  bool fenced() const { return fenced_.load(std::memory_order_acquire); }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::size_t lane = 0;
    gbx::Tuples<double> batch;
  };

  void wake_logger() {
    gbx::ScopedLock lk(log_mu_);
    log_cv_.notify_all();
    log_space_.notify_all();
  }

  /// Logger thread: drain the queue into the replication WAL. The
  /// flush after every record is what publishes the frame to the
  /// tailing shipper thread (it never reads past the flushed tail).
  void log_loop() {
    for (;;) {
      Pending p;
      {
        gbx::ScopedLock lk(log_mu_);
        while (log_q_.empty() && !stopping()) log_cv_.wait(log_mu_);
        if (abandon_.load(std::memory_order_relaxed)) return;
        if (log_q_.empty()) return;  // stopping and fully drained
        p = std::move(log_q_.front());
        log_q_.pop_front();
        log_space_.notify_one();
      }
      const std::string payload = encode_batch_payload(p.lane, p.batch);
      writer_.append(p.seq, payload.data(), payload.size());
      wal_out_.flush();
      GBX_CHECK(wal_out_.good(), "replicator: replication WAL write failed");
    }
  }

  // Interrupt a blocked poll/recv on the shipper thread.
  void poke_socket() {
    gbx::ScopedLock lk(fd_mu_);
    if (ship_fd_ >= 0) ::shutdown(ship_fd_, SHUT_RDWR);
  }

  void set_ship_fd(int fd) {
    gbx::ScopedLock lk(fd_mu_);
    ship_fd_ = fd;
  }

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  void ship() {
    int backoff = opt_.reconnect_backoff_ms;
    while (!stopping() && !fenced_.load(std::memory_order_relaxed)) {
      net::Fd fd = dial();
      if (!fd.valid()) {
        sleep_backoff(backoff);
        continue;
      }
      set_ship_fd(fd.get());
      try {
        run_session(fd);
        backoff = opt_.reconnect_backoff_ms;  // made progress; reset
      } catch (const gbx::Error&) {
        // Socket died (peer reset, torn reply, injected EPIPE): fall
        // through to reconnect. The WAL has everything; the next
        // handshake resumes precisely.
      }
      set_ship_fd(-1);
      if (!stopping() && !fenced_.load(std::memory_order_relaxed))
        sleep_backoff(backoff);
    }
  }

  net::Fd dial() {
    net::Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) return {};
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1)
      return {};
    if (::connect(fd.get(), reinterpret_cast<::sockaddr*>(&addr),
                  sizeof addr) != 0)
      return {};
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
  }

  void sleep_backoff(int& backoff) {
    // Sliced sleep so stop()/kill() never waits a whole backoff.
    for (int slept = 0; slept < backoff && !stopping(); slept += 5)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    backoff = std::min(backoff * 2, opt_.max_backoff_ms);
  }

  /// One connected incarnation: handshake, then tail-and-stream until
  /// the socket dies or we are stopped. Throws gbx::Error on any I/O
  /// trouble (caller reconnects).
  void run_session(net::Fd& fd) {
    store::RecordFrameDecoder dec(opt_.max_frame_bytes);

    // Handshake: who we are, where to resume.
    ShipHello hello;
    hello.lanes = lanes_;
    hello.nrows = nrows_;
    hello.ncols = ncols_;
    hello.generation = opt_.generation;
    std::string out;
    net::append_frame(out, net::MsgType::kShipHello, 0, &hello, sizeof hello);
    send_all(fd, out.data(), out.size());
    store::LogRecord rec = read_frame(fd, dec, /*timeout_ms=*/-1);
    if (net::tag_type(rec.epoch) == net::MsgType::kReplyError) {
      fenced_.store(true, std::memory_order_release);
      return;  // deposed: retire quietly, never reconnect
    }
    GBX_CHECK(net::tag_type(rec.epoch) == net::MsgType::kReplyOk &&
                  net::tag_arg(rec.epoch) ==
                      static_cast<std::uint64_t>(net::MsgType::kShipHello),
              "shipper: unexpected handshake reply");
    ShipHelloReply hr;
    GBX_CHECK(net::payload_as(rec.payload, hr),
              "shipper: malformed handshake reply");
    const std::uint64_t next = hr.next_seq;
    // Everything below next is durably applied over there already.
    if (next > 0 && next - 1 > acked_.load(std::memory_order_relaxed))
      acked_.store(next - 1, std::memory_order_release);

    // Tail the WAL from the top, skipping already-applied records.
    std::ifstream wal_in(opt_.wal_path, std::ios::binary | std::ios::in);
    GBX_CHECK(wal_in.good(), "shipper: cannot re-open replication WAL");
    store::RecordLogTailer tailer(wal_in, opt_.max_frame_bytes);

    std::uint64_t last_sent = next - 1;
    auto last_beat = std::chrono::steady_clock::now();
    while (!stopping()) {
      drain_acks(fd, dec);

      const std::uint64_t inflight =
          last_sent - acked_.load(std::memory_order_relaxed);
      bool sent = false;
      if (inflight < opt_.window) {
        if (auto wrec = tailer.next()) {
          if (wrec->epoch >= next && wrec->epoch > last_sent) {
            out.clear();
            net::append_frame(out, net::MsgType::kShipBatch, wrec->epoch,
                              wrec->payload.data(), wrec->payload.size());
            send_all(fd, out.data(), out.size());
            last_sent = wrec->epoch;
          }
          sent = true;  // made WAL progress even when skipping
        }
      }

      const auto now = std::chrono::steady_clock::now();
      if (now - last_beat >=
          std::chrono::milliseconds(opt_.heartbeat_ms)) {
        bool beat = true;
        if (gbx::failpoints().armed()) {
          if (auto fp = gbx::failpoints().hit("repl.shipper.heartbeat")) {
            if (fp->action == gbx::FailAction::kStall) {
              // Simulated partition: go silent (no heartbeats, no
              // batches) long enough for the replica's lease to lapse.
              for (int ms = 0; ms < fp->delay_ms && !stopping(); ms += 5)
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
              beat = false;
            }
          }
        }
        if (beat) {
          out.clear();
          net::append_frame(out, net::MsgType::kHeartbeat);
          send_all(fd, out.data(), out.size());
        }
        last_beat = std::chrono::steady_clock::now();
      }

      if (!sent) {
        // Caught up (or window full): sleep on the socket for acks.
        ::pollfd pfd{fd.get(), POLLIN, 0};
        (void)::poll(&pfd, 1, 1);
      }
    }
  }

  /// Nonblockingly absorb every pending kShipAck.
  void drain_acks(net::Fd& fd, store::RecordFrameDecoder& dec) {
    for (;;) {
      store::LogRecord rec;
      switch (dec.next(rec)) {
        case store::RecordFrameDecoder::Status::kFrame: {
          GBX_CHECK(net::tag_type(rec.epoch) == net::MsgType::kShipAck,
                    "shipper: unexpected frame from replica");
          const std::uint64_t a = net::tag_arg(rec.epoch);
          if (a > acked_.load(std::memory_order_relaxed))
            acked_.store(a, std::memory_order_release);
          continue;
        }
        case store::RecordFrameDecoder::Status::kCorrupt:
          GBX_CHECK(false, "shipper: corrupt ack stream: " + dec.error());
          continue;
        case store::RecordFrameDecoder::Status::kNeedMore:
          break;
      }
      ::pollfd pfd{fd.get(), POLLIN, 0};
      int r = ::poll(&pfd, 1, 0);
      if (r <= 0) return;  // nothing readable right now
      char buf[1u << 16];
      const auto n = ::recv(fd.get(), buf, sizeof buf, MSG_DONTWAIT);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      GBX_CHECK(n > 0, "shipper: replica closed the connection");
      dec.feed(buf, static_cast<std::size_t>(n));
    }
  }

  store::LogRecord read_frame(net::Fd& fd, store::RecordFrameDecoder& dec,
                              int timeout_ms) {
    store::LogRecord rec;
    for (;;) {
      switch (dec.next(rec)) {
        case store::RecordFrameDecoder::Status::kFrame:
          return rec;
        case store::RecordFrameDecoder::Status::kCorrupt:
          GBX_CHECK(false, "shipper: " + dec.error());
          break;
        case store::RecordFrameDecoder::Status::kNeedMore:
          break;
      }
      ::pollfd pfd{fd.get(), POLLIN, 0};
      int r;
      do {
        r = ::poll(&pfd, 1, timeout_ms);
      } while (r < 0 && errno == EINTR);
      GBX_CHECK(r > 0, "shipper: timed out waiting for replica");
      char buf[1u << 16];
      const auto n = ::recv(fd.get(), buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      GBX_CHECK(n > 0, "shipper: replica closed the connection");
      dec.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void send_all(net::Fd& fd, const char* p, std::size_t n) {
    while (n > 0) {
      const auto w = ::send(fd.get(), p, n, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      GBX_CHECK(w > 0, "shipper: connection lost during send");
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  }

  ShipperOptions opt_;
  std::uint64_t lanes_, nrows_, ncols_;

  std::ofstream wal_out_;
  store::RecordLogWriter writer_;  // logger thread only

  /// logged_ counts batches ENQUEUED for logging (seq-stamped in
  /// acceptance order); acked_ trails it through logger → shipper →
  /// replica → ack, and all_durable() is their meeting point.
  std::atomic<std::uint64_t> logged_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<bool> fenced_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> abandon_{false};

  gbx::Mutex log_mu_;
  gbx::CondVar log_cv_;     ///< queue gained work (or we are stopping)
  gbx::CondVar log_space_;  ///< queue shrank below capacity
  std::deque<Pending> log_q_ GBX_GUARDED_BY(log_mu_);

  gbx::Mutex fd_mu_;
  int ship_fd_ GBX_GUARDED_BY(fd_mu_) = -1;

  std::thread thread_;
  std::thread logger_;
  bool running_ = false;
};

}  // namespace repl

#endif  // __linux__
