// repl/replica.hpp — the replica half of WAL shipping: validate,
// persist, apply, ack; self-promote when the primary's lease lapses.
//
// A ReplicaServer owns a full hier::InstanceArray<double> shaped like
// the primary's (same lanes, dimensions, cut schedule) behind a
// hier::ParallelStream: the event-loop thread validates, persists, and
// sequences every shipped batch, then SUBMITS it to the stream's lane
// workers instead of applying inline — the loop thread stays on the
// socket while lanes apply in parallel, which is what keeps a
// replicated primary within a few percent of unreplicated ingest:
//
//   kShipHello   validate topology; if promoted, fence the caller with
//                kReplyError (a deposed primary must never write);
//                else reply ShipHelloReply{next_seq} so the shipper
//                resumes exactly where the replica's durable state ends
//   kShipBatch   admit via hier::ReplayCursor (gapped / overlapping /
//                torn suffixes are rejected LOUDLY — the connection is
//                errored and closed, never partially applied), append
//                the record to the replica's own WAL, submit to the
//                lane. Acks are batched: after each socket read pass
//                drains, the WAL is flushed ONCE and ONE cumulative
//                kShipAck covers everything the pass admitted.
//                Persist-before-ack is the durability edge
//                all_durable() leans on — an acked batch is in the
//                flushed WAL, so it survives a replica crash-restart
//                via cold replay even if a lane had not applied it yet.
//   kHeartbeat   refresh the primary's lease
//
// Queries and flush barriers drain the stream first (the loop thread is
// the only submitter, so drain() terminates), which preserves the
// applied-barrier semantics the failover exactness probes rely on; the
// per-lane batch counts served by kQueryLaneEpochs are submit-time
// counts, which are correct resume indices because every submitted
// batch is applied before any drain-gated read can observe the lane.
//
// Promotion: when no shipper traffic (hello/batch/heartbeat) arrives
// for lease_ms after a primary was first seen, the replica promotes
// itself: it starts accepting the client-facing subset of the ingest
// protocol (kInsert / kFlush / queries) and fences every later hello.
// Failover clients find their resume point via kQueryLaneEpochs, whose
// reply is [promoted u64][applied_seq u64][per-lane applied batch
// counts u64 × lanes] — counts include both shipped and post-promotion
// batches, so a per-lane-exclusive writer resumes without double-
// applying or dropping anything.
//
// Cold start: an existing WAL at wal_path is replayed through the same
// ReplayCursor before the socket opens (crash-restart of the replica
// itself), then appended to.
#pragma once

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/failpoint.hpp"
#include "gbx/reduce.hpp"
#include "gbx/thread_annotations.hpp"
#include "hier/checkpoint.hpp"
#include "hier/instance_array.hpp"
#include "hier/parallel_stream.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "repl/protocol.hpp"
#include "store/wal.hpp"

namespace repl {

struct ReplicaOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  int backlog = 16;
  /// Primary lease: promote after this much shipper silence (only once
  /// a primary has been seen at all).
  int lease_ms = 200;
  /// The replica's own WAL (replayed on cold start, appended to).
  std::string wal_path;
  /// Topology — must match the primary's hello.
  std::size_t lanes = 1;
  std::uint64_t nrows = 0;
  std::uint64_t ncols = 0;
  hier::CutPolicy cuts = hier::CutPolicy::geometric(3, 2048, 8);
  bool auto_promote = true;
  std::uint64_t max_frame_bytes = 64u << 20;
};

class ReplicaServer {
 public:
  explicit ReplicaServer(ReplicaOptions opt)
      : opt_(std::move(opt)),
        array_(opt_.lanes, static_cast<gbx::Index>(opt_.nrows),
               static_cast<gbx::Index>(opt_.ncols), opt_.cuts),
        stream_(array_),
        lane_batches_(opt_.lanes, 0) {
    GBX_CHECK(!opt_.wal_path.empty(), "replica: wal_path required");
    // The loop thread does not exist yet; the constructing thread holds
    // the role for the cold replay.
    gbx::ScopedThreadRole role(loop_role_);
    cold_replay();
    wal_out_.open(opt_.wal_path,
                  std::ios::binary | std::ios::out | std::ios::app);
    GBX_CHECK(wal_out_.good(),
              "replica: cannot open WAL " + opt_.wal_path);
    writer_ = std::make_unique<store::RecordLogWriter>(wal_out_);
  }

  ~ReplicaServer() {
    if (running_) stop();
  }

  void start() {
    GBX_CHECK(!running_, "ReplicaServer already started");
    listen_ = net::Fd(
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
    GBX_CHECK(listen_.valid(), "replica: socket() failed");
    const int one = 1;
    ::setsockopt(listen_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    GBX_CHECK(::bind(listen_.get(), reinterpret_cast<::sockaddr*>(&addr),
                     sizeof addr) == 0,
              "replica: bind() failed");
    GBX_CHECK(::listen(listen_.get(), opt_.backlog) == 0,
              "replica: listen() failed");
    ::socklen_t len = sizeof addr;
    GBX_CHECK(::getsockname(listen_.get(),
                            reinterpret_cast<::sockaddr*>(&addr), &len) == 0,
              "replica: getsockname() failed");
    port_ = ntohs(addr.sin_port);

    loop_ = std::make_unique<net::EventLoop>();
    wake_ = std::make_unique<net::WakeFd>();
    loop_->add(listen_.get(), EPOLLIN);
    loop_->add(wake_->get(), EPOLLIN);
    stream_.start();
    streaming_ = true;
    stop_.store(false, std::memory_order_relaxed);
    running_ = true;
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    GBX_CHECK(running_, "ReplicaServer not started");
    stop_.store(true, std::memory_order_relaxed);
    wake_->wake();
    thread_.join();
    {
      gbx::ScopedThreadRole role(loop_role_);
      sessions_.clear();
    }
    loop_.reset();
    wake_.reset();
    listen_.reset();
    // Drain the lane workers: every submitted batch is applied before
    // stop() returns, so the post-stop array()/lane_batches() reads see
    // exactly the acked state. A failed apply is silent divergence —
    // refuse to pretend the replica is intact.
    if (streaming_) {
      const auto report = stream_.stop();
      streaming_ = false;
      std::uint64_t failed = 0;
      for (const auto& lc : report.lane) failed += lc.failed_batches;
      GBX_CHECK(failed == 0, "replica: shipped batch failed to apply");
    }
    wal_out_.flush();
    running_ = false;
  }

  std::uint16_t port() const { return port_; }
  bool running() const { return running_; }
  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  std::uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }

  /// In-process state reads — only meaningful after stop() (the loop
  /// thread owns these while running).
  hier::InstanceArray<double>& array() {
    GBX_CHECK(!running_, "replica array() while running");
    return array_;
  }
  std::vector<std::uint64_t> lane_batches() const {
    GBX_CHECK(!running_, "replica lane_batches() while running");
    return lane_batches_;
  }

 private:
  struct Session {
    explicit Session(net::Fd f, std::uint64_t cap, std::size_t home)
        : fd(std::move(f)), dec(cap), home_lane(home) {}
    net::Fd fd;
    store::RecordFrameDecoder dec;
    std::size_t home_lane;
    bool is_shipper = false;
    bool dead = false;
    /// Batched acks: ship frames admitted this read pass; one cumulative
    /// kShipAck (preceded by a WAL flush) is sent when the pass drains.
    bool ack_pending = false;
    /// A kStall failpoint swallowed this pass's ack (the primary's
    /// flush barrier must hold until a later pass re-covers it).
    bool suppress_ack = false;
  };

  // --- cold start ----------------------------------------------------------
  void cold_replay() GBX_REQUIRES(loop_role_) {
    std::error_code ec;
    if (!std::filesystem::exists(opt_.wal_path, ec)) return;
    std::ifstream in(opt_.wal_path, std::ios::binary | std::ios::in);
    if (!in.good()) return;
    store::RecordLogReader reader(in);
    hier::ReplayCursor cursor(0, "replica cold start");
    while (auto rec = reader.next()) {
      GBX_CHECK(cursor.admit(rec->epoch),
                "replica cold start: record below base");
      apply_payload(rec->epoch, rec->payload, /*log=*/false);
      cursor.mark_applied(rec->epoch);
    }
  }

  // --- event loop ----------------------------------------------------------
  void run() {
    gbx::ScopedThreadRole role(loop_role_);
    while (!stop_.load(std::memory_order_relaxed)) {
      for (const auto& ev : loop_->wait(10)) {
        if (stop_.load(std::memory_order_relaxed)) break;
        if (ev.data.fd == wake_->get()) {
          wake_->clear();
        } else if (ev.data.fd == listen_.get()) {
          accept_all();
        } else {
          auto it = sessions_.find(ev.data.fd);
          if (it != sessions_.end()) read_session(*it->second);
        }
      }
      check_lease();
      reap();
    }
  }

  void accept_all() GBX_REQUIRES(loop_role_) {
    for (;;) {
      // Blocking accepted sockets: recv uses MSG_DONTWAIT, sends are
      // small and synchronous (acks, replies) — a replica pair has few
      // well-behaved peers, unlike the hardened ingest front end.
      net::Fd fd(::accept4(listen_.get(), nullptr, nullptr, SOCK_CLOEXEC));
      if (!fd.valid()) return;
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const int raw = fd.get();
      auto s = std::make_unique<Session>(std::move(fd), opt_.max_frame_bytes,
                                         next_home_lane_++ % opt_.lanes);
      loop_->add(raw, EPOLLIN);
      sessions_.emplace(raw, std::move(s));
    }
  }

  void read_session(Session& s) GBX_REQUIRES(loop_role_) {
    pump_session(s);
    // End of the read pass: everything admitted above is persisted by
    // ONE flush and covered by ONE cumulative ack — the write+fsync
    // amortization that keeps replication off the ingest critical path.
    if (s.ack_pending) {
      s.ack_pending = false;
      if (!s.suppress_ack && !s.dead) {
        flush_wal();
        std::string out;
        net::append_frame(out, net::MsgType::kShipAck,
                          applied_seq_.load(std::memory_order_relaxed));
        send_all(s, out);
      }
      s.suppress_ack = false;
    }
  }

  void pump_session(Session& s) GBX_REQUIRES(loop_role_) {
    // Bounded pass: a shipper that streams faster than the lanes apply
    // would otherwise keep this loop fed forever and the pass-end
    // ack/flush would never run — acks must flow DURING a sustained
    // stream, or the primary's flush barrier stalls against the ship
    // window. Level-triggered epoll re-reports the fd immediately, so
    // leftover bytes are picked up by the next pass (after the ack).
    char buf[1u << 16];
    for (int burst = 0; burst < 64; ++burst) {
      const auto n = ::recv(s.fd.get(), buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        s.dec.feed(buf, static_cast<std::size_t>(n));
        if (!process_frames(s)) return;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      s.dead = true;  // EOF or error
      return;
    }
  }

  bool process_frames(Session& s) GBX_REQUIRES(loop_role_) {
    store::LogRecord rec;
    for (;;) {
      switch (s.dec.next(rec)) {
        case store::RecordFrameDecoder::Status::kNeedMore:
          return true;
        case store::RecordFrameDecoder::Status::kCorrupt:
          // Loud: a corrupted shipped stream must never decay into a
          // partial apply. The shipper reconnects and resumes cleanly.
          reply_error(s, net::MsgType::kShipBatch,
                      "replica: " + s.dec.error());
          s.dead = true;
          return false;
        case store::RecordFrameDecoder::Status::kFrame:
          try {
            if (!handle_frame(s, rec)) return false;
          } catch (const gbx::Error& e) {
            reply_error(s, net::tag_type(rec.epoch), e.what());
            s.dead = true;
            return false;
          }
          break;
      }
    }
  }

  bool handle_frame(Session& s, store::LogRecord& rec)
      GBX_REQUIRES(loop_role_) {
    const net::MsgType type = net::tag_type(rec.epoch);
    const std::uint64_t arg = net::tag_arg(rec.epoch);
    switch (type) {
      case net::MsgType::kShipHello:
        return handle_hello(s, rec);
      case net::MsgType::kShipBatch:
        return handle_ship_batch(s, arg, rec);
      case net::MsgType::kHeartbeat:
        if (s.is_shipper) touch_lease();
        return true;
      case net::MsgType::kQueryLaneEpochs: {
        // Failover clients resume from these counts and never re-send
        // below them — flush first so the reported boundary survives a
        // replica crash-restart.
        flush_wal();
        std::vector<std::uint64_t> out;
        out.reserve(2 + lane_batches_.size());
        out.push_back(promoted_.load(std::memory_order_relaxed) ? 1 : 0);
        out.push_back(applied_seq_.load(std::memory_order_relaxed));
        out.insert(out.end(), lane_batches_.begin(), lane_batches_.end());
        reply_ok(s, type, out.data(), out.size() * sizeof(out[0]));
        return true;
      }
      case net::MsgType::kQuerySum: {
        // Per-lane reduce folded in lane order: deterministic, and
        // bit-identical to the same fold over any equally-ordered
        // per-lane state (the failover exactness probe).
        SumLanes r = sum_lanes();
        net::SumReply reply;
        reply.sum = r.sum;
        reply.epoch = applied_seq_.load(std::memory_order_relaxed);
        reply.nvals = r.nvals;
        reply_ok(s, type, &reply, sizeof reply);
        return true;
      }
      case net::MsgType::kInsert:
        return handle_insert(s, arg, rec);
      case net::MsgType::kFlush:
        if (!promoted_.load(std::memory_order_relaxed)) {
          reply_error(s, type, "replica not promoted");
          s.dead = true;
          return false;
        }
        // The barrier: applied (drain the lane workers) AND durable
        // (flush the WAL) before the ack goes out.
        if (streaming_) stream_.drain();
        flush_wal();
        reply_ok(s, type, "", 0);
        return true;
      case net::MsgType::kBye:
        reply_ok(s, type, "", 0);
        s.dead = true;
        return false;
      default:
        reply_error(s, type, "replica: unsupported message type");
        s.dead = true;
        return false;
    }
  }

  bool handle_hello(Session& s, store::LogRecord& rec)
      GBX_REQUIRES(loop_role_) {
    ShipHello hello;
    if (!net::payload_as(rec.payload, hello)) {
      reply_error(s, net::MsgType::kShipHello, "replica: malformed hello");
      s.dead = true;
      return false;
    }
    if (promoted_.load(std::memory_order_relaxed)) {
      // The fence: a deposed primary (or its reconnecting shipper) is
      // turned away for good.
      reply_error(s, net::MsgType::kShipHello,
                  "replica promoted: primary is fenced");
      s.dead = true;
      return false;
    }
    GBX_CHECK(hello.lanes == opt_.lanes && hello.nrows == opt_.nrows &&
                  hello.ncols == opt_.ncols,
              "replica: primary topology mismatch");
    // One shipper at a time: a re-handshake supersedes the old session.
    for (auto& [fd, sp] : sessions_)
      if (sp.get() != &s && sp->is_shipper) sp->dead = true;
    s.is_shipper = true;
    seen_primary_ = true;
    touch_lease();
    cursor_ = std::make_unique<hier::ReplayCursor>(
        applied_seq_.load(std::memory_order_relaxed), "replica");
    // next_seq tells the shipper what it may treat as acked — make the
    // boundary durable before promising it.
    flush_wal();
    ShipHelloReply r;
    r.next_seq = applied_seq_.load(std::memory_order_relaxed) + 1;
    reply_ok(s, net::MsgType::kShipHello, &r, sizeof r);
    return true;
  }

  bool handle_ship_batch(Session& s, std::uint64_t seq,
                         store::LogRecord& rec) GBX_REQUIRES(loop_role_) {
    GBX_CHECK(s.is_shipper, "replica: ship batch before hello");
    GBX_CHECK(!promoted_.load(std::memory_order_relaxed),
              "replica promoted: primary is fenced");
    touch_lease();
    // Any ship frame — including a benign duplicate — earns the pass's
    // cumulative ack (idempotent: it only ever re-states applied_seq_).
    s.ack_pending = true;
    // ReplayCursor admission: <= base is a benign duplicate (resend
    // across a reconnect), a gap or regression throws — gapped and
    // overlapping suffixes are rejected loudly, exactly as recover()
    // rejects them on a crash log.
    if (!cursor_->admit(seq)) return true;
    apply_payload(seq, rec.payload, /*log=*/true);
    cursor_->mark_applied(seq);

    if (gbx::failpoints().armed()) {
      if (auto fp = gbx::failpoints().hit("repl.replica.ack")) {
        if (fp->action == gbx::FailAction::kDelay)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fp->delay_ms));
        if (fp->action == gbx::FailAction::kStall)
          s.suppress_ack = true;  // ack withheld: flush barrier holds
      }
    }
    return !s.dead;
  }

  bool handle_insert(Session& s, std::uint64_t arg, store::LogRecord& rec)
      GBX_REQUIRES(loop_role_) {
    if (!promoted_.load(std::memory_order_relaxed)) {
      reply_error(s, net::MsgType::kInsert, "replica not promoted");
      s.dead = true;
      return false;
    }
    std::size_t lane = s.home_lane;
    if (arg != net::kAnyLane) {
      GBX_CHECK(arg < opt_.lanes, "replica: insert lane out of range");
      lane = static_cast<std::size_t>(arg);
    }
    gbx::Tuples<double> batch;
    std::vector<gbx::Entry<double>> entries;
    GBX_CHECK(net::payload_as(rec.payload, entries),
              "replica: insert payload is not a whole number of entries");
    for (const auto& e : entries)
      GBX_CHECK(e.row < opt_.nrows && e.col < opt_.ncols,
                "replica: insert coordinate out of range");
    batch.entries() = std::move(entries);
    const std::uint64_t seq =
        applied_seq_.load(std::memory_order_relaxed) + 1;
    const std::string payload = encode_batch_payload(lane, batch);
    writer_->append(seq, payload.data(), payload.size());
    GBX_CHECK(wal_out_.good(), "replica: WAL write failed");
    wal_dirty_ = true;  // flushed at the kFlush barrier — the only
                        // point an insert's durability is promised
    if (streaming_)
      stream_.submit(lane, std::move(batch));
    else
      array_.instance(lane).update(batch);
    ++lane_batches_[lane];
    applied_seq_.store(seq, std::memory_order_release);
    return true;
  }

  /// Decode, optionally persist, and hand one sequenced batch record to
  /// its lane. Persist (WAL append) happens BEFORE the submit, and the
  /// caller's pass-end flush happens BEFORE its ack — an acked batch is
  /// always recoverable from the WAL even if a lane worker had not
  /// applied it when the replica died. Cold replay (log=false) applies
  /// directly: the stream is not running yet.
  void apply_payload(std::uint64_t seq, const std::vector<std::byte>& payload,
                     bool log) GBX_REQUIRES(loop_role_) {
    std::uint64_t lane = 0;
    gbx::Tuples<double> batch;
    GBX_CHECK(decode_batch_payload(payload, lane, batch),
              "replica: malformed shipped batch payload");
    GBX_CHECK(lane < opt_.lanes, "replica: shipped lane out of range");
    for (const auto& e : batch.entries())
      GBX_CHECK(e.row < opt_.nrows && e.col < opt_.ncols,
                "replica: shipped coordinate out of range");
    if (log) {
      writer_->append(seq, payload.data(), payload.size());
      GBX_CHECK(wal_out_.good(), "replica: WAL write failed");
      wal_dirty_ = true;
    }
    if (streaming_)
      stream_.submit(static_cast<std::size_t>(lane), std::move(batch));
    else
      array_.instance(static_cast<std::size_t>(lane)).update(batch);
    ++lane_batches_[lane];
    applied_seq_.store(seq, std::memory_order_release);
  }

  /// One flush covers every append since the last — called before any
  /// ack, durability promise, or reported resume boundary leaves the
  /// process.
  void flush_wal() GBX_REQUIRES(loop_role_) {
    if (!wal_dirty_) return;
    wal_out_.flush();
    GBX_CHECK(wal_out_.good(), "replica: WAL flush failed");
    wal_dirty_ = false;
  }

  struct SumLanes {
    double sum = 0;
    std::uint64_t nvals = 0;
  };
  SumLanes sum_lanes() GBX_REQUIRES(loop_role_) {
    // Quiesce the lane workers: this thread is the only submitter, so
    // drain() terminates, and its lane handshake orders every applied
    // batch before the freezes below.
    if (streaming_) stream_.drain();
    SumLanes r;
    for (std::size_t p = 0; p < opt_.lanes; ++p) {
      auto snap = array_.instance(p).freeze();
      r.sum += snap.reduce();
      r.nvals += snap.nvals();
    }
    return r;
  }

  // --- lease / promotion ---------------------------------------------------
  void touch_lease() GBX_REQUIRES(loop_role_) {
    last_activity_ = std::chrono::steady_clock::now();
  }

  void check_lease() GBX_REQUIRES(loop_role_) {
    if (!opt_.auto_promote || !seen_primary_ ||
        promoted_.load(std::memory_order_relaxed))
      return;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_activity_ < std::chrono::milliseconds(opt_.lease_ms))
      return;
    promoted_.store(true, std::memory_order_release);
    // Sever the (dead or partitioned) shipper: if the primary is in
    // fact alive, its reconnect hello meets the fence above.
    for (auto& [fd, sp] : sessions_)
      if (sp->is_shipper) sp->dead = true;
  }

  // --- plumbing ------------------------------------------------------------
  void reply_ok(Session& s, net::MsgType request, const void* payload,
                std::size_t size) GBX_REQUIRES(loop_role_) {
    std::string out;
    net::append_frame(out, net::MsgType::kReplyOk,
                      static_cast<std::uint64_t>(request), payload, size);
    send_all(s, out);
  }

  void reply_error(Session& s, net::MsgType request, const std::string& what)
      GBX_REQUIRES(loop_role_) {
    std::string out;
    net::append_frame(out, net::MsgType::kReplyError,
                      static_cast<std::uint64_t>(request), what.data(),
                      what.size());
    send_all(s, out);
  }

  void send_all(Session& s, const std::string& bytes)
      GBX_REQUIRES(loop_role_) {
    const char* p = bytes.data();
    std::size_t n = bytes.size();
    while (n > 0 && !s.dead) {
      const auto w = ::send(s.fd.get(), p, n, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) {
        s.dead = true;
        return;
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  }

  void reap() GBX_REQUIRES(loop_role_) {
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->dead) {
        loop_->del(it->first);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }

  ReplicaOptions opt_;

  /// Written by stream_'s lane workers while running (the loop thread
  /// only touches it through submit/drain, or directly during the cold
  /// replay and after stop() — both single-threaded by construction).
  hier::InstanceArray<double> array_;
  hier::ParallelStream<double> stream_;
  std::vector<std::uint64_t> lane_batches_ GBX_GUARDED_BY(loop_role_);
  std::ofstream wal_out_ GBX_GUARDED_BY(loop_role_);
  bool wal_dirty_ GBX_GUARDED_BY(loop_role_) = false;
  std::unique_ptr<store::RecordLogWriter> writer_ GBX_GUARDED_BY(loop_role_);
  std::unique_ptr<hier::ReplayCursor> cursor_ GBX_GUARDED_BY(loop_role_);

  std::atomic<std::uint64_t> applied_seq_{0};
  std::atomic<bool> promoted_{false};
  bool seen_primary_ GBX_GUARDED_BY(loop_role_) = false;
  std::chrono::steady_clock::time_point last_activity_
      GBX_GUARDED_BY(loop_role_){};

  net::Fd listen_;
  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<net::WakeFd> wake_;
  std::unordered_map<int, std::unique_ptr<Session>> sessions_
      GBX_GUARDED_BY(loop_role_);
  std::size_t next_home_lane_ GBX_GUARDED_BY(loop_role_) = 0;

  gbx::ThreadRole loop_role_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  bool running_ = false;
  /// True between stream_.start() and stream_.stop(): toggled only
  /// while the loop thread does not exist (thread create/join orders
  /// the loop thread's reads), so a plain bool suffices.
  bool streaming_ = false;
  std::uint16_t port_ = 0;
};

}  // namespace repl

#endif  // __linux__
