// repl/protocol.hpp — payload PODs and codecs of the WAL-shipping
// protocol (message types kShipHello/kShipBatch/kShipAck/kHeartbeat in
// net/protocol.hpp; this header only defines what rides inside them).
//
// Shipping model: the primary's IngestServer hands every accepted
// insert batch to a repl::PrimaryReplicator in acceptance order; the
// replicator stamps it with the next sequence number (1, 2, 3, ... —
// a single event-loop thread accepts, so the order is total) and
// appends it to a replication WAL whose record epoch IS the sequence
// number. A shipper thread tails that WAL and streams each record to
// the replica as a kShipBatch frame (arg48 = seq, payload = the WAL
// record payload verbatim), windowed by the replica's cumulative
// kShipAck. The per-lane subsequences of the total order are exactly
// the per-lane apply orders, so a replica replaying in sequence order
// reproduces every lane's matrix bit-for-bit.
//
// Batch payload layout (both the replication WAL record and the
// kShipBatch frame): [lane u64][gbx::Entry<double> array].
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gbx/coo.hpp"
#include "net/protocol.hpp"

namespace repl {

/// kShipHello payload: the primary introduces itself and its topology.
/// The replica rejects a mismatched shape loudly (replicating lane 3 of
/// a 2-lane primary is configuration error, not data).
struct ShipHello {
  std::uint64_t lanes = 0;
  std::uint64_t nrows = 0;
  std::uint64_t ncols = 0;
  /// Primary incarnation; a promoted replica fences EVERY hello
  /// regardless, so this is diagnostic, not protocol.
  std::uint64_t generation = 0;
};

/// kReplyOk(kShipHello) payload: where to resume shipping.
struct ShipHelloReply {
  /// First sequence number the replica has NOT durably applied — the
  /// shipper skips everything below it (crash-resume without
  /// double-applying).
  std::uint64_t next_seq = 1;
};

/// Serialize one accepted batch as a shipping payload.
inline std::string encode_batch_payload(std::size_t lane,
                                        const gbx::Tuples<double>& batch) {
  std::string out;
  const auto& es = batch.entries();
  const std::uint64_t lane64 = lane;
  out.reserve(sizeof lane64 + es.size() * sizeof(es[0]));
  out.append(reinterpret_cast<const char*>(&lane64), sizeof lane64);
  if (!es.empty())
    out.append(reinterpret_cast<const char*>(es.data()),
               es.size() * sizeof(es[0]));
  return out;
}

/// Decode a shipping payload. False when malformed (short header or a
/// fractional entry array) — the receiver treats that as a rejected
/// frame, never a partial apply.
inline bool decode_batch_payload(const std::vector<std::byte>& payload,
                                 std::uint64_t& lane,
                                 gbx::Tuples<double>& batch) {
  if (payload.size() < sizeof(std::uint64_t)) return false;
  std::memcpy(&lane, payload.data(), sizeof lane);
  const std::size_t body = payload.size() - sizeof lane;
  if (body % sizeof(gbx::Entry<double>) != 0) return false;
  std::vector<gbx::Entry<double>> entries(body / sizeof(gbx::Entry<double>));
  if (body > 0)
    std::memcpy(entries.data(), payload.data() + sizeof lane, body);
  batch = gbx::Tuples<double>(std::move(entries));
  return true;
}

}  // namespace repl
