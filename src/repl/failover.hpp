// repl/failover.hpp — a replication-aware ingest client: stream a
// planned sequence of batches into the primary, and when the primary
// dies mid-stream, fail over to the replica without double-applying or
// dropping anything.
//
// Preconditions that make exactness possible:
//   * The sender owns its lane exclusively (one writer per lane — the
//     sharding discipline the whole repo runs on). The replica's
//     per-lane applied batch COUNT is then exactly "how many of MY
//     batches arrived", which is the resume index.
//   * Flush acks are durability promises (the primary holds them until
//     the replica acked — see net::ReplicationSink), so the watermark
//     of flushed batches can never exceed the replica's count.
//
// Failure detection is the satellite-1 primitive: every reply read
// uses net::Client's poll-based recv timeout, so a silently dead or
// partitioned primary surfaces as a clean gbx::Error instead of a hang.
// On error the sender dials the replica with connect retry/backoff,
// polls kQueryLaneEpochs until the replica reports itself promoted,
// reads its own lane's applied count c (asserting c >= the flush
// watermark — acked work must never be lost), and resumes sending at
// batch index c. Batches in (watermark, c) were shipped before the
// crash and are skipped — that is the never-doubled half.
#pragma once

#ifdef __linux__

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "repl/protocol.hpp"

namespace repl {

struct FailoverOptions {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  std::string replica_host = "127.0.0.1";
  std::uint16_t replica_port = 0;
  /// The lane this sender owns exclusively.
  std::size_t lane = 0;
  /// Reply-read timeout — the failure detector.
  int recv_timeout_ms = 2000;
  /// Flush (durability barrier) every this many batches.
  std::size_t flush_every = 8;
  /// How long to keep polling the replica for promotion before giving
  /// up, in attempts (one per backoff step).
  int promote_poll_attempts = 4000;
  int promote_poll_ms = 5;
  /// Sleep this long after each batch (0 = full speed). Torture tests
  /// pace senders so a kill scheduled mid-window reliably lands while
  /// the stream is still in flight.
  int pace_us = 0;
};

struct FailoverReport {
  std::uint64_t sent_primary = 0;    ///< batches submitted to the primary
  std::uint64_t sent_replica = 0;    ///< batches submitted post-failover
  std::uint64_t watermark = 0;       ///< flushed (durable) batch count
  /// Watermark frozen at the moment the primary died — the never-lost
  /// bound resumed_from is checked against (`watermark` keeps
  /// advancing with post-failover flushes on the replica).
  std::uint64_t watermark_at_failover = 0;
  std::uint64_t resumed_from = 0;    ///< replica's count at failover
  bool failed_over = false;
};

class FailoverSender {
 public:
  explicit FailoverSender(FailoverOptions opt) : opt_(std::move(opt)) {}

  /// Stream `batches` in order; returns once every batch is applied and
  /// flushed on whichever server survived. Throws only when the replica
  /// also fails (nothing left to fail over to) or an invariant breaks.
  FailoverReport run(const std::vector<gbx::Tuples<double>>& batches) {
    FailoverReport rep;
    net::Client::Options copt;
    copt.recv_timeout_ms = opt_.recv_timeout_ms;
    net::Client client(copt);
    client.connect(opt_.primary_host, opt_.primary_port);

    std::size_t i = 0;
    bool on_primary = true;
    while (i < batches.size()) {
      try {
        client.insert(batches[i], opt_.lane);
        const bool barrier =
            (i + 1) % opt_.flush_every == 0 || i + 1 == batches.size();
        if (barrier) {
          client.flush();
          rep.watermark = i + 1;
        }
        ++i;
        (on_primary ? rep.sent_primary : rep.sent_replica) += 1;
        if (opt_.pace_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(opt_.pace_us));
      } catch (const gbx::Error&) {
        GBX_CHECK(on_primary,
                  "failover: replica died too — nothing to fail over to");
        on_primary = false;
        rep.failed_over = true;
        rep.watermark_at_failover = rep.watermark;
        i = await_promotion(client, rep);
      }
    }
    return rep;
  }

 private:
  /// Dial the replica until it reports promoted; returns the batch
  /// index to resume from (the replica's applied count for our lane).
  std::size_t await_promotion(net::Client& client, FailoverReport& rep) {
    net::Client::Options copt;
    copt.recv_timeout_ms = opt_.recv_timeout_ms;
    copt.connect_attempts = 20;
    copt.connect_backoff_ms = 10;
    for (int a = 0; a < opt_.promote_poll_attempts; ++a) {
      try {
        client = net::Client(copt);
        client.connect(opt_.replica_host, opt_.replica_port);
        std::string frame;
        net::append_frame(frame, net::MsgType::kQueryLaneEpochs);
        client.send_raw(frame.data(), frame.size());
        auto rec = client.read_reply();
        GBX_CHECK(net::tag_type(rec.epoch) == net::MsgType::kReplyOk,
                  "failover: lane-epoch query rejected");
        std::vector<std::uint64_t> words;
        GBX_CHECK(net::payload_as(rec.payload, words) && words.size() >= 3,
                  "failover: malformed lane-epoch reply");
        const bool promoted = words[0] != 0;
        if (!promoted) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opt_.promote_poll_ms));
          continue;
        }
        GBX_CHECK(2 + opt_.lane < words.size(),
                  "failover: lane missing from lane-epoch reply");
        const std::uint64_t c = words[2 + opt_.lane];
        GBX_CHECK(c >= rep.watermark,
                  "failover: acked batches LOST (replica behind the "
                  "flush watermark)");
        rep.resumed_from = c;
        return static_cast<std::size_t>(c);
      } catch (const gbx::Error&) {
        // Replica not up / mid-promotion: back off and retry.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt_.promote_poll_ms));
      }
    }
    GBX_CHECK(false, "failover: replica never promoted");
    return 0;  // unreachable
  }

  FailoverOptions opt_;
};

}  // namespace repl

#endif  // __linux__
