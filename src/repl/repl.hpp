// repl/repl.hpp — umbrella for the replication layer: primary-side WAL
// shipping (PrimaryReplicator), the replica server with lease-based
// self-promotion (ReplicaServer), and the failover-aware ingest client
// (FailoverSender). See repl/protocol.hpp for the shipping model.
#pragma once

#include "repl/failover.hpp"
#include "repl/protocol.hpp"
#include "repl/replica.hpp"
#include "repl/wal_shipper.hpp"
