// gen/kronecker.hpp — Kronecker (R-MAT) edge generator, Graph500 style.
//
// The recursive quadrant sampler of Chakrabarti/Zaki/Faloutsos, with the
// Graph500 default probabilities (A, B, C, D) = (0.57, 0.19, 0.19, 0.05).
// Kronecker graphs are the standard synthetic stand-in for power-law
// network topologies; we provide both this and the Zipf sampler of
// power_law.hpp so benches can show results are not generator artifacts.
#pragma once

#include <cstdint>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/types.hpp"
#include "gen/rng.hpp"

namespace gen {

struct KroneckerParams {
  int scale = 17;  ///< 2^scale vertices
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
  bool scramble = true;  ///< hash-permute vertex ids (Graph500 scrambling)
  std::uint64_t seed = 1;
};

class KroneckerGenerator {
 public:
  explicit KroneckerGenerator(const KroneckerParams& p)
      : params_(p), rng_(p.seed) {
    GBX_CHECK_VALUE(p.scale >= 1 && p.scale <= 62, "scale must be in [1, 62]");
    GBX_CHECK_VALUE(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0,
                    "quadrant probabilities must satisfy a>0, a+b+c<1");
  }

  const KroneckerParams& params() const { return params_; }
  gbx::Index nverts() const { return gbx::Index{1} << params_.scale; }

  /// Sample one edge.
  std::pair<gbx::Index, gbx::Index> edge() {
    gbx::Index i = 0, j = 0;
    for (int bit = 0; bit < params_.scale; ++bit) {
      const double r = rng_.next_double();
      i <<= 1;
      j <<= 1;
      if (r < params_.a) {
        // quadrant A: (0, 0)
      } else if (r < params_.a + params_.b) {
        j |= 1;  // B: (0, 1)
      } else if (r < params_.a + params_.b + params_.c) {
        i |= 1;  // C: (1, 0)
      } else {
        i |= 1;  // D: (1, 1)
        j |= 1;
      }
    }
    if (params_.scramble) {
      const gbx::Index mask = nverts() - 1;
      i = mix64(i + 0x1234567) & mask;
      j = mix64(j + 0x1234567) & mask;
    }
    return {i, j};
  }

  /// Append `n` edges (value 1) to `out`.
  template <class T>
  void batch(std::size_t n, gbx::Tuples<T>& out) {
    out.reserve(out.size() + n);
    for (std::size_t k = 0; k < n; ++k) {
      auto [i, j] = edge();
      out.push_back(i, j, T{1});
    }
  }

  template <class T>
  gbx::Tuples<T> batch(std::size_t n) {
    gbx::Tuples<T> out;
    batch(n, out);
    return out;
  }

 private:
  KroneckerParams params_;
  Xoshiro256 rng_;
};

}  // namespace gen
