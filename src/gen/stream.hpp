// gen/stream.hpp — the paper's streaming workload shape.
//
// Section III: a power-law graph of E total entries "divided up into S
// sets of B entries" which are then "simultaneously loaded and updated".
// EdgeStream wraps any generator exposing batch(n, Tuples&) and yields
// those sets; StreamPlan captures the (#sets, set size) decomposition so
// benches state their workloads explicitly.
#pragma once

#include <cstddef>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"

namespace gen {

/// Workload decomposition: total_entries = sets x set_size, exactly the
/// paper's "1,000 sets of 100,000 entries".
struct StreamPlan {
  std::size_t sets = 1000;
  std::size_t set_size = 100000;

  std::size_t total_entries() const { return sets * set_size; }

  /// The paper's exact workload (100 M entries). Benches scale this down
  /// by a factor while keeping the 1000:100000 shape.
  static StreamPlan paper() { return {1000, 100000}; }

  /// Scaled-down plan with the same set structure.
  static StreamPlan scaled(std::size_t sets, std::size_t set_size) {
    return {sets, set_size};
  }
};

/// Pull-based batch stream over any generator with batch(n, Tuples&).
template <class Generator, class T>
class EdgeStream {
 public:
  EdgeStream(Generator& g, StreamPlan plan) : gen_(g), plan_(plan) {}

  const StreamPlan& plan() const { return plan_; }
  bool done() const { return emitted_ >= plan_.sets; }
  std::size_t sets_emitted() const { return emitted_; }

  /// Produce the next set of `set_size` entries. Throws when exhausted.
  gbx::Tuples<T> next() {
    GBX_CHECK(!done(), "edge stream exhausted");
    ++emitted_;
    return gen_.template batch<T>(plan_.set_size);
  }

  /// Produce the next set into a caller-owned buffer (cleared first).
  void next(gbx::Tuples<T>& out) {
    GBX_CHECK(!done(), "edge stream exhausted");
    ++emitted_;
    out.clear();
    gen_.template batch<T>(plan_.set_size, out);
  }

 private:
  Generator& gen_;
  StreamPlan plan_;
  std::size_t emitted_ = 0;
};

}  // namespace gen
