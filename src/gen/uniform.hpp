// gen/uniform.hpp — uniform-random edge generator (control workload).
//
// Power-law structure concentrates duplicates on heavy vertices, which
// flatters any deduplicating ingest path. The uniform generator is the
// control: maximal coordinate entropy, minimal duplication, worst case
// for sort-based folds. Benches use it to separate "hierarchy wins" from
// "skew wins".
#pragma once

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gen/rng.hpp"

namespace gen {

struct UniformParams {
  gbx::Index dim = gbx::kIPv4Dim;
  std::uint64_t seed = 1;
};

class UniformGenerator {
 public:
  explicit UniformGenerator(const UniformParams& p) : params_(p), rng_(p.seed) {
    GBX_CHECK_VALUE(p.dim > 0, "dimension must be positive");
  }

  const UniformParams& params() const { return params_; }

  template <class T>
  void batch(std::size_t n, gbx::Tuples<T>& out) {
    out.reserve(out.size() + n);
    for (std::size_t k = 0; k < n; ++k)
      out.push_back(rng_.next_below(params_.dim), rng_.next_below(params_.dim),
                    T{1});
  }

  template <class T>
  gbx::Tuples<T> batch(std::size_t n) {
    gbx::Tuples<T> out;
    batch(n, out);
    return out;
  }

 private:
  UniformParams params_;
  Xoshiro256 rng_;
};

}  // namespace gen
