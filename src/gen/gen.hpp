// gen/gen.hpp — umbrella header for workload generation.
#pragma once

#include "gen/burst.hpp"
#include "gen/kronecker.hpp"
#include "gen/power_law.hpp"
#include "gen/rng.hpp"
#include "gen/stream.hpp"
#include "gen/uniform.hpp"
