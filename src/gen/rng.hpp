// gen/rng.hpp — deterministic random number generation for workloads.
//
// splitmix64 seeds and finalizes; xoshiro256** is the workhorse stream
// generator. Both are tiny, fast, and reproducible across platforms,
// which keeps every experiment in this repo re-runnable bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

namespace gen {

/// splitmix64 step (Steele, Lea, Flood 2014). Also usable as a 64-bit
/// mix/finalizer for hashing.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mixing (a bijection on uint64): used to scatter small
/// dense vertex ids across huge (2^32 / 2^64) index spaces so hypersparse
/// structures see realistic, non-clustered coordinates.
inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// xoshiro256** 1.0 (Blackman & Vigna). Not cryptographic; excellent
/// statistical quality for simulation workloads.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias worth caring about
  /// for simulation purposes (Lemire-style multiply-shift).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace gen
