// gen/power_law.hpp — power-law graph edge stream generator.
//
// The paper's workload (Section III): "a power-law graph of 100,000,000
// entries divided up into 1,000 sets of 100,000 entries". We generate
// edges whose endpoints follow a Zipf(alpha) distribution over a vertex
// population of 2^scale, sampled through an O(1) alias table, and then
// optionally scatter the small dense vertex ids across a huge index space
// (2^32 for IPv4, 2^64 for IPv6) with a 64-bit mix so the resulting
// traffic matrix is genuinely hypersparse.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/types.hpp"
#include "gen/rng.hpp"

namespace gen {

/// Walker alias table: O(n) build, O(1) sample from an arbitrary discrete
/// distribution.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    GBX_CHECK_VALUE(n > 0, "alias table needs at least one weight");
    prob_.resize(n);
    alias_.resize(n);
    double total = 0;
    for (double w : weights) {
      GBX_CHECK_VALUE(w >= 0, "alias table weights must be non-negative");
      total += w;
    }
    GBX_CHECK_VALUE(total > 0, "alias table weights must not all be zero");

    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i)
      scaled[i] = weights[i] * static_cast<double>(n) / total;

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

    while (!small.empty() && !large.empty()) {
      const auto s = small.back();
      small.pop_back();
      const auto l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (auto l : large) prob_[l] = 1.0;
    for (auto s : small) prob_[s] = 1.0;
  }

  std::size_t size() const { return prob_.size(); }

  std::uint64_t sample(Xoshiro256& rng) const {
    const std::uint64_t i = rng.next_below(prob_.size());
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Parameters of the power-law edge stream.
struct PowerLawParams {
  int scale = 17;          ///< vertex population = 2^scale
  double alpha = 1.3;      ///< Zipf exponent (degree ~ rank^-alpha)
  gbx::Index dim = gbx::kIPv4Dim;  ///< target matrix dimension
  bool scatter = true;     ///< mix vertex ids across [0, dim)
  std::uint64_t seed = 1;
};

/// Streaming power-law edge generator. Each call to `batch(n)` yields n
/// independent (row, col, 1) edges; duplicates occur naturally, exactly
/// as in repeated network traffic between the same hosts.
class PowerLawGenerator {
 public:
  explicit PowerLawGenerator(const PowerLawParams& p)
      : params_(p), rng_(p.seed), table_(make_weights(p)) {
    GBX_CHECK_VALUE(p.scale >= 1 && p.scale <= 30,
                    "power-law scale must be in [1, 30]");
    GBX_CHECK_VALUE(p.alpha > 0, "power-law alpha must be positive");
    GBX_CHECK_VALUE(p.dim >= (gbx::Index{1} << p.scale),
                    "target dimension smaller than vertex population");
  }

  const PowerLawParams& params() const { return params_; }

  /// One edge endpoint.
  gbx::Index sample_vertex() {
    const std::uint64_t v = table_.sample(rng_);
    return place(v);
  }

  /// Append `n` edges (value 1) to `out`.
  template <class T>
  void batch(std::size_t n, gbx::Tuples<T>& out) {
    out.reserve(out.size() + n);
    for (std::size_t k = 0; k < n; ++k) {
      const gbx::Index i = sample_vertex();
      const gbx::Index j = sample_vertex();
      out.push_back(i, j, T{1});
    }
  }

  template <class T>
  gbx::Tuples<T> batch(std::size_t n) {
    gbx::Tuples<T> out;
    batch(n, out);
    return out;
  }

 private:
  static std::vector<double> make_weights(const PowerLawParams& p) {
    const std::size_t n = std::size_t{1} << p.scale;
    std::vector<double> w(n);
    for (std::size_t r = 0; r < n; ++r)
      w[r] = std::pow(static_cast<double>(r + 1), -p.alpha);
    return w;
  }

  gbx::Index place(std::uint64_t v) const {
    if (!params_.scatter) return v;
    // mix64 is a bijection on 64 bits; reduce into [0, dim) preserving
    // near-uniform scatter. dim >= population guarantees injectivity is
    // not required — collisions just merge traffic, as real IPs would.
    return static_cast<gbx::Index>(
        (static_cast<unsigned __int128>(mix64(v * 0x9e3779b97f4a7c15ull + 1)) *
         params_.dim) >>
        64);
  }

  PowerLawParams params_;
  Xoshiro256 rng_;
  AliasTable table_;
};

}  // namespace gen
