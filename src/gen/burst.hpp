// gen/burst.hpp — temporal burst traffic model.
//
// Real network streams are not stationary: scans, DDoS events and flash
// crowds appear as bursts — a transient source (or source-destination
// pair) dominating the stream for a window. BurstGenerator layers
// configurable bursts over a power-law background, with ground truth
// recorded so detection analytics can be scored (the paper's
// "inferring the presence of unobserved traffic" use case).
#pragma once

#include <vector>

#include "gen/power_law.hpp"

namespace gen {

struct BurstSpec {
  std::size_t start_batch = 0;   ///< first batch the burst is live in
  std::size_t end_batch = 0;     ///< one past the last live batch
  gbx::Index src = 0;            ///< burst origin
  gbx::Index dst = 0;            ///< burst target (fan-out if spread > 0)
  gbx::Index spread = 0;         ///< dst, dst+1, ..., dst+spread targets
  double fraction = 0.2;         ///< fraction of each live batch's entries
};

class BurstGenerator {
 public:
  BurstGenerator(const PowerLawParams& background, std::vector<BurstSpec> bursts)
      : bg_(background), bursts_(std::move(bursts)), rng_(background.seed ^ 0xb5c4) {
    for (const auto& b : bursts_) {
      GBX_CHECK_VALUE(b.start_batch < b.end_batch, "burst window must be non-empty");
      GBX_CHECK_VALUE(b.fraction > 0 && b.fraction <= 1, "burst fraction in (0,1]");
      GBX_CHECK_INDEX(b.src < background.dim && b.dst + b.spread < background.dim,
                      "burst endpoints out of range");
    }
  }

  const std::vector<BurstSpec>& bursts() const { return bursts_; }
  std::size_t batches_emitted() const { return batch_no_; }

  /// Next batch: background power-law traffic with live bursts mixed in.
  template <class T>
  gbx::Tuples<T> batch(std::size_t n) {
    gbx::Tuples<T> out;
    out.reserve(n);
    std::size_t burst_quota = 0;
    for (const auto& b : bursts_)
      if (batch_no_ >= b.start_batch && batch_no_ < b.end_batch)
        burst_quota += static_cast<std::size_t>(b.fraction * static_cast<double>(n));
    if (burst_quota > n) burst_quota = n;

    bg_.batch(n - burst_quota, out);
    for (const auto& b : bursts_) {
      if (batch_no_ < b.start_batch || batch_no_ >= b.end_batch) continue;
      const auto quota =
          static_cast<std::size_t>(b.fraction * static_cast<double>(n));
      for (std::size_t k = 0; k < quota && out.size() < n; ++k) {
        const gbx::Index d =
            b.spread == 0 ? b.dst : b.dst + rng_.next_below(b.spread + 1);
        out.push_back(b.src, d, T{1});
      }
    }
    ++batch_no_;
    return out;
  }

 private:
  PowerLawGenerator bg_;
  std::vector<BurstSpec> bursts_;
  Xoshiro256 rng_;
  std::size_t batch_no_ = 0;
};

}  // namespace gen
