// assoc/tsv.hpp — D4M triple-file interchange.
//
// D4M's standard on-disk form is the tab-separated triple file:
// `row<TAB>col<TAB>value` per line. Readers tolerate comments and blank
// lines and count malformed rows; writers emit entries in row-major key
// order so files diff cleanly.
#pragma once

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "assoc/assoc_array.hpp"

namespace assoc {

struct TsvStats {
  std::size_t triples = 0;
  std::size_t malformed = 0;
};

/// Append triples from a TSV stream into an associative array.
template <class T>
TsvStats read_tsv(std::istream& is, AssocArray<T>& out) {
  TsvStats st;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto t1 = line.find('\t');
    const auto t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      ++st.malformed;
      continue;
    }
    const std::string row = line.substr(0, t1);
    const std::string col = line.substr(t1 + 1, t2 - t1 - 1);
    std::istringstream vs(line.substr(t2 + 1));
    double v;
    if (row.empty() || col.empty() || !(vs >> v)) {
      ++st.malformed;
      continue;
    }
    std::string trailing;
    if (vs >> trailing) {
      ++st.malformed;
      continue;
    }
    out.insert(row, col, static_cast<T>(v));
    ++st.triples;
  }
  out.materialize();
  return st;
}

/// Write all entries as TSV triples (row-major id order).
template <class T>
void write_tsv(std::ostream& os, const AssocArray<T>& a) {
  a.for_each([&](const std::string& r, const std::string& c, T v) {
    os << r << '\t' << c << '\t' << +v << '\n';
  });
}

}  // namespace assoc
