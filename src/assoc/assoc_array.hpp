// assoc/assoc_array.hpp — D4M associative arrays.
//
// An associative array is a matrix whose rows and columns are labelled by
// strings (Kepner & Jananthan, "Mathematics of Big Data", 2018). It is
// the representation the paper's group used *before* moving to integer-
// keyed GraphBLAS matrices; we implement it both as a substrate in its
// own right and as the "D4M" baseline family of Fig. 2. The value matrix
// is a gbx hypersparse matrix over dictionary ids, so associative array
// algebra inherits GraphBLAS semantics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "gbx/gbx.hpp"
#include "assoc/string_pool.hpp"

namespace assoc {

template <class T = double>
class AssocArray {
 public:
  using value_type = T;
  using matrix_type = gbx::Matrix<T>;

  /// `capacity` bounds the number of *distinct* row/col keys (the id
  /// space of the backing hypersparse matrix); entries are unbounded.
  explicit AssocArray(gbx::Index capacity = gbx::Index{1} << 32)
      : mat_(capacity, capacity) {}

  /// A(row, col) += v (plus-accumulate, the D4M default on duplicate keys).
  void insert(std::string_view row, std::string_view col, T v) {
    mat_.set_element(rows_.intern(row), cols_.intern(col), v);
  }

  /// Number of stored entries (forces pending fold).
  std::size_t nvals() const { return mat_.nvals(); }
  std::size_t nvals_bound() const { return mat_.nvals_bound(); }

  std::size_t num_row_keys() const { return rows_.size(); }
  std::size_t num_col_keys() const { return cols_.size(); }

  /// Value at (row, col) or 0 when absent (D4M's sparse-zero semantics).
  T get(std::string_view row, std::string_view col) const {
    const gbx::Index i = rows_.find(row);
    const gbx::Index j = cols_.find(col);
    if (i == gbx::kIndexMax || j == gbx::kIndexMax) return T{};
    return mat_.extract_element(i, j).value_or(T{});
  }

  /// f(row_key, col_key, value) over all entries, row-major in id order.
  template <class F>
  void for_each(F&& f) const {
    mat_.for_each([&](gbx::Index i, gbx::Index j, T v) {
      f(rows_.key(i), cols_.key(j), v);
    });
  }

  /// Row-key range query: all entries with lo <= row key <= hi.
  /// Returns (row, col, value) string triples in key order.
  std::vector<std::tuple<std::string, std::string, T>> row_range(
      std::string_view lo, std::string_view hi) const {
    std::vector<std::tuple<std::string, std::string, T>> out;
    const auto ids = rows_.range(lo, hi);
    const auto& s = mat_.storage();
    for (gbx::Index id : ids) {
      auto r = s.rows();
      auto it = std::lower_bound(r.begin(), r.end(), id);
      if (it == r.end() || *it != id) continue;
      const std::size_t k = static_cast<std::size_t>(it - r.begin());
      for (gbx::Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p)
        out.emplace_back(rows_.key(id), cols_.key(s.cols()[p]), s.vals()[p]);
    }
    return out;
  }

  /// Element-wise sum: dictionaries are unioned, values plus-combined.
  /// This is the fold operation of hierarchical D4M arrays.
  void plus_assign(const AssocArray& other) {
    gbx::Tuples<T> remap;
    other.mat_.for_each([&](gbx::Index i, gbx::Index j, T v) {
      remap.push_back(rows_.intern(other.rows_.key(i)),
                      cols_.intern(other.cols_.key(j)), v);
    });
    mat_.append(remap);
    mat_.materialize();
  }

  /// Sum of all values per row key, as (key, total) pairs.
  std::vector<std::pair<std::string, T>> row_sums() const {
    auto v = gbx::reduce_rows<gbx::PlusMonoid<T>>(mat_);
    std::vector<std::pair<std::string, T>> out;
    v.for_each([&](gbx::Index i, T s) { out.emplace_back(rows_.key(i), s); });
    return out;
  }

  void clear() {
    mat_.clear();
  }

  /// Fold pending updates into compressed storage.
  void materialize() const { mat_.materialize(); }

  const matrix_type& matrix() const { return mat_; }
  const StringPool& row_keys() const { return rows_; }
  const StringPool& col_keys() const { return cols_; }

  std::size_t memory_bytes() const {
    return mat_.memory_bytes() + rows_.memory_bytes() + cols_.memory_bytes();
  }

 private:
  StringPool rows_;
  StringPool cols_;
  matrix_type mat_;
};

}  // namespace assoc
