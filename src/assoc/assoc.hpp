// assoc/assoc.hpp — umbrella header for D4M associative arrays.
#pragma once

#include "assoc/assoc_array.hpp"
#include "assoc/assoc_ops.hpp"
#include "assoc/hier_assoc.hpp"
#include "assoc/string_pool.hpp"
#include "assoc/tsv.hpp"
