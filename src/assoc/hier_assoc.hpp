// assoc/hier_assoc.hpp — hierarchical D4M associative arrays.
//
// The "Hierarchical D4M" baseline of Fig. 2 (Reuther et al., HPEC 2018;
// Kepner et al., HPEC 2019 "1.9 billion updates/s with D4M"): the same
// cut-triggered cascade as hier::HierMatrix, but updates pass through the
// string dictionaries first. The dictionary lookups and string handling
// are precisely the overhead GraphBLAS integer keys eliminate, so this
// baseline sits below hierarchical GraphBLAS in every rate plot — the
// relative gap is one of the shapes the reproduction must show.
#pragma once

#include <string_view>

#include "assoc/string_pool.hpp"
#include "hier/hier.hpp"

namespace assoc {

template <class T = double>
class HierAssoc {
 public:
  HierAssoc(gbx::Index capacity, hier::CutPolicy cuts)
      : mat_(capacity, capacity, std::move(cuts)) {}

  /// A(row, col) += v through the dictionary, then down the cascade.
  void insert(std::string_view row, std::string_view col, T v) {
    mat_.update(rows_.intern(row), cols_.intern(col), v);
  }

  /// Batched insert of parallel key/value triples.
  void insert_batch(std::span<const std::string> rows,
                    std::span<const std::string> cols, std::span<const T> vals) {
    GBX_CHECK_DIM(rows.size() == cols.size() && cols.size() == vals.size(),
                  "insert_batch: triple arrays must have equal length");
    gbx::Tuples<T> batch;
    batch.reserve(rows.size());
    for (std::size_t k = 0; k < rows.size(); ++k)
      batch.push_back(rows_.intern(rows[k]), cols_.intern(cols[k]), vals[k]);
    mat_.update(batch);
  }

  /// Value at (row, col), 0 when absent. Queries the snapshot sum of all
  /// levels (non-destructive).
  T get(std::string_view row, std::string_view col) const {
    const gbx::Index i = rows_.find(row);
    const gbx::Index j = cols_.find(col);
    if (i == gbx::kIndexMax || j == gbx::kIndexMax) return T{};
    return mat_.snapshot().extract_element(i, j).value_or(T{});
  }

  const hier::HierMatrix<T>& hierarchy() const { return mat_; }
  const StringPool& row_keys() const { return rows_; }
  const StringPool& col_keys() const { return cols_; }
  const hier::HierStats& stats() const { return mat_.stats(); }

  std::size_t memory_bytes() const {
    return mat_.memory_bytes() + rows_.memory_bytes() + cols_.memory_bytes();
  }

 private:
  StringPool rows_;
  StringPool cols_;
  hier::HierMatrix<T> mat_;
};

}  // namespace assoc
