// assoc/string_pool.hpp — string key dictionary for associative arrays.
//
// D4M associative arrays (Kepner et al., ICASSP 2012) label matrix rows
// and columns with arbitrary strings. StringPool is the bidirectional
// dictionary: string -> dense id (arrival order) and id -> string. A
// sorted view is materialized on demand for ordered range queries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/types.hpp"

namespace assoc {

class StringPool {
 public:
  /// Id of `key`, inserting it if new. Ids are dense and arrival-ordered.
  gbx::Index intern(std::string_view key) {
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    const gbx::Index id = keys_.size();
    keys_.emplace_back(key);
    // The map's string_view keys must point at stable storage: keys_ is a
    // deque, so string objects never move (short-string buffers included).
    ids_.emplace(keys_.back(), id);
    sorted_dirty_ = true;
    return id;
  }

  /// Id of `key` if present; kIndexMax otherwise. Never inserts.
  gbx::Index find(std::string_view key) const {
    auto it = ids_.find(key);
    return it == ids_.end() ? gbx::kIndexMax : it->second;
  }

  bool contains(std::string_view key) const { return ids_.count(key) > 0; }

  const std::string& key(gbx::Index id) const {
    GBX_CHECK_INDEX(id < keys_.size(), "string pool id out of range");
    return keys_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Ids ordered by key string (lexicographic). Cached; rebuilt after
  /// inserts. Enables D4M-style ordered range lookups.
  const std::vector<gbx::Index>& sorted_ids() const {
    if (sorted_dirty_) {
      sorted_.resize(keys_.size());
      for (std::size_t i = 0; i < sorted_.size(); ++i) sorted_[i] = i;
      std::sort(sorted_.begin(), sorted_.end(), [this](gbx::Index a, gbx::Index b) {
        return keys_[static_cast<std::size_t>(a)] < keys_[static_cast<std::size_t>(b)];
      });
      sorted_dirty_ = false;
    }
    return sorted_;
  }

  /// All ids whose keys fall in [lo, hi] (inclusive, lexicographic),
  /// returned in key order.
  std::vector<gbx::Index> range(std::string_view lo, std::string_view hi) const {
    const auto& s = sorted_ids();
    auto cmp_lo = [this](gbx::Index id, std::string_view k) {
      return keys_[static_cast<std::size_t>(id)] < k;
    };
    auto it = std::lower_bound(s.begin(), s.end(), lo, cmp_lo);
    std::vector<gbx::Index> out;
    for (; it != s.end() && keys_[static_cast<std::size_t>(*it)] <= hi; ++it)
      out.push_back(*it);
    return out;
  }

  /// Approximate heap usage (dictionary overhead is the cost D4M pays
  /// over integer-keyed GraphBLAS matrices — worth measuring).
  std::size_t memory_bytes() const {
    std::size_t n = keys_.size() * sizeof(std::string) +
                    sorted_.capacity() * sizeof(gbx::Index) +
                    ids_.size() * (sizeof(std::string_view) + sizeof(gbx::Index) + 16);
    for (const auto& k : keys_) n += k.capacity();
    return n;
  }

 private:
  std::deque<std::string> keys_;
  std::unordered_map<std::string_view, gbx::Index> ids_;
  mutable std::vector<gbx::Index> sorted_;
  mutable bool sorted_dirty_ = false;
};

}  // namespace assoc
