// assoc/assoc_ops.hpp — D4M associative array algebra.
//
// The algebra D4M users compose analyses from (Kepner & Jananthan 2018):
// element-wise add/multiply with dictionary alignment, transpose,
// sub-array selection by key lists, and reductions to key/value lists.
// Every operation aligns string dictionaries first, then delegates to
// gbx kernels — associative arrays are "matrices with named axes".
#pragma once

#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "assoc/assoc_array.hpp"

namespace assoc {

/// C = A + B: union of dictionaries, values plus-combined.
template <class T>
AssocArray<T> add(const AssocArray<T>& a, const AssocArray<T>& b) {
  AssocArray<T> c(a.matrix().nrows());
  a.for_each([&](const std::string& r, const std::string& cK, T v) {
    c.insert(r, cK, v);
  });
  b.for_each([&](const std::string& r, const std::string& cK, T v) {
    c.insert(r, cK, v);
  });
  c.materialize();
  return c;
}

/// C = A .* B: intersection of keys, values multiplied.
template <class T>
AssocArray<T> ewise_mult(const AssocArray<T>& a, const AssocArray<T>& b) {
  AssocArray<T> c(a.matrix().nrows());
  a.for_each([&](const std::string& r, const std::string& cK, T v) {
    const T bv = b.get(r, cK);
    if (bv != T{}) c.insert(r, cK, static_cast<T>(v * bv));
  });
  c.materialize();
  return c;
}

/// C = A^T: row and column axes exchanged.
template <class T>
AssocArray<T> transpose(const AssocArray<T>& a) {
  AssocArray<T> c(a.matrix().ncols());
  a.for_each([&](const std::string& r, const std::string& cK, T v) {
    c.insert(cK, r, v);
  });
  c.materialize();
  return c;
}

/// Sub-array: rows/cols restricted to the given key lists (missing keys
/// are simply absent, matching D4M subsref semantics).
template <class T>
AssocArray<T> subsref(const AssocArray<T>& a,
                      const std::vector<std::string>& rows,
                      const std::vector<std::string>& cols) {
  AssocArray<T> c(a.matrix().nrows());
  for (const auto& r : rows)
    for (const auto& ck : cols) {
      const T v = a.get(r, ck);
      if (v != T{}) c.insert(r, ck, v);
    }
  c.materialize();
  return c;
}

/// Column sums as (key, total) pairs.
template <class T>
std::vector<std::pair<std::string, T>> col_sums(const AssocArray<T>& a) {
  auto v = gbx::reduce_cols<gbx::PlusMonoid<T>>(a.matrix());
  std::vector<std::pair<std::string, T>> out;
  v.for_each([&](gbx::Index j, T s) {
    out.emplace_back(a.col_keys().key(j), s);
  });
  return out;
}

/// Top-k rows by total value, descending.
template <class T>
std::vector<std::pair<std::string, T>> top_rows(const AssocArray<T>& a,
                                                std::size_t k) {
  auto sums = a.row_sums();
  std::sort(sums.begin(), sums.end(),
            [](const auto& x, const auto& y) { return x.second > y.second; });
  if (sums.size() > k) sums.resize(k);
  return sums;
}

/// Value equality across possibly differently-ordered dictionaries.
template <class T>
bool equal(const AssocArray<T>& a, const AssocArray<T>& b) {
  if (a.nvals() != b.nvals()) return false;
  bool same = true;
  a.for_each([&](const std::string& r, const std::string& c, T v) {
    if (b.get(r, c) != v) same = false;
  });
  return same;
}

}  // namespace assoc
