// hier/parallel_stream.hpp — parallel multi-instance streaming-insert engine.
//
// The paper's scaling result (Fig. 2) comes from running P independent
// hierarchical hypersparse matrices and summing their per-instance update
// rates. InstanceArray::update_parallel covers the lock-step case where
// every instance's batch is ready at once; ParallelStream generalizes it
// to a continuously-fed engine: one worker thread per instance, each with
// a bounded batch queue, so producers (parsers, collectors, generators)
// and inserters overlap and back-pressure propagates to the feed when a
// lane falls behind — the shape of a real network-telemetry ingest node.
//
// Two entry points:
//   * ParallelStream — start()/submit()/drain()/stop() queue engine for
//     externally produced batches (round-robin or explicit lane).
//   * pump() — synchronous paper-shape run: per-instance generators built
//     on the worker threads, generation untimed, inserts timed. This is
//     what bench_parallel_stream measures. The member pump() routes the
//     same workload through the lanes so snapshots can be taken while it
//     runs; the free function remains the zero-queue-overhead variant.
//
// Instances never share state (the paper's process model), so worker
// lanes need no locking around the matrix itself — only around their
// queues. Each lane's cascade folds run on that lane's worker thread,
// so the fold pipeline's thread-local ScratchPool gives every lane a
// private, contention-free arena: after a few batches warm the buffers,
// a lane's steady-state folds perform no heap allocation at all (the
// pool dies with the worker thread at stop()). All timing uses
// std::chrono::steady_clock; the aggregate rate is Σ_p entries_p /
// busy_p, exactly the quantity Fig. 2 plots.
//
// snapshot() captures an epoch-consistent image WITHOUT stopping the
// workers: each lane is asked to freeze its matrix at its next batch
// boundary (a ticketed handshake through the lane mutex), so every
// lane's contribution is exactly the monoid-sum of a prefix of the
// batches submitted to that lane, and the watermark records the prefix
// length. Readers wait at most one in-flight batch per lane; ingest
// never drains, never pauses globally.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/thread_annotations.hpp"
#include "hier/instance_array.hpp"
#include "hier/snapshot.hpp"

namespace hier {

/// Outcome of a non-blocking ParallelStream::try_submit.
enum class SubmitResult {
  kAccepted,  ///< batch enqueued on the lane
  kLaneFull,  ///< lane queue at capacity; batch untouched, retry later
  kStopped,   ///< engine not running or lane closing; batch untouched
};

/// Per-lane (per-instance) ingest counters.
struct LaneCounters {
  std::uint64_t batches = 0;
  std::uint64_t entries = 0;
  std::uint64_t failed_batches = 0;  ///< dropped: update() threw (bad coords)
  double busy_seconds = 0;  ///< time spent inside HierMatrix::update
};

/// Whole-run summary, one per start()/stop() cycle or pump() call.
struct ParallelStreamReport {
  std::size_t instances = 0;
  std::uint64_t batches = 0;
  std::uint64_t entries = 0;
  double wall_seconds = 0;       ///< start→stop wall clock
  double busy_seconds_mean = 0;  ///< mean per-lane insert time
  double aggregate_rate = 0;     ///< Σ_p entries_p / busy_p (Fig. 2 metric)
  double wall_rate = 0;          ///< entries / wall (incl. production)
  std::vector<LaneCounters> lane;
};

namespace detail {

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline ParallelStreamReport summarize(std::size_t instances, double wall,
                                      std::vector<LaneCounters> lane) {
  ParallelStreamReport r;
  r.instances = instances;
  r.wall_seconds = wall;
  r.lane = std::move(lane);
  double busy_sum = 0;
  for (const auto& lc : r.lane) {
    r.batches += lc.batches;
    r.entries += lc.entries;
    busy_sum += lc.busy_seconds;
    if (lc.busy_seconds > 0)
      r.aggregate_rate += static_cast<double>(lc.entries) / lc.busy_seconds;
  }
  if (r.instances > 0)
    r.busy_seconds_mean = busy_sum / static_cast<double>(r.instances);
  if (r.wall_seconds > 0)
    r.wall_rate = static_cast<double>(r.entries) / r.wall_seconds;
  return r;
}

}  // namespace detail

/// Continuously-fed streaming-insert engine over an InstanceArray.
///
///   ParallelStream<double> ps(array);
///   ps.start();
///   while (feed) ps.submit(producer.next());   // round-robin dispatch
///   auto report = ps.stop();                   // drain + join + summarize
///
/// submit() blocks when the target lane's queue is full (back-pressure);
/// batches submitted to one lane are applied in submission order, so a
/// single-instance engine is exactly as deterministic as a serial loop.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class ParallelStream {
 public:
  using array_type = InstanceArray<T, AddMonoid>;

  struct Options {
    /// Max queued batches per lane before submit() blocks. Small values
    /// keep the fast-memory footprint bounded, matching the cascade's
    /// cache-residency story.
    std::size_t queue_capacity = 4;
  };

  explicit ParallelStream(array_type& array, Options opt = {})
      : array_(&array), opt_(opt) {
    GBX_CHECK_VALUE(opt_.queue_capacity > 0, "queue capacity must be > 0");
    lanes_.reserve(array_->size());
    for (std::size_t p = 0; p < array_->size(); ++p)
      lanes_.push_back(std::make_unique<Lane>());
  }

  ParallelStream(const ParallelStream&) = delete;
  ParallelStream& operator=(const ParallelStream&) = delete;

  ~ParallelStream() {
    if (running_) stop();
  }

  std::size_t instances() const { return lanes_.size(); }
  bool running() const { return running_; }

  /// Logical dimensions of every lane's matrix (a submitted batch's
  /// coordinates must all be < these; producers that accept external
  /// input — e.g. the network server — validate against them up front).
  gbx::Index nrows() const { return array_->nrows(); }
  gbx::Index ncols() const { return array_->ncols(); }

  /// Spawn one worker thread per instance and open the lanes.
  void start() {
    GBX_CHECK(!running_, "ParallelStream already started");
    for (auto& lane : lanes_) {
      gbx::ScopedLock lk(lane->m);
      lane->closed = false;
      lane->counters = LaneCounters{};
      lane->worker_alive = true;
    }
    t0_ = std::chrono::steady_clock::now();
    threads_.reserve(lanes_.size());
    for (std::size_t p = 0; p < lanes_.size(); ++p)
      threads_.emplace_back([this, p] { worker(p); });
    running_ = true;
  }

  /// Queue a batch for instance `p`; blocks while the lane is full.
  /// Throws if the lane closes while waiting (stop() racing a blocked
  /// submit would otherwise push a batch no worker will ever apply).
  void submit(std::size_t p, gbx::Tuples<T> batch) {
    GBX_CHECK(running_, "ParallelStream not started");
    GBX_CHECK_INDEX(p < lanes_.size(), "lane index out of range");
    Lane& lane = *lanes_[p];
    gbx::ScopedLock lk(lane.m);
    while (!lane.closed && lane.queue.size() >= opt_.queue_capacity)
      lane.cv_space.wait(lane.m);
    GBX_CHECK(!lane.closed, "submit raced ParallelStream::stop");
    lane.queue.push_back(std::move(batch));
    lane.cv_work.notify_one();
  }

  /// Queue a batch on the next lane round-robin. Safe to call from
  /// multiple producer threads concurrently.
  void submit(gbx::Tuples<T> batch) {
    submit(rr_.fetch_add(1, std::memory_order_relaxed) % lanes_.size(),
           std::move(batch));
  }

  /// Non-blocking submit: enqueue on lane `p` only if there is space and
  /// the engine is accepting work, never waiting on the lane condition.
  /// On kLaneFull / kStopped the batch is left untouched in the caller's
  /// hands (nothing is moved from it), so a server can park it and map
  /// the full lane to back-pressure on its own producer — e.g. stop
  /// reading the connection that fed it — instead of blocking an event
  /// loop, and a producer racing stop() gets a defined kStopped result
  /// instead of blocking forever on a queue no worker will ever drain.
  SubmitResult try_submit(std::size_t p, gbx::Tuples<T>& batch) {
    GBX_CHECK_INDEX(p < lanes_.size(), "lane index out of range");
    if (!running_) return SubmitResult::kStopped;
    Lane& lane = *lanes_[p];
    gbx::ScopedLock lk(lane.m);
    if (lane.closed) return SubmitResult::kStopped;
    if (lane.queue.size() >= opt_.queue_capacity) return SubmitResult::kLaneFull;
    lane.queue.push_back(std::move(batch));
    lane.cv_work.notify_one();
    return SubmitResult::kAccepted;
  }

  /// True when lane `p` has applied everything submitted to it (queue
  /// empty and no batch mid-application). A non-blocking drain() probe,
  /// one lane at a time — the flush barrier of the network server.
  bool lane_idle(std::size_t p) const {
    GBX_CHECK_INDEX(p < lanes_.size(), "lane index out of range");
    Lane& lane = *lanes_[p];
    gbx::ScopedLock lk(lane.m);
    return lane.queue.empty() && !lane.applying;
  }

  /// Batches currently queued on lane `p` (monitoring / load balancing).
  std::size_t lane_queue_depth(std::size_t p) const {
    GBX_CHECK_INDEX(p < lanes_.size(), "lane index out of range");
    Lane& lane = *lanes_[p];
    gbx::ScopedLock lk(lane.m);
    return lane.queue.size();
  }

  /// Install a hook the lane workers fire after every applied batch
  /// (outside the lane lock — the hook may freeze/enforce freely). The
  /// write-side notification path of hier::MemoryGovernor. Install
  /// before start(); workers read it unsynchronized.
  void set_write_observer(std::function<void()> observer) {
    write_observer_ = std::move(observer);
  }

  /// Block until every queued batch has been applied.
  void drain() {
    GBX_CHECK(running_, "ParallelStream not started");
    for (auto& lptr : lanes_) {
      Lane& lane = *lptr;
      gbx::ScopedLock lk(lane.m);
      while (!lane.queue.empty() || lane.applying) lane.cv_space.wait(lane.m);
    }
  }

  /// Drain, join the workers, and return the run summary.
  ParallelStreamReport stop() {
    GBX_CHECK(running_, "ParallelStream not started");
    for (auto& lptr : lanes_) {
      gbx::ScopedLock lk(lptr->m);
      lptr->closed = true;
      lptr->cv_work.notify_one();
      lptr->cv_space.notify_all();  // wake producers blocked in submit()
    }
    for (auto& t : threads_) t.join();
    threads_.clear();
    running_ = false;
    const double wall = detail::seconds_since(t0_);
    std::vector<LaneCounters> lane;
    lane.reserve(lanes_.size());
    for (const auto& lptr : lanes_) {
      gbx::ScopedLock lk(lptr->m);
      lane.push_back(lptr->counters);
    }
    return detail::summarize(lanes_.size(), wall, std::move(lane));
  }

  /// Epoch-consistent snapshot of all lanes WITHOUT stopping the
  /// workers. Per lane, the image equals the monoid-sum of exactly the
  /// first `watermark(p).batches` update batches the lane's matrix has
  /// ever applied (lanes apply in submission order, and the count
  /// survives stop()/start() restarts because it is the matrix's own
  /// epoch), frozen at that lane's next batch boundary. Tickets are
  /// posted to every lane up front so the lanes freeze concurrently;
  /// the caller then collects the published views. Safe from any
  /// thread, any number of readers, stream running or not.
  StreamSnapshot<T, AddMonoid> snapshot() {
    std::vector<std::uint64_t> tickets(lanes_.size(), 0);
    for (std::size_t p = 0; p < lanes_.size(); ++p) {
      Lane& lane = *lanes_[p];
      gbx::ScopedLock lk(lane.m);
      if (lane.worker_alive) {
        tickets[p] = ++lane.freeze_ticket;
        ++lane.freeze_waiters;
        lane.cv_work.notify_one();
      }
    }
    std::vector<HierSnapshot<T, AddMonoid>> parts;
    std::vector<SnapshotWatermark> marks;
    parts.reserve(lanes_.size());
    marks.reserve(lanes_.size());
    std::uint64_t epoch = 0;
    for (std::size_t p = 0; p < lanes_.size(); ++p) {
      Lane& lane = *lanes_[p];
      gbx::ScopedLock lk(lane.m);
      // A worker may have started between the ticketing pass and now
      // (start() racing snapshot()): post the missed ticket here rather
      // than freezing under a live worker's feet.
      if (tickets[p] == 0 && lane.worker_alive) {
        tickets[p] = ++lane.freeze_ticket;
        ++lane.freeze_waiters;
        lane.cv_work.notify_one();
      }
      if (tickets[p] > 0) {
        // Workers serve every pending ticket before exiting, so on
        // wake-up freeze_done always covers our ticket.
        while (lane.freeze_done < tickets[p]) lane.cv_frozen.wait(lane.m);
        parts.push_back(lane.frozen);
        marks.push_back(lane.frozen_mark);
        // Last collector with no newer ticket pending: release the
        // lane's pin on the frozen blocks (collectors keep them alive).
        if (--lane.freeze_waiters == 0 &&
            lane.freeze_done == lane.freeze_ticket)
          lane.frozen = HierSnapshot<T, AddMonoid>();
      } else {
        // Worker not running (never started, stopped, or already
        // exited): the matrix is quiescent, freeze it directly under
        // the lane lock — nothing is published into the lane.
        parts.push_back(array_->instance(p).freeze());
        marks.push_back(SnapshotWatermark{
            parts.back().epoch(), parts.back().stats().entries_appended});
      }
      epoch += marks.back().batches;
    }
    return StreamSnapshot<T, AddMonoid>(std::move(parts), std::move(marks),
                                        epoch);
  }

  /// SnapshotEngine-compatible alias.
  StreamSnapshot<T, AddMonoid> freeze() { return snapshot(); }

  /// Paper-shape run through the lanes: one producer thread per lane
  /// builds its own generator with make_gen(p) and submits `sets`
  /// batches of `set_size` entries to lane p; workers apply them with
  /// only HierMatrix::update timed. Unlike the free pump(), snapshots
  /// can be taken concurrently while this runs — that is its purpose.
  /// Returns the run summary (the engine is stopped on return).
  template <class MakeGen>
  ParallelStreamReport pump(std::size_t sets, std::size_t set_size,
                            MakeGen&& make_gen) {
    start();
    std::vector<std::thread> producers;
    producers.reserve(lanes_.size());
    for (std::size_t p = 0; p < lanes_.size(); ++p) {
      producers.emplace_back([this, p, sets, set_size, &make_gen] {
        auto gen = make_gen(p);
        for (std::size_t s = 0; s < sets; ++s) {
          gbx::Tuples<T> batch;
          gen.batch(set_size, batch);
          submit(p, std::move(batch));
        }
      });
    }
    for (auto& t : producers) t.join();
    return stop();
  }

 private:
  struct Lane {
    gbx::Mutex m;
    gbx::CondVar cv_work;    ///< batch queued, lane closed, or freeze asked
    gbx::CondVar cv_space;   ///< batch applied / queue shrank
    gbx::CondVar cv_frozen;  ///< freeze published or worker exited
    std::deque<gbx::Tuples<T>> queue GBX_GUARDED_BY(m);
    bool closed GBX_GUARDED_BY(m) = false;
    bool applying GBX_GUARDED_BY(m) = false;
    bool worker_alive GBX_GUARDED_BY(m) = false;
    LaneCounters counters GBX_GUARDED_BY(m);
    // Freeze handshake: readers take a ticket; the worker freezes its
    // matrix at the next batch boundary and publishes the result. One
    // freeze satisfies every ticket issued before it. The last waiting
    // collector clears `frozen` so the lane does not pin stale level
    // blocks between snapshots (the views live on in the collectors).
    std::uint64_t freeze_ticket GBX_GUARDED_BY(m) = 0;
    std::uint64_t freeze_done GBX_GUARDED_BY(m) = 0;
    std::uint64_t freeze_waiters GBX_GUARDED_BY(m) = 0;
    HierSnapshot<T, AddMonoid> frozen GBX_GUARDED_BY(m);
    SnapshotWatermark frozen_mark GBX_GUARDED_BY(m);
  };

  /// Freeze the lane's matrix and publish it into the lane. Called by
  /// the lane's worker, holding lane.m. The watermark is derived from
  /// the frozen matrix itself (lifetime update count, one per batch), so
  /// it stays exact across stop()/start() restarts — lane counters are
  /// per-run for reporting, but a restarted engine's matrices retain
  /// their data and the watermark must cover it.
  static void do_freeze(Lane& lane, const HierMatrix<T, AddMonoid>& matrix)
      GBX_REQUIRES(lane.m) {
    lane.frozen = matrix.freeze();
    lane.frozen_mark = SnapshotWatermark{
        lane.frozen.epoch(), lane.frozen.stats().entries_appended};
    lane.freeze_done = lane.freeze_ticket;
    lane.cv_frozen.notify_all();
  }

  void worker(std::size_t p) {
    Lane& lane = *lanes_[p];
    auto& matrix = array_->instance(p);
    for (;;) {
      gbx::Tuples<T> batch;
      {
        gbx::ScopedLock lk(lane.m);
        while (lane.queue.empty() && !lane.closed &&
               lane.freeze_done >= lane.freeze_ticket)
          lane.cv_work.wait(lane.m);
        // Serve freezes first so readers never wait behind a deep queue:
        // a freeze between batches is exactly a batch-boundary snapshot.
        if (lane.freeze_done < lane.freeze_ticket) {
          do_freeze(lane, matrix);
          continue;
        }
        if (lane.queue.empty()) {  // closed and fully drained
          lane.worker_alive = false;
          lane.cv_frozen.notify_all();
          return;
        }
        batch = std::move(lane.queue.front());
        lane.queue.pop_front();
        lane.applying = true;
        // A slot is free the moment the batch is popped: wake producers
        // now so production overlaps the update below. drain() is not
        // fooled — its predicate also requires !applying.
        lane.cv_space.notify_all();
      }
      const auto b0 = std::chrono::steady_clock::now();
      // An exception escaping a std::thread is std::terminate for the
      // whole process, so no batch — however malformed — may throw past
      // this point. Producers validate coordinates up front; this catch
      // is the backstop that turns a bad batch into a dropped batch
      // (counted in failed_batches) instead of a dead engine.
      bool applied = true;
      try {
        matrix.update(batch);
      } catch (const std::exception&) {
        applied = false;
      }
      const double dt = detail::seconds_since(b0);
      {
        gbx::ScopedLock lk(lane.m);
        lane.applying = false;
        if (applied) {
          ++lane.counters.batches;
          lane.counters.entries += batch.size();
          lane.counters.busy_seconds += dt;
        } else {
          ++lane.counters.failed_batches;
        }
        lane.cv_space.notify_all();
      }
      // Outside the lane lock: the observer (a governor's write-side
      // enforcement) may take snapshots or walk live blocks freely.
      if (write_observer_) write_observer_();
    }
  }

  array_type* array_;
  Options opt_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::function<void()> write_observer_;  ///< set before start(); see setter
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> rr_{0};
  std::chrono::steady_clock::time_point t0_{};
  // Written only by the controlling thread (start/stop) but read from
  // producer threads inside submit(), hence atomic.
  std::atomic<bool> running_{false};
};

/// Synchronous paper-shape run: one thread per instance, each building its
/// own generator with make_gen(p) (distinct seeds -> independent streams),
/// streaming `sets` batches of `set_size` entries. Generation happens on
/// the worker thread but outside the timed window, playing the role of the
/// paper's per-stream packet-capture work; only HierMatrix::update is
/// timed. Returns the same report shape as the queue engine.
template <class T, class AddMonoid, class MakeGen>
ParallelStreamReport pump(InstanceArray<T, AddMonoid>& array, std::size_t sets,
                          std::size_t set_size, MakeGen&& make_gen) {
  const std::size_t n = array.size();
  std::vector<LaneCounters> lane(n);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      auto gen = make_gen(p);
      auto& matrix = array.instance(p);
      gbx::Tuples<T> batch;
      for (std::size_t s = 0; s < sets; ++s) {
        batch.clear();
        gen.batch(set_size, batch);
        const auto b0 = std::chrono::steady_clock::now();
        matrix.update(batch);
        lane[p].busy_seconds += detail::seconds_since(b0);
        ++lane[p].batches;
        lane[p].entries += batch.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  return detail::summarize(n, detail::seconds_since(t0), std::move(lane));
}

}  // namespace hier
