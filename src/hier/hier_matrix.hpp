// hier/hier_matrix.hpp — hierarchical hypersparse matrices.
//
// The paper's primary contribution (Section II):
//
//   * Initialize an N-level hierarchical hypersparse matrix with cuts ci.
//   * Update by adding data A to the lowest layer: A1 = A1 + A.
//   * If nnz(A1) > c1 then A2 = A2 + A1 and reset A1 to an empty
//     hypersparse matrix; repeat up the hierarchy until nnz(Ai) <= ci or
//     i = N.
//   * To complete all pending updates for analysis, sum all layers:
//     A = Σ Ai.
//
// Because the fold operation is a commutative monoid (default: plus),
// the cascade is *exactly* equal to direct accumulation — the property
// the test suite checks as its central invariant.
//
// Fast-memory mechanics: level 1 keeps its updates in the Matrix pending
// buffer (O(1) appends into a small, cache-resident array). A fold sorts
// and deduplicates that small buffer and merges it into the next level,
// so the expensive merge work touches each stored entry only
// O(log_r(total)) times instead of once per update.
#pragma once

#include <cstddef>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/matrix_ops.hpp"
#include "hier/cut_policy.hpp"
#include "hier/snapshot.hpp"
#include "hier/stats.hpp"
#include "hier/tier.hpp"

namespace hier {

template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class HierMatrix {
 public:
  using matrix_type = gbx::Matrix<T, AddMonoid>;
  using value_type = T;

  HierMatrix(gbx::Index nrows, gbx::Index ncols, CutPolicy cuts)
      : nrows_(nrows), ncols_(ncols), cuts_(std::move(cuts)) {
    levels_.reserve(cuts_.levels());
    for (std::size_t i = 0; i < cuts_.levels(); ++i)
      levels_.emplace_back(nrows_, ncols_);
    stats_.level.resize(cuts_.levels());
  }

  gbx::Index nrows() const { return nrows_; }
  gbx::Index ncols() const { return ncols_; }
  std::size_t num_levels() const { return levels_.size(); }
  const CutPolicy& cut_policy() const { return cuts_; }
  const HierStats& stats() const { return stats_; }

  /// Single-entry streaming update: A(i, j) ⊕= v. (Not observed by the
  /// write hook — per-element notification would tax the paper's hot
  /// path; governors enforce at batch granularity.)
  void update(gbx::Index i, gbx::Index j, T v) {
    levels_[0].set_element(i, j, v);
    ++stats_.updates;
    ++stats_.entries_appended;
    cascade();
  }

  /// Batched streaming update (the paper streams 100K-entry sets).
  void update(const gbx::Tuples<T>& batch) {
    levels_[0].append(batch);
    ++stats_.updates;
    stats_.entries_appended += batch.size();
    cascade();
    if (write_observer_) write_observer_();
  }

  void update(std::span<const gbx::Index> rows,
              std::span<const gbx::Index> cols, std::span<const T> vals) {
    levels_[0].append(rows, cols, vals);
    ++stats_.updates;
    stats_.entries_appended += rows.size();
    cascade();
    if (write_observer_) write_observer_();
  }

  /// Install a hook fired after every ingested batch (the write-side
  /// notification path of hier::MemoryGovernor). Owning-thread
  /// discipline, like update() itself.
  void set_write_observer(std::function<void()> observer) {
    write_observer_ = std::move(observer);
  }

  /// Entry-count upper bound per level (compressed + buffered; never
  /// forces folds). This is the quantity cut thresholds act on.
  std::size_t level_entries(std::size_t i) const {
    return levels_[i].nvals_bound();
  }

  /// Sum of per-level entry bounds (counts duplicate coordinates that
  /// live in different levels once per level).
  std::size_t total_entries_bound() const {
    std::size_t n = 0;
    for (const auto& l : levels_) n += l.nvals_bound();
    return n;
  }

  /// Heap bytes across all levels (resident only — demoted runs live in
  /// the block store, counted by store_bytes()).
  std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (const auto& l : levels_) n += l.memory_bytes();
    return n;
  }

  // ---- Out-of-core demotion (hier/tier.hpp) -------------------------

  /// Attach a block store the bottom level may demote into. The store
  /// must outlive this matrix and every snapshot taken from it (run GC
  /// erases blocks on snapshot teardown). Demotion never happens
  /// implicitly on the ingest path — only demote_now() and
  /// enforce_residency() (the governor's write-observer hook) move data.
  void enable_demotion(store::BlockStore* store, DemotionConfig cfg = {}) {
    tier_ = std::make_shared<DemotedTier<T, AddMonoid>>(store, cfg, nrows_,
                                                        ncols_);
  }

  bool demotion_enabled() const { return tier_ != nullptr; }

  /// True when demoted runs currently exist.
  bool has_demoted() const { return tier_ && tier_->demoted(); }

  /// The tier (valid only after enable_demotion), for stats/tests.
  const DemotedTier<T, AddMonoid>& tier() const { return *tier_; }

  /// Demote the bottom level into a new run (folding its pending buffer
  /// first), then compact if the run list exceeded its bound. Returns
  /// whether anything moved.
  bool demote_now() {
    if (!tier_) return false;
    const bool moved = tier_->demote(levels_.back());
    tier_->maybe_compact();
    return moved;
  }

  /// Bring resident heap bytes at or under `budget_bytes` by demoting:
  /// first the bottom level as-is, then — if still over — a full flush()
  /// (all levels folded down) followed by a second demotion, which moves
  /// every compressed byte out and leaves only warm-capacity buffers.
  /// Returns the number of demotions performed. No-op without a tier.
  std::size_t enforce_residency(std::size_t budget_bytes) {
    if (!tier_) return 0;
    std::size_t demoted = 0;
    if (memory_bytes() > budget_bytes && tier_->demote(levels_.back()))
      ++demoted;
    if (memory_bytes() > budget_bytes && levels_.size() > 1) {
      flush();
      if (tier_->demote(levels_.back())) ++demoted;
    }
    tier_->maybe_compact();
    return demoted;
  }

  /// Serialized bytes the demoted runs occupy in the block store.
  std::uint64_t store_bytes() const {
    return tier_ ? tier_->store_bytes() : 0;
  }

  /// Level i's full logical value as a standalone matrix — for the
  /// bottom level this folds the demoted runs (oldest first) back under
  /// the resident remainder, the checkpoint writer's view of a demoted
  /// matrix. Other levels are plain copies.
  matrix_type materialized_level(std::size_t i) const {
    GBX_CHECK_INDEX(i < levels_.size(), "materialized_level out of range");
    matrix_type acc(nrows_, ncols_);
    if (i + 1 == levels_.size() && tier_) tier_->view().materialize_into(acc);
    acc.plus_assign(levels_[i].view());
    return acc;
  }

  /// Point query of the logical matrix Σ Ai across resident levels AND
  /// demoted runs (freeze() publishes views without copying a block).
  std::optional<T> extract_element(gbx::Index i, gbx::Index j) const {
    return freeze().extract_element(i, j);
  }

  /// Non-destructive query: A = Σ Ai. Levels are left untouched, so
  /// streaming can continue afterwards (the paper's analysis step).
  /// Routed through freeze(): the levels publish immutable views (no
  /// block is copied — the single-non-empty-level case aliases the block
  /// outright) and to_matrix() merges only what genuinely overlaps.
  matrix_type snapshot() const { return freeze().to_matrix(); }

  /// Epoch snapshot: swap out the level-1 pending buffer (fold it into
  /// level 1's compressed block) and publish one immutable view per
  /// level. No entry data is copied — views share the compressed blocks,
  /// and copy-on-fold keeps them frozen while streaming continues. The
  /// caller may read the snapshot from any thread; further update()
  /// calls on this matrix must stay on the owning thread as always.
  HierSnapshot<T, AddMonoid> freeze() const {
    ++stats_.queries;
    std::vector<gbx::MatrixView<T>> views;
    views.reserve(levels_.size());
    for (const auto& l : levels_) views.push_back(l.view());
    // Deduped compressed bytes at this epoch (pinned-vs-live accounting
    // against later epochs: hier::snapshot_memory).
    std::vector<const gbx::Dcsr<T>*> blocks;
    for (const auto& v : views)
      if (v.shared_storage()) blocks.push_back(v.shared_storage().get());
    stats_.memory_bytes = detail::deduped_bytes(std::move(blocks));
    return HierSnapshot<T, AddMonoid>(
        nrows_, ncols_, std::move(views), cuts_.cuts(), stats_,
        stats_.updates,
        tier_ ? tier_->view() : TierView<T, AddMonoid>());
  }

  /// Epoch watermark: update() calls applied so far.
  std::uint64_t epoch() const { return stats_.updates; }

  /// Destructive query: folds every level into the top one and returns a
  /// reference to it. Cheaper than snapshot when streaming is finished.
  /// Streaming is over, so the emptied levels release their memory too.
  const matrix_type& collapse() {
    ++stats_.queries;
    // Promote the demoted runs back under the resident bottom first, so
    // the fold below sees the bottom level's full logical value (runs
    // oldest-first then resident — the tier read path's grouping).
    if (has_demoted()) {
      matrix_type bottom(nrows_, ncols_);
      tier_->view().materialize_into(bottom);
      bottom.plus_assign(levels_.back().view());
      levels_.back() = std::move(bottom);
      tier_->clear();
    }
    auto& top = levels_.back();
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
      if (levels_[i].empty()) continue;
      record_fold(i, levels_[i].nvals_bound());
      top.fold_from(levels_[i]);
      levels_[i].reset();
    }
    top.materialize();
    return top;
  }

  /// Force the full cascade regardless of thresholds (e.g. before
  /// checkpointing), preserving the level structure.
  void flush() {
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) fold(i);
  }

  /// Direct (read-only) access to a level, for instrumentation and tests.
  const matrix_type& level(std::size_t i) const { return levels_[i]; }

  /// Exact nnz of the logical matrix. Freezes the levels (publishing
  /// views, no copy) and counts the distinct coordinates with the
  /// snapshot's k-way union scan — Σ Ai is never materialized.
  std::size_t nvals() const { return freeze().nvals(); }

  /// Append the blocks currently backing the live levels (side-effect-
  /// free peek, pending buffers not folded) — the "live" side of
  /// pinned-vs-live accounting (hier::snapshot_memory, MemoryGovernor).
  /// Call on the owning thread or while the matrix is quiescent: the
  /// peek is not synchronized against a concurrent writer.
  void collect_live_blocks(std::vector<const gbx::Dcsr<T>*>& out) const {
    for (const auto& l : levels_)
      if (auto h = l.storage_handle()) out.push_back(h.get());
  }

  /// Re-establish the cut invariants after external level surgery
  /// (hier/merge.hpp). Shallowest-first: folding level i only adds to
  /// level i+1, which is checked next, so one pass suffices.
  void recascade() {
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
      if (levels_[i].nvals_bound() > cuts_.cut(i)) fold(i);
    }
  }

  /// Reset every level to empty (consumed-source state after a merge).
  void reset_levels() {
    for (auto& l : levels_) l.reset();
  }

  /// Checkpoint/restore hooks (hier/checkpoint.hpp): replace one level's
  /// matrix / the statistics block wholesale. Dimensions must match.
  void restore_level(std::size_t i, matrix_type m) {
    GBX_CHECK_INDEX(i < levels_.size(), "restore_level index out of range");
    GBX_CHECK_DIM(m.nrows() == nrows_ && m.ncols() == ncols_,
                  "restore_level dimension mismatch");
    levels_[i] = std::move(m);
  }
  void restore_stats(HierStats st) {
    GBX_CHECK_DIM(st.level.size() == levels_.size(),
                  "restore_stats level count mismatch");
    stats_ = std::move(st);
  }

 private:
  /// The paper's cascade loop: fold while a level exceeds its cut.
  void cascade() {
    for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
      if (levels_[i].nvals_bound() <= cuts_.cut(i)) break;
      fold(i);
    }
  }

  /// A_{i+1} += A_i; A_i cleared to an empty hypersparse matrix (with
  /// capacity retained — the fast level stays warm). The fused pipeline
  /// sorts, dedups, and merges A_i's pending run straight into A_{i+1}'s
  /// block without materializing an intermediate Dcsr in A_i.
  void fold(std::size_t i) {
    auto& lo = levels_[i];
    if (lo.empty()) return;
    record_fold(i, lo.nvals_bound());
    levels_[i + 1].fold_from(lo);
  }

  void record_fold(std::size_t i, std::size_t entries) {
    auto& ls = stats_.level[i];
    ++ls.folds;
    ls.entries_folded += entries;
    ls.max_entries = std::max<std::uint64_t>(ls.max_entries, entries);
  }

  gbx::Index nrows_;
  gbx::Index ncols_;
  CutPolicy cuts_;
  std::vector<matrix_type> levels_;
  std::function<void()> write_observer_;  ///< see set_write_observer
  // shared_ptr keeps HierMatrix copyable (copies share the tier; attach
  // one tier per logically distinct matrix, as enable_demotion's
  // lifetime contract implies).
  std::shared_ptr<DemotedTier<T, AddMonoid>> tier_;
  mutable HierStats stats_;
};

}  // namespace hier
