// hier/checkpoint.hpp — checkpoint/restore/recover for hierarchical
// matrices.
//
// Persists the *entire* level structure (not the collapsed sum), so a
// restored matrix resumes streaming with identical cascade behaviour and
// the restart is invisible to both ingest and query paths. Cut schedule
// and cascade statistics ride along.
//
// Crash recovery: BatchWal logs every update batch to a store::RecordLog
// stream stamped with the epoch it produced (HierMatrix::epoch counts
// update() calls, so record k carries epoch k). recover() stitches the
// two automatically — restore the checkpoint, read its epoch E from the
// persisted statistics, and replay exactly the log records with epoch
// > E, verifying the suffix is whole: the first replayed record must be
// E+1 and the epochs contiguous from there. Torn tails (crash mid-
// append), overlapping records (epoch not strictly increasing — e.g.
// two writers on one log), and gapped suffixes (log truncated from the
// front past the checkpoint) are all rejected rather than replayed into
// a silently-wrong matrix.
#pragma once

#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "gbx/serialize.hpp"
#include "hier/hier_matrix.hpp"
#include "hier/snapshot.hpp"
#include "store/wal.hpp"

namespace hier {

namespace detail {

inline constexpr std::uint64_t kCkptMagic = 0x48484752'43503031ull;  // "HHGRCP01"

/// The single definition of the checkpoint container. Both public
/// overloads feed it; `emit_level(os, i)` writes level i (a Matrix or a
/// frozen MatrixView — gbx::serialize produces identical bytes for
/// both, so restore() cannot tell the sources apart).
template <class EmitLevel>
void write_checkpoint(std::ostream& os, gbx::Index nrows, gbx::Index ncols,
                      const std::vector<std::size_t>& cuts,
                      std::size_t num_levels, const HierStats& st,
                      EmitLevel&& emit_level) {
  gbx::detail::write_pod(os, kCkptMagic);
  gbx::detail::write_pod<gbx::Index>(os, nrows);
  gbx::detail::write_pod<gbx::Index>(os, ncols);

  gbx::detail::write_vec(os, std::vector<std::uint64_t>(cuts.begin(), cuts.end()));

  gbx::detail::write_pod<std::uint64_t>(os, num_levels);
  for (std::size_t i = 0; i < num_levels; ++i) emit_level(os, i);

  // Statistics (so monitoring survives restarts).
  gbx::detail::write_pod(os, st.updates);
  gbx::detail::write_pod(os, st.entries_appended);
  gbx::detail::write_pod(os, st.queries);
  gbx::detail::write_pod<std::uint64_t>(os, st.level.size());
  for (const auto& ls : st.level) {
    gbx::detail::write_pod(os, ls.folds);
    gbx::detail::write_pod(os, ls.entries_folded);
    gbx::detail::write_pod(os, ls.max_entries);
  }
  GBX_CHECK(os.good(), "checkpoint: write failure");
}

}  // namespace detail

template <class T, class M>
void checkpoint(std::ostream& os, const HierMatrix<T, M>& h) {
  detail::write_checkpoint(
      os, h.nrows(), h.ncols(), h.cut_policy().cuts(), h.num_levels(),
      h.stats(), [&](std::ostream& o, std::size_t i) {
        // A demoted bottom level's resident matrix is only a fragment of
        // the level's logical value — fold the on-disk tier back in so
        // the checkpoint is self-contained (restore() needs no block
        // store, and recover() stays store-agnostic).
        if (i + 1 == h.num_levels() && h.has_demoted()) {
          gbx::serialize(o, h.materialized_level(i));
        } else {
          gbx::serialize(o, h.level(i));
        }
      });
}

/// Checkpoint a live epoch snapshot: byte-for-byte the same container as
/// the HierMatrix overload (restore() reads either), but sourced from
/// immutable frozen views — so it can run on a reader thread while the
/// origin matrix keeps ingesting, and the file is guaranteed to be the
/// consistent image the snapshot's epoch names.
template <class T, class M>
void checkpoint(std::ostream& os, const HierSnapshot<T, M>& snap) {
  detail::write_checkpoint(
      os, snap.nrows(), snap.ncols(), snap.cuts(), snap.num_levels(),
      snap.stats(), [&](std::ostream& o, std::size_t i) {
        // Same demoted-bottom rule as the HierMatrix overload: fold the
        // snapshot's pinned tier image into the bottom level so the file
        // is self-contained. Tier runs fold oldest-first, resident view
        // last — the canonical read order, so the bytes match a
        // checkpoint of the equivalent never-demoted matrix whenever the
        // monoid's fold is bit-associative.
        if (i + 1 == snap.num_levels() && snap.has_demoted()) {
          gbx::Matrix<T, M> bottom(snap.nrows(), snap.ncols());
          snap.tier_view().materialize_into(bottom);
          bottom.plus_assign(snap.level(i));
          gbx::serialize(o, bottom);
        } else {
          gbx::serialize(o, snap.level(i));
        }
      });
}

template <class T, class M = gbx::PlusMonoid<T>>
HierMatrix<T, M> restore(std::istream& is) {
  GBX_CHECK(gbx::detail::read_pod<std::uint64_t>(is) == detail::kCkptMagic,
            "restore: bad magic (not an hhgbx checkpoint)");
  const auto nrows = gbx::detail::read_pod<gbx::Index>(is);
  const auto ncols = gbx::detail::read_pod<gbx::Index>(is);
  auto cuts64 = gbx::detail::read_vec<std::uint64_t>(is);
  CutPolicy cuts(std::vector<std::size_t>(cuts64.begin(), cuts64.end()));

  HierMatrix<T, M> h(nrows, ncols, std::move(cuts));
  const auto levels = gbx::detail::read_pod<std::uint64_t>(is);
  GBX_CHECK(levels == h.num_levels(), "restore: level count mismatch");
  for (std::size_t i = 0; i < levels; ++i) {
    auto m = gbx::deserialize<T, M>(is);
    GBX_CHECK(m.nrows() == nrows && m.ncols() == ncols,
              "restore: level dimension mismatch");
    h.restore_level(i, std::move(m));
  }

  HierStats st;
  st.updates = gbx::detail::read_pod<std::uint64_t>(is);
  st.entries_appended = gbx::detail::read_pod<std::uint64_t>(is);
  st.queries = gbx::detail::read_pod<std::uint64_t>(is);
  const auto nls = gbx::detail::read_pod<std::uint64_t>(is);
  GBX_CHECK(nls == levels, "restore: stats level count mismatch");
  st.level.resize(nls);
  for (auto& ls : st.level) {
    ls.folds = gbx::detail::read_pod<std::uint64_t>(is);
    ls.entries_folded = gbx::detail::read_pod<std::uint64_t>(is);
    ls.max_entries = gbx::detail::read_pod<std::uint64_t>(is);
  }
  h.restore_stats(std::move(st));
  return h;
}

/// Write-ahead logger for streaming ingest: call log() with every batch
/// BEFORE applying it, stamping the epoch the batch will produce (the
/// matrix's epoch after the update — i.e. epoch() + 1 at call time).
/// recover() replays these records above a checkpoint's epoch.
template <class T>
class BatchWal {
 public:
  explicit BatchWal(std::ostream& os) : writer_(os) {}

  /// Log one update batch as record `epoch`. Epochs must be appended in
  /// strictly increasing order (one record per update() call).
  void log(std::uint64_t epoch, const gbx::Tuples<T>& batch) {
    const auto& entries = batch.entries();
    writer_.append(epoch, entries.data(),
                   entries.size() * sizeof(gbx::Entry<T>));
  }

  /// Convenience: log the batch about to be applied to `h`, then apply
  /// it — the epoch stamp and the matrix's epoch cannot drift apart.
  template <class M>
  void log_and_update(HierMatrix<T, M>& h, const gbx::Tuples<T>& batch) {
    log(h.epoch() + 1, batch);
    h.update(batch);
  }

  std::uint64_t records() const { return writer_.records(); }
  std::uint64_t bytes_logged() const { return writer_.bytes_logged(); }

 private:
  store::RecordLogWriter writer_;
};

/// Epoch-contiguity guard over a replayed WAL suffix — the shared
/// admission rule of recover() and the replication replica
/// (repl::ReplicaServer): records must arrive with strictly increasing
/// epochs, records at or below the base epoch are skipped (already in
/// the checkpoint / already applied), and the applied suffix must be
/// contiguous from base+1. Violations throw gbx::Error with the
/// caller's context prefixed, so a gapped replica stream and a gapped
/// crash log report through one code path.
class ReplayCursor {
 public:
  explicit ReplayCursor(std::uint64_t base_epoch, std::string context = "replay")
      : base_(base_epoch), applied_(base_epoch), ctx_(std::move(context)) {}

  /// Classify one record. True ⇒ apply it (then call mark_applied);
  /// false ⇒ skip (epoch covered by the base). Throws on overlap / gap.
  bool admit(std::uint64_t epoch) {
    GBX_CHECK(!any_seen_ || epoch > last_seen_,
              ctx_ + ": overlapping WAL suffix (record epochs must be "
                     "strictly increasing)");
    any_seen_ = true;
    last_seen_ = epoch;
    if (epoch <= base_) return false;
    GBX_CHECK(epoch == applied_ + 1,
              ctx_ + ": gapped WAL suffix (missing update records between "
                     "epoch " + std::to_string(applied_) + " and " +
                     std::to_string(epoch) + ")");
    return true;
  }

  void mark_applied(std::uint64_t epoch) { applied_ = epoch; }
  std::uint64_t applied() const { return applied_; }
  std::uint64_t base() const { return base_; }

 private:
  std::uint64_t base_;
  std::uint64_t applied_;
  std::uint64_t last_seen_ = 0;
  bool any_seen_ = false;
  std::string ctx_;
};

/// What recover() found and did.
struct RecoveryReport {
  std::uint64_t checkpoint_epoch = 0;  ///< E, read from the checkpoint
  std::uint64_t skipped_records = 0;   ///< log records with epoch <= E
  std::uint64_t replayed_records = 0;  ///< log records applied (epoch > E)
  std::uint64_t replayed_entries = 0;  ///< entries inside those records
};

/// Automatic crash recovery: restore the checkpoint, read its epoch E,
/// and replay exactly the WAL records with epoch > E. The WAL must hold
/// one record per update() call stamped with the epoch that update
/// produced (BatchWal enforces the shape). Throws gbx::Error on:
///   * torn suffix       — truncated/corrupt frame (store::RecordLogReader),
///   * overlapping suffix— epochs not strictly increasing,
///   * gapped suffix     — first record above E is not E+1, or a later
///                         record skips an epoch.
template <class T, class M = gbx::PlusMonoid<T>>
HierMatrix<T, M> recover(std::istream& ckpt, std::istream& wal,
                         RecoveryReport* report = nullptr) {
  HierMatrix<T, M> h = restore<T, M>(ckpt);
  const std::uint64_t ckpt_epoch = h.epoch();

  RecoveryReport rep;
  rep.checkpoint_epoch = ckpt_epoch;

  store::RecordLogReader reader(wal);
  ReplayCursor cursor(ckpt_epoch, "recover");
  while (auto rec = reader.next()) {
    if (!cursor.admit(rec->epoch)) {
      ++rep.skipped_records;
      continue;
    }
    GBX_CHECK(rec->payload.size() % sizeof(gbx::Entry<T>) == 0,
              "recover: WAL record payload is not a whole entry array");
    const std::size_t n = rec->payload.size() / sizeof(gbx::Entry<T>);
    gbx::Tuples<T> batch;
    if (n > 0) {
      std::vector<gbx::Entry<T>> entries(n);
      std::memcpy(entries.data(), rec->payload.data(), rec->payload.size());
      batch = gbx::Tuples<T>(std::move(entries));
    }
    rep.replayed_entries += batch.size();
    h.update(batch);
    ++rep.replayed_records;
    cursor.mark_applied(rec->epoch);
  }
  if (report != nullptr) *report = rep;
  return h;
}

}  // namespace hier
