// hier/checkpoint.hpp — checkpoint/restore for hierarchical matrices.
//
// Persists the *entire* level structure (not the collapsed sum), so a
// restored matrix resumes streaming with identical cascade behaviour and
// the restart is invisible to both ingest and query paths. Cut schedule
// and cascade statistics ride along.
#pragma once

#include <istream>
#include <ostream>

#include "gbx/serialize.hpp"
#include "hier/hier_matrix.hpp"
#include "hier/snapshot.hpp"

namespace hier {

namespace detail {

inline constexpr std::uint64_t kCkptMagic = 0x48484752'43503031ull;  // "HHGRCP01"

/// The single definition of the checkpoint container. Both public
/// overloads feed it; `emit_level(os, i)` writes level i (a Matrix or a
/// frozen MatrixView — gbx::serialize produces identical bytes for
/// both, so restore() cannot tell the sources apart).
template <class EmitLevel>
void write_checkpoint(std::ostream& os, gbx::Index nrows, gbx::Index ncols,
                      const std::vector<std::size_t>& cuts,
                      std::size_t num_levels, const HierStats& st,
                      EmitLevel&& emit_level) {
  gbx::detail::write_pod(os, kCkptMagic);
  gbx::detail::write_pod<gbx::Index>(os, nrows);
  gbx::detail::write_pod<gbx::Index>(os, ncols);

  gbx::detail::write_vec(os, std::vector<std::uint64_t>(cuts.begin(), cuts.end()));

  gbx::detail::write_pod<std::uint64_t>(os, num_levels);
  for (std::size_t i = 0; i < num_levels; ++i) emit_level(os, i);

  // Statistics (so monitoring survives restarts).
  gbx::detail::write_pod(os, st.updates);
  gbx::detail::write_pod(os, st.entries_appended);
  gbx::detail::write_pod(os, st.queries);
  gbx::detail::write_pod<std::uint64_t>(os, st.level.size());
  for (const auto& ls : st.level) {
    gbx::detail::write_pod(os, ls.folds);
    gbx::detail::write_pod(os, ls.entries_folded);
    gbx::detail::write_pod(os, ls.max_entries);
  }
  GBX_CHECK(os.good(), "checkpoint: write failure");
}

}  // namespace detail

template <class T, class M>
void checkpoint(std::ostream& os, const HierMatrix<T, M>& h) {
  detail::write_checkpoint(
      os, h.nrows(), h.ncols(), h.cut_policy().cuts(), h.num_levels(),
      h.stats(),
      [&](std::ostream& o, std::size_t i) { gbx::serialize(o, h.level(i)); });
}

/// Checkpoint a live epoch snapshot: byte-for-byte the same container as
/// the HierMatrix overload (restore() reads either), but sourced from
/// immutable frozen views — so it can run on a reader thread while the
/// origin matrix keeps ingesting, and the file is guaranteed to be the
/// consistent image the snapshot's epoch names.
template <class T, class M>
void checkpoint(std::ostream& os, const HierSnapshot<T, M>& snap) {
  detail::write_checkpoint(
      os, snap.nrows(), snap.ncols(), snap.cuts(), snap.num_levels(),
      snap.stats(),
      [&](std::ostream& o, std::size_t i) { gbx::serialize(o, snap.level(i)); });
}

template <class T, class M = gbx::PlusMonoid<T>>
HierMatrix<T, M> restore(std::istream& is) {
  GBX_CHECK(gbx::detail::read_pod<std::uint64_t>(is) == detail::kCkptMagic,
            "restore: bad magic (not an hhgbx checkpoint)");
  const auto nrows = gbx::detail::read_pod<gbx::Index>(is);
  const auto ncols = gbx::detail::read_pod<gbx::Index>(is);
  auto cuts64 = gbx::detail::read_vec<std::uint64_t>(is);
  CutPolicy cuts(std::vector<std::size_t>(cuts64.begin(), cuts64.end()));

  HierMatrix<T, M> h(nrows, ncols, std::move(cuts));
  const auto levels = gbx::detail::read_pod<std::uint64_t>(is);
  GBX_CHECK(levels == h.num_levels(), "restore: level count mismatch");
  for (std::size_t i = 0; i < levels; ++i) {
    auto m = gbx::deserialize<T, M>(is);
    GBX_CHECK(m.nrows() == nrows && m.ncols() == ncols,
              "restore: level dimension mismatch");
    h.restore_level(i, std::move(m));
  }

  HierStats st;
  st.updates = gbx::detail::read_pod<std::uint64_t>(is);
  st.entries_appended = gbx::detail::read_pod<std::uint64_t>(is);
  st.queries = gbx::detail::read_pod<std::uint64_t>(is);
  const auto nls = gbx::detail::read_pod<std::uint64_t>(is);
  GBX_CHECK(nls == levels, "restore: stats level count mismatch");
  st.level.resize(nls);
  for (auto& ls : st.level) {
    ls.folds = gbx::detail::read_pod<std::uint64_t>(is);
    ls.entries_folded = gbx::detail::read_pod<std::uint64_t>(is);
    ls.max_entries = gbx::detail::read_pod<std::uint64_t>(is);
  }
  h.restore_stats(std::move(st));
  return h;
}

}  // namespace hier
