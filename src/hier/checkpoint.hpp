// hier/checkpoint.hpp — checkpoint/restore for hierarchical matrices.
//
// Persists the *entire* level structure (not the collapsed sum), so a
// restored matrix resumes streaming with identical cascade behaviour and
// the restart is invisible to both ingest and query paths. Cut schedule
// and cascade statistics ride along.
#pragma once

#include <istream>
#include <ostream>

#include "gbx/serialize.hpp"
#include "hier/hier_matrix.hpp"

namespace hier {

namespace detail {
inline constexpr std::uint64_t kCkptMagic = 0x48484752'43503031ull;  // "HHGRCP01"
}

template <class T, class M>
void checkpoint(std::ostream& os, const HierMatrix<T, M>& h) {
  gbx::detail::write_pod(os, detail::kCkptMagic);
  gbx::detail::write_pod<gbx::Index>(os, h.nrows());
  gbx::detail::write_pod<gbx::Index>(os, h.ncols());

  const auto& cuts = h.cut_policy().cuts();
  gbx::detail::write_vec(os, std::vector<std::uint64_t>(cuts.begin(), cuts.end()));

  gbx::detail::write_pod<std::uint64_t>(os, h.num_levels());
  for (std::size_t i = 0; i < h.num_levels(); ++i)
    gbx::serialize(os, h.level(i));

  // Statistics (so monitoring survives restarts).
  const auto& st = h.stats();
  gbx::detail::write_pod(os, st.updates);
  gbx::detail::write_pod(os, st.entries_appended);
  gbx::detail::write_pod(os, st.queries);
  gbx::detail::write_pod<std::uint64_t>(os, st.level.size());
  for (const auto& ls : st.level) {
    gbx::detail::write_pod(os, ls.folds);
    gbx::detail::write_pod(os, ls.entries_folded);
    gbx::detail::write_pod(os, ls.max_entries);
  }
  GBX_CHECK(os.good(), "checkpoint: write failure");
}

template <class T, class M = gbx::PlusMonoid<T>>
HierMatrix<T, M> restore(std::istream& is) {
  GBX_CHECK(gbx::detail::read_pod<std::uint64_t>(is) == detail::kCkptMagic,
            "restore: bad magic (not an hhgbx checkpoint)");
  const auto nrows = gbx::detail::read_pod<gbx::Index>(is);
  const auto ncols = gbx::detail::read_pod<gbx::Index>(is);
  auto cuts64 = gbx::detail::read_vec<std::uint64_t>(is);
  CutPolicy cuts(std::vector<std::size_t>(cuts64.begin(), cuts64.end()));

  HierMatrix<T, M> h(nrows, ncols, std::move(cuts));
  const auto levels = gbx::detail::read_pod<std::uint64_t>(is);
  GBX_CHECK(levels == h.num_levels(), "restore: level count mismatch");
  for (std::size_t i = 0; i < levels; ++i) {
    auto m = gbx::deserialize<T, M>(is);
    GBX_CHECK(m.nrows() == nrows && m.ncols() == ncols,
              "restore: level dimension mismatch");
    h.restore_level(i, std::move(m));
  }

  HierStats st;
  st.updates = gbx::detail::read_pod<std::uint64_t>(is);
  st.entries_appended = gbx::detail::read_pod<std::uint64_t>(is);
  st.queries = gbx::detail::read_pod<std::uint64_t>(is);
  const auto nls = gbx::detail::read_pod<std::uint64_t>(is);
  GBX_CHECK(nls == levels, "restore: stats level count mismatch");
  st.level.resize(nls);
  for (auto& ls : st.level) {
    ls.folds = gbx::detail::read_pod<std::uint64_t>(is);
    ls.entries_folded = gbx::detail::read_pod<std::uint64_t>(is);
    ls.max_entries = gbx::detail::read_pod<std::uint64_t>(is);
  }
  h.restore_stats(std::move(st));
  return h;
}

}  // namespace hier
