// hier/hier.hpp — umbrella header for hierarchical hypersparse matrices.
#pragma once

#include "hier/autotune.hpp"
#include "hier/checkpoint.hpp"
#include "hier/cut_policy.hpp"
#include "hier/delta.hpp"
#include "hier/hier_matrix.hpp"
#include "hier/instance_array.hpp"
#include "hier/memory_governor.hpp"
#include "hier/merge.hpp"
#include "hier/parallel_stream.hpp"
#include "hier/partition.hpp"
#include "hier/sharded_hier.hpp"
#include "hier/snapshot.hpp"
#include "hier/snapshot_source.hpp"
#include "hier/stats.hpp"
#include "hier/tier.hpp"
