// hier/instance_array.hpp — arrays of independent hierarchical matrices.
//
// The paper's scaling experiment runs one hierarchical hypersparse matrix
// per *process* ("31,000 instances ... on 1,100 server nodes"), with no
// communication between instances. InstanceArray reproduces that shape on
// one node: P fully independent HierMatrix instances, updated in parallel
// with one OpenMP thread per instance. Aggregate throughput is the sum of
// per-instance rates, exactly the quantity Fig. 2 plots.
#pragma once

#include <omp.h>

#include <cstddef>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/tsan_omp.hpp"
#include "hier/hier_matrix.hpp"

namespace hier {

template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class InstanceArray {
 public:
  using instance_type = HierMatrix<T, AddMonoid>;

  InstanceArray(std::size_t instances, gbx::Index nrows, gbx::Index ncols,
                const CutPolicy& cuts) {
    GBX_CHECK_VALUE(instances > 0, "need at least one instance");
    instances_.reserve(instances);
    for (std::size_t p = 0; p < instances; ++p)
      instances_.emplace_back(nrows, ncols, cuts);
  }

  std::size_t size() const { return instances_.size(); }
  instance_type& instance(std::size_t p) { return instances_[p]; }
  const instance_type& instance(std::size_t p) const { return instances_[p]; }

  /// Shared logical dimensions (every instance is constructed alike).
  gbx::Index nrows() const { return instances_.front().nrows(); }
  gbx::Index ncols() const { return instances_.front().ncols(); }

  /// Stream per-instance batches in parallel: batches[p] goes to instance
  /// p, one thread per instance (matching the paper's process model —
  /// instances never share state, so this is lock-free by construction).
  void update_parallel(const std::vector<gbx::Tuples<T>>& batches) {
    GBX_CHECK_DIM(batches.size() == instances_.size(),
                  "one batch per instance required");
    const std::size_t n = instances_.size();
    GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
    {
      gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
      for (std::size_t p = 0; p < n; ++p) {
        instances_[p].update(batches[p]);
      }
    }
  }

  /// Total raw entries appended across instances.
  std::uint64_t total_entries_appended() const {
    std::uint64_t n = 0;
    for (const auto& m : instances_) n += m.stats().entries_appended;
    return n;
  }

  /// Sum of per-level entry bounds across instances.
  std::size_t total_entries_bound() const {
    std::size_t n = 0;
    for (const auto& m : instances_) n += m.total_entries_bound();
    return n;
  }

  std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (const auto& m : instances_) n += m.memory_bytes();
    return n;
  }

 private:
  std::vector<instance_type> instances_;
};

}  // namespace hier
