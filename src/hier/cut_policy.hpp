// hier/cut_policy.hpp — cut (threshold) schedules for the cascade.
//
// The paper: "The parameters of hierarchical hypersparse matrices rely on
// controlling the number of entries in each level in the hierarchy before
// an update is cascaded. The parameters are easily tunable to achieve
// optimal performance for a variety of applications."
//
// A CutPolicy is simply the vector c1..c_{N-1} of per-level entry
// thresholds (the top level N is unbounded). Geometric schedules
// c_i = c1 * r^(i-1) are the common choice: level 1 sized to fit cache,
// each level r times bigger, so every entry is merged O(log_r total) times.
#pragma once

#include <cstddef>
#include <vector>

#include "gbx/error.hpp"

namespace hier {

class CutPolicy {
 public:
  /// Explicit thresholds c1..c_{N-1} for an N-level hierarchy. Must be
  /// non-empty and strictly increasing (a level must be able to absorb
  /// the one below before itself overflowing).
  explicit CutPolicy(std::vector<std::size_t> cuts) : cuts_(std::move(cuts)) {
    GBX_CHECK_VALUE(!cuts_.empty(), "cut policy needs at least one threshold");
    for (std::size_t i = 0; i < cuts_.size(); ++i) {
      GBX_CHECK_VALUE(cuts_[i] > 0, "cut thresholds must be positive");
      if (i > 0)
        GBX_CHECK_VALUE(cuts_[i] > cuts_[i - 1],
                        "cut thresholds must be strictly increasing");
    }
  }

  /// Geometric schedule: N levels, c_i = base * ratio^(i-1) for
  /// i = 1..N-1. `levels` counts ALL levels including the unbounded top,
  /// so levels >= 2.
  static CutPolicy geometric(std::size_t levels, std::size_t base,
                             std::size_t ratio) {
    GBX_CHECK_VALUE(levels >= 2, "hierarchy needs at least 2 levels");
    GBX_CHECK_VALUE(base > 0 && ratio > 1, "need base > 0 and ratio > 1");
    std::vector<std::size_t> cuts(levels - 1);
    std::size_t c = base;
    for (auto& x : cuts) {
      x = c;
      GBX_CHECK_VALUE(c <= (std::size_t{1} << 62) / ratio,
                      "geometric cut overflow");
      c *= ratio;
    }
    return CutPolicy(std::move(cuts));
  }

  /// Total number of hierarchy levels (bounded levels + unbounded top).
  std::size_t levels() const { return cuts_.size() + 1; }

  /// Threshold of level i (0-based; valid for i < levels()-1).
  std::size_t cut(std::size_t i) const {
    GBX_CHECK_INDEX(i < cuts_.size(), "cut index out of range");
    return cuts_[i];
  }

  const std::vector<std::size_t>& cuts() const { return cuts_; }

 private:
  std::vector<std::size_t> cuts_;
};

}  // namespace hier
