// hier/partition.hpp — THE row-hash partition function.
//
// One definition, two deployments: `ShardedHier::shard_of` (threads in
// one process) and `cluster::PartitionMap::part_of` (worker processes
// behind the router) both call row_partition, so a row lands on the
// same part index no matter how the parts are hosted. That agreement is
// what makes the router's stitched snapshot comparable — part-major,
// bit-for-bit — with a single-process `ShardedHier` fed the same
// batches, and it is pinned by a randomized equivalence test
// (tests/test_cluster_router.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "gbx/types.hpp"
#include "gen/rng.hpp"

namespace hier {

/// Part index owning `row` out of `parts` row-hash partitions. Hashing
/// (splitmix64 finalizer) spreads dense row ranges evenly — a row-block
/// partition would put one hot subnet entirely on one part.
inline std::size_t row_partition(gbx::Index row, std::size_t parts) {
  return static_cast<std::size_t>(gen::mix64(row) % parts);
}

}  // namespace hier
