// hier/snapshot_source.hpp — ONE way to spell "give me a consistent
// epoch image".
//
// Before this header the repo had four: `HierMatrix::freeze()`,
// `ShardedHier::freeze()`, `ParallelStream::snapshot()` (with a
// `freeze()` alias), and `MemoryGovernor::acquire()` (ditto). They all
// mean the same thing, so generic code (SnapshotEngine, the governor,
// the ingest server, benches) now goes through a single free function:
//
//   auto snap = hier::acquire_snapshot(source);
//
// SnapshotSource — the named requirements on `source`:
//   * `source.freeze()` returns a consistent point-in-time image by
//     value (every existing source already provides this spelling; the
//     generic overload below simply forwards to it), OR an
//     `acquire_snapshot(source)` overload is visible via ADL in the
//     source's own namespace — the same customization style as
//     `try_snapshot_diff`. cluster::RouterClient customizes this way:
//     its image is a stitched, cross-process epoch vector rather than a
//     local freeze.
//   * the returned image provides `epoch()`, `reduce()`, and `nvals()`
//     (the read surface every snapshot consumer in the repo relies on).
//
// Call sites keep the call unqualified after `using
// hier::acquire_snapshot;` so ADL can pick a source's own overload —
// exactly the std::swap two-step.
#pragma once

#include <type_traits>
#include <utility>

namespace hier {

/// Generic acquisition: every in-process source spells it `freeze()`.
/// Sources with a different acquisition story (a remote stitched
/// snapshot, say) overload `acquire_snapshot` in their own namespace
/// instead, and ADL prefers that overload at unqualified call sites.
template <class Source>
auto acquire_snapshot(Source& source) -> decltype(source.freeze()) {
  return source.freeze();
}

namespace detail_snapshot_source {

using hier::acquire_snapshot;  // the std::swap two-step, frozen here

template <class Source, class = void>
struct detected : std::false_type {};

template <class Source>
struct detected<Source, std::void_t<decltype(acquire_snapshot(
                            std::declval<Source&>()))>> : std::true_type {};

template <class Source, class = void>
struct image_reads_check : std::false_type {};

/// The acquired image must expose the snapshot read surface.
template <class Source>
struct image_reads_check<
    Source,
    std::void_t<decltype(acquire_snapshot(std::declval<Source&>()).epoch()),
                decltype(acquire_snapshot(std::declval<Source&>()).reduce()),
                decltype(acquire_snapshot(std::declval<Source&>()).nvals())>>
    : std::true_type {};

}  // namespace detail_snapshot_source

/// Trait form of the SnapshotSource named requirements (used in
/// static_asserts by SnapshotEngine and the tests).
template <class Source>
struct is_snapshot_source
    : std::bool_constant<
          detail_snapshot_source::detected<Source>::value &&
          detail_snapshot_source::image_reads_check<Source>::value> {};

template <class Source>
inline constexpr bool is_snapshot_source_v = is_snapshot_source<Source>::value;

}  // namespace hier
