// hier/delta.hpp — snapshot-to-snapshot deltas for incremental analytics.
//
// Successive epoch snapshots of one source share every level block the
// writer has not folded past (shared_ptr identity, see gbx/view.hpp).
// snapshot_diff exploits that: levels whose blocks are pointer-identical
// are skipped outright, and only the blocks that actually changed are
// merged entry-by-entry (gbx::delta). The result is the difference of
// the *logical* matrices Σ Ai — per-level movement that cancels out
// (a fold relocating entries to the next level without changing the
// union value) is filtered away by re-reading both snapshots' cross-
// level folds at every touched coordinate.
//
// Exactness contract: `added` carries the new snapshot's union value and
// `changed` carries both union values, each computed with the snapshot's
// own extract_element — the identical left-fold (ascending level order,
// part-major for sets) that to_matrix() applies per coordinate. Patching
// a materialized old Σ Ai with these entries therefore reproduces the
// full to_matrix() of the new snapshot bit-for-bit, which is what lets
// IncrementalEngine (analytics/incremental.hpp) assert exact equality
// against full recomputes.
//
// Streaming sources only ever add entries (folds preserve them), so
// `removed` is empty for snapshot pairs taken from one source in epoch
// order; it is populated — and reported — when diffing unrelated or
// out-of-order snapshots, so callers can detect that and fall back.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "gbx/delta.hpp"
#include "gbx/error.hpp"
#include "hier/snapshot.hpp"

namespace hier {

/// Per-level reuse accounting of one snapshot_diff call: how much of the
/// two snapshots was skipped via block identity versus actually scanned.
struct DeltaStats {
  std::size_t levels_total = 0;    ///< level slots compared (all parts)
  std::size_t levels_reused = 0;   ///< skipped, blocks pointer-identical
  std::size_t entries_scanned = 0; ///< entries examined in changed blocks
                                   ///< (both sides of each pair)
  std::size_t entries_reused = 0;  ///< entries skipped in reused blocks
                                   ///< (both sides, same units as scanned)
  std::size_t bytes_reused = 0;    ///< heap bytes of the reused blocks

  double reuse_ratio() const {
    const std::size_t total = entries_scanned + entries_reused;
    return total == 0 ? 1.0
                      : static_cast<double>(entries_reused) /
                            static_cast<double>(total);
  }
};

/// The difference of snapshot B's logical matrix relative to snapshot
/// A's, as entry streams over Σ Ai (NOT per level): coordinates new in
/// B, coordinates whose union value changed, and (for non-prefix pairs
/// only) coordinates that vanished.
template <class T>
struct SnapshotDelta {
  gbx::Tuples<T> added;                      ///< new coordinate, B's value
  std::vector<gbx::ChangedEntry<T>> changed; ///< both, old & new values
  gbx::Tuples<T> removed;                    ///< gone in B (A's value);
                                             ///< empty for epoch-ordered
                                             ///< pairs from one source
  DeltaStats stats;
  std::uint64_t epoch_from = 0;
  std::uint64_t epoch_to = 0;

  bool empty() const {
    return added.empty() && changed.empty() && removed.empty();
  }
  std::size_t touched() const {
    return added.size() + changed.size() + removed.size();
  }
};

namespace detail {

/// Core diff: `each_pair(f)` enumerates aligned level-view pairs, and
/// `get_old`/`get_new` are the two snapshots' cross-level lookups. The
/// union value is re-read at every coordinate where any changed block
/// differs (including per-level removals — a fold moving entries up
/// changes blocks without necessarily changing the union), so the
/// emitted values are exactly the left-fold values of each snapshot.
template <class T, class EachPair, class GetOld, class GetNew>
SnapshotDelta<T> diff_core(EachPair&& each_pair, GetOld&& get_old,
                           GetNew&& get_new, std::uint64_t epoch_from,
                           std::uint64_t epoch_to) {
  SnapshotDelta<T> out;
  out.epoch_from = epoch_from;
  out.epoch_to = epoch_to;

  std::vector<std::pair<gbx::Index, gbx::Index>> touched;
  each_pair([&](const gbx::MatrixView<T>& va, const gbx::MatrixView<T>& vb) {
    ++out.stats.levels_total;
    if (gbx::same_block(va, vb)) {
      ++out.stats.levels_reused;
      // Same units as entries_scanned (which counts BOTH sides of a
      // changed pair): a reused pair skips scanning each side once.
      out.stats.entries_reused += va.nvals() + vb.nvals();
      out.stats.bytes_reused += va.memory_bytes();
      return;
    }
    auto d = gbx::delta(va, vb);
    out.stats.entries_scanned += d.entries_scanned;
    for (const auto& e : d.added) touched.emplace_back(e.row, e.col);
    for (const auto& e : d.removed) touched.emplace_back(e.row, e.col);
    for (const auto& e : d.changed) touched.emplace_back(e.row, e.col);
  });

  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  for (const auto& [i, j] : touched) {
    const auto oldv = get_old(i, j);
    const auto newv = get_new(i, j);
    if (!oldv && !newv) continue;  // unreachable: touched implies presence
    if (!oldv) {
      out.added.push_back(i, j, *newv);
    } else if (!newv) {
      out.removed.push_back(i, j, *oldv);
    } else if (!(*oldv == *newv)) {
      out.changed.push_back({i, j, *oldv, *newv});
    }
    // both present and equal: per-level movement with no logical change
  }
  return out;
}

}  // namespace detail

/// Diff two epoch snapshots of one HierMatrix (b taken at or after a
/// for the prefix guarantee; arbitrary pairs work but may report
/// removals). O(changed blocks + touched·levels·log), not O(nnz).
template <class T, class M>
SnapshotDelta<T> snapshot_diff(const HierSnapshot<T, M>& a,
                               const HierSnapshot<T, M>& b) {
  GBX_CHECK_DIM(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                "snapshot_diff dimension mismatch");
  GBX_CHECK_DIM(a.num_levels() == b.num_levels(),
                "snapshot_diff level count mismatch");
  return detail::diff_core<T>(
      [&](auto&& f) {
        for (std::size_t i = 0; i < a.num_levels(); ++i)
          f(a.level(i), b.level(i));
      },
      [&](gbx::Index i, gbx::Index j) { return a.extract_element(i, j); },
      [&](gbx::Index i, gbx::Index j) { return b.extract_element(i, j); },
      a.epoch(), b.epoch());
}

/// Diff two stitched snapshots (ParallelStream lanes / ShardedHier
/// shards), parts aligned by position. Union values are read with the
/// set's part-major fold, matching SnapshotSet::to_matrix bit-for-bit.
template <class T, class M>
SnapshotDelta<T> snapshot_diff(const SnapshotSet<T, M>& a,
                               const SnapshotSet<T, M>& b) {
  GBX_CHECK_DIM(a.size() == b.size(), "snapshot_diff part count mismatch");
  return detail::diff_core<T>(
      [&](auto&& f) {
        for (std::size_t p = 0; p < a.size(); ++p) {
          const auto& pa = a.part(p);
          const auto& pb = b.part(p);
          GBX_CHECK_DIM(pa.num_levels() == pb.num_levels(),
                        "snapshot_diff level count mismatch");
          for (std::size_t i = 0; i < pa.num_levels(); ++i)
            f(pa.level(i), pb.level(i));
        }
      },
      [&](gbx::Index i, gbx::Index j) { return a.extract_element(i, j); },
      [&](gbx::Index i, gbx::Index j) { return b.extract_element(i, j); },
      a.epoch(), b.epoch());
}

/// Optional-returning facade over snapshot_diff, for callers that must
/// tolerate snapshots whose diffable structure may have been taken away
/// under them (analytics::IncrementalEngine). For plain snapshots the
/// diff always exists, so this overload simply wraps it; governed
/// handles (hier::GovernedSnapshot, memory_governor.hpp) overload it to
/// return nullopt once eviction has compacted either image — the signal
/// to fall back to a counted full recompute.
template <class Snap>
auto try_snapshot_diff(const Snap& a, const Snap& b)
    -> std::optional<decltype(snapshot_diff(a, b))> {
  return snapshot_diff(a, b);
}

}  // namespace hier
