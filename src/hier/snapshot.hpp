// hier/snapshot.hpp — epoch-based consistent read snapshots.
//
// The paper completes "all pending updates for analysis" by summing the
// layers: A = Σ Ai. The seed implementation could only do that on a
// quiesced matrix — every reader had to drain the stream first. This
// header is the concurrent answer: a snapshot is a set of *immutable
// per-level views* (gbx::MatrixView) published at a batch boundary,
// stamped with the epoch (number of updates applied) it represents.
// Copy-on-fold in gbx::Matrix guarantees the views never change after
// publication, so analytics run on them while ingest keeps streaming —
// the same immutable-version discipline as an MVCC storage engine.
//
// Three sources produce snapshots:
//   * HierMatrix::freeze()      — single matrix, caller's thread.
//   * ParallelStream::snapshot()— per-lane freeze at each lane's next
//     batch boundary, workers never stop (lane watermarks record the
//     exact submitted-batch prefix each lane contributed).
//   * ShardedHier::freeze()     — all shards frozen inside one exclusive
//     section, so the result contains only whole cross-shard batches.
//
// SnapshotEngine wraps any of the three behind one acquire() facade and
// tracks epochs across successive snapshots.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/monoid.hpp"
#include "gbx/reduce.hpp"
#include "gbx/view.hpp"
#include "hier/snapshot_source.hpp"
#include "hier/stats.hpp"
#include "hier/tier.hpp"

namespace hier {

namespace detail {

/// Deduplicate a block-pointer list in place (drop nulls and repeats).
template <class T>
void dedupe_blocks(std::vector<const gbx::Dcsr<T>*>& blocks) {
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  blocks.erase(std::remove(blocks.begin(), blocks.end(), nullptr),
               blocks.end());
}

/// Identity-deduped heap bytes of a block list — THE definition of a
/// snapshot footprint (HierSnapshot/SnapshotSet::memory_bytes and the
/// HierStats.memory_bytes freeze() records all share it).
template <class T>
std::size_t deduped_bytes(std::vector<const gbx::Dcsr<T>*> blocks) {
  dedupe_blocks(blocks);
  std::size_t n = 0;
  for (const auto* b : blocks) n += b->memory_bytes();
  return n;
}

/// Exact number of distinct coordinates across a set of frozen blocks,
/// counted by a k-way union scan — nothing is materialized (block
/// counts are small, so linear cursor scans beat a heap). The single
/// definition behind HierSnapshot::nvals AND SnapshotSet::nvals.
template <class T>
std::size_t count_distinct_coords(std::vector<const gbx::Dcsr<T>*> bs) {
  dedupe_blocks(bs);  // aliased blocks contribute one copy
  bs.erase(std::remove_if(bs.begin(), bs.end(),
                          [](const auto* b) { return b->empty(); }),
           bs.end());
  if (bs.empty()) return 0;
  if (bs.size() == 1) return bs.front()->nnz();

  const std::size_t L = bs.size();
  std::vector<std::size_t> rk(L, 0);   // row-list cursor per block
  std::vector<gbx::Offset> ck(L);      // column cursor within the row
  std::vector<std::size_t> active(L);  // blocks containing the row
  std::size_t count = 0;
  for (;;) {
    // Next row = min over the blocks' row cursors.
    gbx::Index row = gbx::kIndexMax;
    bool any = false;
    for (std::size_t b = 0; b < L; ++b) {
      if (rk[b] >= bs[b]->rows().size()) continue;
      const gbx::Index r = bs[b]->rows()[rk[b]];
      if (!any || r < row) row = r;
      any = true;
    }
    if (!any) break;
    std::size_t na = 0;
    for (std::size_t b = 0; b < L; ++b) {
      if (rk[b] < bs[b]->rows().size() && bs[b]->rows()[rk[b]] == row)
        active[na++] = b;
    }
    if (na == 1) {
      const auto* blk = bs[active[0]];
      const std::size_t k = rk[active[0]]++;
      count += static_cast<std::size_t>(blk->ptr()[k + 1] - blk->ptr()[k]);
      continue;
    }
    // Distinct-column count across the active blocks' sorted segments.
    for (std::size_t a = 0; a < na; ++a)
      ck[active[a]] = bs[active[a]]->ptr()[rk[active[a]]];
    for (;;) {
      gbx::Index col = gbx::kIndexMax;
      bool have = false;
      for (std::size_t a = 0; a < na; ++a) {
        const std::size_t b = active[a];
        if (ck[b] >= bs[b]->ptr()[rk[b] + 1]) continue;
        const gbx::Index c = bs[b]->cols()[ck[b]];
        if (!have || c < col) col = c;
        have = true;
      }
      if (!have) break;
      ++count;
      for (std::size_t a = 0; a < na; ++a) {
        const std::size_t b = active[a];
        if (ck[b] < bs[b]->ptr()[rk[b] + 1] && bs[b]->cols()[ck[b]] == col)
          ++ck[b];
      }
    }
    for (std::size_t a = 0; a < na; ++a) ++rk[active[a]];
  }
  return count;
}

/// Classify a snapshot's deduped blocks against the source's current
/// (live) blocks: bytes still shared with the live structure cost the
/// reader nothing extra; the rest is pinned solely for the snapshot.
template <class T>
SnapshotMemory account_blocks(std::vector<const gbx::Dcsr<T>*> snap_blocks,
                              std::vector<const gbx::Dcsr<T>*> live_blocks) {
  dedupe_blocks(snap_blocks);
  dedupe_blocks(live_blocks);
  SnapshotMemory m;
  for (const auto* b : snap_blocks) {
    const auto bytes = static_cast<std::uint64_t>(b->memory_bytes());
    m.total_bytes += bytes;
    if (std::binary_search(live_blocks.begin(), live_blocks.end(), b))
      m.live_bytes += bytes;
    else
      m.pinned_bytes += bytes;
  }
  return m;
}

}  // namespace detail

/// A consistent frozen image of one hierarchical matrix: one immutable
/// view per level plus the cut schedule, statistics, and epoch at the
/// freeze point. All reads are safe concurrently with further streaming
/// into the source matrix.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class HierSnapshot {
 public:
  using value_type = T;
  using matrix_type = gbx::Matrix<T, AddMonoid>;

  HierSnapshot() = default;

  /// `tier` (default: none) is the frozen image of the source's demoted
  /// runs; all read paths fold it between the upper levels and the
  /// resident bottom — see the canonical-order note on fold_element_into.
  HierSnapshot(gbx::Index nrows, gbx::Index ncols,
               std::vector<gbx::MatrixView<T>> levels,
               std::vector<std::size_t> cuts, HierStats stats,
               std::uint64_t epoch, TierView<T, AddMonoid> tier = {})
      : nrows_(nrows),
        ncols_(ncols),
        levels_(std::move(levels)),
        cuts_(std::move(cuts)),
        stats_(std::move(stats)),
        epoch_(epoch),
        tier_(std::move(tier)) {}

  gbx::Index nrows() const { return nrows_; }
  gbx::Index ncols() const { return ncols_; }
  std::size_t num_levels() const { return levels_.size(); }
  const gbx::MatrixView<T>& level(std::size_t i) const { return levels_[i]; }

  /// Number of update() calls the frozen image contains — the snapshot's
  /// position in the source's update sequence.
  std::uint64_t epoch() const { return epoch_; }

  const std::vector<std::size_t>& cuts() const { return cuts_; }
  const HierStats& stats() const { return stats_; }

  bool empty() const {
    if (tier_.demoted()) return false;
    for (const auto& v : levels_) if (!v.empty()) return false;
    return true;
  }

  /// True when this image carries demoted (out-of-core) runs.
  bool has_demoted() const { return tier_.demoted(); }

  /// The frozen demoted-run image (absent unless the source demoted).
  const TierView<T, AddMonoid>& tier_view() const { return tier_; }

  /// Serialized bytes the frozen demoted runs pin in the block store.
  std::uint64_t store_bytes() const { return tier_.store_bytes(); }

  /// Sum of per-level entry counts (coordinates living in several levels
  /// counted once per level) — the bound cut thresholds act on. Demoted
  /// runs count like levels: once per run.
  std::size_t nvals_bound() const {
    std::size_t n = static_cast<std::size_t>(tier_.entries_bound());
    for (const auto& v : levels_) n += v.nvals();
    return n;
  }

  /// Exact number of distinct coordinates of Σ Ai, counted by a k-way
  /// union scan over the frozen level blocks — no resident level is
  /// copied and the sum is never materialized (the HierMatrix::nvals
  /// fast path). Demoted segments are decoded transiently into the scan.
  std::size_t nvals() const {
    std::vector<const gbx::Dcsr<T>*> bs;
    std::vector<std::shared_ptr<const gbx::Dcsr<T>>> keepalive;
    collect_count_blocks(bs, keepalive);
    return detail::count_distinct_coords(std::move(bs));
  }

  /// Continue a flat left fold of acc across THIS image's contributions
  /// in canonical order: upper levels shallowest-first, then the demoted
  /// runs oldest-first, then the resident bottom. This single definition
  /// is shared by extract_element here AND SnapshotSet::extract_element
  /// (which must keep one flat chain across parts to stay bit-identical
  /// with to_matrix's plus_assign order).
  void fold_element_into(std::optional<T>& acc, gbx::Index i,
                         gbx::Index j) const {
    auto fold = [&acc](std::optional<T> x) {
      if (!x) return;
      acc = acc ? std::optional<T>(AddMonoid::apply(*acc, *x)) : x;
    };
    const std::size_t nl = levels_.size();
    for (std::size_t l = 0; l + 1 < nl; ++l) fold(levels_[l].get(i, j));
    if (tier_.demoted()) fold(tier_.extract(i, j));
    if (nl > 0) fold(levels_[nl - 1].get(i, j));
  }

  /// Entry lookup across levels (and demoted runs), duplicates combined
  /// with the fold monoid: the value A(i,j) of the logical matrix Σ Ai.
  std::optional<T> extract_element(gbx::Index i, gbx::Index j) const {
    std::optional<T> acc;
    fold_element_into(acc, i, j);
    return acc;
  }

  /// Fold every value of Σ Ai into one scalar with the snapshot's own
  /// monoid, without ever materializing the sum: reduce each frozen
  /// level, then combine the per-level results. This is only valid for
  /// the fold monoid itself — a coordinate split across levels holds
  /// partial values that AddMonoid recombines transparently here; any
  /// other reduction monoid would see the partials, so for those
  /// materialize first (reduce_scalar over to_matrix()).
  T reduce() const {
    auto acc = AddMonoid::identity();
    const std::size_t nl = levels_.size();
    for (std::size_t l = 0; l + 1 < nl; ++l)
      acc = AddMonoid::apply(acc, gbx::reduce_scalar<AddMonoid>(levels_[l]));
    tier_.for_each_block([&acc](const matrix_type& m) {
      acc = AddMonoid::apply(acc, gbx::reduce_scalar<AddMonoid>(m.view()));
    });
    if (nl > 0)
      acc = AddMonoid::apply(acc,
                             gbx::reduce_scalar<AddMonoid>(levels_[nl - 1]));
    return acc;
  }

  /// acc ⊕= this image in canonical order (the plus_assign twin of
  /// fold_element_into; to_matrix here and in SnapshotSet share it).
  void fold_into(matrix_type& acc) const {
    const std::size_t nl = levels_.size();
    for (std::size_t l = 0; l + 1 < nl; ++l) acc.plus_assign(levels_[l]);
    tier_.materialize_into(acc);
    if (nl > 0) acc.plus_assign(levels_[nl - 1]);
  }

  /// Materialize A = Σ Ai as a standalone matrix. This is the bridge to
  /// every existing algo/ and analytics/ kernel: the result is an
  /// ordinary gbx::Matrix, fully detached from the streaming source
  /// (demoted runs are read back through the checksummed store).
  matrix_type to_matrix() const {
    GBX_CHECK_VALUE(nrows_ > 0 && ncols_ > 0,
                    "to_matrix on a default-constructed snapshot");
    matrix_type acc(nrows_, ncols_);
    fold_into(acc);
    return acc;
  }

  /// Materialize-and-release (the hier::MemoryGovernor eviction step):
  /// return an equivalent snapshot whose only level is a *privately
  /// owned* copy of Σ Ai, so dropping the original releases every
  /// shared-block pin this image held. Read-path exactness is preserved
  /// bit-for-bit: the compact block carries to_matrix()'s own per-
  /// coordinate left-fold values, which extract_element and the delta
  /// machinery already define as THE value of the logical matrix.
  /// (reduce() afterwards folds the compact block in coordinate order —
  /// equal to reduce_scalar(to_matrix()), which for non-associative-in-
  /// bits float folds may differ in final ulps from the levelwise
  /// reduce(), exactly as the two read paths always could.)
  /// Epoch, cuts, and stats ride along unchanged; num_levels becomes 1.
  /// A demoted image compacts to a fully-resident one — the store pins
  /// (and the blocks, once no other image references them) are released.
  HierSnapshot compacted() const {
    if (nrows_ == 0 || ncols_ == 0) return *this;  // default-constructed
    matrix_type m = to_matrix();
    // to_matrix aliases the block outright when a single level is
    // non-empty; a compacted snapshot must OWN its block, else the
    // "released" pin would silently survive inside the alias.
    if (auto h = m.storage_handle()) {
      for (const auto& v : levels_) {
        if (v.shared_storage().get() == h.get()) {
          m = matrix_type::adopt(nrows_, ncols_, gbx::Dcsr<T>(*h));
          break;
        }
      }
    }
    std::vector<gbx::MatrixView<T>> lv;
    lv.push_back(m.view());
    return HierSnapshot(nrows_, ncols_, std::move(lv), cuts_, stats_, epoch_);
  }

  /// Heap bytes this snapshot holds, deduplicated by block identity:
  /// a block aliased by several levels (plus_assign aliasing) is counted
  /// once. Resident only — demoted runs are store bytes (store_bytes()),
  /// not heap. Whether those bytes are an *extra* cost depends on the
  /// live source — see hier::snapshot_memory / SnapshotMemory for the
  /// pinned-vs-live split.
  std::size_t memory_bytes() const {
    std::vector<const gbx::Dcsr<T>*> blocks;
    collect_blocks(blocks);
    return detail::deduped_bytes(std::move(blocks));
  }

  /// Append this snapshot's raw block pointers (for identity-based
  /// accounting across snapshots/parts; nulls from empty views skipped).
  /// Resident blocks only — identity accounting is about heap sharing,
  /// which demoted runs do not participate in.
  void collect_blocks(std::vector<const gbx::Dcsr<T>*>& out) const {
    for (const auto& v : levels_)
      if (v.shared_storage()) out.push_back(v.shared_storage().get());
  }

  /// Resident blocks PLUS transiently decoded demoted segments, for the
  /// distinct-coordinate union scan (nvals here and in SnapshotSet).
  /// `keepalive` owns the decoded blocks for as long as the pointers in
  /// `out` are used.
  void collect_count_blocks(
      std::vector<const gbx::Dcsr<T>*>& out,
      std::vector<std::shared_ptr<const gbx::Dcsr<T>>>& keepalive) const {
    collect_blocks(out);
    tier_.for_each_block([&](const matrix_type& m) {
      keepalive.push_back(m.shared_storage());
      out.push_back(keepalive.back().get());
    });
  }

 private:
  gbx::Index nrows_ = 0;
  gbx::Index ncols_ = 0;
  std::vector<gbx::MatrixView<T>> levels_;
  std::vector<std::size_t> cuts_;
  HierStats stats_;
  std::uint64_t epoch_ = 0;
  TierView<T, AddMonoid> tier_;
};

/// Per-part watermark: how much of that part's submitted sequence the
/// snapshot contains.
struct SnapshotWatermark {
  std::uint64_t batches = 0;  ///< update batches applied before the freeze
  std::uint64_t entries = 0;  ///< raw entries inside that prefix
};

/// A stitched snapshot over several independent hierarchical matrices
/// (ParallelStream lanes, ShardedHier shards): one HierSnapshot per part
/// plus the watermark saying which submitted-batch prefix it represents.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class SnapshotSet {
 public:
  using value_type = T;
  using part_type = HierSnapshot<T, AddMonoid>;
  using matrix_type = gbx::Matrix<T, AddMonoid>;

  SnapshotSet() = default;

  SnapshotSet(std::vector<part_type> parts,
              std::vector<SnapshotWatermark> marks, std::uint64_t epoch)
      : parts_(std::move(parts)), marks_(std::move(marks)), epoch_(epoch) {
    GBX_CHECK_DIM(parts_.size() == marks_.size(),
                  "snapshot parts/watermarks size mismatch");
  }

  std::size_t size() const { return parts_.size(); }
  const part_type& part(std::size_t p) const { return parts_[p]; }
  const SnapshotWatermark& watermark(std::size_t p) const { return marks_[p]; }

  /// Source-wide epoch: for ShardedHier the number of whole batches the
  /// snapshot contains; for ParallelStream the sum of lane watermarks.
  std::uint64_t epoch() const { return epoch_; }

  std::uint64_t total_batches() const {
    std::uint64_t n = 0;
    for (const auto& m : marks_) n += m.batches;
    return n;
  }
  std::uint64_t total_entries() const {
    std::uint64_t n = 0;
    for (const auto& m : marks_) n += m.entries;
    return n;
  }

  /// Entry lookup across every part and level, duplicates combined with
  /// the fold monoid in part-major order — the exact per-coordinate
  /// combination order of to_matrix(), so the two read paths agree
  /// bit-for-bit (delta extraction relies on this).
  std::optional<T> extract_element(gbx::Index i, gbx::Index j) const {
    std::optional<T> acc;
    // One flat fold chain across all parts (each part continues it in
    // its own canonical level/tier order) — pre-folding per part would
    // re-associate the chain and break bit-identity with to_matrix().
    for (const auto& p : parts_) p.fold_element_into(acc, i, j);
    return acc;
  }

  /// Exact number of distinct coordinates of the whole union
  /// Σ_p Σ_i A_{p,i}: the same k-way union scan as HierSnapshot::nvals,
  /// over every part's blocks at once — coordinates shared between
  /// parts (overlapping ParallelStream lanes) are counted once, and
  /// nothing is materialized.
  std::size_t nvals() const {
    std::vector<const gbx::Dcsr<T>*> bs;
    std::vector<std::shared_ptr<const gbx::Dcsr<T>>> keepalive;
    for (const auto& p : parts_) p.collect_count_blocks(bs, keepalive);
    return detail::count_distinct_coords(std::move(bs));
  }

  /// Fold all parts' values into one scalar with the fold monoid (no
  /// materialization; same partial-value caveat as HierSnapshot::reduce).
  T reduce() const {
    auto acc = AddMonoid::identity();
    for (const auto& p : parts_) acc = AddMonoid::apply(acc, p.reduce());
    return acc;
  }

  /// Materialize the union Σ_p Σ_i A_{p,i} as one matrix.
  matrix_type to_matrix() const {
    GBX_CHECK_VALUE(!parts_.empty(), "to_matrix on an empty snapshot set");
    matrix_type acc(parts_.front().nrows(), parts_.front().ncols());
    for (const auto& p : parts_) p.fold_into(acc);
    return acc;
  }

  /// Materialize-and-release for the whole set (mask == nullptr): the
  /// exact Σ_p Σ_i image is folded ONCE into a privately-owned block
  /// held by part 0, and every other part becomes an empty shell that
  /// keeps its cuts/stats/epoch. Reads stay bit-identical by
  /// construction — to_matrix() IS the definition of the logical value,
  /// and the part-major extract_element over [compact, empty, ...]
  /// reads that block verbatim. Watermarks and the set epoch survive.
  ///
  /// With a mask, only the selected parts are compacted individually
  /// (their own levels pre-folded), the rest keep sharing their
  /// original blocks. Pre-folding one part re-associates the per-
  /// coordinate fold chain at coordinates other parts also hold, so
  /// masked compaction is bit-exact only when parts are coordinate-
  /// disjoint (ShardedHier's row-hash shards) or the fold is bit-
  /// associative (integer plus, min, max) — which is why the governor
  /// applies per-part budgets only to sharded sources.
  SnapshotSet compacted(const std::vector<bool>* mask = nullptr) const {
    if (parts_.empty()) return *this;
    if (mask != nullptr) {
      GBX_CHECK_DIM(mask->size() == parts_.size(),
                    "compacted part mask size mismatch");
      std::vector<part_type> parts;
      parts.reserve(parts_.size());
      for (std::size_t p = 0; p < parts_.size(); ++p) {
        if ((*mask)[p])
          parts.push_back(parts_[p].compacted());
        else
          parts.push_back(parts_[p]);
      }
      return SnapshotSet(std::move(parts), marks_, epoch_);
    }
    matrix_type m = to_matrix();
    // Single-non-empty-level sets alias the block through plus_assign;
    // the compact image must OWN its block for the pins to really drop.
    if (auto h = m.storage_handle()) {
      std::vector<const gbx::Dcsr<T>*> blocks;
      collect_blocks(blocks);
      for (const auto* b : blocks) {
        if (b == h.get()) {
          m = matrix_type::adopt(m.nrows(), m.ncols(), gbx::Dcsr<T>(*h));
          break;
        }
      }
    }
    std::vector<part_type> parts;
    parts.reserve(parts_.size());
    for (std::size_t p = 0; p < parts_.size(); ++p) {
      std::vector<gbx::MatrixView<T>> lv;
      if (p == 0) lv.push_back(m.view());
      parts.push_back(part_type(parts_[p].nrows(), parts_[p].ncols(),
                                std::move(lv), parts_[p].cuts(),
                                parts_[p].stats(), parts_[p].epoch()));
    }
    return SnapshotSet(std::move(parts), marks_, epoch_);
  }

  /// Heap bytes held by the whole set, deduplicated by block identity
  /// across parts AND levels (blocks shared between parts — e.g. after
  /// merge surgery — are counted once).
  std::size_t memory_bytes() const {
    std::vector<const gbx::Dcsr<T>*> blocks;
    collect_blocks(blocks);
    return detail::deduped_bytes(std::move(blocks));
  }

  /// Append every part's raw block pointers (identity accounting).
  void collect_blocks(std::vector<const gbx::Dcsr<T>*>& out) const {
    for (const auto& p : parts_) p.collect_blocks(out);
  }

 private:
  std::vector<part_type> parts_;
  std::vector<SnapshotWatermark> marks_;
  std::uint64_t epoch_ = 0;
};

/// Snapshot of a ParallelStream: one part per lane.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
using StreamSnapshot = SnapshotSet<T, AddMonoid>;

/// Snapshot of a ShardedHier: one part per shard.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
using ShardedSnapshot = SnapshotSet<T, AddMonoid>;

/// Uniform reader facade over every snapshot source (HierMatrix,
/// ShardedHier, ParallelStream — anything with freeze()). Reader threads
/// share one engine; acquire() is as thread-safe as the source's freeze.
template <class Source>
class SnapshotEngine {
 public:
  /// Warning callback: a reader is holding epoch `held` while the engine
  /// has already seen `current` — the held snapshot pins blocks the
  /// writer may long have folded past (see SnapshotMemory).
  using StalenessHook =
      std::function<void(std::uint64_t held, std::uint64_t current)>;

  explicit SnapshotEngine(Source& source) : source_(&source) {}

  /// Take a fresh consistent snapshot and record its epoch. Routed
  /// through the unified SnapshotSource entry point (unqualified, so a
  /// source's own ADL overload wins — see hier/snapshot_source.hpp).
  auto acquire() {
    static_assert(is_snapshot_source_v<Source>,
                  "SnapshotEngine requires a SnapshotSource "
                  "(see hier/snapshot_source.hpp)");
    auto snap = acquire_snapshot(*source_);
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    // CAS-max: with concurrent readers, a slower thread's older epoch
    // must not overwrite a newer one — last_epoch() never goes back.
    std::uint64_t seen = last_epoch_.load(std::memory_order_relaxed);
    while (seen < snap.epoch() &&
           !last_epoch_.compare_exchange_weak(seen, snap.epoch(),
                                              std::memory_order_relaxed)) {
    }
    return snap;
  }

  /// Install the staleness warning: whenever check_staleness() observes a
  /// held epoch more than `max_epoch_lag` behind the newest acquired
  /// epoch, `hook` fires. Install before readers start (not synchronized
  /// against concurrent check_staleness calls).
  void set_staleness_hook(std::uint64_t max_epoch_lag, StalenessHook hook) {
    staleness_lag_ = max_epoch_lag;
    staleness_hook_ = std::move(hook);
  }

  /// Readers holding a snapshot call this to self-report; fires the hook
  /// (and returns true) when the held epoch lags too far behind the
  /// engine's newest. IncrementalEngine calls it on every refresh for
  /// the snapshot it carried between passes.
  bool check_staleness(std::uint64_t held_epoch) const {
    const std::uint64_t current = last_epoch_.load(std::memory_order_relaxed);
    if (current <= held_epoch) return false;
    if (current - held_epoch <= staleness_lag_) return false;
    if (staleness_hook_) staleness_hook_(held_epoch, current);
    return true;
  }

  template <class Snap>
  bool check_staleness(const Snap& held) const {
    return check_staleness(held.epoch());
  }

  std::uint64_t snapshots_taken() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  /// Highest epoch among acquired snapshots (0 before the first);
  /// monotone even with concurrent readers.
  std::uint64_t last_epoch() const {
    return last_epoch_.load(std::memory_order_relaxed);
  }

 private:
  Source* source_;
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<std::uint64_t> last_epoch_{0};
  std::uint64_t staleness_lag_ = ~std::uint64_t{0};  ///< default: never warn
  StalenessHook staleness_hook_;
};

template <class T, class AddMonoid>
class HierMatrix;  // hier/hier_matrix.hpp
template <class T, class AddMonoid>
class InstanceArray;  // hier/instance_array.hpp

/// Pinned-vs-live accounting of a snapshot against the matrix it froze:
/// blocks still referenced by the live levels are "live" (holding the
/// snapshot costs nothing extra); blocks the writer has folded past are
/// "pinned" (retained solely for this reader). Call on the matrix's
/// owning thread (or while it is quiescent): the live block peek is
/// side-effect-free but not synchronized against a concurrent writer.
template <class T, class M>
SnapshotMemory snapshot_memory(const HierSnapshot<T, M>& snap,
                               const HierMatrix<T, M>& source) {
  std::vector<const gbx::Dcsr<T>*> snap_blocks, live_blocks;
  snap.collect_blocks(snap_blocks);
  for (std::size_t i = 0; i < source.num_levels(); ++i)
    if (auto h = source.level(i).storage_handle())
      live_blocks.push_back(h.get());
  return detail::account_blocks(std::move(snap_blocks),
                                std::move(live_blocks));
}

/// Set-level accounting: one SnapshotSet (ParallelStream lanes) against
/// the InstanceArray backing it, parts matched to instances by position.
/// Same threading caveat as the single-matrix overload.
template <class T, class M>
SnapshotMemory snapshot_memory(const SnapshotSet<T, M>& snap,
                               const InstanceArray<T, M>& source) {
  std::vector<const gbx::Dcsr<T>*> snap_blocks, live_blocks;
  snap.collect_blocks(snap_blocks);
  for (std::size_t p = 0; p < source.size(); ++p) {
    const auto& m = source.instance(p);
    for (std::size_t i = 0; i < m.num_levels(); ++i)
      if (auto h = m.level(i).storage_handle()) live_blocks.push_back(h.get());
  }
  return detail::account_blocks(std::move(snap_blocks),
                                std::move(live_blocks));
}

}  // namespace hier
