// hier/tier.hpp — out-of-core demotion of the cold bottom level.
//
// The paper's hierarchy exists so the oldest, largest, coldest level
// can live on slower storage while the small hot levels absorb the
// insert stream. This header is that slow tier: demote() moves the
// resident bottom level's compressed block into an immutable *run* of
// serialized row-range segments inside a store::BlockStore, then resets
// the resident level — an LSM shape (runs accumulate per demotion,
// compaction merges them) layered over the existing checksummed
// gbx::serialize container, so every demoted byte is end-to-end
// verified on the way back in.
//
// Read model (the bit-exactness contract): the logical bottom level is
// the left fold, in arrival order, of the demoted runs (oldest first)
// followed by the resident bottom. extract/materialize/HierSnapshot all
// use exactly that grouping, so every read path of a demoted matrix
// agrees with every other bit-for-bit, unconditionally. Against a
// never-demoted twin, demotion splits the per-coordinate fold chain at
// demote boundaries — bit-identical whenever the fold is associative in
// bits (integer plus/min/max, or float over exactly-representable
// values, the suite's discipline), the same caveat SnapshotSet::
// compacted(mask) already documents for per-part compaction.
//
// Concurrency: demote()/compact() follow HierMatrix's owning-thread
// discipline. Readers (snapshots on any thread) hold an immutable
// TierImage published through TierView — runs are refcounted, and a
// run's blocks are erased from the store only when the last image
// referencing it dies (RAII GC), so compaction never pulls blocks out
// from under a concurrent reader. The TierDirectory (bloom-guarded
// (run, row) → block map over the PR-seed B-tree/LSM stores) and the
// BlockStore are internally locked.
//
// The ingest hot path is untouched: cascade folds never consult the
// tier, and demotion runs only from explicit calls (demote_now,
// enforce_residency — the MemoryGovernor's batch-granularity hook).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/serialize.hpp"
#include "gbx/thread_annotations.hpp"
#include "store/block_store.hpp"
#include "store/bloom.hpp"
#include "store/btree_store.hpp"
#include "store/lsm_store.hpp"

namespace hier {

struct DemotionConfig {
  /// Serialized target size of one segment block (a run splits the
  /// level's rows greedily at this granularity, so point probes decode
  /// one segment, not the whole level).
  std::size_t segment_bytes = 256u << 10;

  /// Runs accumulated before compact() merges them into one (the LSM
  /// read-amplification bound).
  std::size_t max_runs = 8;

  /// Which seed store indexes (run, row) → block id.
  enum class Directory { kBtree, kLsm };
  Directory directory = Directory::kBtree;

  /// False-positive rate of the row bloom filter guarding point reads.
  double bloom_fp_rate = 0.01;
};

struct TierStats {
  std::uint64_t demotions = 0;
  std::uint64_t compactions = 0;
  std::uint64_t entries_demoted = 0;  ///< entries moved out across demotions
  std::uint64_t bytes_demoted = 0;    ///< serialized bytes written
};

namespace detail {

/// Block ids travel through the directory stores' double values; doubles
/// hold integers exactly up to 2^53 — far beyond any real block count,
/// but checked rather than assumed.
inline constexpr std::uint64_t kMaxOrdinalInDouble = 1ull << 53;

}  // namespace detail

/// Bloom-guarded (run, row) → block-id index over the seed key/value
/// stores (Key{row, run} keeps one row's entries adjacent in the B-tree
/// order). Both stores accumulate duplicate keys with +=, so every
/// (run, row) key is inserted exactly once — each row lives in exactly
/// one segment of a run. Internally locked: snapshot readers probe from
/// arbitrary threads (LSM gets mutate bloom-skip stats even when const).
class TierDirectory {
 public:
  explicit TierDirectory(DemotionConfig::Directory kind,
                         double bloom_fp_rate = 0.01)
      : kind_(kind),
        bloom_fp_rate_(bloom_fp_rate),
        bloom_capacity_(1u << 10),
        bloom_(bloom_capacity_, bloom_fp_rate) {
    if (kind_ == DemotionConfig::Directory::kBtree) {
      btree_ = std::make_unique<store::BTreeStore>(/*enable_wal=*/false);
    } else {
      store::LsmOptions opt;
      opt.enable_wal = false;  // durability lives in the BlockStore
      opt.bloom_fp_rate = bloom_fp_rate;
      lsm_ = std::make_unique<store::LsmStore>(opt);
    }
  }

  void insert(std::uint64_t run, gbx::Index row, store::BlockId block) {
    GBX_CHECK_VALUE(block < detail::kMaxOrdinalInDouble &&
                        run < detail::kMaxOrdinalInDouble,
                    "tier directory: ordinal exceeds exact double range");
    gbx::ScopedLock lk(mu_);
    const store::Key k{row, run};
    if (btree_) btree_->insert(k, static_cast<store::Value>(block));
    else lsm_->insert(k, static_cast<store::Value>(block));
    ++entries_;
    if (entries_ > 2 * bloom_capacity_) rebuild_bloom_locked();
    bloom_.add(store::Key{row, 0});
  }

  /// False means NO run holds the row — the probe skips the store
  /// entirely (the read path's fast negative).
  bool may_contain(gbx::Index row) const {
    gbx::ScopedLock lk(mu_);
    ++probes_;
    if (bloom_.may_contain(store::Key{row, 0})) return true;
    ++bloom_negatives_;
    return false;
  }

  std::optional<store::BlockId> lookup(std::uint64_t run,
                                       gbx::Index row) const {
    gbx::ScopedLock lk(mu_);
    const store::Key k{row, run};
    const auto v = btree_ ? btree_->get(k) : lsm_->get(k);
    if (!v) return std::nullopt;
    return static_cast<store::BlockId>(*v);
  }

  std::uint64_t entries() const {
    gbx::ScopedLock lk(mu_);
    return entries_;
  }
  std::uint64_t probes() const {
    gbx::ScopedLock lk(mu_);
    return probes_;
  }
  std::uint64_t bloom_negatives() const {
    gbx::ScopedLock lk(mu_);
    return bloom_negatives_;
  }
  DemotionConfig::Directory kind() const { return kind_; }

 private:
  /// Grow the bloom filter by rescanning the store's keys (the filter
  /// has no remove/resize; saturation would erode the negative-probe
  /// fast path to useless).
  void rebuild_bloom_locked() GBX_REQUIRES(mu_) {
    while (entries_ > bloom_capacity_) bloom_capacity_ *= 2;
    bloom_ = store::BloomFilter(bloom_capacity_, bloom_fp_rate_);
    auto add = [this](const store::Key& k, store::Value) {
      bloom_.add(store::Key{k.row, 0});
    };
    if (btree_) btree_->scan(add);
    else lsm_->scan(add);
  }

  mutable gbx::Mutex mu_;
  DemotionConfig::Directory kind_;  ///< immutable after construction
  double bloom_fp_rate_;            ///< immutable after construction
  std::size_t bloom_capacity_ GBX_GUARDED_BY(mu_);
  store::BloomFilter bloom_ GBX_GUARDED_BY(mu_);
  // The pointers are set once in the constructor; the stores they point
  // at are only ever touched with mu_ held (LSM mutates bloom-skip stats
  // even on const probes).
  std::unique_ptr<store::BTreeStore> btree_ GBX_PT_GUARDED_BY(mu_);
  std::unique_ptr<store::LsmStore> lsm_ GBX_PT_GUARDED_BY(mu_);
  std::uint64_t entries_ GBX_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t probes_ GBX_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t bloom_negatives_ GBX_GUARDED_BY(mu_) = 0;
};

/// One immutable demoted run: the serialized image of the bottom level
/// at one demote(), split into row-range segment blocks. Destroying the
/// last reference erases the blocks from the store (best-effort — a
/// failing store must not turn reader teardown into a crash; leaked
/// blocks are reclaimed by FileBackend::vacuum or store teardown).
struct TierRun {
  TierRun(store::BlockStore* s, std::uint64_t run_id)
      : store(s), id(run_id) {}
  TierRun(const TierRun&) = delete;
  TierRun& operator=(const TierRun&) = delete;
  ~TierRun() {
    for (const auto b : blocks) {
      try {
        store->erase(b);
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
  }

  store::BlockStore* store;
  std::uint64_t id;
  std::vector<store::BlockId> blocks;  ///< segments in ascending row order
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;  ///< serialized payload bytes
};

/// Immutable published state of the tier: the run list (oldest first)
/// plus the directory resolving their rows. Snapshots hold one by
/// shared_ptr; demote/compact swap in a successor without touching it.
struct TierImage {
  std::vector<std::shared_ptr<const TierRun>> runs;
  std::shared_ptr<const TierDirectory> dir;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

/// Read-only handle on a tier image — what freeze() embeds in a
/// HierSnapshot. Default-constructed means "no demoted data". All reads
/// decode through the BlockStore's checksummed get(), so torn or
/// corrupted storage throws instead of returning wrong values.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class TierView {
 public:
  using matrix_type = gbx::Matrix<T, AddMonoid>;

  TierView() = default;
  TierView(std::shared_ptr<const TierImage> image, store::BlockStore* st,
           gbx::Index nrows, gbx::Index ncols)
      : image_(std::move(image)), store_(st), nrows_(nrows), ncols_(ncols) {}

  /// True when demoted data exists (an empty run list reads as absent).
  bool demoted() const { return image_ && !image_->runs.empty(); }

  /// Entry-count bound across runs (coordinates in several runs counted
  /// once per run, like the resident levels' nvals_bound).
  std::uint64_t entries_bound() const { return image_ ? image_->entries : 0; }

  /// Serialized bytes the demoted runs occupy in the store.
  std::uint64_t store_bytes() const { return image_ ? image_->bytes : 0; }

  std::size_t num_runs() const { return image_ ? image_->runs.size() : 0; }

  /// Demoted contribution at (i, j): the left fold, oldest run first, of
  /// every run's value there. Bloom-guarded — a negative row probe skips
  /// the directory and store entirely.
  std::optional<T> extract(gbx::Index i, gbx::Index j) const {
    if (!demoted()) return std::nullopt;
    if (!image_->dir->may_contain(i)) return std::nullopt;
    std::optional<T> acc;
    for (const auto& run : image_->runs) {
      const auto blk = image_->dir->lookup(run->id, i);
      if (!blk) continue;
      const matrix_type seg = decode_block(*blk);
      if (auto x = seg.storage().get(i, j)) {
        acc = acc ? std::optional<T>(AddMonoid::apply(*acc, *x)) : x;
      }
    }
    return acc;
  }

  /// acc ⊕= (every run, oldest first) — the materialization side of the
  /// same grouping extract() uses, so the two read paths agree
  /// bit-for-bit. Segments within a run are row-disjoint.
  void materialize_into(matrix_type& acc) const {
    if (!demoted()) return;
    GBX_CHECK_DIM(acc.nrows() == nrows_ && acc.ncols() == ncols_,
                  "tier materialize dimension mismatch");
    for (const auto& run : image_->runs)
      for (const auto b : run->blocks) acc.plus_assign(decode_block(b).view());
  }

  /// Decode every segment block in fold order: f(const matrix_type&).
  /// (HierSnapshot::nvals feeds the decoded blocks to its union scan.)
  template <class F>
  void for_each_block(F&& f) const {
    if (!demoted()) return;
    for (const auto& run : image_->runs)
      for (const auto b : run->blocks) f(decode_block(b));
  }

  const std::shared_ptr<const TierImage>& image() const { return image_; }

 private:
  matrix_type decode_block(store::BlockId id) const {
    const auto bytes = store_->get(id);  // checksummed; throws on damage
    std::istringstream is(*bytes);
    matrix_type m = gbx::deserialize<T, AddMonoid>(is);
    GBX_CHECK(m.nrows() == nrows_ && m.ncols() == ncols_,
              "tier: demoted segment dimension mismatch");
    return m;
  }

  std::shared_ptr<const TierImage> image_;
  store::BlockStore* store_ = nullptr;
  gbx::Index nrows_ = 0;
  gbx::Index ncols_ = 0;
};

/// The tier itself — owned by a HierMatrix once enable_demotion() runs.
/// demote() and compact() follow the matrix's owning-thread discipline;
/// view() may be called from that thread at any time to publish the
/// current image into a snapshot.
template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class DemotedTier {
 public:
  using matrix_type = gbx::Matrix<T, AddMonoid>;

  DemotedTier(store::BlockStore* st, DemotionConfig cfg, gbx::Index nrows,
              gbx::Index ncols)
      : store_(st), cfg_(cfg), nrows_(nrows), ncols_(ncols) {
    GBX_CHECK_VALUE(store_ != nullptr, "tier: null block store");
    GBX_CHECK_VALUE(cfg_.segment_bytes > 0, "tier: zero segment size");
    GBX_CHECK_VALUE(cfg_.max_runs > 0, "tier: zero run bound");
    auto img = std::make_shared<TierImage>();
    img->dir = dir_ = make_directory();
    publish(std::move(img));
  }

  /// Move `bottom`'s current value into a new demoted run and reset the
  /// resident level (releasing its heap). Returns false when the level
  /// is empty. Exception-safe: a failure while writing (ENOSPC, torn
  /// write surfaced by the store) leaves the image unchanged and the
  /// resident level intact — the half-written run's RAII erases
  /// whatever blocks it managed to put.
  bool demote(matrix_type& bottom) {
    GBX_CHECK_DIM(bottom.nrows() == nrows_ && bottom.ncols() == ncols_,
                  "tier demote dimension mismatch");
    bottom.materialize();
    if (bottom.empty()) return false;
    const gbx::Dcsr<T>& s = bottom.storage();
    auto cur = image();
    // The directory is shared append-only between compactions; entries
    // of a run that failed mid-demote are unreachable garbage (the run
    // id is never reused), swept out at the next compaction.
    auto run = build_run(s, *dir_);
    auto img = std::make_shared<TierImage>();
    img->runs = cur->runs;
    img->runs.push_back(run);
    img->dir = cur->dir;
    img->entries = cur->entries + run->entries;
    img->bytes = cur->bytes + run->bytes;
    publish(std::move(img));
    stats_.demotions += 1;
    stats_.entries_demoted += run->entries;
    stats_.bytes_demoted += run->bytes;
    bottom.reset();
    return true;
  }

  /// Merge all runs into one when the run list exceeds max_runs (read
  /// amplification bound). Merging folds the runs oldest-first — a
  /// prefix regrouping of the per-coordinate chain, so reads through the
  /// compacted image are bit-identical to reads through the old one.
  /// The merged run gets a fresh directory; old images (held by live
  /// snapshots) keep the old directory and blocks until they die.
  bool maybe_compact() {
    if (image()->runs.size() <= cfg_.max_runs) return false;
    compact();
    return true;
  }

  void compact() {
    auto cur = image();
    if (cur->runs.size() <= 1) return;
    matrix_type merged(nrows_, ncols_);
    TierView<T, AddMonoid> v(cur, store_, nrows_, ncols_);
    v.materialize_into(merged);
    merged.materialize();
    auto dir = make_directory();
    auto img = std::make_shared<TierImage>();
    if (!merged.empty()) {
      auto run = build_run(merged.storage(), *dir);
      img->entries = run->entries;
      img->bytes = run->bytes;
      img->runs.push_back(std::move(run));
    }
    img->dir = dir;
    publish(std::move(img));
    dir_ = std::move(dir);
    ++stats_.compactions;
  }

  /// Drop every demoted run (collapse() promotes the tier back into the
  /// resident bottom first, then clears it here).
  void clear() {
    auto img = std::make_shared<TierImage>();
    img->dir = dir_ = make_directory();
    publish(std::move(img));
  }

  /// Publish the current image for a snapshot (cheap: two shared_ptr
  /// copies under the image lock).
  TierView<T, AddMonoid> view() const {
    return TierView<T, AddMonoid>(image(), store_, nrows_, ncols_);
  }

  bool demoted() const { return view().demoted(); }
  std::uint64_t store_bytes() const { return view().store_bytes(); }
  std::uint64_t entries_bound() const { return view().entries_bound(); }
  std::size_t num_runs() const { return view().num_runs(); }
  const TierStats& stats() const { return stats_; }
  const DemotionConfig& config() const { return cfg_; }
  store::BlockStore& store() { return *store_; }
  const TierDirectory& directory() const { return *dir_; }

 private:
  std::shared_ptr<TierDirectory> make_directory() const {
    return std::make_shared<TierDirectory>(cfg_.directory,
                                           cfg_.bloom_fp_rate);
  }

  std::shared_ptr<const TierImage> image() const {
    gbx::ScopedLock lk(img_mu_);
    return image_;
  }

  void publish(std::shared_ptr<const TierImage> img) {
    gbx::ScopedLock lk(img_mu_);
    image_ = std::move(img);
  }

  /// Estimated serialized bytes row position r contributes to a segment.
  std::size_t row_bytes(const gbx::Dcsr<T>& s, std::size_t r) const {
    const auto n = static_cast<std::size_t>(s.ptr()[r + 1] - s.ptr()[r]);
    return n * (sizeof(gbx::Index) + sizeof(T)) + sizeof(gbx::Index) +
           sizeof(gbx::Offset);
  }

  /// Serialize s into segment blocks of ~segment_bytes and index every
  /// row. Blocks are put before their directory entries, and the run is
  /// committed to an image only by the caller — so any throw along the
  /// way unwinds into the run's RAII erase with nothing published.
  std::shared_ptr<TierRun> build_run(const gbx::Dcsr<T>& s,
                                     TierDirectory& dir) {
    auto run = std::make_shared<TierRun>(store_, next_run_id_++);
    const auto& rows = s.rows();
    std::size_t b = 0;
    while (b < rows.size()) {
      std::size_t e = b;
      std::size_t est = 0;
      while (e < rows.size() && (e == b || est < cfg_.segment_bytes)) {
        est += row_bytes(s, e);
        ++e;
      }
      std::ostringstream os;
      gbx::serialize_rows(os, nrows_, ncols_, s, b, e);
      const std::string payload = std::move(os).str();
      const store::BlockId id = store_->allocate();
      run->blocks.push_back(id);  // before put: erase of an unwritten
      store_->put(id, payload);   // id is an idempotent no-op
      run->bytes += payload.size();
      for (std::size_t r = b; r < e; ++r) dir.insert(run->id, rows[r], id);
      b = e;
    }
    run->entries = s.nnz();
    return run;
  }

  store::BlockStore* store_;
  DemotionConfig cfg_;
  gbx::Index nrows_;
  gbx::Index ncols_;
  mutable gbx::Mutex img_mu_;  ///< orders image swaps against view()
  std::shared_ptr<const TierImage> image_ GBX_GUARDED_BY(img_mu_);
  std::shared_ptr<TierDirectory> dir_;  ///< directory of the CURRENT image
  std::uint64_t next_run_id_ = 1;
  TierStats stats_;
};

}  // namespace hier
