// hier/sharded_hier.hpp — concurrent ingest into one logical matrix.
//
// The paper scales by running fully independent instances, one per
// process. ShardedHier extends that idea *within* one logical matrix (an
// extension beyond the paper, in its "tunable for a variety of
// applications" spirit): rows are hash-partitioned across S shards, each
// shard is its own HierMatrix guarded by a mutex, and concurrent writers
// contend only when they hit the same shard. The logical value is the
// monoid sum of the shards — associativity makes sharding invisible to
// queries, the same algebra that makes the cascade exact.
#pragma once

#include <mutex>
#include <vector>

#include "gen/rng.hpp"
#include "hier/hier_matrix.hpp"

namespace hier {

template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class ShardedHier {
 public:
  using matrix_type = gbx::Matrix<T, AddMonoid>;

  ShardedHier(std::size_t shards, gbx::Index nrows, gbx::Index ncols,
              const CutPolicy& cuts)
      : nrows_(nrows), ncols_(ncols), locks_(shards) {
    GBX_CHECK_VALUE(shards > 0, "need at least one shard");
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) shards_.emplace_back(nrows, ncols, cuts);
  }

  std::size_t num_shards() const { return shards_.size(); }
  gbx::Index nrows() const { return nrows_; }
  gbx::Index ncols() const { return ncols_; }

  /// Thread-safe single update.
  void update(gbx::Index i, gbx::Index j, T v) {
    const std::size_t s = shard_of(i);
    std::lock_guard<std::mutex> g(locks_[s]);
    shards_[s].update(i, j, v);
  }

  /// Thread-safe batched update: the batch is split by shard once, then
  /// each shard is locked exactly once.
  void update(const gbx::Tuples<T>& batch) {
    std::vector<gbx::Tuples<T>> parts(shards_.size());
    for (const auto& e : batch)
      parts[shard_of(e.row)].push_back(e.row, e.col, e.val);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (parts[s].empty()) continue;
      std::lock_guard<std::mutex> g(locks_[s]);
      shards_[s].update(parts[s]);
    }
  }

  /// Logical value: monoid sum across shards (each shard snapshot is
  /// taken under its lock; the result is a consistent-per-shard union,
  /// the streaming-analytics consistency model of the paper).
  matrix_type snapshot() const {
    matrix_type acc(nrows_, ncols_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> g(locks_[s]);
      acc.plus_assign(shards_[s].snapshot());
    }
    return acc;
  }

  /// Aggregate statistics across shards.
  std::uint64_t entries_appended() const {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> g(locks_[s]);
      n += shards_[s].stats().entries_appended;
    }
    return n;
  }

  std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> g(locks_[s]);
      n += shards_[s].memory_bytes();
    }
    return n;
  }

 private:
  std::size_t shard_of(gbx::Index row) const {
    // Hash so that dense row ranges spread evenly (row-block partitions
    // would put one hot subnet entirely on one shard).
    return static_cast<std::size_t>(gen::mix64(row) % shards_.size());
  }

  gbx::Index nrows_;
  gbx::Index ncols_;
  std::vector<HierMatrix<T, AddMonoid>> shards_;
  mutable std::vector<std::mutex> locks_;
};

}  // namespace hier
