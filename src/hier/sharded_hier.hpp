// hier/sharded_hier.hpp — concurrent ingest into one logical matrix.
//
// The paper scales by running fully independent instances, one per
// process. ShardedHier extends that idea *within* one logical matrix (an
// extension beyond the paper, in its "tunable for a variety of
// applications" spirit): rows are hash-partitioned across S shards, each
// shard is its own HierMatrix guarded by a mutex, and concurrent writers
// contend only when they hit the same shard. The logical value is the
// monoid sum of the shards — associativity makes sharding invisible to
// queries, the same algebra that makes the cascade exact.
//
// Snapshot consistency: a batched update touches several shards, so
// per-shard locking alone would let a concurrent reader observe half a
// batch. Writers therefore hold a shared (reader) slot on `snap_mu_`
// for the whole batch, while freeze() takes it exclusively: every
// frozen image contains only whole batches — for each writer thread, a
// prefix of the batches it submitted (writers complete their batches in
// program order). freeze() is cheap (per-shard pending fold + view
// publication, no data copy), so the exclusive window is tiny; the
// legacy snapshot() keeps the old per-shard-consistent, never-blocking
// behaviour.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "gbx/thread_annotations.hpp"
#include "hier/hier_matrix.hpp"
#include "hier/partition.hpp"
#include "hier/snapshot.hpp"

namespace hier {

template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class ShardedHier {
 public:
  using matrix_type = gbx::Matrix<T, AddMonoid>;

  ShardedHier(std::size_t shards, gbx::Index nrows, gbx::Index ncols,
              const CutPolicy& cuts)
      : nrows_(nrows), ncols_(ncols) {
    GBX_CHECK_VALUE(shards > 0, "need at least one shard");
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
      shards_.push_back(std::make_unique<Shard>(nrows, ncols, cuts));
  }

  std::size_t num_shards() const { return shards_.size(); }
  gbx::Index nrows() const { return nrows_; }
  gbx::Index ncols() const { return ncols_; }

  /// Thread-safe single update.
  void update(gbx::Index i, gbx::Index j, T v) {
    gbx::ScopedReadLock batch_guard(writer_slot());
    Shard& sh = *shards_[shard_of(i)];
    {
      gbx::ScopedLock g(sh.mu);
      sh.matrix.update(i, j, v);
    }
    epoch_.fetch_add(1, std::memory_order_relaxed);
    if (write_observer_) write_observer_();
  }

  /// Thread-safe batched update: the batch is split by shard once, then
  /// each shard is locked exactly once. The whole batch lands inside one
  /// shared slot of `snap_mu_`, so no freeze() can observe half of it.
  /// The per-shard partition buffers are thread-local and recycled
  /// across batches (each writer thread splits into its own set), so
  /// steady-state sharded ingest allocates nothing on the split path —
  /// the same arena discipline as the fold pipeline's ScratchPool.
  void update(const gbx::Tuples<T>& batch) {
    gbx::ScopedReadLock batch_guard(writer_slot());
    // Admit the batch into the epoch up front: freeze() excludes all
    // in-flight batches via snap_mu_, so "admitted" == "applied"
    // whenever a snapshot observes the counter. Incrementing before the
    // shard loop means a snapshot acquired at epoch e already lags the
    // very first fold of batch e+1 — the write observer below can evict
    // it immediately instead of letting a whole batch of per-shard
    // folds pile up pinned behind min_evict_lag.
    epoch_.fetch_add(1, std::memory_order_relaxed);
    static thread_local std::vector<gbx::Tuples<T>> parts;
    if (parts.size() < shards_.size()) parts.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) parts[s].clear();
    for (const auto& e : batch)
      parts[shard_of(e.row)].push_back(e.row, e.col, e.val);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (parts[s].empty()) continue;
      Shard& sh = *shards_[s];
      {
        gbx::ScopedLock g(sh.mu);
        sh.matrix.update(parts[s]);
      }
      // Bound what an outlier batch leaves pinned on this thread: the
      // buffers outlive this (and every) ShardedHier, so anything above
      // the steady-state cap is handed back rather than retained.
      if (parts[s].entries().capacity() > kMaxRetainedPartCapacity)
        parts[s].reset();
      // Per-shard notification, outside the shard lock: at most one
      // shard's cascade can have folded since the previous call, so a
      // write-side governor bounds transient pinned slack to ONE
      // superseded generation total — not one per shard, which is what
      // acquire-time-only enforcement degraded to.
      if (write_observer_) write_observer_();
    }
  }

  /// Logical value: monoid sum across shards (each shard snapshot is
  /// taken under its lock; the result is a consistent-per-shard union,
  /// the streaming-analytics consistency model of the paper).
  matrix_type snapshot() const {
    matrix_type acc(nrows_, ncols_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      acc.plus_assign(sh.matrix.snapshot());
    }
    return acc;
  }

  /// Epoch-consistent snapshot: freeze every shard inside one exclusive
  /// section. The result contains only whole batches — for each writer
  /// thread a prefix of its submitted batches — with per-shard epochs
  /// stitched into the part watermarks and the global batch count as the
  /// snapshot epoch. No entry data is copied; writers resume the moment
  /// the per-shard views are published.
  ///
  /// Watermark units: part p's watermark counts SHARD-p update
  /// applications (its per-shard epoch) — one logical batch lands on
  /// every shard it touches, so Σ_p watermark(p).batches ≥ epoch() and
  /// SnapshotSet::total_batches() is NOT the whole-batch count here;
  /// epoch() is. (ParallelStream lanes, by contrast, partition batches,
  /// so there the two coincide.)
  ShardedSnapshot<T, AddMonoid> freeze() const {
    // Announce the pending freeze first: std::shared_mutex gives no
    // fairness guarantee (glibc's rwlock prefers readers by default), so
    // under sustained ingest new writers could otherwise be admitted
    // forever while this exclusive acquire waits. Writers back off in
    // writer_slot() while any freeze is pending — a counter, so
    // concurrent freezes cannot erase each other's announcement.
    freeze_pending_.fetch_add(1, std::memory_order_relaxed);
    gbx::ScopedWriteLock freeze_guard(snap_mu_);
    freeze_pending_.fetch_sub(1, std::memory_order_relaxed);
    const std::size_t n = shards_.size();
    std::vector<HierSnapshot<T, AddMonoid>> parts(n);
    std::vector<SnapshotWatermark> marks(n);
    // Per-shard freeze folds that shard's level-1 pending buffer — the
    // only real work in the exclusive window. Folds are independent
    // (one HierMatrix each), so run them on worker threads instead of
    // walking shards serially: freeze latency stays ~flat in shard
    // count rather than growing linearly, and writers get the lock back
    // sooner. Each worker owns a disjoint stripe of shards; the shard
    // mutex is still taken per shard (same order as writers: snap_mu_
    // first, shard lock second) because the legacy snapshot() path
    // takes shard locks without snap_mu_.
    const auto freeze_shard = [&](std::size_t s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      parts[s] = sh.matrix.freeze();
      const auto& st = sh.matrix.stats();
      marks[s] = SnapshotWatermark{st.updates, st.entries_appended};
    };
    // Spawning threads costs ~0.1 ms each; only go parallel when the
    // pending fold work plausibly dwarfs that. The peek takes the shard
    // locks (legacy snapshot() readers may be folding concurrently).
    std::size_t pending = 0;
    for (std::size_t s = 0; s < n; ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      pending += sh.matrix.level(0).pending_count();
    }
    const std::size_t workers = std::min<std::size_t>(
        n, std::max(1u, std::thread::hardware_concurrency()));
    if (workers < 2 || pending < kParallelFreezeMinPending) {
      for (std::size_t s = 0; s < n; ++s) freeze_shard(s);
    } else {
      // Worker exceptions (fold allocation failure, invariant check) are
      // re-thrown on the calling thread, matching the serial behaviour —
      // and a failed thread spawn joins what already started instead of
      // destroying joinable threads (which would std::terminate).
      std::vector<std::exception_ptr> errors(workers);
      std::vector<std::thread> pool;
      pool.reserve(workers);
      try {
        for (std::size_t w = 0; w < workers; ++w) {
          pool.emplace_back([&, w] {
            try {
              for (std::size_t s = w; s < n; s += workers) freeze_shard(s);
            } catch (...) {
              errors[w] = std::current_exception();
            }
          });
        }
      } catch (...) {
        for (auto& t : pool) t.join();
        throw;
      }
      for (auto& t : pool) t.join();
      for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
    }
    return ShardedSnapshot<T, AddMonoid>(
        std::move(parts), std::move(marks),
        epoch_.load(std::memory_order_relaxed));
  }

  /// Pinned-vs-live accounting of a sharded snapshot against this
  /// matrix's current shard blocks (parts match shards by position).
  /// Thread-safe: live blocks are peeked under the shard locks.
  SnapshotMemory snapshot_memory(const ShardedSnapshot<T, AddMonoid>& snap) const {
    std::vector<const gbx::Dcsr<T>*> snap_blocks, live_blocks;
    snap.collect_blocks(snap_blocks);
    collect_live_blocks(live_blocks);
    return detail::account_blocks(std::move(snap_blocks),
                                  std::move(live_blocks));
  }

  /// Append the blocks currently backing every shard's live levels.
  /// Thread-safe (per-shard locks) — the "live" side of the governor's
  /// pinned-vs-live classification, safe to call from reader threads
  /// while writers stream.
  void collect_live_blocks(std::vector<const gbx::Dcsr<T>*>& out) const {
    for (std::size_t s = 0; s < shards_.size(); ++s) collect_live_blocks(s, out);
  }

  /// Same, for one shard — the per-shard-budget accounting unit
  /// (governor parts match shards by position).
  void collect_live_blocks(std::size_t shard,
                           std::vector<const gbx::Dcsr<T>*>& out) const {
    GBX_CHECK_INDEX(shard < shards_.size(), "shard index out of range");
    Shard& sh = *shards_[shard];
    gbx::ScopedLock g(sh.mu);
    sh.matrix.collect_live_blocks(out);
  }

  /// Install a hook fired by writers after every ingested sub-batch
  /// (per shard touched, outside the shard lock but inside the writer's
  /// shared snapshot slot) — the write-side notification path of
  /// hier::MemoryGovernor, so budget enforcement runs at write time
  /// instead of waiting for the next reader acquire(). Install before
  /// writers start and clear only after they stop; writers read the
  /// hook unsynchronized (same discipline as SnapshotEngine's
  /// staleness hook).
  void set_write_observer(std::function<void()> observer) {
    write_observer_ = std::move(observer);
  }

  /// Whole batches applied so far (the freeze() epoch source).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Aggregate statistics across shards.
  std::uint64_t entries_appended() const {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      n += sh.matrix.stats().entries_appended;
    }
    return n;
  }

  std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      n += sh.matrix.memory_bytes();
    }
    return n;
  }

  /// Enable out-of-core demotion on every shard, all sharing one block
  /// store (the store is internally locked; run ids stay distinct via
  /// per-shard tiers over distinct block ids). Call before writers
  /// start. The store must outlive this matrix and its snapshots.
  void enable_demotion(store::BlockStore* store, DemotionConfig cfg = {}) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      sh.matrix.enable_demotion(store, cfg);
    }
  }

  /// Bring aggregate resident bytes at or under `budget_bytes` by
  /// demoting shard bottoms (budget split evenly across shards).
  /// Thread-safe via the shard locks ONLY — deliberately NOT the writer
  /// slot: the governor's write observer calls this while the writer
  /// already holds a shared slot on snap_mu_ (re-acquiring it here would
  /// be UB), and demotion preserves each shard's logical value, so a
  /// concurrent freeze stitching shards mid-enforcement still reads
  /// exactly the whole batches it always did. Returns demotions done.
  std::size_t enforce_residency(std::size_t budget_bytes) {
    const std::size_t per_shard =
        std::max<std::size_t>(1, budget_bytes / shards_.size());
    std::size_t demoted = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      demoted += sh.matrix.enforce_residency(per_shard);
    }
    return demoted;
  }

  /// Serialized bytes all shards' demoted runs occupy in the store.
  std::uint64_t store_bytes() const {
    std::uint64_t n = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      n += sh.matrix.store_bytes();
    }
    return n;
  }

  /// True when any shard currently holds demoted runs.
  bool has_demoted() const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      gbx::ScopedLock g(sh.mu);
      if (sh.matrix.has_demoted()) return true;
    }
    return false;
  }

 private:
  /// One shard: its matrix and the mutex that guards it, bound together
  /// so the analysis can tie every matrix access to the right lock (a
  /// parallel locks_[] vector indexed dynamically is opaque to it).
  /// Heap-allocated because gbx::Mutex is immovable.
  struct Shard {
    Shard(gbx::Index nrows, gbx::Index ncols, const CutPolicy& cuts)
        : matrix(nrows, ncols, cuts) {}
    mutable gbx::Mutex mu;
    HierMatrix<T, AddMonoid> matrix GBX_GUARDED_BY(mu);
  };

  /// Below this many total level-0 pending entries the per-shard folds
  /// are cheaper than spawning worker threads for them.
  static constexpr std::size_t kParallelFreezeMinPending = 4096;

  /// Per-shard partition buffers larger than this (entries) are released
  /// after the batch instead of retained by the writer thread.
  static constexpr std::size_t kMaxRetainedPartCapacity = std::size_t{1} << 16;

  /// Writers pass through here before taking their shared slot: while a
  /// freeze is waiting for exclusivity, incoming writers yield instead
  /// of piling onto the reader side of the lock. Best-effort (a writer
  /// can slip through the window between flag-check and lock), but it
  /// breaks the continuous-admission pattern that starves freeze().
  gbx::SharedMutex& writer_slot() const GBX_RETURN_CAPABILITY(snap_mu_) {
    while (freeze_pending_.load(std::memory_order_relaxed) > 0)
      std::this_thread::yield();
    return snap_mu_;
  }

  std::size_t shard_of(gbx::Index row) const {
    // The shared row-hash partition (hier/partition.hpp): the cluster
    // router places rows on worker processes with the SAME function, so
    // in-process and multi-process layouts agree coordinate-for-
    // coordinate on part ownership.
    return row_partition(row, shards_.size());
  }

  gbx::Index nrows_;
  gbx::Index ncols_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void()> write_observer_;  ///< see set_write_observer
  // Writers shared, freeze() exclusive: whole-batch snapshot atomicity.
  mutable gbx::SharedMutex snap_mu_;
  mutable std::atomic<std::uint32_t> freeze_pending_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace hier
