// hier/stats.hpp — instrumentation of the hierarchical cascade.
//
// Counters sufficient to regenerate the paper's Fig. 1 narrative: how
// many updates landed in the fast level, how often each level folded into
// the next, and how many entries each fold moved — i.e. how much of the
// update traffic actually reached "slow memory".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hier {

struct LevelStats {
  std::uint64_t folds = 0;           ///< times this level was cascaded up
  std::uint64_t entries_folded = 0;  ///< total entries moved up from here
  std::uint64_t max_entries = 0;     ///< high-water mark of entry count
};

/// Heap accounting of one snapshot relative to its (live) source.
/// Blocks shared between several levels/parts — and with the live
/// matrix — are deduplicated by identity and counted once.
struct SnapshotMemory {
  std::uint64_t total_bytes = 0;   ///< deduped bytes the snapshot holds
  std::uint64_t live_bytes = 0;    ///< subset still shared with the source's
                                   ///< current level blocks (no extra cost)
  std::uint64_t pinned_bytes = 0;  ///< subset retained only for the snapshot
                                   ///< (the source has folded past these)
};

struct HierStats {
  std::uint64_t updates = 0;          ///< update() calls
  std::uint64_t entries_appended = 0; ///< raw entries streamed in
  std::uint64_t queries = 0;          ///< snapshot()/collapse() calls
  std::uint64_t memory_bytes = 0;     ///< deduped heap bytes at capture time
                                      ///< (filled by freeze(); the live
                                      ///< matrix updates it on each freeze)
  std::vector<LevelStats> level;      ///< one per hierarchy level

  /// Fraction of appended entries that were ever moved past level `k`
  /// (0-based). level 0 folds / appends measures slow-memory pressure:
  /// with a working hierarchy, deeper levels see far fewer entries.
  double fold_ratio(std::size_t k) const {
    if (entries_appended == 0 || k >= level.size()) return 0.0;
    return static_cast<double>(level[k].entries_folded) /
           static_cast<double>(entries_appended);
  }
};

}  // namespace hier
