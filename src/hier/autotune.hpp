// hier/autotune.hpp — online cut tuning.
//
// The paper: "The cut values ci can be selected so as to optimize the
// performance with respect to particular applications." This component
// makes that selection *online*: it observes per-batch update latency at
// the current level-1 cut, probes neighbouring cuts (halve / double),
// and walks toward the fastest — a tiny hill-climber that converges to
// the plateau bench_cut_sweep maps out, without offline sweeps.
//
// AutoTuner owns the HierMatrix and transparently rebuilds it with a new
// schedule between batches (value is preserved through checkpoint-grade
// level transfer: the old levels fold into the new hierarchy's top).
#pragma once

#include <omp.h>

#include <cstddef>

#include "hier/hier_matrix.hpp"

namespace hier {

struct AutoTuneOptions {
  std::size_t min_c1 = 1u << 8;
  std::size_t max_c1 = 1u << 24;
  std::size_t probe_batches = 4;  ///< batches measured per candidate cut
  std::size_t ratio = 8;          ///< geometric growth between levels
  std::size_t levels = 4;
};

template <class T, class AddMonoid = gbx::PlusMonoid<T>>
class AutoTuner {
 public:
  AutoTuner(gbx::Index nrows, gbx::Index ncols, std::size_t initial_c1,
            AutoTuneOptions opt = {})
      : opt_(opt),
        c1_(clamp(initial_c1)),
        mat_(nrows, ncols, CutPolicy::geometric(opt.levels, c1_, opt.ratio)) {}

  /// Stream one batch, measuring it. Every `probe_batches` batches the
  /// tuner evaluates the current rate and may move the cut.
  void update(const gbx::Tuples<T>& batch) {
    const double t0 = omp_get_wtime();
    mat_.update(batch);
    window_seconds_ += omp_get_wtime() - t0;
    window_entries_ += batch.size();
    if (++window_batches_ >= opt_.probe_batches) end_window();
  }

  /// Current level-1 cut.
  std::size_t c1() const { return c1_; }
  /// Number of cut changes performed so far.
  std::size_t retunes() const { return retunes_; }
  /// Last completed window's updates/second.
  double last_rate() const { return last_rate_; }

  const HierMatrix<T, AddMonoid>& matrix() const { return mat_; }
  typename HierMatrix<T, AddMonoid>::matrix_type snapshot() const {
    return mat_.snapshot();
  }

 private:
  std::size_t clamp(std::size_t c) const {
    return std::min(std::max(c, opt_.min_c1), opt_.max_c1);
  }

  void end_window() {
    const double rate =
        window_seconds_ > 0
            ? static_cast<double>(window_entries_) / window_seconds_
            : 0.0;
    window_batches_ = 0;
    window_entries_ = 0;
    window_seconds_ = 0;

    // Hill-climb: keep moving in the current direction while it helps;
    // reverse (and shrink commitment) when it stops helping.
    if (last_rate_ > 0) {
      if (rate + 0.02 * last_rate_ < last_rate_) direction_ = -direction_;
      const std::size_t next =
          clamp(direction_ > 0 ? c1_ * 2 : std::max<std::size_t>(1, c1_ / 2));
      if (next != c1_) {
        retarget(next);
        ++retunes_;
      }
    }
    last_rate_ = rate;
  }

  /// Rebuild with a new schedule, carrying the accumulated value over.
  void retarget(std::size_t new_c1) {
    HierMatrix<T, AddMonoid> next(mat_.nrows(), mat_.ncols(),
                                  CutPolicy::geometric(opt_.levels, new_c1,
                                                       opt_.ratio));
    // Move every old level into the new top level: one monoid add each,
    // exactly a cascade fold, so the logical value is untouched.
    for (std::size_t i = 0; i < mat_.num_levels(); ++i)
      next.restore_level(next.num_levels() - 1,
                         fold_into(next.level(next.num_levels() - 1),
                                   mat_.level(i)));
    HierStats st = mat_.stats();
    st.level.assign(next.num_levels(), LevelStats{});
    next.restore_stats(std::move(st));
    mat_ = std::move(next);
    c1_ = new_c1;
  }

  static typename HierMatrix<T, AddMonoid>::matrix_type fold_into(
      const typename HierMatrix<T, AddMonoid>::matrix_type& base,
      const typename HierMatrix<T, AddMonoid>::matrix_type& add) {
    auto out = base;
    out.plus_assign(add);
    return out;
  }

  AutoTuneOptions opt_;
  std::size_t c1_;
  HierMatrix<T, AddMonoid> mat_;

  std::size_t window_batches_ = 0;
  std::uint64_t window_entries_ = 0;
  double window_seconds_ = 0;
  double last_rate_ = 0;
  int direction_ = +1;
  std::size_t retunes_ = 0;
};

}  // namespace hier
