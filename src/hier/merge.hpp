// hier/merge.hpp — combining hierarchical matrices.
//
// The paper's instances are independent, but analyses frequently need
// their union ("all layers ... summed"): a distributed reduction combines
// per-process matrices into one. merge_into folds a source hierarchy
// into a destination level-by-level — each source level lands in the
// destination level that can absorb it, preserving the fast/slow memory
// discipline instead of collapsing everything to the top.
#pragma once

#include "gbx/tsan_omp.hpp"
#include "hier/hier_matrix.hpp"

namespace hier {

/// dst += src (src is consumed: its levels are reset). Dimensions and
/// level counts must match. Values combine with the shared fold monoid;
/// the result equals snapshot(dst) + snapshot(src) exactly.
template <class T, class M>
void merge_into(HierMatrix<T, M>& dst, HierMatrix<T, M>&& src) {
  GBX_CHECK_DIM(dst.nrows() == src.nrows() && dst.ncols() == src.ncols(),
                "merge_into dimension mismatch");
  GBX_CHECK_DIM(dst.num_levels() == src.num_levels(),
                "merge_into level-count mismatch");
  // Fold each source level into the same destination level, then let the
  // destination cascade restore its cut invariants.
  for (std::size_t i = 0; i < src.num_levels(); ++i) {
    if (src.level(i).empty()) continue;
    auto merged = dst.level(i);  // copy of dst's level
    merged.plus_assign(src.level(i));
    dst.restore_level(i, std::move(merged));
  }
  dst.recascade();
  src.reset_levels();
}

/// Binary-tree reduction of many hierarchies into index 0 (the shape of
/// a distributed allreduce over the paper's 31,000 instances). Consumes
/// all inputs except the first.
template <class T, class M>
void tree_reduce(std::vector<HierMatrix<T, M>>& instances) {
  GBX_CHECK_VALUE(!instances.empty(), "tree_reduce needs at least one instance");
  for (std::size_t stride = 1; stride < instances.size(); stride *= 2) {
    const std::size_t step = stride * 2;
    // One region (and TSan guard) per tree level: round k reads the
    // merges round k-1 produced, so each level joins before the next.
    GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
    {
      gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(dynamic, 1)
      for (std::size_t i = 0; i < instances.size() - stride; i += step) {
        merge_into(instances[i], std::move(instances[i + stride]));
      }
    }
  }
}

}  // namespace hier
