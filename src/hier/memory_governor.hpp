// hier/memory_governor.hpp — budget-driven eviction of reader snapshots.
//
// The hierarchical design sustains its insert rate because old state is
// folded down the hierarchy instead of accumulating — but the snapshot
// engine lets a lagging reader pin arbitrary amounts of superseded
// blocks: every fold under a pin copies instead of recycling (gbx
// copy-on-fold), so one slow analytics consumer grows resident memory
// without bound while ingest streams on. The fix is a *governor*, not
// ad-hoc frees — the same discipline as a database page cache evicting
// under a configurable memory budget.
//
// MemoryGovernor wraps a snapshot source (HierMatrix, ShardedHier,
// ParallelStream — anything with freeze()) and hands out
// GovernedSnapshot *handles* instead of raw snapshots. The governor
// tracks every outstanding handle and classifies their blocks with the
// identity-deduped pinned-vs-live accounting of hier::snapshot_memory:
//
//   live    — still shared with the source's current levels: holding
//             the snapshot costs nothing extra.
//   pinned  — superseded shared blocks, retained solely for readers.
//             THIS is what the budget governs.
//   private — compact copies owned by evicted snapshots (the price of
//             the reader's bit-exactness contract; bounded by Σ Ai at
//             the reader's epoch, and spillable).
//   spilled — serialized compact images (store::RecordLog frames), out
//             of block form entirely.
//
// When pinned bytes exceed the budget, the governor *materializes and
// releases*, laggiest reader first: the snapshot's levels are folded
// into one privately-owned compact gbx::Matrix (HierSnapshot::compacted)
// and the shared-block pins are dropped — so the writer's spare-block
// recycling goes back to zero allocations, and the freed generations
// return their heap. Reads through the handle stay bit-identical: the
// compact block carries to_matrix()'s own per-coordinate left-fold
// values, the order every read path already defines as THE value.
// Readers lagging past `spill_lag` epochs additionally have their
// compact image serialized through the RecordLog checkpoint container
// (cold snapshots); reads rehydrate a transient copy on demand.
//
// ShardedHier sources can add per-shard budgets (part_budget_bytes):
// parts are compacted individually, which is still bit-exact because
// extract_element/to_matrix fold part-major — each part's levels form a
// contiguous prefix segment of the per-coordinate fold chain.
//
// Threading: acquire()/enforce()/memory() are as thread-safe as the
// source's freeze() (ShardedHier/ParallelStream: any thread; HierMatrix:
// the owning thread, which also makes its live-block peek safe).
// Handles are safe to read from any thread, including while the
// governor evicts them mid-query — a read pins a copy of the current
// image first and operates on that. Handles may outlive the governor.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gbx/serialize.hpp"
#include "gbx/thread_annotations.hpp"
#include "hier/delta.hpp"
#include "hier/hier_matrix.hpp"
#include "hier/sharded_hier.hpp"
#include "hier/snapshot.hpp"
#include "store/wal.hpp"

namespace hier {

/// Budget/policy knobs of one governor. Byte budgets act on the
/// identity-deduped *pinned* class only (superseded shared blocks);
/// private compact copies are reported separately and governed by
/// spill_lag.
struct GovernorConfig {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// Pinned-bytes ceiling across all outstanding snapshots. Exceeding it
  /// triggers materialize-and-release, laggiest reader first.
  std::uint64_t budget_bytes = kNever;
  /// Per-part (per-shard) pinned ceiling for SnapshotSet sources;
  /// 0 disables the per-part pass.
  std::uint64_t part_budget_bytes = 0;
  /// Never evict a snapshot lagging fewer than this many epochs behind
  /// the newest acquired one (default: only the newest image is safe).
  std::uint64_t min_evict_lag = 1;
  /// Epoch lag at which an evicted snapshot's compact image is
  /// serialized out of block form (cold snapshots). kNever disables.
  std::uint64_t spill_lag = kNever;
  /// Run enforce() inside every acquire() (the steady-state mode); turn
  /// off to drive enforcement manually or from a dedicated thread.
  bool enforce_on_acquire = true;
  /// Write-side enforcement: attach a write observer to the source so
  /// every ingested (sub-)batch triggers an enforcement pass. Acquire-
  /// time-only enforcement lets a lagging reader's pinned class drift up
  /// to one superseded block PER SHARD between acquires (writers fold,
  /// nobody tells the governor); with write-side notification the
  /// transient slack is bounded by the blocks one sub-batch can
  /// supersede — one generation total. Requires a source with
  /// set_write_observer (ShardedHier, ParallelStream, HierMatrix; see
  /// governor_attach_write_observer); silently inert otherwise. The
  /// governor must outlive the source's write activity — it detaches on
  /// destruction, which is only safe once writers have stopped.
  bool enforce_on_write = false;
  /// Resident-byte ceiling for the LIVE matrix (the out-of-core tier,
  /// alongside the snapshot budgets above): every enforcement pass also
  /// asks the source to demote cold bottom levels into its block store
  /// until resident heap fits. Requires a source exposing
  /// enforce_residency (HierMatrix / ShardedHier after enable_demotion;
  /// see governor_enforce_residency) — silently inert otherwise.
  /// Usually combined with enforce_on_write so ingest itself keeps the
  /// matrix under budget. kNever disables.
  std::uint64_t live_budget_bytes = kNever;
};

/// Monotone counters of governor activity (copyable POD view).
struct GovernorStats {
  std::uint64_t enforcements = 0;     ///< enforce() passes
  std::uint64_t evictions = 0;        ///< whole snapshots compacted
  std::uint64_t part_evictions = 0;   ///< individual parts compacted
  std::uint64_t spills = 0;           ///< compact images serialized
  std::uint64_t rehydrations = 0;     ///< spilled reads deserialized
  std::uint64_t bytes_released = 0;   ///< pinned bytes actually freed by
                                      ///< evictions (pool delta, exact)
  std::uint64_t peak_pinned_bytes = 0;///< high-water mark of pinned class
  std::uint64_t demotions = 0;        ///< live-matrix levels demoted to the
                                      ///< block store (live_budget_bytes)
};

/// One accounting pass over the outstanding snapshots (identity-deduped
/// across snapshots AND levels; see the header comment for the classes).
struct GovernorMemory {
  std::uint64_t live_bytes = 0;
  std::uint64_t pinned_bytes = 0;
  std::uint64_t private_bytes = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t largest_block_bytes = 0;  ///< the "+one block" slack unit
  std::size_t snapshots = 0;
  std::size_t evicted_snapshots = 0;
  std::size_t spilled_snapshots = 0;

  /// Bytes held purely on the readers' behalf, in any form.
  std::uint64_t retained_bytes() const {
    return pinned_bytes + private_bytes + spilled_bytes;
  }
};

namespace detail {

template <class Snap>
struct is_snapshot_set : std::false_type {};
template <class T, class M>
struct is_snapshot_set<SnapshotSet<T, M>> : std::true_type {};

/// Shared, atomically-updated backing of GovernorStats. Held by
/// shared_ptr from the governor AND every slot, so handle-side events
/// (rehydrations) count even after the governor is gone.
struct GovernorCounters {
  std::atomic<std::uint64_t> enforcements{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> part_evictions{0};
  std::atomic<std::uint64_t> spills{0};
  std::atomic<std::uint64_t> rehydrations{0};
  std::atomic<std::uint64_t> bytes_released{0};
  std::atomic<std::uint64_t> peak_pinned_bytes{0};
  std::atomic<std::uint64_t> demotions{0};

  void peak_pinned(std::uint64_t v) {
    std::uint64_t seen = peak_pinned_bytes.load(std::memory_order_relaxed);
    while (seen < v && !peak_pinned_bytes.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
};

/// One registered snapshot. The slot's mutex orders reader pins against
/// governor evictions; `epoch` is immutable so handles read it lock-free.
/// State machine: live -> (part-)evicted -> spilled; `private_blocks`
/// names the compact blocks the slot owns outright, so accounting can
/// tell them apart from pinned shared blocks.
template <class Snap>
struct GovernedSlot {
  using block_type = const gbx::Dcsr<typename Snap::value_type>*;

  GovernedSlot(Snap s, std::uint64_t e, std::shared_ptr<GovernorCounters> c)
      : snap(std::move(s)), epoch(e), counters(std::move(c)) {}

  mutable gbx::Mutex mu;
  Snap snap GBX_GUARDED_BY(mu);   ///< live image / compact image / skeleton
  bool evicted GBX_GUARDED_BY(mu) = false;  ///< some/all levels compacted
  bool spilled GBX_GUARDED_BY(mu) = false;  ///< image serialized into `spill`
  std::vector<bool> compacted_parts GBX_GUARDED_BY(mu);  ///< per-part (sets)
  std::vector<block_type> private_blocks
      GBX_GUARDED_BY(mu);  ///< sorted; owned compact blocks
  std::string spill GBX_GUARDED_BY(mu);  ///< RecordLog frames, compact image
  const std::uint64_t epoch;
  std::shared_ptr<GovernorCounters> counters;
};

// --- spill container: one store::RecordLog frame per level, the frame
// epoch carrying the part index (0 for single snapshots), the payload a
// gbx::serialize image of the level's block. Checksummed + torn-tail
// detecting for free, and byte-exact: gbx serialization round-trips
// values bit-for-bit.

template <class T, class M>
void spill_levels(store::RecordLogWriter& w, std::uint64_t part,
                  const HierSnapshot<T, M>& snap) {
  for (std::size_t l = 0; l < snap.num_levels(); ++l) {
    std::ostringstream os;
    gbx::serialize(os, snap.level(l));
    const std::string bytes = os.str();
    w.append(part, bytes.data(), bytes.size());
  }
}

template <class T, class M>
std::string spill_snapshot(const HierSnapshot<T, M>& snap) {
  std::ostringstream os;
  store::RecordLogWriter w(os);
  spill_levels(w, 0, snap);
  return os.str();
}

template <class T, class M>
std::string spill_snapshot(const SnapshotSet<T, M>& snap) {
  std::ostringstream os;
  store::RecordLogWriter w(os);
  for (std::size_t p = 0; p < snap.size(); ++p) spill_levels(w, p, snap.part(p));
  return os.str();
}

/// The metadata that stays resident while the blocks are spilled:
/// dimensions, cuts, stats, watermarks, epochs — everything but views.
template <class T, class M>
HierSnapshot<T, M> skeleton_of(const HierSnapshot<T, M>& s) {
  return HierSnapshot<T, M>(s.nrows(), s.ncols(), {}, s.cuts(), s.stats(),
                            s.epoch());
}

template <class T, class M>
SnapshotSet<T, M> skeleton_of(const SnapshotSet<T, M>& s) {
  std::vector<HierSnapshot<T, M>> parts;
  std::vector<SnapshotWatermark> marks;
  parts.reserve(s.size());
  marks.reserve(s.size());
  for (std::size_t p = 0; p < s.size(); ++p) {
    parts.push_back(skeleton_of(s.part(p)));
    marks.push_back(s.watermark(p));
  }
  return SnapshotSet<T, M>(std::move(parts), std::move(marks), s.epoch());
}

template <class T, class M>
std::vector<std::vector<gbx::MatrixView<T>>> read_spill(
    const std::string& spill, std::size_t parts) {
  std::istringstream is(spill);
  store::RecordLogReader reader(is);
  std::vector<std::vector<gbx::MatrixView<T>>> views(parts);
  while (auto rec = reader.next()) {
    GBX_CHECK(rec->epoch < parts, "governor spill: part index out of range");
    std::string payload(reinterpret_cast<const char*>(rec->payload.data()),
                        rec->payload.size());
    std::istringstream ps(std::move(payload));
    auto m = gbx::deserialize<T, M>(ps);
    views[rec->epoch].push_back(m.view());
  }
  return views;
}

template <class T, class M>
HierSnapshot<T, M> rehydrated(const HierSnapshot<T, M>& skel,
                              const std::string& spill) {
  auto views = read_spill<T, M>(spill, 1);
  return HierSnapshot<T, M>(skel.nrows(), skel.ncols(), std::move(views[0]),
                            skel.cuts(), skel.stats(), skel.epoch());
}

template <class T, class M>
SnapshotSet<T, M> rehydrated(const SnapshotSet<T, M>& skel,
                             const std::string& spill) {
  auto views =
      read_spill<T, M>(spill, std::max<std::size_t>(std::size_t{1}, skel.size()));
  std::vector<HierSnapshot<T, M>> parts;
  std::vector<SnapshotWatermark> marks;
  parts.reserve(skel.size());
  marks.reserve(skel.size());
  for (std::size_t p = 0; p < skel.size(); ++p) {
    const auto& sp = skel.part(p);
    parts.push_back(HierSnapshot<T, M>(sp.nrows(), sp.ncols(),
                                       std::move(views[p]), sp.cuts(),
                                       sp.stats(), sp.epoch()));
    marks.push_back(skel.watermark(p));
  }
  return SnapshotSet<T, M>(std::move(parts), std::move(marks), skel.epoch());
}

}  // namespace detail

/// Reader-side handle on a governed snapshot. Cheap to copy (one
/// shared_ptr); every read first *pins* a copy of the slot's current
/// image under the slot lock and then operates on immutable views, so
/// reads race eviction safely and stay bit-exact before, during, and
/// after it. Dropping the last handle releases whatever the slot still
/// holds (blocks or spill bytes).
template <class Snap>
class GovernedSnapshot {
 public:
  using snapshot_type = Snap;
  using value_type = typename Snap::value_type;
  using matrix_type = typename Snap::matrix_type;

  GovernedSnapshot() = default;

  bool valid() const { return slot_ != nullptr; }

  /// Epoch of the frozen image (0 for an empty handle). Immutable —
  /// eviction and spill never change what epoch the reader holds.
  std::uint64_t epoch() const { return slot_ ? slot_->epoch : 0; }

  bool evicted() const {
    if (!slot_) return false;
    auto& s = *slot_;
    gbx::ScopedLock lk(s.mu);
    return s.evicted;
  }

  bool spilled() const {
    if (!slot_) return false;
    auto& s = *slot_;
    gbx::ScopedLock lk(s.mu);
    return s.spilled;
  }

  /// Copy of the current image: the original frozen levels before
  /// eviction, the compact image after it, a transient rehydrated copy
  /// while spilled (the slot stays spilled — rehydration never
  /// re-occupies resident memory beyond the returned copy's lifetime).
  /// The copy re-pins its blocks for exactly as long as the caller
  /// holds it.
  Snap pin() const {
    GBX_CHECK(slot_ != nullptr, "pin() on an empty governed snapshot");
    auto& s = *slot_;
    gbx::ScopedLock lk(s.mu);
    if (s.spilled) {
      s.counters->rehydrations.fetch_add(1, std::memory_order_relaxed);
      return detail::rehydrated(s.snap, s.spill);
    }
    return s.snap;
  }

  /// Pin only if the image still has its original (diffable) level
  /// structure; nullopt once eviction compacted any of it. This is what
  /// try_snapshot_diff uses to decide between an incremental delta and
  /// a full-recompute fallback.
  std::optional<Snap> try_pin_live() const {
    if (!slot_) return std::nullopt;
    auto& s = *slot_;
    gbx::ScopedLock lk(s.mu);
    if (s.evicted || s.spilled) return std::nullopt;
    return s.snap;
  }

  /// Read-path conveniences; each pins a copy first (see pin()). On a
  /// SPILLED handle every call deserializes the whole image — batch
  /// repeated probes through one pin() instead of calling
  /// extract_element per coordinate.
  matrix_type to_matrix() const { return pin().to_matrix(); }
  value_type reduce() const { return pin().reduce(); }
  std::optional<value_type> extract_element(gbx::Index i, gbx::Index j) const {
    return pin().extract_element(i, j);
  }
  std::size_t nvals() const { return pin().nvals(); }

  /// Resident bytes this handle's slot holds right now (block bytes
  /// when live/evicted, serialized bytes when spilled).
  std::size_t memory_bytes() const {
    if (!slot_) return 0;
    auto& s = *slot_;
    gbx::ScopedLock lk(s.mu);
    return s.spilled ? s.spill.size() : s.snap.memory_bytes();
  }

  /// Drop the handle early (destructor semantics, explicit).
  void reset() { slot_.reset(); }

 private:
  template <class Source>
  friend class MemoryGovernor;

  explicit GovernedSnapshot(std::shared_ptr<detail::GovernedSlot<Snap>> s)
      : slot_(std::move(s)) {}

  std::shared_ptr<detail::GovernedSlot<Snap>> slot_;
};

/// Governed overload of try_snapshot_diff: diff the two underlying
/// images when both still have their original level structure, nullopt
/// otherwise (either was compacted/spilled — the incremental reader
/// falls back to a counted full recompute; delta semantics unchanged).
/// The pins keep both images alive for the duration of the diff even if
/// the governor evicts the slots mid-call.
template <class Snap>
std::optional<SnapshotDelta<typename Snap::value_type>> try_snapshot_diff(
    const GovernedSnapshot<Snap>& a, const GovernedSnapshot<Snap>& b) {
  auto pa = a.try_pin_live();
  auto pb = b.try_pin_live();
  if (!pa || !pb) return std::nullopt;
  return snapshot_diff(*pa, *pb);
}

/// Live-block peek customization: append the blocks currently backing
/// `source` and return true, or return false when no thread-safe peek
/// exists (the governor then classifies against the newest acquired
/// snapshot's blocks instead — a just-frozen image of the same levels).
template <class T, class M>
bool governor_live_blocks(const HierMatrix<T, M>& m,
                          std::vector<const gbx::Dcsr<T>*>& out) {
  m.collect_live_blocks(out);  // owner-thread discipline, like freeze()
  return true;
}

template <class T, class M>
bool governor_live_blocks(const ShardedHier<T, M>& s,
                          std::vector<const gbx::Dcsr<T>*>& out) {
  s.collect_live_blocks(out);  // thread-safe: per-shard locks
  return true;
}

template <class Source, class T>
bool governor_live_blocks(const Source&, std::vector<const gbx::Dcsr<T>*>&) {
  return false;  // e.g. ParallelStream: lanes owned by worker threads
}

/// Are the source's snapshot parts coordinate-disjoint? True for
/// ShardedHier (row-hash partitioning), false in general (ParallelStream
/// lanes overlap freely). Disjoint parts may be compacted individually
/// with bit-exact reads; overlapping parts must be collapsed whole (see
/// SnapshotSet::compacted), and per-part budgets only apply when true.
template <class T, class M>
constexpr bool governor_parts_disjoint(const ShardedHier<T, M>&) {
  return true;
}

template <class Source>
constexpr bool governor_parts_disjoint(const Source&) {
  return false;
}

/// Per-part live peek (per-shard budgets); same convention.
template <class T, class M>
bool governor_part_live_blocks(const ShardedHier<T, M>& s, std::size_t part,
                               std::vector<const gbx::Dcsr<T>*>& out) {
  s.collect_live_blocks(part, out);
  return true;
}

template <class Source, class T>
bool governor_part_live_blocks(const Source&, std::size_t,
                               std::vector<const gbx::Dcsr<T>*>&) {
  return false;
}

/// Write-observer attachment customization (enforce_on_write): install
/// `observer` so the source fires it after every ingested (sub-)batch,
/// or return false when the source has no such hook. An empty function
/// detaches. Detection is structural (does the source expose
/// set_write_observer?), so any future freezable source that grows the
/// hook is covered automatically.
template <class Source, class = void>
struct source_has_write_observer : std::false_type {};
template <class Source>
struct source_has_write_observer<
    Source, std::void_t<decltype(std::declval<Source&>().set_write_observer(
                std::function<void()>{}))>> : std::true_type {};

template <class Source>
bool governor_attach_write_observer(Source& s,
                                    std::function<void()> observer) {
  if constexpr (source_has_write_observer<Source>::value) {
    s.set_write_observer(std::move(observer));
    return true;
  } else {
    (void)observer;
    return false;
  }
}

/// Live-matrix residency customization (live_budget_bytes): ask the
/// source to demote cold bottom levels into its block store until its
/// resident heap fits `budget`, returning demotions performed; 0 when
/// the source has no residency control (no enforce_residency hook, or
/// demotion not enabled — both report "nothing demoted"). Detection is
/// structural, like the write-observer hook.
template <class Source, class = void>
struct source_has_residency : std::false_type {};
template <class Source>
struct source_has_residency<
    Source, std::void_t<decltype(std::declval<Source&>().enforce_residency(
                std::size_t{}))>> : std::true_type {};

template <class Source>
std::size_t governor_enforce_residency(Source& s, std::uint64_t budget) {
  if constexpr (source_has_residency<Source>::value) {
    return s.enforce_residency(static_cast<std::size_t>(budget));
  } else {
    (void)s;
    (void)budget;
    return 0;
  }
}

/// Live write-progress customization: eviction lag is measured against
/// the newest epoch the governor can SEE. Acquire-only governors only
/// see what readers acquired — during a pure-write phase nothing
/// advances and a held snapshot never becomes "lagging", which is
/// exactly the drift enforce_on_write exists to close. Sources exposing
/// an epoch() counter (ShardedHier: atomic, any thread; HierMatrix:
/// owner thread, where its observer also runs) lend it here; otherwise
/// the newest acquired epoch stands (ParallelStream lane counters are
/// worker-owned).
template <class Source, class = void>
struct source_has_epoch : std::false_type {};
template <class Source>
struct source_has_epoch<
    Source, std::void_t<decltype(std::declval<const Source&>().epoch())>>
    : std::true_type {};

template <class Source>
std::uint64_t governor_current_epoch(const Source& s,
                                     std::uint64_t newest_acquired) {
  if constexpr (source_has_epoch<Source>::value) {
    return std::max<std::uint64_t>(s.epoch(), newest_acquired);
  } else {
    return newest_acquired;
  }
}

template <class Source>
class MemoryGovernor {
 public:
  using snapshot_type = std::decay_t<decltype(std::declval<Source&>().freeze())>;
  using handle_type = GovernedSnapshot<snapshot_type>;
  using value_type = typename snapshot_type::value_type;

  /// Hook fired after each whole-snapshot eviction: the evicted epoch,
  /// the newest acquired epoch, and the pinned-class total before the
  /// eviction. Fired after the enforcement pass releases the registry
  /// lock, so the hook may call back into this governor freely.
  using EvictionHook = std::function<void(
      std::uint64_t evicted_epoch, std::uint64_t current_epoch,
      std::uint64_t pinned_before)>;

  explicit MemoryGovernor(Source& source, GovernorConfig cfg = {})
      : source_(&source),
        cfg_(cfg),
        budget_bytes_(cfg.budget_bytes),
        engine_(source),
        counters_(std::make_shared<detail::GovernorCounters>()) {
    if (cfg_.enforce_on_write) {
      // Same install-before-writers discipline as set_staleness_hook:
      // the governor is constructed before ingest threads start, so the
      // plain std::function installs race-free. The fast path skips the
      // whole pass while no snapshot is outstanding — nothing can be
      // pinned, so a write-heavy phase with no readers pays one relaxed
      // load per batch.
      attached_write_ = governor_attach_write_observer(*source_, [this] {
        // A live-matrix budget must be enforced even with zero readers
        // outstanding — resident growth comes from ingest itself, not
        // from snapshot pins.
        if (registered_.load(std::memory_order_relaxed) == 0 &&
            cfg_.live_budget_bytes == GovernorConfig::kNever)
          return;
        enforce();
      });
    }
  }

  /// Detach the write observer (no-op if none was attached). Only safe
  /// once the source's writers have stopped — the same rule as
  /// destroying the governor itself.
  ~MemoryGovernor() {
    if (attached_write_)
      governor_attach_write_observer(*source_, std::function<void()>{});
  }

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Freeze a new snapshot, register it with the governor, and (by
  /// default) run an enforcement pass. Thread-safety: that of the
  /// source's freeze().
  handle_type acquire() {
    auto snap = engine_.acquire();
    const std::uint64_t e = snap.epoch();
    auto slot = std::make_shared<Slot>(std::move(snap), e, counters_);
    {
      gbx::ScopedLock lk(mu_);
      slots_.push_back(slot);
      registered_.store(slots_.size(), std::memory_order_relaxed);
    }
    if (cfg_.enforce_on_acquire) enforce();
    return handle_type(std::move(slot));
  }

  /// Snapshot-source facade: a MemoryGovernor is itself freezable, so
  /// SnapshotEngine / analytics::IncrementalEngine layer on top of it
  /// unchanged (their snapshot_type becomes the governed handle).
  handle_type freeze() { return acquire(); }

  /// One enforcement pass: global budget (laggiest-first materialize-
  /// and-release), then per-part budgets for set sources, then the
  /// cold-snapshot spill sweep. Returns compactions performed (whole
  /// snapshots + parts). Safe from any thread the source's freeze()
  /// allows; passes are serialized on the registry lock.
  std::size_t enforce() {
    // Hook invocations collected under the lock, fired after releasing
    // it — a hook may call back into memory()/enforce() (or anything
    // else on this governor) without self-deadlocking.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> evicted_epochs;
    EvictionHook hook;
    std::size_t compactions = 0;
    {
      gbx::ScopedLock lk(mu_);
      hook = eviction_hook_;
      counters_->enforcements.fetch_add(1, std::memory_order_relaxed);
      auto slots = gather_locked();
      const std::uint64_t current =
          governor_current_epoch(*source_, engine_.last_epoch());

      // --- global pinned budget.
      std::uint64_t prev_pinned = 0;
      bool evicted_last = false;
      for (;;) {
        std::vector<Block> baseline;
        auto mem = account_locked(slots, &baseline);
        counters_->peak_pinned(mem.pinned_bytes);
        if (evicted_last && prev_pinned > mem.pinned_bytes)
          counters_->bytes_released.fetch_add(prev_pinned - mem.pinned_bytes,
                                              std::memory_order_relaxed);
        if (mem.pinned_bytes <= budget_bytes_.load(std::memory_order_relaxed))
          break;
        Slot* victim = nullptr;
        for (const auto& s : slots) {  // ascending epoch = laggiest first
          if (current - s->epoch < cfg_.min_evict_lag) continue;
          if (pinned_involvement_locked(*s, baseline) == 0) continue;
          victim = s.get();
          break;
        }
        if (victim == nullptr) break;  // nothing evictable releases bytes
        evict_locked(*victim);
        evicted_epochs.emplace_back(victim->epoch, mem.pinned_bytes);
        prev_pinned = mem.pinned_bytes;
        evicted_last = true;
        ++compactions;
        // Loop: re-account (shared generations may need several drops).
      }

      // --- per-part budgets (coordinate-disjoint set sources only: an
      // individually compacted part is bit-exact only when no other part
      // holds its coordinates).
      if constexpr (detail::is_snapshot_set<snapshot_type>::value) {
        if (cfg_.part_budget_bytes > 0 && governor_parts_disjoint(*source_))
          compactions += enforce_parts_locked(slots, current);
      }

      // --- cold-snapshot spill sweep.
      if (cfg_.spill_lag != GovernorConfig::kNever) {
        for (const auto& s : slots) {
          if (current - s->epoch < cfg_.spill_lag) continue;
          spill_locked(*s);
        }
      }

      // --- live-matrix resident budget: demote cold bottom levels into
      // the source's block store. Inside the registry lock so passes
      // stay serialized (ShardedHier's observer fires from several
      // writer threads); lock order mu_ -> shard locks matches the
      // accounting passes above.
      if (cfg_.live_budget_bytes != GovernorConfig::kNever) {
        const std::size_t demoted =
            governor_enforce_residency(*source_, cfg_.live_budget_bytes);
        if (demoted > 0)
          counters_->demotions.fetch_add(demoted, std::memory_order_relaxed);
      }
    }
    const std::uint64_t current =
        governor_current_epoch(*source_, engine_.last_epoch());
    for (const auto& [epoch, pinned_before] : evicted_epochs) {
      engine_.check_staleness(epoch);  // laggard warning, if installed
      if (hook) hook(epoch, current, pinned_before);
    }
    return compactions;
  }

  /// Accounting snapshot (also updates the pinned high-water mark).
  /// Same thread-safety as enforce().
  GovernorMemory memory() const {
    gbx::ScopedLock lk(mu_);
    auto slots = gather_locked();
    std::vector<Block> baseline;
    auto mem = account_locked(slots, &baseline);
    counters_->peak_pinned(mem.pinned_bytes);
    return mem;
  }

  GovernorStats stats() const {
    GovernorStats s;
    s.enforcements = counters_->enforcements.load(std::memory_order_relaxed);
    s.evictions = counters_->evictions.load(std::memory_order_relaxed);
    s.part_evictions =
        counters_->part_evictions.load(std::memory_order_relaxed);
    s.spills = counters_->spills.load(std::memory_order_relaxed);
    s.rehydrations = counters_->rehydrations.load(std::memory_order_relaxed);
    s.bytes_released =
        counters_->bytes_released.load(std::memory_order_relaxed);
    s.peak_pinned_bytes =
        counters_->peak_pinned_bytes.load(std::memory_order_relaxed);
    s.demotions = counters_->demotions.load(std::memory_order_relaxed);
    return s;
  }

  /// Effective configuration (budget_bytes reflects set_budget updates).
  GovernorConfig config() const {
    GovernorConfig c = cfg_;
    c.budget_bytes = budget_bytes_.load(std::memory_order_relaxed);
    return c;
  }

  /// Adjust the global budget (e.g. an operator tightening a live
  /// system); next enforcement applies it. Lock-free: the knob lives in
  /// its own atomic so the (otherwise immutable) config needs no lock.
  void set_budget(std::uint64_t bytes) {
    budget_bytes_.store(bytes, std::memory_order_relaxed);
  }

  /// The underlying snapshot engine (epoch counters, staleness hook —
  /// eviction fires check_staleness for the victim, so an installed
  /// staleness hook also learns about every evicted laggard).
  SnapshotEngine<Source>& snapshots() { return engine_; }

  void set_staleness_hook(std::uint64_t max_epoch_lag,
                          typename SnapshotEngine<Source>::StalenessHook hook) {
    engine_.set_staleness_hook(max_epoch_lag, std::move(hook));
  }

  void set_eviction_hook(EvictionHook hook) {
    gbx::ScopedLock lk(mu_);
    eviction_hook_ = std::move(hook);
  }

  /// Outstanding (still-referenced) snapshot handles.
  std::size_t outstanding() const {
    gbx::ScopedLock lk(mu_);
    return gather_locked().size();
  }

 private:
  using Slot = detail::GovernedSlot<snapshot_type>;
  using T = value_type;
  using Block = const gbx::Dcsr<T>*;

  /// Prune dead registrations; return live slots sorted by epoch
  /// ascending (the eviction order).
  std::vector<std::shared_ptr<Slot>> gather_locked() const
      GBX_REQUIRES(mu_) {
    std::vector<std::shared_ptr<Slot>> out;
    out.reserve(slots_.size());
    std::size_t w = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (auto s = slots_[i].lock()) {
        out.push_back(std::move(s));
        // Guarded: a self-move-assign would empty the weak_ptr.
        if (w != i) slots_[w] = std::move(slots_[i]);
        ++w;
      }
    }
    slots_.resize(w);
    registered_.store(w, std::memory_order_relaxed);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a->epoch < b->epoch; });
    return out;
  }

  /// Classification baseline: the source's live blocks when a thread-
  /// safe peek exists; otherwise the newest un-evicted snapshot's
  /// blocks (that just-frozen image is the best available stand-in for
  /// the live structure — anything it does not share is certainly
  /// superseded). Sorted unique.
  void baseline_locked(const std::vector<std::shared_ptr<Slot>>& slots,
                       std::vector<Block>& out) const GBX_REQUIRES(mu_) {
    if (!governor_live_blocks(*source_, out)) {
      for (auto it = slots.rbegin(); it != slots.rend(); ++it) {  // newest 1st
        Slot& sl = **it;
        gbx::ScopedLock lk(sl.mu);
        if (sl.evicted || sl.spilled) continue;
        sl.snap.collect_blocks(out);
        break;
      }
    }
    detail::dedupe_blocks(out);
  }

  /// One identity-deduped accounting pass. `baseline_out`, when given,
  /// receives the classification baseline for reuse by the caller.
  GovernorMemory account_locked(const std::vector<std::shared_ptr<Slot>>& slots,
                                std::vector<Block>* baseline_out) const
      GBX_REQUIRES(mu_) {
    std::vector<Block> baseline;
    baseline_locked(slots, baseline);

    GovernorMemory mem;
    mem.snapshots = slots.size();
    std::vector<Block> shared_pool, private_pool;
    for (const auto& s : slots) {
      Slot& sl = *s;
      gbx::ScopedLock lk(sl.mu);
      if (sl.spilled) {
        ++mem.evicted_snapshots;
        ++mem.spilled_snapshots;
        mem.spilled_bytes += sl.spill.size();
        continue;
      }
      if (sl.evicted) ++mem.evicted_snapshots;
      std::vector<Block> blocks;
      sl.snap.collect_blocks(blocks);
      for (Block b : blocks) {
        if (std::binary_search(sl.private_blocks.begin(),
                               sl.private_blocks.end(), b))
          private_pool.push_back(b);
        else
          shared_pool.push_back(b);
      }
    }
    detail::dedupe_blocks(shared_pool);
    detail::dedupe_blocks(private_pool);
    for (Block b : shared_pool) {
      const auto bytes = static_cast<std::uint64_t>(b->memory_bytes());
      mem.largest_block_bytes = std::max(mem.largest_block_bytes, bytes);
      if (std::binary_search(baseline.begin(), baseline.end(), b))
        mem.live_bytes += bytes;
      else
        mem.pinned_bytes += bytes;
    }
    for (Block b : private_pool) {
      const auto bytes = static_cast<std::uint64_t>(b->memory_bytes());
      mem.largest_block_bytes = std::max(mem.largest_block_bytes, bytes);
      mem.private_bytes += bytes;
    }
    if (baseline_out != nullptr) *baseline_out = std::move(baseline);
    return mem;
  }

  /// Bytes of this slot's shared blocks outside the baseline — what an
  /// eviction is *about* (0 means compacting frees nothing: the slot is
  /// fully live-shared, already compact, or spilled).
  std::uint64_t pinned_involvement_locked(Slot& s,
                                          const std::vector<Block>& baseline)
      const GBX_REQUIRES(mu_) {
    gbx::ScopedLock lk(s.mu);
    if (s.spilled) return 0;
    std::vector<Block> blocks;
    s.snap.collect_blocks(blocks);
    detail::dedupe_blocks(blocks);
    std::uint64_t n = 0;
    for (Block b : blocks) {
      if (std::binary_search(s.private_blocks.begin(), s.private_blocks.end(),
                             b))
        continue;
      if (std::binary_search(baseline.begin(), baseline.end(), b)) continue;
      n += b->memory_bytes();
    }
    return n;
  }

  /// Fully compact a slot's image. Disjoint-part sources compact part
  /// by part (skipping parts already compacted, preserving the shard
  /// structure); everything else collapses the whole image into one
  /// exact Σ block (SnapshotSet::compacted(nullptr) semantics).
  snapshot_type compact_remaining_locked(Slot& s) const GBX_REQUIRES(s.mu) {
    if constexpr (detail::is_snapshot_set<snapshot_type>::value) {
      if (governor_parts_disjoint(*source_)) {
        std::vector<bool> mask(s.snap.size());
        for (std::size_t p = 0; p < mask.size(); ++p)
          mask[p] = s.compacted_parts.empty() || !s.compacted_parts[p];
        return s.snap.compacted(&mask);
      }
    }
    return s.snap.compacted();
  }

  void refresh_private_locked(Slot& s) const GBX_REQUIRES(s.mu) {
    s.private_blocks.clear();
    if constexpr (detail::is_snapshot_set<snapshot_type>::value) {
      for (std::size_t p = 0; p < s.snap.size(); ++p) {
        if (s.compacted_parts.empty() || s.compacted_parts[p])
          s.snap.part(p).collect_blocks(s.private_blocks);
      }
    } else {
      s.snap.collect_blocks(s.private_blocks);
    }
    detail::dedupe_blocks(s.private_blocks);
  }

  /// Materialize-and-release one whole snapshot. Hooks are the caller's
  /// business (enforce() fires them after dropping the registry lock).
  void evict_locked(Slot& s) GBX_REQUIRES(mu_) {
    {
      gbx::ScopedLock lk(s.mu);
      if (s.spilled) return;
      s.snap = compact_remaining_locked(s);
      if constexpr (detail::is_snapshot_set<snapshot_type>::value)
        s.compacted_parts.assign(s.snap.size(), true);
      s.evicted = true;
      refresh_private_locked(s);
    }
    counters_->evictions.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-part budget pass (set sources): for each part, classify that
  /// part's blocks across snapshots against the shard's own live blocks
  /// (plus the newest image's part) and compact the laggiest offenders.
  std::size_t enforce_parts_locked(
      const std::vector<std::shared_ptr<Slot>>& slots, std::uint64_t current)
      GBX_REQUIRES(mu_) {
    std::size_t compactions = 0;
    std::size_t nparts = 0;
    for (const auto& s : slots) {
      Slot& sl = *s;
      gbx::ScopedLock lk(sl.mu);
      if (!sl.spilled) {
        nparts = sl.snap.size();
        break;
      }
    }
    for (std::size_t p = 0; p < nparts; ++p) {
      for (;;) {
        std::vector<Block> baseline;
        if (!governor_part_live_blocks(*source_, p, baseline)) {
          // No thread-safe shard peek: the newest image stands in.
          for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
            Slot& sl = **it;
            gbx::ScopedLock lk(sl.mu);
            if (sl.spilled || part_compacted_locked(sl, p)) continue;
            sl.snap.part(p).collect_blocks(baseline);
            break;
          }
        }
        detail::dedupe_blocks(baseline);

        std::uint64_t pinned = 0;
        Slot* victim = nullptr;
        for (const auto& s : slots) {
          Slot& sl = *s;
          gbx::ScopedLock lk(sl.mu);
          if (sl.spilled || part_compacted_locked(sl, p)) continue;
          std::vector<Block> blocks;
          sl.snap.part(p).collect_blocks(blocks);
          detail::dedupe_blocks(blocks);
          std::uint64_t involved = 0;
          for (Block b : blocks) {
            if (std::binary_search(baseline.begin(), baseline.end(), b))
              continue;
            involved += b->memory_bytes();
          }
          pinned += involved;  // parts are disjoint across slots' dedup: a
                               // block may repeat across slots, but the
                               // budget is a ceiling — double counting a
                               // shared generation only evicts sooner.
          if (victim == nullptr && involved > 0 &&
              current - s->epoch >= cfg_.min_evict_lag)
            victim = s.get();
        }
        if (pinned <= cfg_.part_budget_bytes || victim == nullptr) break;
        {
          Slot& v = *victim;
          gbx::ScopedLock lk(v.mu);
          if (v.compacted_parts.empty())
            v.compacted_parts.assign(v.snap.size(), false);
          std::vector<bool> mask(v.snap.size(), false);
          mask[p] = true;
          v.snap = v.snap.compacted(&mask);
          v.compacted_parts[p] = true;
          v.evicted = true;
          refresh_private_locked(v);
        }
        counters_->part_evictions.fetch_add(1, std::memory_order_relaxed);
        ++compactions;
      }
    }
    return compactions;
  }

  bool part_compacted_locked(const Slot& s, std::size_t p) const
      GBX_REQUIRES(s.mu) {
    return !s.compacted_parts.empty() && s.compacted_parts[p];
  }

  /// Serialize a cold snapshot's compact image out of block form. The
  /// image is compacted first if eviction had not reached it yet.
  void spill_locked(Slot& s) GBX_REQUIRES(mu_) {
    gbx::ScopedLock lk(s.mu);
    if (s.spilled) return;
    auto compact = s.evicted && all_compacted_locked(s)
                       ? std::move(s.snap)
                       : compact_remaining_locked(s);
    s.spill = detail::spill_snapshot(compact);
    s.snap = detail::skeleton_of(compact);
    s.private_blocks.clear();
    s.evicted = true;
    s.spilled = true;
    counters_->spills.fetch_add(1, std::memory_order_relaxed);
  }

  bool all_compacted_locked(const Slot& s) const GBX_REQUIRES(s.mu) {
    if constexpr (detail::is_snapshot_set<snapshot_type>::value) {
      if (s.compacted_parts.empty()) return false;
      for (bool c : s.compacted_parts)
        if (!c) return false;
      return true;
    } else {
      return s.evicted;
    }
  }

  Source* source_;
  const GovernorConfig cfg_;  ///< immutable; the one runtime knob is below
  std::atomic<std::uint64_t> budget_bytes_;  ///< set_budget, any thread
  SnapshotEngine<Source> engine_;
  std::shared_ptr<detail::GovernorCounters> counters_;
  mutable gbx::Mutex mu_;  ///< registry + enforcement serialization
  mutable std::vector<std::weak_ptr<Slot>> slots_ GBX_GUARDED_BY(mu_);
  /// Registration-count hint for the write observer's lock-free skip
  /// (refreshed whenever the registry changes under mu_). May briefly
  /// overcount dead handles — the observer then runs one enforcement
  /// pass that prunes them; it never undercounts a live registration.
  mutable std::atomic<std::size_t> registered_{0};
  bool attached_write_ = false;  ///< write observer installed on source_
  EvictionHook eviction_hook_ GBX_GUARDED_BY(mu_);
};

}  // namespace hier
