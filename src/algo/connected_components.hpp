// algo/connected_components.hpp — weakly connected components.
//
// Label-propagation (Shiloach-Vishkin flavoured min-label hooking) over
// the hypersparse adjacency pattern. Labels live only on active vertices.
// On traffic matrices, components separate disjoint communication islands
// — a standard pre-step before per-community background models.
#pragma once

#include <unordered_map>
#include <vector>

#include "gbx/gbx.hpp"

namespace algo {

struct ComponentsResult {
  /// vertex -> component label (label = smallest vertex id in component).
  std::vector<std::pair<gbx::Index, gbx::Index>> labels;
  std::size_t num_components = 0;
  int iterations = 0;
};

template <class T, class M>
ComponentsResult connected_components(const gbx::Matrix<T, M>& A) {
  GBX_CHECK_DIM(A.nrows() == A.ncols(),
                "connected_components requires a square matrix");
  // Collect edges (undirected view) over the active vertex set.
  std::unordered_map<gbx::Index, std::size_t> slot;
  std::vector<gbx::Index> verts;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  A.for_each([&](gbx::Index i, gbx::Index j, T) {
    if (slot.emplace(i, verts.size()).second) verts.push_back(i);
    if (slot.emplace(j, verts.size()).second) verts.push_back(j);
    edges.emplace_back(slot.at(i), slot.at(j));
  });
  const std::size_t n = verts.size();

  ComponentsResult out;
  if (n == 0) return out;

  // Union-find with path halving (the algebraic min.+ iteration
  // converges identically; union-find is the tight implementation).
  std::vector<std::size_t> parent(n);
  for (std::size_t k = 0; k < n; ++k) parent[k] = k;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (const auto& [a, b] : edges) {
    std::size_t ra = find(a), rb = find(b);
    if (ra != rb) {
      // Hook the larger-labelled root under the smaller: the final root
      // of every tree is the smallest vertex id in its component.
      if (verts[ra] < verts[rb]) parent[rb] = ra;
      else parent[ra] = rb;
    }
  }
  out.iterations = 1;

  std::unordered_map<std::size_t, gbx::Index> roots;
  out.labels.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = find(k);
    roots.emplace(r, verts[r]);
    out.labels.emplace_back(verts[k], verts[r]);
  }
  out.num_components = roots.size();
  return out;
}

}  // namespace algo
