// algo/pagerank.hpp — PageRank over hypersparse matrices.
//
// Standard damped power iteration expressed with gbx kernels. Ranks are
// maintained only for vertices that appear in the graph (hypersparse
// discipline: the 2^32 vertex space never materializes). Dangling mass is
// redistributed uniformly over the *active* vertex set, the convention
// for graphs embedded in enormous ID spaces.
#pragma once

#include <cmath>
#include <unordered_map>
#include <vector>

#include "gbx/gbx.hpp"

namespace algo {

struct PageRankOptions {
  double damping = 0.85;
  double tol = 1e-8;     ///< L1 convergence threshold
  int max_iters = 100;
  /// Optional warm start: (vertex, rank) pairs from a previous result
  /// (PageRankResult::ranks is accepted as-is). Known vertices start at
  /// their previous rank, new vertices at 1/n, and the vector is
  /// renormalized to sum 1. On a slightly-changed graph the iteration
  /// then converges in a handful of sweeps instead of from scratch —
  /// the incremental-analytics fast path (analytics::IncrementalEngine).
  /// The converged result agrees with a cold run to within `tol`, but is
  /// not bit-identical to it (different iterate sequence); leave this
  /// null when exact reproducibility against cold runs is required.
  const std::vector<std::pair<gbx::Index, double>>* warm_start = nullptr;
};

struct PageRankResult {
  std::vector<std::pair<gbx::Index, double>> ranks;  ///< active vertices only
  int iterations = 0;
  double residual = 0;  ///< final L1 delta
};

template <class T, class M>
PageRankResult pagerank(const gbx::Matrix<T, M>& A,
                        PageRankOptions opt = {}) {
  GBX_CHECK_DIM(A.nrows() == A.ncols(), "pagerank requires a square matrix");
  GBX_CHECK_VALUE(opt.damping > 0 && opt.damping < 1,
                  "damping must be in (0, 1)");

  // Active vertex set: every endpoint of any stored edge.
  std::unordered_map<gbx::Index, std::size_t> slot;  // vertex -> dense pos
  std::vector<gbx::Index> verts;
  A.for_each([&](gbx::Index i, gbx::Index j, T) {
    if (slot.emplace(i, verts.size()).second) verts.push_back(i);
    if (slot.emplace(j, verts.size()).second) verts.push_back(j);
  });
  const std::size_t n = verts.size();
  PageRankResult out;
  if (n == 0) return out;

  // Out-degree per active vertex.
  auto outdeg = gbx::reduce_rows<gbx::PlusMonoid<T>>(
      gbx::apply<gbx::One<T>>(A));

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  if (opt.warm_start != nullptr && !opt.warm_start->empty()) {
    for (const auto& [v, r] : *opt.warm_start) {
      auto it = slot.find(v);
      if (it != slot.end()) rank[it->second] = r;
    }
    double total = 0;
    for (double r : rank) total += r;
    if (total > 0)
      for (double& r : rank) r /= total;
  }

  // Dense-ified edge walk (active set is small by construction).
  struct Edge {
    std::size_t from;
    std::size_t to;
  };
  std::vector<Edge> edges;
  edges.reserve(A.nvals());
  A.for_each([&](gbx::Index i, gbx::Index j, T) {
    edges.push_back({slot.at(i), slot.at(j)});
  });
  std::vector<double> inv_outdeg(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    auto d = outdeg.get(verts[k]);
    if (d && static_cast<double>(*d) > 0) inv_outdeg[k] = 1.0 / static_cast<double>(*d);
  }

  const double base = (1.0 - opt.damping) / static_cast<double>(n);
  for (out.iterations = 0; out.iterations < opt.max_iters; ++out.iterations) {
    // Dangling vertices spread their rank uniformly.
    double dangling = 0;
    for (std::size_t k = 0; k < n; ++k)
      if (inv_outdeg[k] == 0.0) dangling += rank[k];
    const double spread =
        base + opt.damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), spread);
    for (const auto& e : edges)
      next[e.to] += opt.damping * rank[e.from] * inv_outdeg[e.from];

    double delta = 0;
    for (std::size_t k = 0; k < n; ++k) delta += std::abs(next[k] - rank[k]);
    rank.swap(next);
    out.residual = delta;
    if (delta < opt.tol) {
      ++out.iterations;
      break;
    }
  }

  out.ranks.reserve(n);
  for (std::size_t k = 0; k < n; ++k) out.ranks.emplace_back(verts[k], rank[k]);
  std::sort(out.ranks.begin(), out.ranks.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace algo
