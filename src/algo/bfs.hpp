// algo/bfs.hpp — breadth-first search in the language of linear algebra.
//
// The canonical GraphBLAS algorithm (Kepner et al., HPEC 2016): frontier
// expansion is a masked vxm over a boolean-ish semiring. Operates on any
// hypersparse gbx matrix, including snapshots of streaming hierarchical
// matrices — BFS over a live traffic matrix answers "what can this
// compromised host reach?".
#pragma once

#include <unordered_set>
#include <vector>

#include "gbx/gbx.hpp"

namespace algo {

struct BfsResult {
  /// level[v] = hop distance from the source (source itself = 0).
  /// Only reached vertices appear.
  std::vector<std::pair<gbx::Index, std::uint32_t>> levels;
  std::uint32_t max_level = 0;
  std::size_t reached = 0;
};

/// BFS over the out-edges of A from `source`. Treats any stored entry as
/// an edge (pattern semantics).
template <class T, class M>
BfsResult bfs(const gbx::Matrix<T, M>& A, gbx::Index source) {
  GBX_CHECK_DIM(A.nrows() == A.ncols(), "bfs requires a square adjacency matrix");
  GBX_CHECK_INDEX(source < A.nrows(), "bfs source out of range");

  BfsResult out;
  std::unordered_set<gbx::Index> visited;
  visited.insert(source);
  out.levels.emplace_back(source, 0);

  gbx::SparseVector<T> frontier(A.nrows());
  {
    std::vector<gbx::Index> idx{source};
    std::vector<T> val{T{1}};
    frontier.build(idx, val);
  }

  for (std::uint32_t depth = 1; frontier.nvals() > 0; ++depth) {
    // next = frontier ⊕.⊗ A over the (lor, land) pattern semiring.
    auto next = gbx::vxm<gbx::LorLand<T>>(frontier, A);
    // Mask out already-visited vertices (the "q<!v>" of the classic
    // GraphBLAS BFS loop).
    std::vector<gbx::Index> idx;
    std::vector<T> val;
    next.for_each([&](gbx::Index v, T) {
      if (visited.insert(v).second) {
        idx.push_back(v);
        val.push_back(T{1});
        out.levels.emplace_back(v, depth);
        out.max_level = depth;
      }
    });
    if (idx.empty()) break;
    gbx::SparseVector<T> nf(A.nrows());
    nf.adopt(std::move(idx), std::move(val));
    frontier = std::move(nf);
  }
  out.reached = out.levels.size();
  return out;
}

}  // namespace algo
