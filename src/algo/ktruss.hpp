// algo/ktruss.hpp — k-truss decomposition via iterated support counting.
//
// The other GraphChallenge kernel the SuiteSparse authors report (Davis,
// HPEC 2018): the k-truss of G is the maximal subgraph in which every
// edge participates in at least k-2 triangles. Algebraically: iterate
// support = (A x A) .* A, drop edges below k-2, until fixpoint.
#pragma once

#include <cstdint>

#include "gbx/gbx.hpp"

namespace algo {

struct KTrussResult {
  gbx::Matrix<double> subgraph;  ///< symmetric pattern of surviving edges
  std::size_t edges = 0;         ///< undirected edge count
  int iterations = 0;
};

/// k >= 3. Input values are ignored (pattern semantics); A is
/// symmetrized and self-loops dropped.
template <class T, class M>
KTrussResult ktruss(const gbx::Matrix<T, M>& A, std::uint32_t k) {
  GBX_CHECK_DIM(A.nrows() == A.ncols(), "ktruss requires a square matrix");
  GBX_CHECK_VALUE(k >= 3, "k-truss requires k >= 3");

  auto p = gbx::apply<gbx::One<T>>(gbx::offdiag(A));
  auto sT = gbx::transpose(p);
  auto s0 = gbx::ewise_add<gbx::LogicalOr<T>>(p, sT);

  gbx::Matrix<double> cur(A.nrows(), A.ncols());
  {
    gbx::Tuples<double> t;
    s0.for_each([&](gbx::Index i, gbx::Index j, T) { t.push_back(i, j, 1.0); });
    cur.append(t);
    cur.materialize();
  }

  KTrussResult out{gbx::Matrix<double>(A.nrows(), A.ncols())};
  const double min_support = static_cast<double>(k - 2);
  for (int iter = 1;; ++iter) {
    // support(i,j) = #common neighbours = (C x C)(i,j) on the pattern,
    // masked to existing edges.
    auto wedges = gbx::mxm<gbx::PlusTimes<double>>(cur, cur);
    auto support = gbx::ewise_mult<gbx::Second<double>>(cur, wedges);
    // NOTE: Second keeps the wedge count at edge positions; edges of cur
    // absent from wedges (support 0) vanish from the intersection and
    // are pruned below as intended.
    auto kept = gbx::select_gt(support, min_support - 1.0);
    auto pattern = gbx::apply<gbx::One<double>>(kept);
    out.iterations = iter;
    if (pattern.nvals() == cur.nvals()) {
      out.subgraph = std::move(pattern);
      break;
    }
    cur = std::move(pattern);
    if (cur.nvals() == 0) {
      out.subgraph = std::move(cur);
      break;
    }
  }
  out.edges = out.subgraph.nvals() / 2;  // symmetric storage
  return out;
}

}  // namespace algo
