// algo/triangle_count.hpp — triangle counting via masked SpGEMM.
//
// The Davis / GraphChallenge formulation the paper's authors benchmark
// SuiteSparse with (Davis, HPEC 2018): for an undirected simple graph
// with adjacency A, ntri = sum(L .* (L x U)) where L/U are the strict
// triangles of A. Here expressed with gbx kernels: tril/triu selection,
// plus-times mxm, eWiseMult mask, plus-reduce.
#pragma once

#include <cstdint>

#include "gbx/gbx.hpp"

namespace algo {

/// Number of triangles in the undirected simple graph whose adjacency
/// pattern is A (values ignored; A is symmetrized internally so directed
/// traffic matrices can be passed straight in; self-loops dropped).
template <class T, class M>
std::uint64_t triangle_count(const gbx::Matrix<T, M>& A) {
  GBX_CHECK_DIM(A.nrows() == A.ncols(),
                "triangle_count requires a square matrix");
  // Symmetrize the pattern: S = one(A) ⊕ one(A)^T, self-loops removed.
  auto p = gbx::apply<gbx::One<T>>(gbx::offdiag(A));
  auto s = gbx::ewise_add<gbx::LogicalOr<T>>(p, gbx::transpose(p));

  auto l = gbx::tril(s, -1);
  auto u = gbx::triu(s, 1);
  // C<L> = L x U: wedge counts computed only at existing edges — the
  // masked-SpGEMM formulation (SuiteSparse's tricount), which never
  // materializes wedge counts for non-edges.
  auto closed = gbx::mxm_masked<gbx::PlusTimes<T>>(l, l, u);
  const T total = gbx::reduce_scalar<gbx::PlusMonoid<T>>(closed);
  return static_cast<std::uint64_t>(total);
}

}  // namespace algo
