// algo/algo.hpp — umbrella header for graph algorithms over gbx.
//
// The standard GraphBLAS algorithm set the paper's authors exercise their
// library with (BFS, PageRank, triangle counting, k-truss, components),
// all expressed over hypersparse matrices — including live snapshots of
// hierarchical traffic matrices.
#pragma once

#include "algo/bfs.hpp"
#include "algo/connected_components.hpp"
#include "algo/ktruss.hpp"
#include "algo/pagerank.hpp"
#include "algo/triangle_count.hpp"
