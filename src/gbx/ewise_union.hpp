// gbx/ewise_union.hpp — eWiseUnion with operand defaults (GxB_eWiseUnion).
//
// Unlike eWiseAdd — which passes through the present operand unchanged at
// union-only coordinates — eWiseUnion substitutes explicit default values
// for the missing side and always applies the operator:
//   C(i,j) = op(A(i,j) or alpha, B(i,j) or beta).
// Essential for non-idempotent ops like minus: A - B needs beta = 0, not
// pass-through of B.
#pragma once

#include "gbx/matrix.hpp"
#include "gbx/sort.hpp"

namespace gbx {

template <class Op, class T, class M>
Matrix<T, M> ewise_union(const Matrix<T, M>& A, T alpha, const Matrix<T, M>& B,
                         T beta) {
  GBX_CHECK_DIM(A.nrows() == B.nrows() && A.ncols() == B.ncols(),
                "eWiseUnion dimension mismatch");
  const Dcsr<T>& sa = A.storage();
  const Dcsr<T>& sb = B.storage();

  std::vector<Entry<T>> ent;
  ent.reserve(sa.nnz() + sb.nnz());

  // Tag-merge both operands' entries, then combine per coordinate.
  sa.for_each([&](Index i, Index j, T v) { ent.push_back({i, j, v}); });
  const std::size_t na = ent.size();
  sb.for_each([&](Index i, Index j, T v) { ent.push_back({i, j, v}); });

  // Positions < na came from A. Sort by key, stable-ish handling below
  // relies on the key only; at shared keys both entries exist.
  std::vector<std::uint8_t> from_b(ent.size());
  for (std::size_t k = na; k < ent.size(); ++k) from_b[k] = 1;
  // Sort indices to keep origin tags aligned.
  std::vector<std::size_t> order(ent.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (ent[x].row != ent[y].row) return ent[x].row < ent[y].row;
    if (ent[x].col != ent[y].col) return ent[x].col < ent[y].col;
    return from_b[x] < from_b[y];  // A before B at shared keys
  });

  std::vector<Entry<T>> out;
  out.reserve(ent.size());
  std::size_t k = 0;
  while (k < order.size()) {
    const auto& e1 = ent[order[k]];
    const bool b1 = from_b[order[k]] != 0;
    if (k + 1 < order.size()) {
      const auto& e2 = ent[order[k + 1]];
      if (entry_key_equal(e1, e2)) {
        out.push_back({e1.row, e1.col, Op::apply(e1.val, e2.val)});
        k += 2;
        continue;
      }
    }
    out.push_back(b1 ? Entry<T>{e1.row, e1.col, Op::apply(alpha, e1.val)}
                     : Entry<T>{e1.row, e1.col, Op::apply(e1.val, beta)});
    ++k;
  }
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             Dcsr<T>::from_sorted_unique(out));
}

/// A - B with proper union semantics (missing entries read as 0).
template <class T, class M>
Matrix<T, M> subtract(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  return ewise_union<Minus<T>>(A, T{0}, B, T{0});
}

}  // namespace gbx
