// gbx/vector.hpp — sparse vectors (GrB_Vector analogue).
//
// Stored as parallel sorted-unique (index, value) arrays. Vectors appear
// as the results of row/column reductions and as mxv/vxm operands; they
// follow the same hypersparse discipline as matrices (storage ∝ nvals).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/monoid.hpp"
#include "gbx/types.hpp"

namespace gbx {

template <class T>
class SparseVector {
 public:
  using value_type = T;

  explicit SparseVector(Index size) : size_(size) {
    GBX_CHECK_VALUE(size > 0, "vector size must be > 0");
  }

  Index size() const { return size_; }
  std::size_t nvals() const { return idx_.size(); }
  bool empty() const { return idx_.empty(); }

  void clear() {
    idx_.clear();
    val_.clear();
  }

  /// Build from possibly-duplicated, unsorted tuples, folding duplicates
  /// with the monoid.
  template <class MonoidT = PlusMonoid<T>>
  void build(std::span<const Index> idx, std::span<const T> val) {
    GBX_CHECK_DIM(idx.size() == val.size(), "index/value length mismatch");
    clear();
    std::vector<std::pair<Index, T>> tmp(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      GBX_CHECK_INDEX(idx[k] < size_, "vector index out of bounds");
      tmp[k] = {idx[k], val[k]};
    }
    std::sort(tmp.begin(), tmp.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [i, v] : tmp) {
      if (!idx_.empty() && idx_.back() == i) {
        val_.back() = MonoidT::apply(val_.back(), v);
      } else {
        idx_.push_back(i);
        val_.push_back(v);
      }
    }
  }

  std::optional<T> get(Index i) const {
    GBX_CHECK_INDEX(i < size_, "vector index out of bounds");
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    if (it == idx_.end() || *it != i) return std::nullopt;
    return val_[static_cast<std::size_t>(it - idx_.begin())];
  }

  /// Direct sorted-unique assembly (kernel output path).
  void adopt(std::vector<Index> idx, std::vector<T> val) {
    GBX_CHECK_DIM(idx.size() == val.size(), "index/value length mismatch");
    idx_ = std::move(idx);
    val_ = std::move(val);
  }

  template <class F>
  void for_each(F&& f) const {
    for (std::size_t k = 0; k < idx_.size(); ++k) f(idx_[k], val_[k]);
  }

  std::span<const Index> indices() const { return idx_; }
  std::span<const T> values() const { return val_; }

  /// Reduce all stored values with a monoid; identity when empty.
  template <class MonoidT>
  T reduce() const {
    T acc = MonoidT::identity();
    for (const T& v : val_) acc = MonoidT::apply(acc, v);
    return acc;
  }

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.size_ == b.size_ && a.idx_ == b.idx_ && a.val_ == b.val_;
  }

 private:
  Index size_;
  std::vector<Index> idx_;  // sorted, unique
  std::vector<T> val_;
};

}  // namespace gbx
