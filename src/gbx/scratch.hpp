// gbx/scratch.hpp — reusable scratch-buffer arenas for the fold pipeline.
//
// Every cascade fold needs the same transient buffers: radix key/value
// ping-pong arrays, digit histograms, and row-merge index scratch. The
// seed implementation allocated fresh std::vectors for each of them on
// every fold, which put a malloc/free pair (and a page-fault warmup) on
// the hottest path in the repo. ScratchPool recycles those buffers: a
// buffer is leased with acquire<T>(n), used, and returned to the pool
// when the lease goes out of scope. Once capacities plateau — after a
// handful of folds at steady batch size — acquire() never touches the
// heap again, which is what makes the steady-state ingest fold
// allocation-free (see tests/test_ingest_hotpath.cpp's counting hook).
//
// Pools are intended to be thread-local (ScratchPool::local()): gbx
// matrices are single-writer, ParallelStream gives each lane its own
// worker thread, and ShardedHier folds under per-shard locks on the
// writer's thread, so a per-thread pool is never contended and needs no
// locking. A lane's pool dies with its worker thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace gbx {

class ScratchPool {
 public:
  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// RAII lease of a typed scratch buffer. Contents are uninitialized.
  /// Movable, not copyable; the slot returns to the pool on destruction.
  /// The lease must not outlive the pool.
  template <class T>
  class Buf {
   public:
    Buf() = default;
    Buf(Buf&& o) noexcept
        : pool_(o.pool_), slot_(o.slot_), data_(o.data_), size_(o.size_) {
      o.pool_ = nullptr;
    }
    Buf& operator=(Buf&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        slot_ = o.slot_;
        data_ = o.data_;
        size_ = o.size_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    ~Buf() { release(); }

    T* data() const { return data_; }
    std::size_t size() const { return size_; }
    T& operator[](std::size_t i) const { return data_[i]; }
    T* begin() const { return data_; }
    T* end() const { return data_ + size_; }
    explicit operator bool() const { return pool_ != nullptr; }

    /// Return the slot to the pool early (idempotent).
    void release() {
      if (pool_ != nullptr) {
        pool_->slots_[slot_].in_use = false;
        pool_ = nullptr;
      }
    }

   private:
    friend class ScratchPool;
    Buf(ScratchPool* pool, std::size_t slot, T* data, std::size_t size)
        : pool_(pool), slot_(slot), data_(data), size_(size) {}

    ScratchPool* pool_ = nullptr;
    std::size_t slot_ = 0;
    T* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Lease a buffer of n objects of T. Reuses the best-fitting free slot;
  /// grows (geometrically) only when no free slot is large enough.
  template <class T>
  Buf<T> acquire(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "scratch buffers hold trivial objects only");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned scratch types are not supported");
    const std::size_t bytes = n * sizeof(T);
    std::size_t best = kNone, best_cap = ~std::size_t{0};
    std::size_t grow = kNone, grow_cap = 0;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].in_use) continue;
      if (slots_[s].cap >= bytes) {
        if (slots_[s].cap < best_cap) {
          best = s;
          best_cap = slots_[s].cap;
        }
      } else if (grow == kNone || slots_[s].cap >= grow_cap) {
        grow = s;  // largest too-small free slot: cheapest to regrow
        grow_cap = slots_[s].cap;
      }
    }
    if (best == kNone) {
      ++grow_count_;
      const std::size_t cap = bytes + bytes / 2;  // headroom: plateau fast
      if (grow != kNone) {
        bytes_cached_ -= slots_[grow].cap;
        slots_[grow].mem.reset(new std::byte[cap]);
        slots_[grow].cap = cap;
        best = grow;
      } else {
        slots_.push_back(Slot{std::unique_ptr<std::byte[]>(new std::byte[cap]),
                              cap, false});
        best = slots_.size() - 1;
      }
      bytes_cached_ += cap;
    }
    slots_[best].in_use = true;
    return Buf<T>(this, best, reinterpret_cast<T*>(slots_[best].mem.get()), n);
  }

  /// Drop every free slot's storage (leased buffers are untouched).
  void release_memory() {
    for (auto& s : slots_) {
      if (s.in_use) continue;
      bytes_cached_ -= s.cap;
      s.mem.reset();
      s.cap = 0;
    }
  }

  /// Number of times acquire() had to touch the heap. Flat across folds
  /// at steady state — the allocation-freedom instrumentation hook.
  std::uint64_t grow_count() const { return grow_count_; }

  /// Bytes currently held by the pool (leased + free slots).
  std::size_t bytes_cached() const { return bytes_cached_; }

  /// The calling thread's pool. gbx kernels use this by default, so a
  /// single-writer matrix or a stream lane warms exactly one arena.
  static ScratchPool& local() {
    static thread_local ScratchPool pool;
    return pool;
  }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};
  struct Slot {
    std::unique_ptr<std::byte[]> mem;
    std::size_t cap = 0;
    bool in_use = false;
  };

  std::vector<Slot> slots_;
  std::uint64_t grow_count_ = 0;
  std::size_t bytes_cached_ = 0;
};

}  // namespace gbx
