// gbx/gbx.hpp — umbrella header for the gbx hypersparse kernel library.
//
// gbx is a from-scratch C++20 reimplementation of the GraphBLAS
// functionality the hierarchical hypersparse matrix paper builds on
// (SuiteSparse:GraphBLAS; Davis, ACM TOMS 2019): typed algebra
// (ops/monoids/semirings), hypersparse DCSR storage with pending-tuple
// streaming updates, and the standard kernel set (eWise, mxm/mxv/vxm,
// reduce, apply, select, extract, assign, transpose, kron, masks).
#pragma once

#include "gbx/apply.hpp"
#include "gbx/assign.hpp"
#include "gbx/coo.hpp"
#include "gbx/csr.hpp"
#include "gbx/dcsr.hpp"
#include "gbx/delta.hpp"
#include "gbx/error.hpp"
#include "gbx/ewise.hpp"
#include "gbx/ewise_union.hpp"
#include "gbx/extract.hpp"
#include "gbx/fold.hpp"
#include "gbx/index_apply.hpp"
#include "gbx/io.hpp"
#include "gbx/iterator.hpp"
#include "gbx/kron.hpp"
#include "gbx/mask.hpp"
#include "gbx/matrix.hpp"
#include "gbx/matrix_ops.hpp"
#include "gbx/monoid.hpp"
#include "gbx/mxm.hpp"
#include "gbx/mxm_masked.hpp"
#include "gbx/mxv.hpp"
#include "gbx/outer.hpp"
#include "gbx/ops.hpp"
#include "gbx/parallel.hpp"
#include "gbx/reduce.hpp"
#include "gbx/scratch.hpp"
#include "gbx/select.hpp"
#include "gbx/semiring.hpp"
#include "gbx/serialize.hpp"
#include "gbx/sort.hpp"
#include "gbx/structure.hpp"
#include "gbx/transpose.hpp"
#include "gbx/types.hpp"
#include "gbx/vector.hpp"
#include "gbx/vector_ops.hpp"
#include "gbx/view.hpp"
