// gbx/monoid.hpp — commutative monoids over gbx binary operators.
//
// A monoid pairs an associative, commutative binary operator with its
// identity element. Monoids are what make the paper's hierarchical cascade
// exact: folding A_i into A_{i+1} in any batching order yields the same
// matrix as direct accumulation, because (+) is associative/commutative.
#pragma once

#include <limits>

#include "gbx/ops.hpp"

namespace gbx {

/// Monoid = (binary op, identity). `Op` must be associative and
/// commutative over its domain for gbx kernels to be order-insensitive.
template <class Op, class T = typename Op::value_type>
struct Monoid {
  using op_type = Op;
  using value_type = T;

  static constexpr T apply(T a, T b) { return Op::apply(a, b); }
  static constexpr const char* name() { return Op::name(); }
};

namespace detail {
template <class T>
constexpr T min_identity() {
  return std::numeric_limits<T>::max();
}
template <class T>
constexpr T max_identity() {
  return std::numeric_limits<T>::lowest();
}
}  // namespace detail

/// plus monoid: identity 0. The workhorse of hierarchical hypersparse
/// matrices (all cascade folds are plus-reductions).
template <class T>
struct PlusMonoid : Monoid<Plus<T>> {
  static constexpr T identity() { return T{0}; }
};

/// times monoid: identity 1.
template <class T>
struct TimesMonoid : Monoid<Times<T>> {
  static constexpr T identity() { return T{1}; }
};

/// min monoid: identity +inf (numeric max).
template <class T>
struct MinMonoid : Monoid<Min<T>> {
  static constexpr T identity() { return detail::min_identity<T>(); }
};

/// max monoid: identity -inf (numeric lowest).
template <class T>
struct MaxMonoid : Monoid<Max<T>> {
  static constexpr T identity() { return detail::max_identity<T>(); }
};

/// logical-or monoid: identity 0 (false).
template <class T>
struct LorMonoid : Monoid<LogicalOr<T>> {
  static constexpr T identity() { return T{0}; }
};

/// logical-and monoid: identity 1 (true).
template <class T>
struct LandMonoid : Monoid<LogicalAnd<T>> {
  static constexpr T identity() { return T{1}; }
};

/// logical-xor monoid: identity 0.
template <class T>
struct LxorMonoid : Monoid<LogicalXor<T>> {
  static constexpr T identity() { return T{0}; }
};

/// any monoid (GxB_ANY): identity is unobservable; 0 by convention.
template <class T>
struct AnyMonoid : Monoid<Any<T>> {
  static constexpr T identity() { return T{0}; }
};

}  // namespace gbx
