// gbx/select.hpp — entry selection (GxB_select analogue).
//
// Keeps the subset of entries satisfying a predicate over (row, col,
// value). Common structural selectors (tril/triu/diag/offdiag) and value
// selectors (nonzero, thresholds) are provided as helpers.
#pragma once

#include <vector>

#include "gbx/matrix.hpp"

namespace gbx {

/// C = A where pred(i, j, v). The predicate must be pure.
template <class T, class M, class Pred>
Matrix<T, M> select(const Matrix<T, M>& A, Pred&& pred) {
  const Dcsr<T>& s = A.storage();
  std::vector<Entry<T>> keep;
  keep.reserve(s.nnz() / 4 + 16);
  s.for_each([&](Index i, Index j, T v) {
    if (pred(i, j, v)) keep.push_back({i, j, v});
  });
  keep.shrink_to_fit();
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             Dcsr<T>::from_sorted_unique(keep));
}

/// Lower triangle at or below diagonal k (j <= i + k, signed offset).
template <class T, class M>
Matrix<T, M> tril(const Matrix<T, M>& A, std::int64_t k = 0) {
  return select(A, [k](Index i, Index j, T) {
    // Compare in signed 128-bit space to dodge wraparound at huge indices.
    return static_cast<__int128>(j) <= static_cast<__int128>(i) + k;
  });
}

/// Upper triangle at or above diagonal k.
template <class T, class M>
Matrix<T, M> triu(const Matrix<T, M>& A, std::int64_t k = 0) {
  return select(A, [k](Index i, Index j, T) {
    return static_cast<__int128>(j) >= static_cast<__int128>(i) + k;
  });
}

/// Diagonal entries only.
template <class T, class M>
Matrix<T, M> diag(const Matrix<T, M>& A) {
  return select(A, [](Index i, Index j, T) { return i == j; });
}

/// Off-diagonal entries only (GraphBLAS offdiag; removes self-loops).
template <class T, class M>
Matrix<T, M> offdiag(const Matrix<T, M>& A) {
  return select(A, [](Index i, Index j, T) { return i != j; });
}

/// Drop explicit zeros.
template <class T, class M>
Matrix<T, M> prune_zeros(const Matrix<T, M>& A) {
  return select(A, [](Index, Index, T v) { return v != T{}; });
}

/// Keep entries with value strictly greater than a threshold.
template <class T, class M>
Matrix<T, M> select_gt(const Matrix<T, M>& A, T thresh) {
  return select(A, [thresh](Index, Index, T v) { return v > thresh; });
}

}  // namespace gbx
