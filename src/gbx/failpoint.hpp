// gbx/failpoint.hpp — process-wide deterministic fault-injection registry.
//
// Generalizes the test-local FailpointBackend of the out-of-core fault
// suite (PR 7) into one named-failpoint registry every subsystem can
// consult: the block store's write/read path, the network client's
// send/recv path, and the replication shipper/replica ack paths all ask
// `failpoints().hit("name")` at their injection site and act on the
// returned action. Tests arm failpoints by name with either an
// op-count trigger (fire at exactly the Nth passage, 1-based — the
// FailpointBackend idiom) or a seeded probability trigger (fire each
// passage with probability p under a pinned RNG), so a whole failover
// matrix — ENOSPC, torn write, EPIPE, partial send, delayed ack,
// stalled peer — replays deterministically.
//
// Cost discipline: production code paths pay one relaxed atomic load
// when nothing is armed (`armed()` is the guard), and the registry
// itself is only locked while at least one failpoint is live. Arming is
// test-only; there is no failpoint in any hot loop's per-entry work —
// sites sit at I/O boundaries (one syscall already paid).
//
// Thread safety: hit() may be called from any thread (lane workers,
// event loops, shipper threads); a gbx::Mutex serializes trigger state.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>

#include "gbx/thread_annotations.hpp"

namespace gbx {

/// What an armed failpoint does to the operation that trips it. The
/// *site* interprets the action (a store write "tears" by persisting a
/// prefix; a client send "tears" by sending a prefix then erroring).
enum class FailAction {
  kError,    ///< fail loudly: throw / simulated errno (ENOSPC, EPIPE, EIO)
  kTorn,     ///< succeed partially and silently (torn write / short read)
  kPartial,  ///< transmit a prefix, then fail loudly (partial send)
  kDelay,    ///< stall this operation for delay_ms, then proceed (slow ack)
  kStall,    ///< stop making progress for delay_ms (partitioned peer)
};

/// Trigger + behaviour of one armed failpoint.
struct FailpointSpec {
  FailAction action = FailAction::kError;
  /// Fire at exactly the Nth passage through the site (1-based) counted
  /// from arming; 0 disables the op-count trigger.
  std::uint64_t at_op = 0;
  /// Fire each passage with this probability (0 disables); draws come
  /// from a generator seeded with `seed`, so runs replay exactly.
  double probability = 0;
  std::uint64_t seed = 0;
  /// kTorn / kPartial: fraction of the operation that still happens.
  double fraction = 0.5;
  /// kDelay / kStall: how long the site pauses, milliseconds.
  int delay_ms = 20;
  /// Total times this failpoint may fire before disarming itself;
  /// 1 reproduces the fire-once FailpointBackend semantics.
  std::uint64_t max_fires = 1;
};

/// What hit() hands back to a tripped site.
struct FailpointHit {
  FailAction action = FailAction::kError;
  double fraction = 0.5;
  int delay_ms = 0;
};

class FailpointRegistry {
 public:
  /// Arm (or re-arm, resetting counters) the named failpoint.
  void arm(const std::string& name, FailpointSpec spec) {
    gbx::ScopedLock lk(mu_);
    auto [it, inserted] = points_.try_emplace(name);
    it->second.spec = spec;
    it->second.ops = 0;
    it->second.fires = 0;
    it->second.rng.seed(spec.seed);
    if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
  }

  void disarm(const std::string& name) {
    gbx::ScopedLock lk(mu_);
    if (points_.erase(name) > 0)
      armed_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Disarm everything (test teardown).
  void clear() {
    gbx::ScopedLock lk(mu_);
    points_.clear();
    armed_.store(0, std::memory_order_relaxed);
  }

  /// Cheap guard for injection sites: false ⇒ nothing armed anywhere.
  bool armed() const { return armed_.load(std::memory_order_relaxed) > 0; }

  /// Count one passage through the named site; returns the action to
  /// take when the failpoint fires on this passage. Sites should guard
  /// with armed() so the no-failpoint path stays one atomic load.
  std::optional<FailpointHit> hit(const std::string& name) {
    if (!armed()) return std::nullopt;
    gbx::ScopedLock lk(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return std::nullopt;
    State& st = it->second;
    ++st.ops;
    bool fire = false;
    if (st.spec.at_op != 0 && st.ops == st.spec.at_op) fire = true;
    if (!fire && st.spec.probability > 0) {
      std::uniform_real_distribution<double> u(0.0, 1.0);
      fire = u(st.rng) < st.spec.probability;
    }
    if (!fire) return std::nullopt;
    FailpointHit h;
    h.action = st.spec.action;
    h.fraction = st.spec.fraction;
    h.delay_ms = st.spec.delay_ms;
    if (++st.fires >= st.spec.max_fires) {
      points_.erase(it);
      armed_.fetch_sub(1, std::memory_order_relaxed);
    }
    return h;
  }

  /// Passages counted at the named site since arming (0 if not armed).
  /// Lets tests arm relative triggers: "fail N writes from now".
  std::uint64_t ops(const std::string& name) const {
    gbx::ScopedLock lk(mu_);
    auto it = points_.find(name);
    return it == points_.end() ? 0 : it->second.ops;
  }

 private:
  struct State {
    FailpointSpec spec;
    std::uint64_t ops = 0;
    std::uint64_t fires = 0;
    std::mt19937_64 rng;
  };

  mutable gbx::Mutex mu_;
  std::unordered_map<std::string, State> points_ GBX_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> armed_{0};
};

/// The process-wide registry every injection site consults.
inline FailpointRegistry& failpoints() {
  static FailpointRegistry reg;
  return reg;
}

}  // namespace gbx
