// gbx/mask.hpp — structural masks (GrB mask analogue).
//
// gbx supports structural masks: an entry of the result survives iff the
// mask holds an entry at that coordinate (or does NOT, when complemented).
// Valued masks can be emulated by pruning zeros from the mask first
// (select.hpp / prune_zeros).
#pragma once

#include "gbx/ewise.hpp"
#include "gbx/matrix.hpp"

namespace gbx {

/// C = A<M>: keep entries of A at coordinates present in mask.
template <class T, class M, class TM, class MM>
Matrix<T, M> mask_keep(const Matrix<T, M>& A, const Matrix<TM, MM>& mask) {
  GBX_CHECK_DIM(A.nrows() == mask.nrows() && A.ncols() == mask.ncols(),
                "mask dimension mismatch");
  const Dcsr<TM>& sm = mask.storage();
  const Dcsr<T>& sa = A.storage();
  std::vector<Entry<T>> keep;
  keep.reserve(std::min(sa.nnz(), sm.nnz()));
  sa.for_each([&](Index i, Index j, T v) {
    if (sm.get(i, j).has_value()) keep.push_back({i, j, v});
  });
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             Dcsr<T>::from_sorted_unique(keep));
}

/// C = A<!M>: keep entries of A at coordinates absent from mask.
template <class T, class M, class TM, class MM>
Matrix<T, M> mask_drop(const Matrix<T, M>& A, const Matrix<TM, MM>& mask) {
  GBX_CHECK_DIM(A.nrows() == mask.nrows() && A.ncols() == mask.ncols(),
                "mask dimension mismatch");
  const Dcsr<TM>& sm = mask.storage();
  const Dcsr<T>& sa = A.storage();
  std::vector<Entry<T>> keep;
  keep.reserve(sa.nnz());
  sa.for_each([&](Index i, Index j, T v) {
    if (!sm.get(i, j).has_value()) keep.push_back({i, j, v});
  });
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             Dcsr<T>::from_sorted_unique(keep));
}

}  // namespace gbx
