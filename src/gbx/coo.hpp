// gbx/coo.hpp — unsorted tuple (COO) buffers.
//
// Tuples is the gbx "pending updates" container: a flat append-only list
// of (row, col, value) entries with no ordering or uniqueness invariant.
// It is the fast-memory landing zone of the hierarchical cascade — an
// append costs one store, so streaming inserts never touch the compressed
// structure until a fold is forced.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/sort.hpp"
#include "gbx/types.hpp"

namespace gbx {

template <class T>
class Tuples {
 public:
  using value_type = T;
  using entry_type = Entry<T>;

  Tuples() = default;
  explicit Tuples(std::vector<entry_type> entries)
      : entries_(std::move(entries)) {}

  /// Number of buffered entries (duplicates counted; this is the paper's
  /// "number of entries in a level" that cut thresholds compare against).
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }
  /// Release capacity as well as contents (cascade resets use this so a
  /// cleared fast level really returns its memory).
  void reset() { std::vector<entry_type>().swap(entries_); }

  void push_back(Index row, Index col, T val) {
    entries_.push_back(entry_type{row, col, val});
  }

  /// Bulk append from parallel arrays (the GrB_Matrix_build-style API).
  void append(std::span<const Index> rows, std::span<const Index> cols,
              std::span<const T> vals) {
    GBX_CHECK_DIM(rows.size() == cols.size() && cols.size() == vals.size(),
                  "tuple arrays must have equal length");
    const std::size_t base = entries_.size();
    entries_.resize(base + rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
      entries_[base + i] = entry_type{rows[i], cols[i], vals[i]};
  }

  void append(const Tuples& other) {
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
  }

  /// Sort by (row, col) and fold duplicates with the monoid. After this
  /// the buffer is a valid input for Dcsr construction / merge.
  template <class MonoidT>
  void sort_dedup() {
    sort_entries(entries_);
    dedup_sorted_entries_parallel<MonoidT>(entries_);
  }

  std::vector<entry_type>& entries() { return entries_; }
  const std::vector<entry_type>& entries() const { return entries_; }

  const entry_type& operator[](std::size_t i) const { return entries_[i]; }
  entry_type& operator[](std::size_t i) { return entries_[i]; }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Bytes of heap memory currently held (fast-memory footprint metric).
  std::size_t memory_bytes() const {
    return entries_.capacity() * sizeof(entry_type);
  }

 private:
  std::vector<entry_type> entries_;
};

}  // namespace gbx
