// gbx/semiring.hpp — semirings for matrix multiplication.
//
// A semiring pairs an additive monoid with a multiplicative binary op,
// exactly as in the GraphBLAS math spec (Kepner et al., HPEC 2016). mxm,
// mxv and vxm are parameterized over these.
#pragma once

#include "gbx/monoid.hpp"

namespace gbx {

/// Semiring = (additive monoid ⊕, multiplicative op ⊗).
template <class AddMonoid, class MulOp>
struct Semiring {
  using add_monoid = AddMonoid;
  using mul_op = MulOp;
  using value_type = typename AddMonoid::value_type;

  static constexpr value_type add(value_type a, value_type b) {
    return AddMonoid::apply(a, b);
  }
  static constexpr value_type mul(value_type a, value_type b) {
    return MulOp::apply(a, b);
  }
  static constexpr value_type zero() { return AddMonoid::identity(); }
};

/// Conventional arithmetic semiring (+, *): linear algebra.
template <class T>
using PlusTimes = Semiring<PlusMonoid<T>, Times<T>>;

/// Tropical semiring (min, +): shortest paths.
template <class T>
using MinPlus = Semiring<MinMonoid<T>, Plus<T>>;

/// (max, +): critical paths / longest chains.
template <class T>
using MaxPlus = Semiring<MaxMonoid<T>, Plus<T>>;

/// (min, times).
template <class T>
using MinTimes = Semiring<MinMonoid<T>, Times<T>>;

/// Boolean semiring (or, and): reachability.
template <class T>
using LorLand = Semiring<LorMonoid<T>, LogicalAnd<T>>;

/// (plus, first)/(plus, second): degree-style counting products.
template <class T>
using PlusFirst = Semiring<PlusMonoid<T>, First<T>>;
template <class T>
using PlusSecond = Semiring<PlusMonoid<T>, Second<T>>;

/// (plus, one-like via LAnd on 0/1 patterns) — triangle counting style.
template <class T>
using PlusLand = Semiring<PlusMonoid<T>, LogicalAnd<T>>;

}  // namespace gbx
