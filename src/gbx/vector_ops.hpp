// gbx/vector_ops.hpp — element-wise kernels on sparse vectors.
//
// The vector counterparts of ewise.hpp/apply.hpp/select.hpp: union and
// intersection merges, value transforms, and predicate selection, all
// preserving the sorted-unique invariant.
#pragma once

#include <vector>

#include "gbx/vector.hpp"

namespace gbx {

/// w = u ⊕ v (union; both-present combined with Op).
template <class Op, class T>
SparseVector<T> ewise_add(const SparseVector<T>& u, const SparseVector<T>& v) {
  GBX_CHECK_DIM(u.size() == v.size(), "vector eWiseAdd dimension mismatch");
  auto ui = u.indices();
  auto uv = u.values();
  auto vi = v.indices();
  auto vv = v.values();
  std::vector<Index> oi;
  std::vector<T> ov;
  oi.reserve(ui.size() + vi.size());
  ov.reserve(ui.size() + vi.size());
  std::size_t a = 0, b = 0;
  while (a < ui.size() && b < vi.size()) {
    if (ui[a] < vi[b]) {
      oi.push_back(ui[a]);
      ov.push_back(uv[a++]);
    } else if (vi[b] < ui[a]) {
      oi.push_back(vi[b]);
      ov.push_back(vv[b++]);
    } else {
      oi.push_back(ui[a]);
      ov.push_back(Op::apply(uv[a++], vv[b++]));
    }
  }
  for (; a < ui.size(); ++a) {
    oi.push_back(ui[a]);
    ov.push_back(uv[a]);
  }
  for (; b < vi.size(); ++b) {
    oi.push_back(vi[b]);
    ov.push_back(vv[b]);
  }
  SparseVector<T> w(u.size());
  w.adopt(std::move(oi), std::move(ov));
  return w;
}

/// w = u ⊗ v (intersection).
template <class Op, class T>
SparseVector<T> ewise_mult(const SparseVector<T>& u, const SparseVector<T>& v) {
  GBX_CHECK_DIM(u.size() == v.size(), "vector eWiseMult dimension mismatch");
  auto ui = u.indices();
  auto uv = u.values();
  auto vi = v.indices();
  auto vv = v.values();
  std::vector<Index> oi;
  std::vector<T> ov;
  std::size_t a = 0, b = 0;
  while (a < ui.size() && b < vi.size()) {
    if (ui[a] < vi[b]) ++a;
    else if (vi[b] < ui[a]) ++b;
    else {
      oi.push_back(ui[a]);
      ov.push_back(Op::apply(uv[a++], vv[b++]));
    }
  }
  SparseVector<T> w(u.size());
  w.adopt(std::move(oi), std::move(ov));
  return w;
}

/// w = op(u), structure preserved.
template <class UnaryOpT, class T>
SparseVector<T> apply(const SparseVector<T>& u) {
  std::vector<Index> oi(u.indices().begin(), u.indices().end());
  std::vector<T> ov(u.values().begin(), u.values().end());
  for (auto& x : ov) x = UnaryOpT::apply(x);
  SparseVector<T> w(u.size());
  w.adopt(std::move(oi), std::move(ov));
  return w;
}

/// w = u where pred(index, value).
template <class T, class Pred>
SparseVector<T> select(const SparseVector<T>& u, Pred&& pred) {
  std::vector<Index> oi;
  std::vector<T> ov;
  u.for_each([&](Index i, T x) {
    if (pred(i, x)) {
      oi.push_back(i);
      ov.push_back(x);
    }
  });
  SparseVector<T> w(u.size());
  w.adopt(std::move(oi), std::move(ov));
  return w;
}

/// Dot product over a semiring: ⊕_i u(i) ⊗ v(i).
template <class S, class T>
T dot(const SparseVector<T>& u, const SparseVector<T>& v) {
  GBX_CHECK_DIM(u.size() == v.size(), "dot dimension mismatch");
  auto ui = u.indices();
  auto uv = u.values();
  auto vi = v.indices();
  auto vv = v.values();
  T acc = S::zero();
  std::size_t a = 0, b = 0;
  while (a < ui.size() && b < vi.size()) {
    if (ui[a] < vi[b]) ++a;
    else if (vi[b] < ui[a]) ++b;
    else acc = S::add(acc, S::mul(uv[a++], vv[b++]));
  }
  return acc;
}

}  // namespace gbx
