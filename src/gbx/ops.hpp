// gbx/ops.hpp — the operator layer of the gbx algebra.
//
// Mirrors the GraphBLAS built-in unary and binary operators. Operators are
// stateless functor *types* so kernels can inline them; each exposes
//   using value_type = T;            (operand/result domain)
//   static T apply(T a[, T b]);
// plus a name() for diagnostics. Monoids and semirings (monoid.hpp,
// semiring.hpp) are built on top of these.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "gbx/types.hpp"

namespace gbx {

// ---------------------------------------------------------------------------
// Binary operators (GrB_BinaryOp analogues)
// ---------------------------------------------------------------------------

template <class T>
struct Plus {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a + b); }
  static constexpr const char* name() { return "plus"; }
};

template <class T>
struct Minus {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a - b); }
  static constexpr const char* name() { return "minus"; }
};

template <class T>
struct Times {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a * b); }
  static constexpr const char* name() { return "times"; }
};

template <class T>
struct Div {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a / b); }
  static constexpr const char* name() { return "div"; }
};

template <class T>
struct Min {
  using value_type = T;
  static constexpr T apply(T a, T b) { return b < a ? b : a; }
  static constexpr const char* name() { return "min"; }
};

template <class T>
struct Max {
  using value_type = T;
  static constexpr T apply(T a, T b) { return a < b ? b : a; }
  static constexpr const char* name() { return "max"; }
};

/// first(a, b) = a. The GraphBLAS "keep existing" accumulator.
template <class T>
struct First {
  using value_type = T;
  static constexpr T apply(T a, T /*b*/) { return a; }
  static constexpr const char* name() { return "first"; }
};

/// second(a, b) = b. The GraphBLAS "overwrite" accumulator.
template <class T>
struct Second {
  using value_type = T;
  static constexpr T apply(T /*a*/, T b) { return b; }
  static constexpr const char* name() { return "second"; }
};

/// any(a, b): either operand is acceptable (GxB_ANY). Picks the first;
/// semantically the caller promises it does not care which.
template <class T>
struct Any {
  using value_type = T;
  static constexpr T apply(T a, T /*b*/) { return a; }
  static constexpr const char* name() { return "any"; }
};

template <class T>
struct LogicalOr {
  using value_type = T;
  static constexpr T apply(T a, T b) {
    return static_cast<T>((a != T{}) || (b != T{}));
  }
  static constexpr const char* name() { return "lor"; }
};

template <class T>
struct LogicalAnd {
  using value_type = T;
  static constexpr T apply(T a, T b) {
    return static_cast<T>((a != T{}) && (b != T{}));
  }
  static constexpr const char* name() { return "land"; }
};

template <class T>
struct LogicalXor {
  using value_type = T;
  static constexpr T apply(T a, T b) {
    return static_cast<T>((a != T{}) != (b != T{}));
  }
  static constexpr const char* name() { return "lxor"; }
};

/// Comparison ops return the value domain (0/1), as GraphBLAS does for
/// its typed comparison operators.
template <class T>
struct Eq {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a == b); }
  static constexpr const char* name() { return "eq"; }
};

template <class T>
struct Ne {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a != b); }
  static constexpr const char* name() { return "ne"; }
};

template <class T>
struct Lt {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a < b); }
  static constexpr const char* name() { return "lt"; }
};

template <class T>
struct Gt {
  using value_type = T;
  static constexpr T apply(T a, T b) { return static_cast<T>(a > b); }
  static constexpr const char* name() { return "gt"; }
};

// ---------------------------------------------------------------------------
// Unary operators (GrB_UnaryOp analogues)
// ---------------------------------------------------------------------------

template <class T>
struct IdentityOp {
  using value_type = T;
  static constexpr T apply(T a) { return a; }
  static constexpr const char* name() { return "identity"; }
};

template <class T>
struct AInv {  // additive inverse
  using value_type = T;
  static constexpr T apply(T a) { return static_cast<T>(-a); }
  static constexpr const char* name() { return "ainv"; }
};

template <class T>
struct MInv {  // multiplicative inverse
  using value_type = T;
  static constexpr T apply(T a) { return static_cast<T>(T{1} / a); }
  static constexpr const char* name() { return "minv"; }
};

template <class T>
struct Abs {
  using value_type = T;
  static constexpr T apply(T a) {
    if constexpr (std::is_unsigned_v<T>) return a;
    else return a < T{} ? static_cast<T>(-a) : a;
  }
  static constexpr const char* name() { return "abs"; }
};

template <class T>
struct LogicalNot {
  using value_type = T;
  static constexpr T apply(T a) { return static_cast<T>(a == T{}); }
  static constexpr const char* name() { return "lnot"; }
};

/// one(a) = 1 for any a (GxB_ONE): pattern-only view of a matrix.
template <class T>
struct One {
  using value_type = T;
  static constexpr T apply(T /*a*/) { return T{1}; }
  static constexpr const char* name() { return "one"; }
};

/// Bind a constant to the second operand of a binary op: f(x) = op(x, c).
template <class Op>
struct Bind2nd {
  using value_type = typename Op::value_type;
  value_type c{};
  constexpr value_type apply(value_type a) const { return Op::apply(a, c); }
};

/// Bind a constant to the first operand of a binary op: f(x) = op(c, x).
template <class Op>
struct Bind1st {
  using value_type = typename Op::value_type;
  value_type c{};
  constexpr value_type apply(value_type b) const { return Op::apply(c, b); }
};

}  // namespace gbx
