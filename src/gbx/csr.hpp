// gbx/csr.hpp — standard (non-hypersparse) compressed sparse row.
//
// CSR keeps a row-pointer array of length nrows+1 — O(nrows) memory even
// for an empty matrix. It exists here to make the paper's representation
// argument concrete: for a 2^32 x 2^32 IPv4 matrix the pointer array
// alone is 32 GiB, which is why traffic matrices *must* be hypersparse
// (DCSR). For small dense-ish matrices CSR's direct row addressing wins;
// format_advice() captures the crossover.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "gbx/dcsr.hpp"
#include "gbx/error.hpp"
#include "gbx/types.hpp"

namespace gbx {

template <class T>
class Csr {
 public:
  /// Allocates the O(nrows) pointer array immediately — deliberately, so
  /// the format's cost model is honest. Guarded against absurd sizes.
  explicit Csr(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {
    GBX_CHECK_VALUE(nrows > 0 && ncols > 0, "matrix dimensions must be > 0");
    GBX_CHECK_VALUE(nrows <= kMaxCsrRows,
                    "CSR row-pointer array would exceed 1 GiB; use the "
                    "hypersparse Dcsr/Matrix instead");
    ptr_.assign(static_cast<std::size_t>(nrows) + 1, 0);
  }

  /// Rows above this need a >1 GiB pointer array: not a CSR use case.
  static constexpr Index kMaxCsrRows = (Index{1} << 27);

  static Csr from_sorted_unique(Index nrows, Index ncols,
                                std::span<const Entry<T>> entries) {
    Csr c(nrows, ncols);
    c.cols_.reserve(entries.size());
    c.vals_.reserve(entries.size());
    for (const auto& e : entries) {
      GBX_CHECK_INDEX(e.row < nrows && e.col < ncols, "entry out of bounds");
      ++c.ptr_[static_cast<std::size_t>(e.row) + 1];
      c.cols_.push_back(e.col);
      c.vals_.push_back(e.val);
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r)
      c.ptr_[r + 1] += c.ptr_[r];
    return c;
  }

  static Csr from_dcsr(Index nrows, Index ncols, const Dcsr<T>& d) {
    Csr c(nrows, ncols);
    c.cols_.assign(d.cols().begin(), d.cols().end());
    c.vals_.assign(d.vals().begin(), d.vals().end());
    for (std::size_t k = 0; k < d.nrows_nonempty(); ++k) {
      GBX_CHECK_INDEX(d.rows()[k] < nrows, "dcsr row exceeds csr dimension");
      c.ptr_[static_cast<std::size_t>(d.rows()[k]) + 1] =
          d.ptr()[k + 1] - d.ptr()[k];
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r)
      c.ptr_[r + 1] += c.ptr_[r];
    return c;
  }

  Dcsr<T> to_dcsr() const {
    std::vector<Entry<T>> ent;
    ent.reserve(nnz());
    for_each([&](Index i, Index j, T v) { ent.push_back({i, j, v}); });
    return Dcsr<T>::from_sorted_unique(ent);
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  std::size_t nnz() const { return cols_.size(); }

  /// O(1) row addressing — CSR's advantage over DCSR's row search.
  std::span<const Index> row_cols(Index r) const {
    GBX_CHECK_INDEX(r < nrows_, "row out of bounds");
    const auto lo = ptr_[static_cast<std::size_t>(r)];
    const auto hi = ptr_[static_cast<std::size_t>(r) + 1];
    return {cols_.data() + lo, hi - lo};
  }

  std::optional<T> get(Index r, Index c) const {
    GBX_CHECK_INDEX(r < nrows_ && c < ncols_, "index out of bounds");
    const auto lo = ptr_[static_cast<std::size_t>(r)];
    const auto hi = ptr_[static_cast<std::size_t>(r) + 1];
    auto it = std::lower_bound(cols_.begin() + static_cast<std::ptrdiff_t>(lo),
                               cols_.begin() + static_cast<std::ptrdiff_t>(hi), c);
    if (it == cols_.begin() + static_cast<std::ptrdiff_t>(hi) || *it != c)
      return std::nullopt;
    return vals_[static_cast<std::size_t>(it - cols_.begin())];
  }

  template <class F>
  void for_each(F&& f) const {
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows_); ++r)
      for (Offset p = ptr_[r]; p < ptr_[r + 1]; ++p)
        f(static_cast<Index>(r), cols_[p], vals_[p]);
  }

  bool validate() const {
    if (ptr_.size() != static_cast<std::size_t>(nrows_) + 1) return false;
    if (ptr_.front() != 0 || ptr_.back() != cols_.size()) return false;
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows_); ++r) {
      if (ptr_[r] > ptr_[r + 1]) return false;
      for (Offset p = ptr_[r] + 1; p < ptr_[r + 1]; ++p)
        if (cols_[p - 1] >= cols_[p]) return false;
    }
    return true;
  }

  std::size_t memory_bytes() const {
    return ptr_.capacity() * sizeof(Offset) + cols_.capacity() * sizeof(Index) +
           vals_.capacity() * sizeof(T);
  }

 private:
  Index nrows_;
  Index ncols_;
  std::vector<Offset> ptr_;  // length nrows+1 — the O(nrows) cost
  std::vector<Index> cols_;
  std::vector<T> vals_;
};

/// Format guidance: CSR only pays off when the pointer array is small
/// relative to the payload (row occupancy above ~4%) and representable
/// at all.
enum class Format { kCsr, kDcsr };

inline Format format_advice(Index nrows, std::size_t nnz) {
  if (nrows > Csr<double>::kMaxCsrRows) return Format::kDcsr;
  const double occupancy =
      static_cast<double>(nnz) / static_cast<double>(nrows);
  return occupancy >= 0.04 ? Format::kCsr : Format::kDcsr;
}

}  // namespace gbx
