// gbx/structure.hpp — structural operations: concat, split, resize, diag.
//
// The GxB extensions SuiteSparse provides for assembling and carving
// matrices (GxB_Matrix_concat / _split / GrB_Matrix_diag / resize),
// reimplemented over DCSR. All are hypersparse-safe: tile placement uses
// index arithmetic only, never dense iteration.
#pragma once

#include <vector>

#include "gbx/extract.hpp"
#include "gbx/matrix.hpp"
#include "gbx/sort.hpp"
#include "gbx/vector.hpp"

namespace gbx {

/// C = [tiles] — assemble a grid of tiles (row-major vector of rows*cols
/// matrices). Tiles in the same grid row must share nrows; same grid
/// column must share ncols (checked).
template <class T, class M>
Matrix<T, M> concat(const std::vector<const Matrix<T, M>*>& tiles,
                    std::size_t grid_rows, std::size_t grid_cols) {
  GBX_CHECK_VALUE(grid_rows > 0 && grid_cols > 0 &&
                      tiles.size() == grid_rows * grid_cols,
                  "concat: tile grid shape mismatch");
  for (const auto* t : tiles) GBX_CHECK_VALUE(t != nullptr, "concat: null tile");

  // Validate tile shapes and compute offsets.
  std::vector<Index> row_off(grid_rows + 1, 0);
  std::vector<Index> col_off(grid_cols + 1, 0);
  for (std::size_t r = 0; r < grid_rows; ++r) {
    const Index h = tiles[r * grid_cols]->nrows();
    for (std::size_t c = 0; c < grid_cols; ++c)
      GBX_CHECK_DIM(tiles[r * grid_cols + c]->nrows() == h,
                    "concat: inconsistent tile heights in grid row");
    row_off[r + 1] = row_off[r] + h;
  }
  for (std::size_t c = 0; c < grid_cols; ++c) {
    const Index w = tiles[c]->ncols();
    for (std::size_t r = 0; r < grid_rows; ++r)
      GBX_CHECK_DIM(tiles[r * grid_cols + c]->ncols() == w,
                    "concat: inconsistent tile widths in grid column");
    col_off[c + 1] = col_off[c] + w;
  }

  std::vector<Entry<T>> ent;
  std::size_t total = 0;
  for (const auto* t : tiles) total += t->nvals();
  ent.reserve(total);
  for (std::size_t r = 0; r < grid_rows; ++r)
    for (std::size_t c = 0; c < grid_cols; ++c)
      tiles[r * grid_cols + c]->for_each([&](Index i, Index j, T v) {
        ent.push_back({i + row_off[r], j + col_off[c], v});
      });
  sort_entries(ent);
  return Matrix<T, M>::adopt(row_off[grid_rows], col_off[grid_cols],
                             Dcsr<T>::from_sorted_unique(ent));
}

/// Convenience: [A B] and [A; B].
template <class T, class M>
Matrix<T, M> hconcat(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  return concat<T, M>({&A, &B}, 1, 2);
}
template <class T, class M>
Matrix<T, M> vconcat(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  return concat<T, M>({&A, &B}, 2, 1);
}

/// Split A into a tile grid along the given boundaries. `row_sizes` /
/// `col_sizes` must sum to A's dims. Returns row-major tiles.
template <class T, class M>
std::vector<Matrix<T, M>> split(const Matrix<T, M>& A,
                                const std::vector<Index>& row_sizes,
                                const std::vector<Index>& col_sizes) {
  Index rsum = 0, csum = 0;
  for (Index r : row_sizes) {
    GBX_CHECK_VALUE(r > 0, "split: zero row size");
    rsum += r;
  }
  for (Index c : col_sizes) {
    GBX_CHECK_VALUE(c > 0, "split: zero col size");
    csum += c;
  }
  GBX_CHECK_DIM(rsum == A.nrows() && csum == A.ncols(),
                "split: sizes must sum to matrix dimensions");

  std::vector<Matrix<T, M>> tiles;
  tiles.reserve(row_sizes.size() * col_sizes.size());
  Index r0 = 0;
  for (Index rs : row_sizes) {
    Index c0 = 0;
    for (Index cs : col_sizes) {
      tiles.push_back(extract_range(A, r0, r0 + rs, c0, c0 + cs));
      c0 += cs;
    }
    r0 += rs;
  }
  return tiles;
}

/// Change dimensions. Growing keeps all entries; shrinking drops entries
/// outside the new bounds (GrB_Matrix_resize semantics).
template <class T, class M>
Matrix<T, M> resize(const Matrix<T, M>& A, Index nrows, Index ncols) {
  GBX_CHECK_VALUE(nrows > 0 && ncols > 0, "resize: dimensions must be > 0");
  std::vector<Entry<T>> keep;
  A.for_each([&](Index i, Index j, T v) {
    if (i < nrows && j < ncols) keep.push_back({i, j, v});
  });
  return Matrix<T, M>::adopt(nrows, ncols, Dcsr<T>::from_sorted_unique(keep));
}

/// Square matrix with v on diagonal k (GrB_Matrix_diag).
template <class T>
Matrix<T> matrix_diag(const SparseVector<T>& v, std::int64_t k = 0) {
  const Index n = v.size() + static_cast<Index>(k < 0 ? -k : k);
  std::vector<Entry<T>> ent;
  ent.reserve(v.nvals());
  v.for_each([&](Index i, T x) {
    const Index row = k < 0 ? i + static_cast<Index>(-k) : i;
    const Index col = k < 0 ? i : i + static_cast<Index>(k);
    ent.push_back({row, col, x});
  });
  return Matrix<T>::adopt(n, n, Dcsr<T>::from_sorted_unique(ent));
}

/// Deep copy with a fresh canonical layout (GrB_Matrix_dup).
template <class T, class M>
Matrix<T, M> dup(const Matrix<T, M>& A) {
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(), A.storage());
}

}  // namespace gbx
