// gbx/extract.hpp — submatrix extraction (GrB_extract analogue).
//
// C = A(I, J): row/column index lists select a submatrix whose
// coordinates are *remapped to list positions*, exactly as GraphBLAS
// defines extraction. Contiguous-range extraction keeps original
// coordinates shifted to the range origin.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "gbx/matrix.hpp"

namespace gbx {

/// C = A(I, J) with I, J sorted unique index lists. Result is |I| x |J|,
/// entry (a, b) of C is A(I[a], J[b]) where present.
template <class T, class M>
Matrix<T, M> extract(const Matrix<T, M>& A, std::span<const Index> I,
                     std::span<const Index> J) {
  GBX_CHECK_VALUE(!I.empty() && !J.empty(), "extract index lists must be non-empty");
  GBX_CHECK(std::is_sorted(I.begin(), I.end()) &&
                std::adjacent_find(I.begin(), I.end()) == I.end(),
            "row index list must be sorted and unique");
  GBX_CHECK(std::is_sorted(J.begin(), J.end()) &&
                std::adjacent_find(J.begin(), J.end()) == J.end(),
            "column index list must be sorted and unique");
  for (Index i : I) GBX_CHECK_INDEX(i < A.nrows(), "extract row out of bounds");
  for (Index j : J) GBX_CHECK_INDEX(j < A.ncols(), "extract column out of bounds");

  std::unordered_map<Index, Index> jmap;
  jmap.reserve(J.size() * 2);
  for (std::size_t b = 0; b < J.size(); ++b) jmap.emplace(J[b], b);

  const Dcsr<T>& s = A.storage();
  std::vector<Entry<T>> keep;
  // Walk the selected rows only: binary search each I[a] in the stored
  // row list (I is typically much smaller than the stored row count).
  auto rows = s.rows();
  for (std::size_t a = 0; a < I.size(); ++a) {
    auto rit = std::lower_bound(rows.begin(), rows.end(), I[a]);
    if (rit == rows.end() || *rit != I[a]) continue;
    const std::size_t k = static_cast<std::size_t>(rit - rows.begin());
    for (Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p) {
      auto it = jmap.find(s.cols()[p]);
      if (it != jmap.end())
        keep.push_back({static_cast<Index>(a), it->second, s.vals()[p]});
    }
  }
  // Rows were visited in I order but J-positions may be out of order
  // within a row; restore (row, col) order.
  std::sort(keep.begin(), keep.end(), entry_less<T>);
  return Matrix<T, M>::adopt(I.size(), J.size(),
                             Dcsr<T>::from_sorted_unique(keep));
}

/// C = A(r0:r1-1, c0:c1-1), half-open ranges; coordinates shifted by
/// (r0, c0). Result is (r1-r0) x (c1-c0).
template <class T, class M>
Matrix<T, M> extract_range(const Matrix<T, M>& A, Index r0, Index r1, Index c0,
                           Index c1) {
  GBX_CHECK_VALUE(r0 < r1 && c0 < c1, "extract_range requires non-empty ranges");
  GBX_CHECK_INDEX(r1 <= A.nrows() && c1 <= A.ncols(),
                  "extract_range out of bounds");
  const Dcsr<T>& s = A.storage();
  std::vector<Entry<T>> keep;
  auto rows = s.rows();
  const std::size_t klo = static_cast<std::size_t>(
      std::lower_bound(rows.begin(), rows.end(), r0) - rows.begin());
  const std::size_t khi = static_cast<std::size_t>(
      std::lower_bound(rows.begin(), rows.end(), r1) - rows.begin());
  for (std::size_t k = klo; k < khi; ++k) {
    const auto clo = s.cols().begin() + static_cast<std::ptrdiff_t>(s.ptr()[k]);
    const auto chi =
        s.cols().begin() + static_cast<std::ptrdiff_t>(s.ptr()[k + 1]);
    auto p0 = std::lower_bound(clo, chi, c0);
    auto p1 = std::lower_bound(clo, chi, c1);
    for (auto it = p0; it != p1; ++it) {
      const Offset p =
          static_cast<Offset>(it - s.cols().begin());
      keep.push_back({rows[k] - r0, *it - c0, s.vals()[p]});
    }
  }
  return Matrix<T, M>::adopt(r1 - r0, c1 - c0,
                             Dcsr<T>::from_sorted_unique(keep));
}

}  // namespace gbx
